#!/usr/bin/env python3
"""Perf-smoke gate: compare bench --json runs against checked-in per-bench bounds.

Usage: check_perf_floor.py <floor-json> <bench-json> [<bench-json> ...]

Every bench named in the spec's "floors" or "ceilings" must appear exactly once
across the given reports and have exited 0. Fails (exit 1) when any floored
metric comes in more than `allowed_regression` below its floor, or any ceiled
metric more than `allowed_regression` above its ceiling (a ceiling of 0 is
exact: any positive value trips it). Prints every bounded metric so the
uploaded artifacts are self-explanatory.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        spec = json.load(f)

    benches = {}
    for path in sys.argv[2:]:
        with open(path) as f:
            report = json.load(f)
        for bench in report["benches"]:
            if bench["name"] in benches:
                print(f"duplicate bench {bench['name']} across reports")
                return 1
            benches[bench["name"]] = bench

    allowed = float(spec["allowed_regression"])
    floors = spec.get("floors", {})
    ceilings = spec.get("ceilings", {})
    failed = False

    for bench_name in sorted(set(floors) | set(ceilings)):
        bench = benches.get(bench_name)
        if bench is None:
            print(f"FAIL {bench_name}: bench missing from the given reports")
            failed = True
            continue
        if bench["exit_code"] != 0:
            print(f"FAIL {bench_name}: exited with {bench['exit_code']}")
            failed = True
            continue
        for metric, floor in floors.get(bench_name, {}).items():
            value = bench["metrics"].get(metric)
            if value is None:
                print(f"FAIL {bench_name}.{metric}: metric missing from bench output")
                failed = True
                continue
            threshold = floor * (1.0 - allowed)
            verdict = "ok" if value >= threshold else "FAIL"
            print(f"{verdict} {bench_name}.{metric}: {value:,.1f} "
                  f"(floor {floor:,.1f}, trip below {threshold:,.1f})")
            failed = failed or value < threshold
        for metric, ceiling in ceilings.get(bench_name, {}).items():
            value = bench["metrics"].get(metric)
            if value is None:
                print(f"FAIL {bench_name}.{metric}: metric missing from bench output")
                failed = True
                continue
            threshold = ceiling * (1.0 + allowed)
            verdict = "ok" if value <= threshold else "FAIL"
            print(f"{verdict} {bench_name}.{metric}: {value:,.1f} "
                  f"(ceiling {ceiling:,.1f}, trip above {threshold:,.1f})")
            failed = failed or value > threshold
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
