#!/usr/bin/env python3
"""Perf-smoke gate: compare a stress_scale --json run against checked-in floors.

Usage: check_perf_floor.py <bench-json> <floor-json>

Fails (exit 1) when any floored metric comes in more than `allowed_regression`
below its floor, or when the bench itself failed. Prints every floored metric so
the uploaded artifact is self-explanatory.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)
    with open(sys.argv[2]) as f:
        floor_spec = json.load(f)

    benches = [b for b in report["benches"] if b["name"] == "stress_scale"]
    if len(benches) != 1:
        print(f"expected exactly one stress_scale run, got {len(benches)}")
        return 1
    bench = benches[0]
    if bench["exit_code"] != 0:
        print(f"stress_scale exited with {bench['exit_code']}")
        return 1

    floors = floor_spec["floors"]
    allowed = float(floor_spec["allowed_regression"])
    failed = False
    for metric, floor in floors.items():
        value = bench["metrics"].get(metric)
        if value is None:
            print(f"FAIL {metric}: metric missing from bench output")
            failed = True
            continue
        threshold = floor * (1.0 - allowed)
        verdict = "ok" if value >= threshold else "FAIL"
        print(f"{verdict} {metric}: {value:,.0f} events/s "
              f"(floor {floor:,.0f}, trip below {threshold:,.0f})")
        failed = failed or value < threshold
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
