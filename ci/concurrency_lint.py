#!/usr/bin/env python3
"""Concurrency-readiness lint for the FlexPipe simulator.

The engine is single-threaded by design; the only sanctioned concurrency is the
parallel sweep driver (bench/sweep.{h,cc}), which runs fully private simulation
universes on a worker pool. That discipline only holds if shared mutable state and
raw threading primitives cannot creep in unnoticed, so this linter — the concurrency
companion to ci/determinism_lint.py — walks src/ and bench/ and enforces the
ownership taxonomy declared in src/common/thread_annotations.h:

  unannotated-global   A mutable namespace-scope or static-local variable definition
                       (a `static` local, or the house `g_*` naming for globals)
                       without FLEXPIPE_GUARDED_BY / FLEXPIPE_THREAD_SAFE_GLOBAL on
                       the declaration. Unannotated shared state is exactly what
                       turns a parallel sweep into a heisenbug farm.
  thread-local         `thread_local` anywhere. Per-thread state hides cross-worker
                       divergence (a worker-count-dependent RNG or cache would break
                       the bit-identical-to-serial contract); sweep workers must keep
                       their universe in ordinary locals instead.
  raw-thread           std::thread / std::jthread / std::async / pthread_create /
                       std::mutex / std::condition_variable and friends outside the
                       sanctioned driver files. Thread management belongs to
                       ParallelSweepRunner; locking belongs to the annotated Mutex
                       wrapper in thread_annotations.h.
  raw-atomic           std::atomic outside the sanctioned driver files. Atomics make
                       races compile quietly; each one needs a justified allowlist
                       entry (e.g. the relaxed process-wide event counter).

Comments and string literals are stripped before matching (the stripper is shared
with determinism_lint). Findings are suppressed via ci/concurrency_allowlist.txt,
one `<rule> <path-glob>` pair per line with a justification comment.

Usage:
  python3 ci/concurrency_lint.py [--root REPO] [--allowlist FILE]
  python3 ci/concurrency_lint.py --self-test

Exits non-zero when findings remain (or a self-test expectation fails).
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from determinism_lint import (  # noqa: E402
    is_allowed,
    load_allowlist,
    strip_comments_and_strings,
)

SCAN_DIRS = ("src", "bench")
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
DEFAULT_ALLOWLIST = os.path.join("ci", "concurrency_allowlist.txt")
FIXTURE_DIR = os.path.join("ci", "lint_fixtures", "concurrency")

# Files allowed to use raw threading primitives and atomics: the sweep driver and
# the annotation/Mutex layer it is built on.
SANCTIONED_DRIVER_FILES = frozenset(
    {
        "bench/sweep.h",
        "bench/sweep.cc",
        "src/common/thread_annotations.h",
    }
)

ANNOTATION_TOKENS = ("FLEXPIPE_GUARDED_BY", "FLEXPIPE_THREAD_SAFE_GLOBAL")

# A `static` variable definition: `static` not followed by const/constexpr/inline-
# constexpr, introducing a named object with an initializer or a plain `;`, and not a
# function declaration/definition (no parameter list directly after the name). The
# `g_` alternative catches the house naming for namespace-scope globals, which need
# no `static` keyword inside an anonymous namespace; it is anchored to column 0
# because namespaces add no indentation under the house style, so an indented
# `g_`-prefixed name is a struct member (e.g. ScalingConfig::g_max), not a global.
STATIC_DEF_RE = re.compile(
    r"^\s*static\s+(?!const\b|constexpr\b|inline\s+const|assert\b)"
    r"[A-Za-z_][\w:<>,&*\s]*?[\s&*]([A-Za-z_]\w*)\s*(=|\{|;)"
)
GLOBAL_DEF_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?[\s&*](g_[a-z]\w*)\s*(=|\{|;)")

RULE_MESSAGES = {
    "unannotated-global": (
        "mutable static/namespace-scope state must declare its ownership: "
        "FLEXPIPE_GUARDED_BY(mu), FLEXPIPE_THREAD_SAFE_GLOBAL, or an allowlist entry"
    ),
    "thread-local": (
        "thread_local state diverges across sweep workers; keep per-universe state "
        "in locals owned by the arm closure"
    ),
    "raw-thread": (
        "thread/lock primitives are confined to the sweep driver "
        "(bench/sweep.{h,cc}) and the annotated Mutex wrapper"
    ),
    "raw-atomic": (
        "std::atomic outside the sanctioned driver files needs a justified "
        "allowlist entry; atomics make races compile quietly"
    ),
}

THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
RAW_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(?:thread|jthread|async|mutex|recursive_mutex|shared_mutex|"
    r"timed_mutex|condition_variable(?:_any)?|counting_semaphore|binary_semaphore|"
    r"barrier|latch|future|promise|packaged_task)\b"
    r"|\bpthread_\w+\s*\("
)
RAW_ATOMIC_RE = re.compile(r"\bstd\s*::\s*atomic(?:_\w+)?\b|\batomic_(?:load|store|exchange)\b")

# Fixture file -> rules its contents must trip (empty set: must stay clean).
FIXTURE_EXPECTATIONS = {
    "unannotated_global.cc": {"unannotated-global"},
    "thread_local.cc": {"thread-local"},
    "raw_thread.cc": {"raw-thread"},
    "raw_atomic.cc": {"raw-atomic"},
    "clean.cc": set(),
}


def looks_like_function_decl(line, name_end):
    """True when the matched name is directly followed by a parameter list."""
    rest = line[name_end:].lstrip()
    return rest.startswith("(")


def scan_static_state(line):
    """Yields variable names of unannotated mutable static/global definitions."""
    if any(token in line for token in ANNOTATION_TOKENS):
        return
    for pattern in (STATIC_DEF_RE, GLOBAL_DEF_RE):
        match = pattern.match(line)
        if not match:
            continue
        if looks_like_function_decl(line, match.end(1)):
            continue
        # `static Foo Instance();`-style declarations and `= delete`/`= default`
        # member functions are not variable definitions.
        if re.search(r"=\s*(delete|default|0)\s*;", line) and "(" in line:
            continue
        yield match.group(1)
        return


def scan_file(path, rel_path):
    """Yields (rule, line_number, line_text) findings for one file."""
    with open(path, encoding="utf-8") as f:
        stripped = strip_comments_and_strings(f.read())
    sanctioned = rel_path in SANCTIONED_DRIVER_FILES
    for line_number, line in enumerate(stripped.splitlines(), start=1):
        for _ in scan_static_state(line):
            yield "unannotated-global", line_number, line.strip()
        if THREAD_LOCAL_RE.search(line):
            yield "thread-local", line_number, line.strip()
        if not sanctioned:
            if RAW_THREAD_RE.search(line):
                yield "raw-thread", line_number, line.strip()
            if RAW_ATOMIC_RE.search(line):
                yield "raw-atomic", line_number, line.strip()


def iter_source_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def run_lint(root, allowlist_path):
    allowlist = load_allowlist(allowlist_path)
    findings = 0
    for path in iter_source_files(root):
        rel_path = os.path.relpath(path, root).replace(os.sep, "/")
        for rule, line_number, line in scan_file(path, rel_path):
            if is_allowed(rule, rel_path, allowlist):
                continue
            findings += 1
            print(f"{rel_path}:{line_number}: [{rule}] {line}")
            print(f"    {RULE_MESSAGES[rule]}")
    if findings:
        print(f"\nconcurrency lint: {findings} finding(s). Fix them or add a "
              f"'<rule> <path-glob>' line to {allowlist_path} with justification.")
        return 1
    return 0


def run_self_test(root):
    fixture_dir = os.path.join(root, FIXTURE_DIR)
    failures = []
    for name, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        tripped = {rule for rule, _, _ in scan_file(path, rel)}
        if tripped != expected:
            failures.append(
                f"{name}: expected rules {sorted(expected)}, tripped {sorted(tripped)}"
            )
    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        return 1
    print(f"self-test passed: {len(FIXTURE_EXPECTATIONS)} fixtures behaved as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: the checkout containing ci/)")
    parser.add_argument("--allowlist", default=None,
                        help=f"allowlist file (default: <root>/{DEFAULT_ALLOWLIST})")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its fixture and not on clean code")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(args.root)
    allowlist_path = args.allowlist or os.path.join(args.root, DEFAULT_ALLOWLIST)
    return run_lint(args.root, allowlist_path)


if __name__ == "__main__":
    sys.exit(main())
