// Self-test fixture: must trip exactly the raw-random rule (several spellings).
#include <cstdlib>
#include <ctime>
#include <random>

int DrawThree() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::mt19937 engine(std::random_device{}());
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(engine) + rand() % 10;
}
