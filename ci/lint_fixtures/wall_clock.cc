// Self-test fixture: must trip exactly the wall-clock rule.
#include <chrono>

double ElapsedSeconds() {
  auto start = std::chrono::steady_clock::now();
  auto end = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(end - start).count();
}
