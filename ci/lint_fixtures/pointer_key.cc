// Self-test fixture: must trip exactly the pointer-key rule.
#include <map>
#include <set>

struct Widget {};

int Track(Widget* w) {
  std::map<Widget*, int> refcounts;
  std::set<const Widget*> seen;
  seen.insert(w);
  return ++refcounts[w];
}
