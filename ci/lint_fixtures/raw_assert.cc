// Self-test fixture: must trip exactly the raw-assert rule.
#include <cassert>

int Halve(int value) {
  assert(value % 2 == 0);
  return value / 2;
}
