// Self-test fixture: must trip exactly the unordered-container rule.
#include <unordered_map>

int CountDistinct(const int* values, int n) {
  std::unordered_map<int, int> seen;
  for (int i = 0; i < n; ++i) {
    ++seen[values[i]];
  }
  return static_cast<int>(seen.size());
}
