// Fixture: must trip 'raw-atomic' and nothing else.
#include <atomic>
#include <cstdint>

namespace flexpipe {

uint64_t Bump(std::atomic<uint64_t>& counter) {
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace flexpipe
