// Fixture: must trip no rule. Exercises the shapes the rules must NOT match:
// annotated globals, immutable statics, strings/comments mentioning primitives,
// and ordinary function declarations that start like variable definitions.
#include <cstdint>
#include <string>

#include "src/common/thread_annotations.h"

namespace flexpipe {
namespace {

// Constants are immutable — not shared mutable state.
static const uint64_t kSeedBase = 42;
static constexpr int kArmCount = 4;

// Annotated global: ownership declared, lint satisfied.
FLEXPIPE_THREAD_SAFE_GLOBAL uint64_t g_registration_epoch = 0;

// A static function declaration is not a variable definition.
static uint64_t HelperImpl(uint64_t x);

}  // namespace

uint64_t Helper() {
  // Mentioning std::thread or thread_local in comments or strings is fine.
  std::string doc = "never use std::thread or std::atomic outside the driver";
  return HelperImpl(kSeedBase + kArmCount + doc.size() + g_registration_epoch);
}

namespace {
static uint64_t HelperImpl(uint64_t x) { return x * 2; }
}  // namespace

}  // namespace flexpipe
