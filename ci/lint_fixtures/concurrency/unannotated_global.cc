// Fixture: must trip 'unannotated-global' and nothing else.
#include <cstdint>

namespace flexpipe {
namespace {

// Mutable namespace-scope global with the house g_ naming, no ownership marker.
uint64_t g_counter = 0;

}  // namespace

uint64_t NextId() {
  // Mutable static local without FLEXPIPE_GUARDED_BY / FLEXPIPE_THREAD_SAFE_GLOBAL.
  static uint64_t next_id = 1;
  return next_id++ + g_counter;
}

}  // namespace flexpipe
