// Fixture: must trip 'raw-thread' and nothing else.
#include <mutex>
#include <thread>

namespace flexpipe {

void SpawnDetached() {
  std::mutex mu;
  std::thread worker([&mu] { std::lock_guard<std::mutex> hold(mu); });
  worker.join();
}

}  // namespace flexpipe
