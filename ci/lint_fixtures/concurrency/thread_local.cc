// Fixture: must trip 'thread-local' and nothing else.
#include <cstdint>

namespace flexpipe {

uint64_t ScratchValue() {
  thread_local uint64_t scratch = 0;
  return ++scratch;
}

}  // namespace flexpipe
