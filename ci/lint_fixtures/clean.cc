// Self-test fixture: must trip NO rules. Exercises the comment/string stripper:
// every offender below appears only in prose or literals, plus the sanctioned
// constructs the rules must not confuse with violations.
//
// Mentions that must not fire: std::unordered_map, std::mt19937, assert(x),
// std::chrono::steady_clock, std::map<Widget*, int>.
#include <map>
#include <vector>

/* Block comments too: std::random_device and srand(time(nullptr)) are words here. */

static_assert(sizeof(int) >= 4, "static_assert is not assert()");

const char* kDocstring =
    "strings are stripped: std::unordered_set, rand(), clock(), assert(ok)";

int Lookup(const std::map<int, int>& table, int key) {
  // Value-keyed ordered maps are fine; only pointer keys are flagged.
  auto it = table.find(key);
  return it == table.end() ? -1 : it->second;
}

int SumSorted(std::vector<int> values) {
  int total = 0;
  for (int v : values) {
    total += v;  // deterministic iteration, nothing to see
  }
  return total;
}

// Digit separators must not open a char literal: if the stripper misparsed the lone
// apostrophe in 300'000, it would swallow the lines after it and mask findings.
long Budget() {
  long tokens = 300'000;
  char newline = '\n';
  return tokens + (newline == '\n' ? 1'000'000 : 0);
}
