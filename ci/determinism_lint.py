#!/usr/bin/env python3
"""Determinism lint for the FlexPipe simulator.

The whole reproduction rests on bit-identical replay: two runs with the same seed
must produce byte-identical metrics (the golden-signature tests pin this). That
property dies quietly when code reaches for a nondeterministic primitive, so this
linter walks src/ and bench/ and flags the known offenders at review time instead
of three PRs later when a golden signature drifts.

Rule classes:

  unordered-container  std::unordered_{map,set,multimap,multiset}. Iteration order is
                       implementation-defined and seed-dependent; the house idiom is a
                       flat per-id-indexed vector or a sorted vector + binary search.
  raw-random           Randomness primitives outside src/common/rng.*: std::rand/srand,
                       std::random_device, raw std::mt19937 engines, time()-seeded
                       anything. All randomness must flow through Rng's seeded child
                       streams so runs replay.
  wall-clock           Host-clock reads (std::chrono clocks, clock_gettime, ...)
                       outside the bench wall timers. Simulated results may depend
                       only on virtual time.
  raw-assert           assert() instead of FLEXPIPE_CHECK/FLEXPIPE_DCHECK. assert
                       compiles out under NDEBUG, so the invariant silently stops
                       guarding release runs (static_assert is fine).
  pointer-key          std::map/std::set keyed by a pointer type. Iteration follows
                       address order, which varies run to run with ASLR/allocation
                       history.

Comments and string literals are stripped before matching, so prose mentioning an
offender does not trip the lint. Findings are suppressed via the allowlist file
(default: ci/determinism_allowlist.txt), one `<rule> <path-glob>` pair per line.

Usage:
  python3 ci/determinism_lint.py [--root REPO] [--allowlist FILE]
  python3 ci/determinism_lint.py --self-test

Exits non-zero when findings remain (or a self-test expectation fails).
"""

import argparse
import fnmatch
import os
import re
import sys

SCAN_DIRS = ("src", "bench")
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
DEFAULT_ALLOWLIST = os.path.join("ci", "determinism_allowlist.txt")
FIXTURE_DIR = os.path.join("ci", "lint_fixtures")

RULES = [
    (
        "unordered-container",
        re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b"),
        "hash-container iteration order is implementation-defined; "
        "use a flat per-id vector or a sorted vector + binary search",
    ),
    (
        "raw-random",
        re.compile(
            r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|random_device|"
            r"default_random_engine|knuth_b|ranlux(?:24|48)(?:_base)?)\b"
            r"|\bsrand\s*\(|\brand\s*\(\s*\)|\bdrand48\s*\("
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "randomness must flow through src/common/rng.h's seeded Rng streams",
    ),
    (
        "wall-clock",
        re.compile(
            r"\bstd\s*::\s*chrono\s*::\s*(?:steady_clock|system_clock|"
            r"high_resolution_clock)\b"
            r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\bclock\s*\(\s*\)"
        ),
        "simulated results may depend only on virtual time (Simulation::now)",
    ),
    (
        "raw-assert",
        re.compile(r"\bassert\s*\("),
        "use FLEXPIPE_CHECK / FLEXPIPE_DCHECK; assert() vanishes under NDEBUG",
    ),
    (
        "pointer-key",
        re.compile(r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]"),
        "pointer-keyed ordered containers iterate in address order, "
        "which is not reproducible",
    ),
]

# Fixture file -> rules its contents must trip (empty set: must stay clean). The
# self-test fails if a fixture is missing, trips extra rules, or misses one.
FIXTURE_EXPECTATIONS = {
    "unordered_container.cc": {"unordered-container"},
    "raw_random.cc": {"raw-random"},
    "wall_clock.cc": {"wall-clock"},
    "raw_assert.cc": {"raw-assert"},
    "pointer_key.cc": {"pointer-key"},
    "clean.cc": set(),
}


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal bodies with spaces.

    Newlines are preserved so line numbers survive. Handles //, /* */, "...",
    '...' with escapes, and raw string literals R"delim(...)delim".
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            match = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if match:
                closer = ")" + match.group(1) + '"'
                end = text.find(closer, i + match.end())
                end = n if end == -1 else end + len(closer)
                out.append("".join("\n" if ch == "\n" else " " for ch in text[i:end]))
                i = end
            else:
                out.append(c)
                i += 1
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # Digit separator (1'000'000) or a quote glued to an identifier — not a
            # char-literal open. Without this, a lone separator swallows everything
            # until the next apostrophe in the file.
            out.append(c)
            i += 1
        elif c in ('"', "'"):
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_allowlist(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise SystemExit(
                    f"{path}: malformed allowlist line {raw.rstrip()!r} "
                    "(expected '<rule> <path-glob>')"
                )
            entries.append((parts[0], parts[1]))
    return entries


def is_allowed(rule, rel_path, allowlist):
    return any(
        rule == allowed_rule and fnmatch.fnmatch(rel_path, pattern)
        for allowed_rule, pattern in allowlist
    )


def scan_file(path):
    """Yields (rule, line_number, line_text) findings for one file."""
    with open(path, encoding="utf-8") as f:
        stripped = strip_comments_and_strings(f.read())
    for line_number, line in enumerate(stripped.splitlines(), start=1):
        for rule, pattern, _ in RULES:
            if pattern.search(line):
                yield rule, line_number, line.strip()


def iter_source_files(root):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def run_lint(root, allowlist_path):
    allowlist = load_allowlist(allowlist_path)
    messages = {rule: message for rule, _, message in RULES}
    findings = 0
    for path in iter_source_files(root):
        rel_path = os.path.relpath(path, root).replace(os.sep, "/")
        for rule, line_number, line in scan_file(path):
            if is_allowed(rule, rel_path, allowlist):
                continue
            findings += 1
            print(f"{rel_path}:{line_number}: [{rule}] {line}")
            print(f"    {messages[rule]}")
    if findings:
        print(f"\ndeterminism lint: {findings} finding(s). Fix them or add a "
              f"'<rule> <path-glob>' line to {allowlist_path} with justification.")
        return 1
    return 0


def run_self_test(root):
    fixture_dir = os.path.join(root, FIXTURE_DIR)
    failures = []
    for name, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(fixture_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        tripped = {rule for rule, _, _ in scan_file(path)}
        if tripped != expected:
            failures.append(
                f"{name}: expected rules {sorted(expected)}, tripped {sorted(tripped)}"
            )
    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        return 1
    print(f"self-test passed: {len(FIXTURE_EXPECTATIONS)} fixtures behaved as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: the checkout containing ci/)")
    parser.add_argument("--allowlist", default=None,
                        help=f"allowlist file (default: <root>/{DEFAULT_ALLOWLIST})")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its fixture and not on clean code")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(args.root)
    allowlist_path = args.allowlist or os.path.join(args.root, DEFAULT_ALLOWLIST)
    return run_lint(args.root, allowlist_path)


if __name__ == "__main__":
    sys.exit(main())
