// Hierarchical network/transfer model.
//
// Transfers between pipeline stages, KV-cache migrations and parameter loads all resolve
// to a (latency, bandwidth) pair determined by where the endpoints sit in the topology:
// same server (PCIe), same rack (NIC / ToR), across racks (oversubscribed spine), or
// remote storage (parameter fetches). Concurrent flows on the same tier fair-share
// bandwidth; the share is fixed at flow start, which keeps the DES simple and errs
// pessimistically for short flows (documented deviation).
//
// §8 of the paper contrasts NCCL connection setup (seconds) with an RDMA/sendfile path
// (microseconds); TransferSetupTime models that difference.
#ifndef FLEXPIPE_SRC_CLUSTER_NETWORK_H_
#define FLEXPIPE_SRC_CLUSTER_NETWORK_H_

#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

enum class LinkTier : int {
  kSameGpu = 0,     // no transfer needed
  kIntraServer = 1, // PCIe between GPUs in one server
  kIntraRack = 2,   // NIC + top-of-rack switch
  kInterRack = 3,   // spine, oversubscribed
  kStorage = 4,     // remote parameter store -> server
};

enum class TransferProtocol : int {
  kRdma = 0,      // hierarchical RDMA path (FlexPipe's implementation, §8)
  kNcclStyle = 1, // collective-library connection with expensive setup
  kSendfile = 2,  // kernel-space fallback for machines without RDMA
};

struct NetworkConfig {
  BytesPerSec pcie_bandwidth = GiBps(24.0);      // PCIe 4.0 x16 effective
  BytesPerSec nic_bandwidth = GbpsToBytesPerSec(100.0);
  BytesPerSec inter_rack_bandwidth = GbpsToBytesPerSec(40.0);  // 2.5:1 oversubscription
  BytesPerSec storage_stream_bandwidth = GiBps(1.5);  // per parallel fetch stream

  TimeNs pcie_latency = FromMicros(5);
  TimeNs intra_rack_latency = FromMicros(20);
  TimeNs inter_rack_latency = FromMicros(60);
  TimeNs storage_latency = FromMillis(2);

  TimeNs rdma_setup = FromMicros(50);
  TimeNs nccl_setup = FromSeconds(2.5);  // §8: "several seconds"
  TimeNs sendfile_setup = FromMicros(200);

  double rdma_fraction = 0.8;  // fraction of servers with RDMA NICs
};

class FLEXPIPE_THREAD_HOSTILE NetworkModel {
 public:
  NetworkModel(const Cluster* cluster, const NetworkConfig& config);

  LinkTier TierBetween(GpuId a, GpuId b) const;

  BytesPerSec Bandwidth(LinkTier tier) const;
  TimeNs Latency(LinkTier tier) const;
  TimeNs SetupTime(TransferProtocol protocol) const;

  // One-shot transfer estimate including propagation latency and fair sharing with
  // currently active flows on the same tier.
  TimeNs EstimateTransfer(GpuId src, GpuId dst, Bytes size) const;

  // Flow accounting for contention: callers register flows for their duration.
  void AddFlow(LinkTier tier);
  void RemoveFlow(LinkTier tier);
  int active_flows(LinkTier tier) const;

  // Effective bandwidth after fair-sharing with active flows (the new flow included).
  BytesPerSec EffectiveBandwidth(LinkTier tier) const;

  const NetworkConfig& config() const { return config_; }
  // Topology the model prices against; degradation-aware callers read per-server
  // perf/link factors through it.
  const Cluster* cluster() const { return cluster_; }

 private:
  const Cluster* cluster_;
  NetworkConfig config_;
  int flows_[5] = {0, 0, 0, 0, 0};
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CLUSTER_NETWORK_H_
