#include "src/cluster/topology.h"

#include <algorithm>

namespace flexpipe {

void Gpu::Reserve(Bytes bytes, double sm_load) {
  FLEXPIPE_CHECK_MSG(CanReserve(bytes), "GPU memory overcommit by serving system");
  reserved_memory_ += bytes;
  reserved_sm_ += sm_load;
  if (owner_ != nullptr) {
    owner_->OnGpuFreeChanged(id_);
  }
}

void Gpu::Release(Bytes bytes, double sm_load) {
  FLEXPIPE_CHECK(bytes <= reserved_memory_);
  reserved_memory_ -= bytes;
  reserved_sm_ = std::max(0.0, reserved_sm_ - sm_load);
  if (owner_ != nullptr) {
    owner_->OnGpuFreeChanged(id_);
  }
}

void Gpu::SetBackground(Bytes memory, double sm_load, int tenants) {
  // Background tenants never evict our reservations; clamp to what still fits.
  Bytes max_bg = spec_.memory - reserved_memory_;
  background_memory_ = std::clamp<Bytes>(memory, 0, max_bg);
  background_sm_ = std::clamp(sm_load, 0.0, 1.0);
  tenant_count_ = std::max(0, tenants);
  if (owner_ != nullptr) {
    owner_->OnGpuFreeChanged(id_);
  }
}

Cluster::Cluster(const ClusterConfig& config) {
  int rack_count = std::max(1, config.racks);
  racks_.resize(static_cast<size_t>(rack_count));
  for (int r = 0; r < rack_count; ++r) {
    racks_[static_cast<size_t>(r)].id = r;
  }

  auto add_server = [&](int gpu_count) {
    ServerId sid = static_cast<ServerId>(servers_.size());
    Server server;
    server.id = sid;
    server.rack = static_cast<RackId>(sid % rack_count);
    server.host_memory = config.host_memory;
    for (int g = 0; g < gpu_count; ++g) {
      GpuId gid = static_cast<GpuId>(gpus_.size());
      gpus_.emplace_back(gid, sid, config.gpu_spec);
      server.gpus.push_back(gid);
    }
    racks_[static_cast<size_t>(server.rack)].servers.push_back(sid);
    servers_.push_back(std::move(server));
  };

  // Interleave server sizes across racks so no rack is all-large or all-small.
  int remaining_1 = config.servers_1gpu;
  int remaining_2 = config.servers_2gpu;
  int remaining_4 = config.servers_4gpu;
  int remaining_0 = config.cpu_only_servers;
  while (remaining_1 + remaining_2 + remaining_4 + remaining_0 > 0) {
    if (remaining_2 > 0) {
      add_server(2);
      --remaining_2;
    }
    if (remaining_1 > 0) {
      add_server(1);
      --remaining_1;
    }
    if (remaining_4 > 0) {
      add_server(4);
      --remaining_4;
    }
    if (remaining_0 > 0) {
      add_server(0);
      --remaining_0;
    }
  }

  // Failure-domain derivation: power domains tile the rack id space in order, and
  // thermal zones chunk each rack's construction-order server list into groups of
  // `servers_per_thermal_zone`, numbered cluster-wide in (rack, chunk) order. Both are
  // pure functions of the config, so replays see identical domains.
  int racks_per_domain = std::max(1, config.racks_per_power_domain);
  power_domain_racks_.resize(
      static_cast<size_t>((rack_count + racks_per_domain - 1) / racks_per_domain));
  for (int r = 0; r < rack_count; ++r) {
    power_domain_racks_[static_cast<size_t>(r / racks_per_domain)].push_back(r);
  }
  int zone_size = std::max(1, config.servers_per_thermal_zone);
  for (const Rack& rack : racks_) {
    for (size_t i = 0; i < rack.servers.size(); ++i) {
      if (i % static_cast<size_t>(zone_size) == 0) {
        thermal_zone_servers_.emplace_back();
      }
      ThermalZoneId zone = static_cast<ThermalZoneId>(thermal_zone_servers_.size()) - 1;
      thermal_zone_servers_.back().push_back(rack.servers[i]);
      servers_[static_cast<size_t>(rack.servers[i])].thermal_zone = zone;
    }
  }
  for (Server& s : servers_) {
    s.power_domain = static_cast<PowerDomainId>(s.rack / racks_per_domain);
  }

  for (Gpu& g : gpus_) {
    g.owner_ = this;
  }
  gpu_failed_.assign(gpus_.size(), 0);
  gpu_usable_.assign(gpus_.size(), 1);
  rack_reachable_.assign(racks_.size(), 1);
  server_perf_.assign(servers_.size(), 1.0);
  server_link_factor_.assign(servers_.size(), 1.0);
  RebuildFreeIndex();
}

void Cluster::SetServerPerf(ServerId id, double perf) {
  FLEXPIPE_CHECK_MSG(perf > 0.0 && perf <= 1.0, "server perf multiplier outside (0, 1]");
  bool was = ServerDegraded(id);
  server_perf_[static_cast<size_t>(id)] = perf;
  bool now = ServerDegraded(id);
  degraded_server_count_ += static_cast<int>(now) - static_cast<int>(was);
}

void Cluster::SetServerLinkFactor(ServerId id, double factor) {
  FLEXPIPE_CHECK_MSG(factor > 0.0 && factor <= 1.0,
                     "server link factor outside (0, 1]");
  bool was = ServerDegraded(id);
  server_link_factor_[static_cast<size_t>(id)] = factor;
  bool now = ServerDegraded(id);
  degraded_server_count_ += static_cast<int>(now) - static_cast<int>(was);
}

void Cluster::SetGpuFailed(GpuId id) {
  size_t i = static_cast<size_t>(id);
  if (gpu_failed_[i] != 0) {
    return;
  }
  gpu_failed_[i] = 1;
  ++failed_gpu_count_;
  RefreshGpuUsable(id);
}

void Cluster::SetServerFailed(ServerId id) {
  for (GpuId g : server(id).gpus) {
    SetGpuFailed(g);
  }
}

void Cluster::SetRackReachable(RackId id, bool reachable) {
  size_t i = static_cast<size_t>(id);
  uint8_t flag = reachable ? 1 : 0;
  if (rack_reachable_[i] == flag) {
    return;
  }
  rack_reachable_[i] = flag;
  for (ServerId sid : racks_[i].servers) {
    for (GpuId g : server(sid).gpus) {
      bool usable = gpu_failed_[static_cast<size_t>(g)] == 0 && flag != 0;
      gpu_usable_[static_cast<size_t>(g)] = usable ? 1 : 0;
    }
    RecomputeServer(sid);
  }
}

void Cluster::RefreshGpuUsable(GpuId id) {
  ServerId sid = gpus_[static_cast<size_t>(id)].server();
  bool usable = gpu_failed_[static_cast<size_t>(id)] == 0 &&
                rack_reachable_[static_cast<size_t>(servers_[static_cast<size_t>(sid)].rack)] != 0;
  gpu_usable_[static_cast<size_t>(id)] = usable ? 1 : 0;
  RecomputeServer(sid);
}

void Cluster::RebuildFreeIndex() {
  Bytes max_capacity = 0;
  for (const Gpu& g : gpus_) {
    max_capacity = std::max(max_capacity, g.memory_capacity());
  }
  // One bucket per GiB of the largest device, plus bucket 0 for empty servers.
  int buckets = static_cast<int>(max_capacity >> 30) + 2;
  bucket_head_.assign(static_cast<size_t>(buckets), kInvalidServer);
  bucket_next_.assign(servers_.size(), kInvalidServer);
  bucket_prev_.assign(servers_.size(), kInvalidServer);
  server_max_free_.assign(servers_.size(), 0);
  server_max_headroom_.assign(servers_.size(), 0.0);
  server_bucket_.assign(servers_.size(), -1);
  for (const Server& s : servers_) {
    Bytes mx = 0;
    double headroom = 0.0;
    for (GpuId g : s.gpus) {
      if (!GpuUsable(g)) {
        continue;  // failed or partitioned: contributes nothing to the index
      }
      mx = std::max(mx, gpu(g).free_memory());
      headroom = std::max(headroom, std::max(0.0, 1.0 - gpu(g).sm_utilization()));
    }
    server_max_free_[static_cast<size_t>(s.id)] = mx;
    server_max_headroom_[static_cast<size_t>(s.id)] = headroom;
    BucketInsert(s.id, BucketFor(mx));
  }
}

void Cluster::BucketInsert(ServerId id, int bucket) {
  server_bucket_[static_cast<size_t>(id)] = bucket;
  ServerId head = bucket_head_[static_cast<size_t>(bucket)];
  bucket_next_[static_cast<size_t>(id)] = head;
  bucket_prev_[static_cast<size_t>(id)] = kInvalidServer;
  if (head != kInvalidServer) {
    bucket_prev_[static_cast<size_t>(head)] = id;
  }
  bucket_head_[static_cast<size_t>(bucket)] = id;
}

void Cluster::BucketRemove(ServerId id) {
  ServerId prev = bucket_prev_[static_cast<size_t>(id)];
  ServerId next = bucket_next_[static_cast<size_t>(id)];
  if (prev != kInvalidServer) {
    bucket_next_[static_cast<size_t>(prev)] = next;
  } else {
    bucket_head_[static_cast<size_t>(server_bucket_[static_cast<size_t>(id)])] = next;
  }
  if (next != kInvalidServer) {
    bucket_prev_[static_cast<size_t>(next)] = prev;
  }
}

void Cluster::OnGpuFreeChanged(GpuId id) {
  RecomputeServer(gpus_[static_cast<size_t>(id)].server());
}

void Cluster::RecomputeServer(ServerId sid) {
  const Server& s = servers_[static_cast<size_t>(sid)];
  // Per-server GPU counts are tiny (<= 4 in every config), so recomputing the maxima
  // is cheaper than maintaining per-server heaps.
  Bytes mx = 0;
  double headroom = 0.0;
  for (GpuId g : s.gpus) {
    if (!GpuUsable(g)) {
      continue;
    }
    const Gpu& gpu = gpus_[static_cast<size_t>(g)];
    mx = std::max(mx, gpu.free_memory());
    headroom = std::max(headroom, std::max(0.0, 1.0 - gpu.sm_utilization()));
  }
  server_max_headroom_[static_cast<size_t>(sid)] = headroom;
  if (mx == server_max_free_[static_cast<size_t>(sid)]) {
    return;
  }
  server_max_free_[static_cast<size_t>(sid)] = mx;
  int bucket = BucketFor(mx);
  if (bucket != server_bucket_[static_cast<size_t>(sid)]) {
    BucketRemove(sid);
    BucketInsert(sid, bucket);
  }
}

std::vector<GpuId> Cluster::AllGpuIds() const {
  std::vector<GpuId> ids(gpus_.size());
  for (size_t i = 0; i < gpus_.size(); ++i) {
    ids[i] = static_cast<GpuId>(i);
  }
  return ids;
}

std::vector<GpuId> Cluster::GpusWithFreeMemory(Bytes bytes) const {
  std::vector<GpuId> out;
  // Server-major enumeration through the free index: servers whose best GPU cannot
  // fit are skipped wholesale. The final sort fixes a deterministic order, so the
  // unordered bucket visit is invisible to callers.
  ForEachServerWithFreeAtLeast(bytes, [&](ServerId sid) {
    for (GpuId g : server(sid).gpus) {
      if (GpuUsable(g) && gpu(g).free_memory() >= bytes) {
        out.push_back(g);
      }
    }
  });
  std::sort(out.begin(), out.end(), [this](GpuId a, GpuId b) {
    Bytes fa = gpu(a).free_memory();
    Bytes fb = gpu(b).free_memory();
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  });
  return out;
}

std::vector<GpuId> Cluster::BestColocatedGroup(Bytes bytes_per_gpu) const {
  std::vector<GpuId> best;
  for (const Server& s : servers_) {
    if (server_max_free_[static_cast<size_t>(s.id)] < bytes_per_gpu) {
      continue;  // no GPU on this server fits even one
    }
    std::vector<GpuId> eligible;
    for (GpuId g : s.gpus) {
      if (GpuUsable(g) && gpu(g).free_memory() >= bytes_per_gpu) {
        eligible.push_back(g);
      }
    }
    if (eligible.size() > best.size()) {
      best = std::move(eligible);
    }
  }
  return best;
}

bool Cluster::TryReserveHostMemory(ServerId id, Bytes bytes) {
  Server& s = server(id);
  if (s.host_memory_used + bytes > s.host_memory) {
    return false;
  }
  s.host_memory_used += bytes;
  return true;
}

void Cluster::ReleaseHostMemory(ServerId id, Bytes bytes) {
  Server& s = server(id);
  FLEXPIPE_CHECK(bytes <= s.host_memory_used);
  s.host_memory_used -= bytes;
}

double Cluster::MeanSmUtilization() const {
  if (gpus_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Gpu& g : gpus_) {
    sum += g.sm_utilization();
  }
  return sum / static_cast<double>(gpus_.size());
}

double Cluster::MeanMemoryUtilization() const {
  if (gpus_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Gpu& g : gpus_) {
    sum += g.memory_utilization();
  }
  return sum / static_cast<double>(gpus_.size());
}

double Cluster::MeanSubscriptionRate() const {
  if (gpus_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Gpu& g : gpus_) {
    sum += static_cast<double>(g.subscriber_count());
  }
  return sum / static_cast<double>(gpus_.size());
}

ClusterConfig EvalClusterConfig() { return ClusterConfig{}; }

ClusterConfig MeasurementClusterC1() {
  // 430 nodes / 468 GPUs: mostly 1-GPU nodes with a few 2-GPU ones.
  ClusterConfig config;
  config.servers_1gpu = 392;
  config.servers_2gpu = 38;
  config.servers_4gpu = 0;
  config.cpu_only_servers = 0;
  config.racks = 24;
  return config;
}

ClusterConfig MeasurementClusterC2() {
  // 927 nodes / 1175 GPUs: hybrid training-inference cluster with some 4-GPU nodes.
  ClusterConfig config;
  config.servers_1gpu = 755;
  config.servers_2gpu = 140;
  config.servers_4gpu = 35;
  config.cpu_only_servers = 0;  // 755 + 280 + 140 = 1175 GPUs
  config.racks = 48;
  return config;
}

}  // namespace flexpipe
