// Cluster topology model: GPUs grouped into servers grouped into racks.
//
// This is the simulated stand-in for the paper's 42-server / 82-GPU Kubernetes testbed.
// Each GPU tracks two kinds of occupancy: background tenants (the fragmentation the
// paper measures in §3.1 — other teams' workloads that come and go) and reservations
// made by the serving system under test. Control-plane code only sees free memory,
// topology relations and link tiers, which is exactly the information a real scheduler
// gets from the Kubernetes API + NVML.
//
// The cluster additionally maintains an incremental free-GPU index: a per-server
// free-memory maximum plus bucketed lists of servers keyed by that maximum, updated on
// every Reserve/Release/SetBackground. Placement-time candidate enumeration
// (ForEachServerWithFreeAtLeast) then visits only servers that can possibly satisfy a
// stage's memory need, instead of scanning every GPU in the cluster.
#ifndef FLEXPIPE_SRC_CLUSTER_TOPOLOGY_H_
#define FLEXPIPE_SRC_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/macros.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

using GpuId = int32_t;
using ServerId = int32_t;
using RackId = int32_t;
using PowerDomainId = int32_t;
using ThermalZoneId = int32_t;

inline constexpr GpuId kInvalidGpu = -1;
inline constexpr ServerId kInvalidServer = -1;

struct GpuSpec {
  Bytes memory = GiB(40);   // A100-40GB class device
  double sm_capacity = 1.0; // normalized streaming-multiprocessor capacity
};

// One background tenant occupying part of a GPU (another team's service).
struct BackgroundTenant {
  Bytes memory = 0;
  double sm_load = 0.0;     // fraction of SM capacity consumed
};

class Cluster;

class FLEXPIPE_THREAD_HOSTILE Gpu {
 public:
  Gpu(GpuId id, ServerId server, const GpuSpec& spec) : id_(id), server_(server), spec_(spec) {}

  GpuId id() const { return id_; }
  ServerId server() const { return server_; }
  const GpuSpec& spec() const { return spec_; }

  Bytes memory_capacity() const { return spec_.memory; }
  Bytes background_memory() const { return background_memory_; }
  Bytes reserved_memory() const { return reserved_memory_; }
  Bytes used_memory() const { return background_memory_ + reserved_memory_; }
  Bytes free_memory() const { return spec_.memory - used_memory(); }
  double memory_utilization() const {
    return static_cast<double>(used_memory()) / static_cast<double>(spec_.memory);
  }

  double background_sm() const { return background_sm_; }
  double reserved_sm() const { return reserved_sm_; }
  double sm_utilization() const { return background_sm_ + reserved_sm_; }

  int tenant_count() const { return tenant_count_; }
  // Our serving system counts as one more "subscriber" when it holds a reservation.
  int subscriber_count() const { return tenant_count_ + (reserved_memory_ > 0 ? 1 : 0); }

  bool CanReserve(Bytes bytes) const { return bytes <= free_memory(); }

  void Reserve(Bytes bytes, double sm_load);
  void Release(Bytes bytes, double sm_load);

  // Fragmentation generator interface: replaces the entire background population.
  void SetBackground(Bytes memory, double sm_load, int tenants);

 private:
  friend class Cluster;

  GpuId id_;
  ServerId server_;
  GpuSpec spec_;
  Bytes background_memory_ = 0;
  double background_sm_ = 0.0;
  int tenant_count_ = 0;
  Bytes reserved_memory_ = 0;
  double reserved_sm_ = 0.0;
  // Owning cluster for free-index maintenance; null for standalone Gpu objects.
  Cluster* owner_ = nullptr;
};

struct Server {
  ServerId id = kInvalidServer;
  RackId rack = -1;
  // Correlated-failure domains, derived deterministically from the rack layout (see
  // Cluster's constructor): the power domain groups whole racks behind one feed, the
  // thermal zone groups consecutive same-rack servers sharing airflow.
  PowerDomainId power_domain = -1;
  ThermalZoneId thermal_zone = -1;
  std::vector<GpuId> gpus;
  Bytes host_memory = GiB(256);   // paper: each server has >= 256 GB
  Bytes host_memory_used = 0;
};

struct Rack {
  RackId id = -1;
  std::vector<ServerId> servers;
};

struct ClusterConfig {
  // Number of servers with 1, 2 and 4 GPUs respectively; racks filled round-robin.
  int servers_1gpu = 14;
  int servers_2gpu = 20;
  int servers_4gpu = 7;  // 14 + 40 + 28 = 82 GPUs on 41 servers (+1 CPU-only head)
  int cpu_only_servers = 1;
  int racks = 6;
  GpuSpec gpu_spec;
  Bytes host_memory = GiB(256);
  // Correlated-failure domain shape: consecutive racks share a power feed (a feed trip
  // drops them together) and consecutive servers within a rack share airflow (a thermal
  // runaway cooks its zone neighbours). Both ids derive deterministically from the rack
  // layout, so the same config always yields the same domains.
  int racks_per_power_domain = 2;
  int servers_per_thermal_zone = 4;
};

class FLEXPIPE_THREAD_HOSTILE Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  // GPUs hold a back-pointer into the cluster for index maintenance.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int gpu_count() const { return static_cast<int>(gpus_.size()); }
  int server_count() const { return static_cast<int>(servers_.size()); }
  int rack_count() const { return static_cast<int>(racks_.size()); }

  Gpu& gpu(GpuId id) {
    FLEXPIPE_DCHECK(id >= 0 && id < gpu_count());
    return gpus_[static_cast<size_t>(id)];
  }
  const Gpu& gpu(GpuId id) const {
    FLEXPIPE_DCHECK(id >= 0 && id < gpu_count());
    return gpus_[static_cast<size_t>(id)];
  }
  Server& server(ServerId id) { return servers_[static_cast<size_t>(id)]; }
  const Server& server(ServerId id) const { return servers_[static_cast<size_t>(id)]; }
  const Rack& rack(RackId id) const { return racks_[static_cast<size_t>(id)]; }

  ServerId ServerOf(GpuId id) const { return gpu(id).server(); }
  RackId RackOf(ServerId id) const { return server(id).rack; }
  bool SameServer(GpuId a, GpuId b) const { return ServerOf(a) == ServerOf(b); }
  bool SameRack(GpuId a, GpuId b) const {
    return RackOf(ServerOf(a)) == RackOf(ServerOf(b));
  }

  // -- Failure domains ------------------------------------------------------------------
  // Derived deterministically from the rack layout at construction (see ClusterConfig):
  // power domains tile the rack id space in order; thermal zones chunk each rack's
  // server list, numbered cluster-wide in (rack, chunk) order so zones `z` and `z±1`
  // are airflow neighbours (same rack, or adjacent across a rack boundary).
  PowerDomainId PowerDomainOf(ServerId id) const { return server(id).power_domain; }
  ThermalZoneId ThermalZoneOf(ServerId id) const { return server(id).thermal_zone; }
  int power_domain_count() const {
    return static_cast<int>(power_domain_racks_.size());
  }
  int thermal_zone_count() const {
    return static_cast<int>(thermal_zone_servers_.size());
  }
  const std::vector<RackId>& PowerDomainRacks(PowerDomainId id) const {
    return power_domain_racks_[static_cast<size_t>(id)];
  }
  const std::vector<ServerId>& ThermalZoneServers(ThermalZoneId id) const {
    return thermal_zone_servers_[static_cast<size_t>(id)];
  }

  std::vector<GpuId> AllGpuIds() const;

  // GPUs with at least `bytes` free, sorted by descending free memory.
  std::vector<GpuId> GpusWithFreeMemory(Bytes bytes) const;

  // -- Faults ---------------------------------------------------------------------------
  // Marks a GPU (or every GPU on a server) permanently dead: it leaves the free-GPU
  // index and placement never selects it again. Reservation accounting is deliberately
  // preserved — the owning serving system still releases what it reserved, so the
  // Reserve/Release bookkeeping stays balanced through a failure.
  void SetGpuFailed(GpuId id);
  void SetServerFailed(ServerId id);
  // Rack network partition: the rack's GPUs keep their occupancy but are unusable
  // (excluded from the index and placement) until the rack is marked reachable again.
  void SetRackReachable(RackId id, bool reachable);

  bool GpuFailed(GpuId id) const { return gpu_failed_[static_cast<size_t>(id)] != 0; }
  bool RackReachable(RackId id) const {
    return rack_reachable_[static_cast<size_t>(id)] != 0;
  }
  // Alive and reachable: the single predicate every placement loop checks. One byte
  // load on the no-fault hot path.
  bool GpuUsable(GpuId id) const { return gpu_usable_[static_cast<size_t>(id)] != 0; }
  int failed_gpu_count() const { return failed_gpu_count_; }

  // -- Fail-slow degradation ------------------------------------------------------------
  // Gray failures: per-server performance multipliers in (0, 1]. `perf` scales compute
  // throughput (0.6 == thermal throttle to 60% of nominal), `link` scales the server's
  // NIC bandwidth (stretching KV transfers and parameter loads). Both default to 1.0;
  // setting a factor back to 1.0 clears that axis of degradation. Unlike fail-stop
  // faults a degraded server stays in the free-GPU index — placement still selects it
  // unless a health layer quarantines it, which is exactly the gray-failure hazard.
  void SetServerPerf(ServerId id, double perf);
  void SetServerLinkFactor(ServerId id, double factor);
  double ServerPerf(ServerId id) const { return server_perf_[static_cast<size_t>(id)]; }
  double ServerLinkFactor(ServerId id) const {
    return server_link_factor_[static_cast<size_t>(id)];
  }
  bool ServerDegraded(ServerId id) const {
    return server_perf_[static_cast<size_t>(id)] != 1.0 ||
           server_link_factor_[static_cast<size_t>(id)] != 1.0;
  }
  // One-branch guard for hot paths: when false, every perf/link factor is exactly 1.0
  // and degradation-aware code can skip straight to the healthy arithmetic, keeping
  // no-fault runs bit-identical to pre-fail-slow builds.
  bool AnyDegraded() const { return degraded_server_count_ > 0; }
  int degraded_server_count() const { return degraded_server_count_; }

  // Largest set of same-server GPUs each having `bytes` free (for tensor-parallel
  // feasibility measurements); returns the GPU ids of the best server.
  std::vector<GpuId> BestColocatedGroup(Bytes bytes_per_gpu) const;

  // -- Free-GPU index -------------------------------------------------------------------
  // Largest single-GPU free memory on `id` (0 for CPU-only servers).
  Bytes server_max_free(ServerId id) const {
    return server_max_free_[static_cast<size_t>(id)];
  }
  // Largest single-GPU SM headroom (max over GPUs of max(0, 1 - sm_utilization)) on
  // `id`; lets the placer bound per-server scores without touching each GPU.
  double server_max_headroom(ServerId id) const {
    return server_max_headroom_[static_cast<size_t>(id)];
  }
  // Visits every server whose free-memory maximum is >= `bytes`, via the bucketed
  // index: servers that cannot host any stage of size `bytes` are never touched.
  // Buckets are visited from most-free downward so score-bound pruning locks onto a
  // strong incumbent early; visit order within a bucket is unspecified — callers
  // needing determinism must make their selection order-invariant (e.g. argmax with
  // an explicit id tie-break).
  template <typename Fn>
  void ForEachServerWithFreeAtLeast(Bytes bytes, Fn&& fn) const {
    for (int b = static_cast<int>(bucket_head_.size()) - 1; b >= BucketFor(bytes); --b) {
      for (ServerId s = bucket_head_[static_cast<size_t>(b)]; s != kInvalidServer;
           s = bucket_next_[static_cast<size_t>(s)]) {
        if (server_max_free_[static_cast<size_t>(s)] >= bytes) {
          fn(s);
        }
      }
    }
  }

  // Host-memory accounting used by the parameter cache.
  bool TryReserveHostMemory(ServerId id, Bytes bytes);
  void ReleaseHostMemory(ServerId id, Bytes bytes);

  // Aggregate statistics (Table 1 / Fig. 2 reporting).
  double MeanSmUtilization() const;
  double MeanMemoryUtilization() const;
  double MeanSubscriptionRate() const;  // subscribers per GPU, 1.0 == 100%

 private:
  friend class Gpu;
  // Debug-build invariant audits recompute the free index from the GPUs themselves.
  friend class SimulationAuditor;

  // Bucket granularity: 1 GiB per bucket, clamped to the largest GPU capacity. A
  // server's bucket only depends on its free-memory maximum, so moves are O(1)
  // intrusive-list splices and queries skip whole buckets below the need.
  int BucketFor(Bytes bytes) const {
    if (bytes <= 0) {
      return 0;
    }
    int b = static_cast<int>(bytes >> 30);
    int last = static_cast<int>(bucket_head_.size()) - 1;
    return b < last ? b : last;
  }
  void OnGpuFreeChanged(GpuId id);
  void BucketInsert(ServerId id, int bucket);
  void BucketRemove(ServerId id);
  void RebuildFreeIndex();
  // Recomputes one server's free-memory maximum / headroom over its *usable* GPUs and
  // re-buckets it if the maximum moved.
  void RecomputeServer(ServerId id);
  // Re-derives gpu_usable_ for one GPU from the failed flag and rack reachability.
  void RefreshGpuUsable(GpuId id);

  std::vector<Gpu> gpus_;
  std::vector<Server> servers_;
  std::vector<Rack> racks_;

  // Failure-domain membership (fixed at construction).
  std::vector<std::vector<RackId>> power_domain_racks_;
  std::vector<std::vector<ServerId>> thermal_zone_servers_;

  // Fault state (see SetGpuFailed / SetRackReachable).
  std::vector<uint8_t> gpu_failed_;
  std::vector<uint8_t> gpu_usable_;
  std::vector<uint8_t> rack_reachable_;
  int failed_gpu_count_ = 0;

  // Fail-slow state (see SetServerPerf / SetServerLinkFactor). The count caches how
  // many servers have either factor != 1.0 so AnyDegraded() is one integer compare.
  std::vector<double> server_perf_;
  std::vector<double> server_link_factor_;
  int degraded_server_count_ = 0;

  // Free-GPU index state (see ForEachServerWithFreeAtLeast).
  std::vector<Bytes> server_max_free_;
  std::vector<double> server_max_headroom_;
  std::vector<int> server_bucket_;
  std::vector<ServerId> bucket_head_;   // per bucket, head of intrusive list
  std::vector<ServerId> bucket_next_;   // per server
  std::vector<ServerId> bucket_prev_;   // per server
};

// The evaluation cluster from §9 (42 servers / 82 GPUs).
ClusterConfig EvalClusterConfig();

// The measurement clusters from Table 1 (C1: 430 nodes / 468 GPUs, C2: 927 / 1175).
ClusterConfig MeasurementClusterC1();
ClusterConfig MeasurementClusterC2();

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CLUSTER_TOPOLOGY_H_
