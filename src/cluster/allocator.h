// Substrate-level GPU allocator with serverless provisioning semantics.
//
// This models what the Kubernetes/serverless layer gives every serving system: a way to
// request GPUs with enough free memory, after a provisioning delay (scheduling +
// container start, multi-second per §2.2). It is deliberately policy-light — first-fit /
// best-fit / scatter — because topology-aware placement is FlexPipe's contribution and
// lives in src/core/scaling. Baseline systems allocate through this interface.
#ifndef FLEXPIPE_SRC_CLUSTER_ALLOCATOR_H_
#define FLEXPIPE_SRC_CLUSTER_ALLOCATOR_H_

#include <vector>

#include "src/cluster/topology.h"
#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

enum class PlacementPolicy : int {
  kFirstFit = 0,   // lowest GPU id that fits
  kBestFit = 1,    // least free memory that still fits (packs tightly)
  kWorstFit = 2,   // most free memory (spreads)
  kScatter = 3,    // random eligible GPU (serverless anti-affinity behaviour, §2.2)
};

struct AllocationRequest {
  int gpu_count = 1;
  Bytes bytes_per_gpu = 0;
  double sm_per_gpu = 0.6;                // SM share the stage will consume
  bool distinct_servers = false;          // anti-colocate stages of one model (§6.2)
  PlacementPolicy policy = PlacementPolicy::kScatter;
};

struct AllocationResult {
  bool success = false;
  std::vector<GpuId> gpus;
  TimeNs provisioning_delay = 0;  // to be awaited by the caller before use
};

struct AllocatorConfig {
  // Provisioning delay: log-normal, median ~2.5 s (multi-second serverless scaling).
  double provision_median_s = 2.5;
  double provision_sigma = 0.45;
  // Extra delay per additional GPU in one request (sequential pod binding).
  double per_gpu_extra_s = 0.35;
};

class FLEXPIPE_THREAD_HOSTILE ClusterAllocator {
 public:
  ClusterAllocator(Cluster* cluster, const AllocatorConfig& config, uint64_t seed);

  // Reserves memory on the selected GPUs immediately (so concurrent requests cannot
  // double-book) and reports the provisioning delay the caller must wait out.
  AllocationResult Allocate(const AllocationRequest& request);

  void Release(const std::vector<GpuId>& gpus, Bytes bytes_per_gpu, double sm_per_gpu);

  // Statistics for the case-study bench.
  int64_t total_requests() const { return total_requests_; }
  int64_t failed_requests() const { return failed_requests_; }

 private:
  std::vector<GpuId> SelectGpus(const AllocationRequest& request);

  Cluster* cluster_;
  AllocatorConfig config_;
  Rng rng_;
  int64_t total_requests_ = 0;
  int64_t failed_requests_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CLUSTER_ALLOCATOR_H_
