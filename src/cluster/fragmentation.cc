#include "src/cluster/fragmentation.h"

#include <algorithm>
#include <cmath>

namespace flexpipe {

FragmentationProfile ProfileClusterC1() {
  // Targets: mem mean 43.5%, P50 28.8%, P95 99.1%; SM mean 16.9%, P50 9.2%, P95 80.5%.
  FragmentationProfile p;
  p.saturated_prob = 0.15;
  p.idle_prob = 0.10;
  p.body_median = 0.30;
  p.body_sigma = 0.70;
  p.sm_ratio_median = 0.30;
  p.sm_ratio_sigma = 0.60;
  p.mean_tenants = 2.16;
  return p;
}

FragmentationProfile ProfileClusterC2() {
  // Targets: mem mean 50.9%, P50 53.7%, P95 99.3%; SM mean 23.7%, P50 10.9%, P95 85.4%.
  FragmentationProfile p;
  p.saturated_prob = 0.17;
  p.idle_prob = 0.07;
  p.body_median = 0.46;
  p.body_sigma = 0.52;
  p.sm_ratio_median = 0.34;
  p.sm_ratio_sigma = 0.72;
  p.mean_tenants = 2.3;
  return p;
}

FragmentationGenerator::FragmentationGenerator(Cluster* cluster,
                                               const FragmentationProfile& profile, uint64_t seed)
    : cluster_(cluster), profile_(profile), rng_(seed) {
  FLEXPIPE_CHECK(cluster != nullptr);
}

void FragmentationGenerator::SampleGpu(Gpu& gpu) {
  double mem_util;
  double roll = rng_.Uniform();
  if (roll < profile_.saturated_prob) {
    mem_util = rng_.Uniform(0.93, 0.998);
  } else if (roll < profile_.saturated_prob + profile_.idle_prob) {
    mem_util = rng_.Uniform(0.0, 0.08);
  } else {
    mem_util = rng_.LogNormal(std::log(profile_.body_median), profile_.body_sigma);
    mem_util = std::min(mem_util, profile_.body_cap);
  }

  double sm_ratio = rng_.LogNormal(std::log(profile_.sm_ratio_median), profile_.sm_ratio_sigma);
  double sm_util = std::clamp(mem_util * sm_ratio, 0.0, 1.0);

  // Tenant count: at least one when memory is occupied; 1 + Poisson with the rate set
  // so that the cluster-wide mean (including idle GPUs) matches the target subscription.
  int tenants = 0;
  if (mem_util > 0.01) {
    double occupied_mean = profile_.mean_tenants / std::max(1e-6, 1.0 - profile_.idle_prob);
    double lambda = std::max(0.0, occupied_mean - 1.0);
    std::poisson_distribution<int> poisson(lambda);
    tenants = 1 + std::min(poisson(rng_.engine()), 7);
  }

  Bytes bg_bytes = static_cast<Bytes>(mem_util * static_cast<double>(gpu.memory_capacity()));
  gpu.SetBackground(bg_bytes, sm_util, tenants);
}

void FragmentationGenerator::ApplySnapshot() {
  for (GpuId id : cluster_->AllGpuIds()) {
    SampleGpu(cluster_->gpu(id));
  }
}

void FragmentationGenerator::ChurnStep(double fraction) {
  for (GpuId id : cluster_->AllGpuIds()) {
    // Dead/partitioned GPUs host no background churn. Skipping *before* the draw keeps
    // the draw sequence bit-identical to pre-fault builds whenever no fault has fired.
    if (cluster_->GpuFailed(id)) {
      continue;
    }
    if (rng_.Uniform() < fraction) {
      SampleGpu(cluster_->gpu(id));
    }
  }
}

bool FragmentationGenerator::MaybeReoccupy(GpuId id) {
  if (cluster_->GpuFailed(id)) {
    return false;  // nothing left to grab; no draw consumed (see ChurnStep)
  }
  // §3.1: "Due to the immediate reallocation of released GPUs to competing workloads" —
  // model a high grab probability once our reservation is gone.
  if (rng_.Uniform() < 0.7) {
    SampleGpu(cluster_->gpu(id));
    return true;
  }
  return false;
}

}  // namespace flexpipe
