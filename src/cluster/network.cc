#include "src/cluster/network.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

NetworkModel::NetworkModel(const Cluster* cluster, const NetworkConfig& config)
    : cluster_(cluster), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr);
}

LinkTier NetworkModel::TierBetween(GpuId a, GpuId b) const {
  if (a == b) {
    return LinkTier::kSameGpu;
  }
  if (cluster_->SameServer(a, b)) {
    return LinkTier::kIntraServer;
  }
  if (cluster_->SameRack(a, b)) {
    return LinkTier::kIntraRack;
  }
  return LinkTier::kInterRack;
}

BytesPerSec NetworkModel::Bandwidth(LinkTier tier) const {
  switch (tier) {
    case LinkTier::kSameGpu:
      return GiBps(1000.0);  // device-local copy, effectively free at our scale
    case LinkTier::kIntraServer:
      return config_.pcie_bandwidth;
    case LinkTier::kIntraRack:
      return config_.nic_bandwidth;
    case LinkTier::kInterRack:
      return config_.inter_rack_bandwidth;
    case LinkTier::kStorage:
      return config_.storage_stream_bandwidth;
  }
  return config_.inter_rack_bandwidth;
}

TimeNs NetworkModel::Latency(LinkTier tier) const {
  switch (tier) {
    case LinkTier::kSameGpu:
      return 0;
    case LinkTier::kIntraServer:
      return config_.pcie_latency;
    case LinkTier::kIntraRack:
      return config_.intra_rack_latency;
    case LinkTier::kInterRack:
      return config_.inter_rack_latency;
    case LinkTier::kStorage:
      return config_.storage_latency;
  }
  return config_.inter_rack_latency;
}

TimeNs NetworkModel::SetupTime(TransferProtocol protocol) const {
  switch (protocol) {
    case TransferProtocol::kRdma:
      return config_.rdma_setup;
    case TransferProtocol::kNcclStyle:
      return config_.nccl_setup;
    case TransferProtocol::kSendfile:
      return config_.sendfile_setup;
  }
  return config_.sendfile_setup;
}

void NetworkModel::AddFlow(LinkTier tier) { ++flows_[static_cast<int>(tier)]; }

void NetworkModel::RemoveFlow(LinkTier tier) {
  int& f = flows_[static_cast<int>(tier)];
  FLEXPIPE_CHECK(f > 0);
  --f;
}

int NetworkModel::active_flows(LinkTier tier) const { return flows_[static_cast<int>(tier)]; }

BytesPerSec NetworkModel::EffectiveBandwidth(LinkTier tier) const {
  int sharers = std::max(1, flows_[static_cast<int>(tier)] + 1);
  return Bandwidth(tier) / static_cast<double>(sharers);
}

TimeNs NetworkModel::EstimateTransfer(GpuId src, GpuId dst, Bytes size) const {
  LinkTier tier = TierBetween(src, dst);
  if (tier == LinkTier::kSameGpu) {
    return 0;
  }
  BytesPerSec bw = EffectiveBandwidth(tier);
  // NIC-crossing tiers honour fail-slow link degradation: the flow runs at the sicker
  // endpoint's rate. Guarded so healthy runs never touch the per-server factors.
  if (cluster_->AnyDegraded() &&
      (tier == LinkTier::kIntraRack || tier == LinkTier::kInterRack)) {
    double factor = std::min(cluster_->ServerLinkFactor(cluster_->ServerOf(src)),
                             cluster_->ServerLinkFactor(cluster_->ServerOf(dst)));
    bw = bw * factor;
  }
  return Latency(tier) + TransferTime(size, bw);
}

}  // namespace flexpipe
