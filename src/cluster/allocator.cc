#include "src/cluster/allocator.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

ClusterAllocator::ClusterAllocator(Cluster* cluster, const AllocatorConfig& config, uint64_t seed)
    : cluster_(cluster), config_(config), rng_(seed) {
  FLEXPIPE_CHECK(cluster != nullptr);
}

std::vector<GpuId> ClusterAllocator::SelectGpus(const AllocationRequest& request) {
  std::vector<GpuId> eligible = cluster_->GpusWithFreeMemory(request.bytes_per_gpu);
  if (static_cast<int>(eligible.size()) < request.gpu_count) {
    return {};
  }

  switch (request.policy) {
    case PlacementPolicy::kWorstFit:
      // GpusWithFreeMemory is already sorted by descending free memory.
      break;
    case PlacementPolicy::kBestFit:
      std::reverse(eligible.begin(), eligible.end());
      break;
    case PlacementPolicy::kFirstFit:
      std::sort(eligible.begin(), eligible.end());
      break;
    case PlacementPolicy::kScatter:
      std::shuffle(eligible.begin(), eligible.end(), rng_.engine());
      break;
  }

  std::vector<GpuId> chosen;
  // At most `gpu_count` servers end up used: a linear scan over this flat vector beats
  // hashing and keeps the selection loop free of unordered containers.
  std::vector<ServerId> used_servers;
  for (GpuId id : eligible) {
    if (request.distinct_servers) {
      ServerId sid = cluster_->ServerOf(id);
      if (std::find(used_servers.begin(), used_servers.end(), sid) != used_servers.end()) {
        continue;
      }
      used_servers.push_back(sid);
    }
    chosen.push_back(id);
    if (static_cast<int>(chosen.size()) == request.gpu_count) {
      return chosen;
    }
  }
  return {};
}

AllocationResult ClusterAllocator::Allocate(const AllocationRequest& request) {
  FLEXPIPE_CHECK(request.gpu_count >= 1);
  FLEXPIPE_CHECK(request.bytes_per_gpu > 0);
  ++total_requests_;

  AllocationResult result;
  std::vector<GpuId> chosen = SelectGpus(request);
  if (chosen.empty()) {
    ++failed_requests_;
    return result;
  }
  for (GpuId id : chosen) {
    cluster_->gpu(id).Reserve(request.bytes_per_gpu, request.sm_per_gpu);
  }
  result.success = true;
  result.gpus = std::move(chosen);
  double delay_s = rng_.LogNormal(std::log(config_.provision_median_s), config_.provision_sigma) +
                   config_.per_gpu_extra_s * static_cast<double>(request.gpu_count - 1);
  result.provisioning_delay = FromSeconds(delay_s);
  return result;
}

void ClusterAllocator::Release(const std::vector<GpuId>& gpus, Bytes bytes_per_gpu,
                               double sm_per_gpu) {
  for (GpuId id : gpus) {
    cluster_->gpu(id).Release(bytes_per_gpu, sm_per_gpu);
  }
}

}  // namespace flexpipe
