// Background-tenant fragmentation generator.
//
// Reproduces the GPU occupancy statistics the paper measured in production (§3.1,
// Table 1, Fig. 2): ~216% subscription, right-skewed memory utilization with a
// near-saturated mass at P95+, SM utilization far below memory utilization, and
// ephemeral availability (released GPUs get re-grabbed by competing workloads).
//
// Occupancy is sampled at GPU granularity from a three-part mixture (idle / log-normal
// body / saturated), which matches the published percentiles without inventing
// per-tenant detail no experiment consumes.
#ifndef FLEXPIPE_SRC_CLUSTER_FRAGMENTATION_H_
#define FLEXPIPE_SRC_CLUSTER_FRAGMENTATION_H_

#include "src/cluster/topology.h"
#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/sim/simulation.h"

namespace flexpipe {

struct FragmentationProfile {
  double saturated_prob = 0.15;  // GPUs pinned near 100% memory
  double idle_prob = 0.10;       // nearly-empty GPUs
  double body_median = 0.30;     // log-normal body of memory utilization
  double body_sigma = 0.70;
  double body_cap = 0.92;
  double sm_ratio_median = 0.30;  // SM util as a fraction of memory util
  double sm_ratio_sigma = 0.60;
  double mean_tenants = 2.16;     // paper: 216% average subscription
};

// Calibrated to Table 1's C1 (inference-only) and C2 (hybrid) columns.
FragmentationProfile ProfileClusterC1();
FragmentationProfile ProfileClusterC2();

class FLEXPIPE_THREAD_HOSTILE FragmentationGenerator {
 public:
  FragmentationGenerator(Cluster* cluster, const FragmentationProfile& profile, uint64_t seed);

  // Re-samples background occupancy for every GPU.
  void ApplySnapshot();

  // Re-samples a random `fraction` of GPUs; models tenants arriving/leaving. Call this
  // periodically for a time-varying cluster.
  void ChurnStep(double fraction);

  // Serverless reallocation pressure: after the serving system releases a GPU,
  // background tenants may grab it. Returns true if the GPU was (partially) re-occupied.
  bool MaybeReoccupy(GpuId id);

  const FragmentationProfile& profile() const { return profile_; }

 private:
  void SampleGpu(Gpu& gpu);

  Cluster* cluster_;
  FragmentationProfile profile_;
  Rng rng_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CLUSTER_FRAGMENTATION_H_
