// Time and size units shared by the simulator and the control plane.
//
// Virtual time is an int64 nanosecond count: double seconds would accumulate rounding
// error over multi-hour simulated lifecycles, and event ordering must be exact.
// Sizes are int64 bytes. Rates are double bytes/second (rates are only ever multiplied
// into durations, so they do not need exactness).
#ifndef FLEXPIPE_SRC_COMMON_UNITS_H_
#define FLEXPIPE_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace flexpipe {

// Virtual simulation time, in nanoseconds since simulation start.
using TimeNs = int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;
inline constexpr TimeNs kMinute = 60 * kSecond;
inline constexpr TimeNs kHour = 60 * kMinute;

constexpr TimeNs FromSeconds(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr TimeNs FromMillis(double ms) { return static_cast<TimeNs>(ms * 1e6); }
constexpr TimeNs FromMicros(double us) { return static_cast<TimeNs>(us * 1e3); }
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) * 1e-6; }
constexpr double ToMicros(TimeNs t) { return static_cast<double>(t) * 1e-3; }

// Byte counts.
using Bytes = int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr double ToGiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }
constexpr double ToMiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

// Transfer rate in bytes per (virtual) second.
using BytesPerSec = double;

constexpr BytesPerSec GiBps(double n) { return n * static_cast<double>(kGiB); }
constexpr BytesPerSec GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / 8.0; }

// Time to move `size` bytes at `rate`; returns 0 for non-positive sizes and caps at a
// large-but-finite value when rate is ~0 so that arithmetic downstream stays sane.
constexpr TimeNs TransferTime(Bytes size, BytesPerSec rate) {
  if (size <= 0) {
    return 0;
  }
  if (rate <= 1.0) {
    return kHour * 24;
  }
  return static_cast<TimeNs>(static_cast<double>(size) / rate * 1e9);
}

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_UNITS_H_
