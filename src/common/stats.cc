#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  double nb = static_cast<double>(other.count_);
  double na = static_cast<double>(count_);
  double nt = static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / std::abs(m);
}

SlidingWindowStats::SlidingWindowStats(size_t capacity) : capacity_(capacity) {
  FLEXPIPE_CHECK(capacity > 0);
}

void SlidingWindowStats::Add(double x) {
  if (ring_.size() == capacity_) {
    // Warm path: evict the oldest sample in place (next_ walks the ring FIFO-wise).
    double old = ring_[next_];
    sum_ -= old;
    sum_sq_ -= old * old;
    ring_[next_] = x;
    next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
  } else {
    ring_.push_back(x);
  }
  sum_ += x;
  sum_sq_ += x * x;
}

void SlidingWindowStats::Reset() {
  ring_.clear();
  next_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

double SlidingWindowStats::mean() const {
  if (ring_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(size());
}

double SlidingWindowStats::variance() const {
  size_t n = size();
  if (n < 2) {
    return 0.0;
  }
  double m = mean();
  double var = (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  // Floating-point cancellation can make this slightly negative for near-constant data.
  return std::max(var, 0.0);
}

double SlidingWindowStats::stddev() const { return std::sqrt(variance()); }

double SlidingWindowStats::cv() const {
  double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / std::abs(m);
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  FLEXPIPE_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, q);
}

}  // namespace flexpipe
