// Deterministic random number generation.
//
// All stochastic behaviour in FlexPipe flows through Rng instances seeded from the
// experiment configuration, so every run is reproducible. SplitMix64 is used for
// stream-splitting (each component derives an independent child stream from its name),
// while the heavy distributions ride on std::mt19937_64.
#ifndef FLEXPIPE_SRC_COMMON_RNG_H_
#define FLEXPIPE_SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>

#include "src/common/thread_annotations.h"

namespace flexpipe {

// SplitMix64 step; also usable standalone as a cheap hash mixer.
uint64_t SplitMix64(uint64_t& state);

class FLEXPIPE_THREAD_HOSTILE Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent child stream keyed by `label`. Two children with different
  // labels (or from different parents) produce uncorrelated streams.
  Rng Child(std::string_view label) const;

  uint64_t seed() const { return seed_; }

  double Uniform() { return uniform_(engine_); }  // [0, 1)
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  int64_t UniformInt(int64_t lo, int64_t hi);  // inclusive range [lo, hi]

  // Exponential with given mean (not rate).
  double ExponentialMean(double mean);

  // Gamma with the given shape k and scale theta (mean = k * theta).
  double Gamma(double shape, double scale);

  double Normal(double mean, double stddev);
  double LogNormal(double mu, double sigma);

  // Pareto with minimum xm and tail index alpha.
  double Pareto(double xm, double alpha);

  bool Bernoulli(double p) { return Uniform() < p; }

  // Zipf-like integer in [1, n] with exponent s (s=0 is uniform).
  int64_t Zipf(int64_t n, double s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  uint64_t seed_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_RNG_H_
