// Streaming statistics primitives.
//
// RunningStats is Welford's online mean/variance — used everywhere a CV (coefficient of
// variation) is needed. SlidingWindowStats keeps the last W samples for windowed CV
// computation (the paper's ν_t over 15 s / 180 s / 3 h / 12 h windows).
#ifndef FLEXPIPE_SRC_COMMON_STATS_H_
#define FLEXPIPE_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/thread_annotations.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  // Coefficient of variation sigma/mu; 0 when the mean is 0.
  double cv() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-capacity FIFO of samples with O(1) mean/variance updates. Samples live in a
// flat ring buffer (grown lazily up to `capacity`), so Add never touches an allocator
// once the window is warm — this sits on the per-arrival path of every CvMonitor.
class FLEXPIPE_THREAD_HOSTILE SlidingWindowStats {
 public:
  explicit SlidingWindowStats(size_t capacity);

  void Add(double x);
  void Reset();

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return ring_.size() == capacity_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double cv() const;

 private:
  size_t capacity_;
  std::vector<double> ring_;  // grows to capacity_, then overwrites at next_
  size_t next_ = 0;           // slot the next sample lands in once full
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

// Exact percentile over a collected sample set. Interpolates between order statistics.
// `q` is in [0, 100].
double Percentile(std::vector<double> samples, double q);

// Percentile when the caller already sorted the samples ascending.
double PercentileSorted(const std::vector<double>& sorted, double q);

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_STATS_H_
