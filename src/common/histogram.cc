#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/macros.h"

namespace flexpipe {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), growth_(growth), inv_log_growth_(1.0 / std::log(growth)) {
  FLEXPIPE_CHECK(min_value > 0.0);
  FLEXPIPE_CHECK(growth > 1.0);
}

size_t Histogram::BucketFor(double value) const {
  if (value <= min_value_) {
    return 0;
  }
  double idx = std::log(value / min_value_) * inv_log_growth_;
  return static_cast<size_t>(idx) + 1;
}

double Histogram::BucketLowerBound(size_t index) const {
  if (index == 0) {
    return 0.0;
  }
  return min_value_ * std::pow(growth_, static_cast<double>(index - 1));
}

void Histogram::Add(double value) {
  FLEXPIPE_DCHECK(value >= 0.0);
  size_t b = BucketFor(value);
  if (b >= buckets_.size()) {
    buckets_.resize(b + 1, 0);
  }
  ++buckets_[b];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::Merge(const Histogram& other) {
  FLEXPIPE_CHECK(other.min_value_ == min_value_ && other.growth_ == growth_);
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  FLEXPIPE_CHECK(q >= 0.0 && q <= 100.0);
  if (count_ == 0) {
    return 0.0;
  }
  double target = q / 100.0 * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    double next = static_cast<double>(seen + buckets_[i]);
    if (next >= target) {
      // Interpolate within the bucket, clamped to the observed extrema.
      double lo = BucketLowerBound(i);
      double hi = (i + 1 < buckets_.size()) ? BucketLowerBound(i + 1) : max_;
      double frac =
          buckets_[i] > 0 ? (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i])
                          : 0.0;
      double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
    seen += buckets_[i];
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%lld mean=%.4g p50=%.4g p90=%.4g p95=%.4g p99=%.4g max=%.4g",
                static_cast<long long>(count_), mean(), Percentile(50), Percentile(90),
                Percentile(95), Percentile(99), max());
  return buf;
}

}  // namespace flexpipe
