// Aligned text tables for bench output.
//
// Every experiment binary regenerates a paper table/figure as rows of text; this helper
// right-pads columns so the output diff-checks cleanly and reads like the paper's tables.
#ifndef FLEXPIPE_SRC_COMMON_TABLE_H_
#define FLEXPIPE_SRC_COMMON_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);  // 0.25 -> "25.0%"

  // Renders with a separator line under the header.
  std::string Render() const;
  void Print() const;  // Render() to stdout.

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_TABLE_H_
