#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/macros.h"

namespace flexpipe {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  FLEXPIPE_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  FLEXPIPE_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace flexpipe
