// Thread-safety annotations and the shared-state ownership taxonomy.
//
// The simulator was built single-threaded on purpose (determinism first), and the
// parallel sweep driver (bench/sweep.h) keeps it that way: each worker owns a fully
// private Simulation + RNG universe and threads never share mutable simulator state.
// That discipline is enforced on two axes:
//
//   1. Clang Thread Safety Analysis. Under clang, the FLEXPIPE_* macros below expand
//      to the TSA attributes (guarded_by, requires_capability, ...), and the build
//      adds -Wthread-safety (as an error with FLEXPIPE_WERROR). Under gcc they expand
//      to nothing, so the annotated tree stays portable. Cross-thread-visible state —
//      there is deliberately almost none — must be FLEXPIPE_GUARDED_BY a Mutex or be
//      an allowlisted atomic (see ci/concurrency_lint.py).
//
//   2. A class-level ownership taxonomy, machine-checked by ci/concurrency_lint.py:
//
//      FLEXPIPE_THREAD_HOSTILE     The class carries mutable state with no internal
//                                  synchronisation. Instances are confined to one
//                                  thread (one sweep-worker universe); sharing one
//                                  across threads — even read-only, for classes with
//                                  mutable caches — is a bug. This is the default
//                                  stance of the whole simulator core.
//      FLEXPIPE_THREAD_COMPATIBLE  Distinct instances are independent AND concurrent
//                                  const access to one instance is safe (no mutable
//                                  members, no hidden caches). Concurrent mutation
//                                  still requires external synchronisation.
//
//      Both expand to nothing at compile time; they are greppable ownership claims
//      that reviews and the lint can hold code to, placed between `class` and the
//      class name: `class FLEXPIPE_THREAD_HOSTILE Simulation { ... };`.
//
// The Mutex/MutexLock wrappers exist because libstdc++'s std::mutex is not annotated
// as a TSA capability; wrapping it is the standard way (abseil, Chromium) to make
// GUARDED_BY(mu_) analyzable. They are the sanctioned synchronisation primitives for
// the sweep driver — the concurrency lint flags raw std::thread/std::atomic use
// outside it.
#ifndef FLEXPIPE_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define FLEXPIPE_SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define FLEXPIPE_TSA_HAS(x) __has_attribute(x)
#else
#define FLEXPIPE_TSA_HAS(x) 0
#endif

#if FLEXPIPE_TSA_HAS(guarded_by)
#define FLEXPIPE_TSA(x) __attribute__((x))
#else
#define FLEXPIPE_TSA(x)
#endif

// Data members: which lock protects this field (pointer variant for pointees).
#define FLEXPIPE_GUARDED_BY(x) FLEXPIPE_TSA(guarded_by(x))
#define FLEXPIPE_PT_GUARDED_BY(x) FLEXPIPE_TSA(pt_guarded_by(x))

// Functions: capability the caller must hold / must not hold.
#define FLEXPIPE_REQUIRES(...) FLEXPIPE_TSA(requires_capability(__VA_ARGS__))
#define FLEXPIPE_EXCLUDES(...) FLEXPIPE_TSA(locks_excluded(__VA_ARGS__))

// Functions: capability transitions performed by the callee.
#define FLEXPIPE_ACQUIRE(...) FLEXPIPE_TSA(acquire_capability(__VA_ARGS__))
#define FLEXPIPE_RELEASE(...) FLEXPIPE_TSA(release_capability(__VA_ARGS__))

// Types: this class is a lock (capability) / a scoped lock holder.
#define FLEXPIPE_CAPABILITY(x) FLEXPIPE_TSA(capability(x))
#define FLEXPIPE_SCOPED_CAPABILITY FLEXPIPE_TSA(scoped_lockable)

// Escape hatch for functions whose locking pattern TSA cannot follow (condition-
// variable wait loops); every use needs a comment saying why.
#define FLEXPIPE_NO_THREAD_SAFETY_ANALYSIS FLEXPIPE_TSA(no_thread_safety_analysis)

// Class-level ownership taxonomy (see file comment). No runtime effect.
#define FLEXPIPE_THREAD_HOSTILE
#define FLEXPIPE_THREAD_COMPATIBLE

// Variable-level claim for the rare sanctioned mutable static: the definition is safe
// to touch from concurrent sweep workers because it is atomic, or because it is only
// mutated during single-threaded static initialisation / pre-main registration.
// ci/concurrency_lint.py requires every mutable namespace-scope or static-local
// variable to carry FLEXPIPE_GUARDED_BY, this marker, or an allowlist entry.
#define FLEXPIPE_THREAD_SAFE_GLOBAL

namespace flexpipe {

// TSA-analyzable mutex: std::mutex with capability attributes. Lower-case
// lock()/unlock() keep it BasicLockable so std::condition_variable_any can release
// and reacquire it inside waits.
class FLEXPIPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLEXPIPE_ACQUIRE() { mu_.lock(); }
  void unlock() FLEXPIPE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock whose scope TSA tracks.
class FLEXPIPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLEXPIPE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLEXPIPE_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_THREAD_ANNOTATIONS_H_
