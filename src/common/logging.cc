#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

#include "src/common/thread_annotations.h"

namespace flexpipe {
namespace {

// Atomic so concurrent sweep workers can read the filter while the main thread
// (tests, examples) adjusts it; relaxed — the level is advisory, not a fence.
FLEXPIPE_THREAD_SAFE_GLOBAL std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogImpl(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace flexpipe
