#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/thread_annotations.h"

namespace flexpipe {
namespace {

// FLEXPIPE_LOG_LEVEL=debug|info|warn|error|off overrides the default filter —
// the bench binaries take no log flag, and suppressed INFO lines (launch
// retries giving up, for one) are the first thing to check when a run misbehaves.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("FLEXPIPE_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

// Atomic so concurrent sweep workers can read the filter while the main thread
// (tests, examples) adjusts it; relaxed — the level is advisory, not a fence.
FLEXPIPE_THREAD_SAFE_GLOBAL std::atomic<LogLevel> g_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogImpl(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace flexpipe
