// Log-bucketed latency histogram.
//
// Benches record millions of request latencies; storing them all is wasteful and exact
// percentiles are not needed (the paper reports at most two significant digits). Buckets
// grow geometrically so relative error is bounded (~ growth-1) across nine decades.
#ifndef FLEXPIPE_SRC_COMMON_HISTOGRAM_H_
#define FLEXPIPE_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE Histogram {
 public:
  // `min_value` is the smallest distinguishable value; anything below lands in bucket 0.
  // `growth` is the geometric bucket ratio (1.05 -> <=5% relative error).
  explicit Histogram(double min_value = 1e-6, double growth = 1.05);

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // q in [0, 100]; returns the bucket-interpolated quantile.
  double Percentile(double q) const;

  // "p50=.. p95=.. p99=.." one-liner for bench output.
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const;
  double BucketLowerBound(size_t index) const;

  double min_value_;
  double growth_;
  double inv_log_growth_;  // 1/log(growth): Add pays one log and one multiply, no divide
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_COMMON_HISTOGRAM_H_
