// Assertion macros used across FlexPipe.
//
// FLEXPIPE_CHECK is always on: it guards invariants whose violation means the simulation
// state is corrupt and continuing would produce garbage results. FLEXPIPE_DCHECK compiles
// out in NDEBUG builds and is for hot-path sanity checks.
#ifndef FLEXPIPE_SRC_COMMON_MACROS_H_
#define FLEXPIPE_SRC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define FLEXPIPE_CHECK(cond)                                                              \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "FLEXPIPE_CHECK failed: %s at %s:%d\n", #cond, __FILE__,       \
                   __LINE__);                                                             \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#define FLEXPIPE_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "FLEXPIPE_CHECK failed: %s (%s) at %s:%d\n", #cond, msg,       \
                   __FILE__, __LINE__);                                                   \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#ifdef NDEBUG
#define FLEXPIPE_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define FLEXPIPE_DCHECK(cond) FLEXPIPE_CHECK(cond)
#endif

#endif  // FLEXPIPE_SRC_COMMON_MACROS_H_
