#include "src/common/rng.h"

#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng Rng::Child(std::string_view label) const {
  uint64_t state = seed_;
  for (char c : label) {
    state = SplitMix64(state) ^ static_cast<uint64_t>(static_cast<unsigned char>(c));
  }
  // One extra scramble so short labels still diverge strongly.
  uint64_t child_seed = SplitMix64(state);
  return Rng(child_seed);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FLEXPIPE_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::ExponentialMean(double mean) {
  FLEXPIPE_DCHECK(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::Gamma(double shape, double scale) {
  FLEXPIPE_DCHECK(shape > 0.0 && scale > 0.0);
  std::gamma_distribution<double> dist(shape, scale);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

double Rng::Pareto(double xm, double alpha) {
  FLEXPIPE_DCHECK(xm > 0.0 && alpha > 0.0);
  double u = Uniform();
  if (u <= 0.0) {
    u = 1e-12;
  }
  return xm / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  FLEXPIPE_DCHECK(n >= 1);
  if (s <= 0.0) {
    return UniformInt(1, n);
  }
  // Inverse-CDF over the (truncated) harmonic weights. n is small in our use (model or
  // server counts), so the linear scan is fine.
  double norm = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i), s);
  }
  double u = Uniform() * norm;
  double acc = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= u) {
      return i;
    }
  }
  return n;
}

}  // namespace flexpipe
