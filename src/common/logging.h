// Minimal leveled logger.
//
// The simulator is single-threaded and benches parse nothing from stderr, so this stays
// deliberately tiny: printf-style, level-filtered, optionally tagged with virtual time by
// the caller. Default level is kWarn so experiment binaries emit clean tables.
#ifndef FLEXPIPE_SRC_COMMON_LOGGING_H_
#define FLEXPIPE_SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace flexpipe {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogImpl(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace flexpipe

#define FLEXPIPE_LOG_DEBUG(...) ::flexpipe::LogImpl(::flexpipe::LogLevel::kDebug, __VA_ARGS__)
#define FLEXPIPE_LOG_INFO(...) ::flexpipe::LogImpl(::flexpipe::LogLevel::kInfo, __VA_ARGS__)
#define FLEXPIPE_LOG_WARN(...) ::flexpipe::LogImpl(::flexpipe::LogLevel::kWarn, __VA_ARGS__)
#define FLEXPIPE_LOG_ERROR(...) ::flexpipe::LogImpl(::flexpipe::LogLevel::kError, __VA_ARGS__)

#endif  // FLEXPIPE_SRC_COMMON_LOGGING_H_
