// Analytic performance model of LLM inference on the simulated GPUs.
//
// All constants are calibrated against the paper's own published measurements — this is
// where "we don't have 82 A100s" is absorbed. Anchors (OPT-66B, seq 4096, Table 2):
//   * per-stage compute t_c(S) = 275.5/S + 1.06 ms  (fits all four rows within ~3%)
//   * per-hop communication ~= 2.1 ms at profiling conditions
//   * parameter load time: the four (per-stage-bytes, seconds) pairs, log-log
//     interpolated — load time is not a clean bandwidth law in the paper's data, so the
//     measured curve itself is the model
//   * max in-flight batch = 32 * S  (exact in Table 2: 128/256/512/1024)
// Other models scale by parameter count; decode iterations are weight-streaming bound
// with a mild batch slope.
#ifndef FLEXPIPE_SRC_MODEL_COST_MODEL_H_
#define FLEXPIPE_SRC_MODEL_COST_MODEL_H_

#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/model/graph.h"
#include "src/model/model_spec.h"

namespace flexpipe {

enum class Phase : int {
  kPrefill = 0,
  kDecode = 1,
};

struct CostModelConfig {
  // Full-model prefill of one 4096-token request (OPT-66B anchor).
  double ref_prefill_total_ms = 275.5;
  int ref_prefill_tokens = 4096;
  // Fixed per-stage per-iteration overhead (kernel launch, scheduler, router).
  double per_stage_overhead_ms = 1.06;
  // Full-model decode iteration, batch 1 (OPT-66B anchor).
  double ref_decode_total_ms = 40.0;
  // Marginal slowdown per extra request in a decode batch (memory-bound batching is
  // cheap: batch 32 costs ~1.6x batch 1).
  double decode_batch_slope = 0.02;
  // Eq. 3 activation compression factor alpha.
  double activation_alpha = 0.18;
  // Per-stage in-flight request capacity (Table 2: max batch = 32 * stages).
  int per_stage_buffer_capacity = 32;
  // Fraction of GPU memory usable for KV cache after weights.
  double kv_memory_fraction = 0.85;
};

class FLEXPIPE_THREAD_COMPATIBLE CostModel {
 public:
  CostModel() : CostModel(CostModelConfig{}) {}
  explicit CostModel(const CostModelConfig& config);

  const CostModelConfig& config() const { return config_; }

  // Whole-model compute time for one iteration of `phase`.
  // Prefill: processes `tokens_per_req` prompt tokens for each of `batch` requests.
  // Decode: one token per request; `tokens_per_req` is ignored.
  TimeNs FullModelComputeTime(const ModelSpec& spec, Phase phase, int tokens_per_req,
                              int batch) const;

  // Compute time of the operator range [op_begin, op_end) — the range's share of the
  // full-model time plus the per-stage overhead.
  TimeNs StageComputeTime(const ComputationGraph& graph, int op_begin, int op_end, Phase phase,
                          int tokens_per_req, int batch) const;

  // Eq. 3: batch-aware activation scaling s_a(b) = s_base * (1 + alpha * log(b/b_base)).
  Bytes ActivationBytesAtBatch(Bytes base_bytes, int batch, int base_batch = 1) const;

  // Inter-stage payload of a decode iteration (residual vector per request, compressed).
  Bytes DecodeActivationBytes(const ModelSpec& spec, int batch) const;

  // Cold start: fetching `stage_param_bytes` from remote storage into GPU memory.
  // Interpolated from the Table 2 anchors.
  TimeNs ColdLoadTime(Bytes stage_param_bytes) const;

  // Warm start: stage parameters already in host memory, PCIe copy only.
  TimeNs WarmLoadTime(Bytes stage_param_bytes, BytesPerSec pcie_bandwidth) const;

  // Request-capacity limit of one stage (scheduling buffers).
  int MaxRequestsPerStage() const { return config_.per_stage_buffer_capacity; }

  // KV bytes one token occupies on a stage owning `stage_fraction` of the model.
  Bytes KvBytesPerToken(const ModelSpec& spec, double stage_fraction) const;

  // Requests that fit in a stage's KV memory, given mean context length.
  int KvCapacityRequests(const ModelSpec& spec, double stage_fraction, Bytes gpu_memory,
                         Bytes stage_param_bytes, int mean_context_tokens) const;

 private:
  CostModelConfig config_;
  // (log per-stage bytes, log seconds) anchor curve for cold loads.
  std::vector<std::pair<double, double>> load_anchors_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_MODEL_COST_MODEL_H_
