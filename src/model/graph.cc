#include "src/model/graph.h"

#include "src/common/macros.h"

namespace flexpipe {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kEmbedding:
      return "embedding";
    case OpKind::kAttention:
      return "attention";
    case OpKind::kMlp:
      return "mlp";
    case OpKind::kLayerNorm:
      return "layernorm";
    case OpKind::kLmHead:
      return "lm_head";
  }
  return "?";
}

ComputationGraph ComputationGraph::Build(const ModelSpec& spec) {
  FLEXPIPE_CHECK(spec.num_layers > 0);
  std::vector<Operator> ops;
  ops.reserve(static_cast<size_t>(spec.num_layers) * 4 + 2);

  // Parameter split within a transformer block: attention holds ~1/3 of block params
  // (QKV + output projection = 4 h^2), MLP ~2/3 (two 4h x h matrices = 8 h^2).
  Bytes layer_params = spec.ParamBytesPerLayer();
  // Embedding and head each get half a layer-equivalent, taken off the top.
  Bytes embed_params = layer_params / 2;
  Bytes head_params = layer_params / 2;
  Bytes block_budget = (spec.param_bytes - embed_params - head_params) / spec.num_layers;
  Bytes attn_params = block_budget / 3;
  Bytes norm_params = block_budget / 200;  // tiny
  Bytes mlp_params = block_budget - attn_params - 2 * norm_params;

  int index = 0;
  {
    Operator op;
    op.index = index++;
    op.kind = OpKind::kEmbedding;
    op.param_bytes = embed_params;
    op.compute_weight = 0.2;
    op.block_boundary_after = true;
    ops.push_back(op);
  }
  for (int block = 0; block < spec.num_layers; ++block) {
    Operator norm1;
    norm1.index = index++;
    norm1.kind = OpKind::kLayerNorm;
    norm1.block = block;
    norm1.param_bytes = norm_params;
    norm1.compute_weight = 0.02;
    ops.push_back(norm1);

    Operator attn;
    attn.index = index++;
    attn.kind = OpKind::kAttention;
    attn.block = block;
    attn.param_bytes = attn_params;
    attn.compute_weight = 0.40;
    ops.push_back(attn);

    Operator norm2;
    norm2.index = index++;
    norm2.kind = OpKind::kLayerNorm;
    norm2.block = block;
    norm2.param_bytes = norm_params;
    norm2.compute_weight = 0.02;
    ops.push_back(norm2);

    Operator mlp;
    mlp.index = index++;
    mlp.kind = OpKind::kMlp;
    mlp.block = block;
    mlp.param_bytes = mlp_params;
    mlp.compute_weight = 0.56;
    mlp.block_boundary_after = true;  // cut after the MLP = cut between blocks
    ops.push_back(mlp);
  }
  {
    Operator op;
    op.index = index++;
    op.kind = OpKind::kLmHead;
    op.param_bytes = head_params;
    op.compute_weight = 0.25;
    op.block_boundary_after = true;
    ops.push_back(op);
  }
  return ComputationGraph(spec, std::move(ops));
}

ComputationGraph::ComputationGraph(ModelSpec spec, std::vector<Operator> ops)
    : spec_(std::move(spec)), ops_(std::move(ops)) {
  param_prefix_.resize(ops_.size() + 1, 0);
  compute_prefix_.resize(ops_.size() + 1, 0.0);
  for (size_t i = 0; i < ops_.size(); ++i) {
    param_prefix_[i + 1] = param_prefix_[i] + ops_[i].param_bytes;
    compute_prefix_[i + 1] = compute_prefix_[i] + ops_[i].compute_weight;
  }
}

Bytes ComputationGraph::RangeParamBytes(int begin, int end) const {
  FLEXPIPE_DCHECK(begin >= 0 && end <= op_count() && begin <= end);
  return param_prefix_[static_cast<size_t>(end)] - param_prefix_[static_cast<size_t>(begin)];
}

double ComputationGraph::RangeComputeWeight(int begin, int end) const {
  FLEXPIPE_DCHECK(begin >= 0 && end <= op_count() && begin <= end);
  return compute_prefix_[static_cast<size_t>(end)] - compute_prefix_[static_cast<size_t>(begin)];
}

Bytes ComputationGraph::CutActivationBytes(int cut_after) const {
  FLEXPIPE_DCHECK(cut_after >= 0 && cut_after + 1 < op_count());
  // Residual stream at full context: tokens * hidden * 2 bytes (fp16), with an
  // empirical wire-compression factor (activations are transferred quantized).
  constexpr double kWireCompression = 0.35;
  double base = static_cast<double>(spec_.context_window) * spec_.hidden_dim * 2.0;
  if (!ops_[static_cast<size_t>(cut_after)].block_boundary_after) {
    // Mid-block cuts also carry attention intermediates alongside the residual stream.
    base *= 1.75;
  }
  return static_cast<Bytes>(base * kWireCompression);
}

}  // namespace flexpipe
