// Offline operator profiler (the "Profiling" box in Fig. 5).
//
// §5: "The Profiling module measures three critical metrics for each operator:
// computation time t_c(v), parameter size s_p(v), and activation size s_a(v)."
// The partitioner consumes these measured profiles — not the cost model directly — so
// measurement noise can be injected and the partitioner's robustness to it tested.
#ifndef FLEXPIPE_SRC_MODEL_PROFILER_H_
#define FLEXPIPE_SRC_MODEL_PROFILER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/model/cost_model.h"
#include "src/model/graph.h"

namespace flexpipe {

struct OperatorProfile {
  int op_index = 0;
  TimeNs compute_time = 0;      // t_c(v) at profiling conditions
  Bytes param_bytes = 0;        // s_p(v)
  Bytes activation_bytes = 0;   // s_a(v): output activation if cut after this op
};

struct ModelProfile {
  ModelSpec spec;
  std::vector<OperatorProfile> ops;
  int profiling_batch = 1;
  int profiling_tokens = 4096;

  Bytes TotalParamBytes() const;
  TimeNs TotalComputeTime() const;
};

class Profiler {
 public:
  struct Config {
    int profiling_batch = 1;
    // Relative measurement noise (log-normal sigma); 0 disables.
    double noise_sigma = 0.0;
    uint64_t seed = 7;
  };

  Profiler(const CostModel* cost_model, const Config& config);

  ModelProfile Profile(const ComputationGraph& graph) const;

 private:
  const CostModel* cost_model_;
  Config config_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_MODEL_PROFILER_H_
