#include "src/model/profiler.h"

#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

Bytes ModelProfile::TotalParamBytes() const {
  Bytes total = 0;
  for (const auto& op : ops) {
    total += op.param_bytes;
  }
  return total;
}

TimeNs ModelProfile::TotalComputeTime() const {
  TimeNs total = 0;
  for (const auto& op : ops) {
    total += op.compute_time;
  }
  return total;
}

Profiler::Profiler(const CostModel* cost_model, const Config& config)
    : cost_model_(cost_model), config_(config) {
  FLEXPIPE_CHECK(cost_model != nullptr);
}

ModelProfile Profiler::Profile(const ComputationGraph& graph) const {
  ModelProfile profile;
  profile.spec = graph.spec();
  profile.profiling_batch = config_.profiling_batch;
  profile.profiling_tokens = graph.spec().context_window;
  Rng rng(config_.seed);

  TimeNs full = cost_model_->FullModelComputeTime(graph.spec(), Phase::kPrefill,
                                                  profile.profiling_tokens,
                                                  profile.profiling_batch);
  double total_weight = graph.TotalComputeWeight();

  profile.ops.reserve(static_cast<size_t>(graph.op_count()));
  for (const Operator& op : graph.ops()) {
    OperatorProfile p;
    p.op_index = op.index;
    double share = op.compute_weight / total_weight;
    double t = static_cast<double>(full) * share;
    double noise = 1.0;
    if (config_.noise_sigma > 0.0) {
      noise = rng.LogNormal(0.0, config_.noise_sigma);
    }
    p.compute_time = static_cast<TimeNs>(t * noise);
    p.param_bytes = op.param_bytes;
    p.activation_bytes =
        (op.index + 1 < graph.op_count()) ? graph.CutActivationBytes(op.index) : 0;
    profile.ops.push_back(p);
  }
  return profile;
}

}  // namespace flexpipe
