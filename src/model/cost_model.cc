#include "src/model/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

namespace {
// Table 2 cold-load anchors for OPT-66B (120 GB): per-stage bytes -> seconds.
// 4 stages: 30 GB -> 47.14 s; 8: 15 GB -> 13.05 s; 16: 7.5 GB -> 9.19 s;
// 32: 3.75 GB -> 5.43 s.
constexpr double kAnchorGiB[] = {3.75, 7.5, 15.0, 30.0};
constexpr double kAnchorSeconds[] = {5.43, 9.19, 13.05, 47.14};
constexpr int kAnchorCount = 4;
}  // namespace

CostModel::CostModel(const CostModelConfig& config) : config_(config) {
  load_anchors_.reserve(kAnchorCount);
  for (int i = 0; i < kAnchorCount; ++i) {
    load_anchors_.emplace_back(std::log(kAnchorGiB[i] * static_cast<double>(kGiB)),
                               std::log(kAnchorSeconds[i]));
  }
}

TimeNs CostModel::FullModelComputeTime(const ModelSpec& spec, Phase phase, int tokens_per_req,
                                       int batch) const {
  FLEXPIPE_DCHECK(batch >= 1);
  double size_scale =
      static_cast<double>(spec.param_bytes) / static_cast<double>(Opt66B().param_bytes);
  if (phase == Phase::kPrefill) {
    FLEXPIPE_DCHECK(tokens_per_req >= 1);
    // Compute-bound: linear in total prompt tokens processed this iteration.
    double token_scale = static_cast<double>(tokens_per_req) * batch /
                         static_cast<double>(config_.ref_prefill_tokens);
    double ms = config_.ref_prefill_total_ms * size_scale * token_scale;
    return FromMillis(ms);
  }
  // Decode: weight-streaming bound with a mild batch slope.
  double ms = config_.ref_decode_total_ms * size_scale *
              (1.0 + config_.decode_batch_slope * static_cast<double>(batch - 1));
  return FromMillis(ms);
}

TimeNs CostModel::StageComputeTime(const ComputationGraph& graph, int op_begin, int op_end,
                                   Phase phase, int tokens_per_req, int batch) const {
  double share = graph.RangeComputeWeight(op_begin, op_end) / graph.TotalComputeWeight();
  TimeNs full = FullModelComputeTime(graph.spec(), phase, tokens_per_req, batch);
  return static_cast<TimeNs>(static_cast<double>(full) * share) +
         FromMillis(config_.per_stage_overhead_ms);
}

Bytes CostModel::ActivationBytesAtBatch(Bytes base_bytes, int batch, int base_batch) const {
  FLEXPIPE_DCHECK(batch >= 1 && base_batch >= 1);
  double scale = 1.0 + config_.activation_alpha *
                           std::log(static_cast<double>(batch) / static_cast<double>(base_batch));
  return static_cast<Bytes>(static_cast<double>(base_bytes) * std::max(scale, 0.1));
}

Bytes CostModel::DecodeActivationBytes(const ModelSpec& spec, int batch) const {
  // One residual vector per in-flight request, fp16, wire-compressed like prefill.
  constexpr double kWireCompression = 0.35;
  return static_cast<Bytes>(static_cast<double>(spec.hidden_dim) * 2.0 * batch *
                            kWireCompression) +
         4096;  // framing/header
}

TimeNs CostModel::ColdLoadTime(Bytes stage_param_bytes) const {
  FLEXPIPE_CHECK(stage_param_bytes > 0);
  double lx = std::log(static_cast<double>(stage_param_bytes));
  // Log-log interpolation with end-slope extrapolation.
  const auto& a = load_anchors_;
  double ly;
  if (lx <= a.front().first) {
    double slope = (a[1].second - a[0].second) / (a[1].first - a[0].first);
    ly = a[0].second + slope * (lx - a[0].first);
  } else if (lx >= a.back().first) {
    size_t n = a.size();
    double slope = (a[n - 1].second - a[n - 2].second) / (a[n - 1].first - a[n - 2].first);
    ly = a[n - 1].second + slope * (lx - a[n - 1].first);
  } else {
    ly = a[0].second;
    for (size_t i = 1; i < a.size(); ++i) {
      if (lx <= a[i].first) {
        double t = (lx - a[i - 1].first) / (a[i].first - a[i - 1].first);
        ly = a[i - 1].second + t * (a[i].second - a[i - 1].second);
        break;
      }
    }
  }
  // Floor: container + runtime init is never below ~1.5 s for a cold start.
  return std::max(FromSeconds(std::exp(ly)), FromSeconds(1.5));
}

TimeNs CostModel::WarmLoadTime(Bytes stage_param_bytes, BytesPerSec pcie_bandwidth) const {
  // Host-memory hit: PCIe copy plus a short runtime re-attach.
  return TransferTime(stage_param_bytes, pcie_bandwidth) + FromMillis(250);
}

Bytes CostModel::KvBytesPerToken(const ModelSpec& spec, double stage_fraction) const {
  return static_cast<Bytes>(static_cast<double>(spec.kv_bytes_per_token) * stage_fraction);
}

int CostModel::KvCapacityRequests(const ModelSpec& spec, double stage_fraction, Bytes gpu_memory,
                                  Bytes stage_param_bytes, int mean_context_tokens) const {
  Bytes budget = static_cast<Bytes>(
      static_cast<double>(gpu_memory - stage_param_bytes) * config_.kv_memory_fraction);
  if (budget <= 0) {
    return 0;
  }
  Bytes per_req = KvBytesPerToken(spec, stage_fraction) *
                  static_cast<Bytes>(std::max(1, mean_context_tokens));
  if (per_req <= 0) {
    return config_.per_stage_buffer_capacity;
  }
  return static_cast<int>(budget / per_req);
}

}  // namespace flexpipe
