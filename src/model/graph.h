// Operator-level computation graph (§5).
//
// FlexPipe partitions models at operator granularity, not layer granularity. The
// inference graph of a transformer stack is a chain of operators; each operator is
// annotated with the transformer block it belongs to, because the partitioner's
// regulariser R(S_k) rewards cuts on block boundaries (they preserve the parameter
// grouping needed for cheap merging later).
#ifndef FLEXPIPE_SRC_MODEL_GRAPH_H_
#define FLEXPIPE_SRC_MODEL_GRAPH_H_

#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/model/model_spec.h"

namespace flexpipe {

enum class OpKind : int {
  kEmbedding = 0,
  kAttention = 1,
  kMlp = 2,
  kLayerNorm = 3,
  kLmHead = 4,
};

const char* OpKindName(OpKind kind);

struct Operator {
  int index = 0;       // position in the chain
  OpKind kind = OpKind::kAttention;
  int block = -1;      // transformer block id; -1 for embedding/head
  Bytes param_bytes = 0;
  // Relative compute weight; the cost model turns this into time. Attention and MLP
  // dominate; norms are cheap.
  double compute_weight = 0.0;
  // True if a pipeline cut *after* this operator lands on a block boundary.
  bool block_boundary_after = false;
};

class FLEXPIPE_THREAD_COMPATIBLE ComputationGraph {
 public:
  static ComputationGraph Build(const ModelSpec& spec);

  const ModelSpec& spec() const { return spec_; }
  const std::vector<Operator>& ops() const { return ops_; }
  int op_count() const { return static_cast<int>(ops_.size()); }

  // Totals over a half-open operator range [begin, end).
  Bytes RangeParamBytes(int begin, int end) const;
  double RangeComputeWeight(int begin, int end) const;
  double TotalComputeWeight() const { return RangeComputeWeight(0, op_count()); }

  // Activation bytes crossing the cut between op `i` and `i+1` at the profiling batch
  // size and full context (scaled later by Eq. 3). Cutting mid-block is wider than
  // cutting between blocks (residual stream + attention intermediates).
  Bytes CutActivationBytes(int cut_after) const;

 private:
  ComputationGraph(ModelSpec spec, std::vector<Operator> ops);

  ModelSpec spec_;
  std::vector<Operator> ops_;
  std::vector<Bytes> param_prefix_;
  std::vector<double> compute_prefix_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_MODEL_GRAPH_H_
