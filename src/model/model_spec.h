// Model specifications for the four evaluation models (§9: WHISPER-9B, LLAMA2-7B,
// BERT-21B, OPT-66B).
//
// Whisper and BERT are not decoder-only LLMs, but the paper only reports serving-level
// metrics (prefill latency, goodput) for them, so all four are modeled as generic
// transformer stacks with their published parameter counts (documented deviation in
// DESIGN.md §5).
#ifndef FLEXPIPE_SRC_MODEL_MODEL_SPEC_H_
#define FLEXPIPE_SRC_MODEL_MODEL_SPEC_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace flexpipe {

struct ModelSpec {
  std::string name;
  int num_layers = 0;
  int hidden_dim = 0;
  int num_heads = 0;
  int vocab_size = 50272;
  int context_window = 4096;
  Bytes param_bytes = 0;         // total weights (fp16)
  Bytes kv_bytes_per_token = 0;  // effective paged-KV footprint per token, whole model

  Bytes ParamBytesPerLayer() const;
};

// The model zoo used across the evaluation.
ModelSpec Opt66B();     // 120 GB of weights (paper Table 2)
ModelSpec Llama2_7B();
ModelSpec Bert21B();
ModelSpec Whisper9B();

std::vector<ModelSpec> EvaluationModels();  // the four above, ordered as in Fig. 13

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_MODEL_MODEL_SPEC_H_
