#include "src/model/model_spec.h"

#include "src/common/macros.h"

namespace flexpipe {

Bytes ModelSpec::ParamBytesPerLayer() const {
  FLEXPIPE_CHECK(num_layers > 0);
  // Embedding + head take roughly one layer-equivalent; fold them in evenly, which is
  // how the operator graph distributes them too.
  return param_bytes / num_layers;
}

namespace {

// Effective per-token KV footprint. Real fp16 KV for OPT-66B at 4096 context would be
// ~2.3 MB/token; production serving uses paged attention with quantized blocks and
// sliding windows. We pick the effective footprint so that Table 2's measured capacity
// (32 in-flight requests per stage) is memory-feasible at 4k context on 40 GB devices —
// see DESIGN.md calibration notes.
Bytes KvPerToken(int hidden, int layers) {
  // 2 (K and V) * hidden * 1 byte (quantized) * layers / 16 (paging + window factor).
  return static_cast<Bytes>(2LL * hidden * layers / 16);
}

}  // namespace

ModelSpec Opt66B() {
  ModelSpec spec;
  spec.name = "OPT-66B";
  spec.num_layers = 64;
  spec.hidden_dim = 9216;
  spec.num_heads = 72;
  spec.context_window = 4096;
  spec.param_bytes = GiB(120.0);  // paper's figure for the deployed fp16 checkpoint
  spec.kv_bytes_per_token = KvPerToken(spec.hidden_dim, spec.num_layers);
  return spec;
}

ModelSpec Llama2_7B() {
  ModelSpec spec;
  spec.name = "LLAMA2-7B";
  spec.num_layers = 32;
  spec.hidden_dim = 4096;
  spec.num_heads = 32;
  spec.context_window = 4096;
  spec.param_bytes = GiB(13.0);
  spec.kv_bytes_per_token = KvPerToken(spec.hidden_dim, spec.num_layers);
  return spec;
}

ModelSpec Bert21B() {
  ModelSpec spec;
  spec.name = "BERT-21B";
  spec.num_layers = 48;
  spec.hidden_dim = 6144;
  spec.num_heads = 48;
  spec.context_window = 2048;
  spec.param_bytes = GiB(39.0);
  spec.kv_bytes_per_token = KvPerToken(spec.hidden_dim, spec.num_layers);
  return spec;
}

ModelSpec Whisper9B() {
  ModelSpec spec;
  spec.name = "WHISPER-9B";
  spec.num_layers = 40;
  spec.hidden_dim = 4608;
  spec.num_heads = 36;
  spec.context_window = 2048;
  spec.param_bytes = GiB(17.0);
  spec.kv_bytes_per_token = KvPerToken(spec.hidden_dim, spec.num_layers);
  return spec;
}

std::vector<ModelSpec> EvaluationModels() {
  return {Whisper9B(), Llama2_7B(), Bert21B(), Opt66B()};
}

}  // namespace flexpipe
