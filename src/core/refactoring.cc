#include "src/core/refactoring.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

MigrationSession::MigrationSession(Simulation* sim, TransferEngine* transfer,
                                   PipelineInstance* from, PipelineInstance* to, Router* router,
                                   DoneCallback on_done)
    : sim_(sim),
      transfer_(transfer),
      from_(from),
      to_(to),
      router_(router),
      on_done_(std::move(on_done)) {
  FLEXPIPE_CHECK(sim != nullptr && transfer != nullptr && from != nullptr && to != nullptr &&
                 router != nullptr);
  FLEXPIPE_CHECK(on_done_ != nullptr);
}

const MigrationSession::SnapshotState* MigrationSession::StateFor(RequestId id) const {
  auto it = std::lower_bound(
      states_.begin(), states_.end(), id,
      [](const SnapshotState& s, RequestId key) { return s.id < key; });
  if (it == states_.end() || it->id != id) {
    return nullptr;
  }
  return &*it;
}

MigrationSession::SnapshotState* MigrationSession::StateFor(RequestId id) {
  return const_cast<SnapshotState*>(
      static_cast<const MigrationSession*>(this)->StateFor(id));
}

const KvValidityMask* MigrationSession::MaskFor(RequestId id) const {
  const SnapshotState* state = StateFor(id);
  return state != nullptr ? state->mask.get() : nullptr;
}

void MigrationSession::Start() {
  FLEXPIPE_CHECK(!started_);
  started_ = true;
  from_->CloseAdmissions();

  // Snapshot phase: record validity masks for every decoding request and ship their KV
  // while the old pipeline keeps producing tokens.
  Bytes snapshot_bytes = 0;
  for (Request* r : from_->CurrentDecoding()) {
    int capacity = r->spec.prompt_tokens + r->spec.output_tokens;
    auto mask = std::make_unique<KvValidityMask>(capacity);
    mask->MarkValid(0, r->context_tokens());
    snapshot_bytes += from_->kv_tracker().BytesForTokens(r->context_tokens());
    states_.push_back(SnapshotState{r->spec.id, r->tokens_generated, std::move(mask)});
  }
  // Lookups bisect on id; the population order (decoding-set order) is irrelevant.
  std::sort(states_.begin(), states_.end(),
            [](const SnapshotState& a, const SnapshotState& b) { return a.id < b.id; });
  result_.snapshot_bytes = snapshot_bytes;

  GpuId src = from_->gpus().front();
  GpuId dst = to_->gpus().front();
  if (snapshot_bytes == 0) {
    OnSnapshotDone(0);
    return;
  }
  transfer_->Transfer(src, dst, snapshot_bytes, transfer_->PreferredProtocol(src, dst),
                      [this](TimeNs duration) { OnSnapshotDone(duration); });
}

void MigrationSession::OnSnapshotDone(TimeNs duration) {
  if (aborted_) {
    return;  // a fault killed an endpoint while the snapshot transfer was in flight
  }
  result_.snapshot_duration = duration;
  from_->HaltAndExtract([this](std::vector<Request*> extracted) {
    OnHalted(std::move(extracted));
  });
}

void MigrationSession::OnHalted(std::vector<Request*> extracted) {
  if (aborted_) {
    return;
  }
  for (Request* r : extracted) {
    if (r->phase == RequestPhase::kDecoding) {
      limbo_decoding_.push_back(r);
    } else {
      limbo_queued_.push_back(r);
    }
  }

  // Delta phase (Eq. 10): only tokens generated after the snapshot are invalid and need
  // synchronization before decode can resume on the new topology. The tails are marked
  // valid only once the delta transfer lands on the target — marking them here would
  // make the consistency check in FinishNow vacuous.
  Bytes delta_bytes = 0;
  for (Request* r : limbo_decoding_) {
    const SnapshotState* state = StateFor(r->spec.id);
    int snap_tokens = state != nullptr ? state->snapshot_tokens : 0;
    int delta = std::max(0, r->tokens_generated - snap_tokens);
    delta_bytes += from_->kv_tracker().BytesForTokens(delta);
  }
  result_.delta_bytes = delta_bytes;

  halt_time_ = sim_->now();
  if (delta_bytes == 0) {
    FinishNow();
    return;
  }
  GpuId src = from_->gpus().front();
  GpuId dst = to_->gpus().front();
  transfer_->Transfer(src, dst, delta_bytes, transfer_->PreferredProtocol(src, dst),
                      [this](TimeNs /*duration*/) {
                        if (aborted_) {
                          return;  // Abort reclaimed the limbo requests already
                        }
                        MarkDeltaValid(limbo_decoding_);
                        FinishNow();
                      });
}

std::vector<Request*> MigrationSession::Abort() {
  if (aborted_ || finished_) {
    return {};
  }
  aborted_ = true;
  std::vector<Request*> limbo;
  limbo.reserve(limbo_decoding_.size() + limbo_queued_.size());
  limbo.insert(limbo.end(), limbo_decoding_.begin(), limbo_decoding_.end());
  limbo.insert(limbo.end(), limbo_queued_.begin(), limbo_queued_.end());
  limbo_decoding_.clear();
  limbo_queued_.clear();
  on_done_ = nullptr;
  return limbo;
}

void MigrationSession::MarkDeltaValid(const std::vector<Request*>& decoding) {
  // The delta is resident on the target: the shipped tails become valid (Eq. 10).
  for (Request* r : decoding) {
    SnapshotState* state = StateFor(r->spec.id);
    if (state != nullptr) {
      state->mask->MarkValid(0, std::min(r->context_tokens(), state->mask->capacity()));
    }
  }
}

void MigrationSession::FinishNow() {
  std::vector<Request*> decoding = std::move(limbo_decoding_);
  std::vector<Request*> queued = std::move(limbo_queued_);
  limbo_decoding_.clear();
  limbo_queued_.clear();
  result_.pause_duration = sim_->now() - halt_time_;

  // `queued` holds exactly the never-prefilled requests at this point; count them now so
  // restarts appended below are not double-counted as requeued.
  result_.requeued = static_cast<int>(queued.size());

  for (Request* r : decoding) {
    // Verify Eq. 10 consistency: every token of context must be valid before resuming.
    const SnapshotState* state = StateFor(r->spec.id);
    if (state != nullptr) {
      FLEXPIPE_CHECK_MSG(state->mask->invalid_in(0, std::min(r->context_tokens(),
                                                             state->mask->capacity())) == 0,
                         "KV consistency violated at resume");
    }
    bool target_usable = to_->state() == InstanceState::kLoading ||
                         to_->state() == InstanceState::kActive;
    if (target_usable &&
        to_->kv_tracker().Fits(r->spec.prompt_tokens + r->spec.output_tokens) &&
        to_->inflight() + to_->pending() < to_->capacity()) {
      to_->InjectDecoding(r);
      ++result_.migrated_decoding;
      continue;
    }
    // No room on the target: restart from scratch through the router (KV discarded).
    r->phase = RequestPhase::kQueued;
    r->tokens_generated = 0;
    r->first_token_time = -1;
    queued.push_back(r);
    ++result_.restarted;
  }
  if (!queued.empty()) {
    router_->RequeueFront(std::move(queued));
  }
  finished_ = true;
  DoneCallback cb = std::move(on_done_);
  cb(from_, result_);
}

}  // namespace flexpipe
