// Topology-aware GPU assignment for pipeline stages (§6.2, Eq. 6–9).
//
// Greedy solver for the constrained assignment problem: each stage of a pipeline
// instance gets the GPU maximizing throughput-per-memory, discounted by
//   * the multiplexing penalty γ(CV) = γ0 (1 + α CV²) when the GPU already hosts another
//     model's stage (Eq. 9 — bursty workloads interfere quadratically),
//   * HRG contention on servers with recent scaling activity,
//   * topology distance from the previous stage's GPU (pipelines want short hops),
// and boosted by affinity (Eq. 13) when the server holds warm parameters.
// Hard constraints: per-GPU memory (Eq. 7) and the same-model anti-colocation rule —
// two stages of one model never share a GPU, across all of that model's instances.
//
// The production path (PlaceStages) runs in O(candidates), not O(cluster): stages
// enumerate servers through the cluster's bucketed free-GPU index, per-server score
// terms (HRG penalty, affinity, topology bonus) are snapshotted into a scratch array
// once per server per call instead of per-candidate std::function invocations, and a
// per-server score upper bound prunes whole servers that cannot beat the incumbent.
// PlaceStagesReference keeps the naive full-scan argmax; both pick bit-identical GPUs
// (argmax with an explicit lowest-id tie-break), which the randomized equivalence
// suite and the placement_storm bench's speedup measurement both rely on.
#ifndef FLEXPIPE_SRC_CORE_ALLOCATION_H_
#define FLEXPIPE_SRC_CORE_ALLOCATION_H_

#include <functional>
#include <vector>

#include "src/cluster/network.h"
#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct PlacementConfig {
  double gamma0 = 0.08;        // base multiplexing penalty (Eq. 9)
  double alpha_cv = 0.5;       // CV² sensitivity (Eq. 9)
  double topo_bonus_server = 0.30;  // next stage on the same server
  double topo_bonus_rack = 0.15;    // next stage in the same rack
  double affinity_weight = 0.25;
  double hrg_weight = 0.35;
  double sm_per_stage = 0.6;   // SM share a stage consumes
  // Recovery-aware spread (opt-in): penalizes packing many stages of the pipeline
  // being placed into one rack / power domain, so a correlated failure (rack
  // partition, power-feed trip) cannot take every stage of an instance at once. The
  // penalty per candidate is weight * (stages already placed in its power domain +
  // stages already placed in its rack) / num_stages — same-rack concentration is
  // charged twice since a rack sits inside its domain. 0 (the default) skips the
  // term entirely: decisions stay bit-identical to the pre-spread placer, pinned by
  // placement_test's randomized equivalence cases.
  double domain_spread_weight = 0.0;
};

// Tracks which GPUs host which models' stages (for the anti-colocation rule and the
// multiplexing penalty). The serving system updates it on placement and release.
// Storage is a flat per-GPU vector of (model, count) pairs — GPUs host at most a
// handful of models, so a linear scan beats hashing on the placement hot path.
class FLEXPIPE_THREAD_HOSTILE ModelPlacementRegistry {
 public:
  // Pre-sizes the per-GPU table; Add() grows it on demand for ids beyond the hint.
  explicit ModelPlacementRegistry(int gpu_count_hint = 0);

  void Add(GpuId gpu, int model_id);
  void Remove(GpuId gpu, int model_id);
  bool HostsModel(GpuId gpu, int model_id) const;
  int ModelsOn(GpuId gpu) const;

 private:
  // Debug-build invariant audits compare the counts against the instance records.
  friend class SimulationAuditor;

  struct ModelCount {
    int model_id = 0;
    int count = 0;
  };
  std::vector<std::vector<ModelCount>> by_gpu_;
};

class FLEXPIPE_THREAD_HOSTILE TopologyAwarePlacer {
 public:
  // Optional scoring hooks supplied by the scaling layer:
  //   hrg_penalty(server)    in [0, 1], 1 = heavily contended
  //   affinity_bonus(server) in [0, 1], 1 = fully warm
  // Invoked at most once per candidate server per PlaceStages call (the results are
  // snapshotted), so they may close over per-call state cheaply.
  using ServerScoreFn = std::function<double(ServerId)>;

  TopologyAwarePlacer(Cluster* cluster, const NetworkModel* network,
                      const ModelPlacementRegistry* registry, const PlacementConfig& config);

  // Chooses one GPU per stage for `plan` (model `model_id`, workload CV `cv`).
  // Does NOT reserve memory — the caller commits the placement. Returns empty when the
  // memory or anti-colocation constraints cannot be met.
  std::vector<GpuId> PlaceStages(const PipelinePlan& plan, int model_id, double cv,
                                 const ServerScoreFn& hrg_penalty,
                                 const ServerScoreFn& affinity_bonus) const;

  // Naive full-cluster scan (the pre-index implementation, kept verbatim): reference
  // for the randomized equivalence suite and the placement_storm bench's baseline mode.
  std::vector<GpuId> PlaceStagesReference(const PipelinePlan& plan, int model_id, double cv,
                                          const ServerScoreFn& hrg_penalty,
                                          const ServerScoreFn& affinity_bonus) const;

  const PlacementConfig& config() const { return config_; }

  // Health-driven quarantine (opt-in): a per-server byte mask of servers the placer
  // must never select — flagged stragglers the health monitor has pulled from the
  // candidate set. The pointer is borrowed (the monitor owns and updates the mask in
  // place); null, or a mask of all zeros, leaves placement bit-identical to the
  // pre-quarantine placer (pinned by placement_test). Checked identically in both
  // PlaceStages and PlaceStagesReference so the equivalence contract holds under
  // quarantine too.
  void set_excluded_servers(const std::vector<uint8_t>* mask) {
    excluded_servers_ = mask;
  }
  const std::vector<uint8_t>* excluded_servers() const { return excluded_servers_; }

 private:
  // Per-server score terms snapshotted once per PlaceStages call; `epoch` tags
  // validity so the scratch array never needs clearing between calls.
  struct ServerScratch {
    uint64_t epoch = 0;
    double hrg_term = 0.0;       // config.hrg_weight * hrg_penalty(server)
    double affinity_term = 0.0;  // config.affinity_weight * affinity_bonus(server)
  };

  // Stages already committed to each rack / power domain for the pipeline currently
  // being placed (only materialized when config.domain_spread_weight > 0). Both
  // placement paths evaluate Penalty() through this one expression so the fp result
  // is bit-identical between them.
  struct SpreadState {
    std::vector<int> per_rack;
    std::vector<int> per_domain;
    double weight_per_stage = 0.0;  // config.domain_spread_weight / num_stages
    double Penalty(RackId rack, PowerDomainId domain) const {
      return weight_per_stage *
             (static_cast<double>(per_domain[static_cast<size_t>(domain)]) +
              static_cast<double>(per_rack[static_cast<size_t>(rack)]));
    }
  };

  double ScoreGpu(const Gpu& gpu, Bytes need, int model_id, double cv, GpuId prev_gpu,
                  const ServerScoreFn& hrg_penalty, const ServerScoreFn& affinity_bonus,
                  const SpreadState* spread) const;

  bool ServerExcluded(ServerId id) const {
    return excluded_servers_ != nullptr &&
           (*excluded_servers_)[static_cast<size_t>(id)] != 0;
  }

  Cluster* cluster_;
  const NetworkModel* network_;
  const ModelPlacementRegistry* registry_;
  PlacementConfig config_;
  const std::vector<uint8_t>* excluded_servers_ = nullptr;

  mutable std::vector<ServerScratch> scratch_;
  mutable uint64_t scratch_epoch_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_ALLOCATION_H_
