#include "src/core/flexpipe_system.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

FlexPipeSystem::FlexPipeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                               const FlexPipeConfig& config)
    : ServingSystemBase(ctx, "FlexPipe", config.default_slo),
      ladder_(ladder),
      config_(config),
      rng_(Rng(ctx.seed).Child("flexpipe")),
      cv_monitor_(),
      granularity_(ladder, ctx.cost_model, ctx.network, config.workload, config.granularity),
      hrg_(ctx.cluster, HierarchicalResourceGraph::Config{}),
      host_cache_(ctx.cluster),
      affinity_(ctx.cluster, &host_cache_, config.scaling),
      placer_(ctx.cluster, ctx.network, &placement_registry_, config.placement) {
  FLEXPIPE_CHECK(ladder != nullptr);
  FLEXPIPE_CHECK(!ladder->granularities.empty());
  current_stages_ = config.initial_stages;
  // Fig. 7: elastic scale-outs use the finest granularity that loads quickly (stage
  // parameters fetch in parallel), then consolidation merges them once traffic settles.
  fast_scale_stages_ = ladder_->granularities.back();
  for (int g : ladder_->granularities) {
    TimeNs load = ctx.cost_model->ColdLoadTime(ladder_->plan(g).MaxStageParams());
    if (load <= FromSeconds(12.0)) {
      fast_scale_stages_ = g;
      break;
    }
  }
}

FlexPipeSystem::~FlexPipeSystem() = default;

void FlexPipeSystem::Start() {
  int count = MinInstances(current_stages_);
  for (int i = 0; i < count; ++i) {
    LaunchWithRetry(current_stages_, /*cv=*/1.0, /*remaining_attempts=*/10, /*waited=*/0);
  }
  control_task_ = std::make_unique<PeriodicTask>(ctx_.sim, config_.control_interval,
                                                 [this] { Tick(); });
}

void FlexPipeSystem::OnArrival(Request* request) {
  cv_monitor_.RecordArrival(ctx_.sim->now());
  router_.Submit(request);
}

void FlexPipeSystem::Finish() { control_task_.reset(); }

double FlexPipeSystem::ObservedCv() const {
  // Until the window fills, assume the Poisson default rather than over-reacting.
  if (cv_monitor_.samples() < 16) {
    return 1.0;
  }
  return cv_monitor_.Cv();
}

double FlexPipeSystem::ProjectedDemand() const {
  TimeNs now = ctx_.sim->now();
  double rate = cv_monitor_.RatePerSec(now);
  double gradient = cv_monitor_.RateGradient(now);
  // Proactive adaptation (Algorithm 1): project the intensity gradient forward.
  return std::max(rate, rate + gradient * config_.demand_lead_s);
}

int FlexPipeSystem::MinInstances(int stages) const {
  double reserve_rps = config_.reserve_fraction * config_.target_peak_rps;
  return std::max(1, granularity_.InstancesFor(reserve_rps, stages));
}

int FlexPipeSystem::ActiveOrLoadingCount() const {
  // Counts provisioning instances too (they only join the router once loading starts),
  // so the controller does not double-launch while pods bind.
  int n = 0;
  for (const InstanceRecord& r : records_) {
    if (r.released) {
      continue;
    }
    InstanceState s = r.instance->state();
    if (s == InstanceState::kActive || s == InstanceState::kLoading) {
      ++n;
    }
  }
  return n;
}

std::vector<bool> FlexPipeSystem::WarmFlags(const PipelinePlan& plan,
                                            const std::vector<GpuId>& gpus) const {
  std::vector<bool> warm(static_cast<size_t>(plan.num_stages()), false);
  if (!config_.enable_host_cache) {
    return warm;
  }
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    ServerId server = ctx_.cluster->ServerOf(gpus[static_cast<size_t>(s)]);
    double coverage =
        host_cache_.Coverage(server, config_.model_id, sp.fine_begin, sp.fine_end);
    warm[static_cast<size_t>(s)] = coverage >= 0.99;
  }
  return warm;
}

PipelineInstance* FlexPipeSystem::LaunchAt(int stages, double cv) {
  const PipelinePlan& plan = ladder_->plan(stages);
  TimeNs now = ctx_.sim->now();

  TopologyAwarePlacer::ServerScoreFn hrg_hook;
  TopologyAwarePlacer::ServerScoreFn affinity_hook;
  if (config_.enable_hrg) {
    hrg_hook = [this, now](ServerId s) { return hrg_.PlacementPenalty(s, now); };
  }
  if (config_.enable_affinity) {
    Bytes threshold = plan.MaxStageParams();
    affinity_hook = [this, now, threshold](ServerId s) {
      return affinity_.Score(s, config_.model_id, now, threshold);
    };
  }
  std::vector<GpuId> gpus = placer_.PlaceStages(plan, config_.model_id, cv, hrg_hook,
                                                affinity_hook);
  if (gpus.empty()) {
    return nullptr;
  }

  std::vector<bool> warm = WarmFlags(plan, gpus);
  double slowdown = 1.0;
  std::vector<ServerId> servers;
  for (GpuId g : gpus) {
    servers.push_back(ctx_.cluster->ServerOf(g));
  }
  for (ServerId s : servers) {
    slowdown = std::max(slowdown, hrg_.LoadSlowdown(s));
  }

  // Provisioning: fine-grained single-GPU pods bind fast; the log-normal tail models
  // the K8s admission path.
  double delay_s = rng_.LogNormal(std::log(1.2), 0.4) +
                   0.25 * static_cast<double>(plan.num_stages() - 1) / 8.0;
  TimeNs delay = FromSeconds(delay_s);

  PipelineInstance* inst = LaunchInstance(plan, config_.model_id, gpus, warm, slowdown, delay);

  // HRG bookkeeping: scaling events + load streams for the duration of the load.
  for (ServerId s : servers) {
    hrg_.RecordScalingEvent(s, now);
    hrg_.AddLoadStream(s);
  }
  // Streams retire when loading is expected to finish (estimate: delay + worst stage).
  TimeNs worst_load = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    Bytes params = plan.stages[static_cast<size_t>(s)].param_bytes;
    TimeNs t = warm[static_cast<size_t>(s)]
                   ? ctx_.cost_model->WarmLoadTime(params, ctx_.network->config().pcie_bandwidth)
                   : ctx_.cost_model->ColdLoadTime(params);
    worst_load = std::max(worst_load, static_cast<TimeNs>(static_cast<double>(t) * slowdown));
  }
  ctx_.sim->Schedule(delay + worst_load, [this, servers] {
    for (ServerId s : servers) {
      hrg_.RemoveLoadStream(s);
    }
  });
  // Keep affinity timestamps fresh on servers we now occupy.
  if (config_.enable_host_cache) {
    for (ServerId s : servers) {
      host_cache_.Touch(s, config_.model_id, now);
    }
  }
  return inst;
}

void FlexPipeSystem::LaunchWithRetry(int stages, double cv, int remaining_attempts,
                                     TimeNs waited) {
  PipelineInstance* inst = LaunchAt(stages, cv);
  if (inst != nullptr) {
    return;
  }
  if (remaining_attempts <= 0) {
    FLEXPIPE_LOG_INFO("FlexPipe: giving up on launch at %d stages after retries", stages);
    return;
  }
  ctx_.sim->Schedule(config_.retry_backoff, [this, stages, cv, remaining_attempts, waited] {
    LaunchWithRetry(stages, cv, remaining_attempts - 1, waited + config_.retry_backoff);
  });
}

void FlexPipeSystem::RetireOne() {
  // Pick the least-loaded active instance beyond the floor and drain it.
  PipelineInstance* victim = nullptr;
  double least = 2.0;
  for (PipelineInstance* inst : router_.instances()) {
    if (inst->state() != InstanceState::kActive) {
      continue;
    }
    double load = inst->LoadFraction();
    if (load < least) {
      least = load;
      victim = inst;
    }
  }
  if (victim == nullptr || migration_pinned_.count(victim->id()) > 0) {
    return;
  }
  router_.DeregisterInstance(victim->id());
  victim->StartDraining([this, victim] {
    CacheInstanceParams(victim);
    ReleaseInstance(victim);
  });
}

void FlexPipeSystem::CacheInstanceParams(PipelineInstance* instance) {
  if (!config_.enable_host_cache) {
    return;
  }
  TimeNs now = ctx_.sim->now();
  const PipelinePlan& plan = instance->plan();
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    ServerId server = ctx_.cluster->ServerOf(instance->gpus()[static_cast<size_t>(s)]);
    host_cache_.Put(server, config_.model_id, sp.fine_begin, sp.fine_end, sp.param_bytes, now);
  }
}

void FlexPipeSystem::BeginRefactor(std::vector<PipelineInstance*> old_instances, int new_stages,
                                   double cv) {
  if (old_instances.empty()) {
    return;
  }
  // Capacity-preserving target fleet: the migrated instances' total stage count maps
  // onto new_stages-deep pipelines.
  int total_old_stages = 0;
  for (const PipelineInstance* inst : old_instances) {
    total_old_stages += inst->num_stages();
  }
  int target_count = std::max(1, (total_old_stages + new_stages - 1) / new_stages);

  std::vector<PipelineInstance*> targets;
  for (int i = 0; i < target_count; ++i) {
    PipelineInstance* t = LaunchAt(new_stages, cv);
    if (t != nullptr) {
      targets.push_back(t);
    }
  }
  if (targets.empty()) {
    // Fragmentation prevents the transition; stay at the current granularity.
    FLEXPIPE_LOG_INFO("FlexPipe: refactor to %d stages aborted (no placement)", new_stages);
    return;
  }
  current_stages_ = new_stages;

  // Sessions grouped by target: a session must not halt its source before the target
  // can serve, so sessions wait for the target's activation. The old pipelines keep
  // serving (admissions open) until their session's snapshot phase begins.
  std::map<int, std::vector<MigrationSession*>> by_target;
  std::map<int, PipelineInstance*> target_by_id;
  for (size_t i = 0; i < old_instances.size(); ++i) {
    PipelineInstance* from = old_instances[i];
    PipelineInstance* to = targets[i % targets.size()];
    auto session = std::make_unique<MigrationSession>(
        ctx_.sim, ctx_.transfer, from, to, &router_,
        [this](PipelineInstance* old_inst, const MigrationResult& result) {
          OnMigrationDone(old_inst, result);
        });
    ++refactors_in_progress_;
    migration_pinned_.insert(from->id());
    migration_pinned_.insert(to->id());
    by_target[to->id()].push_back(session.get());
    target_by_id[to->id()] = to;
    sessions_.push_back(std::move(session));
  }
  for (auto& [target_id, session_list] : by_target) {
    PipelineInstance* target = target_by_id[target_id];
    auto start_all = [session_list] {
      for (MigrationSession* s : session_list) {
        if (!s->started()) {
          s->Start();
        }
      }
    };
    if (target->state() == InstanceState::kActive) {
      start_all();
    } else {
      target->set_activation_callback(start_all);
    }
  }
}

void FlexPipeSystem::OnMigrationDone(PipelineInstance* old_instance,
                                     const MigrationResult& result) {
  last_pause_ = result.pause_duration;
  total_pause_ += result.pause_duration;
  kv_migrated_bytes_ += result.snapshot_bytes + result.delta_bytes;
  ++refactor_count_;
  --refactors_in_progress_;
  migration_pinned_.erase(old_instance->id());
  if (refactors_in_progress_ == 0) {
    migration_pinned_.clear();  // targets unpin once the wave completes
  }
  CacheInstanceParams(old_instance);
  ReleaseInstance(old_instance);
  router_.Pump();
}

void FlexPipeSystem::Tick() {
  double cv = ObservedCv();
  double demand = ProjectedDemand();
  TimeNs now = ctx_.sim->now();
  double qnorm = std::min(
      1.0, static_cast<double>(router_.queue_length()) / config_.scaling.q_max);

  // Granularity adaptation (Algorithm 1, lines 5-16), damped by the cooldown and
  // directional: consolidation (merge toward coarse) runs only while traffic is calm —
  // it trades capacity for per-request latency; refinement of too-coarse instances runs
  // only under queue pressure, when their buffering is the bottleneck. Fine-grained
  // burst capacity normally arrives through the scaling path below (Fig. 7), so merges
  // are the common refactor.
  if (config_.enable_refactoring && refactors_in_progress_ == 0 &&
      now - last_refactor_time_ >= config_.refactor_cooldown) {
    int desired = granularity_.SelectStageCount(cv, current_stages_);
    bool calm = qnorm < 0.05;
    std::vector<PipelineInstance*> to_migrate;
    for (PipelineInstance* inst : router_.instances()) {
      if (inst->state() != InstanceState::kActive) {
        continue;
      }
      if (inst->num_stages() > desired && calm) {
        to_migrate.push_back(inst);  // merge: fewer hops once stable
      } else if (inst->num_stages() < desired && qnorm > 0.5) {
        to_migrate.push_back(inst);  // split: distributed buffering for bursts
      }
    }
    current_stages_ = desired;
    if (!to_migrate.empty()) {
      last_refactor_time_ = now;
      BeginRefactor(std::move(to_migrate), desired, cv);
      return;
    }
  }

  // Fleet sizing (Eq. 5) with queue-pressure escalation (Eq. 11/12).
  int needed = std::max(MinInstances(current_stages_),
                        granularity_.InstancesFor(demand, current_stages_));
  int loading = 0;
  for (const PipelineInstance* inst : router_.instances()) {
    if (inst->state() == InstanceState::kLoading) {
      ++loading;
    }
  }
  // Queue-pressure escalation only when no capacity is already on the way — otherwise
  // every control tick during a (multi-second) load would ratchet the fleet up.
  // §7 / Eq. 11: the *scaling granularity* m_j escalates with cv * q̂ — urgent capacity
  // is added as fine-grained stages because they load ~8.7x faster (Table 2), turning
  // a ~48 s coarse cold start into a few seconds of ramp. Demand-driven scale-outs use
  // the precomputed fast granularity for the same reason; consolidation merges later.
  int scale_stages = std::max(current_stages_, fast_scale_stages_);
  if (qnorm > 0.0 && loading == 0) {
    int m = ScalingGranularity(cv, qnorm, config_.scaling);
    // Snap Eq. 11's granularity to the ladder: the smallest stage count >= m_j.
    for (int g : ladder_->granularities) {
      scale_stages = std::max(scale_stages, g);
      if (g >= m) {
        break;
      }
    }
    const GranularityOption& opt = granularity_.OptionFor(current_stages_);
    bool feasible = SloFeasible(config_.default_slo, FromSeconds(3.0), opt.throughput_rps,
                                ActiveOrLoadingCount(), router_.queue_length(),
                                router_.queue_length());
    if (!feasible || qnorm > 0.25) {
      needed = std::max(needed, ActiveOrLoadingCount() + (qnorm > 0.6 ? 2 : 1));
    }
  }

  int have = ActiveOrLoadingCount();
  if (have < needed) {
    int launches = std::min(config_.max_launches_per_tick, needed - have);
    for (int i = 0; i < launches; ++i) {
      LaunchWithRetry(scale_stages, cv, /*remaining_attempts=*/5, /*waited=*/0);
    }
    overcapacity_since_ = -1;
  } else if (have > needed) {
    // Reclaim only after the idle window (§9.4: 5-minute reclamation).
    if (overcapacity_since_ < 0) {
      overcapacity_since_ = now;
    } else if (now - overcapacity_since_ >= config_.scaling.reclaim_idle) {
      RetireOne();
      overcapacity_since_ = -1;
    }
  } else {
    overcapacity_since_ = -1;
  }
}

}  // namespace flexpipe
