#include "src/core/flexpipe_system.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/macros.h"
#include "src/sim/auditor.h"

namespace flexpipe {

namespace {

std::vector<FlexPipeSystem::ModelDeployment> SingleDeployment(
    const GranularityLadder* ladder, const FlexPipeConfig& config) {
  FlexPipeSystem::ModelDeployment deployment;
  deployment.ladder = ladder;
  deployment.config = config;
  return {deployment};
}


}  // namespace

FlexPipeSystem::ModelContext::ModelContext(const SystemContext& ctx,
                                           const GranularityLadder* ladder_in,
                                           const FlexPipeConfig& config_in)
    : ladder(ladder_in),
      config(config_in),
      rng(Rng(ctx.seed).Child("flexpipe-" + std::to_string(config_in.model_id))),
      backoff_rng(Rng(ctx.seed).Child("flexpipe-backoff-" +
                                      std::to_string(config_in.model_id))),
      cv_monitor(),
      granularity(ladder_in, ctx.cost_model, ctx.network, config_in.workload,
                  config_in.granularity) {
  FLEXPIPE_CHECK(ladder_in != nullptr);
  FLEXPIPE_CHECK(!ladder_in->granularities.empty());
  current_stages = config_in.initial_stages;
  brownout_cutoff = std::max(1, config_in.brownout_priority_levels);
  // Fig. 7: elastic scale-outs use the finest granularity that loads quickly (stage
  // parameters fetch in parallel), then consolidation merges them once traffic settles.
  fast_scale_stages = ladder->granularities.back();
  for (int g : ladder->granularities) {
    TimeNs load = ctx.cost_model->ColdLoadTime(ladder->plan(g).MaxStageParams());
    if (load <= FromSeconds(12.0)) {
      fast_scale_stages = g;
      break;
    }
  }
}

FlexPipeSystem::FlexPipeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                               const FlexPipeConfig& config)
    : FlexPipeSystem(ctx, SingleDeployment(ladder, config)) {}

FlexPipeSystem::FlexPipeSystem(const SystemContext& ctx,
                               std::vector<ModelDeployment> deployments)
    : ServingSystemBase(ctx, "FlexPipe", FirstDeploymentSlo(deployments)),
      hrg_(ctx.cluster, HierarchicalResourceGraph::Config{}),
      host_cache_(ctx.cluster),
      // The affinity/placement knobs come from the first deployment; they parameterize
      // the shared substrate, not a model's policy.
      affinity_(ctx.cluster, &host_cache_, deployments.front().config.scaling),
      placer_(ctx.cluster, ctx.network, &placement_registry_,
              deployments.front().config.placement) {
  for (const ModelDeployment& d : deployments) {
    for (const auto& existing : contexts_) {
      FLEXPIPE_CHECK_MSG(existing->config.model_id != d.config.model_id,
                         "duplicate model_id across deployments");
    }
    contexts_.push_back(std::make_unique<ModelContext>(ctx, d.ladder, d.config));
    RegisterServedModel(d.config.model_id);
  }
  // Like the placement knobs above: the first deployment's HealthConfig configures the
  // one shared monitor. The quarantine mask is lent to the placer for this system's
  // lifetime; it stays all-zeros until something is actually quarantined, so enabling
  // detection alone leaves every placement bit-identical.
  const HealthConfig& health = contexts_.front()->config.health;
  if (health.enabled) {
    health_monitor_ = std::make_unique<HealthMonitor>(ctx.cluster, health);
    placer_.set_excluded_servers(&health_monitor_->exclusion_mask());
  }
}

FlexPipeSystem::~FlexPipeSystem() = default;

const FlexPipeSystem::ModelContext& FlexPipeSystem::ContextFor(int model_id) const {
  for (const auto& model : contexts_) {
    if (model->config.model_id == model_id) {
      return *model;
    }
  }
  FLEXPIPE_CHECK_MSG(false, "request for a model this system does not serve");
  return *contexts_.front();  // unreachable
}

FlexPipeSystem::ModelContext& FlexPipeSystem::ContextFor(int model_id) {
  return const_cast<ModelContext&>(std::as_const(*this).ContextFor(model_id));
}

int FlexPipeSystem::current_stages_for(int model_id) const {
  return ContextFor(model_id).current_stages;
}

const CvMonitor& FlexPipeSystem::cv_monitor_for(int model_id) const {
  return ContextFor(model_id).cv_monitor;
}

void FlexPipeSystem::Start() {
  for (auto& model : contexts_) {
    int count = MinInstances(*model, model->current_stages);
    for (int i = 0; i < count; ++i) {
      LaunchWithRetry(*model, model->current_stages, /*cv=*/1.0, /*remaining_attempts=*/10,
                      /*attempt=*/0);
    }
  }
  // One shared control loop at the tightest requested cadence; every model's
  // controller context runs each tick.
  TimeNs interval = contexts_.front()->config.control_interval;
  for (const auto& model : contexts_) {
    interval = std::min(interval, model->config.control_interval);
  }
  control_task_ = std::make_unique<PeriodicTask>(ctx_.sim, interval, [this] { Tick(); });
}

void FlexPipeSystem::OnArrival(Request* request) {
  ModelContext& model = ContextFor(request->model_id());
  // Shed requests still register as demand: the arrival-rate signal must keep driving
  // relaunches even while admission is throttled, or brownout would self-sustain.
  model.cv_monitor.RecordArrival(ctx_.sim->now());
  if (model.config.enable_brownout &&
      model.brownout_cutoff < model.config.brownout_priority_levels &&
      PriorityClass(model, *request) >= model.brownout_cutoff) {
    ShedRequest(request);
    return;
  }
  router_.Submit(request);
}

int FlexPipeSystem::PriorityClass(const ModelContext& model, const Request& request) const {
  int levels = model.config.brownout_priority_levels;
  int cls = request.spec.priority >= 0
                ? request.spec.priority
                : static_cast<int>(request.spec.id % static_cast<RequestId>(levels));
  return std::min(cls, levels - 1);
}

void FlexPipeSystem::UpdateBrownout(ModelContext& model) {
  int levels = model.config.brownout_priority_levels;
  if (!model.config.enable_brownout || levels <= 0) {
    return;
  }
  int model_id = model.config.model_id;
  int active = 0;
  for (const InstanceRecord& r : records_) {
    if (!r.released && r.model_id == model_id &&
        r.instance->state() == InstanceState::kActive) {
      ++active;
    }
  }
  int floor = MinInstances(model, model.current_stages);
  if (active >= floor) {
    model.fleet_ever_active = true;
    model.brownout_cutoff = levels;
    return;
  }
  if (!model.fleet_ever_active) {
    return;  // cold start, not capacity loss: admit and queue as always
  }
  // Shed classes proportional to the active-capacity deficit (lose half the floor,
  // shed half the classes), always keeping class 0 admitted.
  double deficit = 1.0 - static_cast<double>(active) / static_cast<double>(floor);
  int shed = static_cast<int>(std::ceil(deficit * static_cast<double>(levels)));
  shed = std::min(std::max(shed, 1), levels - 1);
  model.brownout_cutoff = levels - shed;
}

void FlexPipeSystem::Finish() { control_task_.reset(); }

void FlexPipeSystem::CollectAuditViolations(std::vector<std::string>* out) const {
  ServingSystemBase::CollectAuditViolations(out);
  AuditReport hrg = SimulationAuditor::AuditHrg(hrg_);
  out->insert(out->end(), hrg.begin(), hrg.end());
  // Host-cache accounting: what the cache believes it holds on a server can never
  // exceed what the cluster has accounted as reserved host memory there.
  for (ServerId s = 0; s < ctx_.cluster->server_count(); ++s) {
    const Server& server = ctx_.cluster->server(s);
    Bytes cached = host_cache_.UsedOn(s);
    if (cached > server.host_memory_used) {
      out->push_back("host cache believes server " + std::to_string(s) + " holds " +
                     std::to_string(cached) + " bytes but only " +
                     std::to_string(server.host_memory_used) + " are reserved");
    }
    if (server.host_memory_used > server.host_memory) {
      out->push_back("server " + std::to_string(s) + " host memory is overcommitted");
    }
  }
  // Health consistency: the placer's exclusion mask makes quarantine a hard
  // constraint, so an unreleased instance *launched after* a server's quarantine
  // began standing on that server means the mask was ignored or went stale.
  // (Migration-pinned instances are exempt: a refactor wave placed before the
  // quarantine may still be completing.)
  if (health_monitor_ != nullptr) {
    for (const InstanceRecord& rec : records_) {
      if (rec.released || migration_pinned_.count(rec.instance->id()) > 0) {
        continue;
      }
      for (GpuId g : rec.gpus) {
        ServerId s = ctx_.cluster->ServerOf(g);
        if (health_monitor_->IsQuarantined(s) &&
            rec.launched_at > health_monitor_->quarantined_since(s)) {
          out->push_back("instance " + std::to_string(rec.instance->id()) +
                         " was placed onto server " + std::to_string(s) +
                         " after its quarantine began");
        }
      }
    }
  }
}

double FlexPipeSystem::ObservedCv(const ModelContext& model) const {
  // Until the window fills, assume the Poisson default rather than over-reacting.
  if (model.cv_monitor.samples() < 16) {
    return 1.0;
  }
  return model.cv_monitor.Cv();
}

double FlexPipeSystem::ProjectedDemand(const ModelContext& model) const {
  TimeNs now = ctx_.sim->now();
  double rate = model.cv_monitor.RatePerSec(now);
  double gradient = model.cv_monitor.RateGradient(now);
  // Proactive adaptation (Algorithm 1): project the intensity gradient forward.
  return std::max(rate, rate + gradient * model.config.demand_lead_s);
}

int FlexPipeSystem::MinInstances(const ModelContext& model, int stages) const {
  double reserve_rps = model.config.reserve_fraction * model.config.target_peak_rps;
  return std::max(1, model.granularity.InstancesFor(reserve_rps, stages));
}

std::vector<bool> FlexPipeSystem::WarmFlags(const ModelContext& model,
                                            const PipelinePlan& plan,
                                            const std::vector<GpuId>& gpus) const {
  std::vector<bool> warm(static_cast<size_t>(plan.num_stages()), false);
  if (!model.config.enable_host_cache) {
    return warm;
  }
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    ServerId server = ctx_.cluster->ServerOf(gpus[static_cast<size_t>(s)]);
    double coverage =
        host_cache_.Coverage(server, model.config.model_id, sp.fine_begin, sp.fine_end);
    warm[static_cast<size_t>(s)] = coverage >= 0.99;
  }
  return warm;
}

PipelineInstance* FlexPipeSystem::LaunchAt(ModelContext& model, int stages, double cv) {
  const PipelinePlan& plan = model.ladder->plan(stages);
  TimeNs now = ctx_.sim->now();

  TopologyAwarePlacer::ServerScoreFn hrg_hook;
  TopologyAwarePlacer::ServerScoreFn affinity_hook;
  if (model.config.enable_hrg) {
    hrg_hook = [this, now](ServerId s) { return hrg_.PlacementPenalty(s, now); };
  }
  if (model.config.enable_affinity) {
    Bytes threshold = plan.MaxStageParams();
    int model_id = model.config.model_id;
    affinity_hook = [this, now, threshold, model_id](ServerId s) {
      return affinity_.Score(s, model_id, now, threshold);
    };
  }
  std::vector<GpuId> gpus =
      placer_.PlaceStages(plan, model.config.model_id, cv, hrg_hook, affinity_hook);
  if (gpus.empty()) {
    return nullptr;
  }

  std::vector<bool> warm = WarmFlags(model, plan, gpus);
  double slowdown = 1.0;
  std::vector<ServerId> servers;
  for (GpuId g : gpus) {
    servers.push_back(ctx_.cluster->ServerOf(g));
  }
  for (ServerId s : servers) {
    slowdown = std::max(slowdown, hrg_.LoadSlowdown(s));
  }

  // Provisioning: fine-grained single-GPU pods bind fast; the log-normal tail models
  // the K8s admission path.
  double delay_s = model.rng.LogNormal(std::log(1.2), 0.4) +
                   0.25 * static_cast<double>(plan.num_stages() - 1) / 8.0;
  TimeNs delay = FromSeconds(delay_s);

  PipelineInstance* inst =
      LaunchInstance(plan, model.config.model_id, gpus, warm, slowdown, delay);

  // HRG bookkeeping: scaling events + load streams for the duration of the load. The
  // HRG is shared, so one model's scale-up storm steers every model's placements away
  // from the hot servers.
  for (ServerId s : servers) {
    hrg_.RecordScalingEvent(s, now);
    hrg_.AddLoadStream(s);
  }
  // Streams retire when loading is expected to finish (estimate: delay + worst stage),
  // or immediately if the instance is released mid-load (see RetireLoadStreams).
  TimeNs worst_load = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    Bytes params = plan.stages[static_cast<size_t>(s)].param_bytes;
    TimeNs t = warm[static_cast<size_t>(s)]
                   ? ctx_.cost_model->WarmLoadTime(params, ctx_.network->config().pcie_bandwidth)
                   : ctx_.cost_model->ColdLoadTime(params);
    worst_load = std::max(worst_load, static_cast<TimeNs>(static_cast<double>(t) * slowdown));
  }
  pending_load_streams_[inst->id()] = servers;
  ctx_.sim->Schedule(delay + worst_load,
                     [this, id = inst->id()] { RetireLoadStreams(id); });
  // Keep affinity timestamps fresh on servers we now occupy.
  if (model.config.enable_host_cache) {
    for (ServerId s : servers) {
      host_cache_.Touch(s, model.config.model_id, now);
    }
  }
  return inst;
}

void FlexPipeSystem::RetireLoadStreams(int instance_id) {
  auto it = pending_load_streams_.find(instance_id);
  if (it == pending_load_streams_.end()) {
    return;
  }
  for (ServerId s : it->second) {
    hrg_.RemoveLoadStream(s);
  }
  pending_load_streams_.erase(it);
}

void FlexPipeSystem::OnInstanceReleased(int instance_id) {
  RetireLoadStreams(instance_id);
  health_sampled_.erase(instance_id);
  loader_restarts_.erase(instance_id);
}

void FlexPipeSystem::LaunchWithRetry(ModelContext& model, int stages, double cv,
                                     int remaining_attempts, int attempt) {
  PipelineInstance* inst = LaunchAt(model, stages, cv);
  if (inst != nullptr) {
    return;
  }
  if (remaining_attempts <= 0) {
    FLEXPIPE_LOG_INFO("FlexPipe: giving up on launch at %d stages after retries (model %d)",
                      stages, model.config.model_id);
    return;
  }
  // Bounded exponential backoff: attempt k waits min(retry_backoff * 2^k, cap). The
  // first retry waits exactly retry_backoff, matching the historical fixed interval.
  TimeNs backoff = model.config.retry_backoff;
  TimeNs cap = std::max(model.config.relaunch_backoff_cap, model.config.retry_backoff);
  for (int i = 0; i < attempt && backoff < cap; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, cap);
  if (model.config.relaunch_jitter > 0.0) {
    double j = model.config.relaunch_jitter;
    backoff = static_cast<TimeNs>(static_cast<double>(backoff) *
                                  (1.0 - j + 2.0 * j * model.backoff_rng.Uniform()));
    backoff = std::max<TimeNs>(backoff, 1);
  }
  ModelContext* model_ptr = &model;
  ctx_.sim->Schedule(backoff, [this, model_ptr, stages, cv, remaining_attempts, attempt] {
    LaunchWithRetry(*model_ptr, stages, cv, remaining_attempts - 1, attempt + 1);
  });
}

void FlexPipeSystem::RestartStuckLoaders(ModelContext& model) {
  if (model.config.stuck_loader_factor <= 0.0) {
    return;
  }
  TimeNs now = ctx_.sim->now();
  // Snapshot: restarting deregisters from the router mid-iteration otherwise.
  std::vector<PipelineInstance*> loading;
  for (PipelineInstance* inst : router_.instances()) {
    // Migration targets load too, but a session holds pointers into them — the
    // refactor path owns their lifecycle (and aborts them itself on failure).
    if (inst->model_id() == model.config.model_id &&
        inst->state() == InstanceState::kLoading &&
        migration_pinned_.count(inst->id()) == 0) {
      loading.push_back(inst);
    }
  }
  double cv = ObservedCv(model);
  const bool degraded = ctx_.cluster->AnyDegraded();
  int restarts = 0;
  for (PipelineInstance* inst : loading) {
    if (restarts >= model.config.max_launches_per_tick) {
      break;
    }
    // Restart budget: a loader on genuinely slow hardware (degraded NIC) legitimately
    // lags the fresh estimate, and restarting it in place would loop forever. After
    // the cap it finishes at whatever pace its links allow.
    auto spent_it = loader_restarts_.find(inst->id());
    int spent = spent_it == loader_restarts_.end() ? 0 : spent_it->second;
    if (spent >= model.config.stuck_loader_max_restarts) {
      continue;
    }
    TimeNs remaining = inst->load_finish_time() - now;
    if (remaining <= model.config.stuck_loader_margin) {
      continue;
    }
    // What the same placement would cost if launched right now (cold: a restarted
    // loader starts its pull from scratch). The estimate must price in the same
    // fail-slow link factors BeginLoading charges, or a degraded-but-progressing
    // loader looks stuck against an impossibly healthy baseline.
    double slowdown = 1.0;
    for (GpuId g : inst->gpus()) {
      slowdown = std::max(slowdown, hrg_.LoadSlowdown(ctx_.cluster->ServerOf(g)));
    }
    TimeNs fresh = 0;
    for (int s = 0; s < inst->plan().num_stages(); ++s) {
      Bytes params = inst->plan().stages[static_cast<size_t>(s)].param_bytes;
      TimeNs t = ctx_.cost_model->ColdLoadTime(params);
      if (degraded) {
        double link =
            ctx_.cluster->ServerLinkFactor(inst->StageServer(s));
        if (link != 1.0) {
          t = static_cast<TimeNs>(static_cast<double>(t) / link);
        }
      }
      fresh = std::max(fresh, static_cast<TimeNs>(static_cast<double>(t) * slowdown));
    }
    TimeNs threshold =
        static_cast<TimeNs>(model.config.stuck_loader_factor * static_cast<double>(fresh)) +
        model.config.stuck_loader_margin;
    if (remaining <= threshold) {
      continue;
    }
    int stages = inst->num_stages();
    // Not a fault: admitted-but-unserved requests requeue without touching the
    // failure counters, and the loader's reservation frees before the relaunch so
    // the replacement can reuse the same GPUs.
    std::vector<Request*> displaced = inst->FailNow();
    ReleaseInstance(inst);
    if (!displaced.empty()) {
      router_.RequeueFront(displaced);
    }
    // The replacement inherits the spent-restart count, so the budget bounds total
    // churn per logical launch, not per instance id. A failed immediate relaunch
    // falls back to the retry path and the count is forfeited — acceptable: retries
    // already back off exponentially.
    PipelineInstance* replacement = LaunchAt(model, stages, cv);
    if (replacement != nullptr) {
      loader_restarts_[replacement->id()] = spent + 1;
    } else {
      LaunchWithRetry(model, stages, cv, /*remaining_attempts=*/5, /*attempt=*/0);
    }
    ++restarts;
  }
}

void FlexPipeSystem::RetireOne(ModelContext& model) {
  // Pick this model's least-loaded active instance beyond the floor and drain it.
  PipelineInstance* victim = nullptr;
  double least = 0.0;
  for (PipelineInstance* inst : router_.instances()) {
    if (inst->model_id() != model.config.model_id ||
        inst->state() != InstanceState::kActive) {
      continue;
    }
    double load = inst->LoadFraction();
    if (victim == nullptr || load < least) {
      least = load;
      victim = inst;
    }
  }
  if (victim == nullptr || migration_pinned_.count(victim->id()) > 0) {
    return;
  }
  router_.DeregisterInstance(victim->id());
  victim->StartDraining([this, victim] {
    CacheInstanceParams(victim);
    ReleaseInstance(victim);
  });
}

void FlexPipeSystem::CacheInstanceParams(PipelineInstance* instance) {
  const ModelContext& model = ContextFor(instance->model_id());
  if (!model.config.enable_host_cache) {
    return;
  }
  TimeNs now = ctx_.sim->now();
  const PipelinePlan& plan = instance->plan();
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    ServerId server = ctx_.cluster->ServerOf(instance->gpus()[static_cast<size_t>(s)]);
    host_cache_.Put(server, model.config.model_id, sp.fine_begin, sp.fine_end,
                    sp.param_bytes, now);
  }
}

void FlexPipeSystem::BeginRefactor(ModelContext& model,
                                   std::vector<PipelineInstance*> old_instances,
                                   int new_stages, double cv) {
  if (old_instances.empty()) {
    return;
  }
  // Capacity-preserving target fleet: the migrated instances' total stage count maps
  // onto new_stages-deep pipelines.
  int total_old_stages = 0;
  for (const PipelineInstance* inst : old_instances) {
    total_old_stages += inst->num_stages();
  }
  int target_count = std::max(1, (total_old_stages + new_stages - 1) / new_stages);

  std::vector<PipelineInstance*> targets;
  for (int i = 0; i < target_count; ++i) {
    PipelineInstance* t = LaunchAt(model, new_stages, cv);
    if (t != nullptr) {
      targets.push_back(t);
    }
  }
  if (targets.empty()) {
    // Fragmentation prevents the transition; stay at the current granularity.
    FLEXPIPE_LOG_INFO("FlexPipe: refactor to %d stages aborted (no placement, model %d)",
                      new_stages, model.config.model_id);
    return;
  }
  model.current_stages = new_stages;

  // Sessions grouped by target: a session must not halt its source before the target
  // can serve, so sessions wait for the target's activation. The old pipelines keep
  // serving (admissions open) until their session's snapshot phase begins.
  std::map<int, std::vector<MigrationSession*>> by_target;
  std::map<int, PipelineInstance*> target_by_id;
  for (size_t i = 0; i < old_instances.size(); ++i) {
    PipelineInstance* from = old_instances[i];
    PipelineInstance* to = targets[i % targets.size()];
    auto session = std::make_unique<MigrationSession>(
        ctx_.sim, ctx_.transfer, from, to, &router_,
        [this](PipelineInstance* old_inst, const MigrationResult& result) {
          OnMigrationDone(old_inst, result);
        });
    ++model.refactors_in_progress;
    migration_pinned_[from->id()] = model.config.model_id;
    migration_pinned_[to->id()] = model.config.model_id;
    by_target[to->id()].push_back(session.get());
    target_by_id[to->id()] = to;
    sessions_.push_back(std::move(session));
  }
  for (auto& [target_id, session_list] : by_target) {
    PipelineInstance* target = target_by_id[target_id];
    auto start_all = [session_list] {
      for (MigrationSession* s : session_list) {
        if (!s->started()) {
          s->Start();
        }
      }
    };
    if (target->state() == InstanceState::kActive) {
      start_all();
    } else {
      target->set_activation_callback(start_all);
    }
  }
}

void FlexPipeSystem::OnMigrationDone(PipelineInstance* old_instance,
                                     const MigrationResult& result) {
  ModelContext& model = ContextFor(old_instance->model_id());
  last_pause_ = result.pause_duration;
  total_pause_ += result.pause_duration;
  kv_migrated_bytes_ += result.snapshot_bytes + result.delta_bytes;
  ++refactor_count_;
  --model.refactors_in_progress;
  migration_pinned_.erase(old_instance->id());
  if (model.refactors_in_progress == 0) {
    // Targets unpin once this model's wave completes; other models' pins stay.
    for (auto it = migration_pinned_.begin(); it != migration_pinned_.end();) {
      it = it->second == model.config.model_id ? migration_pinned_.erase(it) : std::next(it);
    }
  }
  CacheInstanceParams(old_instance);
  ReleaseInstance(old_instance);
  router_.Pump();
}

const KvValidityMask* FlexPipeSystem::recovery_mask_for(RequestId id) const {
  auto it = recovery_masks_.find(id);
  return it != recovery_masks_.end() ? it->second.get() : nullptr;
}

void FlexPipeSystem::OnRequestComplete(Request* request) {
  if (!recovery_masks_.empty()) {
    recovery_masks_.erase(request->spec.id);
  }
}

void FlexPipeSystem::CacheSurvivingStageParams(PipelineInstance* instance) {
  const ModelContext& model = ContextFor(instance->model_id());
  if (!model.config.enable_host_cache) {
    return;
  }
  TimeNs now = ctx_.sim->now();
  const PipelinePlan& plan = instance->plan();
  for (int s = 0; s < plan.num_stages(); ++s) {
    GpuId g = instance->gpus()[static_cast<size_t>(s)];
    if (!ctx_.cluster->GpuUsable(g)) {
      continue;
    }
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    host_cache_.Put(ctx_.cluster->ServerOf(g), model.config.model_id, sp.fine_begin,
                    sp.fine_end, sp.param_bytes, now);
  }
}

void FlexPipeSystem::TrackRecoveryMask(Request* request) {
  int context = request->context_tokens();
  if (context <= 0) {
    return;
  }
  // A fresh mask is all-invalid — exactly the failure semantics: the dead instance
  // held the only KV copy, so every context token must be recomputed (Eq. 10 with an
  // empty valid set).
  kv_invalidated_tokens_ += context;
  recovery_masks_[request->spec.id] = std::make_unique<KvValidityMask>(context);
}

void FlexPipeSystem::RecoverDisplacedRequest(Request* request, bool reform) {
  if (request->phase != RequestPhase::kDecoding) {
    return;  // never prefilled; requeues as-is
  }
  if (reform) {
    request->recompute_tokens = request->tokens_generated;
    ++failure_stats_.requests_resumed;
    TrackRecoveryMask(request);
  } else {
    request->tokens_generated = 0;
    request->first_token_time = -1;
    request->recompute_tokens = 0;
    ++failure_stats_.requests_restarted;
  }
  request->phase = RequestPhase::kQueued;
}

void FlexPipeSystem::OnGpusLost(const std::vector<GpuId>& lost) {
  std::vector<PipelineInstance*> victims = UnreleasedInstancesOn(lost);
  if (victims.empty()) {
    return;  // nothing of ours stood on the lost GPUs
  }
  auto is_victim = [&victims](const PipelineInstance* inst) {
    return std::find(victims.begin(), victims.end(), inst) != victims.end();
  };
  std::vector<int> affected;  // model ids, first-seen order (deterministic)
  auto note_model = [&affected](int model_id) {
    if (std::find(affected.begin(), affected.end(), model_id) == affected.end()) {
      affected.push_back(model_id);
    }
  };
  for (PipelineInstance* v : victims) {
    note_model(v->model_id());
  }

  // Teardown-policy models raze their whole fleet, not just the dead instances: the
  // PipeBoost-style baseline re-places the deployment from scratch.
  for (int model_id : affected) {
    ModelContext& model = ContextFor(model_id);
    if (model.config.fault_recovery != FaultRecoveryPolicy::kTeardown) {
      continue;
    }
    for (InstanceRecord& rec : records_) {
      if (!rec.released && rec.model_id == model_id && !is_victim(rec.instance.get())) {
        victims.push_back(rec.instance.get());
      }
    }
  }

  // Abort migrations touching a victim. The surviving endpoint becomes a victim too —
  // a target holds partially migrated KV it can no longer complete — and the limbo
  // requests (extracted at halt, not yet resumed) are reclaimed so they requeue exactly
  // once. Fixpoint loop: sessions can share a target, so one abort can implicate a
  // session already passed over.
  std::vector<Request*> limbo;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& session : sessions_) {
      if (session->finished() || session->aborted()) {
        continue;
      }
      PipelineInstance* src = session->source();
      PipelineInstance* dst = session->target();
      if (!is_victim(src) && !is_victim(dst)) {
        continue;
      }
      std::vector<Request*> reclaimed = session->Abort();
      limbo.insert(limbo.end(), reclaimed.begin(), reclaimed.end());
      ModelContext& model = ContextFor(src->model_id());
      --model.refactors_in_progress;
      migration_pinned_.erase(src->id());
      migration_pinned_.erase(dst->id());
      if (model.refactors_in_progress == 0) {
        for (auto it = migration_pinned_.begin(); it != migration_pinned_.end();) {
          it = it->second == model.config.model_id ? migration_pinned_.erase(it)
                                                  : std::next(it);
        }
      }
      if (!is_victim(src)) {
        victims.push_back(src);
        note_model(src->model_id());
      }
      if (!is_victim(dst)) {
        victims.push_back(dst);
        note_model(dst->model_id());
      }
      changed = true;
    }
  }

  // Fail the victims. Under kReform the stages on still-usable GPUs seed the host cache
  // first, so the replacements warm-start from the same servers; decoding requests keep
  // their progress and pay a recompute prefill instead of restarting.
  std::vector<Request*> displaced;
  for (PipelineInstance* victim : victims) {
    ModelContext& model = ContextFor(victim->model_id());
    bool reform = model.config.fault_recovery == FaultRecoveryPolicy::kReform;
    if (reform) {
      CacheSurvivingStageParams(victim);
    }
    size_t before = displaced.size();
    FailInstance(victim, /*restart_decoding=*/!reform, &displaced);
    if (reform) {
      for (size_t i = before; i < displaced.size(); ++i) {
        if (displaced[i]->recompute_tokens > 0) {
          TrackRecoveryMask(displaced[i]);
        }
      }
    }
  }
  for (Request* r : limbo) {
    ModelContext& model = ContextFor(r->model_id());
    RecoverDisplacedRequest(r, model.config.fault_recovery == FaultRecoveryPolicy::kReform);
    displaced.push_back(r);
  }

  // A server whose every GPU is dead took its host RAM — and its cached parameter
  // images — with it. Partitioned GPUs keep their memory; the cache survives a heal.
  std::vector<ServerId> dead_servers;
  for (GpuId g : lost) {
    if (!ctx_.cluster->GpuFailed(g)) {
      continue;
    }
    ServerId s = ctx_.cluster->ServerOf(g);
    if (std::find(dead_servers.begin(), dead_servers.end(), s) != dead_servers.end()) {
      continue;
    }
    bool all_dead = true;
    for (GpuId sg : ctx_.cluster->server(s).gpus) {
      all_dead = all_dead && ctx_.cluster->GpuFailed(sg);
    }
    if (all_dead) {
      dead_servers.push_back(s);
    }
  }
  for (ServerId s : dead_servers) {
    host_cache_.DropServer(s);
  }

  RequeueDisplaced(std::move(displaced));

  // Replace what died immediately rather than waiting for the next control tick.
  // Reform relaunches one-for-one at the fast-loading fine granularity (Fig. 7's burst
  // path — recovery is the ultimate burst); teardown cold-starts its fleet at the
  // coarse initial granularity.
  for (int model_id : affected) {
    ModelContext& model = ContextFor(model_id);
    int torn_down = 0;
    for (PipelineInstance* v : victims) {
      if (v->model_id() == model_id) {
        ++torn_down;
      }
    }
    double cv = ObservedCv(model);
    bool reform = model.config.fault_recovery == FaultRecoveryPolicy::kReform;
    int stages = reform ? model.fast_scale_stages : model.config.initial_stages;
    int launches =
        reform ? torn_down : std::max(MinInstances(model, stages), torn_down);
    for (int i = 0; i < launches; ++i) {
      LaunchWithRetry(model, stages, cv, /*remaining_attempts=*/10, /*attempt=*/0);
    }
    // Enter brownout right away if the loss left the active fleet under its floor —
    // the replacements just launched are still provisioning/loading.
    UpdateBrownout(model);
  }
  router_.Pump();
}

void FlexPipeSystem::Tick() {
  for (auto& model : contexts_) {
    TickModel(*model);
  }
  if (health_monitor_ != nullptr) {
    SampleHealth();
  }
}

void FlexPipeSystem::SampleHealth() {
  TimeNs now = ctx_.sim->now();
  // Busy-time deltas since the last tick, attributed per stage to the server the
  // stage runs on. Records are walked in launch order and the monitor folds its
  // window in ascending server-id order, so the whole pass is deterministic.
  for (const InstanceRecord& rec : records_) {
    if (rec.released) {
      continue;
    }
    const PipelineInstance* inst = rec.instance.get();
    InstanceState state = inst->state();
    if (state != InstanceState::kActive && state != InstanceState::kDraining) {
      continue;  // loaders have no busy time yet; sampling starts at activation
    }
    auto& last = health_sampled_[inst->id()];
    last.resize(static_cast<size_t>(inst->num_stages()), {0, 0});
    for (int s = 0; s < inst->num_stages(); ++s) {
      TimeNs observed = inst->StageBusyObserved(s);
      TimeNs base = inst->StageBusyBase(s);
      auto& prev = last[static_cast<size_t>(s)];
      health_monitor_->Observe(inst->StageServer(s), observed - prev.first,
                               base - prev.second);
      prev = {observed, base};
    }
  }
  std::vector<ServerId> flagged = health_monitor_->EndWindow(now);
  if (health_monitor_->config().mitigate) {
    if (!flagged.empty()) {
      MitigateStragglers(flagged);
    }
    if (!evacuation_queue_.empty()) {
      ProcessEvacuations();
    }
  }
}

void FlexPipeSystem::MitigateStragglers(const std::vector<ServerId>& flagged) {
  // Only act on servers the monitor actually quarantined (strikes below the
  // threshold flag without quarantine — the placer still admits those, so
  // migrating off them would race the next launch right back on).
  for (const InstanceRecord& rec : records_) {
    if (rec.released || migration_pinned_.count(rec.instance->id()) > 0) {
      continue;
    }
    bool on_straggler = false;
    for (GpuId g : rec.gpus) {
      ServerId s = ctx_.cluster->ServerOf(g);
      for (ServerId f : flagged) {
        on_straggler = on_straggler || (s == f && health_monitor_->IsQuarantined(f));
      }
    }
    int id = rec.instance->id();
    if (on_straggler && std::find(evacuation_queue_.begin(), evacuation_queue_.end(),
                                  id) == evacuation_queue_.end()) {
      evacuation_queue_.push_back(id);
    }
  }
}

void FlexPipeSystem::ProcessEvacuations() {
  int budget = health_monitor_->config().max_evacuations_per_tick;
  std::vector<Request*> displaced;
  std::vector<int> affected;   // model ids, first-seen order (deterministic)
  std::map<int, int> torn_down;  // model id -> evacuated count this tick
  size_t taken = 0;
  while (taken < evacuation_queue_.size() && budget > 0) {
    int id = evacuation_queue_[taken];
    ++taken;
    InstanceRecord* rec = FindRecord(id);
    // The queue outlives its entries' relevance: an instance may have died, been
    // retired, or become a migration endpoint since it was flagged.
    if (rec == nullptr || rec->released || migration_pinned_.count(id) > 0) {
      continue;
    }
    PipelineInstance* victim = rec->instance.get();
    // Proactive reform: unlike a fail-stop loss, every GPU is still alive, so *all*
    // stages seed the host cache and the evacuation is a planned migration in all
    // but name — decode progress survives through Eq. 10 recompute masks.
    if (std::find(affected.begin(), affected.end(), victim->model_id()) ==
        affected.end()) {
      affected.push_back(victim->model_id());
    }
    ++torn_down[victim->model_id()];
    CacheInstanceParams(victim);
    size_t before = displaced.size();
    FailInstance(victim, /*restart_decoding=*/false, &displaced);
    for (size_t i = before; i < displaced.size(); ++i) {
      if (displaced[i]->recompute_tokens > 0) {
        TrackRecoveryMask(displaced[i]);
      }
    }
    ++health_migrations_;
    --budget;
  }
  evacuation_queue_.erase(evacuation_queue_.begin(),
                          evacuation_queue_.begin() + static_cast<long>(taken));
  if (affected.empty()) {
    return;
  }
  RequeueDisplaced(std::move(displaced));
  for (int model_id : affected) {
    ModelContext& model = ContextFor(model_id);
    double cv = ObservedCv(model);
    // One-for-one at the fast-loading granularity, same as reform recovery: the
    // placer's exclusion mask steers the replacements onto healthy capacity.
    for (int i = 0; i < torn_down[model_id]; ++i) {
      LaunchWithRetry(model, model.fast_scale_stages, cv, /*remaining_attempts=*/10,
                      /*attempt=*/0);
    }
    UpdateBrownout(model);
  }
  router_.Pump();
}

void FlexPipeSystem::TickModel(ModelContext& model) {
  RestartStuckLoaders(model);
  // Brownout follows the active fleet each tick: it deepens if more capacity dies,
  // lifts the moment relaunches activate and the floor is met again.
  UpdateBrownout(model);
  double cv = ObservedCv(model);
  double demand = ProjectedDemand(model);
  TimeNs now = ctx_.sim->now();
  int model_id = model.config.model_id;
  double qnorm = std::min(1.0, static_cast<double>(router_.queue_length_for(model_id)) /
                                   model.config.scaling.q_max);

  // Granularity adaptation (Algorithm 1, lines 5-16), damped by the cooldown and
  // directional: consolidation (merge toward coarse) runs only while traffic is calm —
  // it trades capacity for per-request latency; refinement of too-coarse instances runs
  // only under queue pressure, when their buffering is the bottleneck. Fine-grained
  // burst capacity normally arrives through the scaling path below (Fig. 7), so merges
  // are the common refactor.
  if (model.config.enable_refactoring && model.refactors_in_progress == 0 &&
      now - model.last_refactor_time >= model.config.refactor_cooldown) {
    int desired = model.granularity.SelectStageCount(cv, model.current_stages);
    bool calm = qnorm < 0.05;
    std::vector<PipelineInstance*> to_migrate;
    for (PipelineInstance* inst : router_.instances()) {
      if (inst->model_id() != model_id || inst->state() != InstanceState::kActive) {
        continue;
      }
      if (inst->num_stages() > desired && calm) {
        to_migrate.push_back(inst);  // merge: fewer hops once stable
      } else if (inst->num_stages() < desired && qnorm > 0.5) {
        to_migrate.push_back(inst);  // split: distributed buffering for bursts
      }
    }
    model.current_stages = desired;
    if (!to_migrate.empty()) {
      model.last_refactor_time = now;
      BeginRefactor(model, std::move(to_migrate), desired, cv);
      return;
    }
  }

  // Fleet sizing (Eq. 5) with queue-pressure escalation (Eq. 11/12).
  int needed = std::max(MinInstances(model, model.current_stages),
                        model.granularity.InstancesFor(demand, model.current_stages));
  int loading = 0;
  for (const PipelineInstance* inst : router_.instances()) {
    if (inst->model_id() == model_id && inst->state() == InstanceState::kLoading) {
      ++loading;
    }
  }
  // Queue-pressure escalation only when no capacity is already on the way — otherwise
  // every control tick during a (multi-second) load would ratchet the fleet up.
  // §7 / Eq. 11: the *scaling granularity* m_j escalates with cv * q̂ — urgent capacity
  // is added as fine-grained stages because they load ~8.7x faster (Table 2), turning
  // a ~48 s coarse cold start into a few seconds of ramp. Demand-driven scale-outs use
  // the precomputed fast granularity for the same reason; consolidation merges later.
  int scale_stages = std::max(model.current_stages, model.fast_scale_stages);
  if (qnorm > 0.0 && loading == 0) {
    int m = ScalingGranularity(cv, qnorm, model.config.scaling);
    // Snap Eq. 11's granularity to the ladder: the smallest stage count >= m_j.
    for (int g : model.ladder->granularities) {
      scale_stages = std::max(scale_stages, g);
      if (g >= m) {
        break;
      }
    }
    const GranularityOption& opt = model.granularity.OptionFor(model.current_stages);
    int queued = router_.queue_length_for(model_id);
    bool feasible = SloFeasible(model.config.default_slo, FromSeconds(3.0),
                                opt.throughput_rps, ActiveOrLoadingForModel(model_id), queued);
    if (!feasible || qnorm > 0.25) {
      needed = std::max(needed, ActiveOrLoadingForModel(model_id) + (qnorm > 0.6 ? 2 : 1));
    }
  }

  int have = ActiveOrLoadingForModel(model_id);
  if (have < needed) {
    int launches = std::min(model.config.max_launches_per_tick, needed - have);
    for (int i = 0; i < launches; ++i) {
      LaunchWithRetry(model, scale_stages, cv, /*remaining_attempts=*/5, /*attempt=*/0);
    }
    model.overcapacity_since = -1;
  } else if (have > needed) {
    // Reclaim only after the idle window (§9.4: 5-minute reclamation).
    if (model.overcapacity_since < 0) {
      model.overcapacity_since = now;
    } else if (now - model.overcapacity_since >= model.config.scaling.reclaim_idle) {
      RetireOne(model);
      model.overcapacity_since = -1;
    }
  } else {
    model.overcapacity_since = -1;
  }
}

}  // namespace flexpipe
