// Extended G/G/S queueing model (Eq. 1, §3.3).
//
//   T_total = ρ^S / (S! (1-ρ)) * (CV_a² + CV_s²)/2  * (1/μ)   [queue latency]
//           + Σ_i λ_i / (μ_i (μ_i - λ_i))                      [stage congestion delay]
//
// The paper uses this model to explain why deeper pipelines absorb bursts (S ∝ √CV_a is
// optimal once CV_a > 3). We implement it for controller-side predictions and verify the
// qualitative claims in tests; it is analytic scaffolding, not the simulator.
#ifndef FLEXPIPE_SRC_CORE_QUEUEING_H_
#define FLEXPIPE_SRC_CORE_QUEUEING_H_

#include <vector>

namespace flexpipe {

struct GgsParams {
  double lambda = 1.0;  // arrival rate (req/s)
  double mu = 2.0;      // per-server service rate (req/s)
  int servers = 1;      // S
  double cv_arrival = 1.0;
  double cv_service = 0.5;
};

// First term of Eq. 1 in seconds. Returns +inf when the system is unstable (ρ >= 1).
double GgsQueueLatency(const GgsParams& params);

// Second term: Σ λ_i / (μ_i (μ_i - λ_i)), seconds; +inf if any stage is overloaded.
double StageCongestionDelay(const std::vector<double>& stage_lambda,
                            const std::vector<double>& stage_mu);

// Full Eq. 1 with S identical stages, each seeing the full arrival stream (a pipeline:
// every request visits every stage) and service rate mu_stage.
double GgsTotalLatency(const GgsParams& params);

// Sweep S in [s_min, s_max] for the lowest predicted latency; `service_rate_of_s` gives
// the per-stage service rate at depth S (finer stages are individually faster).
int OptimalStageCount(double lambda, double cv_arrival, double cv_service, int s_min, int s_max,
                      double (*service_rate_of_s)(int));

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_QUEUEING_H_
