// Adaptive pipeline scaling (§7): scaling-granularity decision (Eq. 11), SLO feasibility
// (Eq. 12), the Hierarchical Resource Graph, the affinity scheduler (Eq. 13), and the
// host-memory parameter cache that turns cold starts into warm starts.
#ifndef FLEXPIPE_SRC_CORE_SCALING_H_
#define FLEXPIPE_SRC_CORE_SCALING_H_

#include <vector>

#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

struct ScalingConfig {
  int g_max = 32;        // finest scaling granularity (stage count)
  double beta = 8.0;     // Eq. 11 sigmoid calibration
  double gamma = 6.0;
  int q_max = 256;       // queue-length normalization
  // Eq. 13 weights and temporal decay (per second).
  double affinity_w_t = 0.6;
  double affinity_w_g = 0.4;
  double affinity_decay = 1.0 / 120.0;  // warm memory ages out over ~2 minutes
  TimeNs reclaim_idle = 5 * kMinute;    // §9.4: elastic reclamation window
};

// Eq. 11: m_j = ceil(G_max / (1 + β e^{-γ cv_j q̂_j})); smooth (sigmoid) escalation from
// coarse to fine scaling as burstiness times backlog grows.
int ScalingGranularity(double cv, double queue_normalized, const ScalingConfig& config);

// Eq. 12: (T_j - S_j) Σ μ_jk >= r_j — can `m` expanded stages, each with throughput
// `per_stage_rps`, work off `required` requests before the SLO deadline, accounting
// for initialization time? (The paper normalizes both sides by the backlog Q_j; the
// divisor cancels, so the comparison is capacity >= required directly.)
bool SloFeasible(TimeNs slo_deadline, TimeNs init_time, double per_stage_rps, int m,
                 int required);

// Hierarchical Resource Graph (§7): tracks scaling events and parameter-load streams at
// server, rack and cluster levels so concurrent scale-ups spread across the fabric
// instead of stampeding one path.
class FLEXPIPE_THREAD_HOSTILE HierarchicalResourceGraph {
 public:
  struct Config {
    TimeNs event_decay = 10 * kSecond;  // scaling-event memory
    int server_stream_capacity = 2;     // parallel loads per server at full speed
    int rack_stream_capacity = 8;
    int cluster_stream_capacity = 24;
  };

  HierarchicalResourceGraph(const Cluster* cluster, const Config& config);

  void RecordScalingEvent(ServerId server, TimeNs now);
  // Exponentially-decayed scaling activity, squashed to [0, 1].
  double ServerContention(ServerId server, TimeNs now) const;
  double RackContention(RackId rack, TimeNs now) const;
  // Combined penalty for the placer hook (server + its rack).
  double PlacementPenalty(ServerId server, TimeNs now) const;

  void AddLoadStream(ServerId server);
  void RemoveLoadStream(ServerId server);
  int cluster_streams() const { return cluster_streams_; }

  // Multiplier (>= 1) applied to a new load's duration if started on `server` now.
  double LoadSlowdown(ServerId server) const;

 private:
  // Debug-build invariant audits cross-check the per-level stream tallies.
  friend class SimulationAuditor;

  struct DecayedCounter {
    double value = 0.0;
    TimeNs last = 0;
  };
  double Read(const DecayedCounter& counter, TimeNs now) const;
  void Bump(DecayedCounter& counter, TimeNs now);

  const Cluster* cluster_;
  Config config_;
  // Flat per-server / per-rack state (cluster shape is fixed at construction): the
  // placer reads these once per candidate server, so lookups must be loads, not hashes.
  std::vector<DecayedCounter> server_events_;
  std::vector<DecayedCounter> rack_events_;
  std::vector<int> server_streams_;
  std::vector<int> rack_streams_;
  int cluster_streams_ = 0;
};

// Host-memory parameter cache (§7, memory-aware elastic scaling). Entries are
// (model, fine-stage range) parameter images kept in a server's host RAM after GPU
// eviction; budget is enforced through the cluster's host-memory accounting with LRU
// eviction.
class FLEXPIPE_THREAD_HOSTILE HostParamCache {
 public:
  explicit HostParamCache(Cluster* cluster, double host_fraction = 0.5);

  void Put(ServerId server, int model_id, int fine_begin, int fine_end, Bytes bytes,
           TimeNs now);
  // Fraction of [fine_begin, fine_end) covered by cached ranges for this model.
  double Coverage(ServerId server, int model_id, int fine_begin, int fine_end) const;
  // Refreshes LRU timestamps for ranges about to be reused.
  void Touch(ServerId server, int model_id, TimeNs now);
  // Last time this server hosted (or cached) the model; -1 if never.
  TimeNs LastHosted(ServerId server, int model_id) const;
  // Fault path: the server died, taking its host RAM — and every cached parameter
  // image — with it. Releases the accounting and forgets the hosting history so the
  // affinity score stops steering placements toward the corpse.
  void DropServer(ServerId server);

  Bytes UsedOn(ServerId server) const;
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    int model_id = 0;
    int fine_begin = 0;
    int fine_end = 0;
    Bytes bytes = 0;
    TimeNs last_used = 0;
  };

  Bytes BudgetOn(ServerId server) const;
  void EvictLru(ServerId server, Bytes needed);
  void TouchLastHosted(ServerId server, int model_id, TimeNs now);

  Cluster* cluster_;
  double host_fraction_;
  // Flat per-server state (cluster shape is fixed at construction), same idiom as the
  // HRG: indexed loads instead of hashes, and deterministic iteration order. The inner
  // vectors are small (a handful of cached ranges / hosted models per server).
  std::vector<std::vector<Entry>> entries_;
  std::vector<std::vector<std::pair<int, TimeNs>>> last_hosted_;  // (model, last time)
  // Whether a Put ever reached this server (mirrors the former hash-map "has key"
  // state): Touch on a never-Put server must stay a no-op so LastHosted — and through
  // it the affinity score — is unchanged by the flat-vector migration.
  std::vector<uint8_t> server_seen_put_;
  int64_t evictions_ = 0;
};

// Eq. 13 affinity scoring over candidate servers.
class FLEXPIPE_THREAD_HOSTILE AffinityScheduler {
 public:
  AffinityScheduler(const Cluster* cluster, const HostParamCache* cache,
                    const ScalingConfig& config);

  // s* = argmax [ w_t e^{-λ(t_now - t_s)} + w_g |g_s ∩ G_avail| / |g_s| ].
  double Score(ServerId server, int model_id, TimeNs now, Bytes free_gpu_threshold) const;

 private:
  const Cluster* cluster_;
  const HostParamCache* cache_;
  ScalingConfig config_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_SCALING_H_
