#include "src/core/experiment.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

ExperimentEnv::ExperimentEnv(const ExperimentEnvConfig& config)
    : config_(config),
      cluster_(config.cluster),
      network_(&cluster_, config.network),
      transfer_(&sim_, &network_),
      allocator_(&cluster_, config.allocator, Rng(config.seed).Child("allocator").seed()),
      fragmentation_(&cluster_, config.fragmentation, Rng(config.seed).Child("frag").seed()),
      cost_model_(config.cost) {
  if (config.apply_fragmentation) {
    fragmentation_.ApplySnapshot();
  }
  Profiler profiler(&cost_model_, Profiler::Config{});
  Partitioner partitioner(config.partitioner);
  for (const ModelSpec& spec : config.models) {
    ComputationGraph graph = ComputationGraph::Build(spec);
    ModelProfile profile = profiler.Profile(graph);
    ladders_.emplace(spec.name, partitioner.BuildLadder(profile));
    model_order_.push_back(spec.name);
  }
}

const GranularityLadder& ExperimentEnv::ladder(const std::string& model_name) const {
  auto it = ladders_.find(model_name);
  FLEXPIPE_CHECK_MSG(it != ladders_.end(), "no ladder for model");
  return it->second;
}

const GranularityLadder& ExperimentEnv::ladder(int model_index) const {
  FLEXPIPE_CHECK(model_index >= 0 &&
                 model_index < static_cast<int>(model_order_.size()));
  return ladder(model_order_[static_cast<size_t>(model_index)]);
}

SystemContext ExperimentEnv::Context() {
  SystemContext ctx;
  ctx.sim = &sim_;
  ctx.cluster = &cluster_;
  ctx.network = &network_;
  ctx.transfer = &transfer_;
  ctx.allocator = &allocator_;
  ctx.cost_model = &cost_model_;
  ctx.fragmentation = &fragmentation_;
  ctx.seed = config_.seed;
  return ctx;
}

void ExperimentEnv::StartChurn() {
  if (churn_task_ != nullptr || config_.churn_interval <= 0 || config_.churn_fraction <= 0) {
    return;
  }
  churn_task_ = std::make_unique<PeriodicTask>(&sim_, config_.churn_interval, [this] {
    fragmentation_.ChurnStep(config_.churn_fraction);
  });
}

RunReport RunWorkload(ExperimentEnv& env, std::vector<ServingSystemBase*> systems_by_model,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options) {
  FLEXPIPE_CHECK(!systems_by_model.empty());
  storage.clear();
  storage.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    storage[i].spec = specs[i];
    storage[i].spec.arrival += options.warmup;
  }

  for (ServingSystemBase* system : systems_by_model) {
    system->Start();
  }
  if (options.enable_churn) {
    env.StartChurn();
  }

  Simulation& sim = env.sim();
  for (size_t i = 0; i < storage.size(); ++i) {
    Request* request = &storage[i];
    ServingSystemBase* system;
    if (systems_by_model.size() == 1) {
      // One multi-model system serves the whole stream; its router splits by model.
      system = systems_by_model.front();
    } else {
      int model = request->spec.model_index;
      FLEXPIPE_CHECK(model >= 0 && model < static_cast<int>(systems_by_model.size()));
      system = systems_by_model[static_cast<size_t>(model)];
    }
    sim.ScheduleAt(request->spec.arrival, [system, request] { system->OnArrival(request); });
  }

  TimeNs horizon = options.horizon;
  if (horizon == 0) {
    TimeNs last = specs.empty() ? 0 : specs.back().arrival;
    horizon = last + options.warmup + options.drain_grace;
  }
  sim.RunUntil(horizon);
  for (ServingSystemBase* system : systems_by_model) {
    system->Finish();
  }

  RunReport report;
  report.submitted = static_cast<int64_t>(specs.size());
  report.ran_until = sim.now();
  report.warmup = options.warmup;
  return report;
}

RunReport RunWorkload(ExperimentEnv& env, ServingSystemBase& system,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options) {
  return RunWorkload(env, std::vector<ServingSystemBase*>{&system}, specs, storage, options);
}

}  // namespace flexpipe
