#include "src/core/experiment.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/common/macros.h"
#include "src/sim/auditor.h"

namespace flexpipe {

ExperimentEnv::ExperimentEnv(const ExperimentEnvConfig& config)
    : config_(config),
      sim_(config.sim),
      cluster_(config.cluster),
      network_(&cluster_, config.network),
      transfer_(&sim_, &network_),
      allocator_(&cluster_, config.allocator, Rng(config.seed).Child("allocator").seed()),
      fragmentation_(&cluster_, config.fragmentation, Rng(config.seed).Child("frag").seed()),
      cost_model_(config.cost) {
  if (config.apply_fragmentation) {
    fragmentation_.ApplySnapshot();
  }
  Profiler profiler(&cost_model_, Profiler::Config{});
  Partitioner partitioner(config.partitioner);
  for (const ModelSpec& spec : config.models) {
    ComputationGraph graph = ComputationGraph::Build(spec);
    ModelProfile profile = profiler.Profile(graph);
    ladders_.emplace(spec.name, partitioner.BuildLadder(profile));
    model_order_.push_back(spec.name);
  }
}

const GranularityLadder& ExperimentEnv::ladder(const std::string& model_name) const {
  auto it = ladders_.find(model_name);
  FLEXPIPE_CHECK_MSG(it != ladders_.end(), "no ladder for model");
  return it->second;
}

const GranularityLadder& ExperimentEnv::ladder(int model_index) const {
  FLEXPIPE_CHECK(model_index >= 0 &&
                 model_index < static_cast<int>(model_order_.size()));
  return ladder(model_order_[static_cast<size_t>(model_index)]);
}

SystemContext ExperimentEnv::Context() {
  SystemContext ctx;
  ctx.sim = &sim_;
  ctx.cluster = &cluster_;
  ctx.network = &network_;
  ctx.transfer = &transfer_;
  ctx.allocator = &allocator_;
  ctx.cost_model = &cost_model_;
  ctx.fragmentation = &fragmentation_;
  ctx.seed = config_.seed;
  return ctx;
}

void ExperimentEnv::StartChurn() {
  if (churn_task_ != nullptr || config_.churn_interval <= 0 || config_.churn_fraction <= 0) {
    return;
  }
  churn_task_ = std::make_unique<PeriodicTask>(&sim_, config_.churn_interval, [this] {
    fragmentation_.ChurnStep(config_.churn_fraction);
  });
}

RunReport RunWorkload(ExperimentEnv& env, std::vector<ServingSystemBase*> systems_by_model,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options) {
  FLEXPIPE_CHECK(!systems_by_model.empty());
  storage.clear();
  storage.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    storage[i].spec = specs[i];
    storage[i].spec.arrival += options.warmup;
  }

  for (ServingSystemBase* system : systems_by_model) {
    system->Start();
  }
  if (options.enable_churn) {
    env.StartChurn();
  }

  Simulation& sim = env.sim();
  for (size_t i = 0; i < storage.size(); ++i) {
    Request* request = &storage[i];
    ServingSystemBase* system;
    if (systems_by_model.size() == 1) {
      // One multi-model system serves the whole stream; its router splits by model.
      system = systems_by_model.front();
    } else {
      int model = request->spec.model_index;
      FLEXPIPE_CHECK(model >= 0 && model < static_cast<int>(systems_by_model.size()));
      system = systems_by_model[static_cast<size_t>(model)];
    }
    sim.ScheduleAt(request->spec.arrival, [system, request] { system->OnArrival(request); });
  }

  std::unique_ptr<PeriodicSimulationAuditor> auditor;
  if (kAuditBuild && options.audit_interval > 0) {
    auditor = std::make_unique<PeriodicSimulationAuditor>(&sim, &env.cluster(),
                                                          systems_by_model,
                                                          options.audit_interval);
  }

  TimeNs horizon = options.horizon;
  if (horizon == 0) {
    TimeNs last = specs.empty() ? 0 : specs.back().arrival;
    horizon = last + options.warmup + options.drain_grace;
  }
  sim.RunUntil(horizon);
  for (ServingSystemBase* system : systems_by_model) {
    system->Finish();
  }

  RunReport report;
  report.submitted = static_cast<int64_t>(specs.size());
  report.ran_until = sim.now();
  report.warmup = options.warmup;
  report.audit_events = auditor ? auditor->audits_run() : 0;
  return report;
}

RunReport RunWorkload(ExperimentEnv& env, ServingSystemBase& system,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options) {
  return RunWorkload(env, std::vector<ServingSystemBase*>{&system}, specs, storage, options);
}

Request* RequestPool::Acquire(const RequestSpec& spec, TimeNs warmup) {
  Request* request;
  if (!free_.empty()) {
    request = free_.back();
    free_.pop_back();
  } else {
    slab_.emplace_back();
    request = &slab_.back();
  }
  *request = Request{};
  request->spec = spec;
  request->spec.arrival += warmup;
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return request;
}

void RequestPool::Release(Request* request) {
  FLEXPIPE_CHECK(live_ > 0);
  --live_;
  free_.push_back(request);
}

WorkloadHarness::WorkloadHarness(ExperimentEnv& env,
                                 std::vector<ServingSystemBase*> systems_by_model)
    : env_(env), systems_(std::move(systems_by_model)) {
  FLEXPIPE_CHECK(!systems_.empty());
}

WorkloadHarness::~WorkloadHarness() {
  // The hooks capture the pool by address; never leave them dangling.
  Finish();
}

StreamingRunReport WorkloadHarness::RunPhase(RequestStream& stream,
                                             const RunOptions& options) {
  FLEXPIPE_CHECK_MSG(!finished_, "RunPhase after Finish");
  if (!started_) {
    started_ = true;
    for (ServingSystemBase* system : systems_) {
      system->set_request_release_hook(
          [this](Request* request) { pool_.Release(request); });
      system->Start();
    }
    if (options.enable_churn) {
      env_.StartChurn();
    }
  }

  // One self-rescheduling arrival event: fire the pending request, draw the next one
  // from the stream, re-arm. The engine never sees more than a single workload event,
  // and the {driver} capture fits std::function's inline buffer — the per-arrival path
  // allocates nothing beyond pool growth to the in-flight high-water mark.
  struct ArrivalDriver {
    Simulation* sim;
    RequestStream* stream;
    const std::vector<ServingSystemBase*>* systems;
    RequestPool* pool;
    TimeNs warmup;
    RequestSpec next_spec;
    // Streams number their requests densely from 1, so a later phase's stream would
    // reissue ids still live from an earlier phase — and id collisions corrupt every
    // id-keyed structure downstream (KV residency, recovery masks). Rebasing by the
    // highest id any earlier phase produced keeps ids unique across the harness's
    // lifetime; the first phase rebases by 0, bit-identical to the single-phase runner.
    RequestId id_base = 0;
    RequestId max_id = 0;
    bool has_next = false;
    int64_t submitted = 0;
    EventId pending = 0;

    void Arm() {
      pending = sim->ScheduleAt(next_spec.arrival + warmup, [this] { Fire(); });
    }

    void Fire() {
      pending = 0;
      Request* request = pool->Acquire(next_spec, warmup);
      request->spec.id += id_base;
      max_id = std::max(max_id, request->spec.id);
      ++submitted;
      ServingSystemBase* system;
      if (systems->size() == 1) {
        system = systems->front();
      } else {
        int model = request->spec.model_index;
        FLEXPIPE_CHECK(model >= 0 && model < static_cast<int>(systems->size()));
        system = (*systems)[static_cast<size_t>(model)];
      }
      has_next = stream->Next(&next_spec);
      if (has_next) {
        Arm();
      }
      system->OnArrival(request);
    }
  };

  Simulation& sim = env_.sim();
  ArrivalDriver driver{&sim, &stream, &systems_, &pool_, options.warmup, RequestSpec{},
                       /*id_base=*/max_id_seen_};
  driver.has_next = stream.Next(&driver.next_spec);
  if (driver.has_next) {
    driver.Arm();
  }

  if (auditor_ == nullptr && kAuditBuild && options.audit_interval > 0) {
    auditor_ = std::make_unique<PeriodicSimulationAuditor>(&sim, &env_.cluster(), systems_,
                                                           options.audit_interval);
  }

  // The stream's end time bounds every arrival, so the default horizon is known before
  // any request is drawn (the materialized path keys off the last arrival instead).
  TimeNs horizon = options.horizon;
  if (horizon == 0) {
    horizon = stream.end_time() + options.warmup + options.drain_grace;
  }
  sim.RunUntil(horizon);
  // A custom horizon can cut the phase before the stream drains; drop the armed arrival
  // so nothing fires into this frame after it returns. Requests still queued or in
  // flight stay live in the shared pool — a later phase (or the drain) finishes them.
  if (driver.pending != 0) {
    sim.Cancel(driver.pending);
  }

  total_submitted_ += driver.submitted;
  max_id_seen_ = std::max(max_id_seen_, driver.max_id);
  StreamingRunReport report;
  report.submitted = driver.submitted;
  report.ran_until = sim.now();
  report.warmup = options.warmup;
  report.peak_live_requests = pool_.peak_live();
  report.audit_events = auditor_ ? auditor_->audits_run() : 0;
  return report;
}

void WorkloadHarness::Finish() {
  if (finished_ || !started_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  for (ServingSystemBase* system : systems_) {
    system->Finish();
    system->set_request_release_hook(nullptr);
  }
}

StreamingRunReport RunStreamingWorkload(ExperimentEnv& env,
                                        std::vector<ServingSystemBase*> systems_by_model,
                                        RequestStream& stream, const RunOptions& options) {
  WorkloadHarness harness(env, std::move(systems_by_model));
  StreamingRunReport report = harness.RunPhase(stream, options);
  harness.Finish();
  return report;
}

StreamingRunReport RunStreamingWorkload(ExperimentEnv& env, ServingSystemBase& system,
                                        RequestStream& stream, const RunOptions& options) {
  return RunStreamingWorkload(env, std::vector<ServingSystemBase*>{&system}, stream,
                              options);
}

}  // namespace flexpipe
