// FlexPipeSystem: the complete adaptive serving system (§4 architecture, Algorithm 1).
//
// One FlexPipeSystem can serve several models concurrently on one shared cluster (the
// paper's production mix: WHISPER-9B, LLAMA2-7B, BERT-21B, OPT-66B). Each model gets
// its own controller context — CvMonitor, GranularityController, fleet sizing state —
// while the HRG, host parameter cache, affinity scheduler and topology-aware placer are
// shared, so models genuinely contend for GPUs through the same substrate.
//
// A periodic controller observes each model's request pattern through its CvMonitor and
// drives three mechanisms:
//   * inflight pipeline refactoring — when Eq. 4 prefers a different granularity, new
//     instances are brought up at the target stage count and live state migrates via
//     MigrationSessions (no service interruption);
//   * adaptive scaling — Eq. 5 sizes the data-parallel fleet for current demand (with
//     the intensity gradient as lead), Eq. 11/12 escalate under queue pressure, and
//     instances are reclaimed after the idle window during calm periods;
//   * topology-aware allocation — placements go through the Eq. 6–9 placer with HRG
//     contention penalties and Eq. 13 affinity bonuses; released parameters persist in
//     the host cache so later scale-ups warm-start.
//
// Ablation switches (enable_refactoring / enable_hrg / enable_affinity /
// enable_host_cache) exist for the ablation benches.
#ifndef FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_
#define FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/core/allocation.h"
#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/health.h"
#include "src/core/refactoring.h"
#include "src/core/scaling.h"
#include "src/core/serving.h"

namespace flexpipe {

// What FlexPipe does when GPUs die under a live fleet (fig15):
//   kReform   — migration-based re-formation: abort sessions touching dead instances,
//               keep decode progress via KV recompute, seed the host cache from the
//               surviving stages, and relaunch at the fast-loading fine granularity.
//   kTeardown — the PipeBoost-style naive baseline: tear down every instance of the
//               affected model, drop all decode progress, and cold-start the initial
//               fleet from scratch.
enum class FaultRecoveryPolicy {
  kReform = 0,
  kTeardown = 1,
};

struct FlexPipeConfig {
  int model_id = 0;
  int initial_stages = 4;
  double reserve_fraction = 0.30;  // always-on share of peak capacity (§9.6)
  double target_peak_rps = 20.0;
  TimeNs control_interval = 500 * kMillisecond;
  TimeNs default_slo = 15 * kSecond;
  int max_launches_per_tick = 4;
  TimeNs retry_backoff = 1 * kSecond;
  // Damping: minimum spacing between granularity transitions (noisy ν_t estimates at
  // high CV would otherwise cause 8<->16 flapping, each costing a migration).
  TimeNs refactor_cooldown = 45 * kSecond;
  double demand_lead_s = 2.0;  // how far the intensity gradient projects demand

  GranularityConfig granularity;
  ScalingConfig scaling;
  PlacementConfig placement;
  WorkloadAssumptions workload;

  bool enable_refactoring = true;
  bool enable_hrg = true;
  bool enable_affinity = true;
  bool enable_host_cache = true;

  FaultRecoveryPolicy fault_recovery = FaultRecoveryPolicy::kReform;

  // Stuck-loader restart (controller hygiene): an instance whose load was priced at a
  // contention peak keeps that price for its whole load, so once the peak clears it can
  // lag a fresh launch by minutes. Each tick, loaders whose remaining load exceeds
  // `stuck_loader_factor` x the current fresh-load estimate (plus the margin) are
  // released and relaunched at today's contention — the simulated analogue of killing
  // a pod stuck in init. 0 disables.
  double stuck_loader_factor = 2.0;
  TimeNs stuck_loader_margin = 10 * kSecond;
  // A loader on genuinely slow hardware (fail-slow link) is *supposed* to lag the
  // fresh estimate; restarting it onto the same degraded server forever would churn
  // without progress. After this many restarts an instance is left to finish at
  // whatever pace its hardware allows.
  int stuck_loader_max_restarts = 2;

  // -- Fail-slow detection and mitigation (fig17) ---------------------------------------
  // Substrate-level like `placement`: the first deployment's `health` configures the
  // one shared monitor (gray failures are a property of servers, not of models).
  HealthConfig health;

  // -- Degraded-mode serving (fig16) ----------------------------------------------------
  // Brownout: once a fleet that had come up loses enough capacity that its *active*
  // instance count falls below the floor (MinInstances), admission control sheds the
  // lowest-priority request classes until capacity returns. Requests bucket into
  // `brownout_priority_levels` classes via RequestSpec::priority (derived from the
  // request id when unset); the number of shed classes scales with the capacity
  // deficit and class 0 is never shed. Opt-in: the default admits everything.
  bool enable_brownout = false;
  int brownout_priority_levels = 4;
  // Relaunch retries back off exponentially from `retry_backoff` doubling up to this
  // cap (the first retry always waits exactly `retry_backoff`), with optional
  // multiplicative jitter in [1-j, 1+j] drawn from a dedicated per-model Rng stream —
  // deterministic, and separate from the provisioning-delay stream so enabling jitter
  // never shifts other draws. jitter 0 (default) adds no draws at all.
  TimeNs relaunch_backoff_cap = 30 * kSecond;
  double relaunch_jitter = 0.0;
};

class FLEXPIPE_THREAD_HOSTILE FlexPipeSystem : public ServingSystemBase {
 public:
  // One model's deployment on the shared cluster. `config.model_id` must match the
  // `model_index` its requests carry and must be unique across deployments.
  struct ModelDeployment {
    const GranularityLadder* ladder = nullptr;
    FlexPipeConfig config;
  };

  // Single-model convenience (the historical interface).
  FlexPipeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                 const FlexPipeConfig& config);
  // Multi-model: one controller context per deployment, shared HRG / cache / placer.
  FlexPipeSystem(const SystemContext& ctx, std::vector<ModelDeployment> deployments);
  ~FlexPipeSystem() override;

  void Start() override;
  void OnArrival(Request* request) override;
  void Finish() override;
  // Recovery per the affected model's FaultRecoveryPolicy: aborts migrations touching
  // dead instances (reclaiming their limbo requests exactly once), applies the decode
  // policy, drops host-cache state on fully-dead servers, and relaunches replacements.
  void OnGpusLost(const std::vector<GpuId>& lost) override;
  // Base invariants plus HRG stream tallies and host-cache vs cluster accounting.
  void CollectAuditViolations(std::vector<std::string>* out) const override;

  // -- Introspection for benches --------------------------------------------------------
  // Aggregates across all models:
  int64_t refactor_count() const { return refactor_count_; }
  TimeNs last_refactor_pause() const { return last_pause_; }
  TimeNs total_refactor_pause() const { return total_pause_; }
  Bytes kv_migrated_bytes() const { return kv_migrated_bytes_; }
  const HostParamCache& host_cache() const { return host_cache_; }
  // Per-model views; the no-argument forms read the first (or only) deployment.
  int current_stages() const { return contexts_.front()->current_stages; }
  int current_stages_for(int model_id) const;
  const CvMonitor& cv_monitor() const { return contexts_.front()->cv_monitor; }
  const CvMonitor& cv_monitor_for(int model_id) const;
  const GranularityController& granularity_controller() const {
    return contexts_.front()->granularity;
  }
  int model_count() const { return static_cast<int>(contexts_.size()); }

  // -- Recovery introspection (fig15 / fault tests) --------------------------------------
  // Under kReform a displaced decoding request's KV is invalidated through an Eq. 10
  // mask at failure time (all context tokens invalid — the dead instance held the only
  // copy) and dropped once the request completes after its recompute pass. Returns
  // nullptr for requests with no failure in flight.
  const KvValidityMask* recovery_mask_for(RequestId id) const;
  int64_t kv_invalidated_tokens() const { return kv_invalidated_tokens_; }

  // -- Fail-slow introspection (fig17 / health tests) ------------------------------------
  // nullptr unless the first deployment's HealthConfig::enabled was set.
  const HealthMonitor* health_monitor() const { return health_monitor_.get(); }
  // Instances proactively evacuated off flagged-and-quarantined servers.
  int64_t health_migrations() const { return health_migrations_; }

 private:
  // Per-model controller state (§4's control loop instantiated once per model).
  struct ModelContext {
    ModelContext(const SystemContext& ctx, const GranularityLadder* ladder_in,
                 const FlexPipeConfig& config_in);

    const GranularityLadder* ladder;
    FlexPipeConfig config;
    Rng rng;
    // Dedicated stream for relaunch-backoff jitter: drawing here never perturbs the
    // provisioning-delay draws on `rng` (golden signatures depend on that stream).
    Rng backoff_rng;
    CvMonitor cv_monitor;
    GranularityController granularity;
    int current_stages = 0;
    int fast_scale_stages = 0;
    int refactors_in_progress = 0;
    TimeNs overcapacity_since = -1;
    TimeNs last_refactor_time = 0;
    // Brownout state: classes >= cutoff are shed at admission; cutoff == levels means
    // no shedding. fleet_ever_active distinguishes capacity *lost* (brownout) from
    // capacity still coming up at cold start (admit and queue, as always).
    int brownout_cutoff = 0;
    bool fleet_ever_active = false;
  };

  void Tick();
  void TickModel(ModelContext& model);
  // Both fail fast on a model this system does not serve.
  const ModelContext& ContextFor(int model_id) const;
  ModelContext& ContextFor(int model_id);
  double ObservedCv(const ModelContext& model) const;
  double ProjectedDemand(const ModelContext& model) const;
  int MinInstances(const ModelContext& model, int stages) const;

  PipelineInstance* LaunchAt(ModelContext& model, int stages, double cv);
  // Retries a failed launch with bounded exponential backoff: attempt k (0-based)
  // waits min(retry_backoff * 2^k, relaunch_backoff_cap), jittered when configured.
  void LaunchWithRetry(ModelContext& model, int stages, double cv, int remaining_attempts,
                       int attempt);
  // Re-evaluates the brownout cutoff from the model's active fleet vs its floor.
  void UpdateBrownout(ModelContext& model);
  // Admission class of `request` in [0, brownout_priority_levels): spec.priority when
  // assigned, else derived deterministically from the request id.
  int PriorityClass(const ModelContext& model, const Request& request) const;
  // Drops the HRG load streams opened for `instance_id` if they are still pending.
  // Idempotent: called both at the load's estimated finish and — crucial under failure
  // storms — from OnInstanceReleased when the instance dies mid-load, so razed fleets
  // do not leave zombie streams inflating every later launch's contention slowdown.
  void RetireLoadStreams(int instance_id);
  void OnInstanceReleased(int instance_id) override;
  // Releases and relaunches loaders lagging far behind the current fresh-load
  // estimate (see FlexPipeConfig::stuck_loader_factor). At most
  // max_launches_per_tick restarts per call; admitted-but-unserved requests
  // requeue silently (a loader restart is hygiene, not a fault).
  void RestartStuckLoaders(ModelContext& model);
  // Feeds per-stage busy-time deltas into the health monitor, closes the sampling
  // window, and (when mitigating) evacuates instances off newly quarantined servers.
  void SampleHealth();
  // Proactive reform off gray-failed hardware: every unreleased, non-migration-pinned
  // instance with a stage on a newly quarantined server is queued for evacuation
  // through the reform path (surviving params seed the host cache, decode progress
  // survives via Eq. 10 recompute masks) and replaced at the fast-loading
  // granularity — the placer's exclusion mask keeps the replacement off the
  // quarantined server.
  void MitigateStragglers(const std::vector<ServerId>& flagged);
  // Drains the evacuation queue at most health.max_evacuations_per_tick instances
  // per tick:
  // evacuating a whole quarantined wave at once would raze more live capacity than
  // the degradation itself costs, so victims keep (slowly) serving until their
  // replacement slot comes up.
  void ProcessEvacuations();
  void RetireOne(ModelContext& model);
  void BeginRefactor(ModelContext& model, std::vector<PipelineInstance*> old_instances,
                     int new_stages, double cv);
  void OnMigrationDone(PipelineInstance* old_instance, const MigrationResult& result);
  void CacheInstanceParams(PipelineInstance* instance);
  std::vector<bool> WarmFlags(const ModelContext& model, const PipelinePlan& plan,
                              const std::vector<GpuId>& gpus) const;
  void OnRequestComplete(Request* request) override;

  // -- Fault recovery helpers ------------------------------------------------------------
  // Like CacheInstanceParams, but only for stages standing on still-usable GPUs: a dead
  // stage's server may be gone, and seeding the cache from it would warm-start from
  // memory that no longer exists.
  void CacheSurvivingStageParams(PipelineInstance* instance);
  // Applies the per-request decode policy to a request reclaimed from an aborted
  // migration (FailInstance never sees it) and records the recovery mask under kReform.
  void RecoverDisplacedRequest(Request* request, bool reform);
  void TrackRecoveryMask(Request* request);

  // Stable addresses: controller callbacks capture raw ModelContext pointers.
  std::vector<std::unique_ptr<ModelContext>> contexts_;
  HierarchicalResourceGraph hrg_;
  HostParamCache host_cache_;
  AffinityScheduler affinity_;
  TopologyAwarePlacer placer_;
  std::unique_ptr<PeriodicTask> control_task_;

  int64_t refactor_count_ = 0;
  TimeNs last_pause_ = 0;
  TimeNs total_pause_ = 0;
  Bytes kv_migrated_bytes_ = 0;
  std::vector<std::unique_ptr<MigrationSession>> sessions_;
  // Instances pinned by an in-flight migration (sources and targets), keyed by
  // instance id -> model id: exempt from scale-in until the model's wave completes.
  std::map<int, int> migration_pinned_;
  // Servers whose HRG load streams are still open per loading instance; entries are
  // erased by RetireLoadStreams (estimated-finish event or early release).
  std::map<int, std::vector<ServerId>> pending_load_streams_;
  // Eq. 10 masks for requests displaced by a failure under kReform, keyed by request
  // id; erased when the request completes (its recompute pass rebuilt the KV).
  std::map<RequestId, std::unique_ptr<KvValidityMask>> recovery_masks_;
  int64_t kv_invalidated_tokens_ = 0;

  // -- Fail-slow state -------------------------------------------------------------------
  // Shared across models (built from the first deployment's HealthConfig when enabled);
  // its quarantine mask is lent to the placer for the lifetime of this system.
  std::unique_ptr<HealthMonitor> health_monitor_;
  // Last-sampled per-stage (observed, base) busy counters per instance id, so each
  // control tick reports window deltas rather than lifetime totals.
  std::map<int, std::vector<std::pair<TimeNs, TimeNs>>> health_sampled_;
  // Instances awaiting paced evacuation off quarantined servers, in flag order.
  std::vector<int> evacuation_queue_;
  int64_t health_migrations_ = 0;
  // Stuck-loader restarts already spent per instance id (satellite of the fail-slow
  // work: restarts are capped so genuinely slow hardware cannot churn forever).
  std::map<int, int> loader_restarts_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_
