// FlexPipeSystem: the complete adaptive serving system (§4 architecture, Algorithm 1).
//
// A periodic controller observes the request pattern through the CvMonitor and drives
// three mechanisms:
//   * inflight pipeline refactoring — when Eq. 4 prefers a different granularity, new
//     instances are brought up at the target stage count and live state migrates via
//     MigrationSessions (no service interruption);
//   * adaptive scaling — Eq. 5 sizes the data-parallel fleet for current demand (with
//     the intensity gradient as lead), Eq. 11/12 escalate under queue pressure, and
//     instances are reclaimed after the idle window during calm periods;
//   * topology-aware allocation — placements go through the Eq. 6–9 placer with HRG
//     contention penalties and Eq. 13 affinity bonuses; released parameters persist in
//     the host cache so later scale-ups warm-start.
//
// Ablation switches (enable_refactoring / enable_hrg / enable_affinity /
// enable_host_cache) exist for the ablation benches.
#ifndef FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_
#define FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_

#include <memory>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/allocation.h"
#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/refactoring.h"
#include "src/core/scaling.h"
#include "src/core/serving.h"

namespace flexpipe {

struct FlexPipeConfig {
  int model_id = 0;
  int initial_stages = 4;
  double reserve_fraction = 0.30;  // always-on share of peak capacity (§9.6)
  double target_peak_rps = 20.0;
  TimeNs control_interval = 500 * kMillisecond;
  TimeNs default_slo = 15 * kSecond;
  int max_launches_per_tick = 4;
  TimeNs retry_backoff = 1 * kSecond;
  // Damping: minimum spacing between granularity transitions (noisy ν_t estimates at
  // high CV would otherwise cause 8<->16 flapping, each costing a migration).
  TimeNs refactor_cooldown = 45 * kSecond;
  double demand_lead_s = 2.0;  // how far the intensity gradient projects demand

  GranularityConfig granularity;
  ScalingConfig scaling;
  PlacementConfig placement;
  WorkloadAssumptions workload;

  bool enable_refactoring = true;
  bool enable_hrg = true;
  bool enable_affinity = true;
  bool enable_host_cache = true;
};

class FlexPipeSystem : public ServingSystemBase {
 public:
  FlexPipeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                 const FlexPipeConfig& config);
  ~FlexPipeSystem() override;

  void Start() override;
  void OnArrival(Request* request) override;
  void Finish() override;

  // -- Introspection for benches --------------------------------------------------------
  int current_stages() const { return current_stages_; }
  int64_t refactor_count() const { return refactor_count_; }
  TimeNs last_refactor_pause() const { return last_pause_; }
  TimeNs total_refactor_pause() const { return total_pause_; }
  Bytes kv_migrated_bytes() const { return kv_migrated_bytes_; }
  const CvMonitor& cv_monitor() const { return cv_monitor_; }
  const HostParamCache& host_cache() const { return host_cache_; }
  const GranularityController& granularity_controller() const { return granularity_; }

 private:
  void Tick();
  double ObservedCv() const;
  double ProjectedDemand() const;
  int MinInstances(int stages) const;
  int ActiveOrLoadingCount() const;

  PipelineInstance* LaunchAt(int stages, double cv);
  void LaunchWithRetry(int stages, double cv, int remaining_attempts, TimeNs waited);
  void RetireOne();
  void BeginRefactor(std::vector<PipelineInstance*> old_instances, int new_stages, double cv);
  void OnMigrationDone(PipelineInstance* old_instance, const MigrationResult& result);
  void CacheInstanceParams(PipelineInstance* instance);
  std::vector<bool> WarmFlags(const PipelinePlan& plan, const std::vector<GpuId>& gpus) const;

  const GranularityLadder* ladder_;
  FlexPipeConfig config_;
  Rng rng_;
  CvMonitor cv_monitor_;
  GranularityController granularity_;
  HierarchicalResourceGraph hrg_;
  HostParamCache host_cache_;
  AffinityScheduler affinity_;
  TopologyAwarePlacer placer_;
  std::unique_ptr<PeriodicTask> control_task_;

  int current_stages_ = 0;
  int refactors_in_progress_ = 0;
  int64_t refactor_count_ = 0;
  TimeNs last_pause_ = 0;
  TimeNs total_pause_ = 0;
  Bytes kv_migrated_bytes_ = 0;
  TimeNs overcapacity_since_ = -1;
  TimeNs last_refactor_time_ = 0;
  int fast_scale_stages_ = 0;
  std::vector<std::unique_ptr<MigrationSession>> sessions_;
  // Instances pinned by an in-flight migration (sources and targets): exempt from
  // scale-in until the session completes.
  std::set<int> migration_pinned_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_FLEXPIPE_SYSTEM_H_
