#include "src/core/granularity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/macros.h"

namespace flexpipe {

GranularityController::GranularityController(const GranularityLadder* ladder,
                                             const CostModel* cost_model,
                                             const NetworkModel* network,
                                             const WorkloadAssumptions& workload,
                                             const GranularityConfig& config)
    : ladder_(ladder),
      cost_model_(cost_model),
      network_(network),
      workload_(workload),
      config_(config) {
  FLEXPIPE_CHECK(ladder != nullptr && cost_model != nullptr && network != nullptr);
  options_.reserve(ladder_->granularities.size());
  for (int g : ladder_->granularities) {
    options_.push_back(BuildOption(ladder_->plan(g)));
  }
}

GranularityOption GranularityController::BuildOption(const PipelinePlan& plan) const {
  GranularityOption opt;
  opt.stages = plan.num_stages();
  opt.max_batch = cost_model_->MaxRequestsPerStage() * plan.num_stages();
  opt.cv_opt = config_.cv_anchor_per_stage * plan.num_stages();

  const ModelSpec& spec = plan.spec;
  int group_batch = cost_model_->MaxRequestsPerStage();
  // Assume intra-rack links between consecutive stages (the common placement).
  TimeNs hop_latency = network_->Latency(LinkTier::kIntraRack);
  BytesPerSec hop_bw = network_->Bandwidth(LinkTier::kIntraRack);
  TimeNs decode_full = cost_model_->FullModelComputeTime(spec, Phase::kDecode, 1, 1);
  TimeNs overhead = FromMillis(cost_model_->config().per_stage_overhead_ms);
  double slope = cost_model_->config().decode_batch_slope;
  Bytes act_per_req = cost_model_->DecodeActivationBytes(spec, 1);

  TimeNs total_compute = plan.TotalCompute();
  // Steady-state throughput is bound by the busiest stage's per-request service demand:
  // prompt processing (prefill shares the stage with decode, Sarathi-style), the
  // request's share of batched decode iterations, and amortized iteration overhead.
  double bottleneck_demand_s = 0.0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    double share = total_compute > 0
                       ? static_cast<double>(sp.compute_time) / static_cast<double>(total_compute)
                       : 1.0 / plan.num_stages();
    double prefill_per_token_s =
        ToSeconds(sp.compute_time) / std::max(1, spec.context_window);
    double stage_decode_s = ToSeconds(decode_full) * share *
                            (1.0 + slope * static_cast<double>(group_batch - 1));
    double demand = workload_.mean_prompt_tokens * prefill_per_token_s +
                    workload_.mean_output_tokens * (stage_decode_s / group_batch) +
                    workload_.mean_output_tokens * ToSeconds(overhead) / group_batch;
    bottleneck_demand_s = std::max(bottleneck_demand_s, demand);
  }
  opt.throughput_rps = 1.0 / std::max(bottleneck_demand_s, 1e-9);

  // Unloaded latency: prefill traversal + output_tokens token intervals.
  TimeNs prefill_full = cost_model_->FullModelComputeTime(spec, Phase::kPrefill,
                                                          workload_.mean_prompt_tokens, 1);
  TimeNs prefill_traversal =
      prefill_full + plan.num_stages() * overhead +
      (plan.num_stages() - 1) *
          (hop_latency + TransferTime(act_per_req * 8, hop_bw));  // light batch
  TimeNs decode_traversal_light = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    double share = total_compute > 0
                       ? static_cast<double>(sp.compute_time) / static_cast<double>(total_compute)
                       : 1.0 / plan.num_stages();
    decode_traversal_light +=
        overhead + static_cast<TimeNs>(static_cast<double>(decode_full) * share);
    if (s + 1 < plan.num_stages()) {
      decode_traversal_light += hop_latency + TransferTime(act_per_req, hop_bw);
    }
  }
  opt.latency_s = ToSeconds(prefill_traversal) +
                  ToSeconds(decode_traversal_light) * workload_.mean_output_tokens;
  return opt;
}

const GranularityOption& GranularityController::OptionFor(int stages) const {
  for (const auto& opt : options_) {
    if (opt.stages == stages) {
      return opt;
    }
  }
  FLEXPIPE_CHECK_MSG(false, "unknown granularity");
  return options_.front();  // unreachable
}

double GranularityController::Score(int stages, double cv_now) const {
  const GranularityOption& opt = OptionFor(stages);
  double t_max = 0.0;
  double l_min = std::numeric_limits<double>::infinity();
  for (const auto& o : options_) {
    t_max = std::max(t_max, o.throughput_rps);
    l_min = std::min(l_min, o.latency_s);
  }
  double base = config_.alpha * (opt.throughput_rps / t_max) +
                (1.0 - config_.alpha) * (l_min / opt.latency_s);
  double cv = std::max(cv_now, 0.05);
  double dist = std::abs(std::log(cv) - std::log(opt.cv_opt));
  return base * std::exp(-dist / config_.sigma);
}

int GranularityController::SelectStageCount(double cv_now, int current_stages) const {
  int best = options_.front().stages;
  double best_score = -1.0;
  for (const auto& opt : options_) {
    double s = Score(opt.stages, cv_now);
    if (s > best_score) {
      best_score = s;
      best = opt.stages;
    }
  }
  if (current_stages > 0 && best != current_stages) {
    // Hysteresis: keep the incumbent unless the challenger clearly wins.
    double incumbent = Score(current_stages, cv_now);
    if (best_score < incumbent * config_.hysteresis) {
      return current_stages;
    }
  }
  return best;
}

int GranularityController::InstancesFor(double demand_rps, int stages) const {
  const GranularityOption& opt = OptionFor(stages);
  double mu_k = opt.throughput_rps /
                (config_.beta1 + config_.beta2 * static_cast<double>(opt.stages));
  if (mu_k <= 0.0) {
    return 1;
  }
  return std::max(1, static_cast<int>(std::ceil(demand_rps / mu_k)));
}

}  // namespace flexpipe
