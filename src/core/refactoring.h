// Inflight migration with consistent KV transitions (§6.3, Fig. 6(b)).
//
// A MigrationSession moves one old instance's live state to a new instance (of any
// granularity) without stopping service:
//
//   1. snapshot  — admissions close on the old instance; the KV cache of every decoding
//                  request is shipped asynchronously while the old pipeline KEEPS
//                  SERVING. Validity masks (Eq. 10) record which tokens the snapshot
//                  covers; tokens generated during the transfer are invalid by
//                  construction.
//   2. cutover   — the old instance halts at an iteration boundary and hands over its
//                  requests. Only the mask-invalid delta (a few tokens per request) must
//                  now move; this short delta transfer is the only service pause — the
//                  "µs/ms-level inflight reconstruction" the paper reports.
//   3. resume    — decoding requests are injected into the new instance with their
//                  token counts intact; never-prefilled requests go back to the router.
#ifndef FLEXPIPE_SRC_CORE_REFACTORING_H_
#define FLEXPIPE_SRC_CORE_REFACTORING_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/kv_cache.h"
#include "src/runtime/router.h"
#include "src/runtime/transfer.h"
#include "src/sim/simulation.h"

namespace flexpipe {

struct MigrationResult {
  int migrated_decoding = 0;   // resumed on the new instance with KV intact
  int restarted = 0;           // decoding, but did not fit on the target; restarted
  int requeued = 0;            // never prefilled; returned to the router
  // Invariant: migrated_decoding + restarted + requeued == requests extracted at halt.
  Bytes snapshot_bytes = 0;
  Bytes delta_bytes = 0;
  TimeNs snapshot_duration = 0;
  TimeNs pause_duration = 0;   // service gap: halt -> resume (the delta phase)
};

class MigrationSession {
 public:
  // `on_done(old_instance, result)` fires after resume; the owner releases the old
  // instance's GPUs there.
  using DoneCallback = std::function<void(PipelineInstance*, const MigrationResult&)>;

  MigrationSession(Simulation* sim, TransferEngine* transfer, PipelineInstance* from,
                   PipelineInstance* to, Router* router, DoneCallback on_done);

  void Start();
  bool started() const { return started_; }
  bool finished() const { return finished_; }
  bool aborted() const { return aborted_; }
  PipelineInstance* source() const { return from_; }
  PipelineInstance* target() const { return to_; }

  // Fault path: either endpoint's GPUs died mid-session. Deactivates every pending
  // continuation (transfer callbacks become no-ops; on_done_ never fires) and returns
  // the requests the session holds in limbo — extracted from the source at halt but
  // not yet resumed or requeued. Decoding limbo requests keep their phase and token
  // counts; the caller applies its recovery policy and requeues them exactly once.
  // Empty before the halt (requests still live on the source) and after finish.
  std::vector<Request*> Abort();

  // Introspection (tests): the Eq. 10 validity mask tracked for a request, or nullptr.
  // Tail tokens generated during the snapshot stay invalid until the delta transfer
  // completes — the resume-time consistency check relies on that timing.
  const KvValidityMask* MaskFor(RequestId id) const;

 private:
  // Eq. 10 bookkeeping for one snapshotted request: its validity mask plus the token
  // count at snapshot time.
  struct SnapshotState {
    RequestId id = 0;
    int snapshot_tokens = 0;
    std::unique_ptr<KvValidityMask> mask;
  };

  void OnSnapshotDone(TimeNs duration);
  void OnHalted(std::vector<Request*> extracted);
  void MarkDeltaValid(const std::vector<Request*>& decoding);
  // Resume phase: injects/requeues the limbo requests and fires on_done_.
  void FinishNow();
  const SnapshotState* StateFor(RequestId id) const;
  SnapshotState* StateFor(RequestId id);

  Simulation* sim_;
  TransferEngine* transfer_;
  PipelineInstance* from_;
  PipelineInstance* to_;
  Router* router_;
  DoneCallback on_done_;

  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  MigrationResult result_;
  // Limbo custody between halt and resume: the extracted requests live here (not in
  // closure captures) so Abort can reclaim them if a fault lands mid-delta-transfer.
  TimeNs halt_time_ = 0;
  std::vector<Request*> limbo_decoding_;
  std::vector<Request*> limbo_queued_;
  // Sorted by request id (binary-search lookups); one session tracks at most one
  // instance's decoding set, so the flat vector stays small and iterates
  // deterministically.
  std::vector<SnapshotState> states_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_REFACTORING_H_
