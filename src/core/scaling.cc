#include "src/core/scaling.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

int ScalingGranularity(double cv, double queue_normalized, const ScalingConfig& config) {
  double q = std::clamp(queue_normalized, 0.0, 1.0);
  double pressure = std::max(cv, 0.0) * q;
  double m = static_cast<double>(config.g_max) /
             (1.0 + config.beta * std::exp(-config.gamma * pressure));
  return std::max(1, static_cast<int>(std::ceil(m)));
}

bool SloFeasible(TimeNs slo_deadline, TimeNs init_time, double per_stage_rps, int m,
                 int required) {
  if (required <= 0) {
    return true;
  }
  double usable_s = ToSeconds(slo_deadline - init_time);
  if (usable_s <= 0.0) {
    return false;
  }
  // Eq. 12 as written divides both sides by the backlog Q_j; the divisor cancels.
  double capacity = usable_s * per_stage_rps * static_cast<double>(m);
  return capacity >= static_cast<double>(required);
}

HierarchicalResourceGraph::HierarchicalResourceGraph(const Cluster* cluster,
                                                     const Config& config)
    : cluster_(cluster), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr);
  server_events_.resize(static_cast<size_t>(cluster->server_count()));
  rack_events_.resize(static_cast<size_t>(cluster->rack_count()));
  server_streams_.assign(static_cast<size_t>(cluster->server_count()), 0);
  rack_streams_.assign(static_cast<size_t>(cluster->rack_count()), 0);
}

double HierarchicalResourceGraph::Read(const DecayedCounter& counter, TimeNs now) const {
  double age = ToSeconds(now - counter.last);
  double decay = std::exp(-age / std::max(ToSeconds(config_.event_decay), 1e-9));
  return counter.value * decay;
}

void HierarchicalResourceGraph::Bump(DecayedCounter& counter, TimeNs now) {
  counter.value = Read(counter, now) + 1.0;
  counter.last = now;
}

void HierarchicalResourceGraph::RecordScalingEvent(ServerId server, TimeNs now) {
  Bump(server_events_[static_cast<size_t>(server)], now);
  Bump(rack_events_[static_cast<size_t>(cluster_->RackOf(server))], now);
}

double HierarchicalResourceGraph::ServerContention(ServerId server, TimeNs now) const {
  double v = Read(server_events_[static_cast<size_t>(server)], now);
  return v / (v + 1.0);  // squash to [0, 1)
}

double HierarchicalResourceGraph::RackContention(RackId rack, TimeNs now) const {
  double v = Read(rack_events_[static_cast<size_t>(rack)], now);
  return v / (v + 3.0);  // racks tolerate more concurrency before contending
}

double HierarchicalResourceGraph::PlacementPenalty(ServerId server, TimeNs now) const {
  return std::min(1.0, ServerContention(server, now) +
                           0.5 * RackContention(cluster_->RackOf(server), now));
}

void HierarchicalResourceGraph::AddLoadStream(ServerId server) {
  ++server_streams_[static_cast<size_t>(server)];
  ++rack_streams_[static_cast<size_t>(cluster_->RackOf(server))];
  ++cluster_streams_;
}

void HierarchicalResourceGraph::RemoveLoadStream(ServerId server) {
  int& s_streams = server_streams_[static_cast<size_t>(server)];
  FLEXPIPE_CHECK(s_streams > 0);
  --s_streams;
  int& r_streams = rack_streams_[static_cast<size_t>(cluster_->RackOf(server))];
  FLEXPIPE_CHECK(r_streams > 0);
  --r_streams;
  FLEXPIPE_CHECK(cluster_streams_ > 0);
  --cluster_streams_;
}

double HierarchicalResourceGraph::LoadSlowdown(ServerId server) const {
  auto level = [](int streams, int capacity) {
    return std::max(1.0, static_cast<double>(streams + 1) / capacity);
  };
  double worst = level(server_streams_[static_cast<size_t>(server)],
                       config_.server_stream_capacity);
  worst = std::max(worst, level(rack_streams_[static_cast<size_t>(cluster_->RackOf(server))],
                                config_.rack_stream_capacity));
  worst = std::max(worst, level(cluster_streams_, config_.cluster_stream_capacity));
  return worst;
}

HostParamCache::HostParamCache(Cluster* cluster, double host_fraction)
    : cluster_(cluster), host_fraction_(host_fraction) {
  FLEXPIPE_CHECK(cluster != nullptr);
  FLEXPIPE_CHECK(host_fraction > 0.0 && host_fraction <= 1.0);
  entries_.resize(static_cast<size_t>(cluster->server_count()));
  last_hosted_.resize(static_cast<size_t>(cluster->server_count()));
  server_seen_put_.assign(static_cast<size_t>(cluster->server_count()), 0);
}

void HostParamCache::TouchLastHosted(ServerId server, int model_id, TimeNs now) {
  auto& hosted = last_hosted_[static_cast<size_t>(server)];
  for (auto& [model, last] : hosted) {
    if (model == model_id) {
      last = now;
      return;
    }
  }
  hosted.emplace_back(model_id, now);
}

Bytes HostParamCache::BudgetOn(ServerId server) const {
  return static_cast<Bytes>(static_cast<double>(cluster_->server(server).host_memory) *
                            host_fraction_);
}

Bytes HostParamCache::UsedOn(ServerId server) const {
  Bytes used = 0;
  for (const Entry& e : entries_[static_cast<size_t>(server)]) {
    used += e.bytes;
  }
  return used;
}

void HostParamCache::EvictLru(ServerId server, Bytes needed) {
  auto& list = entries_[static_cast<size_t>(server)];
  while (UsedOn(server) + needed > BudgetOn(server) && !list.empty()) {
    size_t oldest = 0;
    for (size_t i = 1; i < list.size(); ++i) {
      if (list[i].last_used < list[oldest].last_used) {
        oldest = i;
      }
    }
    cluster_->ReleaseHostMemory(server, list[oldest].bytes);
    list.erase(list.begin() + static_cast<long>(oldest));
    ++evictions_;
  }
}

void HostParamCache::Put(ServerId server, int model_id, int fine_begin, int fine_end,
                         Bytes bytes, TimeNs now) {
  FLEXPIPE_CHECK(fine_end > fine_begin && bytes > 0);
  if (bytes > BudgetOn(server)) {
    return;  // cannot ever fit
  }
  // Replace an identical range if present.
  server_seen_put_[static_cast<size_t>(server)] = 1;
  auto& list = entries_[static_cast<size_t>(server)];
  for (Entry& e : list) {
    if (e.model_id == model_id && e.fine_begin == fine_begin && e.fine_end == fine_end) {
      e.last_used = now;
      TouchLastHosted(server, model_id, now);
      return;
    }
  }
  EvictLru(server, bytes);
  if (!cluster_->TryReserveHostMemory(server, bytes)) {
    return;  // host memory pressured by other consumers
  }
  list.push_back(Entry{model_id, fine_begin, fine_end, bytes, now});
  TouchLastHosted(server, model_id, now);
}

double HostParamCache::Coverage(ServerId server, int model_id, int fine_begin,
                                int fine_end) const {
  FLEXPIPE_CHECK(fine_end > fine_begin);
  const auto& list = entries_[static_cast<size_t>(server)];
  int covered = 0;
  for (int f = fine_begin; f < fine_end; ++f) {
    for (const Entry& e : list) {
      if (e.model_id == model_id && f >= e.fine_begin && f < e.fine_end) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(fine_end - fine_begin);
}

void HostParamCache::Touch(ServerId server, int model_id, TimeNs now) {
  if (!server_seen_put_[static_cast<size_t>(server)]) {
    return;  // mirrors the former map semantics: no Put, no last-hosted refresh
  }
  for (Entry& e : entries_[static_cast<size_t>(server)]) {
    if (e.model_id == model_id) {
      e.last_used = now;
    }
  }
  TouchLastHosted(server, model_id, now);
}

TimeNs HostParamCache::LastHosted(ServerId server, int model_id) const {
  for (const auto& [model, last] : last_hosted_[static_cast<size_t>(server)]) {
    if (model == model_id) {
      return last;
    }
  }
  return -1;
}

void HostParamCache::DropServer(ServerId server) {
  auto& list = entries_[static_cast<size_t>(server)];
  for (const Entry& e : list) {
    cluster_->ReleaseHostMemory(server, e.bytes);
  }
  list.clear();
  last_hosted_[static_cast<size_t>(server)].clear();
}

AffinityScheduler::AffinityScheduler(const Cluster* cluster, const HostParamCache* cache,
                                     const ScalingConfig& config)
    : cluster_(cluster), cache_(cache), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr && cache != nullptr);
}

double AffinityScheduler::Score(ServerId server, int model_id, TimeNs now,
                                Bytes free_gpu_threshold) const {
  double temporal = 0.0;
  TimeNs last = cache_->LastHosted(server, model_id);
  if (last >= 0) {
    temporal = std::exp(-config_.affinity_decay * ToSeconds(now - last));
  }
  const Server& s = cluster_->server(server);
  int avail = 0;
  for (GpuId g : s.gpus) {
    if (cluster_->GpuUsable(g) && cluster_->gpu(g).free_memory() >= free_gpu_threshold) {
      ++avail;
    }
  }
  double gpu_term =
      s.gpus.empty() ? 0.0 : static_cast<double>(avail) / static_cast<double>(s.gpus.size());
  return config_.affinity_w_t * temporal + config_.affinity_w_g * gpu_term;
}

}  // namespace flexpipe
