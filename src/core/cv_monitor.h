// Online request-pattern monitor (§6).
//
// Tracks the coefficient of variation ν_t of inter-arrival times over a sliding window,
// the arrival intensity λ_t, and its gradient ∂λ/∂t (Algorithm 1 line 3 — the
// "characteristic velocity" FlexPipe uses to anticipate traffic shifts before they
// become queue growth).
#ifndef FLEXPIPE_SRC_CORE_CV_MONITOR_H_
#define FLEXPIPE_SRC_CORE_CV_MONITOR_H_

#include <deque>

#include "src/common/stats.h"
#include "src/common/units.h"

namespace flexpipe {

class CvMonitor {
 public:
  struct Config {
    size_t window_arrivals = 512;       // inter-arrival samples for ν_t (~17 s at 30 rps)
    TimeNs rate_window = 5 * kSecond;   // λ_t measurement window
  };

  CvMonitor() : CvMonitor(Config{}) {}
  explicit CvMonitor(const Config& config);

  void RecordArrival(TimeNs now);

  // ν_t: CV of recent inter-arrival gaps. Returns 0 until enough samples exist.
  double Cv() const { return gaps_.cv(); }
  size_t samples() const { return gaps_.size(); }

  // λ_t over the last rate window.
  double RatePerSec(TimeNs now) const;

  // ∂λ/∂t: (rate in the newest window − rate in the previous window) / window.
  // Positive values predict a building burst.
  double RateGradient(TimeNs now) const;

 private:
  size_t CountIn(TimeNs begin, TimeNs end) const;

  Config config_;
  SlidingWindowStats gaps_;
  TimeNs last_arrival_ = -1;
  std::deque<TimeNs> recent_;  // arrival timestamps, pruned to 2 rate windows
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_CV_MONITOR_H_
