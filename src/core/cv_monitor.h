// Online request-pattern monitor (§6).
//
// Tracks the coefficient of variation ν_t of inter-arrival times over a sliding window,
// the arrival intensity λ_t, and its gradient ∂λ/∂t (Algorithm 1 line 3 — the
// "characteristic velocity" FlexPipe uses to anticipate traffic shifts before they
// become queue growth).
//
// The monitor sits on every arrival and every controller tick, so both paths are
// allocation-free and O(1) amortized: arrival timestamps live in a growable flat ring
// pruned to two rate windows, and the rate queries keep per-boundary cursors that a
// two-pointer walk advances as virtual time does — no per-query binary search or scan.
#ifndef FLEXPIPE_SRC_CORE_CV_MONITOR_H_
#define FLEXPIPE_SRC_CORE_CV_MONITOR_H_

#include <cstddef>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE CvMonitor {
 public:
  struct Config {
    size_t window_arrivals = 512;       // inter-arrival samples for ν_t (~17 s at 30 rps)
    TimeNs rate_window = 5 * kSecond;   // λ_t measurement window
  };

  CvMonitor() : CvMonitor(Config{}) {}
  explicit CvMonitor(const Config& config);

  void RecordArrival(TimeNs now);

  // ν_t: CV of recent inter-arrival gaps. Returns 0 until enough samples exist.
  double Cv() const { return gaps_.cv(); }
  size_t samples() const { return gaps_.size(); }

  // λ_t over the last rate window.
  double RatePerSec(TimeNs now) const;

  // ∂λ/∂t: (rate in the newest window − rate in the previous window) / window.
  // Positive values predict a building burst.
  double RateGradient(TimeNs now) const;

 private:
  // Timestamp of the i-th oldest retained arrival (0 <= i < count_).
  TimeNs At(size_t i) const { return ring_[(head_ + i) & (ring_.size() - 1)]; }
  // First logical index with At(index) >= bound, resuming from the cached `cursor`.
  // Queries come with monotonically advancing `now`, so the cursors move forward a few
  // steps per call (two-pointer); a rewinding `now` is still answered correctly.
  size_t LowerBound(TimeNs bound, size_t& cursor) const;

  Config config_;
  SlidingWindowStats gaps_;
  TimeNs last_arrival_ = -1;
  // Arrival-timestamp ring, power-of-two capacity, pruned to 2 rate windows.
  std::vector<TimeNs> ring_;
  size_t head_ = 0;   // physical index of the oldest retained arrival
  size_t count_ = 0;
  // Cached window-boundary cursors (logical indices): [now-2w, now-w, now+1).
  mutable size_t old_cursor_ = 0;
  mutable size_t mid_cursor_ = 0;
  mutable size_t new_cursor_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_CV_MONITOR_H_
