// Granularity adaptation (§6.1, Eq. 4 and Eq. 5).
//
// For each candidate granularity g_k = (η_k stages, b_k batch) the controller keeps an
// analytic performance profile (T_k throughput, L_k latency) derived from the pipeline
// plan and cost model, plus its preferred operating CV ν_k. Selection maximizes
//   S_k = [α T_k/T_max + (1-α) L_min/L_k] · exp(-|log ν_t - log ν_k| / σ)
// (distance taken in log space — CV is a scale quantity), with hysteresis so scores must
// beat the incumbent by a margin before triggering a refactor. Eq. 5 sizes the
// data-parallel fleet for a target demand.
#ifndef FLEXPIPE_SRC_CORE_GRANULARITY_H_
#define FLEXPIPE_SRC_CORE_GRANULARITY_H_

#include <vector>

#include "src/cluster/network.h"
#include "src/common/thread_annotations.h"
#include "src/model/cost_model.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct WorkloadAssumptions {
  // Means of the Splitwise-like length distributions (log-normal: mean = median*e^{s^2/2}).
  int mean_prompt_tokens = 768;
  int mean_output_tokens = 30;
};

struct GranularityOption {
  int stages = 0;
  int max_batch = 0;          // b_k = 32 η_k
  double throughput_rps = 0;  // T_k: request/s per instance at full batch
  double latency_s = 0;       // L_k: unloaded per-request latency
  double cv_opt = 0;          // ν_k
};

struct GranularityConfig {
  double alpha = 0.45;          // throughput-latency trade-off weight in Eq. 4
  double sigma = 0.9;           // adaptation sensitivity (log-CV units)
  double hysteresis = 1.25;     // new score must exceed incumbent's by this factor
  double cv_anchor_per_stage = 0.5;   // ν_k = anchor · η_k (4 stages ≡ CV 2)
  // Eq. 5 coordination overhead coefficients: μ_k = T_k / (β1 + β2 η_k). β1 > 1 keeps
  // per-instance target utilization below saturation (latency headroom), β2 charges
  // coordination per stage.
  double beta1 = 1.25;
  double beta2 = 0.02;
};

class FLEXPIPE_THREAD_HOSTILE GranularityController {
 public:
  GranularityController(const GranularityLadder* ladder, const CostModel* cost_model,
                        const NetworkModel* network, const WorkloadAssumptions& workload,
                        const GranularityConfig& config);

  const std::vector<GranularityOption>& options() const { return options_; }
  const GranularityOption& OptionFor(int stages) const;

  // Eq. 4 score of granularity `stages` at observed CV ν_t.
  double Score(int stages, double cv_now) const;

  // argmax of Eq. 4; with hysteresis relative to `current_stages` (pass 0 for none).
  int SelectStageCount(double cv_now, int current_stages) const;

  // Eq. 5: M(g_k) = ceil(μ_total / μ_k) with μ_k = T_k / (β1 + β2 η_k).
  int InstancesFor(double demand_rps, int stages) const;

 private:
  GranularityOption BuildOption(const PipelinePlan& plan) const;

  const GranularityLadder* ladder_;
  const CostModel* cost_model_;
  const NetworkModel* network_;
  WorkloadAssumptions workload_;
  GranularityConfig config_;
  std::vector<GranularityOption> options_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_GRANULARITY_H_
