// Fail-slow health monitoring: straggler detection with hysteresis and quarantine.
//
// Gray failures (thermal throttles, sick NICs) never fire a GPU-loss event — the
// hardware keeps serving, just slower — so nothing in the fail-stop recovery path can
// see them. The HealthMonitor closes that gap from the serving side: every control
// tick the serving layer reports, per server, how much busy time its stages actually
// consumed (observed) versus what the healthy cost-model profile predicted (base).
// The observed/base ratio is EWMA-smoothed per server; a server whose smoothed ratio
// stays beyond the straggler threshold for K consecutive windows is *flagged* (the
// hysteresis kills single-window flaps), and a flagged repeat offender is
// *quarantined*: its id enters a byte mask the placer treats as a hard exclusion, and
// the serving layer proactively migrates the stages standing on it. Quarantined
// servers are re-probed on a fixed cadence (modeling an out-of-band canary kernel +
// loopback transfer, which reads the cluster's ground-truth perf/link factors) and
// readmitted after consecutive healthy probes.
//
// Determinism: the monitor draws no randomness and schedules no events — it is pure
// arithmetic over busy-time counters inside the existing control tick, so enabling
// detection on a healthy fleet leaves the simulation trajectory bit-identical. On a
// healthy fleet observed == base exactly (the runtime stretches busy time only when a
// server is degraded), the ratio is exactly 1.0, and the monitor provably never
// flags: the zero-false-positive baseline is deterministic, not statistical.
#ifndef FLEXPIPE_SRC_CORE_HEALTH_H_
#define FLEXPIPE_SRC_CORE_HEALTH_H_

#include <cstdint>
#include <vector>

#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

struct HealthConfig {
  // Master switch: disabled builds no per-server state and samples nothing, keeping
  // the control tick byte-for-byte on its historical path.
  bool enabled = false;
  // EWMA smoothing of the per-window observed/base busy ratio.
  double ewma_alpha = 0.4;
  // Smoothed ratio beyond which a window counts as "bad" (1.25 = 25% slower than the
  // healthy profile; a 0.6x throttle shows a ratio of ~1.67).
  double straggler_ratio = 1.25;
  // Hysteresis: K consecutive bad windows before a server is flagged. One outlier
  // window (a transient batch spike) never flags.
  int hysteresis_windows = 3;
  // Flag events before the server is quarantined out of the placer's candidate set
  // (1 = first confirmed flag quarantines).
  int quarantine_strikes = 1;
  // Re-probe cadence for quarantined servers and the number of consecutive healthy
  // probes required to readmit.
  TimeNs reprobe_interval = FromSeconds(30);
  int readmit_probes = 2;
  // false = detect-only ("ignore" baseline): flags and detection latency are still
  // tracked, but nothing is quarantined and the serving layer is never asked to
  // migrate — the fleet keeps limping on degraded hardware.
  bool mitigate = true;
  // Evacuation pacing: at most this many instances are reformed off quarantined
  // servers per control tick. Tearing a whole quarantined wave down at once razes
  // more live capacity than the slowdown itself costs — a throttled server still
  // serves at reduced speed, but an evacuating instance serves nothing until its
  // replacement finishes loading.
  int max_evacuations_per_tick = 1;
  // Capacity guard: cap the quarantine set at this fraction of GPU-bearing servers.
  // Quarantining removes capacity that the healthy remainder must absorb; past the
  // cap, a wide gray-failure wave would cost more in evacuations than the slowdown
  // itself, so additional stragglers stay flagged-but-serving (limping at reduced
  // speed) until a readmission frees a slot.
  double max_quarantine_fraction = 0.15;
};

class FLEXPIPE_THREAD_HOSTILE HealthMonitor {
 public:
  HealthMonitor(const Cluster* cluster, const HealthConfig& config);

  // One sampling contribution: `observed`/`base` busy-time deltas a stage on `server`
  // accumulated since the last control tick. Multiple stages per server add up.
  void Observe(ServerId server, TimeNs observed, TimeNs base);

  // Closes the sampling window at virtual time `now`: folds the window ratios into
  // the EWMAs, advances hysteresis, raises flags, quarantines repeat offenders (when
  // config.mitigate), and runs due re-probes. Returns the servers *newly flagged*
  // this window — the serving layer's cue to migrate their stages away.
  std::vector<ServerId> EndWindow(TimeNs now);

  bool IsQuarantined(ServerId id) const {
    return quarantine_mask_[static_cast<size_t>(id)] != 0;
  }
  // Servers under quarantine: evacuated and hard-excluded until readmission. The
  // audit layer enforces this set (placing here after quarantine began is a bug).
  const std::vector<uint8_t>& quarantine_mask() const { return quarantine_mask_; }
  // Byte mask handed to TopologyAwarePlacer::set_excluded_servers; updated in
  // place. Superset of quarantine_mask(): every *currently flagged* straggler is
  // in it too, so replacements for evacuated instances never land on a server the
  // monitor already knows is sick — even when the capacity guard kept it out of
  // quarantine. Flagged-only entries clear as soon as the server's streak breaks.
  const std::vector<uint8_t>& exclusion_mask() const { return exclusion_mask_; }

  // -- Introspection / metrics ----------------------------------------------------------
  int flags_raised() const { return flags_raised_; }
  int quarantine_count() const { return quarantine_count_; }
  int readmissions() const { return readmissions_; }
  int quarantined_now() const { return quarantined_now_; }
  // Absolute quarantine-set ceiling derived from max_quarantine_fraction (≥ 1).
  int quarantine_cap() const { return quarantine_cap_; }
  // Virtual time of the first flag ever raised (-1 = never): detection latency is
  // first_flag_time() minus the first degrade injection time.
  TimeNs first_flag_time() const { return first_flag_time_; }
  TimeNs quarantined_since(ServerId id) const {
    return state_[static_cast<size_t>(id)].quarantined_since;
  }
  double SmoothedRatio(ServerId id) const {
    const ServerState& st = state_[static_cast<size_t>(id)];
    return st.ewma_valid ? st.ewma : 1.0;
  }

  const HealthConfig& config() const { return config_; }

 private:
  struct ServerState {
    TimeNs window_observed = 0;
    TimeNs window_base = 0;
    double ewma = 1.0;
    bool ewma_valid = false;
    int bad_streak = 0;
    int strikes = 0;
    bool flagged = false;
    TimeNs quarantined_since = -1;
    TimeNs last_probe = -1;
    int healthy_probes = 0;
  };

  void Quarantine(ServerId id, TimeNs now);
  void Readmit(ServerId id);

  const Cluster* cluster_;
  HealthConfig config_;
  std::vector<ServerState> state_;
  std::vector<uint8_t> quarantine_mask_;
  std::vector<uint8_t> exclusion_mask_;  // flagged ∪ quarantined
  int flags_raised_ = 0;
  int quarantine_count_ = 0;
  int readmissions_ = 0;
  int quarantined_now_ = 0;
  int quarantine_cap_ = 1;
  TimeNs first_flag_time_ = -1;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_HEALTH_H_
