// Experiment environment and workload runner.
//
// Benches, tests and examples all need the same scaffolding: a simulated cluster with
// fragmentation applied, a network/transfer fabric, a calibrated cost model, granularity
// ladders for the models under test, and a loop that feeds a workload into one or more
// serving systems and runs the virtual clock. Each serving system mutates cluster state,
// so comparative experiments construct a fresh ExperimentEnv per system.
#ifndef FLEXPIPE_SRC_CORE_EXPERIMENT_H_
#define FLEXPIPE_SRC_CORE_EXPERIMENT_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/allocator.h"
#include "src/cluster/fragmentation.h"
#include "src/cluster/network.h"
#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/core/serving.h"
#include "src/model/cost_model.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/transfer.h"
#include "src/sim/simulation.h"
#include "src/trace/streaming.h"
#include "src/trace/workload.h"

namespace flexpipe {

struct ExperimentEnvConfig {
  // Engine staging-tier tuning (defaults unchanged); streaming benches shrink the near
  // window since they schedule at most one far-future arrival at a time.
  Simulation::Config sim;
  ClusterConfig cluster = EvalClusterConfig();
  FragmentationProfile fragmentation = ProfileClusterC1();
  bool apply_fragmentation = true;
  // Periodic background churn: every `churn_interval`, re-sample this GPU fraction.
  TimeNs churn_interval = 30 * kSecond;
  double churn_fraction = 0.05;
  NetworkConfig network;
  AllocatorConfig allocator;
  CostModelConfig cost;
  PartitionerConfig partitioner;
  std::vector<ModelSpec> models = {Opt66B()};
  uint64_t seed = 42;
};

class FLEXPIPE_THREAD_HOSTILE ExperimentEnv {
 public:
  explicit ExperimentEnv(const ExperimentEnvConfig& config);
  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

  Simulation& sim() { return sim_; }
  Cluster& cluster() { return cluster_; }
  NetworkModel& network() { return network_; }
  TransferEngine& transfer() { return transfer_; }
  ClusterAllocator& allocator() { return allocator_; }
  FragmentationGenerator& fragmentation() { return fragmentation_; }
  const CostModel& cost_model() const { return cost_model_; }
  const GranularityLadder& ladder(const std::string& model_name) const;
  const GranularityLadder& ladder(int model_index) const;
  const ExperimentEnvConfig& config() const { return config_; }

  SystemContext Context();

  // Starts the periodic background-churn task (idempotent).
  void StartChurn();

 private:
  ExperimentEnvConfig config_;
  Simulation sim_;
  Cluster cluster_;
  NetworkModel network_;
  TransferEngine transfer_;
  ClusterAllocator allocator_;
  FragmentationGenerator fragmentation_;
  CostModel cost_model_;
  std::vector<std::string> model_order_;
  std::map<std::string, GranularityLadder> ladders_;
  std::unique_ptr<PeriodicTask> churn_task_;
};

struct RunOptions {
  TimeNs horizon = 0;            // 0 = last arrival + drain_grace
  TimeNs drain_grace = 30 * kSecond;
  // Deploy-then-measure: systems start at t=0 but arrivals shift by `warmup`, so
  // initial parameter loading happens before traffic (the paper measures warm fleets).
  TimeNs warmup = 0;
  bool enable_churn = true;
  // Virtual-time spacing of the periodic invariant audits in FLEXPIPE_AUDIT builds
  // (ignored otherwise); <= 0 disables. Audits are read-only, so enabling them never
  // changes results — a corrupt structure aborts the run instead.
  TimeNs audit_interval = 250 * kMillisecond;
};

struct RunReport {
  int64_t submitted = 0;
  TimeNs ran_until = 0;
  TimeNs warmup = 0;
  // Events consumed by the periodic auditor itself (0 outside FLEXPIPE_AUDIT builds).
  // Subtract from Simulation::executed_events() to compare event counts across builds.
  int64_t audit_events = 0;
  TimeNs measured_span() const { return ran_until - warmup; }
};

// Owns nothing: `storage` receives one Request per spec (stable addresses) and must
// outlive the run. With several systems, `systems_by_model[i]` serves requests whose
// spec.model_index == i; with exactly one system, every request goes to it — that
// system's model-aware router handles multi-model workloads on the shared cluster.
RunReport RunWorkload(ExperimentEnv& env, std::vector<ServingSystemBase*> systems_by_model,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options = RunOptions{});

// Single-system convenience overload.
RunReport RunWorkload(ExperimentEnv& env, ServingSystemBase& system,
                      const std::vector<RequestSpec>& specs, std::vector<Request>& storage,
                      const RunOptions& options = RunOptions{});

struct StreamingRunReport {
  int64_t submitted = 0;
  TimeNs ran_until = 0;
  TimeNs warmup = 0;
  // See RunReport::audit_events.
  int64_t audit_events = 0;
  // High-water mark of concurrently live Request objects (queued + in flight): the
  // streaming runner recycles completed requests through a pool, so this — not the
  // trace length — bounds request memory.
  size_t peak_live_requests = 0;
  TimeNs measured_span() const { return ran_until - warmup; }
};

// Recycling pool for streamed requests. Slab-backed (deque: stable addresses), with a
// free list refilled by the systems' release hooks — the slab's size is the high-water
// mark of concurrently live requests, not the trace length.
class FLEXPIPE_THREAD_HOSTILE RequestPool {
 public:
  Request* Acquire(const RequestSpec& spec, TimeNs warmup);
  void Release(Request* request);

  // Currently live (queued + in flight) requests; the zero-loss accounting in the
  // failure benches checks submitted == completed + live after the drain.
  size_t live() const { return live_; }
  size_t peak_live() const { return peak_live_; }

 private:
  std::deque<Request> slab_;
  std::vector<Request*> free_;
  size_t live_ = 0;
  size_t peak_live_ = 0;
};

class PeriodicSimulationAuditor;

// Caller-owned streaming harness: the request pool, release hooks and arrival driver
// that RunStreamingWorkload used to own internally. Owning them here lets chained-phase
// scenarios (pre-storm warmup -> storm -> drain) run several streams back to back while
// sharing ONE pool — a request displaced by a fault in phase 2 was acquired in phase 1,
// so per-phase pools would break the recycling (and the zero-loss accounting).
//
// The first RunPhase installs the release hooks, starts the systems (and churn /
// debug-build auditor per its options); later phases reuse all of it. Each phase's
// stream must emit arrivals at absolute times >= the current simulated time. Finish()
// tears the hooks down; the pool must outlive every request still in flight, so keep
// the harness alive until the systems are done.
class FLEXPIPE_THREAD_HOSTILE WorkloadHarness {
 public:
  WorkloadHarness(ExperimentEnv& env, std::vector<ServingSystemBase*> systems_by_model);
  ~WorkloadHarness();
  WorkloadHarness(const WorkloadHarness&) = delete;
  WorkloadHarness& operator=(const WorkloadHarness&) = delete;

  // Drains `stream` until options.horizon (0 = stream end + warmup + drain_grace).
  // The report's `submitted` counts this phase only; peak_live/audit_events are
  // cumulative across phases.
  StreamingRunReport RunPhase(RequestStream& stream, const RunOptions& options = RunOptions{});

  // Finish()es the systems and detaches the release hooks. Idempotent; no RunPhase
  // calls afterwards.
  void Finish();

  int64_t total_submitted() const { return total_submitted_; }
  const RequestPool& pool() const { return pool_; }

 private:
  ExperimentEnv& env_;
  std::vector<ServingSystemBase*> systems_;
  RequestPool pool_;
  std::unique_ptr<PeriodicSimulationAuditor> auditor_;
  int64_t total_submitted_ = 0;
  // Highest request id issued so far: later phases rebase their stream's dense 1-based
  // ids past it, so ids stay unique across the harness (id collisions would corrupt
  // id-keyed state like KV residency).
  RequestId max_id_seen_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

// Streaming analogue of RunWorkload: requests are drawn from `stream` one at a time by
// a self-rescheduling arrival event (exactly one pending arrival exists at any moment,
// instead of one pre-scheduled event per trace entry), and completed requests are
// recycled. Memory — request storage and engine arena alike — stays proportional to
// in-flight work, so multi-hour multi-million-request scenarios fit in a flat
// footprint. Routing mirrors RunWorkload: one system serves everything, several
// systems split by spec.model_index. Thin wrapper over a single-phase WorkloadHarness.
StreamingRunReport RunStreamingWorkload(ExperimentEnv& env,
                                        std::vector<ServingSystemBase*> systems_by_model,
                                        RequestStream& stream,
                                        const RunOptions& options = RunOptions{});

// Single-system convenience overload.
StreamingRunReport RunStreamingWorkload(ExperimentEnv& env, ServingSystemBase& system,
                                        RequestStream& stream,
                                        const RunOptions& options = RunOptions{});

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_EXPERIMENT_H_
