#include "src/core/cv_monitor.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

CvMonitor::CvMonitor(const Config& config)
    : config_(config), gaps_(config.window_arrivals) {
  FLEXPIPE_CHECK(config.window_arrivals >= 2);
  FLEXPIPE_CHECK(config.rate_window > 0);
}

void CvMonitor::RecordArrival(TimeNs now) {
  if (last_arrival_ >= 0) {
    gaps_.Add(ToSeconds(now - last_arrival_));
  }
  last_arrival_ = now;
  recent_.push_back(now);
  TimeNs horizon = now - 2 * config_.rate_window;
  while (!recent_.empty() && recent_.front() < horizon) {
    recent_.pop_front();
  }
}

size_t CvMonitor::CountIn(TimeNs begin, TimeNs end) const {
  auto lo = std::lower_bound(recent_.begin(), recent_.end(), begin);
  auto hi = std::lower_bound(recent_.begin(), recent_.end(), end);
  return static_cast<size_t>(hi - lo);
}

double CvMonitor::RatePerSec(TimeNs now) const {
  double w = ToSeconds(config_.rate_window);
  return static_cast<double>(CountIn(now - config_.rate_window, now + 1)) / w;
}

double CvMonitor::RateGradient(TimeNs now) const {
  double w = ToSeconds(config_.rate_window);
  double newer = static_cast<double>(CountIn(now - config_.rate_window, now + 1)) / w;
  double older =
      static_cast<double>(CountIn(now - 2 * config_.rate_window, now - config_.rate_window)) / w;
  return (newer - older) / w;
}

}  // namespace flexpipe
