#include "src/core/cv_monitor.h"

#include "src/common/macros.h"

namespace flexpipe {

namespace {
constexpr size_t kInitialRingCapacity = 64;  // power of two; doubles as traffic grows
}  // namespace

CvMonitor::CvMonitor(const Config& config)
    : config_(config), gaps_(config.window_arrivals) {
  FLEXPIPE_CHECK(config.window_arrivals >= 2);
  FLEXPIPE_CHECK(config.rate_window > 0);
}

void CvMonitor::RecordArrival(TimeNs now) {
  if (last_arrival_ >= 0) {
    FLEXPIPE_DCHECK(now >= last_arrival_);
    gaps_.Add(ToSeconds(now - last_arrival_));
  }
  last_arrival_ = now;

  if (count_ == ring_.size()) {
    // Grow and linearize: the ring only ever holds ~2 windows of arrivals, so growth
    // stops once the steady-state arrival rate is seen.
    std::vector<TimeNs> bigger(ring_.empty() ? kInitialRingCapacity : ring_.size() * 2);
    for (size_t i = 0; i < count_; ++i) {
      bigger[i] = At(i);
    }
    ring_.swap(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) & (ring_.size() - 1)] = now;
  ++count_;

  // Two-pointer prune: drop arrivals older than two rate windows, shifting the cached
  // cursors with the window so they keep naming the same timestamps.
  TimeNs horizon = now - 2 * config_.rate_window;
  size_t pruned = 0;
  while (pruned < count_ && At(pruned) < horizon) {
    ++pruned;
  }
  if (pruned > 0) {
    head_ = (head_ + pruned) & (ring_.size() - 1);
    count_ -= pruned;
    old_cursor_ -= old_cursor_ < pruned ? old_cursor_ : pruned;
    mid_cursor_ -= mid_cursor_ < pruned ? mid_cursor_ : pruned;
    new_cursor_ -= new_cursor_ < pruned ? new_cursor_ : pruned;
  }
}

size_t CvMonitor::LowerBound(TimeNs bound, size_t& cursor) const {
  size_t c = cursor < count_ ? cursor : count_;
  while (c < count_ && At(c) < bound) {
    ++c;
  }
  while (c > 0 && At(c - 1) >= bound) {
    --c;
  }
  cursor = c;
  return c;
}

double CvMonitor::RatePerSec(TimeNs now) const {
  double w = ToSeconds(config_.rate_window);
  size_t hi = LowerBound(now + 1, new_cursor_);
  size_t lo = LowerBound(now - config_.rate_window, mid_cursor_);
  return static_cast<double>(hi - lo) / w;
}

double CvMonitor::RateGradient(TimeNs now) const {
  double w = ToSeconds(config_.rate_window);
  size_t hi = LowerBound(now + 1, new_cursor_);
  size_t mid = LowerBound(now - config_.rate_window, mid_cursor_);
  size_t lo = LowerBound(now - 2 * config_.rate_window, old_cursor_);
  double newer = static_cast<double>(hi - mid) / w;
  double older = static_cast<double>(mid - lo) / w;
  return (newer - older) / w;
}

}  // namespace flexpipe
