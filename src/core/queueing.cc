#include "src/core/queueing.h"

#include <cmath>
#include <limits>

#include "src/common/macros.h"

namespace flexpipe {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double Factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) {
    f *= i;
  }
  return f;
}
}  // namespace

double GgsQueueLatency(const GgsParams& params) {
  FLEXPIPE_CHECK(params.servers >= 1);
  FLEXPIPE_CHECK(params.mu > 0.0 && params.lambda > 0.0);
  double rho = params.lambda / (params.mu * params.servers);
  if (rho >= 1.0) {
    return kInf;
  }
  double variability =
      (params.cv_arrival * params.cv_arrival + params.cv_service * params.cv_service) / 2.0;
  double erlang = std::pow(rho * params.servers, params.servers) /
                  (Factorial(params.servers) * (1.0 - rho));
  // Normalize against the probability mass to keep the expression a waiting *time*:
  // multiply by the mean service time (Allen-Cunneen style approximation).
  return erlang * variability / (params.mu * params.servers);
}

double StageCongestionDelay(const std::vector<double>& stage_lambda,
                            const std::vector<double>& stage_mu) {
  FLEXPIPE_CHECK(stage_lambda.size() == stage_mu.size());
  double total = 0.0;
  for (size_t i = 0; i < stage_lambda.size(); ++i) {
    double mu = stage_mu[i];
    double lambda = stage_lambda[i];
    FLEXPIPE_CHECK(mu > 0.0);
    if (lambda >= mu) {
      return kInf;
    }
    total += lambda / (mu * (mu - lambda));
  }
  return total;
}

double GgsTotalLatency(const GgsParams& params) {
  double queue = GgsQueueLatency(params);
  if (queue == kInf) {
    return kInf;
  }
  std::vector<double> lambdas(static_cast<size_t>(params.servers), params.lambda);
  std::vector<double> mus(static_cast<size_t>(params.servers),
                          params.mu * params.servers);  // per-stage rate
  double congestion = StageCongestionDelay(lambdas, mus);
  return queue + congestion;
}

int OptimalStageCount(double lambda, double cv_arrival, double cv_service, int s_min, int s_max,
                      double (*service_rate_of_s)(int)) {
  FLEXPIPE_CHECK(s_min >= 1 && s_max >= s_min);
  int best_s = s_min;
  double best = kInf;
  for (int s = s_min; s <= s_max; ++s) {
    GgsParams p;
    p.lambda = lambda;
    p.mu = service_rate_of_s(s);
    p.servers = s;
    p.cv_arrival = cv_arrival;
    p.cv_service = cv_service;
    double t = GgsTotalLatency(p);
    if (t < best) {
      best = t;
      best_s = s;
    }
  }
  return best_s;
}

}  // namespace flexpipe
