// ServingSystem base: everything FlexPipe and the baseline systems share.
//
// A serving system owns a router, a metrics collector, and a fleet of pipeline
// instances on the simulated cluster. The base class centralizes instance lifecycle
// (GPU reservation -> provisioning delay -> parameter loading -> activation ->
// release), GPU-time accounting for the resource-efficiency figures, and the
// same-model anti-colocation registry. Subclasses add policy: when to create which
// instances at which granularity, and whether/how to adapt at runtime.
#ifndef FLEXPIPE_SRC_CORE_SERVING_H_
#define FLEXPIPE_SRC_CORE_SERVING_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/allocator.h"
#include "src/cluster/fragmentation.h"
#include "src/cluster/network.h"
#include "src/common/macros.h"
#include "src/common/thread_annotations.h"
#include "src/core/allocation.h"
#include "src/metrics/collector.h"
#include "src/model/cost_model.h"
#include "src/runtime/instance.h"
#include "src/runtime/router.h"
#include "src/runtime/transfer.h"
#include "src/sim/simulation.h"

namespace flexpipe {

struct SystemContext {
  Simulation* sim = nullptr;
  Cluster* cluster = nullptr;
  NetworkModel* network = nullptr;
  TransferEngine* transfer = nullptr;
  ClusterAllocator* allocator = nullptr;
  const CostModel* cost_model = nullptr;
  FragmentationGenerator* fragmentation = nullptr;  // optional serverless churn
  uint64_t seed = 1;
};

// Shared by the multi-model constructors: validates before front(), since the
// base-class init list must not touch an empty deployments vector.
template <typename Deployment>
TimeNs FirstDeploymentSlo(const std::vector<Deployment>& deployments) {
  FLEXPIPE_CHECK_MSG(!deployments.empty(), "at least one model deployment required");
  return deployments.front().config.default_slo;
}

class FLEXPIPE_THREAD_HOSTILE ServingSystemBase {
 public:
  ServingSystemBase(const SystemContext& ctx, std::string name, TimeNs default_slo);
  virtual ~ServingSystemBase() = default;
  ServingSystemBase(const ServingSystemBase&) = delete;
  ServingSystemBase& operator=(const ServingSystemBase&) = delete;

  // Deploys the initial fleet. Called once before arrivals start.
  virtual void Start() = 0;

  // A request arrived at the gateway. Fails fast on a model this system does not
  // serve — otherwise the request would sit forever in a queue no instance matches.
  virtual void OnArrival(Request* request);

  // End-of-run hook (cancel controllers etc.).
  virtual void Finish() {}

  // Fault notification: the listed GPUs just became unusable (dead or partitioned).
  // The base implementation is the naive teardown recovery every baseline gets: each
  // instance standing on a lost GPU is failed, its decoding requests restart from
  // token zero, and everything displaced is requeued at the front of the router —
  // exactly once, so submitted == completed + outstanding still balances. FlexPipe
  // overrides this with migration-based re-formation.
  virtual void OnGpusLost(const std::vector<GpuId>& lost);

  // Appends one line per violated cross-module invariant (router bookkeeping,
  // placement registry vs instance records); appends nothing when consistent.
  // Subclasses extend with their own invariants (FlexPipe adds the HRG and
  // host-cache accounting). The debug-build auditor calls this periodically;
  // tests call it directly in every build.
  virtual void CollectAuditViolations(std::vector<std::string>* out) const;

  const std::string& name() const { return name_; }
  Router& router() { return router_; }
  MetricsCollector& metrics() { return metrics_; }
  const MetricsCollector& metrics() const { return metrics_; }

  // Invoked after metrics collection and the subclass completion hook, once nothing in
  // the system references the request anymore. The streaming runner recycles the
  // Request's storage from here; the pointer must not be dereferenced afterwards.
  void set_request_release_hook(std::function<void(Request*)> hook) {
    release_hook_ = std::move(hook);
  }

  // -- Fleet/resource statistics (Fig. 12, §9.6) ---------------------------------------
  int reserved_gpu_count() const { return reserved_gpus_; }
  int peak_reserved_gpus() const { return peak_reserved_gpus_; }
  // ∫ reserved-GPU dt in GPU-seconds up to `now`.
  double GpuSecondsReserved(TimeNs now) const;
  // Total stage-busy time across live and retired instances.
  TimeNs TotalBusyAll() const;
  TimeNs TotalStallAll() const;
  // busy / reserved — the paper's "GPU utilization" axis.
  double MeanGpuUtilization(TimeNs now) const;
  int64_t cold_loads() const { return cold_loads_; }
  int64_t warm_loads() const { return warm_loads_; }
  double MeanAllocationWaitSec() const { return alloc_wait_s_.mean(); }
  int live_instances() const;

  // -- Failure accounting (fig15) ------------------------------------------------------
  struct FailureStats {
    int instances_lost = 0;
    int64_t requests_requeued = 0;   // displaced back to the router, exactly once each
    int64_t requests_restarted = 0;  // mid-decode progress dropped (teardown recovery)
    int64_t requests_resumed = 0;    // mid-decode progress kept via KV recompute (reform)
    // Instances whose every stage GPU was unusable at failure-handling time: a
    // correlated fault took the whole pipeline at once, leaving nothing to re-form
    // from. The fig16 spread-placement ablation compares exactly this count.
    int whole_pipeline_losses = 0;
    int64_t requests_shed = 0;       // refused at admission by brownout (fig16)
  };
  const FailureStats& failure_stats() const { return failure_stats_; }

 protected:
  // Debug-build invariant audits compare the registry against the records.
  friend class SimulationAuditor;

  struct InstanceRecord {
    std::unique_ptr<PipelineInstance> instance;
    std::vector<GpuId> gpus;
    std::vector<Bytes> reserved_bytes;
    double sm_share = 0.6;
    int model_id = 0;
    bool released = false;
    // Virtual launch time; the health-consistency audit checks no instance was
    // placed onto a server after that server's quarantine began.
    TimeNs launched_at = 0;
  };

  // Subclass hook invoked after metrics collection for each completed request.
  virtual void OnRequestComplete(Request* /*request*/) {}

  // Subclass hook invoked at the end of ReleaseInstance, after router and cluster
  // bookkeeping. Lets subclasses drop per-instance state they track outside the
  // records — e.g. parameter-load streams that must retire the moment a loading
  // instance dies, not at its originally estimated finish time.
  virtual void OnInstanceReleased(int /*instance_id*/) {}

  // Reserves the given GPUs, pays `provisioning_delay`, then loads and activates. The
  // instance registers with the router when loading begins.
  PipelineInstance* LaunchInstance(const PipelinePlan& plan, int model_id,
                                   std::vector<GpuId> gpus, std::vector<bool> warm_stages,
                                   double load_slowdown, TimeNs provisioning_delay);

  // Allocates GPUs through the substrate allocator (baseline path) and launches.
  // Returns nullptr when the cluster cannot satisfy the request.
  PipelineInstance* LaunchViaAllocator(const PipelinePlan& plan, int model_id,
                                       PlacementPolicy policy, bool distinct_servers,
                                       double load_slowdown = 1.0);

  // Releases GPUs; the instance must be drained/halted already.
  void ReleaseInstance(PipelineInstance* instance);

  InstanceRecord* FindRecord(int instance_id);

  // Live (active or still-loading/provisioning) instances serving `model_id`.
  int ActiveOrLoadingForModel(int model_id) const;

  // Unreleased instances with at least one stage on a lost GPU, in record order.
  std::vector<PipelineInstance*> UnreleasedInstancesOn(const std::vector<GpuId>& lost);

  // Fails one instance abruptly: FailNow, apply the per-request decode policy
  // (`restart_decoding` true drops generated tokens; false keeps them and charges a
  // recompute prefill), release the instance, and append the displaced requests to
  // `*displaced` (caller requeues them in one batch).
  void FailInstance(PipelineInstance* instance, bool restart_decoding,
                    std::vector<Request*>* displaced);

  // Requeues displaced requests at the front of the router and bumps the counters.
  void RequeueDisplaced(std::vector<Request*> displaced);

  // Brownout admission control (degraded-mode serving): refuses `request` without it
  // ever entering the router — the arrival is counted as shed and the request storage
  // is handed straight back through the release hook. The caller must not touch the
  // pointer afterwards.
  void ShedRequest(Request* request);

  FailureStats failure_stats_;

  // Subclass constructors declare every model they deploy; OnArrival enforces it, and
  // the metrics collector pre-sizes its per-model table from the declarations.
  void RegisterServedModel(int model_id) {
    served_models_.insert(model_id);
    metrics_.ReserveModels(model_id + 1);
  }

  SystemContext ctx_;
  std::string name_;
  Router router_;
  MetricsCollector metrics_;
  ModelPlacementRegistry placement_registry_;
  InstanceConfig instance_config_;
  std::vector<InstanceRecord> records_;
  int next_instance_id_ = 1;

  // Applied multiplicatively to loading durations (baselines with faster checkpoint
  // loaders — e.g. ServerlessLLM — set < 1).
  double load_speed_factor_ = 1.0;
  // Fraction of stage parameter bytes actually reserved on GPUs (< 1 models tensor
  // sharing across replicas, e.g. the Tetris baseline).
  double param_reservation_factor_ = 1.0;

 private:
  void NoteGpuDelta(int delta);

  std::function<void(Request*)> release_hook_;
  int reserved_gpus_ = 0;
  int peak_reserved_gpus_ = 0;
  double gpu_seconds_integral_ = 0.0;
  TimeNs last_gpu_change_ = 0;
  TimeNs retired_busy_ = 0;
  TimeNs retired_stall_ = 0;
  int64_t cold_loads_ = 0;
  int64_t warm_loads_ = 0;
  RunningStats alloc_wait_s_;
  std::set<int> served_models_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_CORE_SERVING_H_
