#include "src/core/serving.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/macros.h"
#include "src/sim/auditor.h"

namespace flexpipe {

ServingSystemBase::ServingSystemBase(const SystemContext& ctx, std::string name,
                                     TimeNs default_slo)
    : ctx_(ctx),
      name_(std::move(name)),
      router_(ctx.sim),
      metrics_(default_slo),
      placement_registry_(ctx.cluster != nullptr ? ctx.cluster->gpu_count() : 0) {
  FLEXPIPE_CHECK(ctx.sim != nullptr && ctx.cluster != nullptr && ctx.network != nullptr &&
                 ctx.transfer != nullptr && ctx.allocator != nullptr &&
                 ctx.cost_model != nullptr);
  instance_config_.gpu_memory = ctx.cluster->gpu(0).memory_capacity();
  last_gpu_change_ = ctx.sim->now();
}

void ServingSystemBase::OnArrival(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  FLEXPIPE_CHECK_MSG(served_models_.count(request->model_id()) > 0,
                     "request targets a model this system does not serve");
  router_.Submit(request);
}

void ServingSystemBase::CollectAuditViolations(std::vector<std::string>* out) const {
  AuditReport router = SimulationAuditor::AuditRouter(router_);
  out->insert(out->end(), router.begin(), router.end());
  AuditReport registry = SimulationAuditor::AuditPlacementRegistry(*this);
  out->insert(out->end(), registry.begin(), registry.end());
  AuditReport domains = SimulationAuditor::AuditFailureDomains(*ctx_.cluster, *this);
  out->insert(out->end(), domains.begin(), domains.end());
}

void ServingSystemBase::NoteGpuDelta(int delta) {
  TimeNs now = ctx_.sim->now();
  gpu_seconds_integral_ += static_cast<double>(reserved_gpus_) * ToSeconds(now - last_gpu_change_);
  last_gpu_change_ = now;
  reserved_gpus_ += delta;
  FLEXPIPE_CHECK(reserved_gpus_ >= 0);
  peak_reserved_gpus_ = std::max(peak_reserved_gpus_, reserved_gpus_);
}

double ServingSystemBase::GpuSecondsReserved(TimeNs now) const {
  return gpu_seconds_integral_ +
         static_cast<double>(reserved_gpus_) * ToSeconds(now - last_gpu_change_);
}

TimeNs ServingSystemBase::TotalBusyAll() const {
  TimeNs total = retired_busy_;
  for (const InstanceRecord& r : records_) {
    if (!r.released) {
      total += r.instance->TotalBusy();
    }
  }
  return total;
}

TimeNs ServingSystemBase::TotalStallAll() const {
  TimeNs total = retired_stall_;
  for (const InstanceRecord& r : records_) {
    if (!r.released) {
      total += r.instance->TotalStall();
    }
  }
  return total;
}

double ServingSystemBase::MeanGpuUtilization(TimeNs now) const {
  double reserved = GpuSecondsReserved(now);
  if (reserved <= 0.0) {
    return 0.0;
  }
  return ToSeconds(TotalBusyAll()) / reserved;
}

int ServingSystemBase::live_instances() const {
  int n = 0;
  for (const InstanceRecord& r : records_) {
    if (!r.released) {
      ++n;
    }
  }
  return n;
}

int ServingSystemBase::ActiveOrLoadingForModel(int model_id) const {
  // Counts provisioning instances too (they only join the router once loading starts),
  // so controllers do not double-launch while pods bind.
  int n = 0;
  for (const InstanceRecord& r : records_) {
    if (r.released || r.model_id != model_id) {
      continue;
    }
    InstanceState s = r.instance->state();
    if (s == InstanceState::kActive || s == InstanceState::kLoading) {
      ++n;
    }
  }
  return n;
}

PipelineInstance* ServingSystemBase::LaunchInstance(const PipelinePlan& plan, int model_id,
                                                    std::vector<GpuId> gpus,
                                                    std::vector<bool> warm_stages,
                                                    double load_slowdown,
                                                    TimeNs provisioning_delay) {
  FLEXPIPE_CHECK(static_cast<int>(gpus.size()) == plan.num_stages());
  InstanceRecord record;
  record.model_id = model_id;
  record.gpus = gpus;
  record.launched_at = ctx_.sim->now();
  record.reserved_bytes.reserve(gpus.size());
  for (int s = 0; s < plan.num_stages(); ++s) {
    Bytes bytes = static_cast<Bytes>(
        static_cast<double>(plan.stages[static_cast<size_t>(s)].param_bytes) *
        param_reservation_factor_);
    ctx_.cluster->gpu(gpus[static_cast<size_t>(s)]).Reserve(bytes, record.sm_share);
    placement_registry_.Add(gpus[static_cast<size_t>(s)], model_id);
    record.reserved_bytes.push_back(bytes);
  }
  NoteGpuDelta(plan.num_stages());

  InstanceConfig tagged_config = instance_config_;
  tagged_config.model_id = model_id;
  auto instance = std::make_unique<PipelineInstance>(ctx_.sim, next_instance_id_++, plan,
                                                     std::move(gpus), ctx_.cost_model,
                                                     ctx_.network, tagged_config);
  PipelineInstance* raw = instance.get();
  raw->set_completion_callback([this](Request* request) {
    metrics_.OnComplete(*request);
    OnRequestComplete(request);
    if (release_hook_) {
      release_hook_(request);  // must run last: the hook may recycle the storage
    }
  });
  // Capacity freed on this instance can only unblock its own model's queue.
  raw->set_pump_callback([this, model_id] { router_.PumpModel(model_id); });
  // Queued requests flow in the moment the fleet gains capacity.
  raw->set_activation_callback([this, model_id] { router_.PumpModel(model_id); });

  bool any_warm = false;
  for (bool w : warm_stages) {
    any_warm = any_warm || w;
  }
  if (any_warm) {
    ++warm_loads_;
  } else {
    ++cold_loads_;
  }
  alloc_wait_s_.Add(ToSeconds(provisioning_delay));

  double effective_slowdown = load_slowdown * load_speed_factor_;
  ctx_.sim->Schedule(provisioning_delay, [this, raw, warm = std::move(warm_stages),
                                          effective_slowdown] {
    if (raw->state() != InstanceState::kLoading) {
      return;  // released before provisioning completed
    }
    raw->BeginLoading(warm, effective_slowdown);
    router_.RegisterInstance(raw);
  });

  record.instance = std::move(instance);
  records_.push_back(std::move(record));
  return raw;
}

PipelineInstance* ServingSystemBase::LaunchViaAllocator(const PipelinePlan& plan, int model_id,
                                                        PlacementPolicy policy,
                                                        bool distinct_servers,
                                                        double load_slowdown) {
  AllocationRequest request;
  request.gpu_count = plan.num_stages();
  request.bytes_per_gpu = plan.MaxStageParams();
  request.distinct_servers = distinct_servers;
  request.policy = policy;
  AllocationResult result = ctx_.allocator->Allocate(request);
  if (!result.success) {
    return nullptr;
  }
  // The allocator reserved a uniform worst-case block per GPU; rebalance to exact
  // per-stage sizes so cluster accounting matches the plan.
  for (size_t i = 0; i < result.gpus.size(); ++i) {
    ctx_.cluster->gpu(result.gpus[i]).Release(request.bytes_per_gpu, request.sm_per_gpu);
  }
  return LaunchInstance(plan, model_id, result.gpus, {}, load_slowdown,
                        result.provisioning_delay);
}

void ServingSystemBase::ReleaseInstance(PipelineInstance* instance) {
  InstanceRecord* record = FindRecord(instance->id());
  FLEXPIPE_CHECK(record != nullptr && !record->released);
  router_.DeregisterInstance(instance->id());
  retired_busy_ += instance->TotalBusy();
  retired_stall_ += instance->TotalStall();
  for (size_t i = 0; i < record->gpus.size(); ++i) {
    ctx_.cluster->gpu(record->gpus[i]).Release(record->reserved_bytes[i], record->sm_share);
    placement_registry_.Remove(record->gpus[i], record->model_id);
    if (ctx_.fragmentation != nullptr) {
      // Serverless reality: released GPUs are grabbed by competing workloads (§3.1).
      ctx_.fragmentation->MaybeReoccupy(record->gpus[i]);
    }
  }
  NoteGpuDelta(-static_cast<int>(record->gpus.size()));
  instance->MarkReleased();
  record->released = true;
  OnInstanceReleased(instance->id());
}

std::vector<PipelineInstance*> ServingSystemBase::UnreleasedInstancesOn(
    const std::vector<GpuId>& lost) {
  std::vector<PipelineInstance*> victims;
  for (InstanceRecord& record : records_) {
    if (record.released) {
      continue;
    }
    for (GpuId g : record.gpus) {
      if (std::find(lost.begin(), lost.end(), g) != lost.end()) {
        victims.push_back(record.instance.get());
        break;
      }
    }
  }
  return victims;
}

void ServingSystemBase::FailInstance(PipelineInstance* instance, bool restart_decoding,
                                     std::vector<Request*>* displaced) {
  ++failure_stats_.instances_lost;
  // The cluster is mutated before fault listeners run, so "every stage unusable right
  // now" identifies instances a single correlated fault took out whole — as opposed to
  // partial losses (re-formable) or healthy instances razed by teardown policy.
  bool whole_pipeline = true;
  for (GpuId g : instance->gpus()) {
    whole_pipeline = whole_pipeline && !ctx_.cluster->GpuUsable(g);
  }
  if (whole_pipeline) {
    ++failure_stats_.whole_pipeline_losses;
  }
  std::vector<Request*> extracted = instance->FailNow();
  for (Request* r : extracted) {
    if (r->phase == RequestPhase::kDecoding) {
      if (restart_decoding) {
        r->tokens_generated = 0;
        r->first_token_time = -1;
        r->recompute_tokens = 0;
        ++failure_stats_.requests_restarted;
      } else {
        // Token ids live on the host; only the KV died. The next prompt pass rebuilds
        // it (prompt + recompute tokens) and decode resumes where it left off.
        r->recompute_tokens = r->tokens_generated;
        ++failure_stats_.requests_resumed;
      }
      r->phase = RequestPhase::kQueued;
    }
    displaced->push_back(r);
  }
  ReleaseInstance(instance);
}

void ServingSystemBase::RequeueDisplaced(std::vector<Request*> displaced) {
  if (displaced.empty()) {
    return;
  }
  failure_stats_.requests_requeued += static_cast<int64_t>(displaced.size());
  router_.RequeueFront(displaced);
}

void ServingSystemBase::ShedRequest(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  ++failure_stats_.requests_shed;
  if (release_hook_) {
    release_hook_(request);  // hands the storage back; never touch the pointer again
  }
}

void ServingSystemBase::OnGpusLost(const std::vector<GpuId>& lost) {
  std::vector<PipelineInstance*> victims = UnreleasedInstancesOn(lost);
  std::vector<Request*> displaced;
  for (PipelineInstance* instance : victims) {
    FailInstance(instance, /*restart_decoding=*/true, &displaced);
  }
  RequeueDisplaced(std::move(displaced));
}

ServingSystemBase::InstanceRecord* ServingSystemBase::FindRecord(int instance_id) {
  for (InstanceRecord& r : records_) {
    if (r.instance->id() == instance_id) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace flexpipe
