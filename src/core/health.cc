#include "src/core/health.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

HealthMonitor::HealthMonitor(const Cluster* cluster, const HealthConfig& config)
    : cluster_(cluster), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr);
  FLEXPIPE_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  FLEXPIPE_CHECK(config_.straggler_ratio > 1.0);
  FLEXPIPE_CHECK(config_.hysteresis_windows >= 1);
  FLEXPIPE_CHECK(config_.quarantine_strikes >= 1);
  FLEXPIPE_CHECK(config_.readmit_probes >= 1);
  FLEXPIPE_CHECK(config_.max_evacuations_per_tick >= 1);
  FLEXPIPE_CHECK(config_.max_quarantine_fraction > 0.0 &&
                 config_.max_quarantine_fraction <= 1.0);
  state_.resize(static_cast<size_t>(cluster->server_count()));
  quarantine_mask_.assign(static_cast<size_t>(cluster->server_count()), 0);
  exclusion_mask_.assign(static_cast<size_t>(cluster->server_count()), 0);
  int gpu_servers = 0;
  for (ServerId s = 0; s < cluster->server_count(); ++s) {
    if (!cluster->server(s).gpus.empty()) {
      ++gpu_servers;
    }
  }
  quarantine_cap_ = std::max(
      1, static_cast<int>(config_.max_quarantine_fraction *
                          static_cast<double>(gpu_servers)));
}

void HealthMonitor::Observe(ServerId server, TimeNs observed, TimeNs base) {
  ServerState& st = state_[static_cast<size_t>(server)];
  st.window_observed += observed;
  st.window_base += base;
}

std::vector<ServerId> HealthMonitor::EndWindow(TimeNs now) {
  std::vector<ServerId> newly_flagged;
  // Ascending server-id walk: every flag/quarantine/readmit decision is made in a
  // deterministic order regardless of how samples arrived.
  for (ServerId s = 0; s < static_cast<ServerId>(state_.size()); ++s) {
    ServerState& st = state_[static_cast<size_t>(s)];

    if (st.quarantined_since >= 0) {
      // Quarantined: no serving traffic reaches this server, so the EWMA would
      // starve. Re-probe instead — a canary measurement reading the ground-truth
      // perf/link state — and readmit after enough consecutive clean probes.
      st.window_observed = 0;
      st.window_base = 0;
      if (st.last_probe < 0 || now - st.last_probe >= config_.reprobe_interval) {
        st.last_probe = now;
        if (cluster_->ServerDegraded(s)) {
          st.healthy_probes = 0;
        } else if (++st.healthy_probes >= config_.readmit_probes) {
          Readmit(s);
        }
      }
      continue;
    }

    if (st.window_base <= 0) {
      // No serving evidence this window (idle server): hysteresis holds its state
      // rather than decaying — absence of data is not evidence of health.
      st.window_observed = 0;
      continue;
    }
    double ratio =
        static_cast<double>(st.window_observed) / static_cast<double>(st.window_base);
    st.window_observed = 0;
    st.window_base = 0;
    if (st.ewma_valid) {
      st.ewma = config_.ewma_alpha * ratio + (1.0 - config_.ewma_alpha) * st.ewma;
    } else {
      st.ewma = ratio;
      st.ewma_valid = true;
    }

    if (st.ewma > config_.straggler_ratio) {
      ++st.bad_streak;
    } else {
      st.bad_streak = 0;
      st.flagged = false;  // recovered on its own; future trouble re-flags from scratch
      exclusion_mask_[static_cast<size_t>(s)] = 0;
    }
    if (st.bad_streak >= config_.hysteresis_windows && !st.flagged) {
      st.flagged = true;
      if (config_.mitigate) {
        // Even below the quarantine cap, a confirmed straggler takes no *new*
        // placements — evacuating one instance onto another known-sick server
        // would pay the migration outage and keep limping.
        exclusion_mask_[static_cast<size_t>(s)] = 1;
      }
      ++st.strikes;
      ++flags_raised_;
      if (first_flag_time_ < 0) {
        first_flag_time_ = now;
      }
      newly_flagged.push_back(s);
      // The capacity guard: quarantining removes serving capacity the healthy
      // remainder must absorb, so a wide wave stops quarantining at the cap and
      // the overflow keeps limping (flagged, but still in the placer's pool).
      if (config_.mitigate && st.strikes >= config_.quarantine_strikes &&
          quarantined_now_ < quarantine_cap_) {
        Quarantine(s, now);
      }
    }
  }
  return newly_flagged;
}

void HealthMonitor::Quarantine(ServerId id, TimeNs now) {
  ServerState& st = state_[static_cast<size_t>(id)];
  FLEXPIPE_CHECK(st.quarantined_since < 0);
  st.quarantined_since = now;
  st.last_probe = now;  // first re-probe one full interval from quarantine
  st.healthy_probes = 0;
  quarantine_mask_[static_cast<size_t>(id)] = 1;
  exclusion_mask_[static_cast<size_t>(id)] = 1;
  ++quarantine_count_;
  ++quarantined_now_;
}

void HealthMonitor::Readmit(ServerId id) {
  ServerState& st = state_[static_cast<size_t>(id)];
  st.quarantined_since = -1;
  st.last_probe = -1;
  st.healthy_probes = 0;
  st.flagged = false;
  st.bad_streak = 0;
  st.ewma = 1.0;
  st.ewma_valid = false;  // fresh start: old degraded history must not haunt it
  quarantine_mask_[static_cast<size_t>(id)] = 0;
  exclusion_mask_[static_cast<size_t>(id)] = 0;
  ++readmissions_;
  --quarantined_now_;
}

}  // namespace flexpipe
