#include "src/core/allocation.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

void ModelPlacementRegistry::Add(GpuId gpu, int model_id) { ++by_gpu_[gpu][model_id]; }

void ModelPlacementRegistry::Remove(GpuId gpu, int model_id) {
  auto it = by_gpu_.find(gpu);
  FLEXPIPE_CHECK(it != by_gpu_.end());
  auto mit = it->second.find(model_id);
  FLEXPIPE_CHECK(mit != it->second.end());
  if (--mit->second == 0) {
    it->second.erase(mit);
  }
  if (it->second.empty()) {
    by_gpu_.erase(it);
  }
}

bool ModelPlacementRegistry::HostsModel(GpuId gpu, int model_id) const {
  auto it = by_gpu_.find(gpu);
  if (it == by_gpu_.end()) {
    return false;
  }
  return it->second.count(model_id) > 0;
}

int ModelPlacementRegistry::ModelsOn(GpuId gpu) const {
  auto it = by_gpu_.find(gpu);
  return it == by_gpu_.end() ? 0 : static_cast<int>(it->second.size());
}

TopologyAwarePlacer::TopologyAwarePlacer(Cluster* cluster, const NetworkModel* network,
                                         const ModelPlacementRegistry* registry,
                                         const PlacementConfig& config)
    : cluster_(cluster), network_(network), registry_(registry), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr && network != nullptr && registry != nullptr);
}

double TopologyAwarePlacer::ScoreGpu(const Gpu& gpu, Bytes need, int /*model_id*/, double cv,
                                     GpuId prev_gpu, const ServerScoreFn& hrg_penalty,
                                     const ServerScoreFn& affinity_bonus) const {
  // Throughput proxy: remaining SM headroom. Memory-efficiency term of Eq. 6: divide by
  // the memory the stage would consume relative to what is free (tight fits score lower).
  double headroom = std::max(0.0, 1.0 - gpu.sm_utilization());
  double mem_slack =
      static_cast<double>(gpu.free_memory() - need) / static_cast<double>(gpu.memory_capacity());
  double score = headroom * 0.7 + mem_slack * 0.3;

  // Eq. 9: multiplexing penalty if another model of ours already runs here.
  if (registry_->ModelsOn(gpu.id()) > 0) {
    double gamma = config_.gamma0 * (1.0 + config_.alpha_cv * cv * cv);
    score -= gamma;
  }

  // Topology: keep consecutive stages close.
  if (prev_gpu != kInvalidGpu) {
    LinkTier tier = network_->TierBetween(prev_gpu, gpu.id());
    if (tier == LinkTier::kIntraServer) {
      score += config_.topo_bonus_server;
    } else if (tier == LinkTier::kIntraRack) {
      score += config_.topo_bonus_rack;
    }
  }

  ServerId server = gpu.server();
  if (hrg_penalty) {
    score -= config_.hrg_weight * hrg_penalty(server);
  }
  if (affinity_bonus) {
    score += config_.affinity_weight * affinity_bonus(server);
  }
  return score;
}

std::vector<GpuId> TopologyAwarePlacer::PlaceStages(const PipelinePlan& plan, int model_id,
                                                    double cv, const ServerScoreFn& hrg_penalty,
                                                    const ServerScoreFn& affinity_bonus) const {
  std::vector<GpuId> chosen;
  chosen.reserve(static_cast<size_t>(plan.num_stages()));
  std::unordered_set<GpuId> used_here;

  GpuId prev = kInvalidGpu;
  for (int s = 0; s < plan.num_stages(); ++s) {
    Bytes need = plan.stages[static_cast<size_t>(s)].param_bytes;
    GpuId best = kInvalidGpu;
    double best_score = -1e18;
    for (GpuId id : cluster_->AllGpuIds()) {
      const Gpu& gpu = cluster_->gpu(id);
      if (gpu.free_memory() < need) {
        continue;  // Eq. 7
      }
      if (used_here.count(id) > 0 || registry_->HostsModel(id, model_id)) {
        continue;  // same-model anti-colocation (hard rule, §6.2)
      }
      double score = ScoreGpu(gpu, need, model_id, cv, prev, hrg_penalty, affinity_bonus);
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    if (best == kInvalidGpu) {
      return {};
    }
    chosen.push_back(best);
    used_here.insert(best);
    prev = best;
  }
  return chosen;
}

}  // namespace flexpipe
