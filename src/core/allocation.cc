#include "src/core/allocation.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

ModelPlacementRegistry::ModelPlacementRegistry(int gpu_count_hint) {
  if (gpu_count_hint > 0) {
    by_gpu_.resize(static_cast<size_t>(gpu_count_hint));
  }
}

void ModelPlacementRegistry::Add(GpuId gpu, int model_id) {
  FLEXPIPE_CHECK(gpu >= 0);
  if (static_cast<size_t>(gpu) >= by_gpu_.size()) {
    by_gpu_.resize(static_cast<size_t>(gpu) + 1);
  }
  for (ModelCount& mc : by_gpu_[static_cast<size_t>(gpu)]) {
    if (mc.model_id == model_id) {
      ++mc.count;
      return;
    }
  }
  by_gpu_[static_cast<size_t>(gpu)].push_back(ModelCount{model_id, 1});
}

void ModelPlacementRegistry::Remove(GpuId gpu, int model_id) {
  FLEXPIPE_CHECK(gpu >= 0 && static_cast<size_t>(gpu) < by_gpu_.size());
  auto& models = by_gpu_[static_cast<size_t>(gpu)];
  for (size_t i = 0; i < models.size(); ++i) {
    if (models[i].model_id == model_id) {
      if (--models[i].count == 0) {
        models.erase(models.begin() + static_cast<long>(i));
      }
      return;
    }
  }
  FLEXPIPE_CHECK_MSG(false, "Remove of a (gpu, model) pair that was never Added");
}

bool ModelPlacementRegistry::HostsModel(GpuId gpu, int model_id) const {
  if (gpu < 0 || static_cast<size_t>(gpu) >= by_gpu_.size()) {
    return false;
  }
  for (const ModelCount& mc : by_gpu_[static_cast<size_t>(gpu)]) {
    if (mc.model_id == model_id) {
      return true;
    }
  }
  return false;
}

int ModelPlacementRegistry::ModelsOn(GpuId gpu) const {
  if (gpu < 0 || static_cast<size_t>(gpu) >= by_gpu_.size()) {
    return 0;
  }
  return static_cast<int>(by_gpu_[static_cast<size_t>(gpu)].size());
}

TopologyAwarePlacer::TopologyAwarePlacer(Cluster* cluster, const NetworkModel* network,
                                         const ModelPlacementRegistry* registry,
                                         const PlacementConfig& config)
    : cluster_(cluster), network_(network), registry_(registry), config_(config) {
  FLEXPIPE_CHECK(cluster != nullptr && network != nullptr && registry != nullptr);
}

double TopologyAwarePlacer::ScoreGpu(const Gpu& gpu, Bytes need, int /*model_id*/, double cv,
                                     GpuId prev_gpu, const ServerScoreFn& hrg_penalty,
                                     const ServerScoreFn& affinity_bonus,
                                     const SpreadState* spread) const {
  // Throughput proxy: remaining SM headroom. Memory-efficiency term of Eq. 6: divide by
  // the memory the stage would consume relative to what is free (tight fits score lower).
  double headroom = std::max(0.0, 1.0 - gpu.sm_utilization());
  double mem_slack =
      static_cast<double>(gpu.free_memory() - need) / static_cast<double>(gpu.memory_capacity());
  double score = headroom * 0.7 + mem_slack * 0.3;

  // Eq. 9: multiplexing penalty if another model of ours already runs here.
  if (registry_->ModelsOn(gpu.id()) > 0) {
    double gamma = config_.gamma0 * (1.0 + config_.alpha_cv * cv * cv);
    score -= gamma;
  }

  // Topology: keep consecutive stages close.
  if (prev_gpu != kInvalidGpu) {
    LinkTier tier = network_->TierBetween(prev_gpu, gpu.id());
    if (tier == LinkTier::kIntraServer) {
      score += config_.topo_bonus_server;
    } else if (tier == LinkTier::kIntraRack) {
      score += config_.topo_bonus_rack;
    }
  }

  ServerId server = gpu.server();
  if (hrg_penalty) {
    score -= config_.hrg_weight * hrg_penalty(server);
  }
  if (affinity_bonus) {
    score += config_.affinity_weight * affinity_bonus(server);
  }
  // Recovery-aware spread: subtract-only, so the indexed path's score upper bounds
  // stay valid without knowing about it.
  if (spread != nullptr) {
    score -= spread->Penalty(cluster_->RackOf(server), cluster_->PowerDomainOf(server));
  }
  return score;
}

std::vector<GpuId> TopologyAwarePlacer::PlaceStages(const PipelinePlan& plan, int model_id,
                                                    double cv, const ServerScoreFn& hrg_penalty,
                                                    const ServerScoreFn& affinity_bonus) const {
  std::vector<GpuId> chosen;
  chosen.reserve(static_cast<size_t>(plan.num_stages()));

  if (scratch_.size() < static_cast<size_t>(cluster_->server_count())) {
    scratch_.resize(static_cast<size_t>(cluster_->server_count()));
  }
  ++scratch_epoch_;
  const uint64_t epoch = scratch_epoch_;

  // Eq. 9 penalty depends only on (config, cv): hoist it out of the candidate loop.
  // The expression matches ScoreGpu's verbatim, so the value is bit-identical.
  const double gamma = config_.gamma0 * (1.0 + config_.alpha_cv * cv * cv);

  // Recovery-aware spread state (opt-in): weight 0 builds nothing and adds nothing,
  // keeping decisions bit-identical to the pre-spread placer.
  const bool use_spread = config_.domain_spread_weight > 0.0;
  SpreadState spread;
  if (use_spread) {
    spread.per_rack.assign(static_cast<size_t>(cluster_->rack_count()), 0);
    spread.per_domain.assign(static_cast<size_t>(cluster_->power_domain_count()), 0);
    spread.weight_per_stage =
        config_.domain_spread_weight / static_cast<double>(plan.num_stages());
  }

  GpuId prev = kInvalidGpu;
  for (int s = 0; s < plan.num_stages(); ++s) {
    const Bytes need = plan.stages[static_cast<size_t>(s)].param_bytes;
    const ServerId prev_server = prev == kInvalidGpu ? kInvalidServer : cluster_->ServerOf(prev);
    const RackId prev_rack = prev == kInvalidGpu ? -1 : cluster_->RackOf(prev_server);

    GpuId best = kInvalidGpu;
    double best_score = -1e18;

    cluster_->ForEachServerWithFreeAtLeast(need, [&](ServerId sid) {
      const Server& server = cluster_->server(sid);
      if (server.gpus.empty() || ServerExcluded(sid)) {
        return;  // quarantined stragglers are never candidates
      }
      // Topology bonus is a per-server constant for this stage (prev is excluded from
      // candidacy, so the kSameGpu tier cannot occur).
      double topo_bonus = 0.0;
      if (prev != kInvalidGpu) {
        if (sid == prev_server) {
          topo_bonus = config_.topo_bonus_server;
        } else if (cluster_->RackOf(sid) == prev_rack) {
          topo_bonus = config_.topo_bonus_rack;
        }
      }

      // Upper bound on any score this server can produce, built with the same operation
      // order as ScoreGpu (fp add/mul by non-negative constants are monotone, so each
      // step keeps bound >= score): headroom <= 1, mem_slack <= server-max slack, the
      // multiplexing penalty only subtracts (a negative gamma is credited instead).
      // Phase 1 is hook-free — the HRG penalty only subtracts and the affinity bonus
      // is at most config.affinity_weight (hooks return values in [0, 1]) — so servers
      // that cannot beat the incumbent skip the hook snapshot entirely. Both prunes
      // are strict <: a server whose bound ties the incumbent could still hold an
      // equal-scoring GPU with a lower id, which the tie-break must see.
      const Gpu& first_gpu = cluster_->gpu(server.gpus.front());
      double slack_max = static_cast<double>(cluster_->server_max_free(sid) - need) /
                         static_cast<double>(first_gpu.memory_capacity());
      double base_bound =
          cluster_->server_max_headroom(sid) * 0.7 + slack_max * 0.3;
      if (gamma < 0.0) {
        base_bound -= gamma;
      }
      if (prev != kInvalidGpu) {
        base_bound += topo_bonus;
      }
      const double max_affinity = std::max(config_.affinity_weight, 0.0);
      if ((affinity_bonus ? base_bound + max_affinity : base_bound) < best_score) {
        return;
      }

      // Snapshot the scaling-layer hook values once per server per placement call.
      ServerScratch& scratch = scratch_[static_cast<size_t>(sid)];
      if (scratch.epoch != epoch) {
        scratch.epoch = epoch;
        scratch.hrg_term = hrg_penalty ? config_.hrg_weight * hrg_penalty(sid) : 0.0;
        scratch.affinity_term =
            affinity_bonus ? config_.affinity_weight * affinity_bonus(sid) : 0.0;
      }

      // Phase 2: tighten with the snapshotted terms.
      double bound = base_bound;
      if (hrg_penalty) {
        bound -= scratch.hrg_term;
      }
      if (affinity_bonus) {
        bound += scratch.affinity_term;
      }
      if (bound < best_score) {
        return;
      }

      // Spread penalty is a per-server constant for this stage; being subtract-only it
      // never invalidates the bounds above (which simply omit it).
      double spread_term = 0.0;
      if (use_spread) {
        spread_term =
            spread.Penalty(cluster_->RackOf(sid), cluster_->PowerDomainOf(sid));
      }

      for (GpuId id : server.gpus) {
        const Gpu& gpu = cluster_->gpu(id);
        if (!cluster_->GpuUsable(id) || gpu.free_memory() < need) {
          continue;  // Eq. 7; failed/partitioned GPUs are never candidates
        }
        if (registry_->HostsModel(id, model_id) ||
            std::find(chosen.begin(), chosen.end(), id) != chosen.end()) {
          continue;  // same-model anti-colocation (hard rule, §6.2)
        }
        // Same expression sequence as ScoreGpu, with the per-server terms snapshotted.
        double headroom = std::max(0.0, 1.0 - gpu.sm_utilization());
        double mem_slack = static_cast<double>(gpu.free_memory() - need) /
                           static_cast<double>(gpu.memory_capacity());
        double score = headroom * 0.7 + mem_slack * 0.3;
        if (registry_->ModelsOn(id) > 0) {
          score -= gamma;
        }
        if (prev != kInvalidGpu) {
          score += topo_bonus;
        }
        if (hrg_penalty) {
          score -= scratch.hrg_term;
        }
        if (affinity_bonus) {
          score += scratch.affinity_term;
        }
        if (use_spread) {
          score -= spread_term;
        }
        // Argmax with lowest-id tie-break: order-invariant, so the unordered bucket
        // visit yields the exact GPU the id-ascending full scan used to pick.
        if (score > best_score || (score == best_score && id < best)) {
          best_score = score;
          best = id;
        }
      }
    });

    if (best == kInvalidGpu) {
      return {};
    }
    if (use_spread) {
      ServerId best_server = cluster_->ServerOf(best);
      ++spread.per_rack[static_cast<size_t>(cluster_->RackOf(best_server))];
      ++spread.per_domain[static_cast<size_t>(cluster_->PowerDomainOf(best_server))];
    }
    chosen.push_back(best);
    prev = best;
  }
  return chosen;
}

std::vector<GpuId> TopologyAwarePlacer::PlaceStagesReference(
    const PipelinePlan& plan, int model_id, double cv, const ServerScoreFn& hrg_penalty,
    const ServerScoreFn& affinity_bonus) const {
  std::vector<GpuId> chosen;
  chosen.reserve(static_cast<size_t>(plan.num_stages()));

  const bool use_spread = config_.domain_spread_weight > 0.0;
  SpreadState spread;
  if (use_spread) {
    spread.per_rack.assign(static_cast<size_t>(cluster_->rack_count()), 0);
    spread.per_domain.assign(static_cast<size_t>(cluster_->power_domain_count()), 0);
    spread.weight_per_stage =
        config_.domain_spread_weight / static_cast<double>(plan.num_stages());
  }

  GpuId prev = kInvalidGpu;
  for (int s = 0; s < plan.num_stages(); ++s) {
    Bytes need = plan.stages[static_cast<size_t>(s)].param_bytes;
    GpuId best = kInvalidGpu;
    double best_score = -1e18;
    for (GpuId id : cluster_->AllGpuIds()) {
      const Gpu& gpu = cluster_->gpu(id);
      if (!cluster_->GpuUsable(id) || gpu.free_memory() < need) {
        continue;  // Eq. 7; failed/partitioned GPUs are never candidates
      }
      if (ServerExcluded(gpu.server())) {
        continue;  // quarantined stragglers are never candidates
      }
      // `chosen` is exactly the set of GPUs used by earlier stages (<= 32 entries):
      // same membership test the old unordered_set answered, scanned flat.
      if (std::find(chosen.begin(), chosen.end(), id) != chosen.end() ||
          registry_->HostsModel(id, model_id)) {
        continue;  // same-model anti-colocation (hard rule, §6.2)
      }
      double score = ScoreGpu(gpu, need, model_id, cv, prev, hrg_penalty, affinity_bonus,
                              use_spread ? &spread : nullptr);
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    if (best == kInvalidGpu) {
      return {};
    }
    if (use_spread) {
      ServerId best_server = cluster_->ServerOf(best);
      ++spread.per_rack[static_cast<size_t>(cluster_->RackOf(best_server))];
      ++spread.per_domain[static_cast<size_t>(cluster_->PowerDomainOf(best_server))];
    }
    chosen.push_back(best);
    prev = best;
  }
  return chosen;
}

}  // namespace flexpipe
