#include "src/baselines/tetris.h"

namespace flexpipe {

TetrisSystem::TetrisSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                           const TetrisConfig& config)
    : ReactiveScalingSystem(ctx, ladder, "Tetris", config.reactive) {
  instance_config_.pipelined = false;  // no pipeline-parallel scheduling
  instance_config_.per_group_capacity = config.batch_limit;
  instance_config_.compute_dilation = config.sharing_dilation;
  param_reservation_factor_ = config.tensor_sharing_factor;
}

}  // namespace flexpipe
