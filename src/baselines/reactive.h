// Shared reactive autoscaling logic for the serverless baselines.
//
// A periodic watchdog launches replicas when the router queue backs up and reclaims
// them after an idle window. This is the standard queue-threshold autoscaler both
// ServerlessLLM and Tetris build on; they differ in loading speed, placement policy,
// execution model and memory footprint, which subclasses set via the protected knobs.
#ifndef FLEXPIPE_SRC_BASELINES_REACTIVE_H_
#define FLEXPIPE_SRC_BASELINES_REACTIVE_H_

#include <memory>

#include "src/core/serving.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct ReactiveConfig {
  int model_id = 0;
  int stages = 8;
  int min_replicas = 1;
  int max_replicas = 24;
  // Scale out when queued requests per active replica exceed this.
  int scale_up_queue_per_replica = 12;
  TimeNs idle_reclaim = 60 * kSecond;
  TimeNs check_interval = 500 * kMillisecond;
  PlacementPolicy placement = PlacementPolicy::kScatter;
  bool distinct_servers = true;
  TimeNs default_slo = 15 * kSecond;
};

class ReactiveScalingSystem : public ServingSystemBase {
 public:
  ReactiveScalingSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                        std::string name, const ReactiveConfig& config);
  ~ReactiveScalingSystem() override;

  void Start() override;
  void Finish() override;

  int64_t scale_ups() const { return scale_ups_; }
  int64_t scale_downs() const { return scale_downs_; }

 protected:
  void Tick();
  void LaunchReplica();
  void RetireOne();
  int ServingCount() const;

  const GranularityLadder* ladder_;
  ReactiveConfig config_;

 private:
  std::unique_ptr<PeriodicTask> watchdog_;
  TimeNs idle_since_ = -1;
  int64_t scale_ups_ = 0;
  int64_t scale_downs_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_REACTIVE_H_
