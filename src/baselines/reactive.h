// Shared reactive autoscaling logic for the serverless baselines.
//
// A periodic watchdog launches replicas when the router queue backs up and reclaims
// them after an idle window. This is the standard queue-threshold autoscaler both
// ServerlessLLM and Tetris build on; they differ in loading speed, placement policy,
// execution model and memory footprint, which subclasses set via the protected knobs.
//
// Multi-model: one ReactiveScalingSystem can autoscale several models' fleets on the
// shared cluster — each deployment gets its own queue-threshold state, and the
// model-aware router keeps requests on matching instances.
#ifndef FLEXPIPE_SRC_BASELINES_REACTIVE_H_
#define FLEXPIPE_SRC_BASELINES_REACTIVE_H_

#include <memory>
#include <vector>

#include "src/core/serving.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct ReactiveConfig {
  int model_id = 0;
  int stages = 8;
  int min_replicas = 1;
  int max_replicas = 24;
  // Scale out when queued requests per active replica exceed this.
  int scale_up_queue_per_replica = 12;
  TimeNs idle_reclaim = 60 * kSecond;
  TimeNs check_interval = 500 * kMillisecond;
  PlacementPolicy placement = PlacementPolicy::kScatter;
  bool distinct_servers = true;
  TimeNs default_slo = 15 * kSecond;
};

class ReactiveScalingSystem : public ServingSystemBase {
 public:
  struct ModelDeployment {
    const GranularityLadder* ladder = nullptr;
    ReactiveConfig config;
  };

  // Single-model convenience (the historical interface).
  ReactiveScalingSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                        std::string name, const ReactiveConfig& config);
  // Multi-model: one autoscaled fleet per deployment on the shared cluster.
  ReactiveScalingSystem(const SystemContext& ctx, std::string name,
                        std::vector<ModelDeployment> deployments);
  ~ReactiveScalingSystem() override;

  void Start() override;
  void Finish() override;

  int64_t scale_ups() const { return scale_ups_; }
  int64_t scale_downs() const { return scale_downs_; }

 protected:
  // Per-model autoscaler state.
  struct ModelFleet {
    const GranularityLadder* ladder = nullptr;
    ReactiveConfig config;
    TimeNs idle_since = -1;
  };

  void Tick();
  void TickModel(ModelFleet& fleet);
  void LaunchReplica(ModelFleet& fleet);
  void RetireOne(ModelFleet& fleet);
  int ServingCount(int model_id) const;

  std::vector<ModelFleet> fleets_;

 private:
  std::unique_ptr<PeriodicTask> watchdog_;
  int64_t scale_ups_ = 0;
  int64_t scale_downs_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_REACTIVE_H_
