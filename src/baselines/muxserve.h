// MuxServe-like baseline (§9: "statistical multiplexing for multi-tenant serving").
//
// Packs replicas tightly onto shared GPUs to maximize utilization: best-fit placement
// with no anti-affinity, a smaller fleet than peak-provisioned systems (sharing is the
// efficiency claim), and an interference dilation on stage compute that models SM
// contention from spatial/temporal multiplexing. No pipeline reconfiguration.
#ifndef FLEXPIPE_SRC_BASELINES_MUXSERVE_H_
#define FLEXPIPE_SRC_BASELINES_MUXSERVE_H_

#include "src/core/granularity.h"
#include "src/core/serving.h"

namespace flexpipe {

struct MuxServeConfig {
  int model_id = 0;
  int stages = 4;
  double target_peak_rps = 20.0;
  double fleet_fraction = 0.85;      // of the peak-derived fleet (sharing saves GPUs)
  double utilization_target = 0.55;
  double interference_dilation = 1.2;
  TimeNs default_slo = 15 * kSecond;
  WorkloadAssumptions workload;
};

class MuxServeSystem : public ServingSystemBase {
 public:
  MuxServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                 const MuxServeConfig& config);

  void Start() override;

  int planned_replicas() const { return planned_replicas_; }

 private:
  void TryLaunch(int remaining_attempts);

  const GranularityLadder* ladder_;
  MuxServeConfig config_;
  GranularityController analytics_;
  int planned_replicas_ = 0;
  int launched_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_MUXSERVE_H_
