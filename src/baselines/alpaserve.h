// AlpaServe-like baseline (§9: "configures pipelines based on historical request
// patterns").
//
// Statically optimized: it picks one pipeline granularity offline (from long-window
// trace statistics), provisions a fixed replica fleet sized for peak demand, and never
// adapts at runtime — the representative of sophisticated-but-static pipeline systems.
#ifndef FLEXPIPE_SRC_BASELINES_ALPASERVE_H_
#define FLEXPIPE_SRC_BASELINES_ALPASERVE_H_

#include "src/core/granularity.h"
#include "src/core/serving.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct AlpaServeConfig {
  int model_id = 0;
  int stages = 4;            // offline-chosen granularity
  int replicas = 0;          // 0 = derive from target_peak_rps
  double target_peak_rps = 20.0;
  double provision_headroom = 1.0;  // multiply the derived fleet
  double utilization_target = 0.55; // per-replica load target when deriving the fleet
  TimeNs default_slo = 15 * kSecond;
  WorkloadAssumptions workload;
};

class AlpaServeSystem : public ServingSystemBase {
 public:
  AlpaServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                  const AlpaServeConfig& config);

  void Start() override;

  int planned_replicas() const { return planned_replicas_; }

 private:
  void TryLaunch(int remaining_attempts);

  const GranularityLadder* ladder_;
  AlpaServeConfig config_;
  GranularityController analytics_;
  int planned_replicas_ = 0;
  int launched_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_ALPASERVE_H_
