// AlpaServe-like baseline (§9: "configures pipelines based on historical request
// patterns").
//
// Statically optimized: it picks one pipeline granularity offline (from long-window
// trace statistics), provisions a fixed replica fleet sized for peak demand, and never
// adapts at runtime — the representative of sophisticated-but-static pipeline systems.
// Multi-model deployments provision one such fixed fleet per model on the shared
// cluster, which is exactly AlpaServe's published setting (statistical multiplexing of
// several models' peaks).
#ifndef FLEXPIPE_SRC_BASELINES_ALPASERVE_H_
#define FLEXPIPE_SRC_BASELINES_ALPASERVE_H_

#include <memory>
#include <vector>

#include "src/core/granularity.h"
#include "src/core/serving.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct AlpaServeConfig {
  int model_id = 0;
  int stages = 4;            // offline-chosen granularity
  int replicas = 0;          // 0 = derive from target_peak_rps
  double target_peak_rps = 20.0;
  double provision_headroom = 1.0;  // multiply the derived fleet
  double utilization_target = 0.55; // per-replica load target when deriving the fleet
  TimeNs default_slo = 15 * kSecond;
  WorkloadAssumptions workload;
};

class AlpaServeSystem : public ServingSystemBase {
 public:
  struct ModelDeployment {
    const GranularityLadder* ladder = nullptr;
    AlpaServeConfig config;
  };

  // Single-model convenience (the historical interface).
  AlpaServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                  const AlpaServeConfig& config);
  // Multi-model: one peak-provisioned fleet per deployment on the shared cluster.
  AlpaServeSystem(const SystemContext& ctx, std::vector<ModelDeployment> deployments);

  void Start() override;

  // First (or only) model's fleet plan — kept for the single-model benches.
  int planned_replicas() const { return fleets_.front()->planned; }
  int planned_replicas_for(int model_id) const;

 private:
  struct ModelFleet {
    const GranularityLadder* ladder = nullptr;
    AlpaServeConfig config;
    std::unique_ptr<GranularityController> analytics;
    int planned = 0;
    int launched = 0;
  };

  void TryLaunch(ModelFleet& fleet, int remaining_attempts);

  // Stable addresses: retry callbacks capture raw ModelFleet pointers.
  std::vector<std::unique_ptr<ModelFleet>> fleets_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_ALPASERVE_H_
