#include "src/baselines/alpaserve.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

AlpaServeSystem::AlpaServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                                 const AlpaServeConfig& config)
    : ServingSystemBase(ctx, "AlpaServe", config.default_slo),
      ladder_(ladder),
      config_(config),
      analytics_(ladder, ctx.cost_model, ctx.network, config.workload, GranularityConfig{}) {
  FLEXPIPE_CHECK(ladder != nullptr);
}

void AlpaServeSystem::Start() {
  if (config_.replicas > 0) {
    planned_replicas_ = config_.replicas;
  } else {
    const GranularityOption& opt = analytics_.OptionFor(config_.stages);
    planned_replicas_ = std::max(
        1, static_cast<int>(std::ceil(
               config_.target_peak_rps * config_.provision_headroom /
               std::max(opt.throughput_rps * config_.utilization_target, 1e-6))));
  }
  TryLaunch(/*remaining_attempts=*/20);
}

void AlpaServeSystem::TryLaunch(int remaining_attempts) {
  while (launched_ < planned_replicas_) {
    PipelineInstance* inst =
        LaunchViaAllocator(ladder_->plan(config_.stages), config_.model_id,
                           PlacementPolicy::kBestFit, /*distinct_servers=*/true);
    if (inst == nullptr) {
      break;
    }
    ++launched_;
  }
  if (launched_ < planned_replicas_ && remaining_attempts > 0) {
    // Fragmentation blocked part of the fleet; retry as background churn frees memory.
    ctx_.sim->Schedule(2 * kSecond,
                       [this, remaining_attempts] { TryLaunch(remaining_attempts - 1); });
  } else if (launched_ < planned_replicas_) {
    FLEXPIPE_LOG_WARN("AlpaServe: deployed %d/%d replicas (fragmented cluster)", launched_,
                      planned_replicas_);
  }
}

}  // namespace flexpipe
