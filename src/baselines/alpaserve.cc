#include "src/baselines/alpaserve.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

namespace {

std::vector<AlpaServeSystem::ModelDeployment> SingleDeployment(const GranularityLadder* ladder,
                                                               const AlpaServeConfig& config) {
  AlpaServeSystem::ModelDeployment deployment;
  deployment.ladder = ladder;
  deployment.config = config;
  return {deployment};
}


}  // namespace

AlpaServeSystem::AlpaServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                                 const AlpaServeConfig& config)
    : AlpaServeSystem(ctx, SingleDeployment(ladder, config)) {}

AlpaServeSystem::AlpaServeSystem(const SystemContext& ctx,
                                 std::vector<ModelDeployment> deployments)
    : ServingSystemBase(ctx, "AlpaServe", FirstDeploymentSlo(deployments)) {
  for (const ModelDeployment& d : deployments) {
    FLEXPIPE_CHECK(d.ladder != nullptr);
    for (const auto& existing : fleets_) {
      FLEXPIPE_CHECK_MSG(existing->config.model_id != d.config.model_id,
                         "duplicate model_id across deployments");
    }
    auto fleet = std::make_unique<ModelFleet>();
    fleet->ladder = d.ladder;
    fleet->config = d.config;
    fleet->analytics = std::make_unique<GranularityController>(
        d.ladder, ctx.cost_model, ctx.network, d.config.workload, GranularityConfig{});
    fleets_.push_back(std::move(fleet));
    RegisterServedModel(d.config.model_id);
  }
}

int AlpaServeSystem::planned_replicas_for(int model_id) const {
  for (const auto& fleet : fleets_) {
    if (fleet->config.model_id == model_id) {
      return fleet->planned;
    }
  }
  return 0;
}

void AlpaServeSystem::Start() {
  for (auto& fleet : fleets_) {
    if (fleet->config.replicas > 0) {
      fleet->planned = fleet->config.replicas;
    } else {
      const GranularityOption& opt = fleet->analytics->OptionFor(fleet->config.stages);
      fleet->planned = std::max(
          1, static_cast<int>(std::ceil(
                 fleet->config.target_peak_rps * fleet->config.provision_headroom /
                 std::max(opt.throughput_rps * fleet->config.utilization_target, 1e-6))));
    }
    TryLaunch(*fleet, /*remaining_attempts=*/20);
  }
}

void AlpaServeSystem::TryLaunch(ModelFleet& fleet, int remaining_attempts) {
  while (fleet.launched < fleet.planned) {
    PipelineInstance* inst =
        LaunchViaAllocator(fleet.ladder->plan(fleet.config.stages), fleet.config.model_id,
                           PlacementPolicy::kBestFit, /*distinct_servers=*/true);
    if (inst == nullptr) {
      break;
    }
    ++fleet.launched;
  }
  if (fleet.launched < fleet.planned && remaining_attempts > 0) {
    // Fragmentation blocked part of the fleet; retry as background churn frees memory.
    ModelFleet* fleet_ptr = &fleet;
    ctx_.sim->Schedule(2 * kSecond, [this, fleet_ptr, remaining_attempts] {
      TryLaunch(*fleet_ptr, remaining_attempts - 1);
    });
  } else if (fleet.launched < fleet.planned) {
    FLEXPIPE_LOG_WARN("AlpaServe: deployed %d/%d replicas (fragmented cluster, model %d)",
                      fleet.launched, fleet.planned, fleet.config.model_id);
  }
}

}  // namespace flexpipe
