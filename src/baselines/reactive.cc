#include "src/baselines/reactive.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

ReactiveScalingSystem::ReactiveScalingSystem(const SystemContext& ctx,
                                             const GranularityLadder* ladder, std::string name,
                                             const ReactiveConfig& config)
    : ServingSystemBase(ctx, std::move(name), config.default_slo),
      ladder_(ladder),
      config_(config) {
  FLEXPIPE_CHECK(ladder != nullptr);
  FLEXPIPE_CHECK(config.min_replicas >= 1);
}

ReactiveScalingSystem::~ReactiveScalingSystem() = default;

void ReactiveScalingSystem::Start() {
  for (int i = 0; i < config_.min_replicas; ++i) {
    LaunchReplica();
  }
  watchdog_ = std::make_unique<PeriodicTask>(ctx_.sim, config_.check_interval,
                                             [this] { Tick(); });
}

void ReactiveScalingSystem::Finish() { watchdog_.reset(); }

int ReactiveScalingSystem::ServingCount() const {
  int n = 0;
  for (const PipelineInstance* inst : router_.instances()) {
    if (inst->state() == InstanceState::kActive || inst->state() == InstanceState::kLoading) {
      ++n;
    }
  }
  return n;
}

void ReactiveScalingSystem::LaunchReplica() {
  PipelineInstance* inst = LaunchViaAllocator(ladder_->plan(config_.stages), config_.model_id,
                                              config_.placement, config_.distinct_servers);
  if (inst == nullptr) {
    FLEXPIPE_LOG_INFO("%s: replica launch failed (fragmentation)", name().c_str());
    return;
  }
  ++scale_ups_;
}

void ReactiveScalingSystem::RetireOne() {
  PipelineInstance* victim = nullptr;
  double least = 2.0;
  for (PipelineInstance* inst : router_.instances()) {
    if (inst->state() != InstanceState::kActive) {
      continue;
    }
    double load = inst->LoadFraction();
    if (load < least) {
      least = load;
      victim = inst;
    }
  }
  if (victim == nullptr) {
    return;
  }
  router_.DeregisterInstance(victim->id());
  victim->StartDraining([this, victim] { ReleaseInstance(victim); });
  ++scale_downs_;
}

void ReactiveScalingSystem::Tick() {
  int serving = ServingCount();
  int queue = router_.queue_length();
  TimeNs now = ctx_.sim->now();

  if (serving < config_.min_replicas) {
    LaunchReplica();
    return;
  }
  if (queue > config_.scale_up_queue_per_replica * std::max(1, serving) &&
      serving < config_.max_replicas) {
    LaunchReplica();
    idle_since_ = -1;
    return;
  }
  // Reclaim path: queue empty and fleet lightly loaded.
  bool idle = queue == 0;
  for (const PipelineInstance* inst : router_.instances()) {
    idle = idle && inst->LoadFraction() < 0.15;
  }
  if (idle && serving > config_.min_replicas) {
    if (idle_since_ < 0) {
      idle_since_ = now;
    } else if (now - idle_since_ >= config_.idle_reclaim) {
      RetireOne();
      idle_since_ = -1;
    }
  } else {
    idle_since_ = -1;
  }
}

}  // namespace flexpipe
