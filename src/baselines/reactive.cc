#include "src/baselines/reactive.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

namespace {

std::vector<ReactiveScalingSystem::ModelDeployment> SingleDeployment(
    const GranularityLadder* ladder, const ReactiveConfig& config) {
  ReactiveScalingSystem::ModelDeployment deployment;
  deployment.ladder = ladder;
  deployment.config = config;
  return {deployment};
}


}  // namespace

ReactiveScalingSystem::ReactiveScalingSystem(const SystemContext& ctx,
                                             const GranularityLadder* ladder, std::string name,
                                             const ReactiveConfig& config)
    : ReactiveScalingSystem(ctx, std::move(name), SingleDeployment(ladder, config)) {}

ReactiveScalingSystem::ReactiveScalingSystem(const SystemContext& ctx, std::string name,
                                             std::vector<ModelDeployment> deployments)
    : ServingSystemBase(ctx, std::move(name), FirstDeploymentSlo(deployments)) {
  for (const ModelDeployment& d : deployments) {
    FLEXPIPE_CHECK(d.ladder != nullptr);
    FLEXPIPE_CHECK(d.config.min_replicas >= 1);
    for (const ModelFleet& existing : fleets_) {
      FLEXPIPE_CHECK_MSG(existing.config.model_id != d.config.model_id,
                         "duplicate model_id across deployments");
    }
    fleets_.push_back(ModelFleet{d.ladder, d.config, /*idle_since=*/-1});
    RegisterServedModel(d.config.model_id);
  }
}

ReactiveScalingSystem::~ReactiveScalingSystem() = default;

void ReactiveScalingSystem::Start() {
  for (ModelFleet& fleet : fleets_) {
    for (int i = 0; i < fleet.config.min_replicas; ++i) {
      LaunchReplica(fleet);
    }
  }
  TimeNs interval = fleets_.front().config.check_interval;
  for (const ModelFleet& fleet : fleets_) {
    interval = std::min(interval, fleet.config.check_interval);
  }
  watchdog_ = std::make_unique<PeriodicTask>(ctx_.sim, interval, [this] { Tick(); });
}

void ReactiveScalingSystem::Finish() { watchdog_.reset(); }

int ReactiveScalingSystem::ServingCount(int model_id) const {
  int n = 0;
  for (const PipelineInstance* inst : router_.instances()) {
    if (inst->model_id() == model_id &&
        (inst->state() == InstanceState::kActive || inst->state() == InstanceState::kLoading)) {
      ++n;
    }
  }
  return n;
}

void ReactiveScalingSystem::LaunchReplica(ModelFleet& fleet) {
  PipelineInstance* inst =
      LaunchViaAllocator(fleet.ladder->plan(fleet.config.stages), fleet.config.model_id,
                         fleet.config.placement, fleet.config.distinct_servers);
  if (inst == nullptr) {
    FLEXPIPE_LOG_INFO("%s: replica launch failed (fragmentation, model %d)", name().c_str(),
                      fleet.config.model_id);
    return;
  }
  ++scale_ups_;
}

void ReactiveScalingSystem::RetireOne(ModelFleet& fleet) {
  PipelineInstance* victim = nullptr;
  double least = 0.0;
  for (PipelineInstance* inst : router_.instances()) {
    if (inst->model_id() != fleet.config.model_id ||
        inst->state() != InstanceState::kActive) {
      continue;
    }
    double load = inst->LoadFraction();
    if (victim == nullptr || load < least) {
      least = load;
      victim = inst;
    }
  }
  if (victim == nullptr) {
    return;
  }
  router_.DeregisterInstance(victim->id());
  victim->StartDraining([this, victim] { ReleaseInstance(victim); });
  ++scale_downs_;
}

void ReactiveScalingSystem::Tick() {
  for (ModelFleet& fleet : fleets_) {
    TickModel(fleet);
  }
}

void ReactiveScalingSystem::TickModel(ModelFleet& fleet) {
  int model_id = fleet.config.model_id;
  int serving = ServingCount(model_id);
  int queue = router_.queue_length_for(model_id);
  TimeNs now = ctx_.sim->now();

  if (serving < fleet.config.min_replicas) {
    LaunchReplica(fleet);
    return;
  }
  if (queue > fleet.config.scale_up_queue_per_replica * std::max(1, serving) &&
      serving < fleet.config.max_replicas) {
    LaunchReplica(fleet);
    fleet.idle_since = -1;
    return;
  }
  // Reclaim path: queue empty and this model's fleet lightly loaded.
  bool idle = queue == 0;
  for (const PipelineInstance* inst : router_.instances()) {
    if (inst->model_id() == model_id) {
      idle = idle && inst->LoadFraction() < 0.15;
    }
  }
  if (idle && serving > fleet.config.min_replicas) {
    if (fleet.idle_since < 0) {
      fleet.idle_since = now;
    } else if (now - fleet.idle_since >= fleet.config.idle_reclaim) {
      RetireOne(fleet);
      fleet.idle_since = -1;
    }
  } else {
    fleet.idle_since = -1;
  }
}

}  // namespace flexpipe
