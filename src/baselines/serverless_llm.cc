#include "src/baselines/serverless_llm.h"

#include <utility>

namespace flexpipe {

ServerlessLlmSystem::ServerlessLlmSystem(const SystemContext& ctx,
                                         const GranularityLadder* ladder,
                                         const ServerlessLlmConfig& config)
    : ReactiveScalingSystem(ctx, ladder, "ServerlessLLM", config.reactive) {
  load_speed_factor_ = config.load_speed_factor;
}

ServerlessLlmSystem::ServerlessLlmSystem(const SystemContext& ctx,
                                         std::vector<ModelDeployment> deployments,
                                         double load_speed_factor)
    : ReactiveScalingSystem(ctx, "ServerlessLLM", std::move(deployments)) {
  load_speed_factor_ = load_speed_factor;
}

}  // namespace flexpipe
