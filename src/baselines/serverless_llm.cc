#include "src/baselines/serverless_llm.h"

namespace flexpipe {

ServerlessLlmSystem::ServerlessLlmSystem(const SystemContext& ctx,
                                         const GranularityLadder* ladder,
                                         const ServerlessLlmConfig& config)
    : ReactiveScalingSystem(ctx, ladder, "ServerlessLLM", config.reactive) {
  load_speed_factor_ = config.load_speed_factor;
}

}  // namespace flexpipe
