#include "src/baselines/muxserve.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

MuxServeSystem::MuxServeSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                               const MuxServeConfig& config)
    : ServingSystemBase(ctx, "MuxServe", config.default_slo),
      ladder_(ladder),
      config_(config),
      analytics_(ladder, ctx.cost_model, ctx.network, config.workload, GranularityConfig{}) {
  FLEXPIPE_CHECK(ladder != nullptr);
  instance_config_.compute_dilation = config.interference_dilation;
  RegisterServedModel(config.model_id);
}

void MuxServeSystem::Start() {
  const GranularityOption& opt = analytics_.OptionFor(config_.stages);
  planned_replicas_ = std::max(
      1, static_cast<int>(std::ceil(
             config_.target_peak_rps * config_.fleet_fraction /
             std::max(opt.throughput_rps * config_.utilization_target, 1e-6))));
  TryLaunch(/*remaining_attempts=*/20);
}

void MuxServeSystem::TryLaunch(int remaining_attempts) {
  while (launched_ < planned_replicas_) {
    // Best-fit packing, co-location allowed: multiplexing trades isolation for density.
    PipelineInstance* inst =
        LaunchViaAllocator(ladder_->plan(config_.stages), config_.model_id,
                           PlacementPolicy::kBestFit, /*distinct_servers=*/false);
    if (inst == nullptr) {
      break;
    }
    ++launched_;
  }
  if (launched_ < planned_replicas_ && remaining_attempts > 0) {
    ctx_.sim->Schedule(2 * kSecond,
                       [this, remaining_attempts] { TryLaunch(remaining_attempts - 1); });
  } else if (launched_ < planned_replicas_) {
    FLEXPIPE_LOG_WARN("MuxServe: deployed %d/%d replicas (fragmented cluster)", launched_,
                      planned_replicas_);
  }
}

}  // namespace flexpipe
