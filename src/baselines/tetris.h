// Tetris-like baseline (§9: "memory-efficient hosting without specialized pipeline
// parallelism", ATC'22-style).
//
// Tensor sharing dedupes parameters across replicas (reduced per-GPU reservation,
// best-fit packing), but execution is sequential: one wave occupies the whole stage
// chain, so there is no pipelining across microbatches. High memory efficiency, low
// compute efficiency — the paper's Fig. 12 shows it saturating GPUs for little goodput.
#ifndef FLEXPIPE_SRC_BASELINES_TETRIS_H_
#define FLEXPIPE_SRC_BASELINES_TETRIS_H_

#include "src/baselines/reactive.h"

namespace flexpipe {

struct TetrisConfig {
  ReactiveConfig reactive;
  double tensor_sharing_factor = 0.6;  // fraction of parameter bytes actually reserved
  int batch_limit = 12;                // no continuous-batching sophistication
  double sharing_dilation = 1.35;      // dedup indirection on the compute path
};

class TetrisSystem : public ReactiveScalingSystem {
 public:
  TetrisSystem(const SystemContext& ctx, const GranularityLadder* ladder,
               const TetrisConfig& config);
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_TETRIS_H_
