// ServerlessLLM-like baseline (§9: "low-latency serverless inference", OSDI'24-style).
//
// Its contribution is fast checkpoint loading (multi-tier storage), so cold starts cost
// a fraction of the naive loader. Parallelism is static (DeepSpeed-style fixed pipeline
// degree), scaling is reactive on queue depth, and placement follows the serverless
// scheduler's anti-affinity scatter. No inflight reconfiguration, no KV migration.
#ifndef FLEXPIPE_SRC_BASELINES_SERVERLESS_LLM_H_
#define FLEXPIPE_SRC_BASELINES_SERVERLESS_LLM_H_

#include <vector>

#include "src/baselines/reactive.h"

namespace flexpipe {

struct ServerlessLlmConfig {
  ReactiveConfig reactive;
  double load_speed_factor = 0.35;  // multi-tier loader vs naive storage fetch
};

class ServerlessLlmSystem : public ReactiveScalingSystem {
 public:
  ServerlessLlmSystem(const SystemContext& ctx, const GranularityLadder* ladder,
                      const ServerlessLlmConfig& config);
  // Multi-model: one reactive fleet per deployment; the multi-tier loader speeds every
  // model's checkpoint fetches equally.
  ServerlessLlmSystem(const SystemContext& ctx, std::vector<ModelDeployment> deployments,
                      double load_speed_factor = 0.35);
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_BASELINES_SERVERLESS_LLM_H_
