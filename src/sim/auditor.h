// Debug-build simulation auditor: cross-module invariant checks.
//
// The engine, the cluster's free-GPU index, the router and the scaling layer each
// maintain redundant state for speed (slot backlinks, bucketed maxima, incremental
// queue counts, per-level stream tallies). A bug that desynchronizes any of those
// from its ground truth corrupts results silently — runs stay deterministic, just
// deterministically wrong. The auditor recomputes every redundant structure from
// first principles and reports disagreements.
//
// Audits return violation strings instead of aborting so tests can assert that a
// deliberately seeded corruption is detected; the periodic wrapper CHECK-fails on
// the first violation. Everything here is debug tooling: the audit functions are
// always compiled (tests run them in every build), but the periodic hook inside
// the workload runners only engages when the build sets -DFLEXPIPE_AUDIT=ON.
#ifndef FLEXPIPE_SRC_SIM_AUDITOR_H_
#define FLEXPIPE_SRC_SIM_AUDITOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/sim/simulation.h"

namespace flexpipe {

class Cluster;
class HierarchicalResourceGraph;
class Router;
class ServingSystemBase;
struct Request;

// True when the build was configured with -DFLEXPIPE_AUDIT=ON (periodic audits
// active inside RunWorkload / RunStreamingWorkload).
#if defined(FLEXPIPE_AUDIT)
inline constexpr bool kAuditBuild = true;
#else
inline constexpr bool kAuditBuild = false;
#endif

// One human-readable line per violated invariant; empty means the audit passed.
using AuditReport = std::vector<std::string>;

class FLEXPIPE_THREAD_COMPATIBLE SimulationAuditor {
 public:
  // Event-arena slot accounting: every live slot is referenced by exactly one queue
  // entry (heap backlink, staged position or fresh position) and every queue entry
  // references a live slot; the free list covers exactly the slots tagged free and
  // holds no callback state; tombstone counts match; the heap satisfies the 4-ary
  // heap property and the staged backlog stays sorted.
  static AuditReport AuditArena(const Simulation& sim);

  // Free-GPU index: per-server free-memory/headroom maxima equal a from-scratch
  // recomputation over the server's GPUs, every server sits in exactly the bucket
  // its maximum maps to, and the intrusive bucket lists are well-linked.
  static AuditReport AuditFreeGpuIndex(const Cluster& cluster);

  // Router bookkeeping: the incremental queue total equals the sum of per-model
  // queue sizes, every queued request sits in its own model's queue, and the
  // per-model instance buckets are exactly the registered fleet partitioned by
  // model in registration order.
  static AuditReport AuditRouter(const Router& router);

  // Placement registry vs instance records: the (gpu, model) reference counts the
  // registry holds equal the counts implied by the system's unreleased instances.
  static AuditReport AuditPlacementRegistry(const ServingSystemBase& system);

  // Hierarchical resource graph: per-server load streams sum to each rack's tally
  // and to the cluster total, nothing is negative, and the per-level tables match
  // the cluster's shape.
  static AuditReport AuditHrg(const HierarchicalResourceGraph& hrg);

  // Failure-domain consistency after recovery settles: no unreleased instance stands
  // entirely on unusable GPUs (a correlated fault that takes a whole pipeline must
  // fail the instance synchronously — a surviving record is a zombie serving nothing),
  // and servers whose every GPU is dead hold zero free-index entries (max-free 0, so
  // placement can never land there). Fault handling runs to completion inside the
  // fault event, so this holds at every audit point between events.
  static AuditReport AuditFailureDomains(const Cluster& cluster,
                                         const ServingSystemBase& system);

  // Fail-slow perf-state consistency: every per-server compute/link factor lies in
  // (0, 1], and the cached degraded-server count — the one integer the hot paths
  // compare against zero to skip all degradation math — equals a from-scratch count
  // over the factor vectors. A stale count in either direction is silent corruption:
  // too low and live slowdowns stop being priced into stage times; too high and a
  // fully healed fleet keeps paying the degraded-path lookups forever.
  static AuditReport AuditPerfState(const Cluster& cluster);

  // Runs every audit: arena, free-GPU index, then each system's own invariants via
  // ServingSystemBase::CollectAuditViolations (router, registry, and whatever the
  // subclass adds — FlexPipe contributes the HRG and host-cache accounting).
  static AuditReport AuditAll(const Simulation& sim, const Cluster& cluster,
                              const std::vector<ServingSystemBase*>& systems);

  // -- Test-only corruption helpers ----------------------------------------------------
  // Seed a specific inconsistency through the same friend access the audits use, so
  // audit_test can assert each detector actually fires. Never call outside tests.

  // Acquires an arena slot, marks it live, but enqueues it nowhere: a leaked slot.
  static void TestOnlyLeakArenaSlot(Simulation* sim);
  // Inflates one server's cached free-memory maximum so it no longer matches its
  // GPUs (a stale bucket-index entry).
  static void TestOnlyCorruptBucketIndex(Cluster* cluster, int32_t server);
  // Marks a GPU failed without re-deriving its server's cached maxima: the bucket
  // index keeps counting the dead GPU, the exact inconsistency the fault path must
  // never produce (and the dead-GPU detector attributes by name).
  static void TestOnlyFailGpuWithoutReindex(Cluster* cluster, int32_t gpu);
  // Enqueues `request` under `wrong_model`'s queue with the incremental counters
  // kept consistent, so only the queue/model-mismatch detector fires.
  static void TestOnlyMisrouteQueuedRequest(Router* router, Request* request,
                                            int wrong_model);
  // Registers a phantom (gpu, model) pair no instance record backs.
  static void TestOnlyCorruptRegistry(ServingSystemBase* system, int32_t gpu, int model_id);
  // Degrades one server's perf factor without bumping the cached degraded-server
  // count: the hot paths would skip pricing the slowdown, the exact staleness the
  // perf-state audit attributes.
  static void TestOnlyCorruptPerfState(Cluster* cluster, int32_t server);
};

// Runs AuditAll every `interval` of virtual time and CHECK-fails on the first
// violation. The workload runners instantiate one in FLEXPIPE_AUDIT builds.
class FLEXPIPE_THREAD_HOSTILE PeriodicSimulationAuditor {
 public:
  PeriodicSimulationAuditor(Simulation* sim, const Cluster* cluster,
                            std::vector<ServingSystemBase*> systems, TimeNs interval);
  ~PeriodicSimulationAuditor();
  PeriodicSimulationAuditor(const PeriodicSimulationAuditor&) = delete;
  PeriodicSimulationAuditor& operator=(const PeriodicSimulationAuditor&) = delete;

  int64_t audits_run() const { return audits_; }

 private:
  void RunOnce();

  Simulation* sim_;
  const Cluster* cluster_;
  std::vector<ServingSystemBase*> systems_;
  int64_t audits_ = 0;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_SIM_AUDITOR_H_
