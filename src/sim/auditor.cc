#include "src/sim/auditor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "src/cluster/topology.h"
#include "src/common/macros.h"
#include "src/core/allocation.h"
#include "src/core/scaling.h"
#include "src/core/serving.h"
#include "src/runtime/instance.h"
#include "src/runtime/request.h"
#include "src/runtime/router.h"

namespace flexpipe {

namespace {

// printf-free formatting helper: Violation(out) << "..." << value; appends one line.
class Violation {
 public:
  explicit Violation(AuditReport* out) : out_(out) {}
  ~Violation() { out_->push_back(stream_.str()); }
  template <typename T>
  Violation& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  AuditReport* out_;
  std::ostringstream stream_;
};

}  // namespace

AuditReport SimulationAuditor::AuditArena(const Simulation& sim) {
  AuditReport out;
  const auto& slots = sim.slots_;
  const size_t slot_count = slots.size();
  // How many queue entries reference each slot; must end at exactly 1 for live slots.
  std::vector<uint32_t> refs(slot_count, 0);

  auto check_entry = [&](const Simulation::HeapEntry& entry, size_t pos, const char* tier,
                         Simulation::Where want) {
    uint32_t slot = entry.slot();
    if (slot >= slot_count) {
      Violation(&out) << tier << " entry " << pos << " references slot " << slot
                      << " beyond the slab (" << slot_count << " slots)";
      return;
    }
    ++refs[slot];
    const Simulation::Slot& s = slots[slot];
    if (s.where != want) {
      Violation(&out) << tier << " entry " << pos << " references slot " << slot
                      << " whose tier tag disagrees";
    } else if (s.pos != pos) {
      Violation(&out) << tier << " entry " << pos << " has backlink " << s.pos
                      << " on slot " << slot;
    }
  };

  for (size_t i = 0; i < sim.heap_.size(); ++i) {
    const Simulation::HeapEntry& e = sim.heap_[i];
    check_entry(e, i, "heap", Simulation::Where::kHeap);
    if (e.when < sim.now_) {
      Violation(&out) << "heap entry " << i << " is scheduled at " << e.when
                      << " which is before now=" << sim.now_;
    }
    if (i > 0) {
      const Simulation::HeapEntry& parent = sim.heap_[(i - 1) / 4];
      if (Simulation::EarlierThan(e, parent)) {
        Violation(&out) << "heap property violated at entry " << i;
      }
    }
  }

  size_t dead = 0;
  const Simulation::HeapEntry* prev_live = nullptr;
  for (size_t i = sim.staged_head_; i < sim.staged_.size(); ++i) {
    const Simulation::HeapEntry& e = sim.staged_[i];
    if (Simulation::IsTombstone(e)) {
      ++dead;
      continue;
    }
    check_entry(e, i, "staged", Simulation::Where::kStaged);
    if (e.when < sim.staging_threshold_) {
      Violation(&out) << "staged entry " << i << " at t=" << e.when
                      << " is earlier than the staging threshold " << sim.staging_threshold_;
    }
    if (prev_live != nullptr && Simulation::EarlierThan(e, *prev_live)) {
      Violation(&out) << "staged backlog is not sorted at entry " << i;
    }
    prev_live = &e;
  }
  if (dead != sim.staged_dead_) {
    Violation(&out) << "staging tombstone count " << sim.staged_dead_ << " but " << dead
                    << " tombstones present";
  }

  for (size_t i = 0; i < sim.fresh_.size(); ++i) {
    const Simulation::HeapEntry& e = sim.fresh_[i];
    check_entry(e, i, "fresh", Simulation::Where::kFresh);
    if (e.when < sim.staging_threshold_) {
      Violation(&out) << "fresh entry " << i << " at t=" << e.when
                      << " is earlier than the staging threshold " << sim.staging_threshold_;
    }
  }

  // Free-list walk: every node tagged free, no cycles, length matches the tag count.
  size_t free_list_len = 0;
  for (uint32_t s = sim.free_head_; s != Simulation::kNil;) {
    if (s >= slot_count) {
      Violation(&out) << "free list reaches slot " << s << " beyond the slab";
      break;
    }
    if (slots[s].where != Simulation::Where::kFree) {
      Violation(&out) << "free-list node " << s << " is not tagged free";
      break;
    }
    if (++free_list_len > slot_count) {
      Violation(&out) << "free list has a cycle";
      break;
    }
    s = slots[s].next_free;
  }

  size_t tagged_free = 0;
  for (size_t s = 0; s < slot_count; ++s) {
    const Simulation::Slot& slot = slots[s];
    if (slot.where == Simulation::Where::kFree) {
      ++tagged_free;
      if (slot.fn != nullptr) {
        Violation(&out) << "freed slot " << s << " still holds a callback (leaked capture state)";
      }
      if (refs[s] != 0) {
        Violation(&out) << "freed slot " << s << " is referenced by a queue entry "
                        << "(stale generation in a live queue)";
      }
    } else {
      if (refs[s] != 1) {
        Violation(&out) << "live slot " << s << " is referenced by " << refs[s]
                        << " queue entries (leaked or duplicated slot)";
      }
      if (slot.fn == nullptr) {
        Violation(&out) << "live slot " << s << " has no callback";
      }
    }
  }
  if (tagged_free != free_list_len && out.empty()) {
    // Only meaningful when the walk itself terminated cleanly.
    Violation(&out) << "free list covers " << free_list_len << " slots but " << tagged_free
                    << " are tagged free";
  }
  return out;
}

AuditReport SimulationAuditor::AuditFreeGpuIndex(const Cluster& cluster) {
  AuditReport out;
  const size_t servers = static_cast<size_t>(cluster.server_count());
  if (cluster.server_max_free_.size() != servers || cluster.server_bucket_.size() != servers ||
      cluster.bucket_next_.size() != servers || cluster.bucket_prev_.size() != servers ||
      cluster.server_max_headroom_.size() != servers) {
    Violation(&out) << "free-index tables are not sized to " << servers << " servers";
    return out;
  }

  for (ServerId sid = 0; sid < cluster.server_count(); ++sid) {
    const Server& s = cluster.server(sid);
    // Same recomputation RecomputeServer performs, from the GPUs themselves: failed or
    // partitioned GPUs contribute nothing. The all-GPU maximum is kept alongside so the
    // most likely fault-path bug — an index that still counts a dead GPU — is reported
    // as itself rather than as a generic stale maximum.
    Bytes mx = 0;
    Bytes mx_all = 0;
    double headroom = 0.0;
    for (GpuId g : s.gpus) {
      const Gpu& gpu = cluster.gpu(g);
      mx_all = std::max(mx_all, gpu.free_memory());
      if (!cluster.GpuUsable(g)) {
        continue;
      }
      mx = std::max(mx, gpu.free_memory());
      headroom = std::max(headroom, std::max(0.0, 1.0 - gpu.sm_utilization()));
    }
    if (cluster.server_max_free_[static_cast<size_t>(sid)] != mx) {
      if (mx_all != mx && cluster.server_max_free_[static_cast<size_t>(sid)] == mx_all) {
        Violation(&out) << "server " << sid
                        << " free-GPU index still counts a failed/partitioned GPU (cached "
                        << mx_all << " but the usable maximum is " << mx << ")";
      } else {
        Violation(&out) << "server " << sid << " cached max free "
                        << cluster.server_max_free_[static_cast<size_t>(sid)]
                        << " but its GPUs say " << mx;
      }
    }
    if (cluster.server_max_headroom_[static_cast<size_t>(sid)] != headroom) {
      Violation(&out) << "server " << sid << " cached max headroom disagrees with its GPUs";
    }
    if (cluster.server_bucket_[static_cast<size_t>(sid)] != cluster.BucketFor(mx)) {
      Violation(&out) << "server " << sid << " sits in bucket "
                      << cluster.server_bucket_[static_cast<size_t>(sid)]
                      << " but its recomputed maximum maps to bucket " << cluster.BucketFor(mx);
    }
  }

  // Intrusive-list structure: every server appears exactly once, links reciprocate.
  std::vector<int> seen(servers, 0);
  for (size_t b = 0; b < cluster.bucket_head_.size(); ++b) {
    size_t walked = 0;
    for (ServerId s = cluster.bucket_head_[b]; s != kInvalidServer;
         s = cluster.bucket_next_[static_cast<size_t>(s)]) {
      if (s < 0 || static_cast<size_t>(s) >= servers || ++walked > servers) {
        Violation(&out) << "bucket " << b << " list is malformed";
        break;
      }
      ++seen[static_cast<size_t>(s)];
      if (cluster.server_bucket_[static_cast<size_t>(s)] != static_cast<int>(b)) {
        Violation(&out) << "server " << s << " is linked into bucket " << b
                        << " but tagged with bucket " << cluster.server_bucket_[static_cast<size_t>(s)];
      }
      ServerId next = cluster.bucket_next_[static_cast<size_t>(s)];
      if (next != kInvalidServer && cluster.bucket_prev_[static_cast<size_t>(next)] != s) {
        Violation(&out) << "bucket links do not reciprocate between servers " << s << " and "
                        << next;
      }
    }
    ServerId head = cluster.bucket_head_[b];
    if (head != kInvalidServer && cluster.bucket_prev_[static_cast<size_t>(head)] != kInvalidServer) {
      Violation(&out) << "bucket " << b << " head " << head << " has a dangling prev link";
    }
  }
  for (size_t s = 0; s < servers; ++s) {
    if (seen[s] != 1) {
      Violation(&out) << "server " << s << " appears " << seen[s]
                      << " times across the bucket lists";
    }
  }
  return out;
}

AuditReport SimulationAuditor::AuditRouter(const Router& router) {
  AuditReport out;
  int total = 0;
  for (const auto& [model, queue] : router.queues_) {
    total += static_cast<int>(queue.requests.size());
    for (const Request* request : queue.requests) {
      if (request->model_id() != model) {
        Violation(&out) << "request " << request->spec.id << " for model "
                        << request->model_id() << " sits in model " << model << "'s queue";
      }
    }
  }
  if (total != router.total_queued_) {
    Violation(&out) << "incremental queue total " << router.total_queued_
                    << " but queues hold " << total << " requests";
  }
  if (router.max_queue_length_ < total) {
    Violation(&out) << "queue high-water mark " << router.max_queue_length_
                    << " is below the current total " << total;
  }

  // Lost-instance hygiene: a failed (released) instance must never stay registered —
  // the router would keep dispatching onto a corpse.
  for (const PipelineInstance* instance : router.instances_) {
    if (instance->state() == InstanceState::kReleased) {
      Violation(&out) << "released instance " << instance->id() << " (model "
                      << instance->model_id() << ") is still registered with the router";
    }
  }

  // The per-model buckets must be exactly the registered fleet partitioned by model,
  // registration order preserved (tie-breaking depends on it).
  std::map<int, std::vector<const PipelineInstance*>> expected;
  for (const PipelineInstance* instance : router.instances_) {
    expected[instance->model_id()].push_back(instance);
  }
  for (const auto& [model, bucket] : router.instances_by_model_) {
    auto it = expected.find(model);
    const std::vector<const PipelineInstance*> none;
    const auto& want = it == expected.end() ? none : it->second;
    if (want.size() != bucket.size() ||
        !std::equal(want.begin(), want.end(), bucket.begin())) {
      Violation(&out) << "model " << model << "'s instance bucket (" << bucket.size()
                      << " entries) disagrees with the registered fleet (" << want.size()
                      << " instances of that model)";
    }
    if (it != expected.end()) {
      expected.erase(it);
    }
  }
  for (const auto& [model, want] : expected) {
    Violation(&out) << "model " << model << " has " << want.size()
                    << " registered instances but no bucket";
  }
  return out;
}

AuditReport SimulationAuditor::AuditPlacementRegistry(const ServingSystemBase& system) {
  AuditReport out;
  const auto& by_gpu = system.placement_registry_.by_gpu_;
  // Reference counts implied by the unreleased instance records.
  std::vector<std::vector<std::pair<int, int>>> want(by_gpu.size());
  for (const ServingSystemBase::InstanceRecord& record : system.records_) {
    if (record.released) {
      continue;
    }
    for (GpuId gpu : record.gpus) {
      if (gpu < 0 || static_cast<size_t>(gpu) >= want.size()) {
        Violation(&out) << "instance " << record.instance->id() << " reserves GPU " << gpu
                        << " outside the registry's table";
        continue;
      }
      auto& counts = want[static_cast<size_t>(gpu)];
      auto it = std::find_if(counts.begin(), counts.end(),
                             [&](const auto& mc) { return mc.first == record.model_id; });
      if (it == counts.end()) {
        counts.emplace_back(record.model_id, 1);
      } else {
        ++it->second;
      }
    }
  }
  for (size_t gpu = 0; gpu < by_gpu.size(); ++gpu) {
    for (const auto& mc : by_gpu[gpu]) {
      auto it = std::find_if(want[gpu].begin(), want[gpu].end(),
                             [&](const auto& w) { return w.first == mc.model_id; });
      int have = it == want[gpu].end() ? 0 : it->second;
      if (have != mc.count) {
        Violation(&out) << "registry holds " << mc.count << " references of model "
                        << mc.model_id << " on GPU " << gpu << " but instance records imply "
                        << have;
      }
      if (it != want[gpu].end()) {
        want[gpu].erase(it);
      }
    }
    for (const auto& w : want[gpu]) {
      Violation(&out) << "instance records imply " << w.second << " references of model "
                      << w.first << " on GPU " << gpu << " but the registry has none";
    }
  }
  return out;
}

AuditReport SimulationAuditor::AuditHrg(const HierarchicalResourceGraph& hrg) {
  AuditReport out;
  const Cluster& cluster = *hrg.cluster_;
  const size_t servers = static_cast<size_t>(cluster.server_count());
  const size_t racks = static_cast<size_t>(cluster.rack_count());
  if (hrg.server_events_.size() != servers || hrg.server_streams_.size() != servers ||
      hrg.rack_events_.size() != racks || hrg.rack_streams_.size() != racks) {
    Violation(&out) << "HRG tables are not sized to the cluster shape";
    return out;
  }
  int total_streams = 0;
  for (size_t s = 0; s < servers; ++s) {
    if (hrg.server_streams_[s] < 0) {
      Violation(&out) << "server " << s << " has negative load streams";
    }
    total_streams += hrg.server_streams_[s];
    if (!(hrg.server_events_[s].value >= 0.0) || std::isnan(hrg.server_events_[s].value)) {
      Violation(&out) << "server " << s << " has a negative or NaN scaling-event counter";
    }
  }
  for (RackId r = 0; r < cluster.rack_count(); ++r) {
    int rack_sum = 0;
    for (ServerId s : cluster.rack(r).servers) {
      rack_sum += hrg.server_streams_[static_cast<size_t>(s)];
    }
    if (rack_sum != hrg.rack_streams_[static_cast<size_t>(r)]) {
      Violation(&out) << "rack " << r << " tallies " << hrg.rack_streams_[static_cast<size_t>(r)]
                      << " load streams but its servers sum to " << rack_sum;
    }
  }
  if (total_streams != hrg.cluster_streams_) {
    Violation(&out) << "cluster tallies " << hrg.cluster_streams_
                    << " load streams but servers sum to " << total_streams;
  }
  return out;
}

AuditReport SimulationAuditor::AuditFailureDomains(const Cluster& cluster,
                                                   const ServingSystemBase& system) {
  AuditReport out;
  // Zombie detection: an unreleased instance whose every stage GPU is unusable can
  // never serve another token — the fault path was required to fail it synchronously
  // inside the fault event, so finding one here means a correlated loss slipped
  // through recovery.
  for (const ServingSystemBase::InstanceRecord& record : system.records_) {
    if (record.released || record.gpus.empty()) {
      continue;
    }
    bool any_usable = false;
    for (GpuId g : record.gpus) {
      any_usable = any_usable || cluster.GpuUsable(g);
    }
    if (!any_usable) {
      Violation(&out) << "instance " << record.instance->id() << " (model "
                      << record.model_id << ") is unreleased but every one of its "
                      << record.gpus.size()
                      << " stage GPUs is unusable (zombie after a correlated fault)";
    }
  }

  // Dead servers must be invisible to placement: if every GPU on a server has failed,
  // its cached free-memory maximum must be zero so no allocation can land there.
  for (ServerId sid = 0; sid < cluster.server_count(); ++sid) {
    const Server& s = cluster.server(sid);
    bool all_failed = !s.gpus.empty();
    for (GpuId g : s.gpus) {
      all_failed = all_failed && cluster.gpu_failed_[static_cast<size_t>(g)] != 0;
    }
    if (all_failed && cluster.server_max_free_[static_cast<size_t>(sid)] != 0) {
      Violation(&out) << "server " << sid << " (power domain " << s.power_domain
                      << ", thermal zone " << s.thermal_zone
                      << ") has every GPU failed but still advertises "
                      << cluster.server_max_free_[static_cast<size_t>(sid)]
                      << " bytes free in the placement index";
    }
  }
  return out;
}

AuditReport SimulationAuditor::AuditPerfState(const Cluster& cluster) {
  AuditReport out;
  int degraded = 0;
  for (ServerId sid = 0; sid < cluster.server_count(); ++sid) {
    double perf = cluster.server_perf_[static_cast<size_t>(sid)];
    double link = cluster.server_link_factor_[static_cast<size_t>(sid)];
    if (!(perf > 0.0 && perf <= 1.0)) {
      Violation(&out) << "server " << sid << " compute perf factor " << perf
                      << " is outside (0, 1]";
    }
    if (!(link > 0.0 && link <= 1.0)) {
      Violation(&out) << "server " << sid << " link factor " << link
                      << " is outside (0, 1]";
    }
    if (perf != 1.0 || link != 1.0) {
      ++degraded;
    }
  }
  if (degraded != cluster.degraded_server_count_) {
    Violation(&out) << "cluster caches " << cluster.degraded_server_count_
                    << " degraded servers but the perf/link factors imply " << degraded
                    << " (stale count: degradation pricing is skipped or overapplied)";
  }
  return out;
}

AuditReport SimulationAuditor::AuditAll(const Simulation& sim, const Cluster& cluster,
                                        const std::vector<ServingSystemBase*>& systems) {
  AuditReport out = AuditArena(sim);
  AuditReport index = AuditFreeGpuIndex(cluster);
  out.insert(out.end(), index.begin(), index.end());
  AuditReport perf = AuditPerfState(cluster);
  out.insert(out.end(), perf.begin(), perf.end());
  for (const ServingSystemBase* system : systems) {
    AuditReport sys;
    system->CollectAuditViolations(&sys);
    for (std::string& v : sys) {
      out.push_back("[" + system->name() + "] " + std::move(v));
    }
  }
  return out;
}

void SimulationAuditor::TestOnlyLeakArenaSlot(Simulation* sim) {
  uint32_t slot = sim->AcquireSlot();
  Simulation::Slot& s = sim->slots_[slot];
  s.fn = [] {};
  s.where = Simulation::Where::kHeap;
  s.pos = 0;  // bogus: nothing in the heap points back at this slot
}

void SimulationAuditor::TestOnlyCorruptBucketIndex(Cluster* cluster, int32_t server) {
  cluster->server_max_free_[static_cast<size_t>(server)] += kGiB;
}

void SimulationAuditor::TestOnlyFailGpuWithoutReindex(Cluster* cluster, int32_t gpu) {
  cluster->gpu_failed_[static_cast<size_t>(gpu)] = 1;
  cluster->gpu_usable_[static_cast<size_t>(gpu)] = 0;
  ++cluster->failed_gpu_count_;
  // Deliberately no RecomputeServer: the cached maxima keep counting the dead GPU,
  // which is exactly the inconsistency the dead-GPU detector attributes.
}

void SimulationAuditor::TestOnlyMisrouteQueuedRequest(Router* router, Request* request,
                                                      int wrong_model) {
  Router::ModelQueue& queue = router->queues_[wrong_model];
  queue.requests.push_back(request);
  ++router->total_queued_;
  router->max_queue_length_ =
      std::max(router->max_queue_length_, static_cast<int64_t>(router->total_queued_));
}

void SimulationAuditor::TestOnlyCorruptRegistry(ServingSystemBase* system, int32_t gpu,
                                                int model_id) {
  system->placement_registry_.Add(gpu, model_id);
}

void SimulationAuditor::TestOnlyCorruptPerfState(Cluster* cluster, int32_t server) {
  // Deliberately bypasses SetServerPerf: the factor changes but the cached degraded
  // count does not, which is exactly the staleness AuditPerfState attributes.
  cluster->server_perf_[static_cast<size_t>(server)] = 0.5;
}

PeriodicSimulationAuditor::PeriodicSimulationAuditor(Simulation* sim, const Cluster* cluster,
                                                     std::vector<ServingSystemBase*> systems,
                                                     TimeNs interval)
    : sim_(sim), cluster_(cluster), systems_(std::move(systems)) {
  FLEXPIPE_CHECK(sim_ != nullptr && cluster_ != nullptr);
  task_ = std::make_unique<PeriodicTask>(sim_, interval, [this] { RunOnce(); });
}

PeriodicSimulationAuditor::~PeriodicSimulationAuditor() = default;

void PeriodicSimulationAuditor::RunOnce() {
  AuditReport report = SimulationAuditor::AuditAll(*sim_, *cluster_, systems_);
  if (!report.empty()) {
    std::ostringstream msg;
    msg << "simulation audit failed at t=" << sim_->now() << " with " << report.size()
        << " violation(s):";
    for (const std::string& v : report) {
      msg << "\n  " << v;
    }
    FLEXPIPE_CHECK_MSG(false, msg.str().c_str());
  }
  ++audits_;
}

}  // namespace flexpipe
