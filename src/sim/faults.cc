#include "src/sim/faults.h"

#include <algorithm>
#include <utility>

#include "src/common/macros.h"
#include "src/common/rng.h"

namespace flexpipe {

FaultPlan FaultPlan::SingleServer(TimeNs when, ServerId server) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kServerFailure, server});
  return plan;
}

FaultPlan FaultPlan::RackPartition(TimeNs when, RackId rack, TimeNs heal_after) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kRackPartition, rack});
  if (heal_after > 0) {
    plan.events.push_back({when + heal_after, FaultKind::kRackHeal, rack});
  }
  return plan;
}

FaultPlan FaultPlan::PowerDomainOutage(TimeNs when, PowerDomainId domain,
                                       const Cluster& cluster, TimeNs heal_after,
                                       TimeNs heal_stagger) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kPowerDomainOutage, domain});
  if (heal_after > 0) {
    const std::vector<RackId>& racks = cluster.PowerDomainRacks(domain);
    for (size_t i = 0; i < racks.size(); ++i) {
      plan.events.push_back(
          {when + heal_after + static_cast<TimeNs>(i) * heal_stagger,
           FaultKind::kRackHeal, racks[i]});
    }
  }
  return plan;
}

FaultPlan FaultPlan::ThermalCascade(TimeNs start, ThermalZoneId seed_zone,
                                    const Cluster& cluster, double spread_factor,
                                    TimeNs spread_interval, TimeNs quench_after,
                                    uint64_t seed) {
  int zone_count = cluster.thermal_zone_count();
  FLEXPIPE_CHECK(seed_zone >= 0 && seed_zone < zone_count);
  FaultPlan plan;
  plan.events.push_back({start, FaultKind::kThermalZoneFailure, seed_zone});

  // BFS in generations over the linear zone adjacency (z spreads to z-1 and z+1).
  // Every Bernoulli draw is consumed in ascending-zone order within a generation, so
  // the schedule is a pure function of (cluster shape, seed).
  std::vector<uint8_t> infected(static_cast<size_t>(zone_count), 0);
  infected[static_cast<size_t>(seed_zone)] = 1;
  std::vector<ThermalZoneId> frontier = {seed_zone};
  Rng rng = Rng(seed).Child("thermal-cascade");
  for (int step = 1;
       static_cast<TimeNs>(step) * spread_interval < quench_after && !frontier.empty();
       ++step) {
    std::vector<ThermalZoneId> next;
    for (ThermalZoneId zone : frontier) {
      for (ThermalZoneId nb : {zone - 1, zone + 1}) {
        if (nb < 0 || nb >= zone_count || infected[static_cast<size_t>(nb)] != 0) {
          continue;
        }
        if (rng.Bernoulli(spread_factor)) {
          infected[static_cast<size_t>(nb)] = 1;
          next.push_back(nb);
          plan.events.push_back({start + static_cast<TimeNs>(step) * spread_interval,
                                 FaultKind::kThermalZoneFailure, nb});
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }
  return plan;
}

FaultPlan FaultPlan::GpuSlowdown(TimeNs when, ServerId server, double multiplier,
                                 TimeNs recover_after) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kGpuSlowdown, server, multiplier});
  if (recover_after > 0) {
    plan.events.push_back({when + recover_after, FaultKind::kGpuSlowdown, server, 1.0});
  }
  return plan;
}

FaultPlan FaultPlan::LinkDegrade(TimeNs when, ServerId server, double factor,
                                 TimeNs recover_after) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kServerLinkDegrade, server, factor});
  if (recover_after > 0) {
    plan.events.push_back(
        {when + recover_after, FaultKind::kServerLinkDegrade, server, 1.0});
  }
  return plan;
}

FaultPlan FaultPlan::RackLinkDegrade(TimeNs when, RackId rack, double factor,
                                     TimeNs recover_after) {
  FaultPlan plan;
  plan.events.push_back({when, FaultKind::kRackLinkDegrade, rack, factor});
  if (recover_after > 0) {
    plan.events.push_back({when + recover_after, FaultKind::kRackLinkDegrade, rack, 1.0});
  }
  return plan;
}

FaultPlan FaultPlan::ThrottleWave(TimeNs start, ThermalZoneId seed_zone,
                                  const Cluster& cluster, double multiplier,
                                  double spread_factor, TimeNs spread_interval,
                                  TimeNs quench_after, TimeNs recover_after,
                                  uint64_t seed) {
  int zone_count = cluster.thermal_zone_count();
  FLEXPIPE_CHECK(seed_zone >= 0 && seed_zone < zone_count);
  FaultPlan plan;
  auto throttle_zone = [&](ThermalZoneId zone, TimeNs at) {
    for (ServerId s : cluster.ThermalZoneServers(zone)) {
      plan.events.push_back({at, FaultKind::kGpuSlowdown, s, multiplier});
      if (recover_after > 0) {
        plan.events.push_back({at + recover_after, FaultKind::kGpuSlowdown, s, 1.0});
      }
    }
  };
  throttle_zone(seed_zone, start);

  // Same generation-BFS over the linear zone adjacency as ThermalCascade, on its own
  // child stream: draws consumed in ascending-zone order per generation, so the wave
  // is a pure function of (cluster shape, seed) and composes with a cascade at the
  // same seed without perturbing it.
  std::vector<uint8_t> infected(static_cast<size_t>(zone_count), 0);
  infected[static_cast<size_t>(seed_zone)] = 1;
  std::vector<ThermalZoneId> frontier = {seed_zone};
  Rng rng = Rng(seed).Child("throttle-wave");
  for (int step = 1;
       static_cast<TimeNs>(step) * spread_interval < quench_after && !frontier.empty();
       ++step) {
    std::vector<ThermalZoneId> next;
    for (ThermalZoneId zone : frontier) {
      for (ThermalZoneId nb : {zone - 1, zone + 1}) {
        if (nb < 0 || nb >= zone_count || infected[static_cast<size_t>(nb)] != 0) {
          continue;
        }
        if (rng.Bernoulli(spread_factor)) {
          infected[static_cast<size_t>(nb)] = 1;
          next.push_back(nb);
          throttle_zone(nb, start + static_cast<TimeNs>(step) * spread_interval);
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }
  return plan;
}

FaultPlan FaultPlan::FleetChurn(TimeNs start, TimeNs spacing, double fraction,
                                const Cluster& cluster, uint64_t seed) {
  std::vector<ServerId> candidates;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (!cluster.server(s).gpus.empty()) {
      candidates.push_back(s);
    }
  }
  int kills = static_cast<int>(static_cast<double>(candidates.size()) * fraction);
  kills = std::clamp(kills, 0, static_cast<int>(candidates.size()));

  // Partial Fisher-Yates on the candidate list: the first `kills` entries are a
  // uniform sample without replacement, fully determined by the seed.
  Rng rng = Rng(seed).Child("fleet-churn");
  FaultPlan plan;
  for (int i = 0; i < kills; ++i) {
    int64_t j = rng.UniformInt(i, static_cast<int64_t>(candidates.size()) - 1);
    std::swap(candidates[static_cast<size_t>(i)], candidates[static_cast<size_t>(j)]);
    plan.events.push_back({start + static_cast<TimeNs>(i) * spacing,
                           FaultKind::kServerFailure,
                           candidates[static_cast<size_t>(i)]});
  }
  return plan;
}

FaultInjector::FaultInjector(Simulation* sim, Cluster* cluster)
    : sim_(sim), cluster_(cluster) {}

void FaultInjector::AddGpuLossListener(GpuLossListener listener) {
  listeners_.push_back(std::move(listener));
}

void FaultInjector::Arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    FLEXPIPE_CHECK(event.when >= sim_->now());
    sim_->ScheduleAt(event.when, [this, event] { Fire(event); });
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  ++faults_fired_;
  // Mutate the cluster before anyone is told: by the time a listener runs, the free
  // index already excludes the lost GPUs, so recovery placement cannot land on them.
  std::vector<GpuId> lost;
  switch (event.kind) {
    case FaultKind::kGpuFailure: {
      GpuId id = event.target;
      if (!cluster_->GpuFailed(id)) {
        bool was_usable = cluster_->GpuUsable(id);
        cluster_->SetGpuFailed(id);
        if (was_usable) {
          lost.push_back(id);
        }
      }
      break;
    }
    case FaultKind::kServerFailure: {
      for (GpuId g : cluster_->server(event.target).gpus) {
        if (!cluster_->GpuFailed(g)) {
          bool was_usable = cluster_->GpuUsable(g);
          cluster_->SetGpuFailed(g);
          if (was_usable) {
            lost.push_back(g);
          }
        }
      }
      break;
    }
    case FaultKind::kRackPartition: {
      if (cluster_->RackReachable(event.target)) {
        cluster_->SetRackReachable(event.target, false);
        for (ServerId s : cluster_->rack(event.target).servers) {
          for (GpuId g : cluster_->server(s).gpus) {
            if (!cluster_->GpuFailed(g)) {
              lost.push_back(g);
            }
          }
        }
      }
      break;
    }
    case FaultKind::kRackHeal: {
      cluster_->SetRackReachable(event.target, true);
      break;
    }
    case FaultKind::kPowerDomainOutage: {
      // All racks behind the feed drop in this one event: listeners observe the full
      // correlated loss at once, so whole-pipeline-loss accounting sees the truth.
      for (RackId r : cluster_->PowerDomainRacks(event.target)) {
        if (!cluster_->RackReachable(r)) {
          continue;
        }
        cluster_->SetRackReachable(r, false);
        for (ServerId s : cluster_->rack(r).servers) {
          for (GpuId g : cluster_->server(s).gpus) {
            if (!cluster_->GpuFailed(g)) {
              lost.push_back(g);
            }
          }
        }
      }
      break;
    }
    case FaultKind::kThermalZoneFailure: {
      for (ServerId s : cluster_->ThermalZoneServers(event.target)) {
        for (GpuId g : cluster_->server(s).gpus) {
          if (!cluster_->GpuFailed(g)) {
            bool was_usable = cluster_->GpuUsable(g);
            cluster_->SetGpuFailed(g);
            if (was_usable) {
              lost.push_back(g);
            }
          }
        }
      }
      break;
    }
    case FaultKind::kGpuSlowdown:
    case FaultKind::kServerLinkDegrade:
    case FaultKind::kRackLinkDegrade: {
      // Gray failure: capacity stays usable and no listener fires — by design nothing
      // in the control plane is told. Detection is the health monitor's job.
      ApplyDegrade(event);
      return;
    }
  }
  if (lost.empty()) {
    return;
  }
  gpus_lost_ += static_cast<int>(lost.size());
  loss_times_.push_back(sim_->now());
  for (const GpuLossListener& listener : listeners_) {
    listener(lost);
  }
}

void FaultInjector::ApplyDegrade(const FaultEvent& event) {
  bool was_degraded = cluster_->AnyDegraded();
  switch (event.kind) {
    case FaultKind::kGpuSlowdown:
      cluster_->SetServerPerf(event.target, event.magnitude);
      break;
    case FaultKind::kServerLinkDegrade:
      cluster_->SetServerLinkFactor(event.target, event.magnitude);
      break;
    case FaultKind::kRackLinkDegrade:
      for (ServerId s : cluster_->rack(event.target).servers) {
        cluster_->SetServerLinkFactor(s, event.magnitude);
      }
      break;
    default:
      FLEXPIPE_CHECK_MSG(false, "ApplyDegrade on a fail-stop fault kind");
  }
  if (event.magnitude < 1.0) {
    degrade_times_.push_back(sim_->now());
  }
  bool now_degraded = cluster_->AnyDegraded();
  if (!was_degraded && now_degraded) {
    degradation_episodes_.push_back({sim_->now(), 0});
  } else if (was_degraded && !now_degraded) {
    degradation_episodes_.back().clear = sim_->now();
  }
}

}  // namespace flexpipe
