#include "src/sim/simulation.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <iterator>
#include <utility>

#include "src/common/macros.h"
#include "src/common/thread_annotations.h"

namespace flexpipe {

namespace {
// Process-wide executed-event counter. Engines stay single-threaded, but the parallel
// sweep driver runs several of them concurrently, so the aggregate counter is atomic
// (relaxed: a monotone statistic, never synchronises anything).
FLEXPIPE_THREAD_SAFE_GLOBAL std::atomic<uint64_t> g_process_executed{0};
}  // namespace

uint64_t Simulation::process_executed_events() {
  return g_process_executed.load(std::memory_order_relaxed);
}

Simulation::Simulation(const Config& config) : config_(config) {
  FLEXPIPE_CHECK(config.near_window >= 0);
  FLEXPIPE_CHECK(config.refill_batch >= 1);
}

uint32_t Simulation::AcquireSlot() {
  if (free_head_ != kNil) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNil;
    return slot;
  }
  FLEXPIPE_CHECK_MSG(slots_.size() < kSlotMask, "event arena exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulation::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;  // invalidate outstanding EventIds for this tenancy
  s.where = Where::kFree;
  s.pos = kNil;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulation::PlaceEntry(size_t index, HeapEntry entry) {
  slots_[entry.slot()].pos = static_cast<uint32_t>(index);
  heap_[index] = entry;
}

// 4-ary heap: same comparison count as binary but half the levels, so pops touch half
// the cache lines. Children of i are [4i+1, 4i+4]; parent of i is (i-1)/4.
void Simulation::SiftUp(size_t index) {
  HeapEntry entry = heap_[index];
  while (index > 0) {
    size_t parent = (index - 1) / 4;
    if (!EarlierThan(entry, heap_[parent])) {
      break;
    }
    PlaceEntry(index, heap_[parent]);
    index = parent;
  }
  PlaceEntry(index, entry);
}

void Simulation::SiftDown(size_t index) {
  HeapEntry entry = heap_[index];
  const size_t size = heap_.size();
  for (;;) {
    size_t first = 4 * index + 1;
    if (first >= size) {
      break;
    }
    size_t best = first;
    size_t last = std::min(first + 4, size);
    for (size_t c = first + 1; c < last; ++c) {
      if (EarlierThan(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!EarlierThan(heap_[best], entry)) {
      break;
    }
    PlaceEntry(index, heap_[best]);
    index = best;
  }
  PlaceEntry(index, entry);
}

void Simulation::CompactStaged() {
  size_t write = staged_head_;
  for (size_t i = staged_head_; i < staged_.size(); ++i) {
    if (IsTombstone(staged_[i])) {
      continue;
    }
    staged_[write] = staged_[i];
    slots_[staged_[write].slot()].pos = static_cast<uint32_t>(write);
    ++write;
  }
  staged_.resize(write);
  staged_dead_ = 0;
}

// Bottom-up delete-min: percolate the root hole to a leaf along minimal children (no
// comparison against the relocated element on the way down), then reinsert the last
// element at the leaf hole and sift it up — usually a no-op, since it came from the
// bottom. Fewer comparisons than a classic sift-down for pop-heavy workloads.
void Simulation::PopRoot() {
  size_t last = heap_.size() - 1;
  if (last == 0) {
    heap_.pop_back();
    return;
  }
  size_t hole = 0;
  for (;;) {
    size_t first = 4 * hole + 1;
    if (first >= last) {
      break;
    }
    size_t best = first;
    size_t stop = std::min(first + 4, last);
    for (size_t c = first + 1; c < stop; ++c) {
      if (EarlierThan(heap_[c], heap_[best])) {
        best = c;
      }
    }
    PlaceEntry(hole, heap_[best]);
    hole = best;
  }
  HeapEntry moved = heap_[last];
  heap_.pop_back();
  PlaceEntry(hole, moved);
  SiftUp(hole);
}

void Simulation::RemoveHeapEntry(size_t index) {
  size_t last = heap_.size() - 1;
  if (index != last) {
    HeapEntry moved = heap_[last];
    heap_.pop_back();
    PlaceEntry(index, moved);
    // The replacement came from the bottom of the heap: after SiftDown it either moved
    // down or, already being >= its parent chain, stays put and SiftUp is a no-op.
    SiftDown(index);
    SiftUp(index);
  } else {
    heap_.pop_back();
  }
}

void Simulation::Refill() {
  if (!fresh_.empty()) {
    // A trickle of far events (idle-reclaim timers, churn ticks) is not worth re-merging
    // a six-figure staging array over: it is always correct to promote entries to the
    // heap early, so small batches go straight there.
    if (fresh_.size() < config_.merge_threshold && StagedLive() > 0) {
      for (const HeapEntry& entry : fresh_) {
        slots_[entry.slot()].where = Where::kHeap;
        heap_.push_back(entry);
        SiftUp(heap_.size() - 1);
      }
      fresh_.clear();
    } else {
      std::sort(fresh_.begin(), fresh_.end(), EarlierThan);
      if (StagedLive() == 0) {
        staged_.swap(fresh_);
        staged_dead_ = 0;
      } else {
        std::vector<HeapEntry> merged;
        merged.reserve(StagedLive() + fresh_.size());
        // Dead (canceled) staged entries drop out during the merge.
        auto keep_live = [](const HeapEntry& e) { return !IsTombstone(e); };
        std::vector<HeapEntry> live;
        live.reserve(StagedLive());
        std::copy_if(staged_.begin() + static_cast<ptrdiff_t>(staged_head_), staged_.end(),
                     std::back_inserter(live), keep_live);
        std::merge(live.begin(), live.end(), fresh_.begin(), fresh_.end(),
                   std::back_inserter(merged), EarlierThan);
        staged_ = std::move(merged);
        staged_dead_ = 0;
      }
      staged_head_ = 0;
      fresh_.clear();
      for (size_t i = staged_head_; i < staged_.size(); ++i) {
        Slot& s = slots_[staged_[i].slot()];
        s.where = Where::kStaged;
        s.pos = static_cast<uint32_t>(i);
      }
    }
  }
  size_t moved = 0;
  while (moved < config_.refill_batch && staged_head_ < staged_.size()) {
    HeapEntry entry = staged_[staged_head_++];
    if (IsTombstone(entry)) {  // canceled while staged
      --staged_dead_;
      continue;
    }
    slots_[entry.slot()].where = Where::kHeap;
    heap_.push_back(entry);
    SiftUp(heap_.size() - 1);
    staging_threshold_ = entry.when;
    ++moved;
  }
  if (StagedLive() == 0) {
    staged_.clear();
    staged_head_ = 0;
    staged_dead_ = 0;
  }
}

void Simulation::EnsureNext() {
  while ((heap_.empty() || heap_[0].when >= staging_threshold_) &&
         (StagedLive() > 0 || !fresh_.empty())) {
    Refill();
  }
}

EventId Simulation::Schedule(TimeNs delay, std::function<void()> fn) {
  FLEXPIPE_CHECK_MSG(delay >= 0, "cannot schedule into the past");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulation::ScheduleAt(TimeNs when, std::function<void()> fn) {
  FLEXPIPE_CHECK_MSG(when >= now_, "cannot schedule into the past");
  FLEXPIPE_CHECK(fn != nullptr);
  uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  // A hard check (not DCHECK): past 2^40 events the packed key would wrap and silently
  // break the ordering guarantee in release builds too.
  FLEXPIPE_CHECK_MSG(next_seq_ < (uint64_t{1} << 40), "event sequence space exhausted");
  HeapEntry entry{when, (next_seq_++ << kSlotBits) | slot};
  // Correctness requires only that events earlier than the staging threshold go to the
  // heap; among the rest, near-term events also take the heap path so the staging area
  // sees nothing but genuinely far-future work.
  if (when >= staging_threshold_ && when - now_ > config_.near_window) {
    s.where = Where::kFresh;
    s.pos = static_cast<uint32_t>(fresh_.size());
    fresh_.push_back(entry);
  } else {
    s.where = Where::kHeap;
    heap_.push_back(entry);
    SiftUp(heap_.size() - 1);
  }
  return IdOf(slot);
}

bool Simulation::Cancel(EventId id) {
  uint32_t low = static_cast<uint32_t>(id);
  if (low == 0 || low > slots_.size()) {
    return false;
  }
  uint32_t slot = low - 1;
  Slot& s = slots_[slot];
  if (s.generation != static_cast<uint32_t>(id >> 32) || s.where == Where::kFree) {
    return false;  // already fired, already canceled, or a stale generation
  }
  switch (s.where) {
    case Where::kHeap:
      RemoveHeapEntry(s.pos);
      break;
    case Where::kFresh:
      // Unsorted: swap-with-last.
      if (s.pos + 1 < fresh_.size()) {
        fresh_[s.pos] = fresh_.back();
        slots_[fresh_[s.pos].slot()].pos = s.pos;
      }
      fresh_.pop_back();
      break;
    case Where::kStaged:
      // Keeping the array sorted makes in-place erasure O(n), so cancellation leaves a
      // bounded tombstone instead: the entry is skipped at refill/merge time, and a
      // compaction pass runs once tombstones outnumber live entries — amortized O(1)
      // per cancel with memory pinned to ~2x the live staging population (unlike the
      // old engine's tombstones, which were never reclaimed at all).
      staged_[s.pos].key |= kSlotMask;  // tombstone: slot bits all-ones
      ++staged_dead_;
      if (staged_dead_ > config_.refill_batch && staged_dead_ * 2 > staged_.size() - staged_head_) {
        CompactStaged();
      }
      break;
    case Where::kFree:
      return false;  // unreachable; guarded above
  }
  s.fn = nullptr;  // release captured state now, not at fire time
  ReleaseSlot(slot);
  return true;
}

bool Simulation::PopAndRun() {
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry top = heap_[0];
  FLEXPIPE_DCHECK(top.when >= now_);
  now_ = top.when;
  // Move the callback out and retire the slot before running: the callback may
  // schedule new events (possibly growing the slab) or cancel others, and canceling
  // the currently-firing event must be a no-op.
  std::function<void()> fn = std::move(slots_[top.slot()].fn);
  PopRoot();
  ReleaseSlot(top.slot());
  ++executed_;
  g_process_executed.fetch_add(1, std::memory_order_relaxed);
  fn();
  return true;
}

bool Simulation::Step() {
  EnsureNext();
  return PopAndRun();
}

void Simulation::RunUntilIdle() {
  stopped_ = false;
  while (!stopped_) {
    EnsureNext();
    if (!PopAndRun()) {
      break;
    }
  }
}

void Simulation::RunUntil(TimeNs end) {
  FLEXPIPE_CHECK(end >= now_);
  stopped_ = false;
  while (!stopped_) {
    EnsureNext();
    if (heap_.empty() || heap_[0].when > end) {
      break;
    }
    PopAndRun();
  }
  if (!stopped_ && now_ < end) {
    now_ = end;
  }
}

PeriodicTask::PeriodicTask(Simulation* sim, TimeNs interval, std::function<void()> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  FLEXPIPE_CHECK(sim_ != nullptr);
  FLEXPIPE_CHECK(interval_ > 0);
  FLEXPIPE_CHECK(fn_ != nullptr);
  Arm();
}

PeriodicTask::~PeriodicTask() { Cancel(); }

void PeriodicTask::Arm() {
  pending_ = sim_->Schedule(interval_, [this] {
    if (!active_) {
      return;
    }
    fn_();
    if (active_) {  // fn_ may have canceled us
      Arm();
    }
  });
}

void PeriodicTask::Cancel() {
  if (!active_) {
    return;
  }
  active_ = false;
  if (pending_ != 0) {
    sim_->Cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace flexpipe
