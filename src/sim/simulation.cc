#include "src/sim/simulation.h"

#include <utility>

#include "src/common/macros.h"

namespace flexpipe {

EventId Simulation::Schedule(TimeNs delay, std::function<void()> fn) {
  FLEXPIPE_CHECK_MSG(delay >= 0, "cannot schedule into the past");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulation::ScheduleAt(TimeNs when, std::function<void()> fn) {
  FLEXPIPE_CHECK_MSG(when >= now_, "cannot schedule into the past");
  FLEXPIPE_CHECK(fn != nullptr);
  EventId id = next_seq_++;
  heap_.push(Entry{when, id, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulation::Cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped when popped.
  return callbacks_.erase(id) > 0;
}

bool Simulation::PopAndRun() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // canceled tombstone
      continue;
    }
    FLEXPIPE_DCHECK(top.when >= now_);
    now_ = top.when;
    // Move the callback out before popping: the callback may schedule/cancel events.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    heap_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

bool Simulation::Step() { return PopAndRun(); }

void Simulation::RunUntilIdle() {
  stopped_ = false;
  while (!stopped_ && PopAndRun()) {
  }
}

void Simulation::RunUntil(TimeNs end) {
  FLEXPIPE_CHECK(end >= now_);
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    // Peek past tombstones to find the next live event time.
    Entry top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.when > end) {
      break;
    }
    PopAndRun();
  }
  if (!stopped_ && now_ < end) {
    now_ = end;
  }
}

PeriodicTask::PeriodicTask(Simulation* sim, TimeNs interval, std::function<void()> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  FLEXPIPE_CHECK(sim_ != nullptr);
  FLEXPIPE_CHECK(interval_ > 0);
  FLEXPIPE_CHECK(fn_ != nullptr);
  Arm();
}

PeriodicTask::~PeriodicTask() { Cancel(); }

void PeriodicTask::Arm() {
  pending_ = sim_->Schedule(interval_, [this] {
    if (!active_) {
      return;
    }
    fn_();
    if (active_) {  // fn_ may have canceled us
      Arm();
    }
  });
}

void PeriodicTask::Cancel() {
  if (!active_) {
    return;
  }
  active_ = false;
  if (pending_ != 0) {
    sim_->Cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace flexpipe
