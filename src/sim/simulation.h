// Deterministic discrete-event simulation engine.
//
// This is the substrate on which the whole reproduction runs: the 82-GPU cluster, the
// network fabric, and the serving systems are all entities that schedule callbacks on
// one virtual clock. The engine is single-threaded by design — determinism matters more
// than parallel simulation speed for reproducing the paper's experiments, and every
// bench finishes in seconds.
//
// Ordering guarantee: events fire in (time, scheduling order) — two events scheduled for
// the same instant run in the order they were scheduled, so runs are bit-reproducible.
#ifndef FLEXPIPE_SRC_SIM_SIMULATION_H_
#define FLEXPIPE_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "src/common/units.h"

namespace flexpipe {

// Identifies a scheduled event so it can be canceled. Zero is never a valid id.
using EventId = uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` after the current virtual time (delay >= 0).
  EventId Schedule(TimeNs delay, std::function<void()> fn);

  // Schedules `fn` at absolute virtual time `when` (>= now()).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Cancels a pending event. Canceling an already-fired or unknown id is a no-op and
  // returns false.
  bool Cancel(EventId id);

  // Runs events until the queue empties or `Stop()` is called.
  void RunUntilIdle();

  // Runs events with time <= `end`; the clock lands exactly on `end` afterwards even if
  // the queue drained earlier.
  void RunUntil(TimeNs end);

  // Runs exactly one event if available; returns false when the queue is empty.
  bool Step();

  // Makes Run* return after the current event completes.
  void Stop() { stopped_ = true; }
  void ClearStop() { stopped_ = false; }

  size_t pending_events() const { return callbacks_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    TimeNs when;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert so earliest fires first.
    bool operator<(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Pops entries until one with a live callback is found and runs it.
  bool PopAndRun();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  std::priority_queue<Entry> heap_;
  // Live (uncanceled, unfired) callbacks; heap entries without a map entry are skipped.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

// Repeating task helper: runs `fn` every `interval` starting at now+interval until
// canceled. Used for controller loops and metric samplers.
class PeriodicTask {
 public:
  PeriodicTask(Simulation* sim, TimeNs interval, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Cancel();
  bool active() const { return active_; }

 private:
  void Arm();

  Simulation* sim_;
  TimeNs interval_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool active_ = true;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_SIM_SIMULATION_H_
