// Deterministic discrete-event simulation engine.
//
// This is the substrate on which the whole reproduction runs: the cluster, the network
// fabric, and the serving systems are all entities that schedule callbacks on one
// virtual clock. The engine is single-threaded by design — determinism matters more
// than parallel simulation speed for reproducing the paper's experiments — and the
// cluster-scale stress benches push hundreds of thousands of requests through it, so
// the hot path is allocation-free in steady state:
//
//   * Callbacks live in a slab of recycled slots (a free list over one vector), not in
//     per-event hash-map nodes. Scheduling reuses a dead slot; only a new high-water
//     mark grows the slab. EventIds are generation-tagged slot references, so stale ids
//     (already fired or canceled) fail validation in O(1). Cancel releases the callback
//     immediately and reclaims its queue entry either eagerly (heap tier) or via
//     bounded, compacted tombstones (staging tier) — unlike the old engine, which left
//     every canceled entry in its heap forever, a real leak under PeriodicTask-heavy
//     multi-model runs.
//   * The pending queue is two-tier. Near-term events live in a vector-backed 4-ary
//     heap of packed 16-byte {when, seq|slot} entries; far-future events (bench
//     workloads pre-schedule hundreds of thousands of arrivals) wait in a lazily-sorted
//     staging area and enter the heap in batches as the clock approaches them. This
//     keeps the hot heap small and cache-resident instead of sifting every event
//     through a quarter-million-entry heap. Firing order is decided purely by
//     (when, seq), so the tiering is invisible: the staging area is always merged into
//     the heap before any event at or beyond the staging threshold fires.
//
// Ordering guarantee: events fire in (time, scheduling order) — two events scheduled
// for the same instant run in the order they were scheduled, so runs are
// bit-reproducible.
#ifndef FLEXPIPE_SRC_SIM_SIMULATION_H_
#define FLEXPIPE_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

// Identifies a scheduled event so it can be canceled. Zero is never a valid id.
// Layout: high 32 bits = slot generation, low 32 bits = slot index + 1.
using EventId = uint64_t;

class FLEXPIPE_THREAD_HOSTILE Simulation {
 public:
  // Staging-tier tuning. The defaults match the historical compile-time constants;
  // workloads with unusual scheduling horizons (e.g. a streaming source whose only
  // far-future event is the next arrival) can shrink the near window so dense traffic
  // just past it stays off the hot heap.
  struct Config {
    // Events further than this past the staging threshold go to the staging area
    // instead of the heap. Controller ticks and pipeline iterations (micro- to
    // milli-second scale) stay on the fast heap path; pre-scheduled workload
    // arrivals do not.
    TimeNs near_window = 1 * kSecond;
    // How many staged events each refill moves into the heap.
    size_t refill_batch = 1024;
    // Fresh batches smaller than this are promoted straight to the heap at refill
    // time rather than paying a re-merge of the whole staging array.
    size_t merge_threshold = 256;
  };

  Simulation() : Simulation(Config{}) {}
  explicit Simulation(const Config& config);
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  const Config& config() const { return config_; }

  TimeNs now() const { return now_; }

  // Schedules `fn` to run `delay` after the current virtual time (delay >= 0).
  EventId Schedule(TimeNs delay, std::function<void()> fn);

  // Schedules `fn` at absolute virtual time `when` (>= now()).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Cancels a pending event, releasing its callback and queue entry immediately.
  // Canceling an already-fired or unknown id is a no-op and returns false.
  bool Cancel(EventId id);

  // Runs events until the queue empties or `Stop()` is called.
  void RunUntilIdle();

  // Runs events with time <= `end`; the clock lands exactly on `end` afterwards even if
  // the queue drained earlier.
  void RunUntil(TimeNs end);

  // Runs exactly one event if available; returns false when the queue is empty.
  bool Step();

  // Makes Run* return after the current event completes.
  void Stop() { stopped_ = true; }
  void ClearStop() { stopped_ = false; }

  size_t pending_events() const {
    return heap_.size() + StagedLive() + fresh_.size();
  }
  // Tier introspection for tests and tuning: events on the hot heap vs parked in the
  // staging area (sorted backlog + unsorted fresh batch).
  size_t heap_events() const { return heap_.size(); }
  size_t staged_events() const { return StagedLive() + fresh_.size(); }
  // Slots ever allocated: the high-water mark of concurrently pending events. Cancel
  // recycles its slot immediately and its queue entry eagerly (heap) or via bounded
  // compacted tombstones (staging), so this stays proportional to the live population
  // under schedule/cancel churn — the old engine's tombstones grew without limit. The
  // churn regression tests pin the bound.
  size_t arena_slots() const { return slots_.size(); }
  uint64_t executed_events() const { return executed_; }

  // Monotonic count of events executed by *all* Simulation instances in this process.
  // The bench runner diffs it around each bench to report events/sec per run.
  static uint64_t process_executed_events();

 private:
  // Debug-build invariant audits recompute slot accounting from the raw containers.
  friend class SimulationAuditor;

  static constexpr uint32_t kNil = 0xffffffffu;

  enum class Where : uint8_t { kFree, kHeap, kStaged, kFresh };

  // Queue entries are 16 bytes so sift paths touch half the cache lines a naive
  // {when, seq, slot} triple would: `key` packs the FIFO tie-breaker sequence number
  // into the high 40 bits (checked: engines run < 2^40 events) and the slot index into
  // the low 24 (checked: < 2^24 concurrently pending events). Comparing `key` compares
  // seq first, and seq is unique, so ordering is identical to comparing (seq, slot).
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  struct HeapEntry {
    TimeNs when;
    uint64_t key;  // (seq << kSlotBits) | slot
    uint32_t slot() const { return static_cast<uint32_t>(key) & kSlotMask; }
  };

  // One arena slot. `generation` advances every time the slot is released, so EventIds
  // referencing a previous tenancy fail validation.
  struct Slot {
    std::function<void()> fn;
    uint32_t generation = 1;
    uint32_t pos = kNil;  // index into the container named by `where`
    uint32_t next_free = kNil;
    Where where = Where::kFree;
  };

  // A canceled staging entry: slot bits all-ones (the slab is capped below kSlotMask).
  static bool IsTombstone(const HeapEntry& e) {
    return (static_cast<uint32_t>(e.key) & kSlotMask) == kSlotMask;
  }

  static bool EarlierThan(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.key < b.key;  // seq occupies the high bits: FIFO among same-time events
  }

  EventId IdOf(uint32_t slot) const {
    return (static_cast<uint64_t>(slots_[slot].generation) << 32) |
           static_cast<uint64_t>(slot + 1);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);

  // 4-ary heap primitives; every entry move updates the owning slot's backlink.
  void PlaceEntry(size_t index, HeapEntry entry);
  void SiftUp(size_t index);
  void SiftDown(size_t index);
  void PopRoot();
  void RemoveHeapEntry(size_t index);

  size_t StagedLive() const { return staged_.size() - staged_head_ - staged_dead_; }
  // Drops canceled (tombstoned) entries from the staging array in one pass.
  void CompactStaged();
  // Merges `fresh_` into `staged_` (sorted) and moves the next batch into the heap,
  // advancing `staging_threshold_`.
  void Refill();
  // Guarantees the next event to fire is at the heap top: refills while the staging
  // area could still hold an earlier (or same-time, earlier-seq) event.
  void EnsureNext();

  // Pops the earliest heap entry and runs it; false when the heap is empty.
  bool PopAndRun();

  Config config_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  std::vector<HeapEntry> heap_;
  // Staging area: `staged_` is sorted by (when, seq) and consumed from `staged_head_`;
  // newly scheduled far events collect unsorted in `fresh_` until the next refill.
  // Invariant: no staged/fresh entry is earlier than `staging_threshold_`, and a refill
  // happens before any heap entry at or past the threshold fires.
  std::vector<HeapEntry> staged_;
  size_t staged_head_ = 0;
  size_t staged_dead_ = 0;  // tombstoned (canceled) entries past staged_head_
  std::vector<HeapEntry> fresh_;
  TimeNs staging_threshold_ = 0;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNil;
};

// Repeating task helper: runs `fn` every `interval` starting at now+interval until
// canceled. Used for controller loops and metric samplers.
class FLEXPIPE_THREAD_HOSTILE PeriodicTask {
 public:
  PeriodicTask(Simulation* sim, TimeNs interval, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Cancel();
  bool active() const { return active_; }

 private:
  void Arm();

  Simulation* sim_;
  TimeNs interval_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool active_ = true;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_SIM_SIMULATION_H_
