// Arrival processes with controllable burstiness.
//
// Every experiment in the paper is parameterised by the coefficient of variation (CV) of
// request inter-arrival times. A Gamma renewal process hits any target CV exactly
// (shape = 1/CV^2); an on/off Markov-modulated Poisson process (MMPP) produces the
// correlated bursts seen in the CV=8 runs of Fig. 9; trace replay feeds recorded
// timestamps back in.
#ifndef FLEXPIPE_SRC_TRACE_ARRIVAL_H_
#define FLEXPIPE_SRC_TRACE_ARRIVAL_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Returns the next inter-arrival gap in virtual time (> 0). Finite processes
  // (trace replay) CHECK-fail once exhausted; callers that may outrun a finite
  // process must use TryNextGap instead.
  virtual TimeNs NextGap(Rng& rng) = 0;

  // Exhaustion-aware draw: fills `*gap` and returns true, or returns false once the
  // process has no further arrivals (`*gap` is left untouched). Only finite
  // processes ever exhaust; the default forwards to NextGap and always succeeds, so
  // renewal/MMPP subclasses need no override.
  virtual bool TryNextGap(Rng& rng, TimeNs* gap);

  // Long-run mean arrival rate in requests/second.
  virtual double MeanRate() const = 0;

  // Generates `n` absolute arrival timestamps starting at `start`; a finite process
  // that exhausts early returns the timestamps drawn so far.
  std::vector<TimeNs> GenerateArrivals(Rng& rng, size_t n, TimeNs start = 0);

  // Generates timestamps until `end` (exclusive) starting at `start`, stopping early
  // if the process exhausts.
  std::vector<TimeNs> GenerateUntil(Rng& rng, TimeNs end, TimeNs start = 0);
};

// Memoryless arrivals (CV = 1).
class PoissonArrivals : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_sec);
  TimeNs NextGap(Rng& rng) override;
  double MeanRate() const override { return rate_; }

 private:
  double rate_;
};

// Gamma renewal process: inter-arrival CV is exactly `cv`, mean rate `rate_per_sec`.
// cv < 1 is more regular than Poisson, cv > 1 burstier.
class GammaArrivals : public ArrivalProcess {
 public:
  GammaArrivals(double rate_per_sec, double cv);
  TimeNs NextGap(Rng& rng) override;
  double MeanRate() const override { return rate_; }
  double cv() const { return cv_; }

 private:
  double rate_;
  double cv_;
  double shape_;
  double scale_;  // seconds
};

// Two-state MMPP: alternates between a low-rate and a high-rate Poisson regime with
// exponentially distributed sojourn times. Produces temporally correlated bursts, which
// a renewal process cannot.
class MmppArrivals : public ArrivalProcess {
 public:
  struct Config {
    double low_rate = 5.0;           // req/s in the calm state
    double high_rate = 80.0;         // req/s in the burst state
    double mean_low_sojourn_s = 20;  // mean time spent calm
    double mean_high_sojourn_s = 4;  // mean burst duration
  };
  explicit MmppArrivals(const Config& config);
  TimeNs NextGap(Rng& rng) override;
  double MeanRate() const override;

 private:
  Config config_;
  bool in_high_ = false;
  double state_left_s_ = 0.0;  // time remaining in the current state
};

// Replays a fixed list of timestamps (must be non-decreasing).
class TraceReplayArrivals : public ArrivalProcess {
 public:
  explicit TraceReplayArrivals(std::vector<TimeNs> timestamps);
  TimeNs NextGap(Rng& rng) override;
  // Reports end-of-trace instead of CHECK-failing: returns false past the last
  // timestamp, so replay-backed streams can drain gracefully.
  bool TryNextGap(Rng& rng, TimeNs* gap) override;
  double MeanRate() const override;
  bool exhausted() const { return next_ >= timestamps_.size(); }

 private:
  std::vector<TimeNs> timestamps_;
  size_t next_ = 0;
  TimeNs last_ = 0;
};

// Factory used by benches: CV==1 -> Poisson, otherwise Gamma renewal.
std::unique_ptr<ArrivalProcess> MakeArrivalsWithCv(double rate_per_sec, double cv);

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_TRACE_ARRIVAL_H_
