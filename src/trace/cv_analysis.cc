#include "src/trace/cv_analysis.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/common/stats.h"

namespace flexpipe {

std::vector<int64_t> BinCounts(const std::vector<TimeNs>& arrivals, TimeNs window, TimeNs start,
                               TimeNs end) {
  FLEXPIPE_CHECK(window > 0);
  FLEXPIPE_CHECK(end > start);
  size_t bins = static_cast<size_t>((end - start + window - 1) / window);
  std::vector<int64_t> counts(bins, 0);
  auto lo = std::lower_bound(arrivals.begin(), arrivals.end(), start);
  auto hi = std::lower_bound(arrivals.begin(), arrivals.end(), end);
  for (auto it = lo; it != hi; ++it) {
    size_t bin = static_cast<size_t>((*it - start) / window);
    if (bin < bins) {
      ++counts[bin];
    }
  }
  return counts;
}

double WindowedCountCv(const std::vector<TimeNs>& arrivals, TimeNs window, TimeNs start,
                       TimeNs end) {
  std::vector<int64_t> counts = BinCounts(arrivals, window, start, end);
  RunningStats stats;
  for (int64_t c : counts) {
    stats.Add(static_cast<double>(c));
  }
  return stats.cv();
}

double InterarrivalCv(const std::vector<TimeNs>& arrivals, TimeNs start, TimeNs end) {
  auto lo = std::lower_bound(arrivals.begin(), arrivals.end(), start);
  auto hi = std::lower_bound(arrivals.begin(), arrivals.end(), end);
  RunningStats stats;
  for (auto it = lo; it != hi; ++it) {
    if (it != lo) {
      stats.Add(ToSeconds(*it - *(it - 1)));
    }
  }
  return stats.cv();
}

std::vector<DailyCvReport> AnalyzeDailyCv(const std::vector<TimeNs>& arrivals, int days) {
  std::vector<DailyCvReport> out;
  out.reserve(static_cast<size_t>(days));
  for (int d = 0; d < days; ++d) {
    TimeNs start = static_cast<TimeNs>(d) * 24 * kHour;
    TimeNs end = start + 24 * kHour;
    DailyCvReport report;
    report.day = d + 1;
    report.cv_180s = WindowedCountCv(arrivals, 180 * kSecond, start, end);
    report.cv_3h = WindowedCountCv(arrivals, 3 * kHour, start, end);
    report.cv_12h = WindowedCountCv(arrivals, 12 * kHour, start, end);
    out.push_back(report);
  }
  return out;
}

}  // namespace flexpipe
