#include "src/trace/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

LengthSampler::LengthSampler(const Config& config) : config_(config) {
  FLEXPIPE_CHECK(config.prompt_median >= 1.0);
  FLEXPIPE_CHECK(config.output_median >= 1.0);
  FLEXPIPE_CHECK(config.prompt_max >= 1 && config.output_max >= 1);
}

int LengthSampler::SamplePromptTokens(Rng& rng) const {
  if (rng.Bernoulli(config_.long_context_prob)) {
    // Long-context outlier: uniform over the top quarter of the window.
    return static_cast<int>(rng.Uniform(0.75 * config_.prompt_max, config_.prompt_max));
  }
  double v = rng.LogNormal(std::log(config_.prompt_median), config_.prompt_sigma);
  return std::clamp(static_cast<int>(v), 1, config_.prompt_max);
}

int LengthSampler::SampleOutputTokens(Rng& rng) const {
  double v = rng.LogNormal(std::log(config_.output_median), config_.output_sigma);
  return std::clamp(static_cast<int>(v), 1, config_.output_max);
}

WorkloadGenerator::WorkloadGenerator(const Config& config) : config_(config) {}

std::vector<RequestSpec> WorkloadGenerator::FillSpecs(const std::vector<TimeNs>& times,
                                                      Rng& rng) const {
  LengthSampler sampler(config_.lengths);
  std::vector<RequestSpec> out;
  out.reserve(times.size());
  RequestId id = 1;
  for (TimeNs t : times) {
    RequestSpec spec;
    spec.id = id++;
    spec.arrival = t;
    spec.model_index = config_.model_index;
    spec.prompt_tokens = sampler.SamplePromptTokens(rng);
    spec.output_tokens = sampler.SampleOutputTokens(rng);
    spec.slo = config_.slo;
    out.push_back(spec);
  }
  return out;
}

std::vector<RequestSpec> WorkloadGenerator::Generate(ArrivalProcess& arrivals, Rng& rng,
                                                     size_t n) const {
  return FillSpecs(arrivals.GenerateArrivals(rng, n), rng);
}

std::vector<RequestSpec> WorkloadGenerator::GenerateUntil(ArrivalProcess& arrivals, Rng& rng,
                                                          TimeNs end) const {
  return FillSpecs(arrivals.GenerateUntil(rng, end), rng);
}

std::vector<RequestSpec> WorkloadGenerator::GenerateWithCv(Rng& rng, double rate_per_sec,
                                                           double cv, TimeNs duration) const {
  auto arrivals = MakeArrivalsWithCv(rate_per_sec, cv);
  return GenerateUntil(*arrivals, rng, duration);
}

std::vector<RequestSpec> MergeWorkloads(std::vector<std::vector<RequestSpec>> parts) {
  std::vector<RequestSpec> merged;
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
  }
  merged.reserve(total);
  for (auto& p : parts) {
    merged.insert(merged.end(), p.begin(), p.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const RequestSpec& a, const RequestSpec& b) { return a.arrival < b.arrival; });
  // Re-number so ids stay unique and ascending in arrival order.
  RequestId id = 1;
  for (auto& spec : merged) {
    spec.id = id++;
  }
  return merged;
}

}  // namespace flexpipe
