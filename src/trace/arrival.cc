#include "src/trace/arrival.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

namespace {
// Gaps below 1ns would stall the virtual clock; clamp (affects only CV >> 10 regimes).
constexpr TimeNs kMinGap = 1;
}  // namespace

bool ArrivalProcess::TryNextGap(Rng& rng, TimeNs* gap) {
  *gap = NextGap(rng);
  return true;
}

std::vector<TimeNs> ArrivalProcess::GenerateArrivals(Rng& rng, size_t n, TimeNs start) {
  std::vector<TimeNs> out;
  out.reserve(n);
  TimeNs t = start;
  for (size_t i = 0; i < n; ++i) {
    TimeNs gap = 0;
    if (!TryNextGap(rng, &gap)) {
      break;
    }
    t += gap;
    out.push_back(t);
  }
  return out;
}

std::vector<TimeNs> ArrivalProcess::GenerateUntil(Rng& rng, TimeNs end, TimeNs start) {
  std::vector<TimeNs> out;
  TimeNs t = start;
  while (true) {
    TimeNs gap = 0;
    if (!TryNextGap(rng, &gap)) {
      break;
    }
    t += gap;
    if (t >= end) {
      break;
    }
    out.push_back(t);
  }
  return out;
}

PoissonArrivals::PoissonArrivals(double rate_per_sec) : rate_(rate_per_sec) {
  FLEXPIPE_CHECK(rate_per_sec > 0.0);
}

TimeNs PoissonArrivals::NextGap(Rng& rng) {
  return std::max<TimeNs>(kMinGap, FromSeconds(rng.ExponentialMean(1.0 / rate_)));
}

GammaArrivals::GammaArrivals(double rate_per_sec, double cv) : rate_(rate_per_sec), cv_(cv) {
  FLEXPIPE_CHECK(rate_per_sec > 0.0);
  FLEXPIPE_CHECK(cv > 0.0);
  // For Gamma(shape k, scale theta): mean = k*theta, CV = 1/sqrt(k).
  shape_ = 1.0 / (cv * cv);
  scale_ = (1.0 / rate_per_sec) / shape_;
}

TimeNs GammaArrivals::NextGap(Rng& rng) {
  return std::max<TimeNs>(kMinGap, FromSeconds(rng.Gamma(shape_, scale_)));
}

MmppArrivals::MmppArrivals(const Config& config) : config_(config) {
  FLEXPIPE_CHECK(config.low_rate > 0.0 && config.high_rate > 0.0);
  FLEXPIPE_CHECK(config.mean_low_sojourn_s > 0.0 && config.mean_high_sojourn_s > 0.0);
}

TimeNs MmppArrivals::NextGap(Rng& rng) {
  double gap_s = 0.0;
  while (true) {
    if (state_left_s_ <= 0.0) {
      in_high_ = !in_high_;
      state_left_s_ =
          rng.ExponentialMean(in_high_ ? config_.mean_high_sojourn_s : config_.mean_low_sojourn_s);
    }
    double rate = in_high_ ? config_.high_rate : config_.low_rate;
    double candidate = rng.ExponentialMean(1.0 / rate);
    if (candidate <= state_left_s_) {
      state_left_s_ -= candidate;
      gap_s += candidate;
      break;
    }
    // No arrival before the state flips; consume the remaining sojourn and retry.
    gap_s += state_left_s_;
    state_left_s_ = 0.0;
  }
  return std::max<TimeNs>(kMinGap, FromSeconds(gap_s));
}

double MmppArrivals::MeanRate() const {
  double p_high =
      config_.mean_high_sojourn_s / (config_.mean_high_sojourn_s + config_.mean_low_sojourn_s);
  return p_high * config_.high_rate + (1.0 - p_high) * config_.low_rate;
}

TraceReplayArrivals::TraceReplayArrivals(std::vector<TimeNs> timestamps)
    : timestamps_(std::move(timestamps)) {
  for (size_t i = 1; i < timestamps_.size(); ++i) {
    FLEXPIPE_CHECK_MSG(timestamps_[i] >= timestamps_[i - 1], "trace must be sorted");
  }
}

TimeNs TraceReplayArrivals::NextGap(Rng& rng) {
  TimeNs gap = 0;
  FLEXPIPE_CHECK_MSG(TryNextGap(rng, &gap), "trace exhausted");
  return gap;
}

bool TraceReplayArrivals::TryNextGap(Rng& /*rng*/, TimeNs* gap) {
  if (next_ >= timestamps_.size()) {
    return false;
  }
  *gap = std::max<TimeNs>(kMinGap, timestamps_[next_] - last_);
  last_ = timestamps_[next_];
  ++next_;
  return true;
}

double TraceReplayArrivals::MeanRate() const {
  if (timestamps_.size() < 2) {
    return 0.0;
  }
  double span_s = ToSeconds(timestamps_.back() - timestamps_.front());
  if (span_s <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(timestamps_.size() - 1) / span_s;
}

std::unique_ptr<ArrivalProcess> MakeArrivalsWithCv(double rate_per_sec, double cv) {
  if (std::abs(cv - 1.0) < 1e-9) {
    return std::make_unique<PoissonArrivals>(rate_per_sec);
  }
  return std::make_unique<GammaArrivals>(rate_per_sec, cv);
}

}  // namespace flexpipe
