// Offline windowed-CV analysis of arrival traces (the measurement behind Fig. 1).
//
// For a window size W, the trace is cut into W-sized bins and the CV of per-bin request
// counts is computed per analysis period (e.g. per day). The paper's observation is that
// the same trace yields CVs differing by up to 7x depending on W — the motivation for
// runtime (rather than offline) pipeline configuration.
#ifndef FLEXPIPE_SRC_TRACE_CV_ANALYSIS_H_
#define FLEXPIPE_SRC_TRACE_CV_ANALYSIS_H_

#include <vector>

#include "src/common/units.h"

namespace flexpipe {

// Per-bin arrival counts for bins of `window` covering [start, end).
std::vector<int64_t> BinCounts(const std::vector<TimeNs>& arrivals, TimeNs window, TimeNs start,
                               TimeNs end);

// CV of per-bin counts over [start, end).
double WindowedCountCv(const std::vector<TimeNs>& arrivals, TimeNs window, TimeNs start,
                       TimeNs end);

// CV of inter-arrival gaps within [start, end) — the ν_t the online controller tracks.
double InterarrivalCv(const std::vector<TimeNs>& arrivals, TimeNs start, TimeNs end);

struct DailyCvReport {
  int day = 0;
  double cv_180s = 0.0;
  double cv_3h = 0.0;
  double cv_12h = 0.0;
};

// One report row per whole day present in the trace (Fig. 1's series).
std::vector<DailyCvReport> AnalyzeDailyCv(const std::vector<TimeNs>& arrivals, int days);

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_TRACE_CV_ANALYSIS_H_
