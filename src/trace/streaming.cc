#include "src/trace/streaming.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

StreamingWorkloadSource::StreamingWorkloadSource(const WorkloadGenerator::Config& config,
                                                 std::unique_ptr<ArrivalProcess> arrivals,
                                                 Rng arrival_rng, Rng length_rng,
                                                 TimeNs end, TimeNs start)
    : config_(config),
      sampler_(config.lengths),
      arrivals_(std::move(arrivals)),
      arrival_rng_(std::move(arrival_rng)),
      length_rng_(std::move(length_rng)),
      end_(end),
      t_(start) {
  FLEXPIPE_CHECK(arrivals_ != nullptr);
}

StreamingWorkloadSource StreamingWorkloadSource::WithCv(
    const WorkloadGenerator::Config& config, double rate_per_sec, double cv,
    TimeNs duration, const Rng& base_rng) {
  return StreamingWorkloadSource(config, MakeArrivalsWithCv(rate_per_sec, cv),
                                 /*arrival_rng=*/base_rng,
                                 /*length_rng=*/base_rng.Child("lengths"), duration);
}

bool StreamingWorkloadSource::Next(RequestSpec* out) {
  if (exhausted_) {
    return false;
  }
  // Identical draw order to GenerateUntil: one gap per emitted arrival, plus the final
  // gap whose crossing of `end` terminates the stream. A finite process (trace
  // replay) can also terminate the stream by exhausting before `end`.
  TimeNs gap = 0;
  if (!arrivals_->TryNextGap(arrival_rng_, &gap)) {
    exhausted_ = true;
    return false;
  }
  t_ += gap;
  if (t_ >= end_) {
    exhausted_ = true;
    return false;
  }
  out->id = next_id_++;
  out->arrival = t_;
  out->model_index = config_.model_index;
  out->prompt_tokens = sampler_.SamplePromptTokens(length_rng_);
  out->output_tokens = sampler_.SampleOutputTokens(length_rng_);
  out->slo = config_.slo;
  return true;
}

MergedRequestStream::MergedRequestStream(std::vector<std::unique_ptr<RequestStream>> parts)
    : parts_(std::move(parts)), heads_(parts_.size()) {
  FLEXPIPE_CHECK(!parts_.empty());
  for (size_t i = 0; i < parts_.size(); ++i) {
    FLEXPIPE_CHECK(parts_[i] != nullptr);
    end_ = std::max(end_, parts_[i]->end_time());
    heads_[i].live = parts_[i]->Next(&heads_[i].spec);
  }
}

bool MergedRequestStream::Next(RequestSpec* out) {
  size_t best = heads_.size();
  for (size_t i = 0; i < heads_.size(); ++i) {
    // Strict < keeps ties on the earliest part index: MergeWorkloads' stable sort.
    if (heads_[i].live &&
        (best == heads_.size() || heads_[i].spec.arrival < heads_[best].spec.arrival)) {
      best = i;
    }
  }
  if (best == heads_.size()) {
    return false;
  }
  *out = heads_[best].spec;
  out->id = next_id_++;
  heads_[best].live = parts_[best]->Next(&heads_[best].spec);
  return true;
}

}  // namespace flexpipe
