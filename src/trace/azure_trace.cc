#include "src/trace/azure_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace flexpipe {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

AzureTraceSynthesizer::AzureTraceSynthesizer(const Config& config) : config_(config) {
  FLEXPIPE_CHECK(config.days >= 1);
  FLEXPIPE_CHECK(config.base_rate > 0.0);
}

std::vector<double> AzureTraceSynthesizer::RateProfile() const {
  const int total_seconds = config_.days * 24 * 3600;
  std::vector<double> rate(static_cast<size_t>(total_seconds), config_.base_rate);
  Rng rng(config_.seed);
  Rng noise_rng = rng.Child("minute-noise");
  Rng burst_rng = rng.Child("bursts");

  // Diurnal + weekly envelope.
  for (int s = 0; s < total_seconds; ++s) {
    double hour_of_day = static_cast<double>(s % 86400) / 3600.0;
    double diurnal = 1.0 + config_.diurnal_amplitude * std::sin((hour_of_day - 9.0) / 24.0 * 2.0 * kPi);
    int day_of_week = (s / 86400) % 7;
    double weekly = (day_of_week >= 5) ? (1.0 - config_.weekly_dip) : 1.0;
    rate[static_cast<size_t>(s)] *= diurnal * weekly;
  }

  // Minute-scale multiplicative noise: this is what makes short-window CV exceed
  // long-window CV (the Fig. 1 effect).
  double minute_mult = 1.0;
  for (int s = 0; s < total_seconds; ++s) {
    if (s % 60 == 0) {
      // E[LogNormal(mu, sigma)] = exp(mu + sigma^2/2); center it at 1.
      double sigma = config_.minute_noise_sigma;
      minute_mult = noise_rng.LogNormal(-sigma * sigma / 2.0, sigma);
    }
    rate[static_cast<size_t>(s)] *= minute_mult;
  }

  // Burst episodes: Poisson count per day, Pareto magnitudes, exponential durations.
  double bursts_expected = config_.burst_rate_per_day * config_.days;
  int burst_count = static_cast<int>(bursts_expected);
  if (burst_rng.Bernoulli(bursts_expected - burst_count)) {
    ++burst_count;
  }
  for (int b = 0; b < burst_count; ++b) {
    int start = static_cast<int>(burst_rng.UniformInt(0, total_seconds - 1));
    double duration = burst_rng.ExponentialMean(config_.burst_mean_duration_s);
    double magnitude = std::min(burst_rng.Pareto(1.5, 1.2) * config_.burst_magnitude / 3.0,
                                4.0 * config_.burst_magnitude);
    int end = std::min(total_seconds, start + std::max(1, static_cast<int>(duration)));
    for (int s = start; s < end; ++s) {
      // Triangular ramp up/down within the burst looks like real incident traffic.
      double pos = static_cast<double>(s - start) / std::max(1, end - start - 1);
      double shape = 1.0 - std::abs(2.0 * pos - 1.0);
      rate[static_cast<size_t>(s)] *= 1.0 + magnitude * shape;
    }
  }
  return rate;
}

std::vector<TimeNs> AzureTraceSynthesizer::GenerateArrivals() const {
  std::vector<double> rate = RateProfile();
  Rng rng = Rng(config_.seed).Child("arrivals");
  std::vector<TimeNs> out;
  out.reserve(static_cast<size_t>(config_.base_rate) * rate.size());
  // Piecewise-constant inhomogeneous Poisson process: within each 1 s slot the rate is
  // constant, so we draw exponential gaps and carry the remainder across slots.
  double t = 0.0;  // seconds
  const double total = static_cast<double>(rate.size());
  while (t < total) {
    size_t slot = static_cast<size_t>(t);
    double r = std::max(rate[slot], 1e-6);
    double gap = rng.ExponentialMean(1.0 / r);
    // If the gap crosses a slot boundary, thin it: rescale the remaining gap by the
    // rate ratio of the next slot (standard inversion for piecewise-constant rates).
    double slot_end = static_cast<double>(slot + 1);
    while (t + gap >= slot_end && slot + 1 < rate.size()) {
      double consumed = slot_end - t;
      double leftover = gap - consumed;
      t = slot_end;
      slot += 1;
      double r_next = std::max(rate[slot], 1e-6);
      gap = leftover * r / r_next;
      r = r_next;
      slot_end = static_cast<double>(slot + 1);
    }
    t += gap;
    if (t >= total) {
      break;
    }
    out.push_back(FromSeconds(t));
  }
  return out;
}

}  // namespace flexpipe
