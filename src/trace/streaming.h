// Streaming workload sources.
//
// The materialized path (WorkloadGenerator::GenerateUntil + RunWorkload) draws every
// arrival up front, pins the whole trace in memory, and pre-schedules one engine event
// per request — a quarter-million far-future events parked in the engine's staging
// tier for the cluster-scale benches, and a hard cap on how long a scenario can run.
// A streaming source instead holds O(1) state per stream and emits the next request on
// demand; the streaming runner (RunStreamingWorkload) drives it from one
// self-rescheduling arrival event, so engine and workload memory stay proportional to
// in-flight work, not trace length.
//
// Determinism contract: a StreamingWorkloadSource draws arrival gaps from its own RNG
// in exactly the order ArrivalProcess::GenerateUntil would, so for the same seed the
// streamed arrival sequence is bit-identical to the materialized one (pinned by
// trace_test's equivalence suite across Poisson/Gamma/MMPP). Token lengths come from a
// dedicated child RNG stream: the materialized generator interleaves length draws
// *after* the full arrival pass, an order no lazy generator can reproduce — arrival
// times are the pinned contract.
#ifndef FLEXPIPE_SRC_TRACE_STREAMING_H_
#define FLEXPIPE_SRC_TRACE_STREAMING_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/trace/workload.h"

namespace flexpipe {

// Pull interface the streaming runner drives: one request at a time, in
// non-decreasing arrival order.
class FLEXPIPE_THREAD_HOSTILE RequestStream {
 public:
  virtual ~RequestStream() = default;

  // Fills `*out` with the next request and returns true; false once the stream is
  // exhausted (`*out` is left untouched).
  virtual bool Next(RequestSpec* out) = 0;

  // Exclusive upper bound on arrival times (the configured duration); the runner
  // derives the default run horizon from it.
  virtual TimeNs end_time() const = 0;
};

// Lazily generates the requests GenerateUntil would have materialized: one arrival-gap
// draw per Next call, identical draw order, O(1) memory.
class StreamingWorkloadSource : public RequestStream {
 public:
  // `arrival_rng` must carry the same state the materialized path would hand to
  // GenerateUntil for bit-identical arrivals. `end` bounds arrivals (exclusive),
  // `start` offsets the first gap like GenerateUntil's `start`.
  StreamingWorkloadSource(const WorkloadGenerator::Config& config,
                          std::unique_ptr<ArrivalProcess> arrivals, Rng arrival_rng,
                          Rng length_rng, TimeNs end, TimeNs start = 0);

  // Mirrors WorkloadGenerator::GenerateWithCv: CV==1 -> Poisson, else Gamma renewal.
  // Arrivals draw from a copy of `base_rng`; lengths from its "lengths" child stream.
  static StreamingWorkloadSource WithCv(const WorkloadGenerator::Config& config,
                                        double rate_per_sec, double cv, TimeNs duration,
                                        const Rng& base_rng);

  bool Next(RequestSpec* out) override;
  TimeNs end_time() const override { return end_; }

  // Requests emitted so far (ids are 1-based and dense, like FillSpecs).
  uint64_t emitted() const { return next_id_ - 1; }

 private:
  WorkloadGenerator::Config config_;
  LengthSampler sampler_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng arrival_rng_;
  Rng length_rng_;
  TimeNs end_;
  TimeNs t_;
  RequestId next_id_ = 1;
  bool exhausted_ = false;
};

// Merges per-model streams into one time-ordered stream with the same ordering
// contract as MergeWorkloads: stable sort by arrival (ties break toward the earlier
// part index) and dense re-numbered ids. Holds one pending request per part — O(parts)
// memory regardless of trace length.
class MergedRequestStream : public RequestStream {
 public:
  explicit MergedRequestStream(std::vector<std::unique_ptr<RequestStream>> parts);

  bool Next(RequestSpec* out) override;
  TimeNs end_time() const override { return end_; }

 private:
  struct Head {
    RequestSpec spec;
    bool live = false;
  };

  std::vector<std::unique_ptr<RequestStream>> parts_;
  std::vector<Head> heads_;
  TimeNs end_ = 0;
  RequestId next_id_ = 1;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_TRACE_STREAMING_H_
