// Azure-Functions-like trace synthesizer.
//
// The paper's Fig. 1 analyses request-count CV of Alibaba/Azure traces over a month and
// finds up to 7x disagreement between CVs computed at 180 s, 3 h, and 12 h windows. We
// cannot ship the traces, so this module synthesizes a month of arrivals with the same
// structure: a diurnal rate curve, a weekly modulation, multiplicative log-normal noise
// at the minute scale, and Pareto-sized burst episodes. The Fig. 1 bench then runs the
// same windowed-CV analysis the paper does.
#ifndef FLEXPIPE_SRC_TRACE_AZURE_TRACE_H_
#define FLEXPIPE_SRC_TRACE_AZURE_TRACE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE AzureTraceSynthesizer {
 public:
  struct Config {
    int days = 31;
    double base_rate = 20.0;        // mean req/s
    double diurnal_amplitude = 0.6; // day/night swing as a fraction of base
    double weekly_dip = 0.35;       // weekend traffic reduction
    double minute_noise_sigma = 0.5;// log-normal sigma applied per minute
    double burst_rate_per_day = 8.0;// expected burst episodes per day
    double burst_magnitude = 6.0;   // peak multiplier of a burst
    double burst_mean_duration_s = 90.0;
    uint64_t seed = 42;
  };

  explicit AzureTraceSynthesizer(const Config& config);

  // Per-second expected arrival rate profile for the whole span.
  std::vector<double> RateProfile() const;

  // Draws actual arrival timestamps from the (doubly stochastic) rate profile.
  std::vector<TimeNs> GenerateArrivals() const;

  TimeNs span() const { return static_cast<TimeNs>(config_.days) * 24 * kHour; }
  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_TRACE_AZURE_TRACE_H_
