// Request specifications and workload generation.
//
// A workload is a time-ordered vector of RequestSpec. Prompt/output token lengths follow
// Splitwise-like distributions (log-normal bodies with heavy right tails, clamped to the
// model context window), since the paper uses the Splitwise corpus for prompt generation.
#ifndef FLEXPIPE_SRC_TRACE_WORKLOAD_H_
#define FLEXPIPE_SRC_TRACE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/trace/arrival.h"

namespace flexpipe {

using RequestId = uint64_t;

struct RequestSpec {
  RequestId id = 0;
  TimeNs arrival = 0;
  int model_index = 0;     // which model in a multi-model deployment
  int prompt_tokens = 0;   // prefill length
  int output_tokens = 0;   // decode steps to produce
  TimeNs slo = 0;          // end-to-end deadline (0 = no SLO / use system default)
  // Admission class for degraded-mode serving: 0 = highest priority, larger = more
  // sheddable. -1 (the default everywhere) means "unassigned" — the serving system
  // derives a deterministic class from the request id instead, so generators need no
  // extra RNG draws and arrival streams stay bit-identical to pre-priority builds.
  int priority = -1;
};

// Token-length sampler mirroring the Splitwise corpus shape: conversation-style prompts
// with a log-normal body and occasional long-context outliers.
class FLEXPIPE_THREAD_COMPATIBLE LengthSampler {
 public:
  struct Config {
    double prompt_median = 512.0;
    double prompt_sigma = 0.9;        // log-space sigma; p99/p50 ~ 8x
    int prompt_max = 4096;            // clamp to context window
    double output_median = 128.0;
    double output_sigma = 0.7;
    int output_max = 1024;
    double long_context_prob = 0.02;  // outliers near the context limit
  };

  LengthSampler() : LengthSampler(Config{}) {}
  explicit LengthSampler(const Config& config);

  int SamplePromptTokens(Rng& rng) const;
  int SampleOutputTokens(Rng& rng) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

// Builds complete workloads from an arrival process and a length sampler.
class FLEXPIPE_THREAD_COMPATIBLE WorkloadGenerator {
 public:
  struct Config {
    int model_index = 0;
    TimeNs slo = 0;
    LengthSampler::Config lengths;
  };

  WorkloadGenerator() : WorkloadGenerator(Config{}) {}
  explicit WorkloadGenerator(const Config& config);

  // `n` requests drawn from `arrivals` starting at t=0.
  std::vector<RequestSpec> Generate(ArrivalProcess& arrivals, Rng& rng, size_t n) const;

  // Requests until virtual time `end`.
  std::vector<RequestSpec> GenerateUntil(ArrivalProcess& arrivals, Rng& rng, TimeNs end) const;

  // Convenience: CV-parameterised workload, the common case in the paper's experiments.
  std::vector<RequestSpec> GenerateWithCv(Rng& rng, double rate_per_sec, double cv,
                                          TimeNs duration) const;

 private:
  std::vector<RequestSpec> FillSpecs(const std::vector<TimeNs>& times, Rng& rng) const;

  Config config_;
};

// Merges several per-model workloads into one time-ordered stream.
std::vector<RequestSpec> MergeWorkloads(std::vector<std::vector<RequestSpec>> parts);

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_TRACE_WORKLOAD_H_
