// Constrained pipeline partitioner (§5, Eq. 2).
//
// Solves
//   min_{S_k}  max_k [ t_c(S_k) + w_l * max(0, s_p(S_k)/B - C) + t_comm(S_k) + λ R(S_k) ]
//   s.t. stages tile the operator chain, s_p(S_k) <= M_GPU
// by dynamic programming over the operator chain. We balance the *maximum* stage cost
// (pipeline throughput is bottleneck-bound) while the paper writes the objective as a
// sum; for a chain with contiguous stages the two disagree only on how slack is spread
// among non-bottleneck stages, and min-max gives the balanced stages Eq. 8 requires.
//
// R(S_k) is the refactoring regulariser: a cut that lands inside a transformer block
// pays a penalty, so chosen boundaries stay on block edges whenever balance permits —
// those are exactly the boundaries future merges can reuse.
#ifndef FLEXPIPE_SRC_PARTITION_PARTITIONER_H_
#define FLEXPIPE_SRC_PARTITION_PARTITIONER_H_

#include <vector>

#include "src/common/thread_annotations.h"
#include "src/model/profiler.h"
#include "src/partition/plan.h"

namespace flexpipe {

struct PartitionerConfig {
  Bytes gpu_memory = GiB(40);                      // M_GPU
  BytesPerSec interstage_bandwidth = GbpsToBytesPerSec(100.0);  // B
  TimeNs overlap_target = FromMillis(30);          // C: tolerated load/compute overlap
  double load_weight = 0.02;                       // w_l on the (s_p/B - C)+ term
  double lambda_refactor = 0.25;                   // λ on R(S_k), relative to mean stage cost
  std::vector<int> ladder = {2, 4, 8, 16, 32};     // granularities to prebuild
};

class FLEXPIPE_THREAD_COMPATIBLE Partitioner {
 public:
  // One partitionable unit of the chain (an operator, or a finest-plan stage when
  // building coarser ladder rungs).
  struct Item {
    TimeNs compute = 0;
    Bytes params = 0;
    Bytes activation_out = 0;  // if a cut is placed after this item
    bool clean_boundary = true;
    int op_begin = 0;
    int op_end = 0;
  };

  Partitioner() : Partitioner(PartitionerConfig{}) {}
  explicit Partitioner(const PartitionerConfig& config);

  const PartitionerConfig& config() const { return config_; }

  // Direct operator-level partition into exactly `num_stages` stages.
  // CHECK-fails if no feasible partition exists under the memory cap.
  PipelinePlan Partition(const ModelProfile& profile, int num_stages) const;

  // Builds the full nested ladder: the finest granularity is partitioned at operator
  // level; every coarser plan merges contiguous finest stages (second DP), so boundaries
  // nest by construction.
  GranularityLadder BuildLadder(const ModelProfile& profile) const;

  // Shared min-max DP over a chain of items: tiles the chain into exactly `groups`
  // contiguous [begin, end) ranges minimizing the bottleneck group cost; empty result
  // when the memory cap admits no tiling. Prefix sums plus a monotone early break keep
  // it O(groups·n²); the randomized equivalence suite pins it to the naive O(groups·n³)
  // reference DP. Public so tests can cross-check it on synthetic chains directly.
  std::vector<std::pair<int, int>> SolveChain(const std::vector<Item>& items, int groups) const;

 private:
  PipelinePlan PlanFromGroups(const ModelProfile& profile, const std::vector<Item>& items,
                              const std::vector<std::pair<int, int>>& groups,
                              const std::vector<int>* item_fine_index) const;

  PartitionerConfig config_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_PARTITION_PARTITIONER_H_
