// Pipeline plans: the output of the partitioner and the unit of refactoring.
//
// A PipelinePlan assigns contiguous operator ranges to stages. Plans at different
// granularities for the same model are *nested*: every coarse-stage boundary is also a
// fine-stage boundary (§5: "the partitioning algorithm preserves the parameter grouping
// structure to enable future replica alignment"). Nesting is what makes inflight
// refactoring cheap — merging stages never re-shuffles parameters, and splitting only
// loads the missing complement.
#ifndef FLEXPIPE_SRC_PARTITION_PLAN_H_
#define FLEXPIPE_SRC_PARTITION_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/model/model_spec.h"

namespace flexpipe {

struct StagePlan {
  int op_begin = 0;  // [op_begin, op_end) over the computation graph
  int op_end = 0;
  int fine_begin = 0;  // [fine_begin, fine_end) over the finest plan's stages
  int fine_end = 0;
  Bytes param_bytes = 0;
  TimeNs compute_time = 0;            // at profiling conditions
  Bytes output_activation_bytes = 0;  // payload to the next stage (0 for the last)
  bool clean_boundary = true;         // stage ends on a transformer-block boundary
};

struct PipelinePlan {
  ModelSpec spec;
  std::vector<StagePlan> stages;

  int num_stages() const { return static_cast<int>(stages.size()); }
  Bytes MaxStageParams() const;
  TimeNs BottleneckCompute() const;
  TimeNs TotalCompute() const;
  // Fraction of total model parameters held by stage k.
  double StageFraction(int k) const;
  // Human-readable one-liner for logs and examples.
  std::string Describe() const;
};

// All granularities for one model, all cut from the same finest partition.
struct GranularityLadder {
  ModelSpec spec;
  std::vector<int> granularities;          // ascending stage counts, e.g. {2,4,8,16,32}
  std::map<int, PipelinePlan> plans;       // keyed by stage count

  const PipelinePlan& plan(int stages) const;
  int finest() const { return granularities.back(); }
  int coarsest() const { return granularities.front(); }
  // Next step up (finer) / down (coarser) from `stages`; returns `stages` at the ends.
  int FinerThan(int stages) const;
  int CoarserThan(int stages) const;

  // Verifies the nesting invariant; used by tests and CHECKed at construction.
  bool IsNested() const;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_PARTITION_PLAN_H_
