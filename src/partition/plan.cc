#include "src/partition/plan.h"

#include <algorithm>
#include <cstdio>

#include "src/common/macros.h"

namespace flexpipe {

Bytes PipelinePlan::MaxStageParams() const {
  Bytes best = 0;
  for (const auto& s : stages) {
    best = std::max(best, s.param_bytes);
  }
  return best;
}

TimeNs PipelinePlan::BottleneckCompute() const {
  TimeNs best = 0;
  for (const auto& s : stages) {
    best = std::max(best, s.compute_time);
  }
  return best;
}

TimeNs PipelinePlan::TotalCompute() const {
  TimeNs total = 0;
  for (const auto& s : stages) {
    total += s.compute_time;
  }
  return total;
}

double PipelinePlan::StageFraction(int k) const {
  FLEXPIPE_DCHECK(k >= 0 && k < num_stages());
  if (spec.param_bytes == 0) {
    return 0.0;
  }
  return static_cast<double>(stages[static_cast<size_t>(k)].param_bytes) /
         static_cast<double>(spec.param_bytes);
}

std::string PipelinePlan::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %d stages, max %.1f GiB/stage, bottleneck %.2f ms",
                spec.name.c_str(), num_stages(), ToGiB(MaxStageParams()),
                ToMillis(BottleneckCompute()));
  return buf;
}

const PipelinePlan& GranularityLadder::plan(int stages) const {
  auto it = plans.find(stages);
  FLEXPIPE_CHECK_MSG(it != plans.end(), "no plan at requested granularity");
  return it->second;
}

int GranularityLadder::FinerThan(int stages) const {
  for (int g : granularities) {
    if (g > stages) {
      return g;
    }
  }
  return stages;
}

int GranularityLadder::CoarserThan(int stages) const {
  int best = stages;
  for (int g : granularities) {
    if (g < stages) {
      best = g;  // granularities ascend, so the last one below wins
    }
  }
  return best;
}

bool GranularityLadder::IsNested() const {
  // Every plan's stage boundaries (in fine-stage coordinates) must be a subset of the
  // finest plan's boundaries — which is automatic if fine ranges tile [0, finest).
  for (const auto& [g, p] : plans) {
    int expect = 0;
    for (const auto& s : p.stages) {
      if (s.fine_begin != expect || s.fine_end <= s.fine_begin) {
        return false;
      }
      expect = s.fine_end;
    }
    if (expect != finest()) {
      return false;
    }
  }
  return true;
}

}  // namespace flexpipe
