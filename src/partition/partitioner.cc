#include "src/partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/macros.h"

namespace flexpipe {

namespace {
constexpr double kInfeasible = std::numeric_limits<double>::infinity();
}

Partitioner::Partitioner(const PartitionerConfig& config) : config_(config) {
  FLEXPIPE_CHECK(!config_.ladder.empty());
  FLEXPIPE_CHECK(std::is_sorted(config_.ladder.begin(), config_.ladder.end()));
}

std::vector<std::pair<int, int>> Partitioner::SolveChain(const std::vector<Item>& items,
                                                         int groups) const {
  const int n = static_cast<int>(items.size());
  FLEXPIPE_CHECK(groups >= 1);
  FLEXPIPE_CHECK_MSG(groups <= n, "more stages than partitionable units");

  // Prefix sums make any [j, i) group's compute/parameter totals O(1). Integer sums, so
  // the differences are exact — group costs are bit-identical to direct accumulation.
  std::vector<TimeNs> prefix_compute(static_cast<size_t>(n + 1), 0);
  std::vector<Bytes> prefix_params(static_cast<size_t>(n + 1), 0);
  for (int i = 0; i < n; ++i) {
    prefix_compute[static_cast<size_t>(i + 1)] =
        prefix_compute[static_cast<size_t>(i)] + items[static_cast<size_t>(i)].compute;
    prefix_params[static_cast<size_t>(i + 1)] =
        prefix_params[static_cast<size_t>(i)] + items[static_cast<size_t>(i)].params;
  }
  double mean_cost = static_cast<double>(prefix_compute[static_cast<size_t>(n)]) / groups;

  // Eq. 2's per-group cost for [begin, end); the caller has already established the
  // memory cap holds. Matches the pre-optimization GroupCost arithmetic exactly.
  auto group_cost = [&](int begin, int end, Bytes params) {
    TimeNs compute = prefix_compute[static_cast<size_t>(end)] -
                     prefix_compute[static_cast<size_t>(begin)];
    const Item& last = items[static_cast<size_t>(end - 1)];
    double cost = static_cast<double>(compute);
    // Communication of the stage's output activation to its successor.
    cost +=
        static_cast<double>(TransferTime(last.activation_out, config_.interstage_bandwidth));
    // (s_p / B - C)+ : parameter (re)load cost beyond what overlaps with compute.
    double load_ns = static_cast<double>(params) / config_.interstage_bandwidth * 1e9;
    double overlap_ns = static_cast<double>(config_.overlap_target);
    cost += config_.load_weight * std::max(0.0, load_ns - overlap_ns);
    // λ R(S_k): penalise cuts that land inside a transformer block.
    if (!last.clean_boundary) {
      cost += config_.lambda_refactor * mean_cost;
    }
    return cost;
  };

  // dp[k][i]: minimal max-group-cost splitting items [0, i) into k groups. The inner
  // split-point loop runs j *descending* so the group [j, i) grows as it proceeds: its
  // parameter total is monotonically non-decreasing, and the first cap violation ends
  // the scan — O(G·n²) overall instead of the old O(G·n³). Accepting ties with <=
  // leaves the smallest feasible j as the recorded parent, exactly like the old
  // ascending strict-< scan, so returned plans are identical.
  std::vector<std::vector<double>> dp(static_cast<size_t>(groups + 1),
                                      std::vector<double>(static_cast<size_t>(n + 1), kInfeasible));
  std::vector<std::vector<int>> parent(static_cast<size_t>(groups + 1),
                                       std::vector<int>(static_cast<size_t>(n + 1), -1));
  dp[0][0] = 0.0;
  for (int k = 1; k <= groups; ++k) {
    const std::vector<double>& prev = dp[static_cast<size_t>(k - 1)];
    std::vector<double>& cur = dp[static_cast<size_t>(k)];
    std::vector<int>& par = parent[static_cast<size_t>(k)];
    for (int i = k; i <= n - (groups - k); ++i) {
      double best = kInfeasible;
      int best_j = -1;
      for (int j = i - 1; j >= k - 1; --j) {
        Bytes params =
            prefix_params[static_cast<size_t>(i)] - prefix_params[static_cast<size_t>(j)];
        if (params > config_.gpu_memory) {
          break;  // params only grow as j decreases: nothing below j is feasible either
        }
        if (prev[static_cast<size_t>(j)] == kInfeasible) {
          continue;
        }
        double candidate = std::max(prev[static_cast<size_t>(j)], group_cost(j, i, params));
        if (candidate <= best) {
          best = candidate;
          best_j = j;
        }
      }
      cur[static_cast<size_t>(i)] = best;
      par[static_cast<size_t>(i)] = best_j;
    }
  }
  if (dp[static_cast<size_t>(groups)][static_cast<size_t>(n)] == kInfeasible) {
    return {};  // no feasible partition under the GPU memory cap
  }

  std::vector<std::pair<int, int>> result(static_cast<size_t>(groups));
  int i = n;
  for (int k = groups; k >= 1; --k) {
    int j = parent[static_cast<size_t>(k)][static_cast<size_t>(i)];
    FLEXPIPE_CHECK(j >= 0);
    result[static_cast<size_t>(k - 1)] = {j, i};
    i = j;
  }
  return result;
}

PipelinePlan Partitioner::PlanFromGroups(const ModelProfile& profile,
                                         const std::vector<Item>& items,
                                         const std::vector<std::pair<int, int>>& groups,
                                         const std::vector<int>* item_fine_index) const {
  PipelinePlan plan;
  plan.spec = profile.spec;
  plan.stages.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    auto [begin, end] = groups[g];
    StagePlan stage;
    stage.op_begin = items[static_cast<size_t>(begin)].op_begin;
    stage.op_end = items[static_cast<size_t>(end - 1)].op_end;
    for (int i = begin; i < end; ++i) {
      stage.param_bytes += items[static_cast<size_t>(i)].params;
      stage.compute_time += items[static_cast<size_t>(i)].compute;
    }
    const Item& last = items[static_cast<size_t>(end - 1)];
    stage.output_activation_bytes = (g + 1 < groups.size()) ? last.activation_out : 0;
    stage.clean_boundary = last.clean_boundary;
    if (item_fine_index != nullptr) {
      stage.fine_begin = (*item_fine_index)[static_cast<size_t>(begin)];
      stage.fine_end = (*item_fine_index)[static_cast<size_t>(end - 1)] + 1;
    } else {
      stage.fine_begin = static_cast<int>(g);
      stage.fine_end = static_cast<int>(g) + 1;
    }
    plan.stages.push_back(stage);
  }
  return plan;
}

PipelinePlan Partitioner::Partition(const ModelProfile& profile, int num_stages) const {
  FLEXPIPE_CHECK(!profile.ops.empty());
  ComputationGraph graph = ComputationGraph::Build(profile.spec);
  FLEXPIPE_CHECK(graph.op_count() == static_cast<int>(profile.ops.size()));

  std::vector<Item> items;
  items.reserve(profile.ops.size());
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    Item item;
    item.compute = profile.ops[i].compute_time;
    item.params = profile.ops[i].param_bytes;
    item.activation_out = profile.ops[i].activation_bytes;
    item.clean_boundary = graph.ops()[i].block_boundary_after;
    item.op_begin = static_cast<int>(i);
    item.op_end = static_cast<int>(i) + 1;
    items.push_back(item);
  }
  auto groups = SolveChain(items, num_stages);
  FLEXPIPE_CHECK_MSG(!groups.empty(), "no feasible partition under GPU memory cap");
  return PlanFromGroups(profile, items, groups, nullptr);
}

GranularityLadder Partitioner::BuildLadder(const ModelProfile& profile) const {
  GranularityLadder ladder;
  ladder.spec = profile.spec;

  int finest = config_.ladder.back();
  PipelinePlan finest_plan = Partition(profile, finest);
  ladder.plans[finest] = finest_plan;

  // Coarser plans merge contiguous finest stages — nesting by construction.
  std::vector<Item> items;
  std::vector<int> fine_index;
  items.reserve(finest_plan.stages.size());
  for (size_t i = 0; i < finest_plan.stages.size(); ++i) {
    const StagePlan& s = finest_plan.stages[i];
    Item item;
    item.compute = s.compute_time;
    item.params = s.param_bytes;
    item.activation_out = s.output_activation_bytes;
    item.clean_boundary = s.clean_boundary;
    item.op_begin = s.op_begin;
    item.op_end = s.op_end;
    items.push_back(item);
    fine_index.push_back(static_cast<int>(i));
  }
  for (int g : config_.ladder) {
    if (g == finest) {
      ladder.granularities.push_back(g);
      continue;
    }
    auto groups = SolveChain(items, g);
    if (groups.empty()) {
      // Granularity infeasible for this model on these GPUs (e.g. OPT-66B needs at
      // least 4 stages on 40 GB devices); the ladder simply starts finer.
      continue;
    }
    ladder.granularities.push_back(g);
    ladder.plans[g] = PlanFromGroups(profile, items, groups, &fine_index);
  }
  std::sort(ladder.granularities.begin(), ladder.granularities.end());
  FLEXPIPE_CHECK(!ladder.granularities.empty());
  FLEXPIPE_CHECK(ladder.IsNested());
  return ladder;
}

}  // namespace flexpipe
