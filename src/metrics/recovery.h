// Pipeline-stall recovery measurement (§9.3).
//
// The paper's rule: a stall begins when response latency exceeds 1.5x the baseline
// (P25 latency under normal operation) and ends when latency returns to within 1.2x.
// The elapsed time between those two events is one recovery duration. We walk the
// completion series event-by-event, which matches how the paper's monitor observes
// latency (per response, not per fixed bin).
#ifndef FLEXPIPE_SRC_METRICS_RECOVERY_H_
#define FLEXPIPE_SRC_METRICS_RECOVERY_H_

#include <vector>

#include "src/common/units.h"
#include "src/metrics/collector.h"

namespace flexpipe {

struct RecoveryConfig {
  double stall_factor = 1.5;
  double recover_factor = 1.2;
  double baseline_percentile = 25.0;
  // Latency is smoothed into fixed windows before thresholding (single completions are
  // too noisy to define an episode); 0 = event-by-event.
  TimeNs smoothing_window = 500 * kMillisecond;
};

struct RecoveryReport {
  int stall_events = 0;
  double baseline_latency_s = 0.0;
  double median_recovery_s = 0.0;
  double mean_recovery_s = 0.0;
  double max_recovery_s = 0.0;
  // Fraction of completions emitted while a stall was in progress.
  double stalled_fraction = 0.0;
};

RecoveryReport AnalyzeRecovery(const std::vector<CompletionSample>& completions,
                               const RecoveryConfig& config = RecoveryConfig{});

// -- Failure recovery (fig15) -----------------------------------------------------------
//
// Stall analysis above is latency-centric; failure storms are throughput-centric: the
// interesting signal is how deep goodput dips when instances die and how long it takes
// to climb back. We bin completions into fixed windows, take the pre-fault windows as
// the baseline rate, and for each injected fault measure:
//   * time-to-recover — first window at/after the fault whose rate is back to
//     `recovered_fraction` of baseline and stays there for `hold_windows` windows;
//   * dip depth — baseline minus the minimum windowed rate inside the recovery span;
//   * dip area — ∫ max(0, baseline - rate) dt over the span (requests of service lost).
// Overlapping faults merge into one episode (the storm case); per-fault numbers then
// describe the merged episode.

struct FailureRecoveryConfig {
  TimeNs window = 1 * kSecond;          // goodput binning granularity
  double recovered_fraction = 0.95;     // rate/baseline at which recovery is declared
  int hold_windows = 3;                 // consecutive windows required above threshold
  TimeNs baseline_lookback = 30 * kSecond;  // pre-fault span defining the baseline rate
};

struct FailureRecoveryReport {
  int fault_count = 0;                  // faults covered by the completion series
  double pre_fault_goodput_rps = 0.0;   // baseline rate before the first fault
  // Worst (max) episode recovery time. An episode still open at the horizon charges
  // its span-to-horizon as a lower bound, so "never recovered" dominates any real
  // recovery time instead of reading as zero.
  double time_to_recover_s = 0.0;
  double total_recovery_s = 0.0;        // summed episode recovery times
  double dip_depth_rps = 0.0;           // worst shortfall below baseline
  double dip_area_rps_s = 0.0;          // total requests of service lost to the dips
  bool recovered = false;               // every episode climbed back within the series
  // Degraded-mode serving metrics, filled by the FailureImpact overload below.
  double shed_rate = 0.0;               // brownout-shed requests / submitted
  // 1 - whole-pipeline losses / instances lost: 1.0 means every lost instance kept at
  // least one stage alive (spread placement doing its job), 0.0 means every loss took
  // the whole pipeline at once.
  double domain_survivability = 1.0;
  // Total wall time some server was fail-slow degraded (sum over episodes, clamped to
  // the horizon); filled by the FailureImpact overload from its degraded episodes.
  double degraded_span_s = 0.0;
};

// Degenerate baselines are handled rather than declared vacuously recovered: a fault
// with fewer than one full pre-fault window (or a service that produced nothing before
// the fault) falls back to the whole-series mean rate as its baseline, and a series
// with no completions at all reports recovered = false with the first-fault-to-horizon
// span charged as the recovery time (pinned in recovery_test).
FailureRecoveryReport AnalyzeFailureRecovery(
    const std::vector<CompletionSample>& completions, const std::vector<TimeNs>& fault_times,
    TimeNs horizon, const FailureRecoveryConfig& config = FailureRecoveryConfig{});

// One span during which the cluster had at least one fail-slow-degraded server
// (mirrors FaultInjector::DegradationEpisode without depending on the sim layer).
// clear <= start means the episode never cleared within the run.
struct DegradedSpan {
  TimeNs start = 0;
  TimeNs clear = 0;
};

// Capacity-loss accounting from the serving system's FailureStats, turned into the
// shed-rate / domain-survivability ratios of the report.
struct FailureImpact {
  int64_t submitted = 0;
  int64_t requests_shed = 0;
  int instances_lost = 0;
  int whole_pipeline_losses = 0;
  // Fail-slow degradation episodes (fig17): each span's start is folded into the
  // fault series — a gray failure dips goodput exactly like a loss does, so the TTR /
  // dip-area machinery applies unchanged — and the spans sum into degraded_span_s.
  std::vector<DegradedSpan> degraded_spans;
};

FailureRecoveryReport AnalyzeFailureRecovery(
    const std::vector<CompletionSample>& completions, const std::vector<TimeNs>& fault_times,
    TimeNs horizon, const FailureImpact& impact,
    const FailureRecoveryConfig& config = FailureRecoveryConfig{});

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_METRICS_RECOVERY_H_
