// Pipeline-stall recovery measurement (§9.3).
//
// The paper's rule: a stall begins when response latency exceeds 1.5x the baseline
// (P25 latency under normal operation) and ends when latency returns to within 1.2x.
// The elapsed time between those two events is one recovery duration. We walk the
// completion series event-by-event, which matches how the paper's monitor observes
// latency (per response, not per fixed bin).
#ifndef FLEXPIPE_SRC_METRICS_RECOVERY_H_
#define FLEXPIPE_SRC_METRICS_RECOVERY_H_

#include <vector>

#include "src/common/units.h"
#include "src/metrics/collector.h"

namespace flexpipe {

struct RecoveryConfig {
  double stall_factor = 1.5;
  double recover_factor = 1.2;
  double baseline_percentile = 25.0;
  // Latency is smoothed into fixed windows before thresholding (single completions are
  // too noisy to define an episode); 0 = event-by-event.
  TimeNs smoothing_window = 500 * kMillisecond;
};

struct RecoveryReport {
  int stall_events = 0;
  double baseline_latency_s = 0.0;
  double median_recovery_s = 0.0;
  double mean_recovery_s = 0.0;
  double max_recovery_s = 0.0;
  // Fraction of completions emitted while a stall was in progress.
  double stalled_fraction = 0.0;
};

RecoveryReport AnalyzeRecovery(const std::vector<CompletionSample>& completions,
                               const RecoveryConfig& config = RecoveryConfig{});

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_METRICS_RECOVERY_H_
