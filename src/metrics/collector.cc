#include "src/metrics/collector.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

MetricsCollector::MetricsCollector(TimeNs default_slo)
    : MetricsCollector(default_slo, /*track_per_model=*/true) {}

MetricsCollector::MetricsCollector(TimeNs default_slo, bool track_per_model)
    : default_slo_(default_slo), track_per_model_(track_per_model) {}

void MetricsCollector::OnComplete(const Request& request) {
  FLEXPIPE_CHECK(request.done());
  TimeNs latency = request.TotalLatency();
  FLEXPIPE_CHECK(latency >= 0);
  ++completed_;
  if (request.MetSlo(default_slo_)) {
    ++within_slo_;
  }
  latency_.Add(ToSeconds(latency));
  if (request.PrefillLatency() >= 0) {
    prefill_.Add(ToSeconds(request.PrefillLatency()));
  }
  queue_s_.Add(ToSeconds(request.QueueTime()));
  exec_s_.Add(ToSeconds(request.exec_ns));
  comm_s_.Add(ToSeconds(request.comm_ns));
  completions_.push_back(CompletionSample{request.done_time, latency});
  if (track_per_model_) {
    auto it = per_model_.find(request.model_id());
    if (it == per_model_.end()) {
      it = per_model_
               .emplace(request.model_id(),
                        MetricsCollector(default_slo_, /*track_per_model=*/false))
               .first;
    }
    it->second.OnComplete(request);
  }
}

const MetricsCollector* MetricsCollector::ForModel(int model_id) const {
  auto it = per_model_.find(model_id);
  return it != per_model_.end() ? &it->second : nullptr;
}

std::vector<int> MetricsCollector::ModelsSeen() const {
  std::vector<int> models;
  models.reserve(per_model_.size());
  for (const auto& [model_id, collector] : per_model_) {
    models.push_back(model_id);
  }
  return models;
}

double MetricsCollector::GoodputRate(int64_t submitted) const {
  if (submitted <= 0) {
    return 0.0;
  }
  return static_cast<double>(within_slo_) / static_cast<double>(submitted);
}

double MetricsCollector::GoodputPerSec(TimeNs horizon) const {
  if (horizon <= 0) {
    return 0.0;
  }
  return static_cast<double>(within_slo_) / ToSeconds(horizon);
}

LatencyBreakdown MetricsCollector::MeanBreakdown() const {
  LatencyBreakdown b;
  b.queue_s = queue_s_.mean();
  b.exec_s = exec_s_.mean();
  b.comm_s = comm_s_.mean();
  b.total_s = b.queue_s + b.exec_s + b.comm_s;
  return b;
}

double MetricsCollector::MeanLatencyInWindowSec(TimeNs begin, TimeNs end) const {
  auto lo = std::lower_bound(completions_.begin(), completions_.end(), begin,
                             [](const CompletionSample& s, TimeNs t) { return s.done_time < t; });
  RunningStats stats;
  for (auto it = lo; it != completions_.end() && it->done_time < end; ++it) {
    stats.Add(ToSeconds(it->latency));
  }
  return stats.mean();
}

}  // namespace flexpipe
