#include "src/metrics/collector.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

MetricsCollector::MetricsCollector(TimeNs default_slo)
    : MetricsCollector(default_slo, /*track_per_model=*/true) {}

MetricsCollector::MetricsCollector(TimeNs default_slo, bool track_per_model)
    : default_slo_(default_slo), track_per_model_(track_per_model) {}

void MetricsCollector::ReserveModels(int model_count) {
  if (!track_per_model_ || model_count <= 0) {
    return;
  }
  if (per_model_.size() < static_cast<size_t>(model_count)) {
    per_model_.resize(static_cast<size_t>(model_count));
  }
}

void MetricsCollector::SetKeepCompletionSeries(bool keep) {
  FLEXPIPE_CHECK_MSG(completed_ == 0, "series mode must be set before completions");
  keep_completion_series_ = keep;
}

void MetricsCollector::OnComplete(const Request& request) {
  FLEXPIPE_CHECK(request.done());
  TimeNs latency = request.TotalLatency();
  FLEXPIPE_CHECK(latency >= 0);
  ++completed_;
  if (request.MetSlo(default_slo_)) {
    ++within_slo_;
  }
  latency_.Add(ToSeconds(latency));
  if (request.PrefillLatency() >= 0) {
    prefill_.Add(ToSeconds(request.PrefillLatency()));
  }
  queue_s_.Add(ToSeconds(request.QueueTime()));
  exec_s_.Add(ToSeconds(request.exec_ns));
  comm_s_.Add(ToSeconds(request.comm_ns));
  if (keep_completion_series_) {
    FLEXPIPE_DCHECK(completions_.empty() ||
                    completions_.back().done_time <= request.done_time);
    if (latency_prefix_s_.empty()) {
      latency_prefix_s_.push_back(0.0);
    }
    latency_prefix_s_.push_back(latency_prefix_s_.back() + ToSeconds(latency));
    completions_.push_back(CompletionSample{request.done_time, latency});
  }
  if (track_per_model_) {
    int model_id = request.model_id();
    FLEXPIPE_CHECK(model_id >= 0);
    if (static_cast<size_t>(model_id) >= per_model_.size()) {
      per_model_.resize(static_cast<size_t>(model_id) + 1);
    }
    std::unique_ptr<MetricsCollector>& child = per_model_[static_cast<size_t>(model_id)];
    if (child == nullptr) {
      child.reset(new MetricsCollector(default_slo_, /*track_per_model=*/false));
      child->keep_completion_series_ = keep_completion_series_;
    }
    child->OnComplete(request);
  }
}

const MetricsCollector* MetricsCollector::ForModel(int model_id) const {
  if (model_id < 0 || static_cast<size_t>(model_id) >= per_model_.size()) {
    return nullptr;
  }
  return per_model_[static_cast<size_t>(model_id)].get();
}

std::vector<int> MetricsCollector::ModelsSeen() const {
  std::vector<int> models;
  for (size_t i = 0; i < per_model_.size(); ++i) {
    if (per_model_[i] != nullptr) {
      models.push_back(static_cast<int>(i));
    }
  }
  return models;
}

double MetricsCollector::GoodputRate(int64_t submitted) const {
  if (submitted <= 0) {
    return 0.0;
  }
  return static_cast<double>(within_slo_) / static_cast<double>(submitted);
}

double MetricsCollector::GoodputPerSec(TimeNs horizon) const {
  if (horizon <= 0) {
    return 0.0;
  }
  return static_cast<double>(within_slo_) / ToSeconds(horizon);
}

LatencyBreakdown MetricsCollector::MeanBreakdown() const {
  LatencyBreakdown b;
  b.queue_s = queue_s_.mean();
  b.exec_s = exec_s_.mean();
  b.comm_s = comm_s_.mean();
  b.total_s = b.queue_s + b.exec_s + b.comm_s;
  return b;
}

double MetricsCollector::MeanLatencyInWindowSec(TimeNs begin, TimeNs end) const {
  auto by_time = [](const CompletionSample& s, TimeNs t) { return s.done_time < t; };
  auto lo = std::lower_bound(completions_.begin(), completions_.end(), begin, by_time);
  auto hi = std::lower_bound(lo, completions_.end(), end, by_time);
  if (lo == hi) {
    return 0.0;
  }
  size_t lo_i = static_cast<size_t>(lo - completions_.begin());
  size_t hi_i = static_cast<size_t>(hi - completions_.begin());
  return (latency_prefix_s_[hi_i] - latency_prefix_s_[lo_i]) /
         static_cast<double>(hi_i - lo_i);
}

}  // namespace flexpipe
