#include "src/metrics/recovery.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/common/stats.h"

namespace flexpipe {

RecoveryReport AnalyzeRecovery(const std::vector<CompletionSample>& completions,
                               const RecoveryConfig& config) {
  RecoveryReport report;
  if (completions.size() < 8) {
    return report;
  }
  std::vector<double> latencies;
  latencies.reserve(completions.size());
  for (const auto& c : completions) {
    latencies.push_back(ToSeconds(c.latency));
  }
  double baseline = Percentile(latencies, config.baseline_percentile);
  report.baseline_latency_s = baseline;
  if (baseline <= 0.0) {
    return report;
  }
  const double stall_at = baseline * config.stall_factor;
  const double recover_at = baseline * config.recover_factor;

  // Optional smoothing: collapse completions into per-window mean-latency samples.
  std::vector<CompletionSample> series;
  if (config.smoothing_window > 0) {
    TimeNs window = config.smoothing_window;
    TimeNs bucket_start = completions.front().done_time;
    double sum = 0.0;
    int64_t count = 0;
    for (const auto& c : completions) {
      while (c.done_time >= bucket_start + window) {
        if (count > 0) {
          series.push_back({bucket_start + window,
                            static_cast<TimeNs>(sum / static_cast<double>(count))});
        }
        bucket_start += window;
        sum = 0.0;
        count = 0;
      }
      sum += static_cast<double>(c.latency);
      ++count;
    }
    if (count > 0) {
      series.push_back({bucket_start + window,
                        static_cast<TimeNs>(sum / static_cast<double>(count))});
    }
  } else {
    series = completions;
  }

  std::vector<double> durations;
  bool in_stall = false;
  TimeNs stall_start = 0;
  int64_t stalled_completions = 0;
  for (const auto& c : series) {
    double lat = ToSeconds(c.latency);
    if (!in_stall) {
      if (lat > stall_at) {
        in_stall = true;
        stall_start = c.done_time;
        ++stalled_completions;
      }
    } else {
      ++stalled_completions;
      if (lat <= recover_at) {
        durations.push_back(ToSeconds(c.done_time - stall_start));
        in_stall = false;
      }
    }
  }
  report.stall_events = static_cast<int>(durations.size());
  report.stalled_fraction =
      static_cast<double>(stalled_completions) / static_cast<double>(series.size());
  if (!durations.empty()) {
    RunningStats stats;
    for (double d : durations) {
      stats.Add(d);
    }
    report.mean_recovery_s = stats.mean();
    report.max_recovery_s = stats.max();
    report.median_recovery_s = Percentile(durations, 50.0);
  }
  return report;
}

FailureRecoveryReport AnalyzeFailureRecovery(const std::vector<CompletionSample>& completions,
                                             const std::vector<TimeNs>& fault_times,
                                             TimeNs horizon,
                                             const FailureRecoveryConfig& config) {
  FailureRecoveryReport report;
  FLEXPIPE_CHECK(config.window > 0 && config.hold_windows > 0);
  std::vector<TimeNs> faults;
  for (TimeNs t : fault_times) {
    if (t >= 0 && t < horizon) {
      faults.push_back(t);
    }
  }
  std::sort(faults.begin(), faults.end());
  report.fault_count = static_cast<int>(faults.size());
  if (faults.empty()) {
    report.recovered = true;  // nothing to recover from
    return report;
  }

  // Windowed goodput over [0, horizon).
  const double window_s = ToSeconds(config.window);
  const int64_t num_windows = (horizon + config.window - 1) / config.window;
  std::vector<double> rate(static_cast<size_t>(num_windows), 0.0);
  for (const auto& c : completions) {
    if (c.done_time < 0 || c.done_time >= horizon) {
      continue;
    }
    rate[static_cast<size_t>(c.done_time / config.window)] += 1.0 / window_s;
  }

  // Baseline: mean rate over the lookback windows fully before the first fault.
  const int64_t first_fault_w = faults.front() / config.window;
  int64_t base_begin = (faults.front() - config.baseline_lookback) / config.window;
  base_begin = std::max<int64_t>(base_begin, 0);
  double base_sum = 0.0;
  int64_t base_count = 0;
  for (int64_t w = base_begin; w < first_fault_w; ++w) {
    base_sum += rate[static_cast<size_t>(w)];
    ++base_count;
  }
  double baseline = base_count > 0 ? base_sum / static_cast<double>(base_count) : 0.0;
  if (baseline <= 0.0) {
    // Degenerate baseline: the fault landed with less than one full pre-fault window
    // (base_count == 0) or before the service completed anything. Fall back to the
    // whole-series mean rate so the episode is still measured against *some* service
    // level instead of being declared vacuously recovered.
    double total = 0.0;
    for (double r : rate) {
      total += r;
    }
    baseline = num_windows > 0 ? total / static_cast<double>(num_windows) : 0.0;
  }
  report.pre_fault_goodput_rps = baseline;
  if (baseline <= 0.0) {
    // No completions anywhere in the series: with real faults injected this is a dead
    // system. Charge the first-fault-to-horizon span as the (never-ending) episode.
    report.recovered = false;
    double open_s = ToSeconds(horizon - faults.front());
    report.time_to_recover_s = open_s;
    report.total_recovery_s = open_s;
    return report;
  }
  const double threshold = baseline * config.recovered_fraction;

  // One pass over the windows from the first fault. Faults landing inside an open
  // episode merge into it (the storm case) by resetting the hold streak.
  size_t next_fault = 0;
  bool in_episode = false;
  int64_t episode_start_w = 0;
  int ok_streak = 0;
  for (int64_t w = first_fault_w; w < num_windows; ++w) {
    while (next_fault < faults.size() &&
           faults[next_fault] / config.window == w) {
      if (!in_episode) {
        in_episode = true;
        episode_start_w = w;
      }
      ok_streak = 0;
      ++next_fault;
    }
    if (!in_episode) {
      continue;
    }
    double shortfall = baseline - rate[static_cast<size_t>(w)];
    if (shortfall > 0.0) {
      report.dip_area_rps_s += shortfall * window_s;
      report.dip_depth_rps = std::max(report.dip_depth_rps, shortfall);
    }
    ok_streak = rate[static_cast<size_t>(w)] >= threshold ? ok_streak + 1 : 0;
    if (ok_streak >= config.hold_windows) {
      int64_t recover_w = w - config.hold_windows + 1;
      double recovery_s = static_cast<double>(recover_w - episode_start_w) * window_s;
      report.time_to_recover_s = std::max(report.time_to_recover_s, recovery_s);
      report.total_recovery_s += recovery_s;
      in_episode = false;
      ok_streak = 0;
    }
  }
  report.recovered = !in_episode && next_fault == faults.size();
  if (in_episode) {
    // The episode never closed: charge the span from episode start to the horizon as a
    // lower bound on its recovery time, so an arm that never climbs back reports a
    // *worse* time-to-recover than any arm that did (not a vacuous zero).
    double open_s = static_cast<double>(num_windows - episode_start_w) * window_s;
    report.time_to_recover_s = std::max(report.time_to_recover_s, open_s);
    report.total_recovery_s += open_s;
  }
  return report;
}

FailureRecoveryReport AnalyzeFailureRecovery(const std::vector<CompletionSample>& completions,
                                             const std::vector<TimeNs>& fault_times,
                                             TimeNs horizon, const FailureImpact& impact,
                                             const FailureRecoveryConfig& config) {
  // Fold degradation-episode starts into the fault series: a gray failure dents
  // goodput exactly like a loss, so episode boundaries drive the same TTR machinery.
  std::vector<TimeNs> all_faults = fault_times;
  for (const DegradedSpan& span : impact.degraded_spans) {
    all_faults.push_back(span.start);
  }
  FailureRecoveryReport report =
      AnalyzeFailureRecovery(completions, all_faults, horizon, config);
  for (const DegradedSpan& span : impact.degraded_spans) {
    TimeNs start = std::min(std::max<TimeNs>(span.start, 0), horizon);
    TimeNs clear = span.clear > span.start ? std::min(span.clear, horizon) : horizon;
    report.degraded_span_s += ToSeconds(clear - start);
  }
  if (impact.submitted > 0) {
    report.shed_rate =
        static_cast<double>(impact.requests_shed) / static_cast<double>(impact.submitted);
  }
  if (impact.instances_lost > 0) {
    report.domain_survivability = 1.0 - static_cast<double>(impact.whole_pipeline_losses) /
                                            static_cast<double>(impact.instances_lost);
  }
  return report;
}

}  // namespace flexpipe
