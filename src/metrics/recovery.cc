#include "src/metrics/recovery.h"

#include <algorithm>

#include "src/common/stats.h"

namespace flexpipe {

RecoveryReport AnalyzeRecovery(const std::vector<CompletionSample>& completions,
                               const RecoveryConfig& config) {
  RecoveryReport report;
  if (completions.size() < 8) {
    return report;
  }
  std::vector<double> latencies;
  latencies.reserve(completions.size());
  for (const auto& c : completions) {
    latencies.push_back(ToSeconds(c.latency));
  }
  double baseline = Percentile(latencies, config.baseline_percentile);
  report.baseline_latency_s = baseline;
  if (baseline <= 0.0) {
    return report;
  }
  const double stall_at = baseline * config.stall_factor;
  const double recover_at = baseline * config.recover_factor;

  // Optional smoothing: collapse completions into per-window mean-latency samples.
  std::vector<CompletionSample> series;
  if (config.smoothing_window > 0) {
    TimeNs window = config.smoothing_window;
    TimeNs bucket_start = completions.front().done_time;
    double sum = 0.0;
    int64_t count = 0;
    for (const auto& c : completions) {
      while (c.done_time >= bucket_start + window) {
        if (count > 0) {
          series.push_back({bucket_start + window,
                            static_cast<TimeNs>(sum / static_cast<double>(count))});
        }
        bucket_start += window;
        sum = 0.0;
        count = 0;
      }
      sum += static_cast<double>(c.latency);
      ++count;
    }
    if (count > 0) {
      series.push_back({bucket_start + window,
                        static_cast<TimeNs>(sum / static_cast<double>(count))});
    }
  } else {
    series = completions;
  }

  std::vector<double> durations;
  bool in_stall = false;
  TimeNs stall_start = 0;
  int64_t stalled_completions = 0;
  for (const auto& c : series) {
    double lat = ToSeconds(c.latency);
    if (!in_stall) {
      if (lat > stall_at) {
        in_stall = true;
        stall_start = c.done_time;
        ++stalled_completions;
      }
    } else {
      ++stalled_completions;
      if (lat <= recover_at) {
        durations.push_back(ToSeconds(c.done_time - stall_start));
        in_stall = false;
      }
    }
  }
  report.stall_events = static_cast<int>(durations.size());
  report.stalled_fraction =
      static_cast<double>(stalled_completions) / static_cast<double>(series.size());
  if (!durations.empty()) {
    RunningStats stats;
    for (double d : durations) {
      stats.Add(d);
    }
    report.mean_recovery_s = stats.mean();
    report.max_recovery_s = stats.max();
    report.median_recovery_s = Percentile(durations, 50.0);
  }
  return report;
}

}  // namespace flexpipe
