// Experiment metrics collection.
//
// One collector per serving-system run. It ingests completed requests and produces the
// quantities the paper's figures report: goodput (completions within SLO), end-to-end
// latency percentiles, the queue/execution/communication breakdown (Fig. 8), prefill
// latency (Fig. 13), and a completion-time series for burst/recovery analysis
// (Fig. 9, Fig. 11).
#ifndef FLEXPIPE_SRC_METRICS_COLLECTOR_H_
#define FLEXPIPE_SRC_METRICS_COLLECTOR_H_

#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/runtime/request.h"

namespace flexpipe {

struct CompletionSample {
  TimeNs done_time = 0;
  TimeNs latency = 0;
};

struct LatencyBreakdown {
  double queue_s = 0.0;
  double exec_s = 0.0;
  double comm_s = 0.0;
  double total_s = 0.0;
};

class MetricsCollector {
 public:
  // `default_slo` classifies goodput when a request carries no SLO of its own;
  // 0 = every completion counts.
  explicit MetricsCollector(TimeNs default_slo = 0);

  void OnComplete(const Request& request);

  int64_t completed() const { return completed_; }
  int64_t completed_within_slo() const { return within_slo_; }
  double GoodputRate(int64_t submitted) const;
  // Completions within SLO per second over [0, horizon].
  double GoodputPerSec(TimeNs horizon) const;

  // Mean component breakdown over all completions (seconds).
  LatencyBreakdown MeanBreakdown() const;

  double LatencyPercentileSec(double q) const { return latency_.Percentile(q); }
  double MeanLatencySec() const { return latency_.mean(); }
  double PrefillPercentileSec(double q) const { return prefill_.Percentile(q); }
  double MeanPrefillSec() const { return prefill_.mean(); }

  const Histogram& latency_histogram() const { return latency_; }
  const Histogram& prefill_histogram() const { return prefill_; }

  // Completion series ordered by done_time (completions arrive in time order in a DES).
  const std::vector<CompletionSample>& completions() const { return completions_; }

  // Mean response time of completions inside [begin, end) — Fig. 9 timeline points.
  double MeanLatencyInWindowSec(TimeNs begin, TimeNs end) const;

  // -- Per-model views (multi-model serving) -------------------------------------------
  // Sub-collector for one model's completions; nullptr when the model completed nothing.
  const MetricsCollector* ForModel(int model_id) const;
  // Model ids with at least one completion, ascending.
  std::vector<int> ModelsSeen() const;

 private:
  MetricsCollector(TimeNs default_slo, bool track_per_model);

  TimeNs default_slo_;
  bool track_per_model_ = true;
  int64_t completed_ = 0;
  int64_t within_slo_ = 0;
  Histogram latency_{1e-4, 1.03};
  Histogram prefill_{1e-4, 1.03};
  RunningStats queue_s_;
  RunningStats exec_s_;
  RunningStats comm_s_;
  std::vector<CompletionSample> completions_;
  // Children never track per-model themselves (one level of nesting only).
  std::map<int, MetricsCollector> per_model_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_METRICS_COLLECTOR_H_
