// Experiment metrics collection.
//
// One collector per serving-system run. It ingests completed requests and produces the
// quantities the paper's figures report: goodput (completions within SLO), end-to-end
// latency percentiles, the queue/execution/communication breakdown (Fig. 8), prefill
// latency (Fig. 13), and a completion-time series for burst/recovery analysis
// (Fig. 9, Fig. 11).
//
// OnComplete sits on the per-request hot path of the cluster-scale benches, so the
// per-model fan-out is a flat vector indexed by model_id (pre-sized via ReserveModels
// when the serving system declares its deployments) rather than a map lookup per
// completion. Endurance runs that stream millions of requests disable the completion
// series (SetKeepCompletionSeries) so collector memory stays bounded by the histogram
// bucket count, not the trace length.
#ifndef FLEXPIPE_SRC_METRICS_COLLECTOR_H_
#define FLEXPIPE_SRC_METRICS_COLLECTOR_H_

#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/runtime/request.h"

namespace flexpipe {

struct CompletionSample {
  TimeNs done_time = 0;
  TimeNs latency = 0;
};

struct LatencyBreakdown {
  double queue_s = 0.0;
  double exec_s = 0.0;
  double comm_s = 0.0;
  double total_s = 0.0;
};

class FLEXPIPE_THREAD_HOSTILE MetricsCollector {
 public:
  // `default_slo` classifies goodput when a request carries no SLO of its own;
  // 0 = every completion counts.
  explicit MetricsCollector(TimeNs default_slo = 0);

  void OnComplete(const Request& request);

  // Pre-sizes the per-model table so OnComplete never grows it mid-run (mirrors the
  // placement registry, which is pre-sized from the cluster).
  void ReserveModels(int model_count);

  // Streaming endurance runs retain no per-completion series: histograms and running
  // stats keep every headline metric, while memory stays O(1) per completion. Must be
  // set before the first completion.
  void SetKeepCompletionSeries(bool keep);

  int64_t completed() const { return completed_; }
  int64_t completed_within_slo() const { return within_slo_; }
  double GoodputRate(int64_t submitted) const;
  // Completions within SLO per second over [0, horizon].
  double GoodputPerSec(TimeNs horizon) const;

  // Mean component breakdown over all completions (seconds).
  LatencyBreakdown MeanBreakdown() const;

  double LatencyPercentileSec(double q) const { return latency_.Percentile(q); }
  double MeanLatencySec() const { return latency_.mean(); }
  double PrefillPercentileSec(double q) const { return prefill_.Percentile(q); }
  double MeanPrefillSec() const { return prefill_.mean(); }

  const Histogram& latency_histogram() const { return latency_; }
  const Histogram& prefill_histogram() const { return prefill_; }

  // Completion series ordered by done_time (completions arrive in time order in a DES).
  // Empty when the series is disabled.
  const std::vector<CompletionSample>& completions() const { return completions_; }

  // Mean response time of completions inside [begin, end) — Fig. 9 timeline points.
  // O(log n): binary search on the done_time-sorted series plus a latency prefix sum.
  double MeanLatencyInWindowSec(TimeNs begin, TimeNs end) const;

  // -- Per-model views (multi-model serving) -------------------------------------------
  // Sub-collector for one model's completions; nullptr when the model completed nothing.
  const MetricsCollector* ForModel(int model_id) const;
  // Model ids with at least one completion, ascending.
  std::vector<int> ModelsSeen() const;

 private:
  MetricsCollector(TimeNs default_slo, bool track_per_model);

  TimeNs default_slo_;
  bool track_per_model_ = true;
  bool keep_completion_series_ = true;
  int64_t completed_ = 0;
  int64_t within_slo_ = 0;
  Histogram latency_{1e-4, 1.03};
  Histogram prefill_{1e-4, 1.03};
  RunningStats queue_s_;
  RunningStats exec_s_;
  RunningStats comm_s_;
  std::vector<CompletionSample> completions_;
  // latency_prefix_s_[i] = sum of the first i completion latencies in seconds, so any
  // window mean is two binary searches plus one subtraction.
  std::vector<double> latency_prefix_s_;
  // Flat per-model table indexed by model_id; slots are null until the model's first
  // completion. Children never track per-model themselves (one level of nesting only).
  std::vector<std::unique_ptr<MetricsCollector>> per_model_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_METRICS_COLLECTOR_H_
