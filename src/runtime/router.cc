#include "src/runtime/router.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

Router::Router(Simulation* sim) : sim_(sim) { FLEXPIPE_CHECK(sim != nullptr); }

void Router::RegisterInstance(PipelineInstance* instance) {
  FLEXPIPE_CHECK(instance != nullptr);
  instances_.push_back(instance);
  instances_by_model_[instance->model_id()].push_back(instance);
  PumpModel(instance->model_id());
}

void Router::DeregisterInstance(int instance_id) {
  auto drop = [instance_id](std::vector<PipelineInstance*>& list) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [instance_id](const PipelineInstance* i) {
                                return i->id() == instance_id;
                              }),
               list.end());
  };
  drop(instances_);
  for (auto& [model_id, list] : instances_by_model_) {
    drop(list);
  }
  // Re-dispatch immediately: queued requests must not sit idle until the next
  // unrelated Submit (that wait would be charged to queueing delay).
  Pump();
}

void Router::Submit(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  ++total_submitted_;
  ModelQueue& queue = queues_[request->model_id()];
  queue.requests.push_back(request);
  ++total_queued_;
  NoteQueueHighWater();
  // Not a capacity event: if the head is already blocked, this request queues behind it
  // without rescanning the fleet.
  PumpQueue(queue, /*capacity_event=*/false);
}

void Router::RequeueFront(std::vector<Request*> requests) {
  // Preserve relative order within each model: insert in reverse at the front.
  for (auto it = requests.rbegin(); it != requests.rend(); ++it) {
    queues_[(*it)->model_id()].requests.push_front(*it);
    ++total_queued_;
  }
  NoteQueueHighWater();
  // The heads changed, so blocked verdicts are stale: full capacity-event rescan.
  Pump();
}

int Router::queue_length_for(int model_id) const {
  auto it = queues_.find(model_id);
  return it != queues_.end() ? static_cast<int>(it->second.requests.size()) : 0;
}

void Router::NoteQueueHighWater() {
  max_queue_length_ = std::max(max_queue_length_, static_cast<int64_t>(total_queued_));
}

PipelineInstance* Router::PickInstance(const Request& request) const {
  // Least-loaded active instance serving the request's model. Requests are never
  // parked on still-loading instances: they wait in the router queue — where any
  // instance that frees capacity can claim them — and loading instances pump the
  // router the moment they activate.
  auto bucket = instances_by_model_.find(request.model_id());
  if (bucket == instances_by_model_.end()) {
    return nullptr;
  }
  PipelineInstance* best_active = nullptr;
  double best_load = 0.0;
  for (PipelineInstance* inst : bucket->second) {
    if (inst->state() != InstanceState::kActive || !inst->CanAdmit(request)) {
      continue;
    }
    double load = inst->LoadFraction();
    if (best_active == nullptr || load < best_load) {
      best_load = load;
      best_active = inst;
    }
  }
  return best_active;
}

void Router::PumpQueue(ModelQueue& queue, bool capacity_event) {
  if (queue.blocked && !capacity_event) {
    return;  // head already failed placement and nothing has freed capacity since
  }
  while (!queue.requests.empty()) {
    Request* request = queue.requests.front();
    PipelineInstance* target = PickInstance(*request);
    if (target == nullptr) {
      break;
    }
    queue.requests.pop_front();
    --total_queued_;
    target->Admit(request);
  }
  queue.blocked = !queue.requests.empty();
}

void Router::Pump() {
  // Models drain independently: one model's starved queue must not head-of-line block
  // another model's dispatch.
  for (auto& [model_id, queue] : queues_) {
    PumpQueue(queue, /*capacity_event=*/true);
  }
}

void Router::PumpModel(int model_id) {
  auto it = queues_.find(model_id);
  if (it != queues_.end()) {
    PumpQueue(it->second, /*capacity_event=*/true);
  }
}

int Router::TotalOutstanding() const {
  int total = queue_length();
  for (const PipelineInstance* inst : instances_) {
    total += inst->inflight() + inst->pending();
  }
  return total;
}

int Router::OutstandingForModel(int model_id) const {
  int total = queue_length_for(model_id);
  auto bucket = instances_by_model_.find(model_id);
  if (bucket != instances_by_model_.end()) {
    for (const PipelineInstance* inst : bucket->second) {
      total += inst->inflight() + inst->pending();
    }
  }
  return total;
}

}  // namespace flexpipe
