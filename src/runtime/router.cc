#include "src/runtime/router.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

Router::Router(Simulation* sim) : sim_(sim) { FLEXPIPE_CHECK(sim != nullptr); }

void Router::RegisterInstance(PipelineInstance* instance) {
  FLEXPIPE_CHECK(instance != nullptr);
  instances_.push_back(instance);
  Pump();
}

void Router::DeregisterInstance(int instance_id) {
  instances_.erase(std::remove_if(instances_.begin(), instances_.end(),
                                  [instance_id](const PipelineInstance* i) {
                                    return i->id() == instance_id;
                                  }),
                   instances_.end());
  // Re-dispatch immediately: queued requests must not sit idle until the next
  // unrelated Submit (that wait would be charged to queueing delay).
  Pump();
}

void Router::Submit(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  ++total_submitted_;
  queues_[request->model_id()].push_back(request);
  NoteQueueHighWater();
  Pump();
}

void Router::RequeueFront(std::vector<Request*> requests) {
  // Preserve relative order within each model: insert in reverse at the front.
  for (auto it = requests.rbegin(); it != requests.rend(); ++it) {
    queues_[(*it)->model_id()].push_front(*it);
  }
  NoteQueueHighWater();
  Pump();
}

int Router::queue_length() const {
  int total = 0;
  for (const auto& [model_id, queue] : queues_) {
    total += static_cast<int>(queue.size());
  }
  return total;
}

int Router::queue_length_for(int model_id) const {
  auto it = queues_.find(model_id);
  return it != queues_.end() ? static_cast<int>(it->second.size()) : 0;
}

void Router::NoteQueueHighWater() {
  max_queue_length_ = std::max(max_queue_length_, static_cast<int64_t>(queue_length()));
}

PipelineInstance* Router::PickInstance(const Request& request) const {
  // Least-loaded active instance serving the request's model. Requests are never
  // parked on still-loading instances: they wait in the router queue — where any
  // instance that frees capacity can claim them — and loading instances pump the
  // router the moment they activate.
  PipelineInstance* best_active = nullptr;
  double best_load = 0.0;
  for (PipelineInstance* inst : instances_) {
    if (inst->model_id() != request.model_id() || !inst->CanAdmit(request)) {
      continue;
    }
    if (inst->state() != InstanceState::kActive) {
      continue;
    }
    double load = inst->LoadFraction();
    if (best_active == nullptr || load < best_load) {
      best_load = load;
      best_active = inst;
    }
  }
  return best_active;
}

void Router::Pump() {
  // Models drain independently: one model's starved queue must not head-of-line block
  // another model's dispatch.
  for (auto& [model_id, queue] : queues_) {
    while (!queue.empty()) {
      Request* request = queue.front();
      PipelineInstance* target = PickInstance(*request);
      if (target == nullptr) {
        break;
      }
      queue.pop_front();
      target->Admit(request);
    }
  }
}

int Router::TotalOutstanding() const {
  int total = queue_length();
  for (const PipelineInstance* inst : instances_) {
    total += inst->inflight() + inst->pending();
  }
  return total;
}

int Router::OutstandingForModel(int model_id) const {
  int total = queue_length_for(model_id);
  for (const PipelineInstance* inst : instances_) {
    if (inst->model_id() == model_id) {
      total += inst->inflight() + inst->pending();
    }
  }
  return total;
}

}  // namespace flexpipe
