#include "src/runtime/router.h"

#include <algorithm>

#include "src/common/macros.h"

namespace flexpipe {

Router::Router(Simulation* sim) : sim_(sim) { FLEXPIPE_CHECK(sim != nullptr); }

void Router::RegisterInstance(PipelineInstance* instance) {
  FLEXPIPE_CHECK(instance != nullptr);
  instances_.push_back(instance);
  Pump();
}

void Router::DeregisterInstance(int instance_id) {
  instances_.erase(std::remove_if(instances_.begin(), instances_.end(),
                                  [instance_id](const PipelineInstance* i) {
                                    return i->id() == instance_id;
                                  }),
                   instances_.end());
}

void Router::Submit(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  ++total_submitted_;
  queue_.push_back(request);
  max_queue_length_ = std::max(max_queue_length_, static_cast<int64_t>(queue_.size()));
  Pump();
}

void Router::RequeueFront(std::vector<Request*> requests) {
  // Preserve relative order: insert in reverse at the front.
  for (auto it = requests.rbegin(); it != requests.rend(); ++it) {
    queue_.push_front(*it);
  }
  max_queue_length_ = std::max(max_queue_length_, static_cast<int64_t>(queue_.size()));
  Pump();
}

PipelineInstance* Router::PickInstance(const Request& request) const {
  // Prefer active instances by load; fall back to the loading instance that will
  // activate soonest (its queue drains the moment it comes up).
  PipelineInstance* best_active = nullptr;
  double best_load = 2.0;
  PipelineInstance* best_loading = nullptr;
  TimeNs best_finish = 0;
  for (PipelineInstance* inst : instances_) {
    if (!inst->CanAdmit(request)) {
      continue;
    }
    if (inst->state() == InstanceState::kActive) {
      double load = inst->LoadFraction();
      if (load < best_load) {
        best_load = load;
        best_active = inst;
      }
    } else if (inst->state() == InstanceState::kLoading) {
      if (best_loading == nullptr || inst->load_finish_time() < best_finish) {
        best_loading = inst;
        best_finish = inst->load_finish_time();
      }
    }
  }
  if (best_active != nullptr) {
    return best_active;
  }
  return best_loading;
}

void Router::Pump() {
  while (!queue_.empty()) {
    Request* request = queue_.front();
    PipelineInstance* target = PickInstance(*request);
    if (target == nullptr) {
      break;
    }
    queue_.pop_front();
    target->Admit(request);
  }
}

int Router::TotalOutstanding() const {
  int total = queue_length();
  for (const PipelineInstance* inst : instances_) {
    total += inst->inflight() + inst->pending();
  }
  return total;
}

}  // namespace flexpipe
