// Request router / gateway for the instances of one serving system.
//
// The router is model-aware: it keeps one FIFO queue per model and only dispatches a
// request onto an instance serving the same model, so several models can contend for
// one shared cluster without cross-talk. Within a model, arrivals go to the
// least-loaded instance that can admit them; when every matching instance is full they
// wait in that model's queue (this queue is what grows 4x in Fig. 3b as CV rises).
// Refactoring updates routing by registering the new instance and re-queueing whatever
// the old instance hands back ("update gateway" in Fig. 6's sequence).
#ifndef FLEXPIPE_SRC_RUNTIME_ROUTER_H_
#define FLEXPIPE_SRC_RUNTIME_ROUTER_H_

#include <deque>
#include <map>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/request.h"
#include "src/sim/simulation.h"

namespace flexpipe {

class Router {
 public:
  explicit Router(Simulation* sim);

  void RegisterInstance(PipelineInstance* instance);
  void DeregisterInstance(int instance_id);

  // New arrival from the workload.
  void Submit(Request* request);

  // Returns requests (e.g. from a halted instance) to the head of their model's queue
  // so they are not penalised twice.
  void RequeueFront(std::vector<Request*> requests);

  // Dispatches as much of every model queue as instances will admit. Instances call
  // this via their pump callback whenever capacity frees up.
  void Pump();

  // Total queued requests across all models / for one model.
  int queue_length() const;
  int queue_length_for(int model_id) const;
  int64_t total_submitted() const { return total_submitted_; }
  int64_t max_queue_length() const { return max_queue_length_; }
  const std::vector<PipelineInstance*>& instances() const { return instances_; }

  // Aggregate in-flight + queued work across the fleet (used by scaling controllers).
  int TotalOutstanding() const;
  // Same, restricted to one model's queue and instances.
  int OutstandingForModel(int model_id) const;

 private:
  PipelineInstance* PickInstance(const Request& request) const;
  void NoteQueueHighWater();

  Simulation* sim_;
  std::vector<PipelineInstance*> instances_;
  // Ordered by model id so Pump() drains models deterministically.
  std::map<int, std::deque<Request*>> queues_;
  int64_t total_submitted_ = 0;
  int64_t max_queue_length_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_ROUTER_H_
