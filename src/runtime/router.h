// Request router / gateway for the instances of one serving system.
//
// The router is model-aware: it keeps one FIFO queue per model and only dispatches a
// request onto an instance serving the same model, so several models can contend for
// one shared cluster without cross-talk. Within a model, arrivals go to the
// least-loaded instance that can admit them; when every matching instance is full they
// wait in that model's queue (this queue is what grows 4x in Fig. 3b as CV rises).
// Refactoring updates routing by registering the new instance and re-queueing whatever
// the old instance hands back ("update gateway" in Fig. 6's sequence).
//
// Dispatch is the hottest router path at cluster scale, so instances are indexed per
// model (a model id is fixed for an instance's lifetime): PickInstance and queue
// pumping scan only the candidate fleet for the request's model instead of every
// registered instance. Within a model the index preserves registration order, which
// keeps tie-breaking — and therefore runs — bit-identical to the full-scan router.
#ifndef FLEXPIPE_SRC_RUNTIME_ROUTER_H_
#define FLEXPIPE_SRC_RUNTIME_ROUTER_H_

#include <deque>
#include <map>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/runtime/instance.h"
#include "src/runtime/request.h"
#include "src/sim/simulation.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE Router {
 public:
  explicit Router(Simulation* sim);

  void RegisterInstance(PipelineInstance* instance);
  void DeregisterInstance(int instance_id);

  // New arrival from the workload.
  void Submit(Request* request);

  // Returns requests (e.g. from a halted instance) to the head of their model's queue
  // so they are not penalised twice.
  void RequeueFront(std::vector<Request*> requests);

  // Dispatches as much of every model queue as instances will admit. Treated as a
  // capacity event: saturated queues are rescanned.
  void Pump();

  // Dispatches one model's queue after one of its instances reported a capacity event
  // (activation, freed slots, registration). Capacity events are per-instance and
  // instances serve exactly one model, so freed capacity can only unblock its own
  // model's queue — instance pump callbacks call this instead of rescanning every
  // fleet.
  void PumpModel(int model_id);

  // Total queued requests across all models / for one model.
  int queue_length() const { return total_queued_; }
  int queue_length_for(int model_id) const;
  int64_t total_submitted() const { return total_submitted_; }
  int64_t max_queue_length() const { return max_queue_length_; }
  const std::vector<PipelineInstance*>& instances() const { return instances_; }

  // Aggregate in-flight + queued work across the fleet (used by scaling controllers).
  int TotalOutstanding() const;
  // Same, restricted to one model's queue and instances.
  int OutstandingForModel(int model_id) const;

 private:
  // Debug-build invariant audits cross-check the incremental counters and buckets.
  friend class SimulationAuditor;

  struct ModelQueue {
    std::deque<Request*> requests;
    // Set when the head request could not be placed. Placement depends only on fleet
    // state, and every path that grows a model's capacity (registration, activation,
    // iteration completions, migrations) rescans with capacity_event=true — so a
    // Submit landing behind a blocked head can skip the provably futile fleet scan.
    bool blocked = false;
  };

  PipelineInstance* PickInstance(const Request& request) const;
  void PumpQueue(ModelQueue& queue, bool capacity_event);
  void NoteQueueHighWater();

  Simulation* sim_;
  std::vector<PipelineInstance*> instances_;
  // Same instances bucketed by model id, registration order preserved per bucket.
  std::map<int, std::vector<PipelineInstance*>> instances_by_model_;
  // Ordered by model id so Pump() drains models deterministically.
  std::map<int, ModelQueue> queues_;
  int total_queued_ = 0;  // sum of queue sizes, maintained incrementally
  int64_t total_submitted_ = 0;
  int64_t max_queue_length_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_ROUTER_H_
