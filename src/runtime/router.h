// Request router / gateway for one model's instances.
//
// Arriving requests are dispatched to the least-loaded instance that can admit them;
// when every instance is full they wait in the router queue (this queue is what grows
// 4x in Fig. 3b as CV rises). Refactoring updates routing by registering the new
// instance and re-queueing whatever the old instance hands back ("update gateway" in
// Fig. 6's sequence).
#ifndef FLEXPIPE_SRC_RUNTIME_ROUTER_H_
#define FLEXPIPE_SRC_RUNTIME_ROUTER_H_

#include <deque>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/request.h"
#include "src/sim/simulation.h"

namespace flexpipe {

class Router {
 public:
  explicit Router(Simulation* sim);

  void RegisterInstance(PipelineInstance* instance);
  void DeregisterInstance(int instance_id);

  // New arrival from the workload.
  void Submit(Request* request);

  // Returns requests (e.g. from a halted instance) to the head of the queue so they are
  // not penalised twice.
  void RequeueFront(std::vector<Request*> requests);

  // Dispatches as much of the queue as instances will admit. Instances call this via
  // their pump callback whenever capacity frees up.
  void Pump();

  int queue_length() const { return static_cast<int>(queue_.size()); }
  int64_t total_submitted() const { return total_submitted_; }
  int64_t max_queue_length() const { return max_queue_length_; }
  const std::vector<PipelineInstance*>& instances() const { return instances_; }

  // Aggregate in-flight + queued work across the fleet (used by scaling controllers).
  int TotalOutstanding() const;

 private:
  PipelineInstance* PickInstance(const Request& request) const;

  Simulation* sim_;
  std::vector<PipelineInstance*> instances_;
  std::deque<Request*> queue_;
  int64_t total_submitted_ = 0;
  int64_t max_queue_length_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_ROUTER_H_
