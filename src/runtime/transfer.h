// Asynchronous data transfers over the simulated fabric.
//
// Used for KV-cache migration during refactoring and parameter movement during scaling.
// Implements §8's protocol hierarchy: RDMA where available (microsecond setup), sendfile
// fallback otherwise, and an NCCL-style path kept for the ablation that shows why the
// paper avoided it (multi-second connection establishment). Flows register on their
// link tier for the duration so concurrent migrations contend realistically.
#ifndef FLEXPIPE_SRC_RUNTIME_TRANSFER_H_
#define FLEXPIPE_SRC_RUNTIME_TRANSFER_H_

#include <functional>

#include "src/cluster/network.h"
#include "src/common/thread_annotations.h"
#include "src/sim/simulation.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE TransferEngine {
 public:
  TransferEngine(Simulation* sim, NetworkModel* network);

  // Picks RDMA when both endpoints' servers have it, else sendfile (§8).
  TransferProtocol PreferredProtocol(GpuId src, GpuId dst) const;

  // Starts an async transfer; `done` fires at completion with the elapsed duration.
  // The flow occupies its link tier until completion.
  void Transfer(GpuId src, GpuId dst, Bytes bytes, TransferProtocol protocol,
                std::function<void(TimeNs duration)> done);

  // Synchronous estimate without starting a flow (planning queries).
  TimeNs Estimate(GpuId src, GpuId dst, Bytes bytes, TransferProtocol protocol) const;

  int64_t completed_transfers() const { return completed_; }
  Bytes bytes_moved() const { return bytes_moved_; }

 private:
  Simulation* sim_;
  NetworkModel* network_;
  int64_t completed_ = 0;
  Bytes bytes_moved_ = 0;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_TRANSFER_H_
