// Pipeline instance: one model replica executing as a chain of stages on GPUs.
//
// Execution model (iteration-level continuous batching, Orca-style):
//   * In-flight requests are spread over S microbatch groups (S = stage count). Each
//     group cycles through the stages as a wave; stage busy-until times serialize
//     competing waves, so pipelining across groups emerges naturally. This is also
//     where Table 2's "max batch = 32 * S" comes from: 32 requests per group buffer.
//   * A group iteration advances every decoding request in the group by one token and
//     runs the prompt pass for newly admitted requests (mixed batching).
//   * A request's next token depends on its previous one, so a group re-enters the
//     pipeline only after its wave exits the last stage — the classic pipeline-parallel
//     decode constraint.
//
// The instance also implements the lifecycle pieces refactoring needs: parallel
// parameter loading (cold from storage / warm from host cache), draining, and
// halt-at-iteration-boundary extraction of in-flight requests with their KV state.
#ifndef FLEXPIPE_SRC_RUNTIME_INSTANCE_H_
#define FLEXPIPE_SRC_RUNTIME_INSTANCE_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/thread_annotations.h"
#include "src/model/cost_model.h"
#include "src/partition/plan.h"
#include "src/runtime/kv_cache.h"
#include "src/runtime/request.h"
#include "src/sim/simulation.h"

namespace flexpipe {

enum class InstanceState : int {
  kLoading = 0,
  kActive = 1,
  kDraining = 2,  // no new admissions; in-flight work continues
  kHalting = 3,   // finishing current iterations, then extracting state
  kReleased = 4,
};

struct InstanceConfig {
  // Which model this replica serves; the router matches requests by model id.
  int model_id = 0;
  int per_group_capacity = 32;  // Table 2 anchor
  // Sarathi-style chunked admission: prompt work mixed into a decode iteration is
  // bounded so prefill cannot starve token production. At least one pending request is
  // admitted per iteration regardless, so long prompts cannot be starved either.
  int max_prefill_requests_per_iteration = 4;
  int prefill_token_budget_per_iteration = 1024;
  Bytes gpu_memory = GiB(40);
  // false = sequential execution: a single wave occupies the whole chain (systems
  // without pipeline-parallel scheduling, e.g. the Tetris baseline).
  bool pipelined = true;
  // Multiplier on stage compute (> 1 models interference from GPU multiplexing).
  double compute_dilation = 1.0;
};

struct InstanceStats {
  int64_t iterations = 0;
  int64_t tokens_generated = 0;
  int64_t prefills_completed = 0;
  int64_t requests_completed = 0;
};

class FLEXPIPE_THREAD_HOSTILE PipelineInstance {
 public:
  using CompletionCallback = std::function<void(Request*)>;
  using PumpCallback = std::function<void()>;
  using HaltCallback = std::function<void(std::vector<Request*> in_flight)>;

  PipelineInstance(Simulation* sim, int id, const PipelinePlan& plan, std::vector<GpuId> gpus,
                   const CostModel* cost_model, const NetworkModel* network,
                   const InstanceConfig& config);

  int id() const { return id_; }
  int model_id() const { return config_.model_id; }
  const PipelinePlan& plan() const { return plan_; }
  const std::vector<GpuId>& gpus() const { return gpus_; }
  int num_stages() const { return plan_.num_stages(); }
  InstanceState state() const { return state_; }

  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }
  void set_pump_callback(PumpCallback cb) { on_pump_ = std::move(cb); }
  // Activation callbacks accumulate (run in registration order): the serving base
  // pumps the router when capacity comes online, and migration sessions wait for
  // their target's activation on top of that.
  void set_activation_callback(std::function<void()> cb) {
    on_activate_.push_back(std::move(cb));
  }

  // -- Lifecycle ---------------------------------------------------------------------
  // Starts loading all stage parameters in parallel; `warm_stages[s]` selects host-cache
  // warm start per stage (empty = all cold). `load_slowdown` (>= 1) models storage/PCIe
  // contention from concurrent scale-ups (supplied by the HRG). The instance
  // self-activates when the slowest stage finishes.
  void BeginLoading(const std::vector<bool>& warm_stages, double load_slowdown = 1.0);
  TimeNs load_finish_time() const { return load_finish_time_; }

  // Immediate activation for handover paths where parameters are already resident.
  void ActivateNow();

  // Refuses further admissions while continuing to serve (used while a migration
  // snapshot is in flight).
  void CloseAdmissions() { admissions_closed_ = true; }

  // Stops admissions; in-flight requests run to completion.
  void StartDraining(std::function<void()> on_drained);

  // Refactoring cutover: stop admissions, finish in-flight iterations, then hand every
  // admitted request (decoding and not-yet-prefilled) to `cb`. KV is cleared.
  void HaltAndExtract(HaltCallback cb);

  // Abrupt failure: the GPUs under this instance just died. Cancels in-flight waves
  // (no iteration boundary — the KV is simply gone), returns every admitted request
  // exactly once (pending/prefilling reset to kQueued; decoding kept as-is so the
  // caller can choose resume-with-recompute vs full restart), and leaves the instance
  // inert for the caller to release. Valid in any pre-released state.
  std::vector<Request*> FailNow();

  void MarkReleased() { state_ = InstanceState::kReleased; }

  // -- Serving -----------------------------------------------------------------------
  bool CanAdmit(const Request& request) const;
  void Admit(Request* request);

  // Re-inserts a mid-decode request after KV migration (tokens already generated are
  // preserved; decode resumes on this instance).
  void InjectDecoding(Request* request);

  int inflight() const { return inflight_; }
  int pending() const { return static_cast<int>(pending_.size()); }
  int capacity() const {
    return config_.per_group_capacity * (config_.pipelined ? num_stages() : 1);
  }
  double LoadFraction() const;

  // -- KV / refactoring support --------------------------------------------------------
  // Requests currently decoding on this instance (snapshot; pointers stay valid).
  std::vector<Request*> CurrentDecoding() const;
  Bytes KvBytesTotal() const { return kv_.TotalBytes(); }
  Bytes KvBytesForRequest(RequestId id) const { return kv_.RequestBytes(id); }
  const KvTracker& kv_tracker() const { return kv_; }

  // -- Planning estimates (used by controllers) ----------------------------------------
  // One full traversal (token latency) at the given per-group decode batch.
  TimeNs EstimateTraversal(int group_batch) const;
  // Steady-state token-production cadence of one group at the given batch.
  TimeNs EstimateCadence(int group_batch) const;

  // -- Health sampling -----------------------------------------------------------------
  // Per-stage cumulative busy time: observed (stretched by any fail-slow degradation on
  // the stage's server) vs base (the healthy cost-model profile). Their ratio is the
  // straggler signal the health monitor watches — exactly 1.0 on a healthy fleet, so a
  // deterministic zero-false-positive baseline.
  TimeNs StageBusyObserved(int stage) const {
    return stage_busy_accum_[static_cast<size_t>(stage)];
  }
  TimeNs StageBusyBase(int stage) const {
    return stage_busy_base_accum_[static_cast<size_t>(stage)];
  }
  ServerId StageServer(int stage) const {
    return stages_[static_cast<size_t>(stage)].server;
  }

  // -- Metrics -------------------------------------------------------------------------
  const InstanceStats& stats() const { return stats_; }
  TimeNs TotalStall() const;
  TimeNs TotalBusy() const;
  // Mean busy fraction across stages since activation.
  double MeanStageUtilization() const;
  TimeNs activated_at() const { return activated_at_; }

 private:
  // Per-stage cold configuration, written once at construction. The per-wave hot
  // state (busy_until / busy_accum / stall_accum) lives in packed parallel arrays
  // below so TryStart/FinishIteration walk dense memory instead of striding over
  // this config (SoA split of the former StageRuntime struct).
  struct StageConfig {
    GpuId gpu = kInvalidGpu;
    // Hosting server (and the next stage's), resolved once so the fail-slow hot path
    // reads perf/link factors without topology lookups per wave.
    ServerId server = kInvalidServer;
    ServerId next_server = kInvalidServer;
    bool comm_nic = false;         // next-stage link crosses a NIC (rack/spine tier)
    TimeNs prefill_per_token = 0;  // compute per prompt token
    TimeNs decode_base = 0;        // batch-1 decode compute
    TimeNs overhead = 0;           // fixed per iteration
    Bytes prefill_act_per_token = 0;
    Bytes decode_act_per_req = 0;
    TimeNs comm_latency = 0;       // to the next stage (unused on the last)
    BytesPerSec comm_bandwidth = 0.0;
  };

  struct Group {
    std::vector<Request*> decoding;
    std::vector<Request*> prefilling;
    // In-flight wave state. While `busy`, the wave's prompt batch lives in
    // `wave_prefilling` (recycled across iterations — the hot loop allocates nothing)
    // and the wave's decode batch is the first `wave_decode_count` entries of
    // `decoding`: mid-wave arrivals (InjectDecoding, newly prefilled requests) only
    // ever append, so a prefix index replaces the old per-request membership scan.
    std::vector<Request*> wave_prefilling;
    size_t wave_decode_count = 0;
    bool busy = false;
    // The pending FinishIteration event while `busy`; lets FailNow cancel mid-wave.
    EventId wave_event = 0;
  };

  TimeNs StageIterationTime(size_t stage, int prefill_tokens, int decode_batch) const;
  TimeNs StageCommTime(size_t stage, int prefill_tokens, int decode_batch) const;
  // Cached wrappers for the decode-only (prefill_tokens == 0) case.
  TimeNs DecodeIterationTime(size_t stage, int decode_batch) const;
  TimeNs DecodeCommTime(size_t stage, int decode_batch) const;

  void PumpGroups();
  void TryStart(size_t group_index);
  void FinishIteration(size_t group_index);
  void AdmitFromPending(Group& group);
  void CompleteRequest(Request* request);
  void CheckHaltAndDrain();
  bool AnyGroupBusy() const;
  void NoteMaybeIdle();

  Simulation* sim_;
  int id_;
  PipelinePlan plan_;
  std::vector<GpuId> gpus_;
  const CostModel* cost_model_;
  const NetworkModel* network_;
  InstanceConfig config_;

  InstanceState state_ = InstanceState::kLoading;
  bool admissions_closed_ = false;
  TimeNs load_finish_time_ = -1;
  TimeNs activated_at_ = -1;

  std::vector<StageConfig> stages_;
  // Hot per-stage wave state, SoA: the decode-only wave loop touches exactly these
  // arrays plus the flat decode cache, all packed and indexed by stage.
  std::vector<TimeNs> stage_busy_until_;
  std::vector<TimeNs> stage_busy_accum_;
  // Busy time at the healthy cost-model profile (== busy_accum_ unless the stage's
  // server is degraded); see StageBusyBase.
  std::vector<TimeNs> stage_busy_base_accum_;
  std::vector<TimeNs> stage_stall_accum_;
  // Lazily-filled decode-only {iteration, comm} times, one flat array indexed
  // [stage * (per_group_capacity + 1) + batch] (-1 = unset; pairs so a wave's paired
  // lookups share a cache line). Pure-decode waves dominate the event stream and their
  // cost depends only on the batch, so the arithmetic runs once per (stage, batch);
  // mixed prefill waves carry per-request token counts and stay on the arithmetic path.
  mutable std::vector<std::pair<TimeNs, TimeNs>> decode_cache_;
  std::vector<Group> groups_;
  int busy_groups_ = 0;  // count of groups with a wave in flight (== AnyGroupBusy())
  std::deque<Request*> pending_;
  KvTracker kv_;
  int inflight_ = 0;  // prefilling + decoding across groups

  // Timestamp after which the instance has been continuously non-idle; used to tell
  // pipeline bubbles (stall with work present) from plain idleness.
  TimeNs last_all_idle_ = 0;

  CompletionCallback on_complete_;
  PumpCallback on_pump_;
  std::vector<std::function<void()>> on_activate_;
  std::function<void()> on_drained_;
  HaltCallback on_halt_;

  InstanceStats stats_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_INSTANCE_H_
