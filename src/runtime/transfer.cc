#include "src/runtime/transfer.h"

#include <utility>

#include "src/common/macros.h"

namespace flexpipe {

TransferEngine::TransferEngine(Simulation* sim, NetworkModel* network)
    : sim_(sim), network_(network) {
  FLEXPIPE_CHECK(sim != nullptr && network != nullptr);
}

TransferProtocol TransferEngine::PreferredProtocol(GpuId src, GpuId dst) const {
  double fraction = network_->config().rdma_fraction;
  if (fraction >= 1.0) {
    return TransferProtocol::kRdma;
  }
  if (fraction <= 0.0) {
    return TransferProtocol::kSendfile;
  }
  // Stable hash on the endpoint pair decides which links are RDMA-capable.
  uint64_t h = (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
               static_cast<uint32_t>(dst);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  double u = static_cast<double>(h % 10000) / 10000.0;
  return u < fraction ? TransferProtocol::kRdma : TransferProtocol::kSendfile;
}

TimeNs TransferEngine::Estimate(GpuId src, GpuId dst, Bytes bytes,
                                TransferProtocol protocol) const {
  LinkTier tier = network_->TierBetween(src, dst);
  if (tier == LinkTier::kSameGpu) {
    return 0;
  }
  return network_->SetupTime(protocol) + network_->Latency(tier) +
         TransferTime(bytes, network_->EffectiveBandwidth(tier));
}

void TransferEngine::Transfer(GpuId src, GpuId dst, Bytes bytes, TransferProtocol protocol,
                              std::function<void(TimeNs duration)> done) {
  FLEXPIPE_CHECK(done != nullptr);
  LinkTier tier = network_->TierBetween(src, dst);
  TimeNs duration = Estimate(src, dst, bytes, protocol);
  if (tier != LinkTier::kSameGpu) {
    network_->AddFlow(tier);
  }
  bytes_moved_ += bytes;
  sim_->Schedule(duration, [this, tier, duration, done = std::move(done)] {
    if (tier != LinkTier::kSameGpu) {
      network_->RemoveFlow(tier);
    }
    ++completed_;
    done(duration);
  });
}

}  // namespace flexpipe
