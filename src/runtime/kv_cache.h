// KV-cache bookkeeping and the token-level validity mask of Eq. 10.
//
// During inflight refactoring the consistent cache state is
//     C(t) = ∪_i KV_i(t) ⊗ M_valid
// i.e. per-token validity masks decide what must still be synchronized. We implement the
// mask as a real bitmap: the refactoring engine snapshots a request's KV, keeps serving
// on the old pipeline (newly generated tokens invalidate mask bits), then ships the
// delta at cutover. Tests exercise the mask algebra directly.
#ifndef FLEXPIPE_SRC_RUNTIME_KV_CACHE_H_
#define FLEXPIPE_SRC_RUNTIME_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/macros.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/trace/workload.h"

namespace flexpipe {

class FLEXPIPE_THREAD_HOSTILE KvValidityMask {
 public:
  explicit KvValidityMask(int capacity_tokens);

  int capacity() const { return capacity_; }
  int valid_count() const { return valid_count_; }
  int invalid_in(int begin, int end) const;  // invalid tokens in [begin, end), popcount

  bool IsValid(int token) const;
  void MarkValid(int begin, int end);
  void MarkInvalid(int begin, int end);
  void Grow(int new_capacity);  // new tokens start invalid

  // Visits fn(begin, end) for every maximal run of invalid tokens in [0, upto),
  // allocation-free. All-valid and all-invalid 64-token words are handled with one
  // compare each, so delta-sync costing over mostly-settled masks is O(words), not
  // O(tokens).
  template <typename Fn>
  void ForEachInvalidRange(int upto, Fn&& fn) const {
    FLEXPIPE_CHECK(upto >= 0 && upto <= capacity_);
    int run_start = -1;
    for (int base = 0; base < upto; base += 64) {
      int limit = upto - base < 64 ? upto - base : 64;
      uint64_t relevant = RangeMask(0, limit);
      uint64_t invalid = ~bits_[static_cast<size_t>(base) / 64] & relevant;
      if (invalid == 0) {  // all valid: any open run ended at this word's boundary
        if (run_start >= 0) {
          fn(run_start, base);
          run_start = -1;
        }
        continue;
      }
      if (invalid == relevant) {  // all invalid: run extends through the word
        if (run_start < 0) {
          run_start = base;
        }
        continue;
      }
      for (int bit = 0; bit < limit; ++bit) {
        if ((invalid >> bit) & 1) {
          if (run_start < 0) {
            run_start = base + bit;
          }
        } else if (run_start >= 0) {
          fn(run_start, base + bit);
          run_start = -1;
        }
      }
    }
    if (run_start >= 0) {
      fn(run_start, upto);
    }
  }

  // Tokens in [0, upto) that still need synchronization. Materializes a vector; hot
  // paths should use ForEachInvalidRange instead.
  std::vector<int> InvalidTokens(int upto) const;

 private:
  // Bits [begin, end) of a 64-bit word, where 0 <= begin <= end <= 64.
  static uint64_t RangeMask(int begin, int end) {
    uint64_t hi = end == 64 ? ~0ull : (1ull << end) - 1;
    uint64_t lo = (1ull << begin) - 1;
    return hi & ~lo;
  }

  void Set(int token, bool valid);

  int capacity_;
  int valid_count_ = 0;
  std::vector<uint64_t> bits_;
};

// Per-instance KV accounting: bytes per stage, per request. The instance enforces its
// per-stage KV budget through this tracker; the refactoring engine reads per-request
// footprints when costing migrations.
class FLEXPIPE_THREAD_HOSTILE KvTracker {
 public:
  KvTracker(int num_stages, Bytes per_stage_budget, Bytes kv_bytes_per_token_per_stage);

  // Whether a request with `total_tokens` (prompt + max output) fits in every stage.
  bool Fits(int total_tokens) const;
  void Admit(RequestId id, int total_tokens);
  void Remove(RequestId id);
  void Clear();

  Bytes used_per_stage() const { return used_per_stage_; }
  Bytes budget_per_stage() const { return budget_per_stage_; }
  int resident_requests() const { return static_cast<int>(tokens_.size()); }

  // Total KV bytes across all stages for one request / for everything resident.
  Bytes RequestBytes(RequestId id) const;
  Bytes TotalBytes() const;
  Bytes BytesForTokens(int tokens) const {
    return static_cast<Bytes>(tokens) * kv_per_token_per_stage_ * num_stages_;
  }

 private:
  struct Resident {
    RequestId id = 0;
    int tokens = 0;
  };
  // Sorted by id (binary-search lookups). Residency is bounded by instance capacity
  // (a few hundred requests), so the flat vector beats hashing and — unlike a hash
  // table — iterates in a deterministic order.
  std::vector<Resident>::const_iterator Find(RequestId id) const;

  int num_stages_;
  Bytes budget_per_stage_;
  Bytes kv_per_token_per_stage_;
  Bytes used_per_stage_ = 0;
  std::vector<Resident> tokens_;
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_KV_CACHE_H_
