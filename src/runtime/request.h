// Runtime request state.
//
// A Request wraps the workload's RequestSpec with lifecycle timestamps and the
// queue/execution/communication decomposition the paper's latency-breakdown figures
// report. Requests are owned by the serving harness; instances and routers hold
// non-owning pointers.
#ifndef FLEXPIPE_SRC_RUNTIME_REQUEST_H_
#define FLEXPIPE_SRC_RUNTIME_REQUEST_H_

#include "src/common/units.h"
#include "src/trace/workload.h"

namespace flexpipe {

enum class RequestPhase : int {
  kQueued = 0,     // waiting in router or instance pending queue
  kPrefilling = 1, // admitted; prompt pass scheduled or in flight
  kDecoding = 2,   // generating tokens
  kDone = 3,
};

struct Request {
  RequestSpec spec;
  RequestPhase phase = RequestPhase::kQueued;

  int tokens_generated = 0;  // includes the token produced by the prefill pass

  // Failure recovery: tokens this request had generated when its instance died. Their
  // KV is gone, so the next prompt pass re-processes them (prompt + recompute) before
  // decode resumes; cleared when that pass exits. 0 everywhere outside recovery.
  int recompute_tokens = 0;

  TimeNs first_exec_start = -1;  // first time any stage computed for this request
  TimeNs first_token_time = -1;  // prefill pass exit (TTFT)
  TimeNs done_time = -1;

  // Accumulated per-request time decomposition (the Fig. 8 breakdown):
  TimeNs exec_ns = 0;   // stage compute the request participated in
  TimeNs comm_ns = 0;   // inter-stage hops the request traversed
  // queue_ns is derived: total - exec - comm (covers router queue, admission wait, and
  // in-pipeline blocking on busy stages).

  bool done() const { return phase == RequestPhase::kDone; }
  // The model this request targets; the router only admits it onto instances serving
  // the same model (multi-model clusters, §9's production mix).
  int model_id() const { return spec.model_index; }
  int remaining_tokens() const { return spec.output_tokens - tokens_generated; }
  int context_tokens() const { return spec.prompt_tokens + tokens_generated; }

  TimeNs TotalLatency() const { return done_time >= 0 ? done_time - spec.arrival : -1; }
  TimeNs QueueTime() const {
    TimeNs total = TotalLatency();
    if (total < 0) {
      return -1;
    }
    TimeNs q = total - exec_ns - comm_ns;
    return q > 0 ? q : 0;
  }
  TimeNs PrefillLatency() const {
    return first_token_time >= 0 ? first_token_time - spec.arrival : -1;
  }
  bool MetSlo(TimeNs default_slo) const {
    TimeNs slo = spec.slo > 0 ? spec.slo : default_slo;
    TimeNs total = TotalLatency();
    return total >= 0 && (slo <= 0 || total <= slo);
  }
};

}  // namespace flexpipe

#endif  // FLEXPIPE_SRC_RUNTIME_REQUEST_H_
