#include "src/runtime/kv_cache.h"

#include <algorithm>
#include <bit>

namespace flexpipe {

KvValidityMask::KvValidityMask(int capacity_tokens) : capacity_(capacity_tokens) {
  FLEXPIPE_CHECK(capacity_tokens >= 0);
  bits_.resize(static_cast<size_t>((capacity_tokens + 63) / 64), 0);
}

bool KvValidityMask::IsValid(int token) const {
  FLEXPIPE_DCHECK(token >= 0 && token < capacity_);
  return (bits_[static_cast<size_t>(token) / 64] >> (static_cast<unsigned>(token) % 64)) & 1ULL;
}

void KvValidityMask::Set(int token, bool valid) {
  uint64_t& word = bits_[static_cast<size_t>(token) / 64];
  uint64_t bit = 1ULL << (static_cast<unsigned>(token) % 64);
  bool was = (word & bit) != 0;
  if (valid && !was) {
    word |= bit;
    ++valid_count_;
  } else if (!valid && was) {
    word &= ~bit;
    --valid_count_;
  }
}

void KvValidityMask::MarkValid(int begin, int end) {
  FLEXPIPE_CHECK(begin >= 0 && end <= capacity_ && begin <= end);
  // Word-at-a-time: popcount the newly set bits instead of testing each token.
  for (int base = begin & ~63; base < end; base += 64) {
    int lo = begin > base ? begin - base : 0;
    int hi = end - base < 64 ? end - base : 64;
    uint64_t& word = bits_[static_cast<size_t>(base) / 64];
    uint64_t added = RangeMask(lo, hi) & ~word;
    word |= added;
    valid_count_ += std::popcount(added);
  }
}

void KvValidityMask::MarkInvalid(int begin, int end) {
  FLEXPIPE_CHECK(begin >= 0 && end <= capacity_ && begin <= end);
  for (int base = begin & ~63; base < end; base += 64) {
    int lo = begin > base ? begin - base : 0;
    int hi = end - base < 64 ? end - base : 64;
    uint64_t& word = bits_[static_cast<size_t>(base) / 64];
    uint64_t removed = RangeMask(lo, hi) & word;
    word &= ~removed;
    valid_count_ -= std::popcount(removed);
  }
}

void KvValidityMask::Grow(int new_capacity) {
  FLEXPIPE_CHECK(new_capacity >= capacity_);
  capacity_ = new_capacity;
  bits_.resize(static_cast<size_t>((new_capacity + 63) / 64), 0);
}

int KvValidityMask::invalid_in(int begin, int end) const {
  FLEXPIPE_CHECK(begin >= 0 && end <= capacity_ && begin <= end);
  int valid = 0;
  for (int base = begin & ~63; base < end; base += 64) {
    int lo = begin > base ? begin - base : 0;
    int hi = end - base < 64 ? end - base : 64;
    valid += std::popcount(bits_[static_cast<size_t>(base) / 64] & RangeMask(lo, hi));
  }
  return (end - begin) - valid;
}

std::vector<int> KvValidityMask::InvalidTokens(int upto) const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(invalid_in(0, upto)));
  ForEachInvalidRange(upto, [&out](int begin, int end) {
    for (int t = begin; t < end; ++t) {
      out.push_back(t);
    }
  });
  return out;
}

KvTracker::KvTracker(int num_stages, Bytes per_stage_budget, Bytes kv_bytes_per_token_per_stage)
    : num_stages_(num_stages),
      budget_per_stage_(per_stage_budget),
      kv_per_token_per_stage_(kv_bytes_per_token_per_stage) {
  FLEXPIPE_CHECK(num_stages >= 1);
  FLEXPIPE_CHECK(per_stage_budget >= 0);
  FLEXPIPE_CHECK(kv_bytes_per_token_per_stage >= 0);
}

bool KvTracker::Fits(int total_tokens) const {
  Bytes need = static_cast<Bytes>(total_tokens) * kv_per_token_per_stage_;
  return used_per_stage_ + need <= budget_per_stage_;
}

auto KvTracker::Find(RequestId id) const -> std::vector<Resident>::const_iterator {
  auto it = std::lower_bound(
      tokens_.begin(), tokens_.end(), id,
      [](const Resident& r, RequestId key) { return r.id < key; });
  if (it == tokens_.end() || it->id != id) {
    return tokens_.end();
  }
  return it;
}

void KvTracker::Admit(RequestId id, int total_tokens) {
  FLEXPIPE_CHECK_MSG(Fits(total_tokens), "KV admission over budget");
  auto it = std::lower_bound(
      tokens_.begin(), tokens_.end(), id,
      [](const Resident& r, RequestId key) { return r.id < key; });
  FLEXPIPE_CHECK(it == tokens_.end() || it->id != id);
  tokens_.insert(it, Resident{id, total_tokens});
  used_per_stage_ += static_cast<Bytes>(total_tokens) * kv_per_token_per_stage_;
}

void KvTracker::Remove(RequestId id) {
  auto it = Find(id);
  FLEXPIPE_CHECK(it != tokens_.end());
  used_per_stage_ -= static_cast<Bytes>(it->tokens) * kv_per_token_per_stage_;
  FLEXPIPE_CHECK(used_per_stage_ >= 0);
  tokens_.erase(it);
}

void KvTracker::Clear() {
  tokens_.clear();
  used_per_stage_ = 0;
}

Bytes KvTracker::RequestBytes(RequestId id) const {
  auto it = Find(id);
  if (it == tokens_.end()) {
    return 0;
  }
  return static_cast<Bytes>(it->tokens) * kv_per_token_per_stage_ * num_stages_;
}

Bytes KvTracker::TotalBytes() const { return used_per_stage_ * num_stages_; }

}  // namespace flexpipe
