#include "src/runtime/instance.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/macros.h"

namespace flexpipe {

PipelineInstance::PipelineInstance(Simulation* sim, int id, const PipelinePlan& plan,
                                   std::vector<GpuId> gpus, const CostModel* cost_model,
                                   const NetworkModel* network, const InstanceConfig& config)
    : sim_(sim),
      id_(id),
      plan_(plan),
      gpus_(std::move(gpus)),
      cost_model_(cost_model),
      network_(network),
      config_(config),
      kv_(plan.num_stages(),
          /*per_stage_budget=*/
          static_cast<Bytes>(
              static_cast<double>(config.gpu_memory - plan.MaxStageParams()) *
              cost_model->config().kv_memory_fraction),
          /*kv_bytes_per_token_per_stage=*/
          cost_model->KvBytesPerToken(plan.spec, 1.0 / std::max(1, plan.num_stages()))) {
  FLEXPIPE_CHECK(sim_ != nullptr && cost_model_ != nullptr && network_ != nullptr);
  FLEXPIPE_CHECK(plan_.num_stages() >= 1);
  FLEXPIPE_CHECK_MSG(static_cast<int>(gpus_.size()) == plan_.num_stages(),
                     "one GPU per pipeline stage");
  FLEXPIPE_CHECK_MSG(plan_.MaxStageParams() <= config_.gpu_memory,
                     "stage parameters exceed GPU memory");

  const ModelSpec& spec = plan_.spec;
  TimeNs decode_full = cost_model_->FullModelComputeTime(spec, Phase::kDecode, 1, 1);
  TimeNs total_compute = plan_.TotalCompute();
  TimeNs overhead = FromMillis(cost_model_->config().per_stage_overhead_ms);

  stages_.resize(static_cast<size_t>(plan_.num_stages()));
  stage_busy_until_.assign(stages_.size(), 0);
  stage_busy_accum_.assign(stages_.size(), 0);
  stage_busy_base_accum_.assign(stages_.size(), 0);
  stage_stall_accum_.assign(stages_.size(), 0);
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const StagePlan& sp = plan_.stages[static_cast<size_t>(s)];
    StageConfig& rt = stages_[static_cast<size_t>(s)];
    rt.gpu = gpus_[static_cast<size_t>(s)];
    rt.server = network_->cluster()->ServerOf(rt.gpu);
    rt.overhead = overhead;
    rt.prefill_per_token = sp.compute_time / std::max(1, spec.context_window);
    double share = total_compute > 0
                       ? static_cast<double>(sp.compute_time) / static_cast<double>(total_compute)
                       : 1.0 / plan_.num_stages();
    rt.decode_base = static_cast<TimeNs>(static_cast<double>(decode_full) * share);
    rt.prefill_act_per_token = sp.output_activation_bytes / std::max(1, spec.context_window);
    rt.decode_act_per_req = cost_model_->DecodeActivationBytes(spec, 1);
    if (s + 1 < plan_.num_stages()) {
      LinkTier tier = network_->TierBetween(rt.gpu, gpus_[static_cast<size_t>(s + 1)]);
      rt.comm_latency = network_->Latency(tier);
      rt.comm_bandwidth = network_->Bandwidth(tier);
      rt.next_server = network_->cluster()->ServerOf(gpus_[static_cast<size_t>(s + 1)]);
      rt.comm_nic = tier == LinkTier::kIntraRack || tier == LinkTier::kInterRack;
    }
  }
  groups_.resize(config_.pipelined ? static_cast<size_t>(plan_.num_stages()) : 1);
}

void PipelineInstance::BeginLoading(const std::vector<bool>& warm_stages, double load_slowdown) {
  FLEXPIPE_CHECK(state_ == InstanceState::kLoading);
  FLEXPIPE_CHECK(warm_stages.empty() ||
                 warm_stages.size() == static_cast<size_t>(plan_.num_stages()));
  FLEXPIPE_CHECK(load_slowdown > 0.0);  // > 1 = contention, < 1 = accelerated loader
  const Cluster* cluster = network_->cluster();
  const bool degraded = cluster->AnyDegraded();
  TimeNs worst = 0;
  for (int s = 0; s < plan_.num_stages(); ++s) {
    Bytes params = plan_.stages[static_cast<size_t>(s)].param_bytes;
    bool warm = !warm_stages.empty() && warm_stages[static_cast<size_t>(s)];
    TimeNs t = warm ? cost_model_->WarmLoadTime(params, network_->config().pcie_bandwidth)
                    : cost_model_->ColdLoadTime(params);
    // Fail-slow link degradation stretches parameter ingest — storage fetch and host
    // copy both cross the server's sick I/O path (same factor RestartStuckLoaders
    // prices into its fresh-load estimate, so a merely-slow load is not "stuck").
    if (degraded) {
      double link = cluster->ServerLinkFactor(stages_[static_cast<size_t>(s)].server);
      if (link != 1.0) {
        t = static_cast<TimeNs>(static_cast<double>(t) / link);
      }
    }
    worst = std::max(worst, static_cast<TimeNs>(static_cast<double>(t) * load_slowdown));
  }
  load_finish_time_ = sim_->now() + worst;
  sim_->Schedule(worst, [this] {
    if (state_ == InstanceState::kLoading) {
      ActivateNow();
    }
  });
}

void PipelineInstance::ActivateNow() {
  FLEXPIPE_CHECK(state_ == InstanceState::kLoading);
  state_ = InstanceState::kActive;
  activated_at_ = sim_->now();
  last_all_idle_ = sim_->now();
  for (TimeNs& busy_until : stage_busy_until_) {
    busy_until = sim_->now();
  }
  for (const auto& callback : on_activate_) {
    callback();
  }
  PumpGroups();
}

std::vector<Request*> PipelineInstance::CurrentDecoding() const {
  std::vector<Request*> out;
  for (const Group& g : groups_) {
    for (Request* r : g.decoding) {
      out.push_back(r);
    }
  }
  return out;
}

bool PipelineInstance::CanAdmit(const Request& request) const {
  if (admissions_closed_) {
    return false;
  }
  if (state_ != InstanceState::kLoading && state_ != InstanceState::kActive) {
    return false;
  }
  if (inflight_ + pending() >= capacity()) {
    return false;
  }
  return kv_.Fits(request.spec.prompt_tokens + request.spec.output_tokens);
}

void PipelineInstance::Admit(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  FLEXPIPE_CHECK_MSG(CanAdmit(*request), "Admit called without CanAdmit");
  kv_.Admit(request->spec.id, request->spec.prompt_tokens + request->spec.output_tokens);
  request->phase = RequestPhase::kQueued;
  pending_.push_back(request);
  if (state_ == InstanceState::kActive &&
      busy_groups_ < static_cast<int>(groups_.size())) {
    // Only distribute the new pending work: while active, a non-busy group with decode
    // work left cannot exist outside FinishIteration (which restarts itself), so once
    // `pending_` drains — or when every group is mid-wave — the TryStarts are no-ops.
    for (size_t g = 0; g < groups_.size() && !pending_.empty(); ++g) {
      TryStart(g);
    }
  }
}

void PipelineInstance::InjectDecoding(Request* request) {
  FLEXPIPE_CHECK(request != nullptr);
  FLEXPIPE_CHECK(request->phase == RequestPhase::kDecoding);
  FLEXPIPE_CHECK(state_ == InstanceState::kLoading || state_ == InstanceState::kActive);
  kv_.Admit(request->spec.id, request->spec.prompt_tokens + request->spec.output_tokens);
  // Join the lightest group.
  size_t best = 0;
  for (size_t g = 1; g < groups_.size(); ++g) {
    if (groups_[g].decoding.size() + groups_[g].prefilling.size() <
        groups_[best].decoding.size() + groups_[best].prefilling.size()) {
      best = g;
    }
  }
  groups_[best].decoding.push_back(request);
  ++inflight_;
  if (state_ == InstanceState::kActive) {
    TryStart(best);  // only the joined group gained work
  }
}

double PipelineInstance::LoadFraction() const {
  return static_cast<double>(inflight_ + pending()) / std::max(1, capacity());
}

void PipelineInstance::StartDraining(std::function<void()> on_drained) {
  FLEXPIPE_CHECK(state_ == InstanceState::kActive || state_ == InstanceState::kLoading);
  state_ = InstanceState::kDraining;
  on_drained_ = std::move(on_drained);
  CheckHaltAndDrain();
}

void PipelineInstance::HaltAndExtract(HaltCallback cb) {
  FLEXPIPE_CHECK(state_ != InstanceState::kReleased);
  state_ = InstanceState::kHalting;
  on_halt_ = std::move(cb);
  CheckHaltAndDrain();
}

bool PipelineInstance::AnyGroupBusy() const { return busy_groups_ > 0; }

void PipelineInstance::CheckHaltAndDrain() {
  if (state_ == InstanceState::kHalting && !AnyGroupBusy() && on_halt_) {
    std::vector<Request*> extracted;
    for (Request* r : pending_) {
      r->phase = RequestPhase::kQueued;
      extracted.push_back(r);
    }
    pending_.clear();
    for (Group& g : groups_) {
      for (Request* r : g.prefilling) {
        // Prompt pass never ran (or its KV dies with this instance); redo elsewhere.
        r->phase = RequestPhase::kQueued;
        extracted.push_back(r);
      }
      for (Request* r : g.decoding) {
        extracted.push_back(r);  // keeps kDecoding + generated tokens; KV migrates
      }
      g.prefilling.clear();
      g.decoding.clear();
    }
    kv_.Clear();
    inflight_ = 0;
    HaltCallback cb = std::move(on_halt_);
    on_halt_ = nullptr;
    cb(std::move(extracted));
    return;
  }
  if (state_ == InstanceState::kDraining && inflight_ == 0 && pending_.empty() && on_drained_) {
    std::function<void()> cb = std::move(on_drained_);
    on_drained_ = nullptr;
    cb();
  }
}

std::vector<Request*> PipelineInstance::FailNow() {
  FLEXPIPE_CHECK(state_ != InstanceState::kReleased);
  // Cancel in-flight waves: their FinishIteration must never run against a dead
  // instance. (The BeginLoading activation event guards on kLoading itself.)
  for (Group& g : groups_) {
    if (g.busy) {
      sim_->Cancel(g.wave_event);
      g.busy = false;
      g.wave_event = 0;
    }
  }
  busy_groups_ = 0;
  state_ = InstanceState::kHalting;  // blocks admissions until the caller releases us
  on_halt_ = nullptr;
  on_drained_ = nullptr;

  std::vector<Request*> extracted;
  for (Request* r : pending_) {
    r->phase = RequestPhase::kQueued;
    extracted.push_back(r);
  }
  pending_.clear();
  for (Group& g : groups_) {
    for (Request* r : g.prefilling) {
      r->phase = RequestPhase::kQueued;
      extracted.push_back(r);
    }
    for (Request* r : g.wave_prefilling) {
      // The wave died mid-prompt-pass; nothing of it survives.
      r->phase = RequestPhase::kQueued;
      extracted.push_back(r);
    }
    for (Request* r : g.decoding) {
      extracted.push_back(r);  // stays kDecoding; caller picks recompute vs restart
    }
    g.prefilling.clear();
    g.wave_prefilling.clear();
    g.decoding.clear();
    g.wave_decode_count = 0;
  }
  kv_.Clear();
  inflight_ = 0;
  return extracted;
}

TimeNs PipelineInstance::StageIterationTime(size_t stage, int prefill_tokens,
                                            int decode_batch) const {
  const StageConfig& cfg = stages_[stage];
  TimeNs t = cfg.overhead;
  if (prefill_tokens > 0) {
    t += cfg.prefill_per_token * prefill_tokens;
  }
  if (decode_batch > 0) {
    double slope = cost_model_->config().decode_batch_slope;
    t += static_cast<TimeNs>(static_cast<double>(cfg.decode_base) *
                             (1.0 + slope * static_cast<double>(decode_batch - 1)));
  }
  return static_cast<TimeNs>(static_cast<double>(t) * config_.compute_dilation);
}

TimeNs PipelineInstance::StageCommTime(size_t stage, int prefill_tokens,
                                       int decode_batch) const {
  const StageConfig& cfg = stages_[stage];
  Bytes bytes = cfg.prefill_act_per_token * prefill_tokens +
                cfg.decode_act_per_req * decode_batch;
  return cfg.comm_latency + TransferTime(bytes, cfg.comm_bandwidth);
}

TimeNs PipelineInstance::DecodeIterationTime(size_t stage, int decode_batch) const {
  if (decode_batch < 0 || decode_batch > config_.per_group_capacity) {
    return StageIterationTime(stage, 0, decode_batch);  // InjectDecoding can overfill
  }
  const size_t stride = static_cast<size_t>(config_.per_group_capacity) + 1;
  if (decode_cache_.empty()) {
    decode_cache_.assign(stages_.size() * stride, {-1, -1});
  }
  TimeNs& slot = decode_cache_[stage * stride + static_cast<size_t>(decode_batch)].first;
  if (slot < 0) {
    slot = StageIterationTime(stage, 0, decode_batch);
  }
  return slot;
}

TimeNs PipelineInstance::DecodeCommTime(size_t stage, int decode_batch) const {
  if (decode_batch < 0 || decode_batch > config_.per_group_capacity) {
    return StageCommTime(stage, 0, decode_batch);
  }
  const size_t stride = static_cast<size_t>(config_.per_group_capacity) + 1;
  if (decode_cache_.empty()) {
    decode_cache_.assign(stages_.size() * stride, {-1, -1});
  }
  TimeNs& slot = decode_cache_[stage * stride + static_cast<size_t>(decode_batch)].second;
  if (slot < 0) {
    slot = StageCommTime(stage, 0, decode_batch);
  }
  return slot;
}

void PipelineInstance::AdmitFromPending(Group& group) {
  int budget_requests = config_.max_prefill_requests_per_iteration;
  int budget_tokens = config_.prefill_token_budget_per_iteration;
  size_t group_cap = static_cast<size_t>(config_.per_group_capacity);
  bool admitted_any = false;
  while (!pending_.empty() && budget_requests > 0 &&
         group.decoding.size() + group.prefilling.size() < group_cap) {
    Request* r = pending_.front();
    // The budget caps prompt work per iteration, but one request always gets through so
    // prompts longer than the budget cannot be starved.
    int prompt_cost = r->spec.prompt_tokens + r->recompute_tokens;
    if (admitted_any && prompt_cost > budget_tokens) {
      break;
    }
    pending_.pop_front();
    budget_tokens -= prompt_cost;
    --budget_requests;
    r->phase = RequestPhase::kPrefilling;
    group.prefilling.push_back(r);
    ++inflight_;
    admitted_any = true;
  }
}

void PipelineInstance::PumpGroups() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    TryStart(g);
  }
}

void PipelineInstance::TryStart(size_t group_index) {
  if (state_ != InstanceState::kActive && state_ != InstanceState::kDraining) {
    return;
  }
  Group& group = groups_[group_index];
  if (group.busy) {
    return;
  }
  AdmitFromPending(group);
  if (group.decoding.empty() && group.prefilling.empty()) {
    return;
  }
  group.busy = true;
  ++busy_groups_;

  // Take the wave's prompt batch (recycled buffer: the swap hands back the vector the
  // previous wave released) and pin the decode batch as a prefix of `decoding` — see
  // the Group comment for why appends cannot disturb it.
  group.wave_prefilling.swap(group.prefilling);
  group.wave_decode_count = group.decoding.size();

  int prefill_tokens = 0;
  for (const Request* r : group.wave_prefilling) {
    // recompute_tokens is the KV-rebuild tail of a failure-recovered request: tokens it
    // already generated whose KV died with the old instance (0 outside recovery).
    prefill_tokens += r->spec.prompt_tokens + r->recompute_tokens;
  }
  int decode_batch = static_cast<int>(group.wave_decode_count);

  TimeNs t = sim_->now();
  TimeNs start0 = -1;
  TimeNs exec_total = 0;
  TimeNs comm_total = 0;
  // Stall cycles (§3.3): stage idle gaps count as stalls only while a backlog exists —
  // bubbles with work waiting are lost capacity; bubbles without backlog are just the
  // pipeline's natural fill/drain behaviour.
  const bool backlog = !pending_.empty();
  const size_t num_stages = stages_.size();
  // Fail-slow degradation is applied at use time, never baked into the memoized
  // decode cache: the cache keeps the healthy profile (what the controller believes)
  // and a degraded server stretches each wave here, so a throttle that clears stops
  // being priced on the very next wave. One flag check on the healthy path.
  const Cluster* cluster = network_->cluster();
  const bool degraded = cluster->AnyDegraded();
  for (size_t s = 0; s < num_stages; ++s) {
    const TimeNs busy_until = stage_busy_until_[s];
    TimeNs start = std::max(t, busy_until);
    if (s == 0) {
      start0 = start;
    }
    if (backlog && start > busy_until && busy_until >= last_all_idle_) {
      stage_stall_accum_[s] += start - busy_until;
    }
    TimeNs st = prefill_tokens == 0 ? DecodeIterationTime(s, decode_batch)
                                    : StageIterationTime(s, prefill_tokens, decode_batch);
    stage_busy_base_accum_[s] += st;
    if (degraded) {
      double perf = cluster->ServerPerf(stages_[s].server);
      if (perf != 1.0) {
        st = static_cast<TimeNs>(static_cast<double>(st) / perf);
      }
    }
    stage_busy_until_[s] = start + st;
    stage_busy_accum_[s] += st;
    exec_total += st;
    t = start + st;
    if (s + 1 < num_stages) {
      TimeNs c = prefill_tokens == 0 ? DecodeCommTime(s, decode_batch)
                                     : StageCommTime(s, prefill_tokens, decode_batch);
      if (degraded && stages_[s].comm_nic) {
        double link = std::min(cluster->ServerLinkFactor(stages_[s].server),
                               cluster->ServerLinkFactor(stages_[s].next_server));
        if (link != 1.0) {
          TimeNs healthy_c = c;
          c = static_cast<TimeNs>(static_cast<double>(c) / link);
          // The stretch is charged to this stage's *observed* busy time (its NIC is
          // the bottleneck) and never to the base, so the health monitor's
          // observed/base ratio sees sick links as well as sick SMs.
          stage_busy_accum_[s] += c - healthy_c;
        }
      }
      t += c;
      comm_total += c;
    }
  }

  for (Request* r : group.wave_prefilling) {
    if (r->first_exec_start < 0) {
      r->first_exec_start = start0;
    }
    r->exec_ns += exec_total;
    r->comm_ns += comm_total;
  }
  for (Request* r : group.decoding) {
    r->exec_ns += exec_total;
    r->comm_ns += comm_total;
  }
  ++stats_.iterations;

  // The capture fits std::function's inline buffer: scheduling a wave allocates nothing.
  group.wave_event =
      sim_->Schedule(t - sim_->now(), [this, group_index] { FinishIteration(group_index); });
}

void PipelineInstance::CompleteRequest(Request* request) {
  request->phase = RequestPhase::kDone;
  request->done_time = sim_->now();
  kv_.Remove(request->spec.id);
  ++stats_.requests_completed;
  --inflight_;
  if (on_complete_) {
    on_complete_(request);
  }
}

void PipelineInstance::FinishIteration(size_t group_index) {
  Group& group = groups_[group_index];
  group.busy = false;
  group.wave_event = 0;
  --busy_groups_;
  TimeNs now = sim_->now();

  // The wave's decode batch is the first `wave_decode_count` entries; everything after
  // (mid-wave injections, then the prompts promoted below) did not advance this wave.
  const size_t advanced = group.wave_decode_count;
  const int64_t completed_before = stats_.requests_completed;

  for (Request* r : group.wave_prefilling) {
    r->phase = RequestPhase::kDecoding;
    // A recovered request (recompute_tokens > 0) keeps its original first-token time
    // and generated-token count: this prompt pass only rebuilt KV it had already
    // earned. On the normal path both fields are at their initial values, so these
    // writes are identical to the historical unconditional ones.
    if (r->first_token_time < 0) {
      r->first_token_time = now;
    }
    r->tokens_generated += 1;
    r->recompute_tokens = 0;
    ++stats_.prefills_completed;
    ++stats_.tokens_generated;
    if (r->remaining_tokens() <= 0) {
      CompleteRequest(r);
    } else {
      group.decoding.push_back(r);
    }
  }
  group.wave_prefilling.clear();

  // Compact in place: completed requests drop out, relative order is preserved.
  size_t write = 0;
  for (size_t i = 0; i < group.decoding.size(); ++i) {
    Request* r = group.decoding[i];
    if (i < advanced) {
      ++r->tokens_generated;
      ++stats_.tokens_generated;
      if (r->remaining_tokens() <= 0) {
        CompleteRequest(r);
        continue;
      }
    }
    group.decoding[write++] = r;
  }
  group.decoding.resize(write);

  NoteMaybeIdle();
  // Admissibility (capacity head-room, KV fit, load) only moves when a request
  // completed; a wave that merely advanced tokens cannot unblock the router queue, so
  // skip the (otherwise per-iteration) dispatch scan.
  if (stats_.requests_completed != completed_before && on_pump_) {
    on_pump_();
  }
  CheckHaltAndDrain();
  if (state_ == InstanceState::kActive || state_ == InstanceState::kDraining) {
    TryStart(group_index);
  }
  NoteMaybeIdle();
}

void PipelineInstance::NoteMaybeIdle() {
  if (inflight_ == 0 && pending_.empty()) {
    last_all_idle_ = sim_->now();
  }
}

TimeNs PipelineInstance::EstimateTraversal(int group_batch) const {
  TimeNs total = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    total += DecodeIterationTime(s, group_batch);
    if (s + 1 < stages_.size()) {
      total += DecodeCommTime(s, group_batch);
    }
  }
  return total;
}

TimeNs PipelineInstance::EstimateCadence(int group_batch) const {
  TimeNs worst = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    worst = std::max(worst, DecodeIterationTime(s, group_batch));
  }
  return worst;
}

TimeNs PipelineInstance::TotalStall() const {
  TimeNs total = 0;
  for (TimeNs stall : stage_stall_accum_) {
    total += stall;
  }
  return total;
}

TimeNs PipelineInstance::TotalBusy() const {
  TimeNs total = 0;
  for (TimeNs busy : stage_busy_accum_) {
    total += busy;
  }
  return total;
}

double PipelineInstance::MeanStageUtilization() const {
  if (activated_at_ < 0 || sim_->now() <= activated_at_) {
    return 0.0;
  }
  double window = static_cast<double>(sim_->now() - activated_at_);
  return static_cast<double>(TotalBusy()) / (window * static_cast<double>(stages_.size()));
}

}  // namespace flexpipe
