// Endurance stress: ~1 simulated hour of multi-model traffic streamed through the
// shared 1024-GPU deployment — millions of requests through one process.
//
// stress_scale measures substrate *throughput*; this bench proves substrate *memory*
// stays proportional to in-flight work, not trace length. Everything O(trace) is off:
// the workload is drawn lazily (StreamingWorkloadSource), completed requests are
// recycled through the runner's pool, and the metrics collector keeps histograms but
// no per-completion series. The headline outputs are the peak event-arena slot count
// and the peak live-request count: both must stay flat no matter how long the
// scenario runs, which is what makes hour-scale (PipeBoost/HydraServe-style) sustained
// traffic feasible where the materialized path pinned one pre-scheduled event per
// request. CI runs the reduced FLEXPIPE_STRESS_SCALE=ci shape against events/sec and
// arena-headroom floors.
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct EnduranceParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;  // per EvaluationModels() entry
  TimeNs duration;
  // Hard ceiling on event-arena slots: generous headroom over the in-flight
  // steady state, far below one-slot-per-request. Exceeding it means some part of the
  // stack scales with trace length again.
  size_t arena_slot_budget;
};

EnduranceParams FullScale() {
  EnduranceParams p;
  p.scale_name = "full";
  p.cluster = StressClusterConfig();  // 1024 GPUs / 448 servers, shared with stress_scale
  // 300 rps aggregate * 3600 s = 1.08M requests; light enough that the fleet reaches a
  // steady state and the bench finishes in minutes of wall time.
  p.qps = {100.0, 100.0, 60.0, 40.0};
  p.duration = 1 * kHour;
  p.arena_slot_budget = 50'000;
  return p;
}

EnduranceParams CiScale() {
  EnduranceParams p;
  p.scale_name = "ci";
  p.cluster = StressCiClusterConfig();
  // 56 rps for 5 simulated minutes: the identical streaming/recycling code paths at
  // runner-friendly cost.
  p.qps = {18.0, 18.0, 12.0, 8.0};
  p.duration = 5 * kMinute;
  p.arena_slot_budget = 20'000;
  return p;
}

double MaxRssMiB() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux reports KiB
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  EnduranceParams params = ci ? CiScale() : FullScale();

  PrintHeader("Endurance stress: streamed hour-scale multi-model serving",
              "memory bounded by in-flight work, not trace length (not a paper figure)");

  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  // The only far-future event a streaming run schedules is the next arrival; a tight
  // near window keeps dense arrival bursts out of the hot heap's way.
  env_config.sim.near_window = 100 * kMillisecond;
  ExperimentEnv env(env_config);

  double aggregate_qps = 0.0;
  for (double q : params.qps) {
    aggregate_qps += q;
  }
  std::printf("scale=%s: %d GPUs / %d servers, %zu models, CV=2 arrivals, %.0f rps for "
              "%.0f simulated seconds (~%.1fM requests)\n",
              params.scale_name, env.cluster().gpu_count(), env.cluster().server_count(),
              models.size(), aggregate_qps, ToSeconds(params.duration),
              aggregate_qps * ToSeconds(params.duration) / 1e6);

  MergedRequestStream stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.duration);
  auto system = MakeSharedClusterSystem(SystemKind::kFlexPipe, env, params.qps);
  // Hour-scale runs retain no per-completion series; histograms carry the metrics.
  system->metrics().SetKeepCompletionSeries(false);

  auto wall_start = std::chrono::steady_clock::now();
  StreamingRunReport report = RunStreamingWorkload(
      env, *system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;

  const MetricsCollector& m = system->metrics();
  const double executed = static_cast<double>(env.sim().executed_events());
  const double events_per_sec = executed / wall.count();
  const double completion_rate =
      static_cast<double>(m.completed()) / static_cast<double>(report.submitted);
  const size_t arena_slots = env.sim().arena_slots();
  const double arena_headroom = static_cast<double>(params.arena_slot_budget) /
                                static_cast<double>(arena_slots);

  TextTable table({"Metric", "Value"});
  table.AddRow({"requests streamed", std::to_string(report.submitted)});
  table.AddRow({"requests completed", std::to_string(m.completed())});
  table.AddRow({"completion rate", TextTable::Num(completion_rate, 3)});
  table.AddRow({"goodput rate", TextTable::Num(m.GoodputRate(report.submitted), 3)});
  table.AddRow({"simulated span (s)", TextTable::Num(ToSeconds(report.ran_until), 0)});
  table.AddRow({"executed events", TextTable::Num(executed, 0)});
  table.AddRow({"run wall time (s)", TextTable::Num(wall.count(), 2)});
  table.AddRow({"events/sec", TextTable::Num(events_per_sec, 0)});
  table.AddRow({"peak live requests", std::to_string(report.peak_live_requests)});
  table.AddRow({"peak event-arena slots", std::to_string(arena_slots)});
  table.AddRow({"arena slot budget", std::to_string(params.arena_slot_budget)});
  table.AddRow({"peak reserved GPUs", std::to_string(system->peak_reserved_gpus())});
  table.AddRow({"process max RSS (MiB)", TextTable::Num(MaxRssMiB(), 1)});
  table.Print();

  std::printf("\nmemory check: %zu arena slots and %zu peak live requests for %" PRId64
              " streamed requests -> %.2f%% / %.2f%% of trace length\n",
              arena_slots, report.peak_live_requests, report.submitted,
              100.0 * static_cast<double>(arena_slots) /
                  static_cast<double>(report.submitted),
              100.0 * static_cast<double>(report.peak_live_requests) /
                  static_cast<double>(report.submitted));

  reporter.Metric("submitted", static_cast<double>(report.submitted));
  reporter.Metric("completed", static_cast<double>(m.completed()));
  reporter.Metric("completion_rate", completion_rate);
  reporter.Metric("goodput_rate", m.GoodputRate(report.submitted));
  reporter.Metric("executed_events", executed);
  reporter.Metric("run_wall_time_s", wall.count());
  reporter.Metric("events_per_sec", events_per_sec);
  reporter.Metric("peak_live_requests", static_cast<double>(report.peak_live_requests));
  reporter.Metric("peak_arena_slots", static_cast<double>(arena_slots));
  // Floored in ci/perf_floor.json: >= 1.0 means the arena stayed within budget. The
  // exit code enforces the hard ceiling; the floor catches creeping regressions.
  reporter.Metric("arena_slot_headroom", arena_headroom);
  reporter.Metric("max_rss_mib", MaxRssMiB());

  if (arena_slots > params.arena_slot_budget) {
    std::printf("FAIL: event arena grew past the in-flight budget (%zu > %zu) — "
                "something scales with trace length again\n",
                arena_slots, params.arena_slot_budget);
    return 1;
  }
  if (report.peak_live_requests * 4 > static_cast<size_t>(report.submitted)) {
    std::printf("FAIL: peak live requests are a constant fraction of the trace — "
                "recycling is not bounding request storage\n");
    return 1;
  }
  return completion_rate > 0.5 ? 0 : 1;
}

}  // namespace

REGISTER_BENCH(stress_endurance,
               "Endurance stress: 1 simulated hour / 1M+ streamed requests, flat memory",
               Run);
