// Fig. 8: end-to-end latency breakdown across systems and request distributions.
//
// All five systems at CV in {1, 2, 4}, 20 QPS: response time decomposed into queue /
// execution / communication, plus the goodput rate annotation. The paper's headline:
// FlexPipe accepts higher communication time to slash queueing, ending 38-66% faster
// overall while holding ~100% goodput.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 8 - end-to-end latency breakdown",
              "Fig. 8 (response time split + goodput, CV in {1,2,4}, 20 QPS)");

  for (double cv : {1.0, 2.0, 4.0}) {
    std::printf("--- CV = %.0f ---\n", cv);
    TextTable table({"System", "RT(s)", "Queue(s)", "Exec(s)", "Comm(s)", "Goodput"});
    double flexpipe_rt = 0.0;
    double best_static_rt = 1e18;
    for (SystemKind kind : AllSystems()) {
      // Identically seeded stream per system: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv);
      CellResult cell = RunCellStreaming(kind, stream);
      table.AddRow({KindName(kind), TextTable::Num(cell.mean_latency_s, 2),
                    TextTable::Num(cell.breakdown.queue_s, 2),
                    TextTable::Num(cell.breakdown.exec_s, 2),
                    TextTable::Num(cell.breakdown.comm_s, 3),
                    TextTable::Pct(cell.goodput_rate, 0)});
      if (kind == SystemKind::kFlexPipe) {
        flexpipe_rt = cell.mean_latency_s;
        ReportCell(reporter, "flexpipe_" + CvTag(cv) + "_", cell);
      } else {
        best_static_rt = std::min(best_static_rt, cell.mean_latency_s);
      }
    }
    table.Print();
    std::printf("FlexPipe vs best static: %.1f%% lower mean RT "
                "(paper: 38.3%% at CV=1, 46.9%% at CV=2, 66.1%% at CV=4)\n\n",
                100.0 * (1.0 - flexpipe_rt / best_static_rt));
    reporter.Metric(CvTag(cv) + "_rt_reduction_vs_best_static",
                    1.0 - flexpipe_rt / best_static_rt);
  }
  return 0;
}

REGISTER_BENCH(fig8, "Fig. 8: end-to-end latency breakdown across systems", Run);
