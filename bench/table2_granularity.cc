// Table 2: performance metrics for different pipeline granularities (OPT-66B, seq 4096).
//
// For each granularity in the ladder: parallel parameter-load time, per-stage compute,
// per-iteration communication overhead, and maximum supported batch — next to the
// paper's measured values, which are the calibration anchors.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  bench::PrintHeader("Table 2 - pipeline granularity metrics",
                     "Table 2 (OPT-66B, sequence length 4096)");

  CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(Opt66B());
  ModelProfile profile = profiler.Profile(graph);
  PartitionerConfig pconfig;
  pconfig.ladder = {4, 8, 16, 32};
  Partitioner partitioner(pconfig);
  GranularityLadder ladder = partitioner.BuildLadder(profile);

  Cluster cluster(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});

  const std::map<int, std::tuple<double, double, double, int>> paper = {
      {4, {47.14, 69.94, 6.3, 128}},
      {8, {13.05, 36.63, 14.7, 256}},
      {16, {9.19, 18.67, 31.5, 512}},
      {32, {5.43, 9.67, 65.1, 1024}},
  };

  TextTable table({"Stages", "Load(s)", "[paper]", "Compute(ms)", "[paper]", "Comm(ms)",
                   "[paper]", "MaxBatch", "[paper]"});
  for (int stages : ladder.granularities) {
    const PipelinePlan& plan = ladder.plan(stages);
    // Stages load in parallel: wall time = slowest stage.
    TimeNs load = 0;
    for (const StagePlan& s : plan.stages) {
      load = std::max(load, cost.ColdLoadTime(s.param_bytes));
    }
    // Per-stage compute at reference conditions = bottleneck stage of the DP plan.
    TimeNs compute = plan.BottleneckCompute() +
                     FromMillis(cost.config().per_stage_overhead_ms);
    // Total per-iteration communication: (S-1) hops at profiling activation size over
    // the intra-rack fabric.
    TimeNs comm = 0;
    for (int s = 0; s + 1 < plan.num_stages(); ++s) {
      Bytes act = plan.stages[static_cast<size_t>(s)].output_activation_bytes;
      comm += network.Latency(LinkTier::kIntraRack) +
              TransferTime(act, network.Bandwidth(LinkTier::kIntraRack));
    }
    int max_batch = cost.MaxRequestsPerStage() * stages;

    auto [p_load, p_comp, p_comm, p_batch] = paper.at(stages);
    table.AddRow({std::to_string(stages), TextTable::Num(ToSeconds(load), 2),
                  TextTable::Num(p_load, 2), TextTable::Num(ToMillis(compute), 2),
                  TextTable::Num(p_comp, 2), TextTable::Num(ToMillis(comm), 1),
                  TextTable::Num(p_comm, 1), std::to_string(max_batch),
                  std::to_string(p_batch)});
    const std::string tag = "stages" + std::to_string(stages);
    reporter.Metric(tag + "_load_s", ToSeconds(load));
    reporter.Metric(tag + "_compute_ms", ToMillis(compute));
    reporter.Metric(tag + "_comm_ms", ToMillis(comm));
    reporter.Metric(tag + "_max_batch", max_batch);
  }
  table.Print();

  std::printf("\nShape checks: load(4)/load(32) = %.1fx (paper 8.7x), "
              "batch scales as 32*S exactly.\n",
              ToSeconds(cost.ColdLoadTime(ladder.plan(4).MaxStageParams())) /
                  ToSeconds(cost.ColdLoadTime(ladder.plan(32).MaxStageParams())));
  return 0;
}

REGISTER_BENCH(table2, "Table 2: per-granularity load/compute/comm/batch metrics", Run);
