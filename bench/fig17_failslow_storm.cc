// Fail-slow storm bench: gray failures, straggler detection, and health-driven
// proactive refactoring.
//
// Unlike fig15/fig16 nothing dies here: a rolling thermal-throttle wave slows the
// busiest zones' compute to a fraction of nominal, and a sick top-of-rack uplink
// degrades a whole rack's NICs — the hardware keeps serving, just slower, so no
// GPU-loss event ever fires and the fail-stop recovery machinery is blind by
// construction. Each storm runs under two policies on the parallel sweep driver:
//   mitigate — the HealthMonitor flags stragglers from observed/base busy ratios,
//              quarantines them out of the placer's candidate set, and FlexPipe
//              proactively reforms the stages standing on them onto healthy capacity
//              (KV progress intact via Eq. 10 recompute masks), readmitting servers
//              after clean re-probes once the throttle clears;
//   ignore   — detection runs (flags and detection latency are still measured) but
//              nothing is quarantined or migrated: the fleet limps on degraded
//              hardware until the fault clears on its own.
// A healthy pair (same policies, no faults) pins the false-positive baseline — the
// monitor's ratio is exactly 1.0 on healthy hardware, so zero flags is a
// deterministic contract, not a statistical hope — and provides the P99 denominator.
//
// The claims gated here and by CI: mitigation strictly beats ignoring on storm-window
// P99 inflation and goodput-dip area for the throttle storm, detection latency is
// bounded, healthy arms see zero flags and zero quarantines, and every arm drains
// with the exactly-once ledger intact (nothing lost, nothing stuck).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/sweep.h"
#include "src/common/stats.h"
#include "src/sim/faults.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct FailSlowParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;  // per EvaluationModels() entry
  TimeNs pre_duration;      // phase 1: steady state before the storm
  TimeNs storm_duration;    // phase 2: degradation lands and serving is measured
  TimeNs fault_offset;      // first degrade, relative to phase-2 start
  TimeNs throttle_recover;  // per-zone throttle clears this long after infection
  TimeNs link_recover;      // rack uplink degradation clears after this
  TimeNs throttle_quench;   // cooling stops the wave spreading
};

FailSlowParams FullScale() {
  FailSlowParams p;
  p.scale_name = "full";
  p.cluster = StressClusterConfig();  // 1024 GPUs / 448 servers (bench/common.h)
  // Below the saturation knee: a storm study needs headroom on the healthy
  // baseline, or queueing noise swamps the degradation signal.
  p.qps = {120.0, 120.0, 80.0, 55.0};
  p.pre_duration = 60 * kSecond;
  p.storm_duration = 180 * kSecond;
  p.fault_offset = 15 * kSecond;
  // Fail-slow faults do not self-heal on serving timescales — a cooked heatsink or
  // flapping optic stays sick until an operator swaps it. The throttle outlives the
  // measured storm window so "ignore" pays for the full storm; only the link
  // episode clears mid-run (exercises the clear path + degraded-span accounting).
  p.throttle_recover = 400 * kSecond;
  p.link_recover = 100 * kSecond;
  // 448 servers = 112 thermal zones: the wave needs more spread generations than
  // the 1/8-scale run to throttle a comparable fleet fraction.
  p.throttle_quench = 16 * kSecond;
  return p;
}

FailSlowParams CiScale() {
  FailSlowParams p;
  p.scale_name = "ci";
  p.cluster = StressCiClusterConfig();  // 128 GPUs / 56 servers
  p.qps = {40.0, 40.0, 26.0, 17.0};
  p.pre_duration = 30 * kSecond;
  p.storm_duration = 90 * kSecond;
  p.fault_offset = 10 * kSecond;
  // Persists past the storm window (see FullScale): "ignore" limps for the whole
  // measurement; mitigation's one-time evacuation cost amortizes over it.
  p.throttle_recover = 200 * kSecond;
  p.link_recover = 50 * kSecond;
  // Shorter quench at 1/8 scale, same rationale as fig16's cascade: the wave should
  // degrade a measurable slice of the fleet, not most of it.
  p.throttle_quench = 4 * kSecond;
  return p;
}

enum class Scenario { kThrottleWave, kLinkDegrade, kHealthy };

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kThrottleWave:
      return "throttle_wave";
    case Scenario::kLinkDegrade:
      return "link_degrade";
    case Scenario::kHealthy:
      return "healthy";
  }
  return "?";
}

// 0.12x compute under throttle (a clock-floored GPU, ~8x slower) -> observed/base
// ~8.3, far above the 1.25 flag threshold — and deep enough that limping through
// the throttle costs more than one round of proactive migrations. A mild throttle
// (0.4x and up) is the regime where *ignoring wins*: the router load-balances
// around slow instances, while an evacuation displaces every inflight request on
// the victim; the health stack is for faults past that break-even. 0.2x NIC
// bandwidth stretches inter-server activation hops 5x.
constexpr double kThrottleMultiplier = 0.12;
constexpr double kLinkFactor = 0.2;
constexpr TimeNs kDetectionBound = 20 * kSecond;

// Deterministic impact-maximising victim picks, evaluated at fault time so they see
// the actual placement: argmax of serving-reserved bytes with an id tie-break.
ThermalZoneId BusiestThermalZone(const Cluster& cluster) {
  std::vector<Bytes> reserved(static_cast<size_t>(cluster.thermal_zone_count()), 0);
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    ThermalZoneId z = cluster.ThermalZoneOf(cluster.ServerOf(g));
    reserved[static_cast<size_t>(z)] += cluster.gpu(g).reserved_memory();
  }
  ThermalZoneId best = 0;
  for (ThermalZoneId z = 1; z < cluster.thermal_zone_count(); ++z) {
    if (reserved[static_cast<size_t>(z)] > reserved[static_cast<size_t>(best)]) {
      best = z;
    }
  }
  return best;
}

RackId BusiestRack(const Cluster& cluster) {
  std::vector<Bytes> reserved(static_cast<size_t>(cluster.rack_count()), 0);
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    RackId r = cluster.RackOf(cluster.ServerOf(g));
    reserved[static_cast<size_t>(r)] += cluster.gpu(g).reserved_memory();
  }
  RackId best = 0;
  for (RackId r = 1; r < cluster.rack_count(); ++r) {
    if (reserved[static_cast<size_t>(r)] > reserved[static_cast<size_t>(best)]) {
      best = r;
    }
  }
  return best;
}

HealthConfig BenchHealthConfig(bool mitigate) {
  HealthConfig h;
  h.enabled = true;
  h.ewma_alpha = 0.5;
  h.straggler_ratio = 1.25;
  h.hysteresis_windows = 3;
  h.quarantine_strikes = 1;
  h.reprobe_interval = 10 * kSecond;
  h.readmit_probes = 2;
  h.mitigate = mitigate;
  // Sized to cover the whole throttle wave (≈3 zones) so every clock-floored
  // server is evacuated, while still refusing a fleet-scale wave — quarantining
  // past free healthy headroom turns evacuations into failed relaunches.
  h.max_quarantine_fraction = 0.25;
  return h;
}

std::unique_ptr<FlexPipeSystem> MakeFlexPipe(ExperimentEnv& env,
                                             const std::vector<double>& qps,
                                             bool mitigate) {
  std::vector<FlexPipeSystem::ModelDeployment> deployments;
  for (size_t i = 0; i < qps.size(); ++i) {
    FlexPipeSystem::ModelDeployment d;
    d.ladder = &env.ladder(static_cast<int>(i));
    d.config.model_id = static_cast<int>(i);
    d.config.initial_stages = d.ladder->coarsest();
    d.config.target_peak_rps = qps[i];
    d.config.default_slo = kDefaultSlo;
    d.config.scaling.reclaim_idle = 45 * kSecond;
    d.config.fault_recovery = FaultRecoveryPolicy::kReform;
    // The health monitor is shared and parameterised by the first deployment's knobs,
    // like the placer; set on every deployment for uniformity.
    d.config.health = BenchHealthConfig(mitigate);
    deployments.push_back(d);
  }
  return std::make_unique<FlexPipeSystem>(env.Context(), std::move(deployments));
}

// Storm-window P99 over a fixed span, so arms with different drain lengths compare
// the same interval.
double WindowP99(const std::vector<CompletionSample>& completions, TimeNs from,
                 TimeNs until) {
  std::vector<double> lat;
  for (const CompletionSample& c : completions) {
    if (c.done_time >= from && c.done_time < until) {
      lat.push_back(ToSeconds(c.latency));
    }
  }
  if (lat.empty()) {
    return 0.0;
  }
  return Percentile(std::move(lat), 99.0);
}

// One (scenario, policy) universe. Never prints (sweep-arm contract).
ArmResult RunFailSlowArm(const FailSlowParams& params, Scenario scenario, bool mitigate) {
  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  ExperimentEnv env(env_config);
  std::unique_ptr<FlexPipeSystem> system = MakeFlexPipe(env, params.qps, mitigate);

  FaultInjector injector(&env.sim(), &env.cluster());
  FlexPipeSystem* sys = system.get();
  injector.AddGpuLossListener(
      [sys](const std::vector<GpuId>& lost) { sys->OnGpusLost(lost); });

  const TimeNs storm_start = kWarmup + params.pre_duration;
  const TimeNs fault_time = storm_start + params.fault_offset;
  switch (scenario) {
    case Scenario::kThrottleWave:
      // Victim chosen against the live placement just before impact.
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, &params,
                                                       fault_time] {
        injector.Arm(FaultPlan::ThrottleWave(
            fault_time, BusiestThermalZone(env.cluster()), env.cluster(),
            kThrottleMultiplier, /*spread_factor=*/0.9, /*spread_interval=*/2 * kSecond,
            params.throttle_quench, params.throttle_recover, kSeed));
      });
      break;
    case Scenario::kLinkDegrade:
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, &params,
                                                       fault_time] {
        injector.Arm(FaultPlan::RackLinkDegrade(fault_time, BusiestRack(env.cluster()),
                                                kLinkFactor, params.link_recover));
      });
      break;
    case Scenario::kHealthy:
      break;  // detection runs against a clean fleet: the false-positive baseline
  }

  WorkloadHarness harness(env, {system.get()});
  MergedRequestStream pre_stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.pre_duration, kSeed);
  harness.RunPhase(pre_stream, RunOptions{.horizon = storm_start, .warmup = kWarmup});

  MergedRequestStream storm_stream = MultiModelWorkloadStream(
      models, params.qps, /*cv=*/2.0, params.storm_duration, kSeed + 1);
  StreamingRunReport report = harness.RunPhase(
      storm_stream, RunOptions{.drain_grace = 900 * kSecond, .warmup = storm_start});
  harness.Finish();

  const MetricsCollector& m = system->metrics();
  const ServingSystemBase::FailureStats& stats = system->failure_stats();
  const HealthMonitor* monitor = system->health_monitor();
  const int64_t submitted = harness.total_submitted();
  const int64_t completed = m.completed();
  const int64_t stuck_live = static_cast<int64_t>(harness.pool().live());
  const int64_t lost = submitted - completed - stats.requests_shed - stuck_live;

  FailureImpact impact;
  impact.submitted = submitted;
  impact.requests_shed = stats.requests_shed;
  impact.instances_lost = stats.instances_lost;
  impact.whole_pipeline_losses = stats.whole_pipeline_losses;
  for (const FaultInjector::DegradationEpisode& e : injector.degradation_episodes()) {
    impact.degraded_spans.push_back({e.start, e.clear});
  }
  FailureRecoveryReport recovery = AnalyzeFailureRecovery(
      m.completions(), injector.loss_times(), report.ran_until, impact);

  // Detection latency: first flag vs first degrading fire. -1 when nothing was
  // degraded or nothing was flagged (the aggregate gates tell those apart).
  double detection_s = -1.0;
  if (!injector.degrade_times().empty() && monitor->first_flag_time() >= 0) {
    detection_s = ToSeconds(monitor->first_flag_time() - injector.degrade_times().front());
  }
  const double storm_p99 =
      WindowP99(m.completions(), storm_start, storm_start + params.storm_duration);

  const std::string prefix = std::string(ScenarioName(scenario)) + "_" +
                             (mitigate ? "mitigate" : "ignore") + "_";
  ArmResult result;
  result.metrics = {
      {prefix + "submitted", static_cast<double>(submitted)},
      {prefix + "completed", static_cast<double>(completed)},
      {prefix + "requests_lost", static_cast<double>(lost)},
      {prefix + "stuck_live", static_cast<double>(stuck_live)},
      {prefix + "storm_p99_s", storm_p99},
      {prefix + "overall_p99_s", m.LatencyPercentileSec(99)},
      {prefix + "flags", static_cast<double>(monitor->flags_raised())},
      {prefix + "quarantines", static_cast<double>(monitor->quarantine_count())},
      {prefix + "readmissions", static_cast<double>(monitor->readmissions())},
      {prefix + "quarantined_now", static_cast<double>(monitor->quarantined_now())},
      {prefix + "health_migrations", static_cast<double>(system->health_migrations())},
      {prefix + "detection_latency_s", detection_s},
      {prefix + "resumed", static_cast<double>(stats.requests_resumed)},
      {prefix + "requeued", static_cast<double>(stats.requests_requeued)},
      {prefix + "dip_area_rps_s", recovery.dip_area_rps_s},
      {prefix + "dip_depth_rps", recovery.dip_depth_rps},
      {prefix + "degraded_span_s", recovery.degraded_span_s},
      {prefix + "recovered", recovery.recovered ? 1.0 : 0.0},
  };
  // Per-arm contract: the exactly-once ledger drains clean. Everything
  // policy-comparative is gated in the aggregate below.
  result.exit_code = (lost == 0 && stuck_live == 0) ? 0 : 1;
  return result;
}

double Metric(const std::vector<ArmResult>& results, const std::string& name) {
  for (const ArmResult& result : results) {
    for (const auto& [key, value] : result.metrics) {
      if (key == name) {
        return value;
      }
    }
  }
  return 0.0;
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  const FailSlowParams params = ci ? CiScale() : FullScale();

  PrintHeader("Fig. 17: fail-slow storms — straggler detection and proactive refactoring",
              "gray failures (thermal throttle waves, sick rack uplinks) on the "
              "production deployment (robustness extension)");
  std::printf("scale=%s: %d racks, throttle %.2fx, link %.2fx, CV=2 arrivals\n\n",
              params.scale_name, params.cluster.racks, kThrottleMultiplier, kLinkFactor);

  const std::vector<Scenario> scenarios = {Scenario::kThrottleWave,
                                           Scenario::kLinkDegrade, Scenario::kHealthy};
  std::vector<SweepArm> arms;
  for (Scenario scenario : scenarios) {
    for (bool mitigate : {true, false}) {
      std::string name = std::string(ScenarioName(scenario)) + "/" +
                         (mitigate ? "mitigate" : "ignore");
      arms.push_back({name, [&params, scenario, mitigate] {
                        return RunFailSlowArm(params, scenario, mitigate);
                      }});
    }
  }
  ParallelSweepRunner runner;
  std::vector<ArmResult> results = runner.Run(arms);

  TextTable table({"Scenario", "Policy", "Storm P99 (s)", "P99 infl", "Flags", "Quar",
                   "Readmit", "Migr", "Detect (s)", "Dip area", "Lost", "Stuck"});
  double lost_total = 0.0, stuck_total = 0.0;
  int exit_code = 0;
  size_t arm_index = 0;
  for (Scenario scenario : scenarios) {
    for (bool mitigate : {true, false}) {
      const std::string prefix = std::string(ScenarioName(scenario)) + "_" +
                                 (mitigate ? "mitigate" : "ignore") + "_";
      const std::string healthy_prefix =
          std::string("healthy_") + (mitigate ? "mitigate" : "ignore") + "_";
      const double p99 = Metric(results, prefix + "storm_p99_s");
      const double healthy_p99 = Metric(results, healthy_prefix + "storm_p99_s");
      const double inflation = healthy_p99 > 0.0 ? p99 / healthy_p99 : 0.0;
      const double lost = Metric(results, prefix + "requests_lost");
      const double stuck = Metric(results, prefix + "stuck_live");
      lost_total += lost;
      stuck_total += stuck;
      exit_code |= results[arm_index].exit_code;
      ++arm_index;
      reporter.Metric(prefix + "p99_inflation", inflation);
      table.AddRow({ScenarioName(scenario), mitigate ? "mitigate" : "ignore",
                    TextTable::Num(p99, 2), TextTable::Num(inflation, 2),
                    TextTable::Num(Metric(results, prefix + "flags"), 0),
                    TextTable::Num(Metric(results, prefix + "quarantines"), 0),
                    TextTable::Num(Metric(results, prefix + "readmissions"), 0),
                    TextTable::Num(Metric(results, prefix + "health_migrations"), 0),
                    TextTable::Num(Metric(results, prefix + "detection_latency_s"), 1),
                    TextTable::Num(Metric(results, prefix + "dip_area_rps_s"), 0),
                    TextTable::Num(lost, 0), TextTable::Num(stuck, 0)});
    }
  }
  table.Print();

  const double mit_inflation = Metric(results, "throttle_wave_mitigate_storm_p99_s") /
                               std::max(1e-9, Metric(results, "healthy_mitigate_storm_p99_s"));
  const double ign_inflation = Metric(results, "throttle_wave_ignore_storm_p99_s") /
                               std::max(1e-9, Metric(results, "healthy_ignore_storm_p99_s"));
  const double mit_dip = Metric(results, "throttle_wave_mitigate_dip_area_rps_s");
  const double ign_dip = Metric(results, "throttle_wave_ignore_dip_area_rps_s");
  const double mit_detect = Metric(results, "throttle_wave_mitigate_detection_latency_s");
  const double ign_detect = Metric(results, "throttle_wave_ignore_detection_latency_s");
  const double healthy_flags = Metric(results, "healthy_mitigate_flags") +
                               Metric(results, "healthy_ignore_flags");
  const double healthy_quarantines = Metric(results, "healthy_mitigate_quarantines") +
                                     Metric(results, "healthy_ignore_quarantines");

  std::printf("\nthrottle wave: P99 inflation mitigate %.2fx vs ignore %.2fx\n",
              mit_inflation, ign_inflation);
  std::printf("throttle wave: dip area mitigate %.0f vs ignore %.0f rps*s\n", mit_dip,
              ign_dip);
  std::printf("detection latency: mitigate %.1fs, ignore %.1fs (bound %.0fs)\n",
              mit_detect, ign_detect, ToSeconds(kDetectionBound));
  std::printf("healthy arms: %.0f flags, %.0f quarantines (must be exactly zero)\n",
              healthy_flags, healthy_quarantines);

  for (const ArmResult& result : results) {
    for (const auto& [name, value] : result.metrics) {
      reporter.Metric(name, value);
    }
  }
  reporter.Metric("throttle_mitigate_p99_inflation", mit_inflation);
  reporter.Metric("throttle_ignore_p99_inflation", ign_inflation);
  reporter.Metric("max_detection_latency_s", std::max(mit_detect, ign_detect));
  reporter.Metric("healthy_flags_total", healthy_flags);
  reporter.Metric("healthy_quarantines_total", healthy_quarantines);
  reporter.Metric("requests_lost_total", lost_total);
  reporter.Metric("stuck_live_total", stuck_total);
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));

  // The tentpole claims, in gate form.
  if (!(mit_inflation < ign_inflation && mit_dip < ign_dip)) {
    std::printf("FAIL: mitigation did not strictly beat ignoring "
                "(inflation %.2f vs %.2f, dip %.0f vs %.0f)\n",
                mit_inflation, ign_inflation, mit_dip, ign_dip);
    exit_code = 1;
  }
  if (!(mit_detect >= 0.0 && mit_detect <= ToSeconds(kDetectionBound) &&
        ign_detect >= 0.0 && ign_detect <= ToSeconds(kDetectionBound))) {
    std::printf("FAIL: throttle-wave detection latency out of bounds "
                "(mitigate %.1fs, ignore %.1fs)\n",
                mit_detect, ign_detect);
    exit_code = 1;
  }
  if (healthy_flags != 0.0 || healthy_quarantines != 0.0) {
    std::printf("FAIL: false positives on a healthy fleet (%.0f flags, %.0f "
                "quarantines)\n",
                healthy_flags, healthy_quarantines);
    exit_code = 1;
  }
  if (!(Metric(results, "throttle_wave_mitigate_health_migrations") > 0.0 &&
        Metric(results, "throttle_wave_mitigate_quarantines") > 0.0)) {
    std::printf("FAIL: mitigation arm never quarantined or migrated\n");
    exit_code = 1;
  }
  if (lost_total != 0.0 || stuck_total != 0.0) {
    std::printf("FAIL: ledger violation (lost %.0f, stuck %.0f)\n", lost_total,
                stuck_total);
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace

REGISTER_BENCH(fig17_failslow_storm,
               "Fig. 17: fail-slow storms — straggler detection, quarantine, proactive reform",
               Run);
