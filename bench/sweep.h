// Parallel sweep driver: runs independent bench arms on a worker pool.
//
// Every fig* bench is a sweep over independent (system, workload, seed) cells — the
// engine itself is single-threaded by design, but the cells share nothing, so they can
// run concurrently as long as each arm builds a fully private Simulation + RNG + system
// universe inside its closure and touches no global mutable state (the ownership rules
// machine-checked by src/common/thread_annotations.h and ci/concurrency_lint.py; the
// only cross-thread simulator state is the allowlisted atomic process-event counter).
//
// Determinism contract: an arm's result depends only on its own closure, so per-arm
// results are bit-identical to the serial path at any worker count, and the runner
// merges them by arm index — never by completion order. Arms therefore must not print;
// they return metrics/rows/series and the caller renders tables on the calling thread
// after Run returns. The split mirrors onnxruntime's executor/threadpool separation
// (core/platform's threadpool knows nothing about what it schedules).
//
// Worker count comes from FLEXPIPE_SWEEP_WORKERS (default 1: the serial reference
// path, used by the perf-floor CI smoke so wall-clock metrics stay uncontended;
// 0 means std::thread::hardware_concurrency). The TSan CI job runs the sweep tests
// and a reduced-scale parallel stress_scale smoke at 4 workers.
#ifndef FLEXPIPE_BENCH_SWEEP_H_
#define FLEXPIPE_BENCH_SWEEP_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace flexpipe {
namespace bench {

// Everything one arm produces. Built inside the worker, rendered by the caller.
struct ArmResult {
  // Named scalar metrics, forwarded to the BenchReporter by the caller.
  std::vector<std::pair<std::string, double>> metrics;
  // Pre-rendered table cells (one or more rows per arm).
  std::vector<std::vector<std::string>> rows;
  // Per-window (or per-sample) series for timeline benches like fig9.
  std::vector<double> series;
  int exit_code = 0;
};

struct SweepArm {
  std::string label;
  // Must be self-contained: builds its own env/system/stream and never touches
  // state shared with another arm. Runs on a worker thread when workers > 1.
  std::function<ArmResult()> run;
};

// Deterministic merge: scatters results delivered in *any* completion order into
// arm-index order. Exposed separately so sweep_test can pin order-independence with
// adversarially shuffled completion sequences.
std::vector<ArmResult> MergeByArmIndex(
    std::vector<std::pair<size_t, ArmResult>> completed, size_t arm_count);

// FLEXPIPE_SWEEP_WORKERS, clamped to >= 1; 0 or "auto" = hardware_concurrency;
// unset/garbage = 1 (serial reference path).
int SweepWorkersFromEnv();

class FLEXPIPE_THREAD_COMPATIBLE ParallelSweepRunner {
 public:
  // workers <= 1 runs arms inline on the calling thread (the bit-identical
  // reference path). Defaults to SweepWorkersFromEnv().
  ParallelSweepRunner() : ParallelSweepRunner(SweepWorkersFromEnv()) {}
  explicit ParallelSweepRunner(int workers);

  // Runs every arm exactly once and returns results indexed by arm. Worker threads
  // claim arm indices from a shared cursor (mutex-guarded) and write each result
  // into its own pre-sized slot, so completion order never affects output.
  std::vector<ArmResult> Run(const std::vector<SweepArm>& arms) const;

  int workers() const { return workers_; }

 private:
  int workers_;
};

}  // namespace bench
}  // namespace flexpipe

#endif  // FLEXPIPE_BENCH_SWEEP_H_
