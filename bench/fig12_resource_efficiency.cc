// Fig. 12: resource efficiency — goodput against GPU utilization.
//
// Per system per CV: achieved goodput, mean GPU utilization (busy / reserved GPU-time),
// peak reserved GPUs, and the efficiency ratio goodput-per-GPU. The paper's headline:
// at CV=4 FlexPipe sustains full goodput at ~43% utilization while Tetris burns 85%
// utilization for ~13% goodput — an ~8.5x efficiency gap. High utilization in static
// systems is contention, not useful work.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 12 - goodput vs GPU utilization",
              "Fig. 12 (resource-efficiency curves, CV in {1,2,4})");

  for (double cv : {1.0, 2.0, 4.0}) {
    std::printf("--- CV = %.0f ---\n", cv);
    TextTable table({"System", "Goodput(req/s)", "GoodputRate", "GPUUtil", "MeanGPUs",
                     "PeakGPUs", "Goodput/GPU"});
    double flexpipe_eff = 0.0;
    double tetris_eff = 0.0;
    for (SystemKind kind : AllSystems()) {
      // Identically seeded stream per system: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv);
      CellResult cell = RunCellStreaming(kind, stream);
      // Efficiency against the time-averaged footprint: elastic systems only pay for
      // GPUs while they hold them.
      double per_gpu = cell.goodput_per_sec / std::max(1.0, cell.mean_gpus);
      table.AddRow({KindName(kind), TextTable::Num(cell.goodput_per_sec, 1),
                    TextTable::Pct(cell.goodput_rate, 0),
                    TextTable::Pct(cell.gpu_utilization, 1), TextTable::Num(cell.mean_gpus, 1),
                    std::to_string(cell.peak_gpus), TextTable::Num(per_gpu, 2)});
      if (kind == SystemKind::kFlexPipe) {
        flexpipe_eff = per_gpu;
        reporter.Metric("flexpipe_" + CvTag(cv) + "_gpu_utilization", cell.gpu_utilization);
        ReportCell(reporter, "flexpipe_" + CvTag(cv) + "_", cell);
      }
      if (kind == SystemKind::kTetris) {
        tetris_eff = per_gpu;
      }
    }
    table.Print();
    std::printf("FlexPipe / Tetris goodput-per-GPU: %.1fx (paper: up to 8.5x at CV=4)\n\n",
                flexpipe_eff / std::max(tetris_eff, 1e-9));
    reporter.Metric(CvTag(cv) + "_efficiency_gap_vs_tetris",
                    flexpipe_eff / std::max(tetris_eff, 1e-9));
  }
  return 0;
}

REGISTER_BENCH(fig12, "Fig. 12: goodput vs GPU utilization (resource efficiency)", Run);
