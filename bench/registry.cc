// Bench registry storage. See common.h for the REGISTER_BENCH contract.
#include "bench/common.h"
#include "src/common/thread_annotations.h"

namespace flexpipe {
namespace bench {

BenchRegistry& BenchRegistry::Instance() {
  // Mutated only by pre-main BenchRegistrar construction (single-threaded static
  // init); read-only by the time any sweep worker exists.
  FLEXPIPE_THREAD_SAFE_GLOBAL static BenchRegistry registry;
  return registry;
}

void BenchRegistry::Register(const BenchInfo& info) { benches_.push_back(info); }

BenchRegistrar::BenchRegistrar(const char* name, const char* description, BenchFn fn) {
  BenchRegistry::Instance().Register(BenchInfo{name, description, fn});
}

}  // namespace bench
}  // namespace flexpipe
