// §9.6 case study: phased production rollout.
//
// Compares a conservative static deployment (75% of peak capacity always on, the
// pre-rollout practice from §3.1) against FlexPipe's dynamic allocation (30% always-on
// floor + elastic scaling) on a diurnal trace with bursts. Reported: always-on
// reservation, allocation wait, instance initialization latency (cold vs warm), and
// service quality. Paper: reservation 75% -> 30%, allocation wait -85%, init -72%,
// no quality loss.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/trace/azure_trace.h"
#include "src/trace/streaming.h"

namespace flexpipe {
namespace {

std::vector<TimeNs> DiurnalTimestamps() {
  // A compressed "day": rate swings 6 -> 24 req/s with burst episodes.
  AzureTraceSynthesizer::Config config;
  config.days = 1;
  config.base_rate = bench::kBaselineQps * 0.7;
  config.burst_rate_per_day = 40;
  config.seed = 77;
  AzureTraceSynthesizer synth(config);
  std::vector<TimeNs> raw = synth.GenerateArrivals();
  // Compress 24 h to 12 simulated minutes, preserving the shape.
  const double compress = (12.0 * 60.0) / 86400.0;
  std::vector<TimeNs> compressed;
  compressed.reserve(raw.size() / 64);
  for (size_t i = 0; i < raw.size(); i += 64) {  // thin to ~25 req/s after compression
    compressed.push_back(static_cast<TimeNs>(static_cast<double>(raw[i]) * compress));
  }
  return compressed;
}

// Replay-backed streaming source over the diurnal trace. The replay consumes no
// arrival randomness, so handing the same fresh Rng(5) as the length stream
// reproduces the materialized Generate(replay, rng, n) token draws bit-identically
// (FillSpecs and Next both sample prompt then output, once per request, in arrival
// order). `end` sits one tick past the last timestamp so no arrival is dropped.
StreamingWorkloadSource DiurnalStream(const std::vector<TimeNs>& timestamps) {
  const TimeNs end = timestamps.empty() ? 1 : timestamps.back() + 1;
  return StreamingWorkloadSource(bench::DefaultWorkloadConfig(),
                                 std::make_unique<TraceReplayArrivals>(timestamps),
                                 /*arrival_rng=*/Rng(5), /*length_rng=*/Rng(5), end);
}

}  // namespace
}  // namespace flexpipe

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("§9.6 case study - production rollout",
              "§9.6 (always-on 75% -> 30%, allocation wait -85%, init latency -72%)");

  // Each run streams the trace lazily (request storage stays proportional to
  // in-flight work); the timestamps are shared, the length RNG re-seeded per run.
  const std::vector<TimeNs> timestamps = DiurnalTimestamps();
  std::printf("diurnal workload: %zu requests over ~12 simulated minutes\n\n",
              timestamps.size());

  // Pre-rollout: static provisioning at 75% of peak, no adaptation.
  ExperimentEnv env_static(DefaultEnvConfig());
  AlpaServeConfig static_config;
  static_config.stages = 4;
  static_config.target_peak_rps = kBaselineQps;
  static_config.provision_headroom = 0.75;
  static_config.default_slo = kDefaultSlo;
  AlpaServeSystem static_system(env_static.Context(), &env_static.ladder(0), static_config);
  StreamingWorkloadSource stream_a = DiurnalStream(timestamps);
  StreamingRunReport report_a =
      RunStreamingWorkload(env_static, static_system, stream_a,
                           RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});

  // Post-rollout: FlexPipe with a 30% always-on floor.
  ExperimentEnv env_flex(DefaultEnvConfig());
  FlexPipeConfig flex_config;
  flex_config.initial_stages = env_flex.ladder(0).coarsest();
  flex_config.target_peak_rps = kBaselineQps;
  flex_config.reserve_fraction = 0.30;
  flex_config.default_slo = kDefaultSlo;
  FlexPipeSystem flex_system(env_flex.Context(), &env_flex.ladder(0), flex_config);
  StreamingWorkloadSource stream_b = DiurnalStream(timestamps);
  StreamingRunReport report_b =
      RunStreamingWorkload(env_flex, flex_system, stream_b,
                           RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});

  auto print_row = [](const char* name, ServingSystemBase& s, const StreamingRunReport& r,
                      double reserve_frac) {
    std::printf("%-14s always-on=%2.0f%%  peak GPUs=%2d  gpu-util=%5.1f%%  "
                "alloc-wait=%.2fs  cold=%lld warm=%lld  goodput=%5.1f%%  meanRT=%.2fs\n",
                name, reserve_frac * 100, s.peak_reserved_gpus(),
                s.MeanGpuUtilization(r.ran_until) * 100, s.MeanAllocationWaitSec(),
                static_cast<long long>(s.cold_loads()), static_cast<long long>(s.warm_loads()),
                s.metrics().GoodputRate(r.submitted) * 100, s.metrics().MeanLatencySec());
  };
  print_row("static-75%", static_system, report_a, 0.75);
  print_row("FlexPipe-30%", flex_system, report_b, 0.30);

  double wait_cut = 1.0 - flex_system.MeanAllocationWaitSec() /
                              std::max(static_system.MeanAllocationWaitSec(), 1e-9);
  double warm_share = static_cast<double>(flex_system.warm_loads()) /
                      std::max<int64_t>(1, flex_system.warm_loads() + flex_system.cold_loads());
  std::printf("\nallocation wait reduction: %.0f%% (paper: 85%%)\n", wait_cut * 100);
  std::printf("warm-start share of FlexPipe launches: %.0f%% (drives the paper's 72%% init "
              "latency cut)\n",
              warm_share * 100);
  std::printf("refactors performed: %lld, last cutover pause: %.1f ms\n",
              static_cast<long long>(flex_system.refactor_count()),
              ToMillis(flex_system.last_refactor_pause()));
  reporter.Metric("alloc_wait_reduction", wait_cut);
  reporter.Metric("warm_start_share", warm_share);
  reporter.Metric("refactors", static_cast<double>(flex_system.refactor_count()));
  reporter.Metric("flexpipe_goodput_rate", flex_system.metrics().GoodputRate(report_b.submitted));
  reporter.Metric("static_goodput_rate", static_system.metrics().GoodputRate(report_a.submitted));
  return 0;
}

REGISTER_BENCH(case_study, "§9.6 case study: phased production rollout", Run);
