// Fig. 10: performance-stability percentiles for the serverless systems.
//
// FlexPipe vs ServerlessLLM vs Tetris at CV in {1, 2, 4}: P50/75/90/95/99 latency.
// The paper's point: FlexPipe's tail stays controlled while the static serverless
// systems degrade 2-3x at P90-P99 as variability rises.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 10 - latency percentiles across request distributions",
              "Fig. 10 (FlexPipe / ServerlessLLM / Tetris, CV in {1,2,4})");

  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kServerlessLlm,
                                         SystemKind::kTetris};
  for (double cv : {1.0, 2.0, 4.0}) {
    std::printf("--- CV = %.0f ---\n", cv);
    TextTable table({"System", "P50(s)", "P75(s)", "P90(s)", "P95(s)", "P99(s)"});
    double flexpipe_p99 = 0.0;
    double worst_p99 = 0.0;
    for (SystemKind kind : kinds) {
      // Identically seeded stream per system: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv);
      CellResult cell = RunCellStreaming(kind, stream);
      table.AddRow({KindName(kind), TextTable::Num(cell.p50, 2), TextTable::Num(cell.p75, 2),
                    TextTable::Num(cell.p90, 2), TextTable::Num(cell.p95, 2),
                    TextTable::Num(cell.p99, 2)});
      if (kind == SystemKind::kFlexPipe) {
        flexpipe_p99 = cell.p99;
        ReportCell(reporter, "flexpipe_" + CvTag(cv) + "_", cell);
      } else {
        worst_p99 = std::max(worst_p99, cell.p99);
      }
    }
    table.Print();
    std::printf("P99 gap vs worst serverless baseline: %.1fx\n\n",
                worst_p99 / std::max(flexpipe_p99, 1e-9));
    reporter.Metric(CvTag(cv) + "_p99_gap_vs_worst", worst_p99 / std::max(flexpipe_p99, 1e-9));
  }
  return 0;
}

REGISTER_BENCH(fig10, "Fig. 10: latency percentiles across request distributions", Run);
