// Fig. 2: resource fragmentation — (a) GPU subscription rate over time, (b) spatial
// availability heatmap.
//
// The generator churns background tenants over a simulated day; we sample the
// cluster-wide subscription rate (paper: ~216% average) and render the availability
// heatmap as ASCII (servers x time, '#' = no GPU with >=30 GiB free on that server).
#include <cstdio>

#include "bench/common.h"
#include "src/cluster/fragmentation.h"
#include "src/common/stats.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  bench::PrintHeader("Fig. 2 - GPU subscription rate and availability heatmap",
                     "Fig. 2 (Alibaba: 216% mean subscription, scattered availability)");

  Cluster cluster(EvalClusterConfig());
  FragmentationGenerator frag(&cluster, ProfileClusterC2(), 42);
  frag.ApplySnapshot();

  constexpr int kSamples = 48;  // one "30-minute" churn step per sample
  RunningStats subscription;
  std::vector<std::string> heatmap(static_cast<size_t>(cluster.server_count()));

  for (int t = 0; t < kSamples; ++t) {
    frag.ChurnStep(0.25);
    subscription.Add(cluster.MeanSubscriptionRate());
    for (ServerId s = 0; s < cluster.server_count(); ++s) {
      const Server& server = cluster.server(s);
      int avail = 0;
      for (GpuId g : server.gpus) {
        if (cluster.gpu(g).free_memory() >= GiB(30)) {
          ++avail;
        }
      }
      char c = server.gpus.empty() ? '.' : (avail == 0 ? '#' : (avail == 1 ? '+' : 'O'));
      heatmap[static_cast<size_t>(s)] += c;
    }
  }

  std::printf("(a) GPU subscription rate: mean %.0f%%  min %.0f%%  max %.0f%%  "
              "(paper: ~216%% mean)\n\n",
              subscription.mean() * 100, subscription.min() * 100, subscription.max() * 100);

  std::printf("(b) availability heatmap (rows = servers, cols = time; "
              "'#'=0 free GPUs, '+'=1, 'O'=2+, '.'=cpu-only):\n");
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    std::printf("  srv%02d |%s|\n", s, heatmap[static_cast<size_t>(s)].c_str());
  }

  // Quantify scatter: how often does any server offer a 4-GPU co-located group?
  int colocate = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    frag.ChurnStep(0.25);
    if (cluster.BestColocatedGroup(GiB(30)).size() >= 4) {
      ++colocate;
    }
  }
  std::printf("\nP(4 co-located free GPUs anywhere) = %.2f%% of snapshots "
              "(paper: 0.02%% per-GPU-set)\n",
              100.0 * colocate / 2000.0);
  reporter.Metric("mean_subscription_rate", subscription.mean());
  reporter.Metric("max_subscription_rate", subscription.max());
  reporter.Metric("p_colocate_4", colocate / 2000.0);
  return 0;
}

REGISTER_BENCH(fig2, "Fig. 2: GPU subscription rate and availability heatmap", Run);
