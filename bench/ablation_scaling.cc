// Ablation: topology-aware scaling machinery (§7) — HRG, affinity, host cache.
//
// A scale-up storm (idle fleet hit by a burst) under four FlexPipe variants. The HRG
// spreads concurrent loads (lower load slowdown), affinity + host cache turn cold starts
// warm. Measured: burst drain latency, warm-start share, allocation waits.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Ablation - topology-aware scaling (HRG / affinity / host cache)",
              "DESIGN.md AB2 (scale-up storm, §7 mechanisms toggled)");

  // Storm workload: 60 s of light traffic, then a 6x burst for 120 s, then light again —
  // the second burst is where warm starts pay off. Four lazily drawn segments with
  // per-segment child RNG streams, rebuilt identically for every variant.
  auto make_stream = [] {
    Rng base(21);
    std::vector<std::unique_ptr<RequestStream>> segments;
    auto add_segment = [&](const char* tag, double rate, double cv, TimeNs start,
                           TimeNs end) {
      Rng seg = base.Child(tag);
      segments.push_back(std::make_unique<StreamingWorkloadSource>(
          DefaultWorkloadConfig(), MakeArrivalsWithCv(rate, cv), seg,
          seg.Child("lengths"), end, start));
    };
    add_segment("phase1", 4.0, 1.0, 0, 60 * kSecond);
    add_segment("burst1", 24.0, 2.0, 60 * kSecond, 180 * kSecond);
    add_segment("lull", 4.0, 1.0, 180 * kSecond, 270 * kSecond);
    add_segment("burst2", 24.0, 2.0, 270 * kSecond, 390 * kSecond);
    return MergedRequestStream(std::move(segments));
  };

  struct Variant {
    const char* name;
    bool hrg;
    bool affinity;
    bool host_cache;
  };
  const Variant variants[] = {
      {"full", true, true, true},
      {"no-hrg", false, true, true},
      {"no-affinity", true, false, true},
      {"no-hostcache", true, true, false},
  };

  TextTable table({"Variant", "MeanRT(s)", "P99(s)", "Goodput", "WarmLoads", "ColdLoads",
                   "AllocWait(s)"});
  for (const Variant& v : variants) {
    ExperimentEnv env(DefaultEnvConfig());
    FlexPipeConfig config;
    config.initial_stages = env.ladder(0).coarsest();
    config.target_peak_rps = 24.0;
    config.default_slo = kDefaultSlo;
    config.enable_hrg = v.hrg;
    config.enable_affinity = v.affinity;
    config.enable_host_cache = v.host_cache;
    // Faster reclaim so the lull actually releases instances (making burst2 a re-scale).
    config.scaling.reclaim_idle = 30 * kSecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), config);
    MergedRequestStream stream = make_stream();
    StreamingRunReport report = RunStreamingWorkload(
        env, system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
    table.AddRow({v.name, TextTable::Num(system.metrics().MeanLatencySec(), 2),
                  TextTable::Num(system.metrics().LatencyPercentileSec(99), 2),
                  TextTable::Pct(system.metrics().GoodputRate(report.submitted), 0),
                  std::to_string(system.warm_loads()), std::to_string(system.cold_loads()),
                  TextTable::Num(system.MeanAllocationWaitSec(), 2)});
    const std::string tag = std::string(v.name) + "_";
    reporter.Metric(tag + "mean_latency_s", system.metrics().MeanLatencySec());
    reporter.Metric(tag + "p99_latency_s", system.metrics().LatencyPercentileSec(99));
    reporter.Metric(tag + "warm_loads", static_cast<double>(system.warm_loads()));
    reporter.Metric(tag + "cold_loads", static_cast<double>(system.cold_loads()));
  }
  table.Print();
  std::printf("\nexpected: 'full' has the highest warm-load share and lowest burst-2 "
              "latency; 'no-hostcache' pays cold starts on every re-scale\n");
  return 0;
}

REGISTER_BENCH(ablation_scaling, "Ablation: topology-aware scaling mechanisms (§7)", Run);
