// Fig. 13: prefill latency across the four production models.
//
// WHISPER-9B / LLAMA2-7B / BERT-21B / OPT-66B served under a production-like trace;
// FlexPipe vs AlpaServe vs ServerlessLLM. Paper: 6.4%-24.4% lower mean prefill latency,
// growing with model scale, plus visibly tighter distributions.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 13 - prefill latency across model scales",
              "Fig. 13 (four models, production-like trace, mean + distribution)");

  const std::vector<ModelSpec> models = EvaluationModels();
  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kServerlessLlm};

  TextTable table({"Model", "System", "MeanPrefill(s)", "P50(s)", "P95(s)", "vs AlpaServe"});
  for (size_t mi = 0; mi < models.size(); ++mi) {
    // Per-model rate: lighter models see more traffic in production mixes.
    double qps = models[mi].param_bytes > GiB(60) ? 10.0 : 16.0;
    WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(0);
    wconfig.lengths.prompt_max = models[mi].context_window;
    WorkloadGenerator gen(wconfig);
    Rng rng(Rng(kSeed).Child(models[mi].name).seed());
    auto specs = gen.GenerateWithCv(rng, qps, 2.0, 4 * kMinute);

    double alpa_mean = 0.0;
    struct Row {
      SystemKind kind;
      double mean, p50, p95;
    };
    std::vector<Row> rows;
    for (SystemKind kind : kinds) {
      ExperimentEnv env(DefaultEnvConfig({models[mi]}, kSeed + mi));
      auto system = MakeSystem(kind, env, 0, qps);
      std::vector<Request> storage;
      RunWorkload(env, *system, specs, storage, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
      const MetricsCollector& m = system->metrics();
      rows.push_back({kind, m.MeanPrefillSec(), m.prefill_histogram().Percentile(50),
                      m.prefill_histogram().Percentile(95)});
      if (kind == SystemKind::kAlpaServe) {
        alpa_mean = m.MeanPrefillSec();
      }
    }
    for (const Row& r : rows) {
      double delta = alpa_mean > 0 ? 100.0 * (1.0 - r.mean / alpa_mean) : 0.0;
      table.AddRow({models[mi].name, KindName(r.kind), TextTable::Num(r.mean, 3),
                    TextTable::Num(r.p50, 3), TextTable::Num(r.p95, 3),
                    r.kind == SystemKind::kAlpaServe ? "-" : TextTable::Num(delta, 1) + "%"});
      if (r.kind == SystemKind::kFlexPipe) {
        reporter.Metric(models[mi].name + "_flexpipe_mean_prefill_s", r.mean);
        reporter.Metric(models[mi].name + "_prefill_cut_vs_alpaserve", delta / 100.0);
      }
    }
  }
  table.Print();
  std::printf("\n(paper: FlexPipe improves prefill by 6.4%% on WHISPER up to 24.4%% on "
              "OPT-66B, average 17.3%%)\n");
  return 0;
}

REGISTER_BENCH(fig13, "Fig. 13: prefill latency across production model scales", Run);
