// Fig. 13: prefill latency across the four production models.
//
// WHISPER-9B / LLAMA2-7B / BERT-21B / OPT-66B served under a production-like trace;
// FlexPipe vs AlpaServe vs ServerlessLLM. Paper: 6.4%-24.4% lower mean prefill latency,
// growing with model scale, plus visibly tighter distributions.
//
// Two modes:
//   * default — each model on a private cluster, sequentially (the paper's per-model
//     measurement isolates model scale);
//   * FLEXPIPE_FIG13_SHARED=1 — all four models concurrently on ONE shared cluster via
//     each system's multi-model deployment (the production setting; see also fig14).
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

int RunSequential(BenchReporter& reporter) {
  const std::vector<ModelSpec> models = EvaluationModels();
  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kServerlessLlm};

  TextTable table({"Model", "System", "MeanPrefill(s)", "P50(s)", "P95(s)", "vs AlpaServe"});
  for (size_t mi = 0; mi < models.size(); ++mi) {
    // Per-model rate: lighter models see more traffic in production mixes.
    double qps = models[mi].param_bytes > GiB(60) ? 10.0 : 16.0;
    WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(0);
    wconfig.lengths.prompt_max = models[mi].context_window;

    double alpa_mean = 0.0;
    struct Row {
      SystemKind kind;
      double mean, p50, p95;
    };
    std::vector<Row> rows;
    for (SystemKind kind : kinds) {
      ExperimentEnv env(DefaultEnvConfig({models[mi]}, kSeed + mi));
      auto system = MakeSystem(kind, env, 0, qps);
      // Identically seeded per-model stream for every system, drawn lazily.
      StreamingWorkloadSource stream = StreamingWorkloadSource::WithCv(
          wconfig, qps, 2.0, 4 * kMinute, Rng(Rng(kSeed).Child(models[mi].name).seed()));
      RunStreamingWorkload(env, *system, stream,
                           RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
      const MetricsCollector& m = system->metrics();
      rows.push_back({kind, m.MeanPrefillSec(), m.prefill_histogram().Percentile(50),
                      m.prefill_histogram().Percentile(95)});
      if (kind == SystemKind::kAlpaServe) {
        alpa_mean = m.MeanPrefillSec();
      }
    }
    for (const Row& r : rows) {
      double delta = alpa_mean > 0 ? 100.0 * (1.0 - r.mean / alpa_mean) : 0.0;
      table.AddRow({models[mi].name, KindName(r.kind), TextTable::Num(r.mean, 3),
                    TextTable::Num(r.p50, 3), TextTable::Num(r.p95, 3),
                    r.kind == SystemKind::kAlpaServe ? "-" : TextTable::Num(delta, 1) + "%"});
      if (r.kind == SystemKind::kFlexPipe) {
        reporter.Metric(models[mi].name + "_flexpipe_mean_prefill_s", r.mean);
        reporter.Metric(models[mi].name + "_prefill_cut_vs_alpaserve", delta / 100.0);
      }
    }
  }
  table.Print();
  std::printf("\n(paper: FlexPipe improves prefill by 6.4%% on WHISPER up to 24.4%% on "
              "OPT-66B, average 17.3%%)\n");
  return 0;
}

int RunShared(BenchReporter& reporter) {
  const std::vector<ModelSpec> models = EvaluationModels();
  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kServerlessLlm};
  // Shared-cluster rates are lower than the sequential mode's: four models now split
  // the same 82 GPUs (fig14 uses the same mix).
  std::vector<double> qps(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    qps[i] = models[i].param_bytes > GiB(60) ? 4.0 : 7.0;
  }
  TextTable table({"Model", "System", "MeanPrefill(s)", "P50(s)", "P95(s)", "Completed"});
  for (SystemKind kind : kinds) {
    ExperimentEnv env(DefaultEnvConfig(models, kSeed));
    auto system = MakeSharedClusterSystem(kind, env, qps);
    // Identically seeded interleaved stream per system, drawn lazily.
    MergedRequestStream stream = MultiModelWorkloadStream(models, qps, /*cv=*/2.0, 4 * kMinute);
    RunStreamingWorkload(env, *system, stream,
                         RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
    const MetricsCollector& m = system->metrics();
    for (size_t mi = 0; mi < models.size(); ++mi) {
      const MetricsCollector* pm = m.ForModel(static_cast<int>(mi));
      // A fully starved model (no replica ever placed) must read as a failure, not as
      // zero latency.
      if (pm == nullptr) {
        table.AddRow({models[mi].name, KindName(kind), "starved", "-", "-", "0"});
        continue;
      }
      double mean = pm->MeanPrefillSec();
      table.AddRow({models[mi].name, KindName(kind), TextTable::Num(mean, 3),
                    TextTable::Num(pm->prefill_histogram().Percentile(50), 3),
                    TextTable::Num(pm->prefill_histogram().Percentile(95), 3),
                    std::to_string(pm->completed())});
      if (kind == SystemKind::kFlexPipe) {
        reporter.Metric(models[mi].name + "_flexpipe_shared_mean_prefill_s", mean);
      }
    }
  }
  table.Print();
  std::printf("\n(shared-cluster mode: all four models concurrent on one 82-GPU cluster)\n");
  return 0;
}

int Run(BenchReporter& reporter) {
  bool shared = std::getenv("FLEXPIPE_FIG13_SHARED") != nullptr;
  PrintHeader("Fig. 13 - prefill latency across model scales",
              shared ? "Fig. 13 (four models, concurrent on one shared cluster)"
                     : "Fig. 13 (four models, production-like trace, mean + distribution)");
  return shared ? RunShared(reporter) : RunSequential(reporter);
}

}  // namespace

REGISTER_BENCH(fig13, "Fig. 13: prefill latency across production model scales", Run);
