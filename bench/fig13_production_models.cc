// Fig. 13: prefill latency across the four production models.
//
// WHISPER-9B / LLAMA2-7B / BERT-21B / OPT-66B served under a production-like trace;
// FlexPipe vs AlpaServe vs ServerlessLLM. Paper: 6.4%-24.4% lower mean prefill latency,
// growing with model scale, plus visibly tighter distributions.
//
// Two modes:
//   * default — each model on a private cluster (the paper's per-model measurement
//     isolates model scale); the 12 model x system cells are independent universes
//     and run as arms on the parallel sweep driver;
//   * FLEXPIPE_FIG13_SHARED=1 — all four models concurrently on ONE shared cluster via
//     each system's multi-model deployment (the production setting; see also fig14);
//     the three per-system runs are the arms.
// Deltas vs AlpaServe are computed at merge time from arm-indexed results, so they
// are identical at any FLEXPIPE_SWEEP_WORKERS.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "bench/sweep.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

const std::vector<SystemKind> kKinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                        SystemKind::kServerlessLlm};

double Metric(const ArmResult& result, const std::string& name) {
  for (const auto& [key, value] : result.metrics) {
    if (key == name) {
      return value;
    }
  }
  return 0.0;
}

// One sequential-mode arm = one (model, system) cell on a private cluster. Fully
// self-contained universe; returns the three prefill statistics the table needs.
ArmResult RunSequentialArm(const ModelSpec& model, size_t mi, SystemKind kind) {
  // Per-model rate: lighter models see more traffic in production mixes.
  double qps = model.param_bytes > GiB(60) ? 10.0 : 16.0;
  WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(0);
  wconfig.lengths.prompt_max = model.context_window;

  ExperimentEnv env(DefaultEnvConfig({model}, kSeed + mi));
  auto system = MakeSystem(kind, env, 0, qps);
  // Identically seeded per-model stream for every system, drawn lazily.
  StreamingWorkloadSource stream = StreamingWorkloadSource::WithCv(
      wconfig, qps, 2.0, 4 * kMinute, Rng(Rng(kSeed).Child(model.name).seed()));
  RunStreamingWorkload(env, *system, stream,
                       RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  const MetricsCollector& m = system->metrics();
  ArmResult result;
  result.metrics = {{"mean", m.MeanPrefillSec()},
                    {"p50", m.prefill_histogram().Percentile(50)},
                    {"p95", m.prefill_histogram().Percentile(95)}};
  return result;
}

int RunSequential(BenchReporter& reporter) {
  const std::vector<ModelSpec> models = EvaluationModels();

  // Arm index = mi * kKinds.size() + ki, so the merge below can find every cell —
  // including each model's AlpaServe baseline — by index alone.
  std::vector<SweepArm> arms;
  for (size_t mi = 0; mi < models.size(); ++mi) {
    for (SystemKind kind : kKinds) {
      const ModelSpec& model = models[mi];
      arms.push_back({models[mi].name + "/" + KindName(kind),
                      [&model, mi, kind] { return RunSequentialArm(model, mi, kind); }});
    }
  }
  ParallelSweepRunner runner;
  auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ArmResult> results = runner.Run(arms);
  std::chrono::duration<double> sweep_wall = std::chrono::steady_clock::now() - sweep_start;

  TextTable table({"Model", "System", "MeanPrefill(s)", "P50(s)", "P95(s)", "vs AlpaServe"});
  for (size_t mi = 0; mi < models.size(); ++mi) {
    const size_t base = mi * kKinds.size();
    const double alpa_mean = Metric(results[base + 1], "mean");
    for (size_t ki = 0; ki < kKinds.size(); ++ki) {
      const SystemKind kind = kKinds[ki];
      const ArmResult& cell = results[base + ki];
      double mean = Metric(cell, "mean");
      double delta = alpa_mean > 0 ? 100.0 * (1.0 - mean / alpa_mean) : 0.0;
      table.AddRow({models[mi].name, KindName(kind), TextTable::Num(mean, 3),
                    TextTable::Num(Metric(cell, "p50"), 3),
                    TextTable::Num(Metric(cell, "p95"), 3),
                    kind == SystemKind::kAlpaServe ? "-" : TextTable::Num(delta, 1) + "%"});
      if (kind == SystemKind::kFlexPipe) {
        reporter.Metric(models[mi].name + "_flexpipe_mean_prefill_s", mean);
        reporter.Metric(models[mi].name + "_prefill_cut_vs_alpaserve", delta / 100.0);
      }
    }
  }
  table.Print();
  std::printf("\n(paper: FlexPipe improves prefill by 6.4%% on WHISPER up to 24.4%% on "
              "OPT-66B, average 17.3%%)\n");
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));
  reporter.Metric("sweep_wall_s", sweep_wall.count());
  return 0;
}

// One shared-mode arm = one system serving all four models on its own cluster.
// Returns pre-rendered per-model table rows plus FlexPipe's reported metrics.
ArmResult RunSharedArm(SystemKind kind, const std::vector<ModelSpec>& models,
                       const std::vector<double>& qps) {
  ExperimentEnv env(DefaultEnvConfig(models, kSeed));
  auto system = MakeSharedClusterSystem(kind, env, qps);
  // Identically seeded interleaved stream per system, drawn lazily.
  MergedRequestStream stream = MultiModelWorkloadStream(models, qps, /*cv=*/2.0, 4 * kMinute);
  RunStreamingWorkload(env, *system, stream,
                       RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  const MetricsCollector& m = system->metrics();
  ArmResult result;
  for (size_t mi = 0; mi < models.size(); ++mi) {
    const MetricsCollector* pm = m.ForModel(static_cast<int>(mi));
    // A fully starved model (no replica ever placed) must read as a failure, not as
    // zero latency.
    if (pm == nullptr) {
      result.rows.push_back({models[mi].name, KindName(kind), "starved", "-", "-", "0"});
      continue;
    }
    double mean = pm->MeanPrefillSec();
    result.rows.push_back({models[mi].name, KindName(kind), TextTable::Num(mean, 3),
                           TextTable::Num(pm->prefill_histogram().Percentile(50), 3),
                           TextTable::Num(pm->prefill_histogram().Percentile(95), 3),
                           std::to_string(pm->completed())});
    result.metrics.push_back({models[mi].name + "_flexpipe_shared_mean_prefill_s", mean});
  }
  return result;
}

int RunShared(BenchReporter& reporter) {
  const std::vector<ModelSpec> models = EvaluationModels();
  // Shared-cluster rates are lower than the sequential mode's: four models now split
  // the same 82 GPUs (fig14 uses the same mix).
  std::vector<double> qps(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    qps[i] = models[i].param_bytes > GiB(60) ? 4.0 : 7.0;
  }

  std::vector<SweepArm> arms;
  for (SystemKind kind : kKinds) {
    arms.push_back({KindName(kind),
                    [kind, &models, &qps] { return RunSharedArm(kind, models, qps); }});
  }
  ParallelSweepRunner runner;
  auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ArmResult> results = runner.Run(arms);
  std::chrono::duration<double> sweep_wall = std::chrono::steady_clock::now() - sweep_start;

  TextTable table({"Model", "System", "MeanPrefill(s)", "P50(s)", "P95(s)", "Completed"});
  for (size_t ki = 0; ki < kKinds.size(); ++ki) {
    for (const std::vector<std::string>& row : results[ki].rows) {
      table.AddRow(row);
    }
    if (kKinds[ki] == SystemKind::kFlexPipe) {
      for (const auto& [name, value] : results[ki].metrics) {
        reporter.Metric(name, value);
      }
    }
  }
  table.Print();
  std::printf("\n(shared-cluster mode: all four models concurrent on one 82-GPU cluster)\n");
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));
  reporter.Metric("sweep_wall_s", sweep_wall.count());
  return 0;
}

int Run(BenchReporter& reporter) {
  bool shared = std::getenv("FLEXPIPE_FIG13_SHARED") != nullptr;
  PrintHeader("Fig. 13 - prefill latency across model scales",
              shared ? "Fig. 13 (four models, concurrent on one shared cluster)"
                     : "Fig. 13 (four models, production-like trace, mean + distribution)");
  return shared ? RunShared(reporter) : RunSequential(reporter);
}

}  // namespace

REGISTER_BENCH(fig13, "Fig. 13: prefill latency across production model scales", Run);
