// Ablation: inflight refactoring on vs off.
//
// Same FlexPipe stack, same workloads; the only difference is whether the granularity
// controller may restructure the pipeline at runtime. Isolates the contribution of §6
// from the scaling/placement machinery of §7.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Ablation - inflight refactoring",
              "DESIGN.md AB1 (FlexPipe with refactoring disabled vs enabled)");

  TextTable table({"CV", "Refactoring", "MeanRT(s)", "P99(s)", "Goodput", "Refactors",
                   "FinalStages"});
  for (double cv : {1.0, 4.0, 8.0}) {
    for (bool enabled : {false, true}) {
      ExperimentEnv env(DefaultEnvConfig());
      FlexPipeConfig config;
      config.initial_stages = env.ladder(0).coarsest();
      config.target_peak_rps = kBaselineQps;
      config.default_slo = kDefaultSlo;
      config.enable_refactoring = enabled;
      FlexPipeSystem system(env.Context(), &env.ladder(0), config);
      // Identically seeded stream per variant: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv);
      StreamingRunReport report = RunStreamingWorkload(
          env, system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
      table.AddRow({TextTable::Num(cv, 0), enabled ? "on" : "off",
                    TextTable::Num(system.metrics().MeanLatencySec(), 2),
                    TextTable::Num(system.metrics().LatencyPercentileSec(99), 2),
                    TextTable::Pct(system.metrics().GoodputRate(report.submitted), 0),
                    std::to_string(system.refactor_count()),
                    std::to_string(system.current_stages())});
      const std::string tag = CvTag(cv) + (enabled ? "_on_" : "_off_");
      reporter.Metric(tag + "p99_latency_s", system.metrics().LatencyPercentileSec(99));
      reporter.Metric(tag + "goodput_rate", system.metrics().GoodputRate(report.submitted));
    }
  }
  table.Print();
  std::printf("\nexpected: parity at CV=1 (coarse is already right), widening advantage "
              "as CV grows\n");
  return 0;
}

REGISTER_BENCH(ablation_refactoring, "Ablation: inflight refactoring on vs off", Run);
