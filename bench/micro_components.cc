// Microbenchmarks for the hot control-plane components.
//
// The paper claims decision latency under 5 ms across 2-32 stage configurations (§6.3);
// these measurements verify our partitioner, scorer and consistency primitives sit well
// inside that envelope, and measure the DES engine's event throughput. Timing is a
// hand-rolled wall-clock loop (grow iterations until >=20 ms of samples) so the results
// flow through the unified bench registry's JSON reporter like every other bench.
#include <chrono>
#include <cstdio>
#include <deque>
#include <functional>

#include "bench/common.h"
#include "src/cluster/fragmentation.h"
#include "src/common/thread_annotations.h"
#include "src/core/allocation.h"
#include "src/core/scaling.h"
#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/queueing.h"
#include "src/metrics/collector.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/kv_cache.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

ModelProfile Opt66BProfile() {
  // Magic-static init is thread-safe; CostModel is immutable after construction
  // (FLEXPIPE_THREAD_COMPATIBLE), so concurrent sweep workers may share it.
  FLEXPIPE_THREAD_SAFE_GLOBAL static CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(Opt66B());
  return profiler.Profile(graph);
}

// Compiler barrier: keeps the measured computation from being optimised away.
template <typename T>
void DoNotOptimize(T* value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Wall-clock ns per op: grows the batch 4x per retry until the sample window is
// at least 20 ms, so cheap ops are not dominated by clock overhead.
double MeasureNsPerOp(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  op();  // warmup
  int64_t iters = 16;
  for (;;) {
    Clock::time_point start = Clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      op();
    }
    auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
    if (elapsed >= 20'000'000 || iters >= (int64_t{1} << 24)) {
      return static_cast<double>(elapsed) / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

// ---------------------------------------------------------------------------
// Placement storm: repeated PlaceStages + reserve/release churn on a 1024-GPU
// fragmented cluster — the scaling path's hot loop at stress_scale shape. Runs the
// same deterministic storm through the indexed placer and the naive full-scan
// reference (same binary, same scoring), checks they commit identical GPUs, and
// reports the speedup; ci/perf_floor.json floors the indexed placements/sec.
// ---------------------------------------------------------------------------

struct PlacementStorm {
  struct ActivePlacement {
    std::vector<GpuId> gpus;
    std::vector<Bytes> bytes;
    int model_id = 0;
  };

  PlacementStorm(const GranularityLadder* ladder, bool use_reference)
      : cluster(bench::StressClusterConfig()),
        network(&cluster, NetworkConfig{}),
        registry(cluster.gpu_count()),
        placer(&cluster, &network, &registry, PlacementConfig{}),
        hrg(&cluster, HierarchicalResourceGraph::Config{}),
        host_cache(&cluster),
        affinity(&cluster, &host_cache, ScalingConfig{}),
        ladder_(ladder),
        reference_(use_reference) {
    FragmentationGenerator frag(&cluster, ProfileClusterC2(), /*seed=*/17);
    frag.ApplySnapshot();
  }

  void Op() {
    // Same hook shape as FlexPipeSystem::LaunchAt: real HRG penalties (scaling events
    // recorded on every commit) and real Eq. 13 affinity over the warm host cache.
    const TimeNs now = static_cast<TimeNs>(ops) * 200 * kMillisecond;
    const int stages = (ops & 1) == 0 ? 16 : 8;
    const int model_id = static_cast<int>(ops % 4);
    const double cv = 0.5 + static_cast<double>(ops % 8);
    const PipelinePlan& plan = ladder_->plan(stages);
    const Bytes threshold = plan.MaxStageParams();
    TopologyAwarePlacer::ServerScoreFn hrg_hook = [this, now](ServerId s) {
      return hrg.PlacementPenalty(s, now);
    };
    TopologyAwarePlacer::ServerScoreFn aff_hook = [this, now, model_id,
                                                   threshold](ServerId s) {
      return affinity.Score(s, model_id, now, threshold);
    };

    std::vector<GpuId> gpus =
        reference_ ? placer.PlaceStagesReference(plan, model_id, cv, hrg_hook, aff_hook)
                   : placer.PlaceStages(plan, model_id, cv, hrg_hook, aff_hook);
    if (!gpus.empty()) {
      ActivePlacement placement;
      placement.model_id = model_id;
      for (int s = 0; s < plan.num_stages(); ++s) {
        GpuId g = gpus[static_cast<size_t>(s)];
        const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
        cluster.gpu(g).Reserve(sp.param_bytes, 0.6);
        registry.Add(g, model_id);
        hrg.RecordScalingEvent(cluster.ServerOf(g), now);
        host_cache.Put(cluster.ServerOf(g), model_id, sp.fine_begin, sp.fine_end,
                       sp.param_bytes, now);
        placement.gpus.push_back(g);
        placement.bytes.push_back(sp.param_bytes);
        // FNV-1a over committed GPU ids: pins indexed == reference placements.
        hash = (hash ^ static_cast<uint64_t>(g)) * 1099511628211ull;
      }
      active.push_back(std::move(placement));
    } else {
      hash = (hash ^ 0xdeadull) * 1099511628211ull;
    }
    // Churn: bound the live fleet so reserve/release keeps exercising the free index.
    while (active.size() > 40 || (gpus.empty() && !active.empty())) {
      const ActivePlacement& victim = active.front();
      for (size_t i = 0; i < victim.gpus.size(); ++i) {
        cluster.gpu(victim.gpus[i]).Release(victim.bytes[i], 0.6);
        registry.Remove(victim.gpus[i], victim.model_id);
      }
      active.pop_front();
      if (gpus.empty()) {
        break;  // freed room for the next attempt; keep the rest of the fleet
      }
    }
    ++ops;
  }

  Cluster cluster;
  NetworkModel network;
  ModelPlacementRegistry registry;
  TopologyAwarePlacer placer;
  HierarchicalResourceGraph hrg;
  HostParamCache host_cache;
  AffinityScheduler affinity;
  const GranularityLadder* ladder_;
  bool reference_;
  std::deque<ActivePlacement> active;
  uint64_t ops = 0;
  uint64_t hash = 1469598103934665603ull;
};

// Runs `op_count` storm ops and returns wall ns/op (setup excluded).
double RunPlacementStorm(PlacementStorm& storm, int op_count) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < op_count; ++i) {
    storm.Op();
  }
  auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  return static_cast<double>(elapsed) / static_cast<double>(op_count);
}

}  // namespace
}  // namespace flexpipe

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  bench::PrintHeader("Microbenchmarks - control-plane hot paths",
                     "§6.3 (decision latency < 5 ms across 2-32 stage configurations)");

  TextTable table({"Component", "ns/op", "us/op"});
  auto record = [&](const std::string& name, double ns_per_op) {
    table.AddRow({name, TextTable::Num(ns_per_op, 0), TextTable::Num(ns_per_op / 1e3, 2)});
    reporter.Metric(name + "_ns_per_op", ns_per_op);
    return ns_per_op;
  };

  ModelProfile profile = Opt66BProfile();
  Partitioner partitioner;

  for (int stages : {4, 8, 16, 32}) {
    record("partitioner_dp_stages" + std::to_string(stages), MeasureNsPerOp([&] {
             PipelinePlan plan = partitioner.Partition(profile, stages);
             DoNotOptimize(&plan);
           }));
  }

  record("ladder_build", MeasureNsPerOp([&] {
           GranularityLadder ladder = partitioner.BuildLadder(profile);
           DoNotOptimize(&ladder);
         }));

  // Algorithm 1's per-tick decision: must be far below the 5 ms budget.
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  Cluster cluster(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  CostModel cost;
  GranularityController controller(&ladder, &cost, &network, WorkloadAssumptions{},
                                   GranularityConfig{});
  double cv = 0.3;
  double decision_ns = record("granularity_decision", MeasureNsPerOp([&] {
                                cv = cv < 16.0 ? cv * 1.01 : 0.3;
                                int stages = controller.SelectStageCount(cv, 8);
                                DoNotOptimize(&stages);
                              }));

  CvMonitor monitor;
  TimeNs t = 0;
  record("cv_monitor_record", MeasureNsPerOp([&] {
           t += 50 * kMillisecond;
           monitor.RecordArrival(t);
           double c = monitor.Cv();
           DoNotOptimize(&c);
         }));

  // λ_t / ∂λ/∂t on a dense retained window (~10k arrivals in 2 rate windows): the
  // two-pointer cursors answer in O(1) amortized instead of per-query window scans.
  {
    CvMonitor dense;
    TimeNs dt = 0;
    for (int i = 0; i < 10000; ++i) {
      dt += kMillisecond;
      dense.RecordArrival(dt);
    }
    record("cv_monitor_rate_query", MeasureNsPerOp([&] {
             dt += kMillisecond;
             dense.RecordArrival(dt);
             double rate = dense.RatePerSec(dt);
             double gradient = dense.RateGradient(dt);
             DoNotOptimize(&rate);
             DoNotOptimize(&gradient);
           }));
  }

  // Fig. 9-style windowed mean over a six-figure completion series: two binary
  // searches plus a prefix-sum subtraction per query.
  {
    MetricsCollector collector;
    Request r;
    r.phase = RequestPhase::kDone;
    r.spec.prompt_tokens = 64;
    r.spec.output_tokens = 8;
    r.tokens_generated = 8;
    for (int i = 0; i < 200000; ++i) {
      r.spec.arrival = static_cast<TimeNs>(i) * 10 * kMillisecond;
      r.first_token_time = r.spec.arrival + 100 * kMillisecond;
      // Latency jitter below the 10 ms arrival step keeps done_time monotone.
      r.done_time = r.spec.arrival + kSecond + (i % 7) * kMillisecond;
      r.exec_ns = 300 * kMillisecond;
      r.comm_ns = 30 * kMillisecond;
      collector.OnComplete(r);
    }
    TimeNs w = 0;
    const TimeNs span = collector.completions().back().done_time;
    record("metrics_window_mean_200k", MeasureNsPerOp([&] {
             w = (w + 15 * kSecond) % span;
             double mean = collector.MeanLatencyInWindowSec(w, w + 15 * kSecond);
             DoNotOptimize(&mean);
           }));
  }

  GgsParams p;
  p.lambda = 18.0;
  p.mu = 3.0;
  p.servers = 8;
  p.cv_arrival = 4.0;
  record("ggs_latency_model", MeasureNsPerOp([&] {
           double total = GgsTotalLatency(p);
           DoNotOptimize(&total);
         }));

  // DES engine throughput: one op = a 10k-event callback chain.
  constexpr int kChainEvents = 10000;
  double chain_ns = MeasureNsPerOp([&] {
    Simulation sim;
    int remaining = kChainEvents;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.Schedule(10, chain);
      }
    };
    sim.Schedule(10, chain);
    sim.RunUntilIdle();
    DoNotOptimize(&sim);
  });
  double events_per_sec = kChainEvents / (chain_ns / 1e9);
  table.AddRow({"event_queue (10k chain)", TextTable::Num(chain_ns / kChainEvents, 0),
                TextTable::Num(chain_ns / kChainEvents / 1e3, 3)});
  reporter.Metric("event_queue_events_per_sec", events_per_sec);

  // Same chain style with a 100k-event far-future backlog pending (the serving benches
  // now stream arrivals, but the engine must still shrug off deep far-future queues):
  // measures how queue depth taxes the hot path.
  // Timed manually as one long run so the backlog setup stays out of the measurement.
  {
    constexpr int kBacklog = 100000;
    constexpr int kDeepChainEvents = 200000;
    Simulation sim;
    for (int i = 0; i < kBacklog; ++i) {
      sim.ScheduleAt(kHour + static_cast<TimeNs>(i) * kMillisecond, [] {});
    }
    int remaining = kDeepChainEvents;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.Schedule(10, chain);
      }
    };
    sim.Schedule(10, chain);
    sim.Step();  // first event pays the engine's one-time lazy backlog sort; exclude it
    auto start = std::chrono::steady_clock::now();
    sim.RunUntil(kMinute);  // drives the chain only; the backlog stays pending
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    double per_event = static_cast<double>(elapsed) / kDeepChainEvents;
    table.AddRow({"event_queue (100k backlog)", TextTable::Num(per_event, 0),
                  TextTable::Num(per_event / 1e3, 3)});
    reporter.Metric("event_queue_backlog_events_per_sec",
                    1e9 * kDeepChainEvents / static_cast<double>(elapsed));
  }

  // Schedule+cancel churn: the arena must recycle slots and queue entries instead of
  // accumulating tombstones (the pending-events regression test pins the bound; this
  // measures the cost).
  {
    Simulation sim;
    double churn_ns = MeasureNsPerOp([&] {
      EventId id = sim.Schedule(kSecond, [] {});
      sim.Cancel(id);
    });
    record("event_schedule_cancel", churn_ns);
  }

  for (int capacity : {4096, 65536}) {
    KvValidityMask mask(capacity);
    mask.MarkValid(0, capacity * 3 / 4);
    record("kv_mask_delta_scan_" + std::to_string(capacity), MeasureNsPerOp([&] {
             int invalid = mask.invalid_in(0, mask.capacity());
             DoNotOptimize(&invalid);
           }));
    // Allocation-free run visitor over the same mostly-valid mask (one trailing run):
    // the delta-sync shape the refactoring engine walks at cutover.
    record("kv_mask_invalid_ranges_" + std::to_string(capacity), MeasureNsPerOp([&] {
             int tokens = 0;
             mask.ForEachInvalidRange(mask.capacity(),
                                      [&tokens](int b, int e) { tokens += e - b; });
             DoNotOptimize(&tokens);
           }));
    // Fragmented mask: every 128-token page ends with a 16-token invalid tail, so the
    // visitor alternates skip words with mixed words.
    KvValidityMask fragmented(capacity);
    fragmented.MarkValid(0, capacity);
    for (int page = 0; page + 128 <= capacity; page += 128) {
      fragmented.MarkInvalid(page + 112, page + 128);
    }
    record("kv_mask_invalid_ranges_fragmented_" + std::to_string(capacity),
           MeasureNsPerOp([&] {
             int runs = 0;
             fragmented.ForEachInvalidRange(fragmented.capacity(),
                                            [&runs](int, int) { ++runs; });
             DoNotOptimize(&runs);
           }));
  }

  // Placement storm: indexed placer vs naive full-scan reference on a 1024-GPU
  // fragmented cluster with reserve/release churn. Identical committed GPUs are a
  // hard requirement (the indexed path must be a pure optimization).
  bool placement_equivalent = true;
  {
    constexpr int kStormOps = 384;
    PlacementStorm indexed(&ladder, /*use_reference=*/false);
    PlacementStorm reference(&ladder, /*use_reference=*/true);
    double indexed_ns = RunPlacementStorm(indexed, kStormOps);
    double reference_ns = RunPlacementStorm(reference, kStormOps);
    placement_equivalent = indexed.hash == reference.hash;
    double speedup = reference_ns / indexed_ns;
    record("placement_storm", indexed_ns);
    record("placement_storm_reference", reference_ns);
    reporter.Metric("placement_storm_speedup", speedup);
    reporter.Metric("placement_storm_placements_per_sec", 1e9 / indexed_ns);
    std::printf("placement storm: indexed %.0f us/op, naive scan %.0f us/op -> %.1fx "
                "(placements identical: %s)\n",
                indexed_ns / 1e3, reference_ns / 1e3, speedup,
                placement_equivalent ? "yes" : "NO");
  }

  table.Print();
  std::printf("\nDES throughput: %.1fM events/s\n", events_per_sec / 1e6);
  std::printf("granularity decision: %.1f us (paper budget: 5 ms) -> %s\n",
              decision_ns / 1e3, decision_ns < 5e6 ? "within budget" : "OVER BUDGET");
  if (!placement_equivalent) {
    std::printf("FAIL: indexed placer diverged from the naive-scan reference\n");
    return 1;
  }
  return decision_ns < 5e6 ? 0 : 1;
}

REGISTER_BENCH(micro, "Microbenchmarks: control-plane hot paths and DES throughput", Run);
