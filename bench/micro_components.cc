// Microbenchmarks for the hot control-plane components.
//
// The paper claims decision latency under 5 ms across 2-32 stage configurations (§6.3);
// these measurements verify our partitioner, scorer and consistency primitives sit well
// inside that envelope, and measure the DES engine's event throughput. Timing is a
// hand-rolled wall-clock loop (grow iterations until >=20 ms of samples) so the results
// flow through the unified bench registry's JSON reporter like every other bench.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/common.h"
#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/queueing.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/kv_cache.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

ModelProfile Opt66BProfile() {
  static CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(Opt66B());
  return profiler.Profile(graph);
}

// Compiler barrier: keeps the measured computation from being optimised away.
template <typename T>
void DoNotOptimize(T* value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Wall-clock ns per op: grows the batch 4x per retry until the sample window is
// at least 20 ms, so cheap ops are not dominated by clock overhead.
double MeasureNsPerOp(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  op();  // warmup
  int64_t iters = 16;
  for (;;) {
    Clock::time_point start = Clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      op();
    }
    auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
    if (elapsed >= 20'000'000 || iters >= (int64_t{1} << 24)) {
      return static_cast<double>(elapsed) / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

}  // namespace
}  // namespace flexpipe

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  bench::PrintHeader("Microbenchmarks - control-plane hot paths",
                     "§6.3 (decision latency < 5 ms across 2-32 stage configurations)");

  TextTable table({"Component", "ns/op", "us/op"});
  auto record = [&](const std::string& name, double ns_per_op) {
    table.AddRow({name, TextTable::Num(ns_per_op, 0), TextTable::Num(ns_per_op / 1e3, 2)});
    reporter.Metric(name + "_ns_per_op", ns_per_op);
    return ns_per_op;
  };

  ModelProfile profile = Opt66BProfile();
  Partitioner partitioner;

  for (int stages : {4, 8, 16, 32}) {
    record("partitioner_dp_stages" + std::to_string(stages), MeasureNsPerOp([&] {
             PipelinePlan plan = partitioner.Partition(profile, stages);
             DoNotOptimize(&plan);
           }));
  }

  record("ladder_build", MeasureNsPerOp([&] {
           GranularityLadder ladder = partitioner.BuildLadder(profile);
           DoNotOptimize(&ladder);
         }));

  // Algorithm 1's per-tick decision: must be far below the 5 ms budget.
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  Cluster cluster(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  CostModel cost;
  GranularityController controller(&ladder, &cost, &network, WorkloadAssumptions{},
                                   GranularityConfig{});
  double cv = 0.3;
  double decision_ns = record("granularity_decision", MeasureNsPerOp([&] {
                                cv = cv < 16.0 ? cv * 1.01 : 0.3;
                                int stages = controller.SelectStageCount(cv, 8);
                                DoNotOptimize(&stages);
                              }));

  CvMonitor monitor;
  TimeNs t = 0;
  record("cv_monitor_record", MeasureNsPerOp([&] {
           t += 50 * kMillisecond;
           monitor.RecordArrival(t);
           double c = monitor.Cv();
           DoNotOptimize(&c);
         }));

  GgsParams p;
  p.lambda = 18.0;
  p.mu = 3.0;
  p.servers = 8;
  p.cv_arrival = 4.0;
  record("ggs_latency_model", MeasureNsPerOp([&] {
           double total = GgsTotalLatency(p);
           DoNotOptimize(&total);
         }));

  // DES engine throughput: one op = a 10k-event callback chain.
  constexpr int kChainEvents = 10000;
  double chain_ns = MeasureNsPerOp([&] {
    Simulation sim;
    int remaining = kChainEvents;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.Schedule(10, chain);
      }
    };
    sim.Schedule(10, chain);
    sim.RunUntilIdle();
    DoNotOptimize(&sim);
  });
  double events_per_sec = kChainEvents / (chain_ns / 1e9);
  table.AddRow({"event_queue (10k chain)", TextTable::Num(chain_ns / kChainEvents, 0),
                TextTable::Num(chain_ns / kChainEvents / 1e3, 3)});
  reporter.Metric("event_queue_events_per_sec", events_per_sec);

  // Same chain style with a 100k-event far-future backlog pending (the cluster-scale
  // bench pre-schedules every arrival): measures how queue depth taxes the hot path.
  // Timed manually as one long run so the backlog setup stays out of the measurement.
  {
    constexpr int kBacklog = 100000;
    constexpr int kDeepChainEvents = 200000;
    Simulation sim;
    for (int i = 0; i < kBacklog; ++i) {
      sim.ScheduleAt(kHour + static_cast<TimeNs>(i) * kMillisecond, [] {});
    }
    int remaining = kDeepChainEvents;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.Schedule(10, chain);
      }
    };
    sim.Schedule(10, chain);
    sim.Step();  // first event pays the engine's one-time lazy backlog sort; exclude it
    auto start = std::chrono::steady_clock::now();
    sim.RunUntil(kMinute);  // drives the chain only; the backlog stays pending
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    double per_event = static_cast<double>(elapsed) / kDeepChainEvents;
    table.AddRow({"event_queue (100k backlog)", TextTable::Num(per_event, 0),
                  TextTable::Num(per_event / 1e3, 3)});
    reporter.Metric("event_queue_backlog_events_per_sec",
                    1e9 * kDeepChainEvents / static_cast<double>(elapsed));
  }

  // Schedule+cancel churn: the arena must recycle slots and queue entries instead of
  // accumulating tombstones (the pending-events regression test pins the bound; this
  // measures the cost).
  {
    Simulation sim;
    double churn_ns = MeasureNsPerOp([&] {
      EventId id = sim.Schedule(kSecond, [] {});
      sim.Cancel(id);
    });
    record("event_schedule_cancel", churn_ns);
  }

  for (int capacity : {4096, 65536}) {
    KvValidityMask mask(capacity);
    mask.MarkValid(0, capacity * 3 / 4);
    record("kv_mask_delta_scan_" + std::to_string(capacity), MeasureNsPerOp([&] {
             int invalid = mask.invalid_in(0, mask.capacity());
             DoNotOptimize(&invalid);
           }));
  }

  table.Print();
  std::printf("\nDES throughput: %.1fM events/s\n", events_per_sec / 1e6);
  std::printf("granularity decision: %.1f us (paper budget: 5 ms) -> %s\n",
              decision_ns / 1e3, decision_ns < 5e6 ? "within budget" : "OVER BUDGET");
  return decision_ns < 5e6 ? 0 : 1;
}

REGISTER_BENCH(micro, "Microbenchmarks: control-plane hot paths and DES throughput", Run);
