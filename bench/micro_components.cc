// Microbenchmarks (google-benchmark) for the hot control-plane components.
//
// The paper claims decision latency under 5 ms across 2-32 stage configurations (§6.3);
// these benches verify our partitioner, scorer and consistency primitives sit well
// inside that envelope, and measure the DES engine's event throughput.
#include <benchmark/benchmark.h>

#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/queueing.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/kv_cache.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

ModelProfile Opt66BProfile() {
  static CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(Opt66B());
  return profiler.Profile(graph);
}

void BM_PartitionerDp(benchmark::State& state) {
  ModelProfile profile = Opt66BProfile();
  Partitioner partitioner;
  int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PipelinePlan plan = partitioner.Partition(profile, stages);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PartitionerDp)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_LadderBuild(benchmark::State& state) {
  ModelProfile profile = Opt66BProfile();
  Partitioner partitioner;
  for (auto _ : state) {
    GranularityLadder ladder = partitioner.BuildLadder(profile);
    benchmark::DoNotOptimize(ladder);
  }
}
BENCHMARK(BM_LadderBuild);

void BM_GranularityDecision(benchmark::State& state) {
  // Algorithm 1's per-tick decision: must be far below the 5 ms budget.
  ModelProfile profile = Opt66BProfile();
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  Cluster cluster(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  CostModel cost;
  GranularityController controller(&ladder, &cost, &network, WorkloadAssumptions{},
                                   GranularityConfig{});
  double cv = 0.3;
  for (auto _ : state) {
    cv = cv < 16.0 ? cv * 1.01 : 0.3;
    benchmark::DoNotOptimize(controller.SelectStageCount(cv, 8));
  }
}
BENCHMARK(BM_GranularityDecision);

void BM_CvMonitorRecord(benchmark::State& state) {
  CvMonitor monitor;
  TimeNs t = 0;
  for (auto _ : state) {
    t += 50 * kMillisecond;
    monitor.RecordArrival(t);
    benchmark::DoNotOptimize(monitor.Cv());
  }
}
BENCHMARK(BM_CvMonitorRecord);

void BM_GgsLatencyModel(benchmark::State& state) {
  GgsParams p;
  p.lambda = 18.0;
  p.mu = 3.0;
  p.servers = 8;
  p.cv_arrival = 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GgsTotalLatency(p));
  }
}
BENCHMARK(BM_GgsLatencyModel);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    int remaining = 10000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.Schedule(10, chain);
      }
    };
    sim.Schedule(10, chain);
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_KvMaskDeltaScan(benchmark::State& state) {
  KvValidityMask mask(static_cast<int>(state.range(0)));
  mask.MarkValid(0, static_cast<int>(state.range(0)) * 3 / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mask.invalid_in(0, mask.capacity()));
  }
}
BENCHMARK(BM_KvMaskDeltaScan)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace flexpipe
