// Fig. 14 (extension): the four production models served *concurrently* on one shared
// 82-GPU cluster.
//
// The paper's premise is multi-tenant fragmentation — several models churning against
// each other on one serverless cluster — yet fig13 measures each model on a private
// cluster. Here WHISPER-9B / LLAMA2-7B / BERT-21B / OPT-66B replay interleaved traces
// into one serving system at a time, so models genuinely contend for GPUs. Each model
// takes a 4x burst in its own staggered window while the others hold their base rate
// (tenants peaking against each other, §3.1); every system is configured from the
// long-run mean rate only. FlexPipe (per-model controller contexts over a shared
// HRG/placer) absorbs each burst with fast fine-grained scale-ups and consolidates
// afterwards, freeing GPUs for the next model's peak; AlpaServe's mean-sized static
// fleets queue through every burst; ServerlessLLM reacts but pays cold starts on the
// fragmented, churning cluster. Reported per model: mean/P95 prefill latency and SLO
// attainment.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 14 - multi-model contention on one shared cluster",
              "multi-tenant extension of Fig. 13 (four models, interleaved traces, "
              "shared 82-GPU cluster)");

  const std::vector<ModelSpec> models = EvaluationModels();
  // Production mix: every model carries a base rate (lighter models see more traffic)
  // and each takes a 4x burst in its own staggered window — tenants peak against each
  // other, the §3.1 dynamic that fragments serverless clusters. The systems are
  // configured from the long-run mean rate only (the "historical statistics" a static
  // system tunes against); none is told when or how hard the bursts come.
  const TimeNs kTraceLen = 4 * kMinute;
  const TimeNs kBurstLen = 40 * kSecond;
  std::vector<double> base_qps(models.size());
  std::vector<double> mean_qps(models.size());
  for (size_t i = 0; i < models.size(); ++i) {
    base_qps[i] = models[i].param_bytes > GiB(60) ? 6.0 : 12.0;
    mean_qps[i] = base_qps[i] +
                  (4.0 - 1.0) * base_qps[i] * ToSeconds(kBurstLen) / ToSeconds(kTraceLen);
  }

  // Each model's trace is three lazily drawn segments — calm head, 4x burst in its
  // staggered window, calm tail — merged in arrival order; the four per-model traces
  // interleave through an outer merge. Identically seeded construction per system.
  auto make_stream = [&] {
    std::vector<std::unique_ptr<RequestStream>> model_parts;
    for (size_t i = 0; i < models.size(); ++i) {
      double burst_qps = 4.0 * base_qps[i];
      TimeNs burst_start = 30 * kSecond + static_cast<TimeNs>(i) * 50 * kSecond;
      WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(static_cast<int>(i));
      wconfig.lengths.prompt_max = models[i].context_window;
      Rng base = Rng(kSeed).Child(models[i].name);
      std::vector<std::unique_ptr<RequestStream>> segments;
      auto add_segment = [&](const char* tag, double rate, TimeNs start, TimeNs end) {
        Rng seg = base.Child(tag);
        segments.push_back(std::make_unique<StreamingWorkloadSource>(
            wconfig, MakeArrivalsWithCv(rate, 2.0), seg, seg.Child("lengths"), end,
            start));
      };
      add_segment("calm-head", base_qps[i], 0, burst_start);
      add_segment("burst", burst_qps, burst_start, burst_start + kBurstLen);
      add_segment("calm-tail", base_qps[i], burst_start + kBurstLen, kTraceLen);
      model_parts.push_back(std::make_unique<MergedRequestStream>(std::move(segments)));
    }
    return MergedRequestStream(std::move(model_parts));
  };

  // Per-model submitted counts (deterministic across systems): one counting pass.
  std::vector<int64_t> submitted_by_model(models.size(), 0);
  {
    MergedRequestStream counter = make_stream();
    RequestSpec spec;
    while (counter.Next(&spec)) {
      ++submitted_by_model[static_cast<size_t>(spec.model_index)];
    }
  }

  // Aggressive tenant churn (§3.1): with four models sharing the cluster, released
  // GPUs are quickly re-occupied by competitors, so hoarding replicas is not free.
  auto env_config = [&] {
    ExperimentEnvConfig config = DefaultEnvConfig(models, kSeed);
    config.fragmentation = ProfileClusterC2();
    config.churn_interval = 10 * kSecond;
    config.churn_fraction = 0.20;
    return config;
  };

  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kServerlessLlm};

  TextTable table({"System", "Model", "MeanPrefill(s)", "P95Prefill(s)", "SLO-attain",
                   "Completed"});
  struct PerSystem {
    double mean_prefill_all = 0.0;
  };
  std::vector<PerSystem> totals;
  for (SystemKind kind : kinds) {
    ExperimentEnv env(env_config());
    auto system = MakeSharedClusterSystem(kind, env, mean_qps);
    MergedRequestStream stream = make_stream();
    RunStreamingWorkload(env, *system, stream,
                         RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});

    const MetricsCollector& m = system->metrics();
    if (auto* fp = dynamic_cast<FlexPipeSystem*>(system.get())) {
      reporter.Metric("flexpipe_refactors", static_cast<double>(fp->refactor_count()));
      reporter.Metric("flexpipe_peak_gpus", static_cast<double>(fp->peak_reserved_gpus()));
    }
    PerSystem total;
    total.mean_prefill_all = m.MeanPrefillSec();
    totals.push_back(total);
    for (size_t mi = 0; mi < models.size(); ++mi) {
      const MetricsCollector* pm = m.ForModel(static_cast<int>(mi));
      double mean = pm != nullptr ? pm->MeanPrefillSec() : 0.0;
      double p95 = pm != nullptr ? pm->prefill_histogram().Percentile(95) : 0.0;
      // Per-model SLO attainment over that model's submitted requests.
      double slo = pm != nullptr ? pm->GoodputRate(submitted_by_model[mi]) : 0.0;
      table.AddRow({KindName(kind), models[mi].name, TextTable::Num(mean, 3),
                    TextTable::Num(p95, 3), TextTable::Num(slo, 3),
                    std::to_string(pm != nullptr ? pm->completed() : 0)});
      std::string prefix = std::string(KindName(kind)) + "_" + models[mi].name + "_";
      reporter.Metric(prefix + "mean_prefill_s", mean);
      reporter.Metric(prefix + "p95_prefill_s", p95);
      reporter.Metric(prefix + "slo_attainment", slo);
    }
    reporter.Metric(std::string(KindName(kind)) + "_mean_prefill_all_s",
                    total.mean_prefill_all);
  }
  table.Print();

  double flex = totals[0].mean_prefill_all;
  double alpa = totals[1].mean_prefill_all;
  double sllm = totals[2].mean_prefill_all;
  std::printf("\nmean prefill across all models: FlexPipe %.3f s, AlpaServe %.3f s, "
              "ServerlessLLM %.3f s\n",
              flex, alpa, sllm);
  reporter.Metric("flexpipe_ahead_of_alpaserve", flex < alpa ? 1.0 : 0.0);
  reporter.Metric("flexpipe_ahead_of_serverlessllm", flex < sllm ? 1.0 : 0.0);
  if (flex < alpa && flex < sllm) {
    std::printf("FlexPipe leads both baselines under shared-cluster contention.\n");
    return 0;
  }
  std::printf("WARNING: FlexPipe does not lead both baselines on mean prefill.\n");
  return 1;
}

REGISTER_BENCH(fig14_multi_model_contention,
               "Fig. 14 (ext): four production models contending on one shared cluster",
               Run);
