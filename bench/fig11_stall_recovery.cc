// Fig. 11: pipeline-stall recovery time across systems and CV.
//
// §9.3's rule: a stall starts when response latency exceeds 1.5x the P25 baseline and
// recovers at 1.2x. Median recovery durations per system per CV. Paper headline:
// FlexPipe recovers in 9 ms at CV=4 (82% faster than the multiplexing systems) because
// refactoring removes the structural cause instead of waiting for the queue to drain.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 11 - pipeline stall recovery time",
              "Fig. 11 (stall = >1.5x P25 baseline, recovery = back within 1.2x)");

  for (double cv : {1.0, 2.0, 4.0}) {
    std::printf("--- CV = %.0f ---\n", cv);
    TextTable table(
        {"System", "MedianRecovery(ms)", "MeanRecovery(ms)", "Episodes", "StalledFrac"});
    double flexpipe_ms = 0.0;
    double best_other = 1e18;
    for (SystemKind kind : AllSystems()) {
      // Identically seeded stream per system: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv);
      CellResult cell = RunCellStreaming(kind, stream);
      double median_ms = cell.recovery.median_recovery_s * 1000.0;
      table.AddRow({KindName(kind), TextTable::Num(median_ms, 1),
                    TextTable::Num(cell.recovery.mean_recovery_s * 1000.0, 1),
                    std::to_string(cell.recovery.stall_events),
                    TextTable::Pct(cell.recovery.stalled_fraction, 1)});
      if (kind == SystemKind::kFlexPipe) {
        flexpipe_ms = median_ms;
      } else if (cell.recovery.stall_events > 0) {
        best_other = std::min(best_other, median_ms);
      }
    }
    table.Print();
    reporter.Metric(CvTag(cv) + "_flexpipe_median_recovery_ms", flexpipe_ms);
    if (best_other < 1e17 && flexpipe_ms > 0.0) {
      std::printf("FlexPipe vs best baseline: %.1f%% faster median recovery\n\n",
                  100.0 * (1.0 - flexpipe_ms / best_other));
      reporter.Metric(CvTag(cv) + "_recovery_cut_vs_best", 1.0 - flexpipe_ms / best_other);
    } else {
      std::printf("\n");
    }
  }
  return 0;
}

REGISTER_BENCH(fig11, "Fig. 11: pipeline stall recovery time across systems", Run);
