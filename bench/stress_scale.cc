// Cluster-scale stress bench: 1024 fragmented GPUs, 4 models, >= 200k requests.
//
// Unlike the fig* benches (which reproduce paper plots on the 82-GPU testbed), this
// bench exists to measure the *substrate*: how fast the discrete-event engine, router
// and controllers push a production-scale workload through one shared cluster. It
// reports executed_events and events_per_sec so the perf trajectory of the hot paths
// accumulates in BENCH_*.json across PRs, and CI runs it at reduced scale
// (FLEXPIPE_STRESS_SCALE=ci) against a checked-in events/sec floor.
//
// The serving run and the engine storm share nothing, so they run as two arms on the
// parallel sweep driver. Serial (FLEXPIPE_SWEEP_WORKERS unset) remains the perf-floor
// configuration: each arm's wall clock is uncontended; the TSan CI job re-runs this
// bench at 4 workers as the race-detection smoke.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"
#include "bench/sweep.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct StressParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;  // per EvaluationModels() entry
  TimeNs duration;
};

StressParams FullScale() {
  StressParams p;
  p.scale_name = "full";
  // 1024 GPUs across 448 servers (shared with placement_storm — see bench/common.h).
  p.cluster = StressClusterConfig();
  // WHISPER-9B, LLAMA2-7B, BERT-21B, OPT-66B: lighter models carry more traffic,
  // mirroring the fig13/fig14 production mix. 1400 rps aggregate * 300 s = 420k.
  p.qps = {450.0, 450.0, 300.0, 200.0};
  p.duration = 300 * kSecond;
  return p;
}

StressParams CiScale() {
  StressParams p;
  p.scale_name = "ci";
  // 128 GPUs and ~1/8 of the traffic, so runner-sized machines finish in well under a
  // minute while exercising the identical code paths.
  p.cluster = StressCiClusterConfig();
  p.qps = {56.0, 56.0, 38.0, 25.0};
  p.duration = 60 * kSecond;
  return p;
}

// ---------------------------------------------------------------------------
// Engine storm: the serving run measures the whole stack (instances, router,
// controllers share the wall clock with the engine), so engine gains are diluted by
// semantic simulation work. This phase isolates the substrate with the same shape the
// serving run produces: a six-figure backlog of pre-scheduled one-shots (arrivals),
// thousands of self-rescheduling short-delay chains (pipeline waves), and a watchdog
// re-arm every 8th step (timeout churn — the pattern whose cancels the old engine
// retained as heap tombstones forever).
// ---------------------------------------------------------------------------

struct StormCtx {
  Simulation sim;
  uint64_t remaining = 0;
  uint64_t lcg = 0x9E3779B97F4A7C15ull;
  std::vector<EventId> watchdogs;

  // Deterministic inline LCG: identical event times on every engine implementation.
  uint64_t Next() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  }

  void Step(uint32_t chain) {
    if (remaining == 0) {
      return;
    }
    --remaining;
    if ((remaining & 7) == 0) {
      if (watchdogs[chain] != 0) {
        sim.Cancel(watchdogs[chain]);
      }
      watchdogs[chain] = sim.Schedule(30 * kSecond, [] {});
    }
    // {this, chain} fits std::function's inline buffer: the chain itself allocates
    // nothing, so the measurement isolates the engine rather than malloc.
    sim.Schedule(kMillisecond + static_cast<TimeNs>(Next() % 2000) * kMicrosecond,
                 [this, chain] { Step(chain); });
  }
};

ArmResult EngineStormArm(size_t backlog, size_t chains, uint64_t chain_events) {
  StormCtx ctx;
  ctx.remaining = chain_events;
  ctx.watchdogs.assign(chains, 0);
  for (size_t i = 0; i < backlog; ++i) {
    ctx.sim.ScheduleAt(
        60 * kSecond + static_cast<TimeNs>(ctx.Next() % 300'000) * kMillisecond, [] {});
  }
  for (size_t c = 0; c < chains; ++c) {
    uint32_t chain = static_cast<uint32_t>(c);
    ctx.sim.Schedule(static_cast<TimeNs>(c + 1) * kMillisecond,
                     [&ctx, chain] { ctx.Step(chain); });
  }

  auto start = std::chrono::steady_clock::now();
  ctx.sim.RunUntilIdle();
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  const double executed = static_cast<double>(ctx.sim.executed_events());
  ArmResult result;
  result.metrics = {{"engine_executed_events", executed},
                    {"engine_storm_wall_s", wall.count()},
                    {"engine_events_per_sec", executed / wall.count()}};
  return result;
}

// The full shared-cluster serving run: its own env, system and streams. Returns the
// summary table rows plus every reported metric; never prints (sweep-arm contract).
ArmResult ServingArm(const StressParams& params) {
  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  ExperimentEnv env(env_config);

  // Streaming injection: requests are drawn lazily and recycled on completion, so the
  // engine never holds a pre-scheduled arrival backlog (PR-3's staging tier now only
  // sees genuinely far-future control events).
  MergedRequestStream stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.duration);
  auto system = MakeSharedClusterSystem(SystemKind::kFlexPipe, env, params.qps);
  auto wall_start = std::chrono::steady_clock::now();
  StreamingRunReport report = RunStreamingWorkload(
      env, *system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;

  const MetricsCollector& m = system->metrics();
  const double executed = static_cast<double>(env.sim().executed_events());
  const double events_per_sec = executed / wall.count();
  const double completion_rate =
      static_cast<double>(m.completed()) / static_cast<double>(report.submitted);

  ArmResult result;
  result.rows.push_back({"requests submitted", std::to_string(report.submitted)});
  result.rows.push_back({"requests completed", std::to_string(m.completed())});
  result.rows.push_back({"goodput rate", TextTable::Num(m.GoodputRate(report.submitted), 3)});
  result.rows.push_back({"simulated span (s)", TextTable::Num(ToSeconds(report.ran_until), 0)});
  result.rows.push_back({"executed events", TextTable::Num(executed, 0)});
  result.rows.push_back({"run wall time (s)", TextTable::Num(wall.count(), 2)});
  result.rows.push_back({"events/sec", TextTable::Num(events_per_sec, 0)});
  result.rows.push_back({"peak reserved GPUs", std::to_string(system->peak_reserved_gpus())});
  result.rows.push_back({"peak live requests", std::to_string(report.peak_live_requests)});
  result.rows.push_back({"peak event-arena slots", std::to_string(env.sim().arena_slots())});

  result.metrics = {
      {"gpus", static_cast<double>(env.cluster().gpu_count())},
      {"servers", static_cast<double>(env.cluster().server_count())},
      {"submitted", static_cast<double>(report.submitted)},
      {"completed", static_cast<double>(m.completed())},
      {"completion_rate", completion_rate},
      {"goodput_rate", m.GoodputRate(report.submitted)},
      {"executed_events", executed},
      {"run_wall_time_s", wall.count()},
      {"events_per_sec", events_per_sec},
      {"peak_reserved_gpus", static_cast<double>(system->peak_reserved_gpus())},
      {"peak_live_requests", static_cast<double>(report.peak_live_requests)},
      {"peak_arena_slots", static_cast<double>(env.sim().arena_slots())},
  };
  if (auto* fp = dynamic_cast<FlexPipeSystem*>(system.get())) {
    result.metrics.push_back({"refactors", static_cast<double>(fp->refactor_count())});
  }

  // The bench's contract is substrate health, not SLO attainment: it fails only if the
  // cluster-scale run stalls outright (almost nothing completing indicates a lost pump
  // or a wedged controller, not an under-provisioned fleet).
  result.exit_code = completion_rate > 0.5 ? 0 : 1;
  return result;
}

double Metric(const ArmResult& result, const std::string& name) {
  for (const auto& [key, value] : result.metrics) {
    if (key == name) {
      return value;
    }
  }
  return 0.0;
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  StressParams params = ci ? CiScale() : FullScale();

  PrintHeader("Cluster-scale stress: shared multi-model serving",
              "substrate throughput at production scale (not a paper figure)");

  std::vector<SweepArm> arms;
  arms.push_back({"serving", [&params] { return ServingArm(params); }});
  arms.push_back({"storm", [ci] {
                    // Substrate-isolated engine storm, sized like the serving run.
                    return ci ? EngineStormArm(/*backlog=*/50'000, /*chains=*/512,
                                               /*chain_events=*/600'000)
                              : EngineStormArm(/*backlog=*/400'000, /*chains=*/4096,
                                               /*chain_events=*/5'000'000);
                  }});
  ParallelSweepRunner runner;
  auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ArmResult> results = runner.Run(arms);
  std::chrono::duration<double> sweep_wall = std::chrono::steady_clock::now() - sweep_start;
  const ArmResult& serving = results[0];
  const ArmResult& storm = results[1];

  std::printf("scale=%s: %.0f GPUs / %.0f servers, %zu models, CV=2 arrivals for %.0fs\n",
              params.scale_name, Metric(serving, "gpus"), Metric(serving, "servers"),
              EvaluationModels().size(), ToSeconds(params.duration));
  std::printf("workload: %.0f requests (%.0f rps aggregate)\n",
              Metric(serving, "submitted"),
              Metric(serving, "submitted") / ToSeconds(params.duration));

  TextTable table({"Metric", "Value"});
  for (const std::vector<std::string>& row : serving.rows) {
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nrefactors: %" PRId64 "\n",
              static_cast<int64_t>(Metric(serving, "refactors")));
  std::printf("\nengine storm: %.0f events in %.2fs -> %.0f events/s\n",
              Metric(storm, "engine_executed_events"), Metric(storm, "engine_storm_wall_s"),
              Metric(storm, "engine_events_per_sec"));

  for (const ArmResult& result : results) {
    for (const auto& [name, value] : result.metrics) {
      if (name == "gpus" || name == "servers") {
        continue;  // scale descriptors, not perf metrics
      }
      reporter.Metric(name, value);
    }
  }
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));
  reporter.Metric("sweep_wall_s", sweep_wall.count());
  return serving.exit_code;
}

}  // namespace

REGISTER_BENCH(stress_scale, "Cluster-scale stress: 1024 GPUs, 4 models, 200k+ requests",
               Run);
