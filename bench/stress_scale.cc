// Cluster-scale stress bench: 1024 fragmented GPUs, 4 models, >= 200k requests.
//
// Unlike the fig* benches (which reproduce paper plots on the 82-GPU testbed), this
// bench exists to measure the *substrate*: how fast the discrete-event engine, router
// and controllers push a production-scale workload through one shared cluster. It
// reports executed_events and events_per_sec so the perf trajectory of the hot paths
// accumulates in BENCH_*.json across PRs, and CI runs it at reduced scale
// (FLEXPIPE_STRESS_SCALE=ci) against a checked-in events/sec floor.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct StressParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;  // per EvaluationModels() entry
  TimeNs duration;
};

StressParams FullScale() {
  StressParams p;
  p.scale_name = "full";
  // 1024 GPUs across 448 servers (shared with placement_storm — see bench/common.h).
  p.cluster = StressClusterConfig();
  // WHISPER-9B, LLAMA2-7B, BERT-21B, OPT-66B: lighter models carry more traffic,
  // mirroring the fig13/fig14 production mix. 1400 rps aggregate * 300 s = 420k.
  p.qps = {450.0, 450.0, 300.0, 200.0};
  p.duration = 300 * kSecond;
  return p;
}

StressParams CiScale() {
  StressParams p;
  p.scale_name = "ci";
  // 128 GPUs and ~1/8 of the traffic, so runner-sized machines finish in well under a
  // minute while exercising the identical code paths.
  p.cluster = StressCiClusterConfig();
  p.qps = {56.0, 56.0, 38.0, 25.0};
  p.duration = 60 * kSecond;
  return p;
}

// ---------------------------------------------------------------------------
// Engine storm: the serving run above measures the whole stack (instances, router,
// controllers share the wall clock with the engine), so engine gains are diluted by
// semantic simulation work. This phase isolates the substrate with the same shape the
// serving run produces: a six-figure backlog of pre-scheduled one-shots (arrivals),
// thousands of self-rescheduling short-delay chains (pipeline waves), and a watchdog
// re-arm every 8th step (timeout churn — the pattern whose cancels the old engine
// retained as heap tombstones forever).
// ---------------------------------------------------------------------------

struct StormResult {
  uint64_t executed = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

struct StormCtx {
  Simulation sim;
  uint64_t remaining = 0;
  uint64_t lcg = 0x9E3779B97F4A7C15ull;
  std::vector<EventId> watchdogs;

  // Deterministic inline LCG: identical event times on every engine implementation.
  uint64_t Next() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  }

  void Step(uint32_t chain) {
    if (remaining == 0) {
      return;
    }
    --remaining;
    if ((remaining & 7) == 0) {
      if (watchdogs[chain] != 0) {
        sim.Cancel(watchdogs[chain]);
      }
      watchdogs[chain] = sim.Schedule(30 * kSecond, [] {});
    }
    // {this, chain} fits std::function's inline buffer: the chain itself allocates
    // nothing, so the measurement isolates the engine rather than malloc.
    sim.Schedule(kMillisecond + static_cast<TimeNs>(Next() % 2000) * kMicrosecond,
                 [this, chain] { Step(chain); });
  }
};

StormResult EngineStorm(size_t backlog, size_t chains, uint64_t chain_events) {
  StormCtx ctx;
  ctx.remaining = chain_events;
  ctx.watchdogs.assign(chains, 0);
  for (size_t i = 0; i < backlog; ++i) {
    ctx.sim.ScheduleAt(
        60 * kSecond + static_cast<TimeNs>(ctx.Next() % 300'000) * kMillisecond, [] {});
  }
  for (size_t c = 0; c < chains; ++c) {
    uint32_t chain = static_cast<uint32_t>(c);
    ctx.sim.Schedule(static_cast<TimeNs>(c + 1) * kMillisecond,
                     [&ctx, chain] { ctx.Step(chain); });
  }

  auto start = std::chrono::steady_clock::now();
  ctx.sim.RunUntilIdle();
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  StormResult result;
  result.executed = ctx.sim.executed_events();
  result.wall_s = wall.count();
  result.events_per_sec = static_cast<double>(result.executed) / result.wall_s;
  return result;
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  StressParams params = ci ? CiScale() : FullScale();

  PrintHeader("Cluster-scale stress: shared multi-model serving",
              "substrate throughput at production scale (not a paper figure)");

  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  ExperimentEnv env(env_config);
  std::printf("scale=%s: %d GPUs / %d servers, %zu models, CV=2 arrivals for %.0fs\n",
              params.scale_name, env.cluster().gpu_count(), env.cluster().server_count(),
              models.size(), ToSeconds(params.duration));

  // Streaming injection: requests are drawn lazily and recycled on completion, so the
  // engine never holds a pre-scheduled arrival backlog (PR-3's staging tier now only
  // sees genuinely far-future control events).
  MergedRequestStream stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.duration);
  auto system = MakeSharedClusterSystem(SystemKind::kFlexPipe, env, params.qps);
  auto wall_start = std::chrono::steady_clock::now();
  StreamingRunReport report = RunStreamingWorkload(
      env, *system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  std::printf("workload: %" PRId64 " requests (%.0f rps aggregate)\n", report.submitted,
              static_cast<double>(report.submitted) / ToSeconds(params.duration));

  const MetricsCollector& m = system->metrics();
  const double executed = static_cast<double>(env.sim().executed_events());
  const double events_per_sec = executed / wall.count();
  const double completion_rate =
      static_cast<double>(m.completed()) / static_cast<double>(report.submitted);

  TextTable table({"Metric", "Value"});
  table.AddRow({"requests submitted", std::to_string(report.submitted)});
  table.AddRow({"requests completed", std::to_string(m.completed())});
  table.AddRow({"goodput rate", TextTable::Num(m.GoodputRate(report.submitted), 3)});
  table.AddRow({"simulated span (s)", TextTable::Num(ToSeconds(report.ran_until), 0)});
  table.AddRow({"executed events", TextTable::Num(executed, 0)});
  table.AddRow({"run wall time (s)", TextTable::Num(wall.count(), 2)});
  table.AddRow({"events/sec", TextTable::Num(events_per_sec, 0)});
  table.AddRow({"peak reserved GPUs", std::to_string(system->peak_reserved_gpus())});
  table.AddRow({"peak live requests", std::to_string(report.peak_live_requests)});
  table.AddRow({"peak event-arena slots", std::to_string(env.sim().arena_slots())});
  table.Print();

  if (auto* fp = dynamic_cast<FlexPipeSystem*>(system.get())) {
    std::printf("\nrefactors: %" PRId64 "\n", static_cast<int64_t>(fp->refactor_count()));
    reporter.Metric("refactors", static_cast<double>(fp->refactor_count()));
  }

  // Substrate-isolated engine storm, sized like the serving run above.
  StormResult storm = ci ? EngineStorm(/*backlog=*/50'000, /*chains=*/512,
                                       /*chain_events=*/600'000)
                         : EngineStorm(/*backlog=*/400'000, /*chains=*/4096,
                                       /*chain_events=*/5'000'000);
  std::printf("\nengine storm: %" PRIu64 " events in %.2fs -> %.0f events/s\n",
              storm.executed, storm.wall_s, storm.events_per_sec);

  reporter.Metric("submitted", static_cast<double>(report.submitted));
  reporter.Metric("completed", static_cast<double>(m.completed()));
  reporter.Metric("completion_rate", completion_rate);
  reporter.Metric("goodput_rate", m.GoodputRate(report.submitted));
  reporter.Metric("executed_events", executed);
  reporter.Metric("run_wall_time_s", wall.count());
  reporter.Metric("events_per_sec", events_per_sec);
  reporter.Metric("peak_reserved_gpus", static_cast<double>(system->peak_reserved_gpus()));
  reporter.Metric("peak_live_requests", static_cast<double>(report.peak_live_requests));
  reporter.Metric("peak_arena_slots", static_cast<double>(env.sim().arena_slots()));
  reporter.Metric("engine_executed_events", static_cast<double>(storm.executed));
  reporter.Metric("engine_storm_wall_s", storm.wall_s);
  reporter.Metric("engine_events_per_sec", storm.events_per_sec);

  // The bench's contract is substrate health, not SLO attainment: it fails only if the
  // cluster-scale run stalls outright (almost nothing completing indicates a lost pump
  // or a wedged controller, not an under-provisioned fleet).
  return completion_rate > 0.5 ? 0 : 1;
}

}  // namespace

REGISTER_BENCH(stress_scale, "Cluster-scale stress: 1024 GPUs, 4 models, 200k+ requests",
               Run);
