// Fig. 9: burst absorption under extreme variability (CV=8, first 300 s).
//
// (a) per-15s-window CV of the arrival stream, (b) windowed mean response time for
// FlexPipe vs AlpaServe vs MuxServe. The paper's observation: MuxServe sustains >10 s
// latencies, AlpaServe spikes periodically, FlexPipe stays low and flat.
//
// The three serving runs are independent universes (private env + system +
// identically seeded stream), so they run as sweep arms on the parallel sweep
// driver; results are bit-identical to the serial order at any FLEXPIPE_SWEEP_WORKERS.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "bench/sweep.h"
#include "src/trace/cv_analysis.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

constexpr TimeNs kDuration = 300 * kSecond;
constexpr TimeNs kWindow = 15 * kSecond;

// One arm = one system's complete universe: env, system and stream live and die
// inside the closure; only the per-window mean response times leave it. Arms never
// print — the caller renders the table after Run returns.
ArmResult RunSystemArm(SystemKind kind) {
  ArmResult result;
  ExperimentEnv env(DefaultEnvConfig());
  auto system = MakeSystem(kind, env);
  StreamingWorkloadSource stream = CvWorkloadStream(8.0, kBaselineQps, kDuration);
  RunStreamingWorkload(env, *system, stream,
                       RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  for (TimeNs w = 0; w < kDuration; w += kWindow) {
    // Completions are timestamped after the warmup shift.
    result.series.push_back(
        system->metrics().MeanLatencyInWindowSec(kWarmup + w, kWarmup + w + kWindow));
  }
  return result;
}

int Run(BenchReporter& reporter) {
  PrintHeader("Fig. 9 - latency timeline under CV=8 burst traffic",
              "Fig. 9 (300 s, 15 s windows: arrival CV + per-system response time)");

  // The arrival-CV column reads the same stream every serving run consumes: an extra
  // identically seeded pass collects just the timestamps (O(1) stream state; only the
  // timestamps themselves are retained for the windowed-CV analysis).
  std::vector<TimeNs> arrivals;
  {
    StreamingWorkloadSource stream = CvWorkloadStream(8.0, kBaselineQps, kDuration);
    RequestSpec spec;
    while (stream.Next(&spec)) {
      arrivals.push_back(spec.arrival);
    }
  }

  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kMuxServe};
  std::vector<SweepArm> arms;
  for (SystemKind kind : kinds) {
    arms.push_back({KindName(kind), [kind] { return RunSystemArm(kind); }});
  }
  ParallelSweepRunner runner;
  auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ArmResult> results = runner.Run(arms);
  std::chrono::duration<double> sweep_wall = std::chrono::steady_clock::now() - sweep_start;

  TextTable table({"Window", "ArrivalCV(15s)", "RT FlexPipe(s)", "RT AlpaServe(s)",
                   "RT MuxServe(s)"});
  RunningStats rt[3];
  size_t window_index = 0;
  for (TimeNs w = 0; w < kDuration; w += kWindow, ++window_index) {
    double arrival_cv = InterarrivalCv(arrivals, w, w + kWindow);
    std::vector<std::string> row;
    row.push_back(TextTable::Num(ToSeconds(w), 0) + "s");
    row.push_back(TextTable::Num(arrival_cv, 2));
    for (size_t i = 0; i < kinds.size(); ++i) {
      double mean = results[i].series[window_index];
      rt[i].Add(mean);
      row.push_back(TextTable::Num(mean, 2));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nsummary over 300 s: FlexPipe mean %.2fs max %.2fs | AlpaServe mean %.2fs "
              "max %.2fs | MuxServe mean %.2fs max %.2fs\n",
              rt[0].mean(), rt[0].max(), rt[1].mean(), rt[1].max(), rt[2].mean(),
              rt[2].max());
  std::printf("(paper: FlexPipe low and stable; AlpaServe periodic spikes; MuxServe "
              "frequently >10 s)\n");
  const char* tags[] = {"flexpipe", "alpaserve", "muxserve"};
  for (size_t i = 0; i < kinds.size(); ++i) {
    reporter.Metric(std::string(tags[i]) + "_windowed_mean_rt_s", rt[i].mean());
    reporter.Metric(std::string(tags[i]) + "_windowed_max_rt_s", rt[i].max());
  }
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));
  reporter.Metric("sweep_wall_s", sweep_wall.count());
  return 0;
}

}  // namespace

REGISTER_BENCH(fig9, "Fig. 9: latency timeline under CV=8 burst traffic", Run);
