// Fig. 9: burst absorption under extreme variability (CV=8, first 300 s).
//
// (a) per-15s-window CV of the arrival stream, (b) windowed mean response time for
// FlexPipe vs AlpaServe vs MuxServe. The paper's observation: MuxServe sustains >10 s
// latencies, AlpaServe spikes periodically, FlexPipe stays low and flat.
#include <cstdio>

#include "bench/common.h"
#include "src/trace/cv_analysis.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 9 - latency timeline under CV=8 burst traffic",
              "Fig. 9 (300 s, 15 s windows: arrival CV + per-system response time)");

  constexpr TimeNs kDuration = 300 * kSecond;
  // The arrival-CV column reads the same stream every serving run consumes: an extra
  // identically seeded pass collects just the timestamps (O(1) stream state; only the
  // timestamps themselves are retained for the windowed-CV analysis).
  std::vector<TimeNs> arrivals;
  {
    StreamingWorkloadSource stream = CvWorkloadStream(8.0, kBaselineQps, kDuration);
    RequestSpec spec;
    while (stream.Next(&spec)) {
      arrivals.push_back(spec.arrival);
    }
  }

  const std::vector<SystemKind> kinds = {SystemKind::kFlexPipe, SystemKind::kAlpaServe,
                                         SystemKind::kMuxServe};
  // Collect per-system completion series.
  std::vector<std::unique_ptr<ServingSystemBase>> systems;
  std::vector<std::unique_ptr<ExperimentEnv>> envs;
  for (size_t i = 0; i < kinds.size(); ++i) {
    envs.push_back(std::make_unique<ExperimentEnv>(DefaultEnvConfig()));
    systems.push_back(MakeSystem(kinds[i], *envs.back()));
    StreamingWorkloadSource stream = CvWorkloadStream(8.0, kBaselineQps, kDuration);
    RunStreamingWorkload(*envs.back(), *systems.back(), stream,
                         RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  }

  TextTable table({"Window", "ArrivalCV(15s)", "RT FlexPipe(s)", "RT AlpaServe(s)",
                   "RT MuxServe(s)"});
  RunningStats rt[3];
  for (TimeNs w = 0; w < kDuration; w += 15 * kSecond) {
    double arrival_cv = InterarrivalCv(arrivals, w, w + 15 * kSecond);
    std::vector<std::string> row;
    row.push_back(TextTable::Num(ToSeconds(w), 0) + "s");
    row.push_back(TextTable::Num(arrival_cv, 2));
    for (size_t i = 0; i < kinds.size(); ++i) {
      // Completions are timestamped after the warmup shift.
      double mean = systems[i]->metrics().MeanLatencyInWindowSec(kWarmup + w,
                                                                 kWarmup + w + 15 * kSecond);
      rt[i].Add(mean);
      row.push_back(TextTable::Num(mean, 2));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nsummary over 300 s: FlexPipe mean %.2fs max %.2fs | AlpaServe mean %.2fs "
              "max %.2fs | MuxServe mean %.2fs max %.2fs\n",
              rt[0].mean(), rt[0].max(), rt[1].mean(), rt[1].max(), rt[2].mean(),
              rt[2].max());
  std::printf("(paper: FlexPipe low and stable; AlpaServe periodic spikes; MuxServe "
              "frequently >10 s)\n");
  const char* tags[] = {"flexpipe", "alpaserve", "muxserve"};
  for (size_t i = 0; i < kinds.size(); ++i) {
    reporter.Metric(std::string(tags[i]) + "_windowed_mean_rt_s", rt[i].mean());
    reporter.Metric(std::string(tags[i]) + "_windowed_max_rt_s", rt[i].max());
  }
  return 0;
}

REGISTER_BENCH(fig9, "Fig. 9: latency timeline under CV=8 burst traffic", Run);
