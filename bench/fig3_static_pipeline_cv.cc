// Fig. 3: impact of request-distribution variability on a static 4-stage pipeline.
//
// One OPT-66B 4-stage pipeline instance, baseline 20 QPS, CV swept over
// {0.1, 1, 2, 4, 8}: goodput degrades, queue length grows, and stall cycles explode —
// the paper's motivation for runtime adaptation (goodput -37%, queue ~4x, stalls ~22x).
#include <cstdio>
#include <memory>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 3 - static 4-stage pipeline vs workload variability",
              "Fig. 3 (goodput / queue length / stall cycles vs CV, QPS 20)");

  TextTable table({"CV", "Goodput(req/s)", "GoodputRate", "MeanQueueLen", "MaxQueueLen",
                   "StallCycles(s)", "MeanRT(s)"});

  double stall_cv01 = 0.0;
  for (double cv : {0.1, 1.0, 2.0, 4.0, 8.0}) {
    ExperimentEnv env(DefaultEnvConfig());
    AlpaServeConfig config;  // a static pipeline: AlpaServe with a pinned single replica
    config.stages = 4;
    config.replicas = 1;
    config.default_slo = kDefaultSlo;
    AlpaServeSystem system(env.Context(), &env.ladder(0), config);

    RunningStats queue_len;
    int64_t max_queue = 0;
    PeriodicTask sampler(&env.sim(), kSecond, [&] {
      queue_len.Add(static_cast<double>(system.router().queue_length()));
      max_queue = std::max<int64_t>(max_queue, system.router().queue_length());
    });

    StreamingWorkloadSource stream = CvWorkloadStream(cv, kBaselineQps);
    StreamingRunReport report = RunStreamingWorkload(
        env, system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
    sampler.Cancel();

    double stall_s = ToSeconds(system.TotalStallAll());
    if (cv == 0.1) {
      stall_cv01 = stall_s;
    }
    reporter.Metric(CvTag(cv) + "_goodput_rate", system.metrics().GoodputRate(report.submitted));
    reporter.Metric(CvTag(cv) + "_stall_s", stall_s);
    reporter.Metric(CvTag(cv) + "_mean_queue_len", queue_len.mean());
    table.AddRow({TextTable::Num(cv, 1),
                  TextTable::Num(system.metrics().GoodputPerSec(report.ran_until), 1),
                  TextTable::Pct(system.metrics().GoodputRate(report.submitted)),
                  TextTable::Num(queue_len.mean(), 1), std::to_string(max_queue),
                  TextTable::Num(stall_s, 2),
                  TextTable::Num(system.metrics().MeanLatencySec(), 2)});
  }
  table.Print();
  std::printf("\npaper shape: goodput -37%% from CV 0.1 to 8; queue ~4x; stalls ~22x "
              "(ours: stall ratio shown above relative to %.2f s at CV=0.1)\n",
              stall_cv01);
  return 0;
}

REGISTER_BENCH(fig3, "Fig. 3: static 4-stage pipeline vs workload variability", Run);
