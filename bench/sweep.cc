#include "bench/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/common/macros.h"

namespace flexpipe {
namespace bench {

std::vector<ArmResult> MergeByArmIndex(
    std::vector<std::pair<size_t, ArmResult>> completed, size_t arm_count) {
  std::vector<ArmResult> merged(arm_count);
  std::vector<bool> seen(arm_count, false);
  for (auto& [index, result] : completed) {
    FLEXPIPE_CHECK_MSG(index < arm_count, "completion for unknown arm index");
    FLEXPIPE_CHECK_MSG(!seen[index], "duplicate completion for one arm");
    seen[index] = true;
    merged[index] = std::move(result);
  }
  FLEXPIPE_CHECK_MSG(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }),
                     "missing completion for an arm");
  return merged;
}

int SweepWorkersFromEnv() {
  const char* env = std::getenv("FLEXPIPE_SWEEP_WORKERS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  if (std::strcmp(env, "auto") == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  char* end = nullptr;
  long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) {
    return 1;
  }
  if (parsed == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<int>(parsed);
}

ParallelSweepRunner::ParallelSweepRunner(int workers) : workers_(std::max(1, workers)) {}

std::vector<ArmResult> ParallelSweepRunner::Run(const std::vector<SweepArm>& arms) const {
  std::vector<ArmResult> results(arms.size());
  const int pool = std::min<int>(workers_, static_cast<int>(arms.size()));
  if (pool <= 1) {
    // Serial reference path: identical code to a worker, on the calling thread.
    for (size_t i = 0; i < arms.size(); ++i) {
      results[i] = arms[i].run();
    }
    return results;
  }

  // Work distribution: workers claim the next unclaimed arm index under `mu` and run
  // it without the lock. Each result lands in its own slot of `results` — disjoint
  // elements, so slot writes need no lock; `join` publishes them to the caller.
  struct Cursor {
    Mutex mu;
    size_t next FLEXPIPE_GUARDED_BY(mu) = 0;
  };
  Cursor cursor;
  auto worker = [&arms, &results, &cursor] {
    for (;;) {
      size_t index;
      {
        MutexLock lock(cursor.mu);
        if (cursor.next >= arms.size()) {
          return;
        }
        index = cursor.next++;
      }
      results[index] = arms[index].run();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(pool));
  for (int t = 0; t < pool; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return results;
}

}  // namespace bench
}  // namespace flexpipe
