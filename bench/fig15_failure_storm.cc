// Failure-storm bench: fault injection and inflight pipeline recovery at cluster scale.
//
// Three storms hit the 1024-GPU production deployment (the stress_scale cluster and
// model mix) mid-traffic: one whole server dies, one rack partitions and heals, and a
// rolling 10% of the fleet's servers churn away. Each storm runs twice — FlexPipe's
// migration-based re-formation (kReform: decode progress kept via KV recompute,
// relaunch at the fast fine granularity seeded from surviving stages) against the
// PipeBoost-style naive baseline (kTeardown: every instance of the affected model torn
// down, progress dropped, cold restart) — six independent universes on the parallel
// sweep driver.
//
// Each arm chains two phases through one WorkloadHarness (pre-storm steady state, then
// the storm window plus drain) sharing one request pool, so a request displaced by a
// fault in phase 2 recycles through the same accounting it was acquired under. The
// contract checked here and by CI: zero requests lost (submitted == completed after the
// drain, nothing stuck live), every reform storm recovers, and reform beats teardown on
// both time-to-recover and goodput-dip area. Deterministic at a fixed seed: fault
// victims are either seeded draws or argmax-by-reservation picks with id tie-breaks.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/sweep.h"
#include "src/sim/faults.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct StormParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;   // per EvaluationModels() entry
  TimeNs pre_duration;       // phase 1: steady state before the storm
  TimeNs storm_duration;     // phase 2: faults land and recovery is measured
  TimeNs fault_offset;       // first fault, relative to phase-2 start
  TimeNs churn_spacing;      // server-death spacing in the fleet-churn storm
};

StormParams FullScale() {
  StormParams p;
  p.scale_name = "full";
  p.cluster = StressClusterConfig();  // 1024 GPUs / 448 servers (bench/common.h)
  // ~65% of the stress_scale saturation mix: recovery needs headroom — a fleet serving
  // at its limit cannot absorb a 10% capacity loss no matter the recovery policy, and
  // the interesting signal is how fast each policy climbs back, not queueing collapse.
  p.qps = {200.0, 200.0, 130.0, 90.0};
  p.pre_duration = 60 * kSecond;
  p.storm_duration = 180 * kSecond;
  p.fault_offset = 15 * kSecond;
  p.churn_spacing = 2 * kSecond;
  return p;
}

StormParams CiScale() {
  StormParams p;
  p.scale_name = "ci";
  p.cluster = StressCiClusterConfig();  // 128 GPUs / 56 servers
  p.qps = {40.0, 40.0, 26.0, 17.0};
  p.pre_duration = 30 * kSecond;
  p.storm_duration = 90 * kSecond;
  p.fault_offset = 10 * kSecond;
  p.churn_spacing = 1 * kSecond;
  return p;
}

enum class Storm { kSingleServer, kRackPartition, kFleetChurn };

const char* StormName(Storm storm) {
  switch (storm) {
    case Storm::kSingleServer:
      return "single_server";
    case Storm::kRackPartition:
      return "rack_partition";
    case Storm::kFleetChurn:
      return "fleet_churn";
  }
  return "?";
}

const char* PolicyName(FaultRecoveryPolicy policy) {
  return policy == FaultRecoveryPolicy::kReform ? "reform" : "teardown";
}

// Deterministic impact-maximising victim picks, evaluated at fault time so they see
// the actual placement: argmax of serving-reserved bytes with an id tie-break.
ServerId BusiestServer(const Cluster& cluster) {
  ServerId best = 0;
  Bytes best_reserved = -1;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    Bytes reserved = 0;
    for (GpuId g : cluster.server(s).gpus) {
      reserved += cluster.gpu(g).reserved_memory();
    }
    if (reserved > best_reserved) {
      best_reserved = reserved;
      best = s;
    }
  }
  return best;
}

RackId BusiestRack(const Cluster& cluster) {
  std::vector<Bytes> reserved(static_cast<size_t>(cluster.rack_count()), 0);
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    RackId rack = cluster.RackOf(cluster.ServerOf(g));
    reserved[static_cast<size_t>(rack)] += cluster.gpu(g).reserved_memory();
  }
  RackId best = 0;
  for (RackId r = 1; r < cluster.rack_count(); ++r) {
    if (reserved[static_cast<size_t>(r)] > reserved[static_cast<size_t>(best)]) {
      best = r;
    }
  }
  return best;
}

std::unique_ptr<FlexPipeSystem> MakeFlexPipe(ExperimentEnv& env,
                                             const std::vector<double>& qps,
                                             FaultRecoveryPolicy policy) {
  std::vector<FlexPipeSystem::ModelDeployment> deployments;
  for (size_t i = 0; i < qps.size(); ++i) {
    FlexPipeSystem::ModelDeployment d;
    d.ladder = &env.ladder(static_cast<int>(i));
    d.config.model_id = static_cast<int>(i);
    d.config.initial_stages = d.ladder->coarsest();
    d.config.target_peak_rps = qps[i];
    d.config.default_slo = kDefaultSlo;
    d.config.scaling.reclaim_idle = 45 * kSecond;
    d.config.fault_recovery = policy;
    deployments.push_back(d);
  }
  return std::make_unique<FlexPipeSystem>(env.Context(), std::move(deployments));
}

// One (storm, policy) universe: fresh env, chained pre-storm + storm phases through a
// single WorkloadHarness, recovery analysed from the completion series and the
// injector's loss times. Never prints (sweep-arm contract).
ArmResult RunStormArm(const StormParams& params, Storm storm, FaultRecoveryPolicy policy) {
  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  ExperimentEnv env(env_config);
  std::unique_ptr<FlexPipeSystem> system = MakeFlexPipe(env, params.qps, policy);

  FaultInjector injector(&env.sim(), &env.cluster());
  FlexPipeSystem* sys = system.get();
  injector.AddGpuLossListener(
      [sys](const std::vector<GpuId>& lost) { sys->OnGpusLost(lost); });

  const TimeNs storm_start = kWarmup + params.pre_duration;
  const TimeNs fault_time = storm_start + params.fault_offset;
  switch (storm) {
    case Storm::kSingleServer:
      // Victim chosen against the live placement just before impact.
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, fault_time] {
        injector.Arm(FaultPlan::SingleServer(fault_time, BusiestServer(env.cluster())));
      });
      break;
    case Storm::kRackPartition:
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, fault_time] {
        injector.Arm(FaultPlan::RackPartition(fault_time, BusiestRack(env.cluster()),
                                              /*heal_after=*/20 * kSecond));
      });
      break;
    case Storm::kFleetChurn:
      injector.Arm(FaultPlan::FleetChurn(fault_time, params.churn_spacing,
                                         /*fraction=*/0.10, env.cluster(), kSeed));
      break;
  }

  WorkloadHarness harness(env, {system.get()});
  // Phase 1: steady state. The horizon stops at the phase boundary with requests still
  // in flight — they carry over into the storm phase through the shared pool.
  MergedRequestStream pre_stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.pre_duration, kSeed);
  harness.RunPhase(pre_stream, RunOptions{.horizon = storm_start, .warmup = kWarmup});

  // Phase 2: the storm window plus drain, same pool, arrivals shifted past phase 1.
  MergedRequestStream storm_stream = MultiModelWorkloadStream(
      models, params.qps, /*cv=*/2.0, params.storm_duration, kSeed + 1);
  // Generous drain: the teardown baseline cold-reloads whole fleets and must still
  // clear its backlog, or stuck-live requests would masquerade as losses.
  StreamingRunReport report = harness.RunPhase(
      storm_stream,
      RunOptions{.drain_grace = 900 * kSecond, .warmup = storm_start});
  harness.Finish();

  const MetricsCollector& m = system->metrics();
  const int64_t submitted = harness.total_submitted();
  const int64_t completed = m.completed();
  const int64_t stuck_live = static_cast<int64_t>(harness.pool().live());
  // Accounting loss: a request neither completed nor still alive vanished somewhere
  // (double-release, dropped requeue). Stuck-live means the drain never finished it.
  const int64_t lost = submitted - completed - stuck_live;
  const ServingSystemBase::FailureStats& stats = system->failure_stats();

  FailureRecoveryReport recovery =
      AnalyzeFailureRecovery(m.completions(), injector.loss_times(), report.ran_until);

  const std::string prefix = std::string(PolicyName(policy)) + "_" + StormName(storm) + "_";
  ArmResult result;
  result.metrics = {
      {prefix + "submitted", static_cast<double>(submitted)},
      {prefix + "completed", static_cast<double>(completed)},
      {prefix + "requests_lost", static_cast<double>(lost)},
      {prefix + "stuck_live", static_cast<double>(stuck_live)},
      {prefix + "instances_lost", static_cast<double>(stats.instances_lost)},
      {prefix + "gpus_lost", static_cast<double>(injector.gpus_lost())},
      {prefix + "requeued", static_cast<double>(stats.requests_requeued)},
      {prefix + "resumed", static_cast<double>(stats.requests_resumed)},
      {prefix + "restarted", static_cast<double>(stats.requests_restarted)},
      {prefix + "kv_invalidated_tokens", static_cast<double>(sys->kv_invalidated_tokens())},
      {prefix + "pre_fault_rps", recovery.pre_fault_goodput_rps},
      {prefix + "time_to_recover_s", recovery.time_to_recover_s},
      {prefix + "dip_depth_rps", recovery.dip_depth_rps},
      {prefix + "dip_area_rps_s", recovery.dip_area_rps_s},
      {prefix + "recovered", recovery.recovered ? 1.0 : 0.0},
      {prefix + "goodput_rate", m.GoodputRate(submitted)},
  };
  // Zero-loss is the hard contract: every fault-displaced request completes exactly
  // once. An instance must actually have died, or the storm tested nothing.
  result.exit_code =
      (lost == 0 && stuck_live == 0 && stats.instances_lost > 0 && recovery.fault_count > 0)
          ? 0
          : 1;
  return result;
}

double Metric(const std::vector<ArmResult>& results, const std::string& name) {
  for (const ArmResult& result : results) {
    for (const auto& [key, value] : result.metrics) {
      if (key == name) {
        return value;
      }
    }
  }
  return 0.0;
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  const StormParams params = ci ? CiScale() : FullScale();

  PrintHeader("Fig. 15: failure storms and inflight pipeline recovery",
              "fault injection on the production deployment (robustness extension)");
  std::printf("scale=%s: %d racks, 10 Gbps cross-rack, 4-model mix, CV=2 arrivals\n\n",
              params.scale_name, params.cluster.racks);

  const std::vector<Storm> storms = {Storm::kSingleServer, Storm::kRackPartition,
                                     Storm::kFleetChurn};
  const std::vector<FaultRecoveryPolicy> policies = {FaultRecoveryPolicy::kReform,
                                                     FaultRecoveryPolicy::kTeardown};
  std::vector<SweepArm> arms;
  for (Storm storm : storms) {
    for (FaultRecoveryPolicy policy : policies) {
      std::string name = std::string(StormName(storm)) + "/" + PolicyName(policy);
      arms.push_back({name, [&params, storm, policy] {
                        return RunStormArm(params, storm, policy);
                      }});
    }
  }
  ParallelSweepRunner runner;
  std::vector<ArmResult> results = runner.Run(arms);

  TextTable table({"Storm", "Policy", "Inst lost", "Requeued", "Resumed", "Restarted",
                   "TTR (s)", "Dip area", "Lost", "Stuck"});
  double reform_ttr = 0.0, teardown_ttr = 0.0;
  double reform_dip = 0.0, teardown_dip = 0.0;
  double lost_total = 0.0, stuck_total = 0.0;
  bool all_reform_recovered = true;
  int exit_code = 0;
  for (size_t i = 0; i < arms.size(); ++i) {
    const Storm storm = storms[i / policies.size()];
    const FaultRecoveryPolicy policy = policies[i % policies.size()];
    const std::string prefix =
        std::string(PolicyName(policy)) + "_" + StormName(storm) + "_";
    const double ttr = Metric(results, prefix + "time_to_recover_s");
    const double dip = Metric(results, prefix + "dip_area_rps_s");
    const double lost = Metric(results, prefix + "requests_lost");
    const double stuck = Metric(results, prefix + "stuck_live");
    lost_total += lost;
    stuck_total += stuck;
    if (policy == FaultRecoveryPolicy::kReform) {
      reform_ttr += ttr;
      reform_dip += dip;
      all_reform_recovered =
          all_reform_recovered && Metric(results, prefix + "recovered") > 0.5;
    } else {
      teardown_ttr += ttr;
      teardown_dip += dip;
    }
    exit_code |= results[i].exit_code;
    table.AddRow({StormName(storm), PolicyName(policy),
                  TextTable::Num(Metric(results, prefix + "instances_lost"), 0),
                  TextTable::Num(Metric(results, prefix + "requeued"), 0),
                  TextTable::Num(Metric(results, prefix + "resumed"), 0),
                  TextTable::Num(Metric(results, prefix + "restarted"), 0),
                  TextTable::Num(ttr, 1), TextTable::Num(dip, 0),
                  TextTable::Num(lost, 0), TextTable::Num(stuck, 0)});
  }
  table.Print();

  std::printf("\nreform:   total TTR %.1fs, total dip area %.0f rps*s\n", reform_ttr,
              reform_dip);
  std::printf("teardown: total TTR %.1fs, total dip area %.0f rps*s\n", teardown_ttr,
              teardown_dip);
  std::printf("requests lost %.0f, stuck after drain %.0f\n", lost_total, stuck_total);

  for (const ArmResult& result : results) {
    for (const auto& [name, value] : result.metrics) {
      reporter.Metric(name, value);
    }
  }
  reporter.Metric("reform_total_ttr_s", reform_ttr);
  reporter.Metric("teardown_total_ttr_s", teardown_ttr);
  reporter.Metric("reform_total_dip_area", reform_dip);
  reporter.Metric("teardown_total_dip_area", teardown_dip);
  reporter.Metric("requests_lost_total", lost_total);
  reporter.Metric("stuck_live_total", stuck_total);
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));

  // The paper-level claim under test: re-formation strictly beats tear-down-and-replace
  // on both recovery axes, and every reform storm actually climbs back.
  if (!(reform_ttr <= teardown_ttr && reform_dip <= teardown_dip && all_reform_recovered)) {
    std::printf("FAIL: reform did not dominate teardown (recovered=%d)\n",
                all_reform_recovered ? 1 : 0);
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace

REGISTER_BENCH(fig15_failure_storm,
               "Fig. 15: failure storms — recovery via re-formation vs teardown", Run);
