// Fig. 1: request-distribution CV across analysis windows (180 s / 3 h / 12 h).
//
// A month of Azure-Functions-like traffic is synthesized and analysed exactly the way
// the paper analyses the Alibaba/Azure traces. The headline property is the mismatch:
// short-window CV exceeds long-window CV by up to ~7x, which is why offline (long-
// window) pipeline tuning misjudges short-term burstiness.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "src/trace/azure_trace.h"
#include "src/trace/cv_analysis.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  bench::PrintHeader("Fig. 1 - windowed CV analysis of a month-long trace",
                     "Fig. 1 (Alibaba trace + Azure top apps, CV at 180s/3h/12h windows)");

  AzureTraceSynthesizer::Config config;
  config.days = 31;
  config.base_rate = 20.0;
  config.seed = 42;
  AzureTraceSynthesizer synth(config);
  std::vector<TimeNs> arrivals = synth.GenerateArrivals();
  std::printf("synthesized %zu arrivals over %d days (mean %.1f req/s)\n\n", arrivals.size(),
              config.days,
              static_cast<double>(arrivals.size()) / (config.days * 86400.0));

  auto reports = AnalyzeDailyCv(arrivals, config.days);
  TextTable table({"Day", "CV(180s)", "CV(3h)", "CV(12h)", "180s/12h ratio"});
  double max_ratio = 0.0;
  double max_cv = 0.0;
  for (const auto& r : reports) {
    double ratio = r.cv_180s / std::max(r.cv_12h, 1e-9);
    max_ratio = std::max(max_ratio, ratio);
    max_cv = std::max(max_cv, r.cv_180s);
    if (r.day % 3 == 1) {  // print every third day; the summary uses all
      // Built with += : the `"D" + std::to_string(...)` rvalue concat trips a GCC 12
      // libstdc++ -Wrestrict false positive under -Werror in some inlining contexts.
      std::string day_label = "D";
      day_label += std::to_string(r.day);
      table.AddRow({day_label, TextTable::Num(r.cv_180s, 2),
                    TextTable::Num(r.cv_3h, 2), TextTable::Num(r.cv_12h, 2),
                    TextTable::Num(ratio, 1)});
    }
  }
  table.Print();
  std::printf("\nmax CV(180s) over the month: %.2f (paper: up to ~6)\n", max_cv);
  std::printf("max 180s/12h CV mismatch: %.1fx (paper: up to 7x)\n", max_ratio);
  reporter.Metric("arrivals", static_cast<double>(arrivals.size()));
  reporter.Metric("max_cv_180s", max_cv);
  reporter.Metric("max_cv_mismatch_ratio", max_ratio);
  return 0;
}

REGISTER_BENCH(fig1, "Fig. 1: windowed CV analysis of a month-long trace", Run);
