// flexpipe_bench: unified runner for every registered paper bench.
//
// Usage:
//   flexpipe_bench --list                 enumerate registered benches
//   flexpipe_bench                        run everything
//   flexpipe_bench --filter fig8          run by name (exact) or substring
//   flexpipe_bench --filter fig1 --json out.json
//                                         run + write machine-readable metrics
//
// A --filter pattern that exactly equals a bench name selects only that bench;
// otherwise it selects every bench whose name contains the pattern. Patterns
// may be comma-separated and --filter may repeat.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace bench {
namespace {

struct BenchRun {
  const BenchInfo* info = nullptr;
  int exit_code = 0;
  double wall_time_s = 0.0;
  uint64_t executed_events = 0;  // DES events across every Simulation the bench ran
  double events_per_sec = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

std::vector<std::string> SplitCommas(const std::string& arg) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) {
      comma = arg.size();
    }
    if (comma > start) {
      out.push_back(arg.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

bool Matches(const std::string& pattern, const std::vector<BenchInfo>& all,
             const BenchInfo& bench) {
  for (const BenchInfo& other : all) {
    if (pattern == other.name) {
      return pattern == bench.name;  // exact name wins over substring expansion
    }
  }
  return std::string(bench.name).find(pattern) != std::string::npos;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Doubles print with enough digits to round-trip; NaN/inf degrade to null
// (JSON has no representation for them).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool WriteJson(const std::string& path, const std::vector<BenchRun>& runs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "flexpipe_bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << "{\n  \"benches\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& run = runs[i];
    out << "    {\n";
    out << "      \"name\": \"" << JsonEscape(run.info->name) << "\",\n";
    out << "      \"description\": \"" << JsonEscape(run.info->description) << "\",\n";
    out << "      \"exit_code\": " << run.exit_code << ",\n";
    out << "      \"wall_time_s\": " << JsonNumber(run.wall_time_s) << ",\n";
    out << "      \"executed_events\": " << run.executed_events << ",\n";
    out << "      \"events_per_sec\": " << JsonNumber(run.events_per_sec) << ",\n";
    out << "      \"metrics\": {";
    for (size_t m = 0; m < run.metrics.size(); ++m) {
      out << (m == 0 ? "\n" : ",\n");
      out << "        \"" << JsonEscape(run.metrics[m].first)
          << "\": " << JsonNumber(run.metrics[m].second);
    }
    out << (run.metrics.empty() ? "}" : "\n      }") << "\n";
    out << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

int Usage(int code) {
  std::fprintf(stderr,
               "usage: flexpipe_bench [--list] [--filter <name|substring>[,...]]... "
               "[--json <path>]\n");
  return code;
}

}  // namespace

int Main(int argc, char** argv) {
  std::vector<BenchInfo> benches = BenchRegistry::Instance().benches();
  std::sort(benches.begin(), benches.end(), [](const BenchInfo& a, const BenchInfo& b) {
    return std::strcmp(a.name, b.name) < 0;
  });

  bool list = false;
  std::vector<std::string> patterns;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--filter") {
      if (++i >= argc) {
        return Usage(2);
      }
      for (std::string& p : SplitCommas(argv[i])) {
        patterns.push_back(std::move(p));
      }
    } else if (arg == "--json") {
      if (++i >= argc) {
        return Usage(2);
      }
      json_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else {
      std::fprintf(stderr, "flexpipe_bench: unknown argument '%s'\n", arg.c_str());
      return Usage(2);
    }
  }

  if (list) {
    for (const BenchInfo& bench : benches) {
      std::printf("%-22s %s\n", bench.name, bench.description);
    }
    return 0;
  }

  std::vector<const BenchInfo*> selected;
  for (const BenchInfo& bench : benches) {
    bool keep = patterns.empty();
    for (const std::string& pattern : patterns) {
      keep = keep || Matches(pattern, benches, bench);
    }
    if (keep) {
      selected.push_back(&bench);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "flexpipe_bench: no bench matches the given --filter\n");
    return 1;
  }

  std::vector<BenchRun> runs;
  int failures = 0;
  for (const BenchInfo* info : selected) {
    BenchReporter reporter;
    // Every bench run reports its DES event throughput so BENCH_*.json accumulates a
    // perf trajectory for the simulation substrate across PRs.
    uint64_t events_before = Simulation::process_executed_events();
    auto start = std::chrono::steady_clock::now();
    int code = info->fn(reporter);
    std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    uint64_t executed = Simulation::process_executed_events() - events_before;
    std::printf("\n[%s] done in %.2fs (exit %d, %.2fM events, %.2fM events/s)\n\n",
                info->name, elapsed.count(), code, static_cast<double>(executed) / 1e6,
                static_cast<double>(executed) / elapsed.count() / 1e6);
    if (code != 0) {
      ++failures;
    }
    runs.push_back(BenchRun{info, code, elapsed.count(), executed,
                            static_cast<double>(executed) / elapsed.count(),
                            reporter.metrics()});
  }

  if (!json_path.empty() && !WriteJson(json_path, runs)) {
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace bench
}  // namespace flexpipe

int main(int argc, char** argv) { return flexpipe::bench::Main(argc, argv); }
