// Shared scaffolding for the experiment benches.
//
// Each bench regenerates one table or figure from the paper. They all follow the same
// recipe: build a fresh ExperimentEnv per (system, workload) cell — serving systems
// mutate cluster state — run the workload, and print a paper-style text table. Headline
// workload parameters mirror §9: 20 QPS baseline, CV-parameterised arrivals, Splitwise-
// like prompt/output lengths, OPT-66B unless stated otherwise. Lifecycles are shortened
// from the paper's 2 hours to simulated minutes (steady state is reached much earlier);
// see EXPERIMENTS.md.
#ifndef FLEXPIPE_BENCH_COMMON_H_
#define FLEXPIPE_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/alpaserve.h"
#include "src/baselines/muxserve.h"
#include "src/baselines/serverless_llm.h"
#include "src/baselines/tetris.h"
#include "src/common/macros.h"
#include "src/common/table.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"
#include "src/metrics/recovery.h"

namespace flexpipe {
namespace bench {

// §9's headline arrival rate. Fig. 3/4/8 all sweep CV at this baseline.
inline constexpr double kBaselineQps = 20.0;

// The cluster-scale stress shape shared by stress_scale's serving phase and the
// placement_storm microbench: 128 + 2*192 + 4*128 = 1024 GPUs across 448 servers,
// the same mixed 1/2/4-GPU server mix as the 82-GPU testbed scaled ~12x.
inline ClusterConfig StressClusterConfig() {
  ClusterConfig c;
  c.servers_1gpu = 128;
  c.servers_2gpu = 192;
  c.servers_4gpu = 128;
  c.cpu_only_servers = 8;
  c.racks = 32;
  return c;
}

// Reduced FLEXPIPE_STRESS_SCALE=ci shape shared by stress_scale and
// stress_endurance: 16 + 2*24 + 4*16 = 128 GPUs, ~1/8 of the full cluster.
inline ClusterConfig StressCiClusterConfig() {
  ClusterConfig c;
  c.servers_1gpu = 16;
  c.servers_2gpu = 24;
  c.servers_4gpu = 16;
  c.cpu_only_servers = 2;
  c.racks = 8;
  return c;
}
inline constexpr TimeNs kDefaultSlo = 10 * kSecond;
inline constexpr TimeNs kDefaultDuration = 5 * kMinute;
inline constexpr TimeNs kDrainGrace = 60 * kSecond;
// Initial fleet deployment (provisioning + cold parameter load) happens before traffic.
inline constexpr TimeNs kWarmup = 90 * kSecond;
inline constexpr uint64_t kSeed = 42;

enum class SystemKind {
  kFlexPipe,
  kAlpaServe,
  kMuxServe,
  kServerlessLlm,
  kTetris,
};

inline const char* KindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFlexPipe:
      return "FlexPipe";
    case SystemKind::kAlpaServe:
      return "AlpaServe";
    case SystemKind::kMuxServe:
      return "MuxServe";
    case SystemKind::kServerlessLlm:
      return "ServerlessLLM";
    case SystemKind::kTetris:
      return "Tetris";
  }
  return "?";
}

inline std::vector<SystemKind> AllSystems() {
  return {SystemKind::kFlexPipe, SystemKind::kAlpaServe, SystemKind::kMuxServe,
          SystemKind::kServerlessLlm, SystemKind::kTetris};
}

inline ExperimentEnvConfig DefaultEnvConfig(std::vector<ModelSpec> models = {Opt66B()},
                                            uint64_t seed = kSeed) {
  ExperimentEnvConfig config;
  config.models = std::move(models);
  config.seed = seed;
  return config;
}

inline WorkloadGenerator::Config DefaultWorkloadConfig(int model_index = 0) {
  WorkloadGenerator::Config config;
  config.model_index = model_index;
  config.slo = kDefaultSlo;
  config.lengths.prompt_median = 512;
  config.lengths.prompt_sigma = 0.9;
  config.lengths.prompt_max = 4096;
  config.lengths.output_median = 24;
  config.lengths.output_sigma = 0.7;
  config.lengths.output_max = 256;
  return config;
}

// Standard CV-parameterised workload at the paper's baseline QPS.
inline std::vector<RequestSpec> CvWorkload(double cv, double qps = kBaselineQps,
                                           TimeNs duration = kDefaultDuration,
                                           uint64_t seed = kSeed, int model_index = 0) {
  WorkloadGenerator gen(DefaultWorkloadConfig(model_index));
  Rng rng(Rng(seed).Child("workload").seed());
  return gen.GenerateWithCv(rng, qps, cv, duration);
}

// Builds the system under test. `expected_cv` parameterises the static systems' offline
// tuning knobs the way the paper's baselines were configured per experiment.
inline std::unique_ptr<ServingSystemBase> MakeSystem(SystemKind kind, ExperimentEnv& env,
                                                     int model_index = 0,
                                                     double peak_rps = kBaselineQps) {
  const GranularityLadder& ladder = env.ladder(model_index);
  switch (kind) {
    case SystemKind::kFlexPipe: {
      FlexPipeConfig config;
      config.model_id = model_index;
      config.initial_stages = ladder.coarsest();
      config.target_peak_rps = peak_rps;
      config.default_slo = kDefaultSlo;
      // The paper's 5-minute reclamation window, scaled to the compressed bench
      // lifecycle (2 h -> ~5 min).
      config.scaling.reclaim_idle = 45 * kSecond;
      return std::make_unique<FlexPipeSystem>(env.Context(), &ladder, config);
    }
    case SystemKind::kAlpaServe: {
      AlpaServeConfig config;
      config.model_id = model_index;
      config.stages = ladder.coarsest();
      config.target_peak_rps = peak_rps;
      config.default_slo = kDefaultSlo;
      return std::make_unique<AlpaServeSystem>(env.Context(), &ladder, config);
    }
    case SystemKind::kMuxServe: {
      MuxServeConfig config;
      config.model_id = model_index;
      config.stages = ladder.coarsest();
      config.target_peak_rps = peak_rps;
      config.default_slo = kDefaultSlo;
      return std::make_unique<MuxServeSystem>(env.Context(), &ladder, config);
    }
    case SystemKind::kServerlessLlm: {
      ServerlessLlmConfig config;
      config.reactive.model_id = model_index;
      // DeepSpeed-style static pipeline degree; its edge is the fast checkpoint loader.
      config.reactive.stages = ladder.coarsest();
      config.reactive.min_replicas = 1;
      config.reactive.check_interval = 2 * kSecond;
      config.reactive.scale_up_queue_per_replica = 16;
      config.reactive.default_slo = kDefaultSlo;
      return std::make_unique<ServerlessLlmSystem>(env.Context(), &ladder, config);
    }
    case SystemKind::kTetris: {
      TetrisConfig config;
      config.reactive.model_id = model_index;
      config.reactive.stages = ladder.coarsest();
      config.reactive.min_replicas = 6;  // pre-provisioned like the other baselines
      config.reactive.placement = PlacementPolicy::kBestFit;
      config.reactive.distinct_servers = false;
      config.reactive.check_interval = 2 * kSecond;
      config.reactive.max_replicas = 10;
      config.reactive.default_slo = kDefaultSlo;
      return std::make_unique<TetrisSystem>(env.Context(), &ladder, config);
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Multi-model shared-cluster mode (fig13 shared / fig14): one system serves every
// model in `env` concurrently, contending for the same GPUs. Supported by the systems
// with multi-model deployments: FlexPipe, AlpaServe, ServerlessLLM.
// ---------------------------------------------------------------------------

inline std::unique_ptr<ServingSystemBase> MakeSharedClusterSystem(
    SystemKind kind, ExperimentEnv& env, const std::vector<double>& peak_rps_by_model) {
  const int n = static_cast<int>(peak_rps_by_model.size());
  switch (kind) {
    case SystemKind::kFlexPipe: {
      std::vector<FlexPipeSystem::ModelDeployment> deployments;
      for (int i = 0; i < n; ++i) {
        FlexPipeSystem::ModelDeployment d;
        d.ladder = &env.ladder(i);
        d.config.model_id = i;
        d.config.initial_stages = d.ladder->coarsest();
        d.config.target_peak_rps = peak_rps_by_model[static_cast<size_t>(i)];
        d.config.default_slo = kDefaultSlo;
        d.config.scaling.reclaim_idle = 45 * kSecond;
        deployments.push_back(d);
      }
      return std::make_unique<FlexPipeSystem>(env.Context(), std::move(deployments));
    }
    case SystemKind::kAlpaServe: {
      std::vector<AlpaServeSystem::ModelDeployment> deployments;
      for (int i = 0; i < n; ++i) {
        AlpaServeSystem::ModelDeployment d;
        d.ladder = &env.ladder(i);
        d.config.model_id = i;
        d.config.stages = d.ladder->coarsest();
        d.config.target_peak_rps = peak_rps_by_model[static_cast<size_t>(i)];
        d.config.default_slo = kDefaultSlo;
        deployments.push_back(d);
      }
      return std::make_unique<AlpaServeSystem>(env.Context(), std::move(deployments));
    }
    case SystemKind::kServerlessLlm: {
      std::vector<ReactiveScalingSystem::ModelDeployment> deployments;
      for (int i = 0; i < n; ++i) {
        ReactiveScalingSystem::ModelDeployment d;
        d.ladder = &env.ladder(i);
        d.config.model_id = i;
        d.config.stages = d.ladder->coarsest();
        d.config.min_replicas = 1;
        d.config.check_interval = 2 * kSecond;
        d.config.scale_up_queue_per_replica = 16;
        d.config.default_slo = kDefaultSlo;
        deployments.push_back(d);
      }
      return std::make_unique<ServerlessLlmSystem>(env.Context(), std::move(deployments));
    }
    default:
      // MuxServe / Tetris stay single-model; a null return here would only surface as
      // a crash at the call site's dereference.
      FLEXPIPE_CHECK_MSG(false, "system kind does not support shared-cluster deployments");
      return nullptr;
  }
}

// Interleaved per-model traces: one CV-parameterised stream per model, merged into a
// single time-ordered arrival sequence (requests carry their model_index).
inline std::vector<RequestSpec> MultiModelWorkload(const std::vector<ModelSpec>& models,
                                                   const std::vector<double>& qps_by_model,
                                                   double cv, TimeNs duration,
                                                   uint64_t seed = kSeed) {
  std::vector<std::vector<RequestSpec>> parts;
  for (size_t i = 0; i < models.size(); ++i) {
    WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(static_cast<int>(i));
    wconfig.lengths.prompt_max = models[i].context_window;
    WorkloadGenerator gen(wconfig);
    Rng rng(Rng(seed).Child(models[i].name).seed());
    parts.push_back(gen.GenerateWithCv(rng, qps_by_model[i], cv, duration));
  }
  return MergeWorkloads(std::move(parts));
}

struct CellResult {
  int64_t submitted = 0;
  int64_t completed = 0;
  double goodput_rate = 0.0;       // completions within SLO / submitted
  double mean_latency_s = 0.0;
  LatencyBreakdown breakdown;
  double p50 = 0.0, p75 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0;
  double mean_prefill_s = 0.0;
  double gpu_utilization = 0.0;    // busy / reserved GPU-time
  double goodput_per_sec = 0.0;
  double stall_seconds = 0.0;
  RecoveryReport recovery;
  int peak_gpus = 0;
  double mean_gpus = 0.0;  // time-averaged reserved GPUs
  double mean_alloc_wait_s = 0.0;
  int64_t cold_loads = 0;
  int64_t warm_loads = 0;
  // FlexPipe-only:
  int64_t refactors = 0;
  double last_pause_ms = 0.0;
  int final_stages = 0;
};

// Shared cell extraction for the materialized and streaming runners.
inline CellResult FillCell(ServingSystemBase& system, int64_t submitted, TimeNs ran_until,
                           TimeNs measured_span) {
  CellResult cell;
  cell.submitted = submitted;
  const MetricsCollector& m = system.metrics();
  cell.completed = m.completed();
  cell.goodput_rate = m.GoodputRate(submitted);
  cell.mean_latency_s = m.MeanLatencySec();
  cell.breakdown = m.MeanBreakdown();
  cell.p50 = m.LatencyPercentileSec(50);
  cell.p75 = m.LatencyPercentileSec(75);
  cell.p90 = m.LatencyPercentileSec(90);
  cell.p95 = m.LatencyPercentileSec(95);
  cell.p99 = m.LatencyPercentileSec(99);
  cell.mean_prefill_s = m.MeanPrefillSec();
  cell.gpu_utilization = system.MeanGpuUtilization(ran_until);
  cell.goodput_per_sec = m.GoodputPerSec(measured_span);
  cell.stall_seconds = ToSeconds(system.TotalStallAll());
  cell.recovery = AnalyzeRecovery(m.completions());
  cell.peak_gpus = system.peak_reserved_gpus();
  cell.mean_gpus =
      system.GpuSecondsReserved(ran_until) / std::max(1.0, ToSeconds(ran_until));
  cell.mean_alloc_wait_s = system.MeanAllocationWaitSec();
  cell.cold_loads = system.cold_loads();
  cell.warm_loads = system.warm_loads();
  if (auto* fp = dynamic_cast<FlexPipeSystem*>(&system)) {
    cell.refactors = fp->refactor_count();
    cell.last_pause_ms = ToMillis(fp->last_refactor_pause());
    cell.final_stages = fp->current_stages();
  }
  return cell;
}

// Runs `kind` on a fresh environment against `specs`; returns the metrics cell.
inline CellResult RunCell(SystemKind kind, const std::vector<RequestSpec>& specs,
                          std::vector<ModelSpec> models = {Opt66B()}, uint64_t seed = kSeed,
                          double peak_rps = kBaselineQps) {
  ExperimentEnv env(DefaultEnvConfig(std::move(models), seed));
  std::unique_ptr<ServingSystemBase> system = MakeSystem(kind, env, 0, peak_rps);
  std::vector<Request> storage;
  RunReport report = RunWorkload(env, *system, specs, storage,
                                 RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  return FillCell(*system, report.submitted, report.ran_until, report.measured_span());
}

// ---------------------------------------------------------------------------
// Streaming workloads: benches draw requests lazily through StreamingWorkloadSource
// instead of materializing whole traces and pre-scheduling one engine event per
// request. Arrival sequences are bit-identical to the materialized helpers for the
// same seed (pinned by trace_test); token lengths come from a dedicated child RNG
// stream, so workload memory is O(1) per stream regardless of duration.
// ---------------------------------------------------------------------------

// Streaming analogue of CvWorkload: same arrival seed chain, lazily drawn.
inline StreamingWorkloadSource CvWorkloadStream(double cv, double qps = kBaselineQps,
                                                TimeNs duration = kDefaultDuration,
                                                uint64_t seed = kSeed,
                                                int model_index = 0) {
  return StreamingWorkloadSource::WithCv(DefaultWorkloadConfig(model_index), qps, cv,
                                         duration,
                                         Rng(Rng(seed).Child("workload").seed()));
}

// Streaming analogue of MultiModelWorkload: one lazy stream per model, merged in
// arrival order with dense ids.
inline MergedRequestStream MultiModelWorkloadStream(
    const std::vector<ModelSpec>& models, const std::vector<double>& qps_by_model,
    double cv, TimeNs duration, uint64_t seed = kSeed) {
  std::vector<std::unique_ptr<RequestStream>> parts;
  for (size_t i = 0; i < models.size(); ++i) {
    WorkloadGenerator::Config wconfig = DefaultWorkloadConfig(static_cast<int>(i));
    wconfig.lengths.prompt_max = models[i].context_window;
    parts.push_back(std::make_unique<StreamingWorkloadSource>(StreamingWorkloadSource::WithCv(
        wconfig, qps_by_model[i], cv, duration, Rng(Rng(seed).Child(models[i].name).seed()))));
  }
  return MergedRequestStream(std::move(parts));
}

// Streaming RunCell: `stream` is consumed, so callers build a fresh (identically
// seeded) stream per system.
inline CellResult RunCellStreaming(SystemKind kind, RequestStream& stream,
                                   std::vector<ModelSpec> models = {Opt66B()},
                                   uint64_t seed = kSeed,
                                   double peak_rps = kBaselineQps) {
  ExperimentEnv env(DefaultEnvConfig(std::move(models), seed));
  std::unique_ptr<ServingSystemBase> system = MakeSystem(kind, env, 0, peak_rps);
  StreamingRunReport report = RunStreamingWorkload(
      env, *system, stream, RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
  return FillCell(*system, report.submitted, report.ran_until, report.measured_span());
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("=== %s ===\n", title);
  std::printf("Reproduces: %s\n\n", paper_ref);
}

// ---------------------------------------------------------------------------
// Bench registry: every bench translation unit registers one entry point via
// REGISTER_BENCH and the flexpipe_bench runner multiplexes them behind
// --list / --filter / --json.
// ---------------------------------------------------------------------------

// Collects named scalar metrics during a bench run. The runner serialises them
// to JSON (together with wall time) when --json is given.
class BenchReporter {
 public:
  void Metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }
  const std::vector<std::pair<std::string, double>>& metrics() const { return metrics_; }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

using BenchFn = int (*)(BenchReporter&);

struct BenchInfo {
  const char* name;         // registry key, e.g. "fig8"
  const char* description;  // one-line summary shown by --list
  BenchFn fn;
};

class BenchRegistry {
 public:
  static BenchRegistry& Instance();
  void Register(const BenchInfo& info);
  const std::vector<BenchInfo>& benches() const { return benches_; }

 private:
  std::vector<BenchInfo> benches_;
};

// Static initialisation hook used by REGISTER_BENCH. Bench objects compile
// straight into the flexpipe_bench binary (not an archive), so registrars are
// never dropped by the linker.
struct BenchRegistrar {
  BenchRegistrar(const char* name, const char* description, BenchFn fn);
};

// Stable metric-name tag for a CV value: CvTag(0.1) == "cv0.1", CvTag(4.0) == "cv4".
inline std::string CvTag(double cv) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cv%g", cv);
  return buf;
}

// Reports a cell's headline metrics under `prefix` (e.g. "flexpipe_cv4_").
inline void ReportCell(BenchReporter& reporter, const std::string& prefix,
                       const CellResult& cell) {
  reporter.Metric(prefix + "goodput_rate", cell.goodput_rate);
  reporter.Metric(prefix + "goodput_per_sec", cell.goodput_per_sec);
  reporter.Metric(prefix + "mean_latency_s", cell.mean_latency_s);
  reporter.Metric(prefix + "p99_latency_s", cell.p99);
}

}  // namespace bench
}  // namespace flexpipe

// Registers `fn` — an `int(flexpipe::bench::BenchReporter&)` — under `name`.
// Exactly one per bench translation unit, at namespace scope.
#define REGISTER_BENCH(name, description, fn)                                     \
  static const ::flexpipe::bench::BenchRegistrar flexpipe_bench_registrar_##name( \
      #name, description, fn)

#endif  // FLEXPIPE_BENCH_COMMON_H_
