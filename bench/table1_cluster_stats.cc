// Table 1: GPU cluster statistics showing resource utilization patterns.
//
// Regenerates the paper's production-measurement table from the calibrated
// fragmentation generator over the two measurement clusters (C1 inference-only,
// C2 hybrid), plus the §3.1 headline availability probabilities.
#include <cstdio>

#include "bench/common.h"
#include "src/cluster/fragmentation.h"
#include "src/common/stats.h"

namespace flexpipe {
namespace {

struct ClusterStats {
  double sm_mean, sm_p50, sm_p95, sm_band_10_30;
  double mem_mean, mem_p50, mem_p95, mem_band_10_30;
  double subscription;
  double p_free_gpu_85;   // P(a GPU has > 85% free memory)
  double p_colocate_4;    // P(4 co-located >=30GiB-free GPUs exist on one server)
};

ClusterStats Measure(const ClusterConfig& config, const FragmentationProfile& profile,
                     uint64_t seed, int snapshots) {
  Cluster cluster(config);
  FragmentationGenerator frag(&cluster, profile, seed);
  std::vector<double> sm;
  std::vector<double> mem;
  RunningStats subscription;
  int64_t free85 = 0;
  int64_t total_gpu_obs = 0;
  int colocate_hits = 0;
  for (int snap = 0; snap < snapshots; ++snap) {
    frag.ApplySnapshot();
    for (GpuId id : cluster.AllGpuIds()) {
      const Gpu& gpu = cluster.gpu(id);
      sm.push_back(gpu.sm_utilization());
      mem.push_back(gpu.memory_utilization());
      subscription.Add(static_cast<double>(gpu.subscriber_count()));
      if (static_cast<double>(gpu.free_memory()) >
          0.85 * static_cast<double>(gpu.memory_capacity())) {
        ++free85;
      }
      ++total_gpu_obs;
    }
    if (cluster.BestColocatedGroup(GiB(30)).size() >= 4) {
      ++colocate_hits;
    }
  }
  auto band = [](const std::vector<double>& v) {
    int64_t in_band = 0;
    for (double x : v) {
      if (x >= 0.10 && x <= 0.30) {
        ++in_band;
      }
    }
    return static_cast<double>(in_band) / static_cast<double>(v.size());
  };
  ClusterStats out;
  out.sm_mean = 0;
  for (double x : sm) {
    out.sm_mean += x;
  }
  out.sm_mean /= static_cast<double>(sm.size());
  out.mem_mean = 0;
  for (double x : mem) {
    out.mem_mean += x;
  }
  out.mem_mean /= static_cast<double>(mem.size());
  out.sm_p50 = Percentile(sm, 50);
  out.sm_p95 = Percentile(sm, 95);
  out.mem_p50 = Percentile(mem, 50);
  out.mem_p95 = Percentile(mem, 95);
  out.sm_band_10_30 = band(sm);
  out.mem_band_10_30 = band(mem);
  out.subscription = subscription.mean();
  out.p_free_gpu_85 = static_cast<double>(free85) / static_cast<double>(total_gpu_obs);
  out.p_colocate_4 = static_cast<double>(colocate_hits) / snapshots;
  return out;
}

}  // namespace
}  // namespace flexpipe

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using bench::PrintHeader;
  PrintHeader("Table 1 - GPU cluster statistics",
              "Table 1 + §3.1 availability probabilities (Alibaba production clusters)");

  ClusterConfig c1_config = MeasurementClusterC1();
  ClusterConfig c2_config = MeasurementClusterC2();
  auto c1 = Measure(c1_config, ProfileClusterC1(), 17, 40);
  auto c2 = Measure(c2_config, ProfileClusterC2(), 18, 40);

  TextTable table({"Metric", "C1 (paper)", "C1 (ours)", "C2 (paper)", "C2 (ours)"});
  auto pct = [](double f) { return TextTable::Num(f * 100.0, 2); };
  table.AddRow({"Nodes", "430", "430", "927", "930"});
  table.AddRow({"GPUs", "468", "468", "1175", "1175"});
  table.AddRow({"SM util mean %", "16.91", pct(c1.sm_mean), "23.74", pct(c2.sm_mean)});
  table.AddRow({"SM util P50 %", "9.16", pct(c1.sm_p50), "10.85", pct(c2.sm_p50)});
  table.AddRow({"SM util P95 %", "80.53", pct(c1.sm_p95), "85.37", pct(c2.sm_p95)});
  table.AddRow({"SM 10-30% band", "31.26", pct(c1.sm_band_10_30), "20.98",
                pct(c2.sm_band_10_30)});
  table.AddRow({"Mem util mean %", "43.48", pct(c1.mem_mean), "50.92", pct(c2.mem_mean)});
  table.AddRow({"Mem util P50 %", "28.78", pct(c1.mem_p50), "53.69", pct(c2.mem_p50)});
  table.AddRow({"Mem util P95 %", "99.09", pct(c1.mem_p95), "99.34", pct(c2.mem_p95)});
  table.AddRow({"Mem 10-30% band", "38.44", pct(c1.mem_band_10_30), "17.78",
                pct(c2.mem_band_10_30)});
  table.AddRow({"Subscription %", "~216", pct(c1.subscription), "~216", pct(c2.subscription)});
  table.Print();

  std::printf("\n§3.1 availability (paper: P(free GPU >85%% mem) = 8.7%%, "
              "P(4 co-located) = 0.02%%):\n");
  std::printf("  C1: P(free>85%%) = %.2f%%   P(4 co-located/snapshot) = %.2f%%\n",
              c1.p_free_gpu_85 * 100, c1.p_colocate_4 * 100);
  std::printf("  C2: P(free>85%%) = %.2f%%   P(4 co-located/snapshot) = %.2f%%\n",
              c2.p_free_gpu_85 * 100, c2.p_colocate_4 * 100);
  reporter.Metric("c1_sm_util_mean", c1.sm_mean);
  reporter.Metric("c1_mem_util_mean", c1.mem_mean);
  reporter.Metric("c1_subscription_rate", c1.subscription);
  reporter.Metric("c1_p_free_gpu_85", c1.p_free_gpu_85);
  reporter.Metric("c2_sm_util_mean", c2.sm_mean);
  reporter.Metric("c2_mem_util_mean", c2.mem_mean);
  reporter.Metric("c2_subscription_rate", c2.subscription);
  reporter.Metric("c2_p_free_gpu_85", c2.p_free_gpu_85);
  return 0;
}

REGISTER_BENCH(table1, "Table 1: GPU cluster statistics (fragmentation calibration)", Run);
