// Correlated-failure-domain bench: power-feed outages and cascading thermal storms
// against recovery-aware placement and degraded-mode serving.
//
// Two correlated storms hit the 1024-GPU production deployment mid-traffic: the
// busiest power domain trips (every rack behind the feed partitions in one atomic
// event, breakers reset a branch at a time), and a thermal runaway cascades outward
// from the busiest thermal zone until cooling quenches it. Each storm runs under a
// 2x2 of policies: failure-domain spread placement on/off (the recovery-aware
// domain_spread_weight term) x reform/teardown recovery — eight independent universes
// on the parallel sweep driver, all with brownout admission control enabled.
//
// The claims gated here and by CI: spread placement strictly reduces whole-pipeline
// losses (instances with no surviving stage to re-form from), reform dominates
// teardown on time-to-recover and goodput-dip area under correlated loss too, and the
// zero-loss drain contract holds with brownout in the accounting (submitted ==
// completed + shed after the drain, nothing stuck live). Deterministic at a fixed
// seed: victims are argmax-by-reserved-bytes picks with id tie-breaks evaluated just
// before impact, and the cascade schedule derives from a dedicated seeded stream.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "bench/sweep.h"
#include "src/sim/faults.h"

namespace {

using namespace flexpipe;
using namespace flexpipe::bench;

struct StormParams {
  const char* scale_name;
  ClusterConfig cluster;
  std::vector<double> qps;   // per EvaluationModels() entry
  TimeNs pre_duration;       // phase 1: steady state before the storm
  TimeNs storm_duration;     // phase 2: faults land and recovery is measured
  TimeNs fault_offset;       // first fault, relative to phase-2 start
  TimeNs outage_heal;        // power-domain outage: first breaker reset
  TimeNs outage_stagger;     // per-rack reset spacing
  TimeNs cascade_quench;     // thermal cascade: cooling kicks in
};

StormParams FullScale() {
  StormParams p;
  p.scale_name = "full";
  p.cluster = StressClusterConfig();  // 1024 GPUs / 448 servers (bench/common.h)
  // Same ~65% headroom rationale as fig15: a power domain is 1/16 of the cluster and
  // the cascade can take a handful of zones; the signal is the climb back, not
  // queueing collapse at saturation.
  p.qps = {200.0, 200.0, 130.0, 90.0};
  p.pre_duration = 60 * kSecond;
  p.storm_duration = 180 * kSecond;
  p.fault_offset = 15 * kSecond;
  p.outage_heal = 25 * kSecond;
  p.outage_stagger = 5 * kSecond;
  p.cascade_quench = 10 * kSecond;
  return p;
}

StormParams CiScale() {
  StormParams p;
  p.scale_name = "ci";
  p.cluster = StressCiClusterConfig();  // 128 GPUs / 56 servers
  p.qps = {40.0, 40.0, 26.0, 17.0};
  p.pre_duration = 30 * kSecond;
  p.storm_duration = 90 * kSecond;
  p.fault_offset = 10 * kSecond;
  p.outage_heal = 25 * kSecond;
  p.outage_stagger = 5 * kSecond;
  // A shorter quench at 1/8 scale: the same cascade span would eat a third of the
  // cluster and measure queueing collapse instead of recovery.
  p.cascade_quench = 6 * kSecond;
  return p;
}

enum class Storm { kPowerOutage, kThermalCascade };

const char* StormName(Storm storm) {
  return storm == Storm::kPowerOutage ? "power_outage" : "thermal_cascade";
}

const char* PolicyName(FaultRecoveryPolicy policy) {
  return policy == FaultRecoveryPolicy::kReform ? "reform" : "teardown";
}

// Deterministic impact-maximising victim picks, evaluated at fault time so they see
// the actual placement: argmax of serving-reserved bytes with an id tie-break.
PowerDomainId BusiestPowerDomain(const Cluster& cluster) {
  std::vector<Bytes> reserved(static_cast<size_t>(cluster.power_domain_count()), 0);
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    PowerDomainId d = cluster.PowerDomainOf(cluster.ServerOf(g));
    reserved[static_cast<size_t>(d)] += cluster.gpu(g).reserved_memory();
  }
  PowerDomainId best = 0;
  for (PowerDomainId d = 1; d < cluster.power_domain_count(); ++d) {
    if (reserved[static_cast<size_t>(d)] > reserved[static_cast<size_t>(best)]) {
      best = d;
    }
  }
  return best;
}

ThermalZoneId BusiestThermalZone(const Cluster& cluster) {
  std::vector<Bytes> reserved(static_cast<size_t>(cluster.thermal_zone_count()), 0);
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    ThermalZoneId z = cluster.ThermalZoneOf(cluster.ServerOf(g));
    reserved[static_cast<size_t>(z)] += cluster.gpu(g).reserved_memory();
  }
  ThermalZoneId best = 0;
  for (ThermalZoneId z = 1; z < cluster.thermal_zone_count(); ++z) {
    if (reserved[static_cast<size_t>(z)] > reserved[static_cast<size_t>(best)]) {
      best = z;
    }
  }
  return best;
}

std::unique_ptr<FlexPipeSystem> MakeFlexPipe(ExperimentEnv& env,
                                             const std::vector<double>& qps,
                                             FaultRecoveryPolicy policy,
                                             double spread_weight) {
  std::vector<FlexPipeSystem::ModelDeployment> deployments;
  for (size_t i = 0; i < qps.size(); ++i) {
    FlexPipeSystem::ModelDeployment d;
    d.ladder = &env.ladder(static_cast<int>(i));
    d.config.model_id = static_cast<int>(i);
    d.config.initial_stages = d.ladder->coarsest();
    d.config.target_peak_rps = qps[i];
    d.config.default_slo = kDefaultSlo;
    d.config.scaling.reclaim_idle = 45 * kSecond;
    d.config.fault_recovery = policy;
    // The placer is shared and parameterised by the first deployment's knobs.
    d.config.placement.domain_spread_weight = spread_weight;
    // Degraded-mode serving under capacity loss: all arms run with brownout on, so
    // the drain contract is submitted == completed + shed.
    d.config.enable_brownout = true;
    deployments.push_back(d);
  }
  return std::make_unique<FlexPipeSystem>(env.Context(), std::move(deployments));
}

// One (storm, spread, policy) universe. Never prints (sweep-arm contract).
ArmResult RunStormArm(const StormParams& params, Storm storm, double spread_weight,
                      FaultRecoveryPolicy policy) {
  const std::vector<ModelSpec> models = EvaluationModels();
  ExperimentEnvConfig env_config = DefaultEnvConfig(models);
  env_config.cluster = params.cluster;
  ExperimentEnv env(env_config);
  std::unique_ptr<FlexPipeSystem> system =
      MakeFlexPipe(env, params.qps, policy, spread_weight);

  FaultInjector injector(&env.sim(), &env.cluster());
  FlexPipeSystem* sys = system.get();
  injector.AddGpuLossListener(
      [sys](const std::vector<GpuId>& lost) { sys->OnGpusLost(lost); });

  const TimeNs storm_start = kWarmup + params.pre_duration;
  const TimeNs fault_time = storm_start + params.fault_offset;
  switch (storm) {
    case Storm::kPowerOutage:
      // Victim chosen against the live placement just before impact.
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, &params,
                                                       fault_time] {
        injector.Arm(FaultPlan::PowerDomainOutage(
            fault_time, BusiestPowerDomain(env.cluster()), env.cluster(),
            params.outage_heal, params.outage_stagger));
      });
      break;
    case Storm::kThermalCascade:
      env.sim().ScheduleAt(fault_time - kMillisecond, [&env, &injector, &params,
                                                       fault_time] {
        injector.Arm(FaultPlan::ThermalCascade(
            fault_time, BusiestThermalZone(env.cluster()), env.cluster(),
            /*spread_factor=*/0.8, /*spread_interval=*/2 * kSecond,
            params.cascade_quench, kSeed));
      });
      break;
  }

  WorkloadHarness harness(env, {system.get()});
  MergedRequestStream pre_stream =
      MultiModelWorkloadStream(models, params.qps, /*cv=*/2.0, params.pre_duration, kSeed);
  harness.RunPhase(pre_stream, RunOptions{.horizon = storm_start, .warmup = kWarmup});

  MergedRequestStream storm_stream = MultiModelWorkloadStream(
      models, params.qps, /*cv=*/2.0, params.storm_duration, kSeed + 1);
  StreamingRunReport report = harness.RunPhase(
      storm_stream,
      RunOptions{.drain_grace = 900 * kSecond, .warmup = storm_start});
  harness.Finish();

  const MetricsCollector& m = system->metrics();
  const ServingSystemBase::FailureStats& stats = system->failure_stats();
  const int64_t submitted = harness.total_submitted();
  const int64_t completed = m.completed();
  const int64_t stuck_live = static_cast<int64_t>(harness.pool().live());
  // With brownout in the loop the exactly-once ledger gains a shed column: every
  // submitted request either completed, was refused at admission, or is still live.
  const int64_t lost = submitted - completed - stats.requests_shed - stuck_live;

  FailureImpact impact;
  impact.submitted = submitted;
  impact.requests_shed = stats.requests_shed;
  impact.instances_lost = stats.instances_lost;
  impact.whole_pipeline_losses = stats.whole_pipeline_losses;
  FailureRecoveryReport recovery = AnalyzeFailureRecovery(
      m.completions(), injector.loss_times(), report.ran_until, impact);

  const std::string prefix = std::string(StormName(storm)) + "_" +
                             (spread_weight > 0.0 ? "spread" : "packed") + "_" +
                             PolicyName(policy) + "_";
  ArmResult result;
  result.metrics = {
      {prefix + "submitted", static_cast<double>(submitted)},
      {prefix + "completed", static_cast<double>(completed)},
      {prefix + "shed", static_cast<double>(stats.requests_shed)},
      {prefix + "requests_lost", static_cast<double>(lost)},
      {prefix + "stuck_live", static_cast<double>(stuck_live)},
      {prefix + "instances_lost", static_cast<double>(stats.instances_lost)},
      {prefix + "whole_pipeline_losses", static_cast<double>(stats.whole_pipeline_losses)},
      {prefix + "gpus_lost", static_cast<double>(injector.gpus_lost())},
      {prefix + "requeued", static_cast<double>(stats.requests_requeued)},
      {prefix + "resumed", static_cast<double>(stats.requests_resumed)},
      {prefix + "restarted", static_cast<double>(stats.requests_restarted)},
      {prefix + "pre_fault_rps", recovery.pre_fault_goodput_rps},
      {prefix + "time_to_recover_s", recovery.time_to_recover_s},
      {prefix + "dip_depth_rps", recovery.dip_depth_rps},
      {prefix + "dip_area_rps_s", recovery.dip_area_rps_s},
      {prefix + "recovered", recovery.recovered ? 1.0 : 0.0},
      {prefix + "shed_rate", recovery.shed_rate},
      {prefix + "domain_survivability", recovery.domain_survivability},
  };
  result.exit_code =
      (lost == 0 && stuck_live == 0 && stats.instances_lost > 0 && recovery.fault_count > 0)
          ? 0
          : 1;
  return result;
}

double Metric(const std::vector<ArmResult>& results, const std::string& name) {
  for (const ArmResult& result : results) {
    for (const auto& [key, value] : result.metrics) {
      if (key == name) {
        return value;
      }
    }
  }
  return 0.0;
}

int Run(BenchReporter& reporter) {
  const char* scale_env = std::getenv("FLEXPIPE_STRESS_SCALE");
  const bool ci = scale_env != nullptr && std::strcmp(scale_env, "ci") == 0;
  const StormParams params = ci ? CiScale() : FullScale();
  // Strong enough to pull stages out of one rack against the topology bonuses; 0
  // must reproduce the packed default bit-identically (pinned by placement_test).
  const double kSpreadWeight = 2.0;

  PrintHeader("Fig. 16: correlated failure domains — spread placement and brownout",
              "power/thermal domain storms on the production deployment "
              "(robustness extension)");
  std::printf("scale=%s: %d racks, %d power domains, brownout on, CV=2 arrivals\n\n",
              params.scale_name, params.cluster.racks,
              (params.cluster.racks + params.cluster.racks_per_power_domain - 1) /
                  params.cluster.racks_per_power_domain);

  const std::vector<Storm> storms = {Storm::kPowerOutage, Storm::kThermalCascade};
  const std::vector<double> spreads = {kSpreadWeight, 0.0};
  const std::vector<FaultRecoveryPolicy> policies = {FaultRecoveryPolicy::kReform,
                                                     FaultRecoveryPolicy::kTeardown};
  std::vector<SweepArm> arms;
  for (Storm storm : storms) {
    for (double spread : spreads) {
      for (FaultRecoveryPolicy policy : policies) {
        std::string name = std::string(StormName(storm)) + "/" +
                           (spread > 0.0 ? "spread" : "packed") + "/" +
                           PolicyName(policy);
        arms.push_back({name, [&params, storm, spread, policy] {
                          return RunStormArm(params, storm, spread, policy);
                        }});
      }
    }
  }
  ParallelSweepRunner runner;
  std::vector<ArmResult> results = runner.Run(arms);

  TextTable table({"Storm", "Placement", "Policy", "Inst lost", "Whole", "Shed",
                   "TTR (s)", "Dip area", "Lost", "Stuck"});
  double reform_ttr = 0.0, teardown_ttr = 0.0;
  double reform_dip = 0.0, teardown_dip = 0.0;
  double spread_whole = 0.0, packed_whole = 0.0;
  double lost_total = 0.0, stuck_total = 0.0;
  double max_shed_fraction = 0.0;
  bool all_reform_recovered = true;
  int exit_code = 0;
  size_t arm_index = 0;
  for (Storm storm : storms) {
    for (double spread : spreads) {
      for (FaultRecoveryPolicy policy : policies) {
        const std::string prefix = std::string(StormName(storm)) + "_" +
                                   (spread > 0.0 ? "spread" : "packed") + "_" +
                                   PolicyName(policy) + "_";
        const double ttr = Metric(results, prefix + "time_to_recover_s");
        const double dip = Metric(results, prefix + "dip_area_rps_s");
        const double whole = Metric(results, prefix + "whole_pipeline_losses");
        const double lost = Metric(results, prefix + "requests_lost");
        const double stuck = Metric(results, prefix + "stuck_live");
        lost_total += lost;
        stuck_total += stuck;
        max_shed_fraction = std::max(max_shed_fraction, Metric(results, prefix + "shed_rate"));
        if (policy == FaultRecoveryPolicy::kReform) {
          reform_ttr += ttr;
          reform_dip += dip;
          all_reform_recovered =
              all_reform_recovered && Metric(results, prefix + "recovered") > 0.5;
        } else {
          teardown_ttr += ttr;
          teardown_dip += dip;
        }
        if (spread > 0.0) {
          spread_whole += whole;
        } else {
          packed_whole += whole;
        }
        exit_code |= results[arm_index].exit_code;
        ++arm_index;
        table.AddRow({StormName(storm), spread > 0.0 ? "spread" : "packed",
                      PolicyName(policy),
                      TextTable::Num(Metric(results, prefix + "instances_lost"), 0),
                      TextTable::Num(whole, 0),
                      TextTable::Num(Metric(results, prefix + "shed"), 0),
                      TextTable::Num(ttr, 1), TextTable::Num(dip, 0),
                      TextTable::Num(lost, 0), TextTable::Num(stuck, 0)});
      }
    }
  }
  table.Print();

  std::printf("\nwhole-pipeline losses: spread %.0f vs packed %.0f\n", spread_whole,
              packed_whole);
  std::printf("reform:   total TTR %.1fs, total dip area %.0f rps*s\n", reform_ttr,
              reform_dip);
  std::printf("teardown: total TTR %.1fs, total dip area %.0f rps*s\n", teardown_ttr,
              teardown_dip);
  std::printf("max shed fraction %.3f, lost %.0f, stuck %.0f\n", max_shed_fraction,
              lost_total, stuck_total);

  for (const ArmResult& result : results) {
    for (const auto& [name, value] : result.metrics) {
      reporter.Metric(name, value);
    }
  }
  reporter.Metric("spread_whole_losses_total", spread_whole);
  reporter.Metric("packed_whole_losses_total", packed_whole);
  reporter.Metric("reform_total_ttr_s", reform_ttr);
  reporter.Metric("teardown_total_ttr_s", teardown_ttr);
  reporter.Metric("reform_total_dip_area", reform_dip);
  reporter.Metric("teardown_total_dip_area", teardown_dip);
  reporter.Metric("requests_lost_total", lost_total);
  reporter.Metric("stuck_live_total", stuck_total);
  reporter.Metric("max_shed_fraction", max_shed_fraction);
  reporter.Metric("sweep_workers", static_cast<double>(runner.workers()));

  // The tentpole claims: spread placement strictly reduces whole-pipeline losses
  // under correlated faults, and re-formation still dominates teardown on both
  // recovery axes with every reform arm actually climbing back.
  if (!(spread_whole < packed_whole)) {
    std::printf("FAIL: spread placement did not reduce whole-pipeline losses "
                "(%.0f vs %.0f)\n",
                spread_whole, packed_whole);
    exit_code = 1;
  }
  if (!(reform_ttr <= teardown_ttr && reform_dip <= teardown_dip && all_reform_recovered)) {
    std::printf("FAIL: reform did not dominate teardown (recovered=%d)\n",
                all_reform_recovered ? 1 : 0);
    exit_code = 1;
  }
  return exit_code;
}

}  // namespace

REGISTER_BENCH(fig16_correlated_storm,
               "Fig. 16: correlated domain storms — spread placement, brownout, recovery",
               Run);
