// Fig. 4: latency distribution of static 4/8/16-stage pipelines across CV values.
//
// Constant request volume, varying CV. Expected shape: coarse pipelines win under
// stable traffic (less communication), deep pipelines win under bursty traffic
// (distributed buffering absorbs the peaks) — the 16-stage pipeline is ~2.7x slower at
// low CV but ~3x faster at CV=4 in the paper.
#include <cstdio>

#include "bench/common.h"

static int Run(flexpipe::bench::BenchReporter& reporter) {
  using namespace flexpipe;
  using namespace flexpipe::bench;
  PrintHeader("Fig. 4 - latency distributions by pipeline granularity and CV",
              "Fig. 4 (4/8/16-stage static pipelines, constant volume, varying CV)");

  TextTable table({"CV", "Stages", "Mean(s)", "P50(s)", "P95(s)", "P99(s)"});
  struct Cell {
    double cv;
    int stages;
    double mean;
  };
  std::vector<Cell> cells;
  for (double cv : {0.1, 1.0, 2.0, 4.0}) {
    for (int stages : {4, 8, 16}) {
      ExperimentEnv env(DefaultEnvConfig());
      AlpaServeConfig config;
      config.stages = stages;
      config.replicas = 1;
      config.default_slo = kDefaultSlo;
      AlpaServeSystem system(env.Context(), &env.ladder(0), config);
      // Identically seeded stream per pipeline depth: same arrivals, drawn lazily.
      StreamingWorkloadSource stream = CvWorkloadStream(cv, kBaselineQps);
      RunStreamingWorkload(env, system, stream,
                           RunOptions{.drain_grace = kDrainGrace, .warmup = kWarmup});
      const MetricsCollector& m = system.metrics();
      table.AddRow({TextTable::Num(cv, 1), std::to_string(stages),
                    TextTable::Num(m.MeanLatencySec(), 2),
                    TextTable::Num(m.LatencyPercentileSec(50), 2),
                    TextTable::Num(m.LatencyPercentileSec(95), 2),
                    TextTable::Num(m.LatencyPercentileSec(99), 2)});
      cells.push_back({cv, stages, m.MeanLatencySec()});
    }
  }
  table.Print();

  auto mean_of = [&](double cv, int stages) {
    for (const auto& c : cells) {
      if (c.cv == cv && c.stages == stages) {
        return c.mean;
      }
    }
    return 0.0;
  };
  std::printf("\nshape checks:\n");
  std::printf("  low CV (0.1): 16-stage / 4-stage mean = %.2fx (paper ~2.7x slower)\n",
              mean_of(0.1, 16) / mean_of(0.1, 4));
  std::printf("  high CV (4): 4-stage / 16-stage mean = %.2fx (paper ~3x: deep pipeline "
              "absorbs bursts)\n",
              mean_of(4.0, 4) / mean_of(4.0, 16));
  reporter.Metric("low_cv_deep_over_coarse", mean_of(0.1, 16) / mean_of(0.1, 4));
  reporter.Metric("high_cv_coarse_over_deep", mean_of(4.0, 4) / mean_of(4.0, 16));
  for (const Cell& c : cells) {
    reporter.Metric(CvTag(c.cv) + "_stages" + std::to_string(c.stages) + "_mean_latency_s",
                    c.mean);
  }
  return 0;
}

REGISTER_BENCH(fig4, "Fig. 4: latency distributions by pipeline granularity and CV", Run);
