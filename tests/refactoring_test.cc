// MigrationSession regression tests: the Eq. 10 validity-mask timing and the
// extracted-request accounting invariants (§6.3, Fig. 6(b)).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/cluster/topology.h"
#include "src/core/refactoring.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/instance.h"
#include "src/runtime/router.h"
#include "src/runtime/transfer.h"

namespace flexpipe {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : cluster_(EvalClusterConfig()),
        network_(&cluster_, NetworkConfig{}),
        transfer_(&sim_, &network_),
        router_(&sim_) {
    Profiler profiler(&cost_, Profiler::Config{});
    ComputationGraph graph = ComputationGraph::Build(Llama2_7B());
    profile_ = profiler.Profile(graph);
  }

  PipelinePlan MakePlan(int stages) {
    Partitioner partitioner;
    return partitioner.Partition(profile_, stages);
  }

  // `gpu_offset` keeps the two instances on disjoint GPUs so KV transfers cross a real
  // link (same-GPU transfers are instantaneous and would hide the delta phase).
  std::unique_ptr<PipelineInstance> MakeActiveInstance(int id, int stages, GpuId gpu_offset,
                                                       InstanceConfig config = InstanceConfig{}) {
    std::vector<GpuId> gpus;
    for (GpuId g = gpu_offset; g < gpu_offset + stages; ++g) {
      gpus.push_back(g);
    }
    auto inst = std::make_unique<PipelineInstance>(&sim_, id, MakePlan(stages), gpus, &cost_,
                                                   &network_, config);
    inst->BeginLoading({});
    sim_.RunUntil(inst->load_finish_time() + kMillisecond);
    return inst;
  }

  Request MakeRequest(RequestId id, int prompt, int output) {
    Request r;
    r.spec.id = id;
    r.spec.arrival = sim_.now();
    r.spec.prompt_tokens = prompt;
    r.spec.output_tokens = output;
    return r;
  }

  Simulation sim_;
  Cluster cluster_;
  NetworkModel network_;
  CostModel cost_;
  TransferEngine transfer_;
  Router router_;
  ModelProfile profile_;
};

TEST_F(MigrationTest, AccountingInvariantNoDoubleCount) {
  auto from = MakeActiveInstance(1, 2, 0);
  // Tiny target: capacity 2, so most decoding requests cannot fit and must restart.
  InstanceConfig tiny;
  tiny.per_group_capacity = 1;
  auto to = MakeActiveInstance(2, 2, 8, tiny);
  // The router stays empty so restarted/requeued requests remain parked in its queue
  // (their state at `done` time is exactly what the session handed back).

  // Six requests decode long enough that none completes before the cutover.
  std::vector<Request> reqs;
  reqs.reserve(10);
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 64, 4000));
  }
  // Four more arrive just before the migration; depending on iteration timing some
  // never reach prefill and must be counted as requeued, not restarted.
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(100 + i), 64, 4000));
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(from->CanAdmit(reqs[static_cast<size_t>(i)]));
    from->Admit(&reqs[static_cast<size_t>(i)]);
  }
  sim_.RunUntil(sim_.now() + 3 * kSecond);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(reqs[static_cast<size_t>(i)].phase, RequestPhase::kDecoding);
  }
  for (int i = 6; i < 10; ++i) {
    ASSERT_TRUE(from->CanAdmit(reqs[static_cast<size_t>(i)]));
    from->Admit(&reqs[static_cast<size_t>(i)]);
  }

  bool done = false;
  MigrationResult result;
  MigrationSession session(&sim_, &transfer_, from.get(), to.get(), &router_,
                           [&](PipelineInstance*, const MigrationResult& r) {
                             done = true;
                             result = r;
                           });
  session.Start();
  sim_.RunUntil(sim_.now() + kMinute);
  ASSERT_TRUE(done);

  // Every extracted request is counted exactly once across the three buckets. The
  // historical double-count inflated the sum by `restarted`, so forcing restarts (the
  // tiny target) makes this assertion a real regression guard.
  EXPECT_EQ(result.migrated_decoding + result.restarted + result.requeued, 10);
  EXPECT_GT(result.restarted, 0);
  EXPECT_GT(result.migrated_decoding, 0);
  // `requeued` must count exactly the requests that never executed on the source
  // (restarted ones accumulated exec time before losing their KV).
  int never_prefilled = 0;
  for (const Request& r : reqs) {
    never_prefilled += r.exec_ns == 0 ? 1 : 0;
  }
  EXPECT_EQ(result.requeued, never_prefilled);
}

TEST_F(MigrationTest, NeverStartedInstanceRequeuesEverything) {
  // Migrating away from an instance that never finished loading: every admitted
  // request is returned to the router untouched — requeued, nothing migrated.
  auto to = MakeActiveInstance(2, 2, 8);  // built first: its activation advances the clock
  auto from = std::make_unique<PipelineInstance>(&sim_, 1, MakePlan(2),
                                                 std::vector<GpuId>{0, 1}, &cost_, &network_,
                                                 InstanceConfig{});
  from->BeginLoading({});  // never run to completion

  std::vector<Request> reqs;
  reqs.reserve(5);
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 64, 50));
    ASSERT_TRUE(from->CanAdmit(reqs.back()));
    from->Admit(&reqs.back());
  }

  bool done = false;
  MigrationResult result;
  MigrationSession session(&sim_, &transfer_, from.get(), to.get(), &router_,
                           [&](PipelineInstance*, const MigrationResult& r) {
                             done = true;
                             result = r;
                           });
  session.Start();
  sim_.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.requeued, 5);
  EXPECT_EQ(result.migrated_decoding, 0);
  EXPECT_EQ(result.restarted, 0);
  EXPECT_EQ(result.snapshot_bytes, 0);
  EXPECT_EQ(result.delta_bytes, 0);
}

TEST_F(MigrationTest, DeltaMaskStaysInvalidUntilTransferCompletes) {
  auto from = MakeActiveInstance(1, 4, 0);
  auto to = MakeActiveInstance(2, 4, 16);
  router_.RegisterInstance(to.get());

  // Rich KV state: the snapshot transfer takes long enough that tokens are generated
  // while it is in flight, producing an Eq. 10 delta whose transfer spans several
  // sampling steps below.
  std::vector<Request> reqs;
  reqs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 2000, 2000));
  }
  for (auto& r : reqs) {
    ASSERT_TRUE(from->CanAdmit(r));
    from->Admit(&r);
  }
  sim_.RunUntil(sim_.now() + 5 * kSecond);
  for (const auto& r : reqs) {
    ASSERT_EQ(r.phase, RequestPhase::kDecoding);
  }

  bool done = false;
  MigrationResult result;
  MigrationSession session(&sim_, &transfer_, from.get(), to.get(), &router_,
                           [&](PipelineInstance*, const MigrationResult& r) {
                             done = true;
                             result = r;
                           });
  session.Start();

  // Step the clock finely. Between the halt (source extracted, in-flight work gone)
  // and the delta transfer's completion, the tail tokens must still be mask-invalid —
  // marking them valid early would make the resume-time consistency check vacuous.
  const Request& probe = reqs.front();
  bool saw_invalid_tail_after_halt = false;
  while (!done) {
    sim_.RunUntil(sim_.now() + kMillisecond / 10);
    if (done) {
      break;
    }
    const KvValidityMask* mask = session.MaskFor(probe.spec.id);
    if (mask != nullptr && from->inflight() == 0 &&
        mask->invalid_in(0, std::min(probe.context_tokens(), mask->capacity())) > 0) {
      saw_invalid_tail_after_halt = true;
    }
  }
  ASSERT_TRUE(done);
  EXPECT_GT(result.delta_bytes, 0) << "no tokens generated during snapshot; test is vacuous";
  EXPECT_TRUE(saw_invalid_tail_after_halt)
      << "delta tail was marked valid before the delta transfer completed";
  // After resume, the whole context is valid for every migrated request.
  for (const auto& r : reqs) {
    const KvValidityMask* mask = session.MaskFor(r.spec.id);
    ASSERT_NE(mask, nullptr);
    EXPECT_EQ(mask->invalid_in(0, std::min(r.context_tokens(), mask->capacity())), 0);
  }
  EXPECT_GT(result.pause_duration, 0);
}

}  // namespace
}  // namespace flexpipe
