#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "src/model/profiler.h"
#include "src/partition/partitioner.h"

namespace flexpipe {
namespace {

// ---------------------------------------------------------------------------
// Naive reference DP: the pre-optimization O(G·n³) solver, kept verbatim as ground
// truth for the prefix-sum/early-break rewrite. Any divergence in boundaries or cost
// on the randomized suite below is a bug in the fast path.
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

double RefGroupCost(const std::vector<Partitioner::Item>& items, int begin, int end,
                    double mean_cost, const PartitionerConfig& config) {
  TimeNs compute = 0;
  Bytes params = 0;
  for (int i = begin; i < end; ++i) {
    compute += items[static_cast<size_t>(i)].compute;
    params += items[static_cast<size_t>(i)].params;
  }
  if (params > config.gpu_memory) {
    return kInf;
  }
  const Partitioner::Item& last = items[static_cast<size_t>(end - 1)];
  double cost = static_cast<double>(compute);
  cost += static_cast<double>(TransferTime(last.activation_out, config.interstage_bandwidth));
  double load_ns = static_cast<double>(params) / config.interstage_bandwidth * 1e9;
  double overlap_ns = static_cast<double>(config.overlap_target);
  cost += config.load_weight * std::max(0.0, load_ns - overlap_ns);
  if (!last.clean_boundary) {
    cost += config.lambda_refactor * mean_cost;
  }
  return cost;
}

std::vector<std::pair<int, int>> RefSolveChain(const std::vector<Partitioner::Item>& items,
                                               int groups,
                                               const PartitionerConfig& config) {
  const int n = static_cast<int>(items.size());
  TimeNs total_compute = 0;
  for (const Partitioner::Item& it : items) {
    total_compute += it.compute;
  }
  double mean_cost = static_cast<double>(total_compute) / groups;

  std::vector<std::vector<double>> dp(static_cast<size_t>(groups + 1),
                                      std::vector<double>(static_cast<size_t>(n + 1), kInf));
  std::vector<std::vector<int>> parent(static_cast<size_t>(groups + 1),
                                       std::vector<int>(static_cast<size_t>(n + 1), -1));
  dp[0][0] = 0.0;
  for (int k = 1; k <= groups; ++k) {
    for (int i = k; i <= n - (groups - k); ++i) {
      for (int j = k - 1; j < i; ++j) {
        if (dp[static_cast<size_t>(k - 1)][static_cast<size_t>(j)] == kInf) {
          continue;
        }
        double gc = RefGroupCost(items, j, i, mean_cost, config);
        if (gc == kInf) {
          continue;
        }
        double candidate = std::max(dp[static_cast<size_t>(k - 1)][static_cast<size_t>(j)], gc);
        if (candidate < dp[static_cast<size_t>(k)][static_cast<size_t>(i)]) {
          dp[static_cast<size_t>(k)][static_cast<size_t>(i)] = candidate;
          parent[static_cast<size_t>(k)][static_cast<size_t>(i)] = j;
        }
      }
    }
  }
  if (dp[static_cast<size_t>(groups)][static_cast<size_t>(n)] == kInf) {
    return {};
  }
  std::vector<std::pair<int, int>> result(static_cast<size_t>(groups));
  int i = n;
  for (int k = groups; k >= 1; --k) {
    int j = parent[static_cast<size_t>(k)][static_cast<size_t>(i)];
    result[static_cast<size_t>(k - 1)] = {j, i};
    i = j;
  }
  return result;
}

// Bottleneck cost of a concrete tiling under the reference cost model.
double RefPlanCost(const std::vector<Partitioner::Item>& items,
                   const std::vector<std::pair<int, int>>& groups,
                   const PartitionerConfig& config) {
  TimeNs total_compute = 0;
  for (const Partitioner::Item& it : items) {
    total_compute += it.compute;
  }
  double mean_cost = static_cast<double>(total_compute) / static_cast<double>(groups.size());
  double worst = 0.0;
  for (const auto& [begin, end] : groups) {
    worst = std::max(worst,
                     RefGroupCost(items, begin, end, mean_cost, config));
  }
  return worst;
}

ModelProfile MakeProfile(const ModelSpec& spec) {
  static CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(spec);
  return profiler.Profile(graph);
}

TEST(Partitioner, StagesTileTheOperatorChain) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 8);
  ASSERT_EQ(plan.num_stages(), 8);
  int expect = 0;
  Bytes total = 0;
  for (const StagePlan& s : plan.stages) {
    EXPECT_EQ(s.op_begin, expect);
    EXPECT_GT(s.op_end, s.op_begin);
    expect = s.op_end;
    total += s.param_bytes;
  }
  EXPECT_EQ(expect, static_cast<int>(profile.ops.size()));
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(profile.TotalParamBytes()),
              static_cast<double>(profile.TotalParamBytes()) * 0.001);
}

TEST(Partitioner, RespectsMemoryCap) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  for (int stages : {4, 8, 16, 32}) {
    PipelinePlan plan = partitioner.Partition(profile, stages);
    EXPECT_LE(plan.MaxStageParams(), partitioner.config().gpu_memory) << stages;
  }
}

TEST(Partitioner, BalancedStages) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 8);
  TimeNs min_t = plan.stages[0].compute_time;
  TimeNs max_t = min_t;
  for (const StagePlan& s : plan.stages) {
    min_t = std::min(min_t, s.compute_time);
    max_t = std::max(max_t, s.compute_time);
  }
  // Eq. 8's balance requirement: bottleneck within 30% of the lightest stage.
  EXPECT_LT(static_cast<double>(max_t) / static_cast<double>(min_t), 1.3);
}

TEST(Partitioner, PrefersBlockBoundaries) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 16);
  int clean = 0;
  for (const StagePlan& s : plan.stages) {
    if (s.clean_boundary) {
      ++clean;
    }
  }
  // 64 blocks / 16 stages: every cut can land on a block edge.
  EXPECT_EQ(clean, 16);
}

TEST(Partitioner, LadderIsNested) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_TRUE(ladder.IsNested());
  EXPECT_EQ(ladder.finest(), 32);
  // 120 GB / 2 stages would need 60 GB per GPU: infeasible on 40 GB devices, so the
  // OPT-66B ladder starts at 4 stages.
  EXPECT_EQ(ladder.coarsest(), 4);
  for (int g : ladder.granularities) {
    EXPECT_EQ(ladder.plan(g).num_stages(), g);
  }
}

TEST(Partitioner, SmallModelKeepsCoarsestGranularity) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_EQ(ladder.coarsest(), 2);  // 13 GB / 2 fits easily
}

TEST(Partitioner, LadderNavigation) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_EQ(ladder.FinerThan(4), 8);
  EXPECT_EQ(ladder.CoarserThan(4), 2);
  EXPECT_EQ(ladder.FinerThan(32), 32);   // already finest
  EXPECT_EQ(ladder.CoarserThan(2), 2);   // already coarsest
}

TEST(Partitioner, CoarseStagesAggregateFineStages) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  const PipelinePlan& fine = ladder.plan(32);
  const PipelinePlan& coarse = ladder.plan(8);
  for (const StagePlan& c : coarse.stages) {
    Bytes sum = 0;
    for (int f = c.fine_begin; f < c.fine_end; ++f) {
      sum += fine.stages[static_cast<size_t>(f)].param_bytes;
    }
    EXPECT_EQ(sum, c.param_bytes);
    EXPECT_EQ(fine.stages[static_cast<size_t>(c.fine_begin)].op_begin, c.op_begin);
    EXPECT_EQ(fine.stages[static_cast<size_t>(c.fine_end - 1)].op_end, c.op_end);
  }
}

TEST(Partitioner, FinerGranularityLoadsFasterPerStage) {
  // The Insight-2 property: finer stages are individually smaller.
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  Bytes prev = ladder.plan(4).MaxStageParams();
  for (int g : {8, 16, 32}) {
    Bytes cur = ladder.plan(g).MaxStageParams();
    EXPECT_LT(cur, prev) << g;
    prev = cur;
  }
}

TEST(Partitioner, SmallModelManyStagesStillFeasible) {
  ModelProfile profile = MakeProfile(Whisper9B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 32);
  EXPECT_EQ(plan.num_stages(), 32);
  EXPECT_TRUE(plan.MaxStageParams() > 0);
}

TEST(Partitioner, SolveChainMatchesNaiveReferenceOnRandomChains) {
  std::mt19937_64 rng(20260730);
  int feasible_cases = 0;
  int infeasible_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::uniform_int_distribution<int> n_dist(2, 36);
    const int n = n_dist(rng);
    std::uniform_int_distribution<int> g_dist(1, std::min(n, 10));
    const int groups = g_dist(rng);

    PartitionerConfig config;
    // Memory caps drawn tight enough that some trials are infeasible outright and many
    // exercise the early-break path mid-scan.
    std::uniform_int_distribution<Bytes> mem_dist(GiB(2), GiB(24));
    config.gpu_memory = mem_dist(rng);

    std::vector<Partitioner::Item> items(static_cast<size_t>(n));
    std::uniform_int_distribution<TimeNs> compute_dist(10 * kMicrosecond, 20 * kMillisecond);
    std::uniform_int_distribution<Bytes> param_dist(MiB(64), GiB(6));
    std::uniform_int_distribution<Bytes> act_dist(0, MiB(512));
    std::bernoulli_distribution clean_dist(0.7);
    for (auto& item : items) {
      item.compute = compute_dist(rng);
      item.params = param_dist(rng);
      item.activation_out = act_dist(rng);
      item.clean_boundary = clean_dist(rng);
    }

    Partitioner partitioner(config);
    auto fast = partitioner.SolveChain(items, groups);
    auto reference = RefSolveChain(items, groups, config);
    ASSERT_EQ(fast, reference) << "trial " << trial << " n=" << n << " groups=" << groups;
    if (fast.empty()) {
      ++infeasible_cases;
      continue;
    }
    ++feasible_cases;
    // Same boundaries imply the same cost, but assert it explicitly (exact equality —
    // the rewrite must reproduce the reference arithmetic bit for bit).
    EXPECT_EQ(RefPlanCost(items, fast, config), RefPlanCost(items, reference, config));
  }
  // The suite must genuinely exercise both outcomes.
  EXPECT_GT(feasible_cases, 50);
  EXPECT_GT(infeasible_cases, 20);
}

TEST(Partitioner, PlanDescribeIsHumanReadable) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 4);
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("LLAMA2-7B"), std::string::npos);
  EXPECT_NE(desc.find("4 stages"), std::string::npos);
}

}  // namespace
}  // namespace flexpipe
