#include <gtest/gtest.h>

#include "src/model/profiler.h"
#include "src/partition/partitioner.h"

namespace flexpipe {
namespace {

ModelProfile MakeProfile(const ModelSpec& spec) {
  static CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(spec);
  return profiler.Profile(graph);
}

TEST(Partitioner, StagesTileTheOperatorChain) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 8);
  ASSERT_EQ(plan.num_stages(), 8);
  int expect = 0;
  Bytes total = 0;
  for (const StagePlan& s : plan.stages) {
    EXPECT_EQ(s.op_begin, expect);
    EXPECT_GT(s.op_end, s.op_begin);
    expect = s.op_end;
    total += s.param_bytes;
  }
  EXPECT_EQ(expect, static_cast<int>(profile.ops.size()));
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(profile.TotalParamBytes()),
              static_cast<double>(profile.TotalParamBytes()) * 0.001);
}

TEST(Partitioner, RespectsMemoryCap) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  for (int stages : {4, 8, 16, 32}) {
    PipelinePlan plan = partitioner.Partition(profile, stages);
    EXPECT_LE(plan.MaxStageParams(), partitioner.config().gpu_memory) << stages;
  }
}

TEST(Partitioner, BalancedStages) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 8);
  TimeNs min_t = plan.stages[0].compute_time;
  TimeNs max_t = min_t;
  for (const StagePlan& s : plan.stages) {
    min_t = std::min(min_t, s.compute_time);
    max_t = std::max(max_t, s.compute_time);
  }
  // Eq. 8's balance requirement: bottleneck within 30% of the lightest stage.
  EXPECT_LT(static_cast<double>(max_t) / static_cast<double>(min_t), 1.3);
}

TEST(Partitioner, PrefersBlockBoundaries) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 16);
  int clean = 0;
  for (const StagePlan& s : plan.stages) {
    if (s.clean_boundary) {
      ++clean;
    }
  }
  // 64 blocks / 16 stages: every cut can land on a block edge.
  EXPECT_EQ(clean, 16);
}

TEST(Partitioner, LadderIsNested) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_TRUE(ladder.IsNested());
  EXPECT_EQ(ladder.finest(), 32);
  // 120 GB / 2 stages would need 60 GB per GPU: infeasible on 40 GB devices, so the
  // OPT-66B ladder starts at 4 stages.
  EXPECT_EQ(ladder.coarsest(), 4);
  for (int g : ladder.granularities) {
    EXPECT_EQ(ladder.plan(g).num_stages(), g);
  }
}

TEST(Partitioner, SmallModelKeepsCoarsestGranularity) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_EQ(ladder.coarsest(), 2);  // 13 GB / 2 fits easily
}

TEST(Partitioner, LadderNavigation) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  EXPECT_EQ(ladder.FinerThan(4), 8);
  EXPECT_EQ(ladder.CoarserThan(4), 2);
  EXPECT_EQ(ladder.FinerThan(32), 32);   // already finest
  EXPECT_EQ(ladder.CoarserThan(2), 2);   // already coarsest
}

TEST(Partitioner, CoarseStagesAggregateFineStages) {
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  const PipelinePlan& fine = ladder.plan(32);
  const PipelinePlan& coarse = ladder.plan(8);
  for (const StagePlan& c : coarse.stages) {
    Bytes sum = 0;
    for (int f = c.fine_begin; f < c.fine_end; ++f) {
      sum += fine.stages[static_cast<size_t>(f)].param_bytes;
    }
    EXPECT_EQ(sum, c.param_bytes);
    EXPECT_EQ(fine.stages[static_cast<size_t>(c.fine_begin)].op_begin, c.op_begin);
    EXPECT_EQ(fine.stages[static_cast<size_t>(c.fine_end - 1)].op_end, c.op_end);
  }
}

TEST(Partitioner, FinerGranularityLoadsFasterPerStage) {
  // The Insight-2 property: finer stages are individually smaller.
  ModelProfile profile = MakeProfile(Opt66B());
  Partitioner partitioner;
  GranularityLadder ladder = partitioner.BuildLadder(profile);
  Bytes prev = ladder.plan(4).MaxStageParams();
  for (int g : {8, 16, 32}) {
    Bytes cur = ladder.plan(g).MaxStageParams();
    EXPECT_LT(cur, prev) << g;
    prev = cur;
  }
}

TEST(Partitioner, SmallModelManyStagesStillFeasible) {
  ModelProfile profile = MakeProfile(Whisper9B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 32);
  EXPECT_EQ(plan.num_stages(), 32);
  EXPECT_TRUE(plan.MaxStageParams() > 0);
}

TEST(Partitioner, PlanDescribeIsHumanReadable) {
  ModelProfile profile = MakeProfile(Llama2_7B());
  Partitioner partitioner;
  PipelinePlan plan = partitioner.Partition(profile, 4);
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("LLAMA2-7B"), std::string::npos);
  EXPECT_NE(desc.find("4 stages"), std::string::npos);
}

}  // namespace
}  // namespace flexpipe
