#include <gtest/gtest.h>

#include "src/model/cost_model.h"
#include "src/model/graph.h"
#include "src/model/model_spec.h"
#include "src/model/profiler.h"

namespace flexpipe {
namespace {

TEST(ModelSpec, ZooParameterCounts) {
  EXPECT_EQ(Opt66B().param_bytes, GiB(120.0));  // paper's Table 2 figure
  EXPECT_LT(Llama2_7B().param_bytes, Bert21B().param_bytes);
  EXPECT_LT(Bert21B().param_bytes, Opt66B().param_bytes);
  EXPECT_EQ(EvaluationModels().size(), 4u);
}

TEST(Graph, OperatorChainStructure) {
  ModelSpec spec = Opt66B();
  ComputationGraph graph = ComputationGraph::Build(spec);
  // embedding + 4 ops per block + head
  EXPECT_EQ(graph.op_count(), 1 + spec.num_layers * 4 + 1);
  EXPECT_EQ(graph.ops().front().kind, OpKind::kEmbedding);
  EXPECT_EQ(graph.ops().back().kind, OpKind::kLmHead);
  // Parameters sum to the model total (within rounding).
  Bytes total = graph.RangeParamBytes(0, graph.op_count());
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(spec.param_bytes),
              static_cast<double>(spec.param_bytes) * 0.01);
}

TEST(Graph, BlockBoundariesAfterMlp) {
  ComputationGraph graph = ComputationGraph::Build(Llama2_7B());
  int boundaries = 0;
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kMlp) {
      EXPECT_TRUE(op.block_boundary_after);
      ++boundaries;
    }
    if (op.kind == OpKind::kAttention) {
      EXPECT_FALSE(op.block_boundary_after);
    }
  }
  EXPECT_EQ(boundaries, Llama2_7B().num_layers);
}

TEST(Graph, MidBlockCutsCarryWiderActivations) {
  ComputationGraph graph = ComputationGraph::Build(Llama2_7B());
  // Find an attention op (mid-block) and an MLP op (boundary).
  Bytes mid = 0;
  Bytes clean = 0;
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kAttention && mid == 0) {
      mid = graph.CutActivationBytes(op.index);
    }
    if (op.kind == OpKind::kMlp && clean == 0) {
      clean = graph.CutActivationBytes(op.index);
    }
  }
  EXPECT_GT(mid, clean);
}

// -- Table 2 calibration ---------------------------------------------------------------

class Table2Calibration : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(Table2Calibration, PerStageComputeMatchesPaper) {
  auto [stages, paper_compute_ms, paper_load_s] = GetParam();
  CostModel cost;
  ModelSpec spec = Opt66B();
  ComputationGraph graph = ComputationGraph::Build(spec);
  // Per-stage compute at the reference conditions: a block-aligned 1/S slice from the
  // middle of the chain (ops: embedding + 4 per block + head).
  int blocks_per_stage = spec.num_layers / stages;
  int op_begin = 1 + 4 * blocks_per_stage;  // skip stage 0 (embedding skews it)
  int op_end = op_begin + 4 * blocks_per_stage;
  TimeNs t = cost.StageComputeTime(graph, op_begin, op_end, Phase::kPrefill, 4096, 1);
  // The paper's column is t_c(S) = 275.5/S + 1.06 ms; allow 15% for share rounding.
  EXPECT_NEAR(ToMillis(t), paper_compute_ms, paper_compute_ms * 0.15) << stages << " stages";

  // Cold load per stage interpolates the Table 2 anchors (exact at anchor points).
  Bytes per_stage = spec.param_bytes / stages;
  TimeNs load = cost.ColdLoadTime(per_stage);
  EXPECT_NEAR(ToSeconds(load), paper_load_s, paper_load_s * 0.05) << stages << " stages";
}

INSTANTIATE_TEST_SUITE_P(Table2Rows, Table2Calibration,
                         ::testing::Values(std::make_tuple(4, 69.94, 47.14),
                                           std::make_tuple(8, 36.63, 13.05),
                                           std::make_tuple(16, 18.67, 9.19),
                                           std::make_tuple(32, 9.67, 5.43)));

TEST(CostModel, MaxBatchIs32PerStage) {
  CostModel cost;
  EXPECT_EQ(cost.MaxRequestsPerStage(), 32);
}

TEST(CostModel, PrefillScalesWithTokensAndModelSize) {
  CostModel cost;
  TimeNs small = cost.FullModelComputeTime(Opt66B(), Phase::kPrefill, 1024, 1);
  TimeNs big = cost.FullModelComputeTime(Opt66B(), Phase::kPrefill, 4096, 1);
  EXPECT_NEAR(static_cast<double>(big) / small, 4.0, 0.05);

  TimeNs llama = cost.FullModelComputeTime(Llama2_7B(), Phase::kPrefill, 4096, 1);
  EXPECT_LT(llama, big / 5);  // 13 GB vs 120 GB of weights
}

TEST(CostModel, DecodeBatchSlopeIsMild) {
  CostModel cost;
  TimeNs b1 = cost.FullModelComputeTime(Opt66B(), Phase::kDecode, 1, 1);
  TimeNs b32 = cost.FullModelComputeTime(Opt66B(), Phase::kDecode, 1, 32);
  double ratio = static_cast<double>(b32) / b1;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.5);  // batching decode is cheap (memory-bound)
}

TEST(CostModel, ActivationScalingEq3) {
  CostModel cost;
  Bytes base = MiB(10);
  // b = b_base gives exactly the base size.
  EXPECT_EQ(cost.ActivationBytesAtBatch(base, 1, 1), base);
  Bytes b32 = cost.ActivationBytesAtBatch(base, 32, 1);
  // 1 + 0.18 * ln(32) ~= 1.62.
  EXPECT_NEAR(static_cast<double>(b32) / base, 1.62, 0.05);
}

TEST(CostModel, WarmLoadBeatsColdLoad) {
  CostModel cost;
  Bytes stage = GiB(15);
  TimeNs cold = cost.ColdLoadTime(stage);
  TimeNs warm = cost.WarmLoadTime(stage, GiBps(24.0));
  EXPECT_LT(warm, cold / 5);  // host-cache hits transform cold starts (§7)
}

TEST(CostModel, LoadTimeMonotoneInStageSize) {
  CostModel cost;
  TimeNs prev = 0;
  for (double gib : {1.0, 3.75, 7.5, 15.0, 30.0, 60.0}) {
    TimeNs t = cost.ColdLoadTime(GiB(gib));
    EXPECT_GE(t, prev) << gib;
    prev = t;
  }
}

TEST(Profiler, ProfileSumsMatchModel) {
  CostModel cost;
  Profiler profiler(&cost, Profiler::Config{});
  ComputationGraph graph = ComputationGraph::Build(Llama2_7B());
  ModelProfile profile = profiler.Profile(graph);
  EXPECT_EQ(profile.ops.size(), static_cast<size_t>(graph.op_count()));
  EXPECT_NEAR(static_cast<double>(profile.TotalParamBytes()),
              static_cast<double>(Llama2_7B().param_bytes),
              static_cast<double>(Llama2_7B().param_bytes) * 0.01);
  TimeNs expected = cost.FullModelComputeTime(Llama2_7B(), Phase::kPrefill,
                                              Llama2_7B().context_window, 1);
  EXPECT_NEAR(static_cast<double>(profile.TotalComputeTime()), static_cast<double>(expected),
              static_cast<double>(expected) * 0.02);
}

TEST(Profiler, NoiseIsBoundedAndSeeded) {
  CostModel cost;
  Profiler::Config config;
  config.noise_sigma = 0.05;
  config.seed = 99;
  Profiler a(&cost, config);
  Profiler b(&cost, config);
  ComputationGraph graph = ComputationGraph::Build(Whisper9B());
  ModelProfile pa = a.Profile(graph);
  ModelProfile pb = b.Profile(graph);
  for (size_t i = 0; i < pa.ops.size(); ++i) {
    EXPECT_EQ(pa.ops[i].compute_time, pb.ops[i].compute_time);  // deterministic
  }
}

TEST(CostModel, KvCapacityShrinksWithContext) {
  CostModel cost;
  ModelSpec spec = Opt66B();
  int short_ctx = cost.KvCapacityRequests(spec, 0.25, GiB(40), GiB(30), 512);
  int long_ctx = cost.KvCapacityRequests(spec, 0.25, GiB(40), GiB(30), 4096);
  EXPECT_GT(short_ctx, long_ctx);
  EXPECT_GT(long_ctx, 0);
}

}  // namespace
}  // namespace flexpipe
