// Simulation-auditor tests: clean state must audit clean (including mid-run, while a
// live system is mutating everything), and every corruption the test seeds must be
// detected by the matching invariant family.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/topology.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"
#include "src/runtime/request.h"
#include "src/runtime/router.h"
#include "src/sim/auditor.h"
#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

bool AnyMentions(const AuditReport& report, const std::string& needle) {
  return std::any_of(report.begin(), report.end(), [&](const std::string& v) {
    return v.find(needle) != std::string::npos;
  });
}

// -- Event arena ------------------------------------------------------------------------

TEST(ArenaAudit, CleanUnderScheduleCancelChurn) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sim.Schedule(static_cast<TimeNs>(i) * kMillisecond, [] {}));
  }
  // Far-future events exercise the staging tier; cancels leave tombstones there.
  for (int i = 0; i < 64; ++i) {
    ids.push_back(sim.Schedule(10 * kSecond + static_cast<TimeNs>(i) * kSecond, [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 3) {
    sim.Cancel(ids[i]);
  }
  EXPECT_TRUE(SimulationAuditor::AuditArena(sim).empty());

  sim.RunUntil(15 * kSecond);  // partially drained: heap + staged + free slots coexist
  EXPECT_TRUE(SimulationAuditor::AuditArena(sim).empty());

  sim.RunUntilIdle();
  EXPECT_TRUE(SimulationAuditor::AuditArena(sim).empty());
}

TEST(ArenaAudit, DetectsLeakedSlot) {
  Simulation sim;
  sim.Schedule(1 * kMillisecond, [] {});
  ASSERT_TRUE(SimulationAuditor::AuditArena(sim).empty());

  SimulationAuditor::TestOnlyLeakArenaSlot(&sim);
  AuditReport report = SimulationAuditor::AuditArena(sim);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "leaked"));
}

// -- Free-GPU bucket index --------------------------------------------------------------

TEST(FreeIndexAudit, CleanThroughReserveReleaseChurn) {
  Cluster cluster(EvalClusterConfig());
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  cluster.gpu(0).Reserve(GiB(10), 0.3);
  cluster.gpu(5).Reserve(GiB(35), 0.5);  // crosses several bucket boundaries
  cluster.gpu(9).SetBackground(GiB(20), 0.4, 2);
  cluster.gpu(0).Release(GiB(10), 0.3);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(FreeIndexAudit, DetectsStaleServerMaximum) {
  Cluster cluster(EvalClusterConfig());
  SimulationAuditor::TestOnlyCorruptBucketIndex(&cluster, 3);
  AuditReport report = SimulationAuditor::AuditFreeGpuIndex(cluster);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "server 3"));
}

TEST(FreeIndexAudit, CleanThroughFaultChurn) {
  // The real fault path re-derives every cached maximum: failures and partitions must
  // never leave the index counting an unusable GPU.
  Cluster cluster(EvalClusterConfig());
  cluster.gpu(2).Reserve(GiB(8), 0.2);
  cluster.SetGpuFailed(2);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
  cluster.SetServerFailed(cluster.ServerOf(5));
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
  cluster.SetRackReachable(1, false);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
  cluster.SetRackReachable(1, true);
  EXPECT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());
}

TEST(FreeIndexAudit, DetectsIndexStillCountingDeadGpu) {
  Cluster cluster(EvalClusterConfig());
  // Make GPU 0 its server's unique free-memory maximum, so skipping the re-index after
  // its death leaves the cached maximum attributable to the dead GPU alone.
  const ServerId server = cluster.ServerOf(0);
  for (GpuId g : cluster.server(server).gpus) {
    if (g != 0) {
      cluster.gpu(g).Reserve(GiB(4), 0.1);
    }
  }
  ASSERT_TRUE(SimulationAuditor::AuditFreeGpuIndex(cluster).empty());

  SimulationAuditor::TestOnlyFailGpuWithoutReindex(&cluster, 0);
  AuditReport report = SimulationAuditor::AuditFreeGpuIndex(cluster);
  ASSERT_FALSE(report.empty());
  // The detector names the failure mode, not just a generic stale maximum.
  EXPECT_TRUE(AnyMentions(report, "failed/partitioned GPU"));
}

// -- Fail-slow perf state ---------------------------------------------------------------

TEST(PerfStateAudit, CleanThroughDegradeAndRestoreChurn) {
  Cluster cluster(EvalClusterConfig());
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());

  cluster.SetServerPerf(0, 0.4);
  cluster.SetServerLinkFactor(1, 0.2);
  cluster.SetServerPerf(1, 0.5);  // server 1 now degraded on both axes
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());
  EXPECT_EQ(cluster.degraded_server_count(), 2);

  // Partial restore: server 1 still degraded through its link factor.
  cluster.SetServerPerf(1, 1.0);
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());
  EXPECT_EQ(cluster.degraded_server_count(), 2);

  cluster.SetServerPerf(0, 1.0);
  cluster.SetServerLinkFactor(1, 1.0);
  EXPECT_TRUE(SimulationAuditor::AuditPerfState(cluster).empty());
  EXPECT_FALSE(cluster.AnyDegraded());
}

TEST(PerfStateAudit, DetectsStaleDegradedCount) {
  // A perf factor written without going through SetServerPerf leaves the cached
  // degraded count stale — the one-branch AnyDegraded guard would then skip live
  // degradation pricing entirely. The audit must name that failure mode.
  Cluster cluster(EvalClusterConfig());
  SimulationAuditor::TestOnlyCorruptPerfState(&cluster, /*server=*/3);
  AuditReport report = SimulationAuditor::AuditPerfState(cluster);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "stale count"));

  // The composite AuditAll sweep surfaces it too (debug builds run this live).
  Simulation sim;
  AuditReport all = SimulationAuditor::AuditAll(sim, cluster, {});
  EXPECT_TRUE(AnyMentions(all, "stale count"));
}

// -- Router -----------------------------------------------------------------------------

TEST(RouterAudit, DetectsQueueModelMismatch) {
  Simulation sim;
  Router router(&sim);
  Request a;
  a.spec.id = 1;
  a.spec.model_index = 0;
  Request b;
  b.spec.id = 2;
  b.spec.model_index = 0;
  router.Submit(&a);  // no instances registered: both wait in model 0's queue
  router.Submit(&b);
  ASSERT_TRUE(SimulationAuditor::AuditRouter(router).empty());

  Request stray;
  stray.spec.id = 3;
  stray.spec.model_index = 0;
  SimulationAuditor::TestOnlyMisrouteQueuedRequest(&router, &stray, /*wrong_model=*/7);
  AuditReport report = SimulationAuditor::AuditRouter(router);
  // The helper keeps the incremental counters consistent, so exactly the mismatch
  // detector fires — proving the finding is attributed to the right invariant.
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(AnyMentions(report, "sits in model 7"));
}

// -- Serving system / registry / HRG ----------------------------------------------------

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

FlexPipeConfig SmallFlexPipeConfig() {
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  return config;
}

std::vector<RequestSpec> SmallWorkload(double rate, double cv, TimeNs duration) {
  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 16;
  WorkloadGenerator gen(wconfig);
  Rng rng(3);
  return gen.GenerateWithCv(rng, rate, cv, duration);
}

TEST(SystemAudit, PeriodicAuditorPassesThroughLiveWorkload) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  // Audits every 500ms of virtual time while the system provisions, routes, scales
  // and refactors — a violation anywhere mid-run aborts the test.
  PeriodicSimulationAuditor auditor(&env.sim(), &env.cluster(), {&system},
                                    500 * kMillisecond);

  std::vector<RequestSpec> specs = SmallWorkload(4.0, 4.0, 30 * kSecond);
  std::vector<Request> storage;
  RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 60 * kSecond});

  EXPECT_GT(auditor.audits_run(), 0);
  std::vector<std::string> report;
  system.CollectAuditViolations(&report);
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system}).empty());
}

TEST(SystemAudit, DetectsPhantomRegistryEntry) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  system.Start();
  env.sim().RunUntil(5 * kSecond);  // let the initial fleet provision and load
  std::vector<std::string> clean;
  system.CollectAuditViolations(&clean);
  ASSERT_TRUE(clean.empty());

  SimulationAuditor::TestOnlyCorruptRegistry(&system, /*gpu=*/0, /*model_id=*/999);
  std::vector<std::string> report;
  system.CollectAuditViolations(&report);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "model 999"));

  // AuditAll prefixes system findings with the system's name.
  AuditReport all = SimulationAuditor::AuditAll(env.sim(), env.cluster(), {&system});
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(AnyMentions(all, "[" + system.name() + "]"));
}

// -- Failure domains ---------------------------------------------------------------------

TEST(FailureDomainAudit, DetectsZombieInstanceOnDeadCapacity) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  system.Start();
  env.sim().RunUntil(5 * kSecond);  // initial fleet is live
  ASSERT_TRUE(
      SimulationAuditor::AuditFailureDomains(env.cluster(), system).empty());

  // Quarantine every rack behind the system's back — no injector, so OnGpusLost never
  // runs and nothing fails the stranded instances. Every unreleased instance now
  // stands entirely on unusable GPUs: exactly the zombie state recovery must prevent.
  for (RackId r = 0; r < env.cluster().rack_count(); ++r) {
    env.cluster().SetRackReachable(r, false);
  }
  AuditReport report = SimulationAuditor::AuditFailureDomains(env.cluster(), system);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "zombie"));
  // The full audit surfaces it too (CollectAuditViolations includes the domain check).
  std::vector<std::string> collected;
  system.CollectAuditViolations(&collected);
  EXPECT_TRUE(AnyMentions(collected, "zombie"));

  // Healing the racks clears the finding without any other repair.
  for (RackId r = 0; r < env.cluster().rack_count(); ++r) {
    env.cluster().SetRackReachable(r, true);
  }
  EXPECT_TRUE(
      SimulationAuditor::AuditFailureDomains(env.cluster(), system).empty());
}

TEST(FailureDomainAudit, DetectsDeadServerStillAdvertisingCapacity) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeSystem system(env.Context(), &env.ladder(0), SmallFlexPipeConfig());
  system.Start();
  env.sim().RunUntil(5 * kSecond);
  ASSERT_TRUE(
      SimulationAuditor::AuditFailureDomains(env.cluster(), system).empty());

  // Kill every GPU on one server without the re-index the real fault path performs:
  // the server is entirely dead yet still advertises free capacity to placement.
  ServerId victim = kInvalidServer;
  for (ServerId s = 0; s < env.cluster().server_count(); ++s) {
    if (!env.cluster().server(s).gpus.empty() && env.cluster().server_max_free(s) > 0) {
      victim = s;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidServer);
  for (GpuId g : env.cluster().server(victim).gpus) {
    SimulationAuditor::TestOnlyFailGpuWithoutReindex(&env.cluster(), g);
  }
  AuditReport report = SimulationAuditor::AuditFailureDomains(env.cluster(), system);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(AnyMentions(report, "advertises"));
}

}  // namespace
}  // namespace flexpipe
