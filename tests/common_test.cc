#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace flexpipe {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(FromSeconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(FromMillis(12.5)), 12.5);
  EXPECT_EQ(GiB(2.0), 2LL * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(ToGiB(GiB(40)), 40.0);
}

TEST(Units, TransferTime) {
  // 1 GiB at 1 GiB/s = 1 s.
  EXPECT_EQ(TransferTime(kGiB, GiBps(1.0)), kSecond);
  EXPECT_EQ(TransferTime(0, GiBps(1.0)), 0);
  EXPECT_EQ(TransferTime(-5, GiBps(1.0)), 0);
  // Zero bandwidth caps out instead of dividing by zero.
  EXPECT_GT(TransferTime(kGiB, 0.0), kHour);
}

TEST(Units, GbpsConversion) {
  // 100 Gbps = 12.5 GB/s.
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(100.0), 12.5e9);
}

TEST(RunningStats, MeanVarianceCv) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.cv(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10 + i;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(SlidingWindowStats, EvictsOldSamples) {
  SlidingWindowStats w(4);
  for (double x : {100.0, 1.0, 2.0, 3.0, 4.0}) {
    w.Add(x);  // 100 falls out
  }
  EXPECT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
  EXPECT_NEAR(w.variance(), 5.0 / 3.0, 1e-9);
}

TEST(SlidingWindowStats, CvOfConstantIsZero) {
  SlidingWindowStats w(8);
  for (int i = 0; i < 8; ++i) {
    w.Add(3.25);
  }
  EXPECT_NEAR(w.cv(), 0.0, 1e-9);
}

// Naive deque-FIFO reference with the same incremental sum arithmetic: the flat-ring
// implementation must agree bit-for-bit, across evictions and resets.
TEST(SlidingWindowStats, RingMatchesNaiveReferenceRandomized) {
  Rng rng(314159);
  for (int round = 0; round < 30; ++round) {
    size_t capacity = static_cast<size_t>(rng.UniformInt(1, 40));
    SlidingWindowStats ring(capacity);
    std::deque<double> window;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < 1000; ++i) {
      if (rng.Bernoulli(0.005)) {
        ring.Reset();
        window.clear();
        sum = 0.0;
        sum_sq = 0.0;
      }
      double x = rng.LogNormal(0.0, 1.5);
      if (window.size() == capacity) {
        double old = window.front();
        window.pop_front();
        sum -= old;
        sum_sq -= old * old;
      }
      window.push_back(x);
      sum += x;
      sum_sq += x * x;

      ring.Add(x);
      ASSERT_EQ(ring.size(), window.size());
      EXPECT_EQ(ring.full(), window.size() == capacity);
      double n = static_cast<double>(window.size());
      double mean = sum / n;
      EXPECT_EQ(ring.mean(), mean) << "round " << round << " step " << i;
      if (window.size() >= 2) {
        double var = std::max((sum_sq - n * mean * mean) / (n - 1.0), 0.0);
        EXPECT_EQ(ring.variance(), var) << "round " << round << " step " << i;
      } else {
        EXPECT_EQ(ring.variance(), 0.0);
      }
    }
  }
}

TEST(Percentile, InterpolatesOrderStatistics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
  EXPECT_NEAR(Percentile(v, 90), 9.1, 1e-12);
}

TEST(Histogram, PercentilesWithinRelativeError) {
  Histogram h(1e-4, 1.03);
  Rng rng(5);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.LogNormal(0.0, 1.0);
    h.Add(x);
    exact.push_back(x);
  }
  for (double q : {50.0, 90.0, 99.0}) {
    double e = Percentile(exact, q);
    double got = h.Percentile(q);
    EXPECT_NEAR(got, e, e * 0.05) << "q=" << q;
  }
  EXPECT_EQ(h.count(), 20000);
}

TEST(Histogram, MergeAddsMass) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, ChildStreamsDiverge) {
  Rng root(42);
  Rng a = root.Child("alpha");
  Rng b = root.Child("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000) == b.UniformInt(0, 1000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, GammaMatchesTargetCv) {
  // Gamma(shape=1/cv^2) inter-arrivals should produce the requested CV.
  Rng rng(9);
  for (double cv : {0.5, 1.0, 2.0, 4.0}) {
    double shape = 1.0 / (cv * cv);
    RunningStats s;
    for (int i = 0; i < 40000; ++i) {
      s.Add(rng.Gamma(shape, 1.0 / shape));
    }
    EXPECT_NEAR(s.cv(), cv, cv * 0.1) << "cv=" << cv;
    EXPECT_NEAR(s.mean(), 1.0, 0.1);
  }
}

TEST(Rng, ParetoTailIsHeavy) {
  Rng rng(1);
  int above = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Pareto(1.0, 1.5) > 10.0) {
      ++above;
    }
  }
  // P(X > 10) = 10^-1.5 ~= 3.2%.
  EXPECT_NEAR(static_cast<double>(above) / 10000.0, 0.0316, 0.01);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1.00"});
  t.AddRow({"longer-name", "2.50"});
  std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Pct(0.253, 1), "25.3%");
}

}  // namespace
}  // namespace flexpipe
