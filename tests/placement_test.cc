// Randomized equivalence suite for the indexed placement path.
//
// PlaceStages must be a pure optimization of the naive full-scan argmax: on any
// cluster, fragmentation pattern, plan, CV, registry state and scaling-layer hooks,
// it must pick the exact same GPUs as PlaceStagesReference (same-score ties broken
// toward the lowest GPU id), including agreeing on infeasibility. The suite also
// cross-checks the cluster's incremental free-GPU index against brute-force recomputes
// under reserve/release/background churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/fragmentation.h"
#include "src/common/rng.h"
#include "src/core/allocation.h"

namespace flexpipe {
namespace {

ClusterConfig RandomClusterConfig(Rng& rng) {
  ClusterConfig config;
  config.servers_1gpu = static_cast<int>(rng.UniformInt(0, 20));
  config.servers_2gpu = static_cast<int>(rng.UniformInt(0, 14));
  config.servers_4gpu = static_cast<int>(rng.UniformInt(0, 8));
  config.cpu_only_servers = static_cast<int>(rng.UniformInt(0, 3));
  config.racks = static_cast<int>(rng.UniformInt(1, 8));
  if (config.servers_1gpu + config.servers_2gpu + config.servers_4gpu == 0) {
    config.servers_1gpu = 1;  // keep at least one GPU in the cluster
  }
  return config;
}

PipelinePlan RandomPlan(Rng& rng, bool force_infeasible) {
  PipelinePlan plan;
  int stages = static_cast<int>(rng.UniformInt(1, 12));
  for (int s = 0; s < stages; ++s) {
    StagePlan sp;
    sp.param_bytes = force_infeasible
                         ? GiB(100)  // larger than any GPU: no placement can exist
                         : static_cast<Bytes>(rng.Uniform(0.5, 30.0) * static_cast<double>(GiB(1)));
    plan.stages.push_back(sp);
  }
  return plan;
}

// Per-server hook values drawn once per case; hooks must honour the [0, 1] contract
// the placer's bound pruning relies on.
std::vector<double> RandomServerValues(Rng& rng, int servers) {
  std::vector<double> values(static_cast<size_t>(servers));
  for (double& v : values) {
    v = rng.Uniform();
  }
  return values;
}

TEST(PlacementEquivalence, IndexedMatchesNaiveScanOnRandomClusters) {
  constexpr int kCases = 320;
  Rng rng(20260730);
  int feasible_cases = 0;
  int infeasible_cases = 0;

  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Cluster cluster(RandomClusterConfig(rng));
    NetworkModel network(&cluster, NetworkConfig{});
    ModelPlacementRegistry registry(cluster.gpu_count());

    // Random fragmentation: direct background sampling spanning idle to saturated.
    for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
      double util = rng.Uniform();
      if (rng.Bernoulli(0.15)) {
        util = rng.Uniform(0.9, 1.0);  // saturated tail
      }
      cluster.gpu(g).SetBackground(
          static_cast<Bytes>(util * static_cast<double>(cluster.gpu(g).memory_capacity())),
          rng.Uniform(), static_cast<int>(rng.UniformInt(0, 4)));
    }

    // Random pre-existing placements (anti-colocation + multiplexing-penalty state).
    int pre = static_cast<int>(rng.UniformInt(0, cluster.gpu_count() / 2));
    for (int i = 0; i < pre; ++i) {
      GpuId g = static_cast<GpuId>(rng.UniformInt(0, cluster.gpu_count() - 1));
      Bytes bytes = static_cast<Bytes>(rng.Uniform(0.5, 8.0) * static_cast<double>(GiB(1)));
      if (cluster.gpu(g).CanReserve(bytes)) {
        cluster.gpu(g).Reserve(bytes, rng.Uniform(0.0, 0.4));
        registry.Add(g, static_cast<int>(rng.UniformInt(0, 3)));
      }
    }

    // Random placement knobs (weights stay non-negative per the config contract).
    PlacementConfig config;
    config.gamma0 = rng.Uniform(0.0, 0.2);
    config.alpha_cv = rng.Uniform(0.0, 1.0);
    config.topo_bonus_server = rng.Uniform(0.0, 0.5);
    config.topo_bonus_rack = rng.Uniform(0.0, 0.3);
    config.affinity_weight = rng.Uniform(0.0, 0.5);
    config.hrg_weight = rng.Uniform(0.0, 0.5);
    TopologyAwarePlacer placer(&cluster, &network, &registry, config);

    bool infeasible = rng.Bernoulli(0.15);
    PipelinePlan plan = RandomPlan(rng, infeasible);
    int model_id = static_cast<int>(rng.UniformInt(0, 3));
    double cv = rng.Uniform(0.0, 8.0);

    TopologyAwarePlacer::ServerScoreFn hrg_hook;
    TopologyAwarePlacer::ServerScoreFn affinity_hook;
    std::vector<double> hrg_values = RandomServerValues(rng, cluster.server_count());
    std::vector<double> affinity_values = RandomServerValues(rng, cluster.server_count());
    if (rng.Bernoulli(0.8)) {
      hrg_hook = [&hrg_values](ServerId s) { return hrg_values[static_cast<size_t>(s)]; };
    }
    if (rng.Bernoulli(0.8)) {
      affinity_hook = [&affinity_values](ServerId s) {
        return affinity_values[static_cast<size_t>(s)];
      };
    }

    std::vector<GpuId> indexed =
        placer.PlaceStages(plan, model_id, cv, hrg_hook, affinity_hook);
    std::vector<GpuId> reference =
        placer.PlaceStagesReference(plan, model_id, cv, hrg_hook, affinity_hook);
    EXPECT_EQ(indexed, reference);
    if (infeasible) {
      EXPECT_TRUE(indexed.empty());
    }
    if (reference.empty()) {
      ++infeasible_cases;
    } else {
      ++feasible_cases;
    }
  }
  // The sweep must genuinely exercise both outcomes.
  EXPECT_GT(feasible_cases, kCases / 4);
  EXPECT_GT(infeasible_cases, kCases / 10);
}

TEST(PlacementEquivalence, EquivalenceHoldsAcrossReserveReleaseChurn) {
  // One long-lived cluster with interleaved placements and releases: the incremental
  // index must stay coherent across churn, not just on freshly built clusters.
  Rng rng(77);
  Cluster cluster(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  ModelPlacementRegistry registry(cluster.gpu_count());
  TopologyAwarePlacer placer(&cluster, &network, &registry, PlacementConfig{});
  FragmentationGenerator frag(&cluster, ProfileClusterC1(), /*seed=*/5);
  frag.ApplySnapshot();

  struct Active {
    std::vector<GpuId> gpus;
    Bytes bytes = 0;
    int model_id = 0;
  };
  std::vector<Active> active;
  for (int step = 0; step < 120; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (rng.Bernoulli(0.2)) {
      frag.ChurnStep(0.1);  // background tenants come and go mid-run
    }
    PipelinePlan plan = RandomPlan(rng, /*force_infeasible=*/false);
    int model_id = static_cast<int>(rng.UniformInt(0, 3));
    std::vector<GpuId> indexed = placer.PlaceStages(plan, model_id, 1.5, nullptr, nullptr);
    std::vector<GpuId> reference =
        placer.PlaceStagesReference(plan, model_id, 1.5, nullptr, nullptr);
    ASSERT_EQ(indexed, reference);
    if (!indexed.empty() && rng.Bernoulli(0.8)) {
      Active a;
      a.gpus = indexed;
      a.bytes = GiB(2);
      a.model_id = model_id;
      for (GpuId g : a.gpus) {
        cluster.gpu(g).Reserve(a.bytes, 0.3);
        registry.Add(g, model_id);
      }
      active.push_back(std::move(a));
    }
    if (active.size() > 6 || (indexed.empty() && !active.empty())) {
      size_t victim = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(active.size()) - 1));
      for (GpuId g : active[victim].gpus) {
        cluster.gpu(g).Release(active[victim].bytes, 0.3);
        registry.Remove(g, active[victim].model_id);
      }
      active.erase(active.begin() + static_cast<long>(victim));
    }
  }
}

TEST(PlacementEquivalence, IndexedMatchesNaiveScanWithDomainSpreadWeight) {
  // The recovery-aware spread term must not break the indexed/naive equivalence: the
  // penalty is subtract-only, so the indexed path's score upper bounds stay valid and
  // both paths must keep choosing the same GPUs for any weight.
  constexpr int kCases = 160;
  Rng rng(20260808);
  int feasible_cases = 0;

  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Cluster cluster(RandomClusterConfig(rng));
    NetworkModel network(&cluster, NetworkConfig{});
    ModelPlacementRegistry registry(cluster.gpu_count());
    for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
      cluster.gpu(g).SetBackground(
          static_cast<Bytes>(rng.Uniform() *
                             static_cast<double>(cluster.gpu(g).memory_capacity())),
          rng.Uniform(), static_cast<int>(rng.UniformInt(0, 4)));
    }

    PlacementConfig config;
    config.gamma0 = rng.Uniform(0.0, 0.2);
    config.topo_bonus_server = rng.Uniform(0.0, 0.5);
    config.topo_bonus_rack = rng.Uniform(0.0, 0.3);
    config.domain_spread_weight = rng.Uniform(0.0, 1.5);
    TopologyAwarePlacer placer(&cluster, &network, &registry, config);

    PipelinePlan plan = RandomPlan(rng, rng.Bernoulli(0.1));
    double cv = rng.Uniform(0.0, 8.0);
    std::vector<GpuId> indexed = placer.PlaceStages(plan, 0, cv, nullptr, nullptr);
    std::vector<GpuId> reference =
        placer.PlaceStagesReference(plan, 0, cv, nullptr, nullptr);
    EXPECT_EQ(indexed, reference);
    if (!reference.empty()) {
      ++feasible_cases;
    }
  }
  EXPECT_GT(feasible_cases, kCases / 4);
}

TEST(PlacementSpread, WeightZeroIsBitIdenticalToTheDefaultScore) {
  // domain_spread_weight = 0 must be indistinguishable from a build without the spread
  // term at all (the golden fig9/fig13 signatures depend on it): same cluster state,
  // same plan, the explicit-zero and default configs pick the exact same GPUs.
  Rng rng(41);
  Cluster cluster(EvalClusterConfig());
  Cluster cluster_zero(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  NetworkModel network_zero(&cluster_zero, NetworkConfig{});
  ModelPlacementRegistry registry(cluster.gpu_count());
  ModelPlacementRegistry registry_zero(cluster_zero.gpu_count());
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    Bytes background = static_cast<Bytes>(
        rng.Uniform() * static_cast<double>(cluster.gpu(g).memory_capacity()));
    double sm = rng.Uniform();
    cluster.gpu(g).SetBackground(background, sm, 1);
    cluster_zero.gpu(g).SetBackground(background, sm, 1);
  }

  PlacementConfig defaults;
  PlacementConfig explicit_zero;
  explicit_zero.domain_spread_weight = 0.0;
  TopologyAwarePlacer placer(&cluster, &network, &registry, defaults);
  TopologyAwarePlacer placer_zero(&cluster_zero, &network_zero, &registry_zero,
                                  explicit_zero);
  for (int c = 0; c < 24; ++c) {
    SCOPED_TRACE("plan " + std::to_string(c));
    PipelinePlan plan = RandomPlan(rng, false);
    EXPECT_EQ(placer.PlaceStages(plan, 0, 1.5, nullptr, nullptr),
              placer_zero.PlaceStages(plan, 0, 1.5, nullptr, nullptr));
  }
}

TEST(PlacementSpread, PositiveWeightDispersesStagesAcrossFailureDomains) {
  // On an idle cluster the topology bonuses pull every stage toward one rack; the
  // spread term must counteract that and strictly widen the failure-domain footprint,
  // so a correlated power/thermal fault can no longer take the whole pipeline.
  auto domains_used = [](const Cluster& cluster, const std::vector<GpuId>& gpus) {
    std::vector<PowerDomainId> domains;
    for (GpuId g : gpus) {
      domains.push_back(cluster.PowerDomainOf(cluster.ServerOf(g)));
    }
    std::sort(domains.begin(), domains.end());
    domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
    return static_cast<int>(domains.size());
  };

  PipelinePlan plan;
  for (int s = 0; s < 6; ++s) {
    StagePlan sp;
    sp.param_bytes = GiB(4);
    plan.stages.push_back(sp);
  }

  Cluster packed(EvalClusterConfig());
  NetworkModel packed_net(&packed, NetworkConfig{});
  ModelPlacementRegistry packed_reg(packed.gpu_count());
  TopologyAwarePlacer packer(&packed, &packed_net, &packed_reg, PlacementConfig{});
  std::vector<GpuId> tight = packer.PlaceStages(plan, 0, 1.0, nullptr, nullptr);
  ASSERT_FALSE(tight.empty());

  Cluster spread(EvalClusterConfig());
  NetworkModel spread_net(&spread, NetworkConfig{});
  ModelPlacementRegistry spread_reg(spread.gpu_count());
  PlacementConfig config;
  config.domain_spread_weight = 4.0;
  TopologyAwarePlacer spreader(&spread, &spread_net, &spread_reg, config);
  std::vector<GpuId> wide = spreader.PlaceStages(plan, 0, 1.0, nullptr, nullptr);
  ASSERT_FALSE(wide.empty());

  EXPECT_GT(domains_used(spread, wide), domains_used(packed, tight));
}

TEST(PlacementQuarantine, ExcludedServersAreNeverSelectedInEitherPath) {
  // The health monitor's exclusion mask is a hard constraint: no stage may land on a
  // masked server, in the indexed path or the reference scan, across random cluster
  // shapes, fragmentation, and mask densities — and the two paths still agree exactly.
  constexpr int kCases = 120;
  Rng rng(20260809);
  int placements_checked = 0;

  for (int c = 0; c < kCases; ++c) {
    SCOPED_TRACE("case " + std::to_string(c));
    Cluster cluster(RandomClusterConfig(rng));
    NetworkModel network(&cluster, NetworkConfig{});
    ModelPlacementRegistry registry(cluster.gpu_count());
    for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
      cluster.gpu(g).SetBackground(
          static_cast<Bytes>(rng.Uniform(0.0, 0.6) *
                             static_cast<double>(cluster.gpu(g).memory_capacity())),
          rng.Uniform(), static_cast<int>(rng.UniformInt(0, 3)));
    }
    TopologyAwarePlacer placer(&cluster, &network, &registry, PlacementConfig{});

    std::vector<uint8_t> mask(static_cast<size_t>(cluster.server_count()), 0);
    for (ServerId s = 0; s < cluster.server_count(); ++s) {
      mask[static_cast<size_t>(s)] = rng.Bernoulli(0.3) ? 1 : 0;
    }
    placer.set_excluded_servers(&mask);

    PipelinePlan plan = RandomPlan(rng, false);
    std::vector<GpuId> indexed = placer.PlaceStages(plan, 0, 1.5, nullptr, nullptr);
    std::vector<GpuId> reference =
        placer.PlaceStagesReference(plan, 0, 1.5, nullptr, nullptr);
    EXPECT_EQ(indexed, reference);
    for (GpuId g : indexed) {
      EXPECT_EQ(mask[static_cast<size_t>(cluster.ServerOf(g))], 0)
          << "stage placed on excluded server " << cluster.ServerOf(g);
    }
    placements_checked += static_cast<int>(indexed.size());
  }
  EXPECT_GT(placements_checked, 0);  // the sweep must produce real placements
}

TEST(PlacementQuarantine, EmptyMaskIsBitIdenticalToNullMask) {
  // An all-zeros mask (health monitoring on, nothing quarantined) must leave the
  // placer bit-identical to no mask at all — the mechanism behind the untouched
  // golden fig9/fig13 signatures when health monitoring is enabled on a healthy fleet.
  Rng rng(43);
  Cluster cluster(EvalClusterConfig());
  Cluster cluster_masked(EvalClusterConfig());
  NetworkModel network(&cluster, NetworkConfig{});
  NetworkModel network_masked(&cluster_masked, NetworkConfig{});
  ModelPlacementRegistry registry(cluster.gpu_count());
  ModelPlacementRegistry registry_masked(cluster_masked.gpu_count());
  for (GpuId g = 0; g < cluster.gpu_count(); ++g) {
    Bytes background = static_cast<Bytes>(
        rng.Uniform() * static_cast<double>(cluster.gpu(g).memory_capacity()));
    double sm = rng.Uniform();
    cluster.gpu(g).SetBackground(background, sm, 1);
    cluster_masked.gpu(g).SetBackground(background, sm, 1);
  }

  TopologyAwarePlacer placer(&cluster, &network, &registry, PlacementConfig{});
  TopologyAwarePlacer masked(&cluster_masked, &network_masked, &registry_masked,
                             PlacementConfig{});
  std::vector<uint8_t> zeros(static_cast<size_t>(cluster_masked.server_count()), 0);
  masked.set_excluded_servers(&zeros);
  for (int c = 0; c < 24; ++c) {
    SCOPED_TRACE("plan " + std::to_string(c));
    PipelinePlan plan = RandomPlan(rng, false);
    EXPECT_EQ(placer.PlaceStages(plan, 0, 1.5, nullptr, nullptr),
              masked.PlaceStages(plan, 0, 1.5, nullptr, nullptr));
    EXPECT_EQ(placer.PlaceStagesReference(plan, 0, 1.5, nullptr, nullptr),
              masked.PlaceStagesReference(plan, 0, 1.5, nullptr, nullptr));
  }
}

TEST(FreeGpuIndex, MatchesBruteForceUnderChurn) {
  Rng rng(31);
  Cluster cluster(MeasurementClusterC1());
  FragmentationGenerator frag(&cluster, ProfileClusterC2(), /*seed=*/9);
  frag.ApplySnapshot();

  auto check_index = [&] {
    for (ServerId s = 0; s < cluster.server_count(); ++s) {
      Bytes expect_free = 0;
      double expect_headroom = 0.0;
      for (GpuId g : cluster.server(s).gpus) {
        expect_free = std::max(expect_free, cluster.gpu(g).free_memory());
        expect_headroom = std::max(
            expect_headroom, std::max(0.0, 1.0 - cluster.gpu(g).sm_utilization()));
      }
      ASSERT_EQ(cluster.server_max_free(s), expect_free) << "server " << s;
      ASSERT_EQ(cluster.server_max_headroom(s), expect_headroom) << "server " << s;
    }
    // Enumeration through the bucket lists must agree with a full scan.
    for (Bytes need : {GiB(1), GiB(8), GiB(20), GiB(39)}) {
      std::vector<ServerId> via_index;
      cluster.ForEachServerWithFreeAtLeast(need, [&](ServerId s) { via_index.push_back(s); });
      std::sort(via_index.begin(), via_index.end());
      std::vector<ServerId> brute;
      for (ServerId s = 0; s < cluster.server_count(); ++s) {
        if (cluster.server_max_free(s) >= need) {
          brute.push_back(s);
        }
      }
      ASSERT_EQ(via_index, brute) << "need " << need;
    }
  };

  check_index();
  std::vector<std::pair<GpuId, Bytes>> reserved;
  for (int step = 0; step < 400; ++step) {
    double roll = rng.Uniform();
    if (roll < 0.45) {
      GpuId g = static_cast<GpuId>(rng.UniformInt(0, cluster.gpu_count() - 1));
      Bytes bytes = static_cast<Bytes>(rng.Uniform(0.5, 20.0) * static_cast<double>(GiB(1)));
      if (cluster.gpu(g).CanReserve(bytes)) {
        cluster.gpu(g).Reserve(bytes, rng.Uniform(0.0, 0.5));
        reserved.push_back({g, bytes});
      }
    } else if (roll < 0.8 && !reserved.empty()) {
      size_t i = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(reserved.size()) - 1));
      cluster.gpu(reserved[i].first).Release(reserved[i].second, 0.0);
      reserved.erase(reserved.begin() + static_cast<long>(i));
    } else {
      frag.ChurnStep(0.05);
    }
    if (step % 40 == 0) {
      check_index();
    }
  }
  check_index();
}

}  // namespace
}  // namespace flexpipe
