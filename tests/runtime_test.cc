#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/cluster/topology.h"
#include "src/metrics/recovery.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/runtime/instance.h"
#include "src/runtime/kv_cache.h"
#include "src/runtime/router.h"
#include "src/runtime/transfer.h"

namespace flexpipe {
namespace {

// ---------- KV validity mask (Eq. 10) ----------

TEST(KvValidityMask, MarkAndCount) {
  KvValidityMask mask(100);
  EXPECT_EQ(mask.valid_count(), 0);
  mask.MarkValid(0, 60);
  EXPECT_EQ(mask.valid_count(), 60);
  EXPECT_TRUE(mask.IsValid(59));
  EXPECT_FALSE(mask.IsValid(60));
  EXPECT_EQ(mask.invalid_in(0, 100), 40);
  mask.MarkInvalid(10, 20);
  EXPECT_EQ(mask.valid_count(), 50);
  EXPECT_EQ(mask.InvalidTokens(30).size(), 10u);
}

TEST(KvValidityMask, GrowAddsInvalidTokens) {
  KvValidityMask mask(10);
  mask.MarkValid(0, 10);
  mask.Grow(20);
  EXPECT_EQ(mask.capacity(), 20);
  EXPECT_EQ(mask.valid_count(), 10);
  EXPECT_FALSE(mask.IsValid(15));
}

TEST(KvValidityMask, IdempotentMarks) {
  KvValidityMask mask(64);
  mask.MarkValid(0, 64);
  mask.MarkValid(0, 64);
  EXPECT_EQ(mask.valid_count(), 64);
}

TEST(KvValidityMask, InvalidRangeVisitorCoalescesRuns) {
  KvValidityMask mask(200);
  mask.MarkValid(0, 200);
  mask.MarkInvalid(10, 20);
  mask.MarkInvalid(63, 66);    // straddles a word boundary
  mask.MarkInvalid(190, 200);  // runs to the visited end
  std::vector<std::pair<int, int>> ranges;
  mask.ForEachInvalidRange(200, [&](int b, int e) { ranges.emplace_back(b, e); });
  EXPECT_EQ(ranges, (std::vector<std::pair<int, int>>{{10, 20}, {63, 66}, {190, 200}}));

  // Clipped visit: the trailing run must clip to `upto`.
  ranges.clear();
  mask.ForEachInvalidRange(195, [&](int b, int e) { ranges.emplace_back(b, e); });
  EXPECT_EQ(ranges.back(), (std::pair<int, int>{190, 195}));
}

TEST(KvValidityMask, WordOpsMatchNaiveBitReferenceRandomized) {
  Rng rng(818);
  for (int round = 0; round < 40; ++round) {
    int capacity = static_cast<int>(rng.UniformInt(1, 400));
    KvValidityMask mask(capacity);
    std::vector<bool> reference(static_cast<size_t>(capacity), false);
    for (int op = 0; op < 60; ++op) {
      int begin = static_cast<int>(rng.UniformInt(0, capacity));
      int end = static_cast<int>(rng.UniformInt(begin, capacity));
      bool valid = rng.Bernoulli(0.5);
      if (valid) {
        mask.MarkValid(begin, end);
      } else {
        mask.MarkInvalid(begin, end);
      }
      for (int t = begin; t < end; ++t) {
        reference[static_cast<size_t>(t)] = valid;
      }
    }
    int expected_valid = 0;
    std::vector<int> expected_invalid;
    for (int t = 0; t < capacity; ++t) {
      if (reference[static_cast<size_t>(t)]) {
        ++expected_valid;
        EXPECT_TRUE(mask.IsValid(t));
      } else {
        expected_invalid.push_back(t);
        EXPECT_FALSE(mask.IsValid(t));
      }
    }
    EXPECT_EQ(mask.valid_count(), expected_valid) << "round " << round;
    EXPECT_EQ(mask.InvalidTokens(capacity), expected_invalid) << "round " << round;
    int qb = static_cast<int>(rng.UniformInt(0, capacity));
    int qe = static_cast<int>(rng.UniformInt(qb, capacity));
    int naive = 0;
    for (int t = qb; t < qe; ++t) {
      naive += reference[static_cast<size_t>(t)] ? 0 : 1;
    }
    EXPECT_EQ(mask.invalid_in(qb, qe), naive) << "round " << round;

    // Visitor ranges must tile exactly the invalid token set, in order.
    std::vector<int> visited;
    mask.ForEachInvalidRange(capacity, [&](int b, int e) {
      EXPECT_LT(b, e);
      EXPECT_TRUE(visited.empty() || visited.back() < b - 1);  // maximal runs only
      for (int t = b; t < e; ++t) {
        visited.push_back(t);
      }
    });
    EXPECT_EQ(visited, expected_invalid) << "round " << round;
  }
}

// ---------- KV tracker ----------

TEST(KvTracker, BudgetEnforcement) {
  KvTracker kv(4, /*per_stage_budget=*/1000, /*per_token_per_stage=*/10);
  EXPECT_TRUE(kv.Fits(100));
  kv.Admit(1, 60);
  EXPECT_EQ(kv.used_per_stage(), 600);
  EXPECT_TRUE(kv.Fits(40));
  EXPECT_FALSE(kv.Fits(41));
  kv.Admit(2, 40);
  EXPECT_FALSE(kv.Fits(1));
  kv.Remove(1);
  EXPECT_TRUE(kv.Fits(60));
  EXPECT_EQ(kv.resident_requests(), 1);
}

TEST(KvTracker, BytesAccounting) {
  KvTracker kv(8, 10000, 5);
  kv.Admit(7, 100);
  EXPECT_EQ(kv.RequestBytes(7), 100 * 5 * 8);
  EXPECT_EQ(kv.TotalBytes(), 100 * 5 * 8);
  EXPECT_EQ(kv.BytesForTokens(10), 10 * 5 * 8);
  EXPECT_EQ(kv.RequestBytes(999), 0);
}

// ---------- Transfer engine ----------

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() : cluster_(EvalClusterConfig()), network_(&cluster_, NetworkConfig{}) {}
  Simulation sim_;
  Cluster cluster_;
  NetworkModel network_;
};

TEST_F(TransferTest, AsyncCompletionWithFlowAccounting) {
  TransferEngine engine(&sim_, &network_);
  GpuId a = 0;
  GpuId b = cluster_.gpu_count() - 1;
  LinkTier tier = network_.TierBetween(a, b);
  bool done = false;
  TimeNs reported = 0;
  engine.Transfer(a, b, GiB(1), TransferProtocol::kRdma, [&](TimeNs d) {
    done = true;
    reported = d;
  });
  EXPECT_EQ(network_.active_flows(tier), 1);
  sim_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_GT(reported, 0);
  EXPECT_EQ(network_.active_flows(tier), 0);
  EXPECT_EQ(engine.completed_transfers(), 1);
  EXPECT_EQ(engine.bytes_moved(), GiB(1));
}

TEST_F(TransferTest, NcclSetupDominatesSmallTransfers) {
  TransferEngine engine(&sim_, &network_);
  GpuId a = 0;
  GpuId b = cluster_.gpu_count() - 1;
  TimeNs rdma = engine.Estimate(a, b, MiB(1), TransferProtocol::kRdma);
  TimeNs nccl = engine.Estimate(a, b, MiB(1), TransferProtocol::kNcclStyle);
  EXPECT_GT(nccl, rdma * 50);  // why §8 avoids NCCL for KV migration
}

// ---------- Pipeline instance ----------

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest()
      : cluster_(EvalClusterConfig()),
        network_(&cluster_, NetworkConfig{}) {
    Profiler profiler(&cost_, Profiler::Config{});
    ComputationGraph graph = ComputationGraph::Build(Llama2_7B());
    profile_ = profiler.Profile(graph);
  }

  PipelinePlan MakePlan(int stages) {
    Partitioner partitioner;
    return partitioner.Partition(profile_, stages);
  }

  std::vector<GpuId> PickGpus(int n) {
    std::vector<GpuId> out;
    for (GpuId id = 0; id < n; ++id) {
      out.push_back(id);
    }
    return out;
  }

  std::unique_ptr<PipelineInstance> MakeActiveInstance(int stages,
                                                       InstanceConfig config = InstanceConfig{}) {
    auto inst = std::make_unique<PipelineInstance>(&sim_, 1, MakePlan(stages), PickGpus(stages),
                                                   &cost_, &network_, config);
    inst->BeginLoading({});
    sim_.RunUntil(inst->load_finish_time() + kMillisecond);
    return inst;
  }

  Request MakeRequest(RequestId id, int prompt, int output, int model_index = 0) {
    Request r;
    r.spec.id = id;
    r.spec.arrival = sim_.now();
    r.spec.model_index = model_index;
    r.spec.prompt_tokens = prompt;
    r.spec.output_tokens = output;
    return r;
  }

  Simulation sim_;
  Cluster cluster_;
  NetworkModel network_;
  CostModel cost_;
  ModelProfile profile_;
};

TEST_F(InstanceTest, LoadsThenActivates) {
  auto inst = std::make_unique<PipelineInstance>(&sim_, 1, MakePlan(4), PickGpus(4), &cost_,
                                                 &network_, InstanceConfig{});
  EXPECT_EQ(inst->state(), InstanceState::kLoading);
  inst->BeginLoading({});
  EXPECT_GT(inst->load_finish_time(), sim_.now());
  sim_.RunUntilIdle();
  EXPECT_EQ(inst->state(), InstanceState::kActive);
}

TEST_F(InstanceTest, WarmLoadActivatesFaster) {
  auto cold = std::make_unique<PipelineInstance>(&sim_, 1, MakePlan(4), PickGpus(4), &cost_,
                                                 &network_, InstanceConfig{});
  auto warm = std::make_unique<PipelineInstance>(&sim_, 2, MakePlan(4), PickGpus(4), &cost_,
                                                 &network_, InstanceConfig{});
  cold->BeginLoading({});
  warm->BeginLoading({true, true, true, true});
  EXPECT_LT(warm->load_finish_time(), cold->load_finish_time());
}

TEST_F(InstanceTest, CompletesRequestWithExactTokens) {
  auto inst = MakeActiveInstance(4);
  Request r = MakeRequest(1, 128, 8);
  ASSERT_TRUE(inst->CanAdmit(r));
  inst->Admit(&r);
  sim_.RunUntilIdle();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.tokens_generated, 8);
  EXPECT_GE(r.first_token_time, 0);
  EXPECT_GT(r.done_time, r.first_token_time);
  EXPECT_GT(r.exec_ns, 0);
  EXPECT_GT(r.comm_ns, 0);
  EXPECT_EQ(inst->stats().requests_completed, 1);
  EXPECT_EQ(inst->inflight(), 0);
}

TEST_F(InstanceTest, SingleTokenRequestCompletesAtPrefill) {
  auto inst = MakeActiveInstance(4);
  Request r = MakeRequest(1, 64, 1);
  inst->Admit(&r);
  sim_.RunUntilIdle();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.tokens_generated, 1);
  EXPECT_EQ(r.first_token_time, r.done_time);
}

TEST_F(InstanceTest, CompletionCallbackFires) {
  auto inst = MakeActiveInstance(2);
  int completions = 0;
  inst->set_completion_callback([&](Request*) { ++completions; });
  Request a = MakeRequest(1, 32, 4);
  Request b = MakeRequest(2, 32, 4);
  inst->Admit(&a);
  inst->Admit(&b);
  sim_.RunUntilIdle();
  EXPECT_EQ(completions, 2);
}

TEST_F(InstanceTest, CapacityIs32PerStage) {
  auto inst = MakeActiveInstance(4);
  EXPECT_EQ(inst->capacity(), 128);
  InstanceConfig sequential;
  sequential.pipelined = false;
  auto seq = MakeActiveInstance(4, sequential);
  EXPECT_EQ(seq->capacity(), 32);
}

TEST_F(InstanceTest, PipelinedBeatsSequentialThroughput) {
  auto piped = MakeActiveInstance(4);
  InstanceConfig seq_config;
  seq_config.pipelined = false;
  auto seq = MakeActiveInstance(4, seq_config);

  auto run = [&](PipelineInstance& inst) {
    std::vector<Request> reqs;
    reqs.reserve(32);
    for (int i = 0; i < 32; ++i) {
      reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 64, 16));
    }
    TimeNs start = sim_.now();
    for (auto& r : reqs) {
      inst.Admit(&r);
    }
    sim_.RunUntilIdle();
    TimeNs worst = 0;
    for (auto& r : reqs) {
      EXPECT_TRUE(r.done());
      worst = std::max(worst, r.done_time);
    }
    return worst - start;
  };
  TimeNs t_piped = run(*piped);
  TimeNs t_seq = run(*seq);
  EXPECT_LT(t_piped, t_seq);  // pipelining overlaps microbatch waves
}

TEST_F(InstanceTest, RefusesWhenFull) {
  InstanceConfig config;
  config.per_group_capacity = 1;  // tiny instance: capacity 2 at 2 stages
  auto inst = MakeActiveInstance(2, config);
  Request a = MakeRequest(1, 32, 64);
  Request b = MakeRequest(2, 32, 64);
  Request c = MakeRequest(3, 32, 64);
  inst->Admit(&a);
  inst->Admit(&b);
  EXPECT_FALSE(inst->CanAdmit(c));
}

TEST_F(InstanceTest, DrainCompletesInFlight) {
  auto inst = MakeActiveInstance(4);
  Request r = MakeRequest(1, 64, 12);
  inst->Admit(&r);
  sim_.Schedule(kMillisecond, [&] {
    inst->StartDraining([] {});
  });
  sim_.RunUntilIdle();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.tokens_generated, 12);
}

TEST_F(InstanceTest, CloseAdmissionsStopsNewWork) {
  auto inst = MakeActiveInstance(4);
  inst->CloseAdmissions();
  Request r = MakeRequest(1, 32, 4);
  EXPECT_FALSE(inst->CanAdmit(r));
}

TEST_F(InstanceTest, HaltExtractsDecodingWithProgress) {
  auto inst = MakeActiveInstance(4);
  Request r = MakeRequest(1, 64, 5000);
  inst->Admit(&r);
  // Let it decode for a while, then halt.
  sim_.RunUntil(sim_.now() + 3 * kSecond);
  ASSERT_EQ(r.phase, RequestPhase::kDecoding);
  int tokens_before = r.tokens_generated;
  EXPECT_GT(tokens_before, 0);

  std::vector<Request*> extracted;
  inst->HaltAndExtract([&](std::vector<Request*> out) { extracted = std::move(out); });
  sim_.RunUntilIdle();
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(extracted[0], &r);
  EXPECT_EQ(r.phase, RequestPhase::kDecoding);
  EXPECT_GE(r.tokens_generated, tokens_before);
  EXPECT_EQ(inst->inflight(), 0);
  EXPECT_EQ(inst->KvBytesTotal(), 0);
}

TEST_F(InstanceTest, InjectDecodingResumesProgress) {
  auto a = MakeActiveInstance(4);
  auto b = MakeActiveInstance(8);
  Request r = MakeRequest(1, 64, 800);
  a->Admit(&r);
  sim_.RunUntil(sim_.now() + 2 * kSecond);
  std::vector<Request*> moved;
  a->HaltAndExtract([&](std::vector<Request*> out) { moved = std::move(out); });
  sim_.RunUntilIdle();
  ASSERT_EQ(moved.size(), 1u);
  int progress = r.tokens_generated;
  ASSERT_GT(progress, 0);
  ASSERT_LT(progress, 800);
  b->InjectDecoding(&r);
  sim_.RunUntilIdle();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.tokens_generated, 800);
}

TEST_F(InstanceTest, StallAccumulatesUnderOverload) {
  auto inst = MakeActiveInstance(8);
  std::vector<Request> reqs;
  reqs.reserve(200);
  for (int i = 0; i < 200; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 256, 24));
  }
  for (auto& r : reqs) {
    if (inst->CanAdmit(r)) {
      inst->Admit(&r);
    }
  }
  sim_.RunUntilIdle();
  EXPECT_GT(inst->TotalBusy(), 0);
  EXPECT_GT(inst->TotalStall(), 0);  // comm gaps between waves are pipeline bubbles
  EXPECT_GT(inst->MeanStageUtilization(), 0.0);
  EXPECT_LE(inst->MeanStageUtilization(), 1.0);
}

TEST_F(InstanceTest, EstimatesAreMonotone) {
  auto fine = MakeActiveInstance(8);
  auto coarse = MakeActiveInstance(2);
  // Finer pipelines traverse more hops: higher token latency.
  EXPECT_GT(fine->EstimateTraversal(8), coarse->EstimateTraversal(8));
  // Bigger batches never reduce traversal time.
  EXPECT_GE(fine->EstimateTraversal(32), fine->EstimateTraversal(1));
  EXPECT_GT(fine->EstimateCadence(8), 0);
}

// ---------- Router ----------

TEST_F(InstanceTest, RouterDispatchesToLeastLoaded) {
  auto a = MakeActiveInstance(4);
  auto b = MakeActiveInstance(4);
  Router router(&sim_);
  router.RegisterInstance(a.get());
  router.RegisterInstance(b.get());
  a->set_pump_callback([&] { router.Pump(); });
  b->set_pump_callback([&] { router.Pump(); });

  std::vector<Request> reqs;
  reqs.reserve(40);
  for (int i = 0; i < 40; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 64, 12));
  }
  for (auto& r : reqs) {
    router.Submit(&r);
  }
  EXPECT_GT(a->inflight() + a->pending(), 0);
  EXPECT_GT(b->inflight() + b->pending(), 0);
  sim_.RunUntilIdle();
  for (auto& r : reqs) {
    EXPECT_TRUE(r.done());
  }
  EXPECT_EQ(router.total_submitted(), 40);
}

TEST_F(InstanceTest, RouterQueuesWhenSaturated) {
  InstanceConfig tiny;
  tiny.per_group_capacity = 1;
  auto a = MakeActiveInstance(2, tiny);
  Router router(&sim_);
  router.RegisterInstance(a.get());
  std::vector<Request> reqs;
  reqs.reserve(10);
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 32, 50));
  }
  for (auto& r : reqs) {
    router.Submit(&r);
  }
  EXPECT_GT(router.queue_length(), 0);
  EXPECT_GE(router.max_queue_length(), router.queue_length());
}

TEST_F(InstanceTest, RouterRequeueFrontPreservesOrder) {
  Router router(&sim_);
  Request a = MakeRequest(1, 32, 4);
  Request b = MakeRequest(2, 32, 4);
  Request c = MakeRequest(3, 32, 4);
  router.Submit(&c);  // no instances: it queues
  router.RequeueFront({&a, &b});
  EXPECT_EQ(router.queue_length(), 3);
  // Dispatch order after requeue should be a, b, c — verified by draining through an
  // instance with capacity 1 group and checking first_exec ordering.
  auto inst = MakeActiveInstance(2);
  inst->set_pump_callback([&] { router.Pump(); });
  router.RegisterInstance(inst.get());
  sim_.RunUntilIdle();
  EXPECT_TRUE(a.done() && b.done() && c.done());
  EXPECT_LE(a.first_exec_start, b.first_exec_start);
  EXPECT_LE(b.first_exec_start, c.first_exec_start);
}

TEST_F(InstanceTest, RouterDeregisterPumpsQueue) {
  // Regression: DeregisterInstance must re-dispatch the queue immediately. Here the
  // queue is stuck from a stale state (B activated without a pump hook); removing A
  // must pump the queued work onto B instead of leaving it to the next Submit.
  InstanceConfig tiny;
  tiny.per_group_capacity = 1;
  auto a = MakeActiveInstance(2, tiny);  // capacity 2
  auto b = std::make_unique<PipelineInstance>(&sim_, 2, MakePlan(2), PickGpus(2), &cost_,
                                              &network_, InstanceConfig{});
  Router router(&sim_);
  router.RegisterInstance(a.get());
  router.RegisterInstance(b.get());  // still loading: not a dispatch target yet

  std::vector<Request> reqs;
  reqs.reserve(5);
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 32, 2000));
  }
  for (auto& r : reqs) {
    router.Submit(&r);
  }
  EXPECT_EQ(router.queue_length(), 3);  // A holds 2, the rest wait

  // B activates, but nothing pumps (no activation hook wired in this harness).
  b->BeginLoading({});
  sim_.RunUntil(b->load_finish_time() + kMillisecond);
  ASSERT_EQ(b->state(), InstanceState::kActive);
  EXPECT_EQ(router.queue_length(), 3);

  router.DeregisterInstance(a->id());
  EXPECT_EQ(router.queue_length(), 0) << "deregister did not pump the queue";
  EXPECT_GT(b->inflight() + b->pending(), 0);
}

TEST_F(InstanceTest, RouterIsolatesModels) {
  // Per-model routing: a model-0 request must never land on a model-1 instance.
  InstanceConfig model0_config;
  model0_config.model_id = 0;
  InstanceConfig model1_config;
  model1_config.model_id = 1;
  auto a = MakeActiveInstance(4, model0_config);
  auto b = MakeActiveInstance(4, model1_config);
  Router router(&sim_);
  router.RegisterInstance(a.get());
  router.RegisterInstance(b.get());
  a->set_pump_callback([&] { router.Pump(); });
  b->set_pump_callback([&] { router.Pump(); });

  std::vector<Request> reqs;
  reqs.reserve(30);
  for (int i = 0; i < 30; ++i) {
    reqs.push_back(MakeRequest(static_cast<RequestId>(i + 1), 64, 8, /*model_index=*/i % 3));
  }
  for (auto& r : reqs) {
    router.Submit(&r);
  }
  // Model 2 has no instance: its requests stay queued even though capacity exists.
  EXPECT_EQ(router.queue_length_for(2), 10);
  EXPECT_EQ(router.queue_length(), 10);
  sim_.RunUntilIdle();
  EXPECT_EQ(a->stats().requests_completed, 10);  // exactly the model-0 stream
  EXPECT_EQ(b->stats().requests_completed, 10);  // exactly the model-1 stream
  for (const auto& r : reqs) {
    if (r.spec.model_index == 2) {
      EXPECT_FALSE(r.done());
    } else {
      EXPECT_TRUE(r.done());
    }
  }
  EXPECT_EQ(router.OutstandingForModel(2), 10);
  EXPECT_EQ(router.OutstandingForModel(0), 0);
}

// ---------- Recovery analysis ----------

TEST(Recovery, DetectsStallEpisode) {
  std::vector<CompletionSample> series;
  // 100 normal completions at 1 s latency, then a stall burst at 3 s, then recovery.
  TimeNs t = 0;
  for (int i = 0; i < 100; ++i) {
    t += 100 * kMillisecond;
    series.push_back({t, 1 * kSecond});
  }
  TimeNs stall_start = t + 100 * kMillisecond;
  for (int i = 0; i < 10; ++i) {
    t += 100 * kMillisecond;
    series.push_back({t, 3 * kSecond});
  }
  t += 100 * kMillisecond;
  series.push_back({t, 1 * kSecond});  // recovery event
  TimeNs recovery_at = t;
  for (int i = 0; i < 50; ++i) {
    t += 100 * kMillisecond;
    series.push_back({t, 1 * kSecond});
  }
  RecoveryReport report = AnalyzeRecovery(series);
  EXPECT_EQ(report.stall_events, 1);
  EXPECT_NEAR(report.baseline_latency_s, 1.0, 0.01);
  EXPECT_NEAR(report.median_recovery_s, ToSeconds(recovery_at - stall_start), 0.05);
}

TEST(Recovery, NoStallsOnFlatSeries) {
  std::vector<CompletionSample> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back({static_cast<TimeNs>(i) * kSecond, 500 * kMillisecond});
  }
  RecoveryReport report = AnalyzeRecovery(series);
  EXPECT_EQ(report.stall_events, 0);
  EXPECT_EQ(report.stalled_fraction, 0.0);
}

}  // namespace
}  // namespace flexpipe
