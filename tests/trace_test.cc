#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/trace/arrival.h"
#include "src/trace/azure_trace.h"
#include "src/trace/cv_analysis.h"
#include "src/trace/streaming.h"
#include "src/trace/workload.h"

namespace flexpipe {
namespace {

double MeasuredInterarrivalCv(ArrivalProcess& process, Rng& rng, int n) {
  RunningStats s;
  for (int i = 0; i < n; ++i) {
    s.Add(ToSeconds(process.NextGap(rng)));
  }
  return s.cv();
}

TEST(Arrivals, PoissonHasUnitCvAndTargetRate) {
  PoissonArrivals p(20.0);
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(ToSeconds(p.NextGap(rng)));
  }
  EXPECT_NEAR(s.cv(), 1.0, 0.05);
  EXPECT_NEAR(1.0 / s.mean(), 20.0, 1.0);
}

class GammaCvTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaCvTest, HitsTargetCv) {
  double cv = GetParam();
  GammaArrivals g(20.0, cv);
  Rng rng(2);
  double measured = MeasuredInterarrivalCv(g, rng, 60000);
  EXPECT_NEAR(measured, cv, cv * 0.1) << "target cv " << cv;
  EXPECT_DOUBLE_EQ(g.MeanRate(), 20.0);
}

INSTANTIATE_TEST_SUITE_P(CvSweep, GammaCvTest, ::testing::Values(0.1, 0.5, 1.0, 2.0, 4.0, 8.0));

TEST(Arrivals, MmppIsBurstier) {
  MmppArrivals::Config config;
  MmppArrivals m(config);
  Rng rng(3);
  double measured = MeasuredInterarrivalCv(m, rng, 60000);
  EXPECT_GT(measured, 1.3);  // correlated bursts exceed Poisson variability
  EXPECT_GT(m.MeanRate(), config.low_rate);
  EXPECT_LT(m.MeanRate(), config.high_rate);
}

TEST(Arrivals, TraceReplayReproducesTimestamps) {
  std::vector<TimeNs> ts{10, 20, 50, 50, 90};
  TraceReplayArrivals replay(ts);
  Rng rng(4);
  TimeNs t = 0;
  std::vector<TimeNs> got;
  for (size_t i = 0; i < ts.size(); ++i) {
    t += replay.NextGap(rng);
    got.push_back(t);
  }
  // Equal timestamps are separated by the 1ns clamp.
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[1], 20);
  EXPECT_EQ(got[2], 50);
  EXPECT_EQ(got[3], 51);
  EXPECT_TRUE(replay.exhausted());
}

TEST(Arrivals, TraceReplayReportsExhaustionInsteadOfAborting) {
  TraceReplayArrivals replay({5, 15});
  Rng rng(4);
  TimeNs gap = 0;
  EXPECT_TRUE(replay.TryNextGap(rng, &gap));
  EXPECT_EQ(gap, 5);
  EXPECT_TRUE(replay.TryNextGap(rng, &gap));
  EXPECT_EQ(gap, 10);
  // Past the last timestamp: TryNextGap reports end-of-trace and leaves `gap` alone.
  EXPECT_FALSE(replay.TryNextGap(rng, &gap));
  EXPECT_EQ(gap, 10);
  EXPECT_TRUE(replay.exhausted());
  EXPECT_FALSE(replay.TryNextGap(rng, &gap));  // stays exhausted
}

TEST(Arrivals, GeneratorsStopEarlyOnFiniteProcess) {
  // The trace ends long before `end`/`n`; both generators must return what the
  // trace held rather than CHECK-failing on the draw past the end.
  Rng rng(4);
  TraceReplayArrivals until({10, 20, 30});
  EXPECT_EQ(until.GenerateUntil(rng, /*end=*/1 * kSecond),
            (std::vector<TimeNs>{10, 20, 30}));
  TraceReplayArrivals counted({10, 20, 30});
  EXPECT_EQ(counted.GenerateArrivals(rng, /*n=*/100),
            (std::vector<TimeNs>{10, 20, 30}));
}

TEST(StreamingWorkload, TraceBackedStreamDrainsGracefully) {
  // A replay-backed stream whose trace exhausts before `end` must terminate the
  // stream (and stay terminated) instead of aborting the run.
  const TimeNs kEnd = 10 * kSecond;
  auto replay = std::make_unique<TraceReplayArrivals>(
      std::vector<TimeNs>{1 * kSecond, 2 * kSecond, 3 * kSecond});
  StreamingWorkloadSource stream(WorkloadGenerator::Config{}, std::move(replay),
                                 /*arrival_rng=*/Rng(11),
                                 /*length_rng=*/Rng(11).Child("lengths"), kEnd);
  std::vector<TimeNs> arrivals;
  RequestSpec spec;
  while (stream.Next(&spec)) {
    arrivals.push_back(spec.arrival);
  }
  EXPECT_EQ(arrivals, (std::vector<TimeNs>{1 * kSecond, 2 * kSecond, 3 * kSecond}));
  EXPECT_FALSE(stream.Next(&spec));
}

TEST(Arrivals, FactorySelectsProcess) {
  auto poisson = MakeArrivalsWithCv(10.0, 1.0);
  auto gamma = MakeArrivalsWithCv(10.0, 4.0);
  EXPECT_NE(dynamic_cast<PoissonArrivals*>(poisson.get()), nullptr);
  EXPECT_NE(dynamic_cast<GammaArrivals*>(gamma.get()), nullptr);
}

TEST(Workload, GeneratesOrderedSpecsWithLengths) {
  WorkloadGenerator gen;
  Rng rng(5);
  auto specs = gen.GenerateWithCv(rng, 10.0, 2.0, 30 * kSecond);
  ASSERT_GT(specs.size(), 100u);
  TimeNs prev = 0;
  for (const auto& s : specs) {
    EXPECT_GE(s.arrival, prev);
    prev = s.arrival;
    EXPECT_GE(s.prompt_tokens, 1);
    EXPECT_LE(s.prompt_tokens, 4096);
    EXPECT_GE(s.output_tokens, 1);
    EXPECT_LE(s.output_tokens, 1024);
  }
  EXPECT_EQ(specs.front().id, 1u);
}

TEST(Workload, MergePreservesOrderAndRenumbers) {
  WorkloadGenerator gen;
  Rng rng(6);
  auto a = gen.GenerateWithCv(rng, 5.0, 1.0, 10 * kSecond);
  auto b = gen.GenerateWithCv(rng, 5.0, 1.0, 10 * kSecond);
  for (auto& s : b) {
    s.model_index = 1;
  }
  auto merged = MergeWorkloads({a, b});
  EXPECT_EQ(merged.size(), a.size() + b.size());
  TimeNs prev = 0;
  RequestId id = 1;
  for (const auto& s : merged) {
    EXPECT_GE(s.arrival, prev);
    prev = s.arrival;
    EXPECT_EQ(s.id, id++);
  }
}

TEST(LengthSampler, RespectsClamps) {
  LengthSampler::Config config;
  config.prompt_max = 512;
  config.output_max = 64;
  LengthSampler sampler(config);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(sampler.SamplePromptTokens(rng), 512);
    EXPECT_LE(sampler.SampleOutputTokens(rng), 64);
    EXPECT_GE(sampler.SamplePromptTokens(rng), 1);
  }
}

TEST(CvAnalysis, BinCountsPartitionArrivals) {
  std::vector<TimeNs> arrivals{1 * kSecond, 2 * kSecond, 11 * kSecond, 25 * kSecond};
  auto counts = BinCounts(arrivals, 10 * kSecond, 0, 30 * kSecond);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
}

TEST(CvAnalysis, UniformTrafficHasLowCv) {
  std::vector<TimeNs> arrivals;
  for (int i = 0; i < 3600; ++i) {
    arrivals.push_back(static_cast<TimeNs>(i) * kSecond);
  }
  double cv = WindowedCountCv(arrivals, 60 * kSecond, 0, 3600 * kSecond);
  EXPECT_LT(cv, 0.05);
}

TEST(AzureTrace, ShortWindowCvExceedsLongWindowCv) {
  AzureTraceSynthesizer::Config config;
  config.days = 3;
  config.base_rate = 10.0;
  AzureTraceSynthesizer synth(config);
  auto arrivals = synth.GenerateArrivals();
  ASSERT_GT(arrivals.size(), 100000u);

  auto reports = AnalyzeDailyCv(arrivals, config.days);
  ASSERT_EQ(reports.size(), 3u);
  double ratio_sum = 0;
  for (const auto& r : reports) {
    EXPECT_GT(r.cv_180s, 0.0);
    EXPECT_GT(r.cv_180s, r.cv_12h) << "short windows must look burstier";
    ratio_sum += r.cv_180s / std::max(r.cv_12h, 1e-6);
  }
  // Fig. 1's headline: multi-x disagreement between window sizes.
  EXPECT_GT(ratio_sum / 3.0, 2.0);
}

TEST(AzureTrace, RateProfileCoversSpanAndStaysPositive) {
  AzureTraceSynthesizer::Config config;
  config.days = 1;
  AzureTraceSynthesizer synth(config);
  auto profile = synth.RateProfile();
  EXPECT_EQ(profile.size(), 86400u);
  for (double r : profile) {
    EXPECT_GE(r, 0.0);
  }
}

// ---------- Streaming sources ----------

// Core contract of the streaming tentpole: lazily drawn arrivals are bit-identical to
// the materialized GenerateUntil sequence for the same seed — one gap draw per
// arrival, same order, same final discarded draw — across every arrival process.
TEST(StreamingWorkload, ArrivalsBitIdenticalToMaterializedAcrossProcesses) {
  struct Case {
    const char* name;
    std::function<std::unique_ptr<ArrivalProcess>()> make;
  };
  MmppArrivals::Config mmpp;
  mmpp.low_rate = 4.0;
  mmpp.high_rate = 120.0;
  mmpp.mean_low_sojourn_s = 7;
  mmpp.mean_high_sojourn_s = 2;
  std::vector<Case> cases;
  cases.push_back({"poisson", [] { return std::make_unique<PoissonArrivals>(25.0); }});
  cases.push_back({"gamma", [] { return std::make_unique<GammaArrivals>(25.0, 6.0); }});
  cases.push_back(
      {"mmpp", [mmpp] { return std::make_unique<MmppArrivals>(mmpp); }});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    for (uint64_t seed : {3ull, 42ull, 977ull}) {
      constexpr TimeNs kEnd = 120 * kSecond;
      auto materialized_process = c.make();
      Rng materialized_rng(seed);
      std::vector<TimeNs> materialized =
          materialized_process->GenerateUntil(materialized_rng, kEnd);
      ASSERT_GT(materialized.size(), 100u);

      StreamingWorkloadSource stream(WorkloadGenerator::Config{}, c.make(),
                                     /*arrival_rng=*/Rng(seed),
                                     /*length_rng=*/Rng(seed).Child("lengths"), kEnd);
      std::vector<TimeNs> streamed;
      RequestSpec spec;
      while (stream.Next(&spec)) {
        streamed.push_back(spec.arrival);
        EXPECT_EQ(spec.id, streamed.size());
        EXPECT_GE(spec.prompt_tokens, 1);
        EXPECT_GE(spec.output_tokens, 1);
      }
      EXPECT_FALSE(stream.Next(&spec));  // stays exhausted
      ASSERT_EQ(streamed.size(), materialized.size()) << "seed " << seed;
      for (size_t i = 0; i < streamed.size(); ++i) {
        ASSERT_EQ(streamed[i], materialized[i]) << "seed " << seed << " index " << i;
      }
      EXPECT_EQ(stream.emitted(), streamed.size());
    }
  }
}

// The convenience factory must select the same process shapes as MakeArrivalsWithCv
// and reproduce GenerateWithCv's arrivals from the same base RNG.
TEST(StreamingWorkload, WithCvMatchesGenerateWithCvArrivals) {
  for (double cv : {1.0, 4.0}) {
    WorkloadGenerator::Config config;
    config.slo = 10 * kSecond;
    WorkloadGenerator gen(config);
    Rng rng(Rng(42).Child("workload").seed());
    auto specs = gen.GenerateWithCv(rng, 20.0, cv, 60 * kSecond);

    StreamingWorkloadSource stream = StreamingWorkloadSource::WithCv(
        config, 20.0, cv, 60 * kSecond, Rng(Rng(42).Child("workload").seed()));
    RequestSpec spec;
    size_t i = 0;
    while (stream.Next(&spec)) {
      ASSERT_LT(i, specs.size()) << "cv " << cv;
      EXPECT_EQ(spec.arrival, specs[i].arrival) << "cv " << cv << " index " << i;
      EXPECT_EQ(spec.id, specs[i].id);
      EXPECT_EQ(spec.slo, specs[i].slo);
      ++i;
    }
    EXPECT_EQ(i, specs.size());
  }
}

// Merged per-model streams must reproduce MergeWorkloads' order exactly: stable by
// arrival with ties broken toward the earlier part, ids renumbered densely.
TEST(StreamingWorkload, MergedStreamMatchesMergeWorkloads) {
  constexpr TimeNs kEnd = 45 * kSecond;
  std::vector<std::vector<RequestSpec>> parts;
  std::vector<std::unique_ptr<RequestStream>> streams;
  const uint64_t seeds[] = {11, 22, 33};
  const double rates[] = {8.0, 12.0, 5.0};
  for (int m = 0; m < 3; ++m) {
    WorkloadGenerator::Config config;
    config.model_index = m;
    WorkloadGenerator gen(config);
    Rng rng(seeds[m]);
    auto arrivals = MakeArrivalsWithCv(rates[m], 2.0);
    parts.push_back(gen.GenerateUntil(*arrivals, rng, kEnd));
    streams.push_back(std::make_unique<StreamingWorkloadSource>(
        config, MakeArrivalsWithCv(rates[m], 2.0), Rng(seeds[m]),
        Rng(seeds[m]).Child("lengths"), kEnd));
  }
  auto merged = MergeWorkloads(std::move(parts));
  MergedRequestStream stream(std::move(streams));
  EXPECT_EQ(stream.end_time(), kEnd);

  RequestSpec spec;
  size_t i = 0;
  while (stream.Next(&spec)) {
    ASSERT_LT(i, merged.size());
    EXPECT_EQ(spec.arrival, merged[i].arrival) << "index " << i;
    EXPECT_EQ(spec.model_index, merged[i].model_index) << "index " << i;
    EXPECT_EQ(spec.id, merged[i].id) << "index " << i;
    ++i;
  }
  EXPECT_EQ(i, merged.size());
}

}  // namespace
}  // namespace flexpipe
