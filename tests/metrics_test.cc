#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/metrics/collector.h"
#include "src/runtime/request.h"

namespace flexpipe {
namespace {

Request CompletedRequest(RequestId id, TimeNs arrival, TimeNs done, int model_index = 0,
                         TimeNs slo = 0) {
  Request r;
  r.spec.id = id;
  r.spec.arrival = arrival;
  r.spec.model_index = model_index;
  r.spec.slo = slo;
  r.spec.prompt_tokens = 64;
  r.spec.output_tokens = 8;
  r.phase = RequestPhase::kDone;
  r.tokens_generated = 8;
  r.first_exec_start = arrival;
  r.first_token_time = arrival + (done - arrival) / 2;
  r.done_time = done;
  r.exec_ns = (done - arrival) / 3;
  r.comm_ns = (done - arrival) / 7;
  return r;
}

// The O(log n) prefix-sum window mean must agree with a naive scan over the series.
TEST(MetricsCollector, WindowMeanMatchesNaiveScan) {
  Rng rng(101);
  MetricsCollector collector;
  TimeNs t = 0;
  for (RequestId id = 1; id <= 4000; ++id) {
    t += FromSeconds(rng.ExponentialMean(0.05));
    TimeNs latency = FromSeconds(rng.Uniform(0.01, 4.0));
    collector.OnComplete(CompletedRequest(id, t - latency, t));
  }
  const auto& series = collector.completions();
  ASSERT_EQ(series.size(), 4000u);

  auto naive = [&](TimeNs begin, TimeNs end) {
    double sum = 0.0;
    int64_t n = 0;
    for (const CompletionSample& s : series) {
      if (s.done_time >= begin && s.done_time < end) {
        sum += ToSeconds(s.latency);
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };

  for (int i = 0; i < 200; ++i) {
    TimeNs begin = FromSeconds(rng.Uniform(0.0, ToSeconds(t)));
    TimeNs end = begin + FromSeconds(rng.Uniform(0.0, 30.0));
    EXPECT_NEAR(collector.MeanLatencyInWindowSec(begin, end), naive(begin, end), 1e-9)
        << "window [" << begin << ", " << end << ")";
  }
  // Boundary windows: empty, everything, exact sample edges.
  EXPECT_EQ(collector.MeanLatencyInWindowSec(0, 0), 0.0);
  EXPECT_NEAR(collector.MeanLatencyInWindowSec(0, t + 1), naive(0, t + 1), 1e-9);
  TimeNs edge = series[100].done_time;
  EXPECT_NEAR(collector.MeanLatencyInWindowSec(edge, edge + 1), naive(edge, edge + 1), 1e-9);
}

TEST(MetricsCollector, FlatPerModelTableMatchesCompletionsByModel) {
  MetricsCollector collector(/*default_slo=*/5 * kSecond);
  collector.ReserveModels(4);
  EXPECT_EQ(collector.ForModel(2), nullptr);  // reserved but nothing completed

  Rng rng(7);
  int64_t per_model_count[4] = {0, 0, 0, 0};
  TimeNs t = 0;
  for (RequestId id = 1; id <= 500; ++id) {
    t += FromSeconds(rng.ExponentialMean(0.1));
    int model = static_cast<int>(rng.UniformInt(0, 3));
    if (model == 2) {
      continue;  // model 2 never completes anything
    }
    collector.OnComplete(
        CompletedRequest(id, t - kSecond, t, model, /*slo=*/2 * kSecond));
    ++per_model_count[model];
  }

  EXPECT_EQ(collector.ModelsSeen(), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(collector.ForModel(2), nullptr);
  EXPECT_EQ(collector.ForModel(-1), nullptr);
  EXPECT_EQ(collector.ForModel(99), nullptr);
  int64_t total = 0;
  for (int model : {0, 1, 3}) {
    const MetricsCollector* sub = collector.ForModel(model);
    ASSERT_NE(sub, nullptr) << "model " << model;
    EXPECT_EQ(sub->completed(), per_model_count[model]);
    EXPECT_GT(sub->MeanLatencySec(), 0.0);
    total += sub->completed();
  }
  EXPECT_EQ(total, collector.completed());
}

TEST(MetricsCollector, DisabledSeriesKeepsHeadlineMetricsBounded) {
  MetricsCollector with_series(/*default_slo=*/3 * kSecond);
  MetricsCollector without_series(/*default_slo=*/3 * kSecond);
  without_series.SetKeepCompletionSeries(false);

  Rng rng(21);
  TimeNs t = 0;
  for (RequestId id = 1; id <= 300; ++id) {
    t += FromSeconds(rng.ExponentialMean(0.2));
    TimeNs latency = FromSeconds(rng.Uniform(0.5, 6.0));
    Request r = CompletedRequest(id, t - latency, t, static_cast<int>(id % 2));
    with_series.OnComplete(r);
    without_series.OnComplete(r);
  }

  EXPECT_EQ(with_series.completions().size(), 300u);
  EXPECT_TRUE(without_series.completions().empty());
  // Everything except the raw series must be identical.
  EXPECT_EQ(without_series.completed(), with_series.completed());
  EXPECT_EQ(without_series.completed_within_slo(), with_series.completed_within_slo());
  EXPECT_EQ(without_series.MeanLatencySec(), with_series.MeanLatencySec());
  EXPECT_EQ(without_series.LatencyPercentileSec(99), with_series.LatencyPercentileSec(99));
  EXPECT_EQ(without_series.MeanBreakdown().total_s, with_series.MeanBreakdown().total_s);
  const MetricsCollector* sub = without_series.ForModel(1);
  ASSERT_NE(sub, nullptr);
  EXPECT_TRUE(sub->completions().empty());  // children inherit the series mode
  EXPECT_EQ(sub->completed(), with_series.ForModel(1)->completed());
}

}  // namespace
}  // namespace flexpipe
