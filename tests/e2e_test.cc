// End-to-end smoke tests: every serving system completes a small workload on the
// simulated cluster, and FlexPipe actually refactors under a CV shift.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/baselines/alpaserve.h"
#include "src/baselines/muxserve.h"
#include "src/baselines/serverless_llm.h"
#include "src/baselines/tetris.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"

namespace flexpipe {
namespace {

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

std::vector<RequestSpec> SmallWorkload(double rate, double cv, TimeNs duration,
                                       uint64_t seed = 3) {
  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 16;
  WorkloadGenerator gen(wconfig);
  Rng rng(seed);
  return gen.GenerateWithCv(rng, rate, cv, duration);
}

TEST(EndToEnd, FlexPipeCompletesWorkload) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  std::vector<RequestSpec> specs = SmallWorkload(4.0, 1.0, 60 * kSecond);
  std::vector<Request> storage;
  RunReport report = RunWorkload(env, system, specs, storage,
                                 RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_GT(report.submitted, 100);
  // The vast majority of requests complete within the drain grace.
  EXPECT_GE(system.metrics().completed(), report.submitted * 9 / 10);
  EXPECT_GT(system.metrics().MeanLatencySec(), 0.0);
}

TEST(EndToEnd, AllBaselinesCompleteWorkload) {
  struct Case {
    const char* name;
    std::function<std::unique_ptr<ServingSystemBase>(ExperimentEnv&)> make;
  };
  std::vector<Case> cases;
  cases.push_back({"alpaserve", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     AlpaServeConfig c;
                     c.stages = 4;
                     c.target_peak_rps = 6.0;
                     return std::make_unique<AlpaServeSystem>(env.Context(), &env.ladder(0), c);
                   }});
  cases.push_back({"muxserve", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     MuxServeConfig c;
                     c.stages = 4;
                     c.target_peak_rps = 6.0;
                     return std::make_unique<MuxServeSystem>(env.Context(), &env.ladder(0), c);
                   }});
  cases.push_back({"serverlessllm",
                   [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     ServerlessLlmConfig c;
                     c.reactive.stages = 8;
                     c.reactive.min_replicas = 2;
                     return std::make_unique<ServerlessLlmSystem>(env.Context(), &env.ladder(0),
                                                                  c);
                   }});
  cases.push_back({"tetris", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     TetrisConfig c;
                     c.reactive.stages = 4;
                     c.reactive.min_replicas = 2;
                     return std::make_unique<TetrisSystem>(env.Context(), &env.ladder(0), c);
                   }});

  for (auto& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    ExperimentEnv env(SmallEnvConfig());
    std::unique_ptr<ServingSystemBase> system = test_case.make(env);
    std::vector<RequestSpec> specs = SmallWorkload(3.0, 1.0, 45 * kSecond);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, *system, specs, storage,
                                   RunOptions{.drain_grace = 180 * kSecond});
    EXPECT_GT(report.submitted, 50);
    EXPECT_GE(system->metrics().completed(), report.submitted * 8 / 10)
        << "system " << test_case.name << " completed too few";
  }
}

TEST(EndToEnd, FlexPipeRefactorsUnderBurstyTraffic) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  config.control_interval = 250 * kMillisecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  // Stable phase then a high-CV phase: the controller should move to finer stages.
  WorkloadGenerator gen;
  Rng rng(11);
  auto stable = gen.GenerateWithCv(rng, 4.0, 0.5, 40 * kSecond);
  auto bursty_raw = gen.GenerateWithCv(rng, 8.0, 6.0, 60 * kSecond);
  for (auto& spec : bursty_raw) {
    spec.arrival += 40 * kSecond;
  }
  auto specs = MergeWorkloads({stable, bursty_raw});

  std::vector<Request> storage;
  RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_GT(system.refactor_count(), 0) << "no inflight refactoring happened";
  EXPECT_GT(system.current_stages(), 4) << "granularity did not move finer under burst";
  EXPECT_GE(system.metrics().completed(), static_cast<int64_t>(specs.size()) * 8 / 10);
}

TEST(EndToEnd, IdenticallySeededRunsAreBitIdentical) {
  // The simulation.h ordering guarantee (events fire in (time, scheduling order)) makes
  // whole experiment runs reproducible: two identically-seeded runs must agree on every
  // metric bit-for-bit, not merely to within a tolerance.
  struct RunSignature {
    int64_t submitted = 0;
    int64_t completed = 0;
    uint64_t executed_events = 0;
    double mean_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_prefill_s = 0.0;
    double goodput_rate = 0.0;
    std::vector<CompletionSample> completions;
  };
  auto run_once = [] {
    ExperimentEnv env(SmallEnvConfig());
    FlexPipeConfig config;
    config.initial_stages = 4;
    config.target_peak_rps = 8.0;
    config.control_interval = 250 * kMillisecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), config);
    std::vector<RequestSpec> specs = SmallWorkload(6.0, 4.0, 60 * kSecond);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, system, specs, storage,
                                   RunOptions{.drain_grace = 120 * kSecond});
    RunSignature sig;
    sig.submitted = report.submitted;
    sig.completed = system.metrics().completed();
    sig.executed_events = env.sim().executed_events();
    sig.mean_latency_s = system.metrics().MeanLatencySec();
    sig.p99_latency_s = system.metrics().LatencyPercentileSec(99);
    sig.mean_prefill_s = system.metrics().MeanPrefillSec();
    sig.goodput_rate = system.metrics().GoodputRate(report.submitted);
    sig.completions = system.metrics().completions();
    return sig;
  };

  RunSignature a = run_once();
  RunSignature b = run_once();
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);  // bit-identical, no tolerance
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.mean_prefill_s, b.mean_prefill_s);
  EXPECT_EQ(a.goodput_rate, b.goodput_rate);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].done_time, b.completions[i].done_time) << "sample " << i;
    EXPECT_EQ(a.completions[i].latency, b.completions[i].latency) << "sample " << i;
  }
}

// ---------------------------------------------------------------------------
// Golden determinism: reduced fig9/fig13 scenarios with signatures recorded on the
// pre-arena priority_queue+unordered_map engine. The arena rewrite must preserve the
// (time, scheduling order) contract, so every metric — including the FNV-1a hash over
// each completion's (done_time, latency) pair — must stay bit-identical.
//
// Regenerate after an *intentional* behavior change (or on a toolchain whose libm
// rounds differently) with: FLEXPIPE_PRINT_GOLDEN=1 ./e2e_test
// and paste the printed literals below.
// ---------------------------------------------------------------------------

struct GoldenSignature {
  int64_t submitted = 0;
  int64_t completed = 0;
  uint64_t executed_events = 0;
  uint64_t completion_hash = 0;  // FNV-1a over (done_time, latency) in completion order
  uint64_t mean_latency_bits = 0;   // bit pattern of MeanLatencySec()
  uint64_t mean_prefill_bits = 0;   // bit pattern of MeanPrefillSec()
};

uint64_t Fnv1aMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

GoldenSignature SignatureOf(ExperimentEnv& env, const FlexPipeSystem& system,
                            const RunReport& report) {
  GoldenSignature sig;
  sig.submitted = report.submitted;
  sig.completed = system.metrics().completed();
  // Net of the periodic auditor's own events so the golden values hold verbatim in
  // FLEXPIPE_AUDIT builds too — audits are read-only, so everything else is identical.
  sig.executed_events =
      env.sim().executed_events() - static_cast<uint64_t>(report.audit_events);
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const CompletionSample& s : system.metrics().completions()) {
    hash = Fnv1aMix(hash, static_cast<uint64_t>(s.done_time));
    hash = Fnv1aMix(hash, static_cast<uint64_t>(s.latency));
  }
  sig.completion_hash = hash;
  sig.mean_latency_bits = DoubleBits(system.metrics().MeanLatencySec());
  sig.mean_prefill_bits = DoubleBits(system.metrics().MeanPrefillSec());
  return sig;
}

void CheckGolden(const char* name, const GoldenSignature& actual,
                 const GoldenSignature& golden) {
  if (std::getenv("FLEXPIPE_PRINT_GOLDEN") != nullptr) {
    std::printf("golden %s = {%" PRId64 ", %" PRId64 ", %" PRIu64 "ull, %" PRIu64
                "ull, %" PRIu64 "ull, %" PRIu64 "ull};\n",
                name, actual.submitted, actual.completed, actual.executed_events,
                actual.completion_hash, actual.mean_latency_bits, actual.mean_prefill_bits);
    return;
  }
  EXPECT_EQ(actual.submitted, golden.submitted) << name;
  EXPECT_EQ(actual.completed, golden.completed) << name;
  EXPECT_EQ(actual.executed_events, golden.executed_events) << name;
  EXPECT_EQ(actual.completion_hash, golden.completion_hash) << name;
  EXPECT_EQ(actual.mean_latency_bits, golden.mean_latency_bits) << name;
  EXPECT_EQ(actual.mean_prefill_bits, golden.mean_prefill_bits) << name;
}

// Mirrors bench/common.h's DefaultWorkloadConfig (§9 Splitwise-like lengths).
WorkloadGenerator::Config BenchWorkloadConfig() {
  WorkloadGenerator::Config config;
  config.slo = 10 * kSecond;
  config.lengths.prompt_median = 512;
  config.lengths.prompt_sigma = 0.9;
  config.lengths.prompt_max = 4096;
  config.lengths.output_median = 24;
  config.lengths.output_sigma = 0.7;
  config.lengths.output_max = 256;
  return config;
}

TEST(EngineGolden, Fig9ScenarioIsBitIdentical) {
  // The FlexPipe cell of fig9 (CV=8 burst absorption, OPT-66B on the 82-GPU eval
  // cluster) at one fifth of the bench duration.
  ExperimentEnvConfig env_config;  // defaults: OPT-66B, eval cluster, seed 42
  ExperimentEnv env(env_config);
  FlexPipeConfig config;
  config.initial_stages = env.ladder(0).coarsest();
  config.target_peak_rps = 20.0;
  config.default_slo = 10 * kSecond;
  config.scaling.reclaim_idle = 45 * kSecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator gen(BenchWorkloadConfig());
  Rng rng(Rng(42).Child("workload").seed());
  auto specs = gen.GenerateWithCv(rng, 20.0, 8.0, 60 * kSecond);
  std::vector<Request> storage;
  RunReport report = RunWorkload(
      env, system, specs, storage,
      RunOptions{.drain_grace = 60 * kSecond, .warmup = 90 * kSecond});

  const GoldenSignature kFig9Golden = {1373, 1373, 6998ull, 15106322800334033574ull,
                                       4617917881311703691ull, 4611023934549111266ull};
  CheckGolden("kFig9Golden", SignatureOf(env, system, report), kFig9Golden);
}

TEST(EngineGolden, Fig13ScenarioIsBitIdentical) {
  // The OPT-66B FlexPipe cell of fig13 sequential mode (production-like CV=2 trace,
  // env seed kSeed + model index 3) at one quarter of the bench duration.
  ExperimentEnvConfig env_config;
  env_config.seed = 45;
  ExperimentEnv env(env_config);
  FlexPipeConfig config;
  config.initial_stages = env.ladder(0).coarsest();
  config.target_peak_rps = 10.0;
  config.default_slo = 10 * kSecond;
  config.scaling.reclaim_idle = 45 * kSecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator::Config wconfig = BenchWorkloadConfig();
  wconfig.lengths.prompt_max = Opt66B().context_window;
  WorkloadGenerator gen(wconfig);
  Rng rng(Rng(42).Child("OPT-66B").seed());
  auto specs = gen.GenerateWithCv(rng, 10.0, 2.0, 60 * kSecond);
  std::vector<Request> storage;
  RunReport report = RunWorkload(
      env, system, specs, storage,
      RunOptions{.drain_grace = 60 * kSecond, .warmup = 90 * kSecond});

  const GoldenSignature kFig13Golden = {594, 594, 4448ull, 3550150937863148032ull,
                                        4612433669895666873ull, 4597110502577874036ull};
  CheckGolden("kFig13Golden", SignatureOf(env, system, report), kFig13Golden);
}

TEST(EndToEnd, StreamingRunCompletesAndRecyclesRequests) {
  // The streaming runner must complete a workload end-to-end while keeping request
  // storage and the event arena proportional to in-flight work, not trace length.
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 16;
  StreamingWorkloadSource stream =
      StreamingWorkloadSource::WithCv(wconfig, 4.0, 1.0, 120 * kSecond, Rng(3));
  StreamingRunReport report = RunStreamingWorkload(
      env, system, stream, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_GT(report.submitted, 300);
  EXPECT_GE(system.metrics().completed(), report.submitted * 9 / 10);
  EXPECT_GT(system.metrics().MeanLatencySec(), 0.0);
  // Recycling caps live requests far below the trace length.
  EXPECT_LT(report.peak_live_requests, static_cast<size_t>(report.submitted) / 2);
  // Exactly one arrival event exists at a time, so the arena's high-water mark tracks
  // simulation fan-out (instances, controllers), not the trace.
  EXPECT_LT(env.sim().arena_slots(), static_cast<size_t>(report.submitted));
}

TEST(EndToEnd, StreamingRunsAreBitIdentical) {
  auto run_once = [] {
    ExperimentEnv env(SmallEnvConfig());
    FlexPipeConfig config;
    config.initial_stages = 4;
    config.target_peak_rps = 8.0;
    config.control_interval = 250 * kMillisecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), config);
    WorkloadGenerator::Config wconfig;
    wconfig.lengths.prompt_median = 256;
    wconfig.lengths.output_median = 16;
    StreamingWorkloadSource stream =
        StreamingWorkloadSource::WithCv(wconfig, 6.0, 4.0, 60 * kSecond, Rng(3));
    StreamingRunReport report = RunStreamingWorkload(
        env, system, stream, RunOptions{.drain_grace = 120 * kSecond});
    struct Signature {
      int64_t submitted;
      int64_t completed;
      uint64_t executed;
      size_t peak_live;
      double mean_latency_s;
      std::vector<CompletionSample> completions;
    };
    return Signature{report.submitted, system.metrics().completed(),
                     env.sim().executed_events(), report.peak_live_requests,
                     system.metrics().MeanLatencySec(), system.metrics().completions()};
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.peak_live, b.peak_live);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].done_time, b.completions[i].done_time) << i;
    EXPECT_EQ(a.completions[i].latency, b.completions[i].latency) << i;
  }
}

TEST(EndToEnd, MigrationPreservesTokenProgress) {
  // Every request must produce exactly its requested token count even across refactors.
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  config.control_interval = 250 * kMillisecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator gen;
  Rng rng(13);
  auto stable = gen.GenerateWithCv(rng, 4.0, 0.5, 30 * kSecond);
  auto bursty = gen.GenerateWithCv(rng, 8.0, 6.0, 40 * kSecond);
  for (auto& spec : bursty) {
    spec.arrival += 30 * kSecond;
  }
  auto specs = MergeWorkloads({stable, bursty});
  std::vector<Request> storage;
  RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 180 * kSecond});

  for (const Request& r : storage) {
    if (r.done()) {
      EXPECT_EQ(r.tokens_generated, r.spec.output_tokens) << "request " << r.spec.id;
      EXPECT_GE(r.first_token_time, r.spec.arrival);
      EXPECT_GE(r.done_time, r.first_token_time);
    }
  }
}

}  // namespace
}  // namespace flexpipe
