// End-to-end smoke tests: every serving system completes a small workload on the
// simulated cluster, and FlexPipe actually refactors under a CV shift.
#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/alpaserve.h"
#include "src/baselines/muxserve.h"
#include "src/baselines/serverless_llm.h"
#include "src/baselines/tetris.h"
#include "src/core/experiment.h"
#include "src/core/flexpipe_system.h"

namespace flexpipe {
namespace {

ExperimentEnvConfig SmallEnvConfig() {
  ExperimentEnvConfig config;
  config.models = {Llama2_7B()};
  config.partitioner.ladder = {2, 4, 8, 16};
  config.seed = 7;
  return config;
}

std::vector<RequestSpec> SmallWorkload(double rate, double cv, TimeNs duration,
                                       uint64_t seed = 3) {
  WorkloadGenerator::Config wconfig;
  wconfig.lengths.prompt_median = 256;
  wconfig.lengths.output_median = 16;
  WorkloadGenerator gen(wconfig);
  Rng rng(seed);
  return gen.GenerateWithCv(rng, rate, cv, duration);
}

TEST(EndToEnd, FlexPipeCompletesWorkload) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  std::vector<RequestSpec> specs = SmallWorkload(4.0, 1.0, 60 * kSecond);
  std::vector<Request> storage;
  RunReport report = RunWorkload(env, system, specs, storage,
                                 RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_GT(report.submitted, 100);
  // The vast majority of requests complete within the drain grace.
  EXPECT_GE(system.metrics().completed(), report.submitted * 9 / 10);
  EXPECT_GT(system.metrics().MeanLatencySec(), 0.0);
}

TEST(EndToEnd, AllBaselinesCompleteWorkload) {
  struct Case {
    const char* name;
    std::function<std::unique_ptr<ServingSystemBase>(ExperimentEnv&)> make;
  };
  std::vector<Case> cases;
  cases.push_back({"alpaserve", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     AlpaServeConfig c;
                     c.stages = 4;
                     c.target_peak_rps = 6.0;
                     return std::make_unique<AlpaServeSystem>(env.Context(), &env.ladder(0), c);
                   }});
  cases.push_back({"muxserve", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     MuxServeConfig c;
                     c.stages = 4;
                     c.target_peak_rps = 6.0;
                     return std::make_unique<MuxServeSystem>(env.Context(), &env.ladder(0), c);
                   }});
  cases.push_back({"serverlessllm",
                   [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     ServerlessLlmConfig c;
                     c.reactive.stages = 8;
                     c.reactive.min_replicas = 2;
                     return std::make_unique<ServerlessLlmSystem>(env.Context(), &env.ladder(0),
                                                                  c);
                   }});
  cases.push_back({"tetris", [](ExperimentEnv& env) -> std::unique_ptr<ServingSystemBase> {
                     TetrisConfig c;
                     c.reactive.stages = 4;
                     c.reactive.min_replicas = 2;
                     return std::make_unique<TetrisSystem>(env.Context(), &env.ladder(0), c);
                   }});

  for (auto& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    ExperimentEnv env(SmallEnvConfig());
    std::unique_ptr<ServingSystemBase> system = test_case.make(env);
    std::vector<RequestSpec> specs = SmallWorkload(3.0, 1.0, 45 * kSecond);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, *system, specs, storage,
                                   RunOptions{.drain_grace = 180 * kSecond});
    EXPECT_GT(report.submitted, 50);
    EXPECT_GE(system->metrics().completed(), report.submitted * 8 / 10)
        << "system " << test_case.name << " completed too few";
  }
}

TEST(EndToEnd, FlexPipeRefactorsUnderBurstyTraffic) {
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  config.control_interval = 250 * kMillisecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  // Stable phase then a high-CV phase: the controller should move to finer stages.
  WorkloadGenerator gen;
  Rng rng(11);
  auto stable = gen.GenerateWithCv(rng, 4.0, 0.5, 40 * kSecond);
  auto bursty_raw = gen.GenerateWithCv(rng, 8.0, 6.0, 60 * kSecond);
  for (auto& spec : bursty_raw) {
    spec.arrival += 40 * kSecond;
  }
  auto specs = MergeWorkloads({stable, bursty_raw});

  std::vector<Request> storage;
  RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 120 * kSecond});

  EXPECT_GT(system.refactor_count(), 0) << "no inflight refactoring happened";
  EXPECT_GT(system.current_stages(), 4) << "granularity did not move finer under burst";
  EXPECT_GE(system.metrics().completed(), static_cast<int64_t>(specs.size()) * 8 / 10);
}

TEST(EndToEnd, IdenticallySeededRunsAreBitIdentical) {
  // The simulation.h ordering guarantee (events fire in (time, scheduling order)) makes
  // whole experiment runs reproducible: two identically-seeded runs must agree on every
  // metric bit-for-bit, not merely to within a tolerance.
  struct RunSignature {
    int64_t submitted = 0;
    int64_t completed = 0;
    uint64_t executed_events = 0;
    double mean_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_prefill_s = 0.0;
    double goodput_rate = 0.0;
    std::vector<CompletionSample> completions;
  };
  auto run_once = [] {
    ExperimentEnv env(SmallEnvConfig());
    FlexPipeConfig config;
    config.initial_stages = 4;
    config.target_peak_rps = 8.0;
    config.control_interval = 250 * kMillisecond;
    FlexPipeSystem system(env.Context(), &env.ladder(0), config);
    std::vector<RequestSpec> specs = SmallWorkload(6.0, 4.0, 60 * kSecond);
    std::vector<Request> storage;
    RunReport report = RunWorkload(env, system, specs, storage,
                                   RunOptions{.drain_grace = 120 * kSecond});
    RunSignature sig;
    sig.submitted = report.submitted;
    sig.completed = system.metrics().completed();
    sig.executed_events = env.sim().executed_events();
    sig.mean_latency_s = system.metrics().MeanLatencySec();
    sig.p99_latency_s = system.metrics().LatencyPercentileSec(99);
    sig.mean_prefill_s = system.metrics().MeanPrefillSec();
    sig.goodput_rate = system.metrics().GoodputRate(report.submitted);
    sig.completions = system.metrics().completions();
    return sig;
  };

  RunSignature a = run_once();
  RunSignature b = run_once();
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);  // bit-identical, no tolerance
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.mean_prefill_s, b.mean_prefill_s);
  EXPECT_EQ(a.goodput_rate, b.goodput_rate);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i].done_time, b.completions[i].done_time) << "sample " << i;
    EXPECT_EQ(a.completions[i].latency, b.completions[i].latency) << "sample " << i;
  }
}

TEST(EndToEnd, MigrationPreservesTokenProgress) {
  // Every request must produce exactly its requested token count even across refactors.
  ExperimentEnv env(SmallEnvConfig());
  FlexPipeConfig config;
  config.initial_stages = 4;
  config.target_peak_rps = 8.0;
  config.control_interval = 250 * kMillisecond;
  FlexPipeSystem system(env.Context(), &env.ladder(0), config);

  WorkloadGenerator gen;
  Rng rng(13);
  auto stable = gen.GenerateWithCv(rng, 4.0, 0.5, 30 * kSecond);
  auto bursty = gen.GenerateWithCv(rng, 8.0, 6.0, 40 * kSecond);
  for (auto& spec : bursty) {
    spec.arrival += 30 * kSecond;
  }
  auto specs = MergeWorkloads({stable, bursty});
  std::vector<Request> storage;
  RunWorkload(env, system, specs, storage, RunOptions{.drain_grace = 180 * kSecond});

  for (const Request& r : storage) {
    if (r.done()) {
      EXPECT_EQ(r.tokens_generated, r.spec.output_tokens) << "request " << r.spec.id;
      EXPECT_GE(r.first_token_time, r.spec.arrival);
      EXPECT_GE(r.done_time, r.first_token_time);
    }
  }
}

}  // namespace
}  // namespace flexpipe
