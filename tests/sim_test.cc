#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel is a no-op
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Simulation, NestedSchedulingFromCallback) {
  Simulation sim;
  std::vector<TimeNs> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 15);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepExecutesOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelFromInsideFiringCallback) {
  // A firing callback may cancel events scheduled for the same instant (later in FIFO
  // order) as well as future events; canceling the currently-firing event is a no-op.
  Simulation sim;
  std::vector<int> order;
  EventId self = 0;
  EventId same_time = 0;
  EventId future = 0;
  self = sim.Schedule(10, [&] {
    order.push_back(1);
    EXPECT_FALSE(sim.Cancel(self));  // already firing: no longer cancelable
    EXPECT_TRUE(sim.Cancel(same_time));
    EXPECT_TRUE(sim.Cancel(future));
  });
  same_time = sim.Schedule(10, [&] { order.push_back(2); });
  future = sim.Schedule(20, [&] { order.push_back(3); });
  sim.Schedule(30, [&] { order.push_back(4); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 4}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeriodicTask, FiresAtIntervalUntilCanceled) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10, [&] { ++ticks; });
  sim.RunUntil(55);
  EXPECT_EQ(ticks, 5);
  task.Cancel();
  sim.RunUntil(200);
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTask, CancelFromWithinCallback) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10, [&] {
    ++ticks;
    if (ticks == 3) {
      task.Cancel();
    }
  });
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTask, DestructorCancels) {
  Simulation sim;
  int ticks = 0;
  {
    PeriodicTask task(&sim, 10, [&] { ++ticks; });
    sim.RunUntil(25);
  }
  sim.RunUntil(100);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, DestructionWhileArmedReleasesPendingEvent) {
  // Destroying a task between firings must remove its armed event from the engine so the
  // callback (and any captured state) is released, not merely skipped at fire time.
  Simulation sim;
  int ticks = 0;
  auto task = std::make_unique<PeriodicTask>(&sim, 10, [&] { ++ticks; });
  sim.RunUntil(15);  // one firing at t=10; the next is armed for t=20
  ASSERT_EQ(ticks, 1);
  ASSERT_EQ(sim.pending_events(), 1u);
  task.reset();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(sim.now(), 15);  // the canceled event does not advance the clock
}

TEST(PeriodicTask, DestructionBeforeFirstFiring) {
  Simulation sim;
  int ticks = 0;
  { PeriodicTask task(&sim, 10, [&] { ++ticks; }); }
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace flexpipe
