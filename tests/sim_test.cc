#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "src/sim/simulation.h"

namespace flexpipe {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel is a no-op
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Simulation, NestedSchedulingFromCallback) {
  Simulation sim;
  std::vector<TimeNs> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 15);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepExecutesOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelFromInsideFiringCallback) {
  // A firing callback may cancel events scheduled for the same instant (later in FIFO
  // order) as well as future events; canceling the currently-firing event is a no-op.
  Simulation sim;
  std::vector<int> order;
  EventId self = 0;
  EventId same_time = 0;
  EventId future = 0;
  self = sim.Schedule(10, [&] {
    order.push_back(1);
    EXPECT_FALSE(sim.Cancel(self));  // already firing: no longer cancelable
    EXPECT_TRUE(sim.Cancel(same_time));
    EXPECT_TRUE(sim.Cancel(future));
  });
  same_time = sim.Schedule(10, [&] { order.push_back(2); });
  future = sim.Schedule(20, [&] { order.push_back(3); });
  sim.Schedule(30, [&] { order.push_back(4); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 4}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, ScheduleCancelChurnStaysBounded) {
  // Regression for the old engine's tombstone leak: canceled events left their heap
  // entries behind forever, so schedule/cancel churn (PeriodicTask-heavy multi-model
  // runs) grew the queue without bound. The arena recycles slots and queue entries, so
  // physical state must track the live population, not the churn count.
  Simulation sim;
  // A baseline population keeps the engine non-trivial while churning.
  for (int i = 0; i < 64; ++i) {
    sim.Schedule(kSecond + i, [] {});
  }
  const size_t baseline_pending = sim.pending_events();
  for (int i = 0; i < 200000; ++i) {
    EventId id = sim.Schedule(kMillisecond, [] {});
    ASSERT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), baseline_pending);
  // Slots are the high-water mark of *concurrently* pending events — the 200k churned
  // events reused one slot, they did not each claim a new one.
  EXPECT_LE(sim.arena_slots(), baseline_pending + 2);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, FarFutureChurnStaysBounded) {
  // Same bound for events that land in the staging tier (beyond the near window):
  // staged cancels tombstone lazily but compaction keeps physical state proportional
  // to the live population.
  Simulation sim;
  std::vector<EventId> live;
  for (int round = 0; round < 2000; ++round) {
    for (int i = 0; i < 100; ++i) {
      live.push_back(sim.Schedule(kHour + round * kSecond + i, [] {}));
    }
    for (size_t i = 0; i + 1 < live.size(); i += 2) {
      sim.Cancel(live[i]);  // cancel half; some are fresh, some already staged
    }
    // Step occasionally so fresh entries migrate into the staging array and the
    // staged-cancel (tombstone) path is genuinely exercised.
    if (round % 100 == 0) {
      sim.RunUntil(sim.now() + kMinute);
    }
    std::vector<EventId> kept;
    for (size_t i = 1; i < live.size(); i += 2) {
      kept.push_back(live[i]);
    }
    live.swap(kept);
    ASSERT_LE(sim.arena_slots(), sim.pending_events() + 256) << "round " << round;
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, CancelOfStagedEventPreventsExecutionAndOrderHolds) {
  Simulation sim;
  std::vector<int> fired;
  // Far-future events (staging tier) interleaved with near ones.
  EventId doomed = sim.Schedule(2 * kHour, [&] { fired.push_back(-1); });
  sim.Schedule(2 * kHour + 1, [&] { fired.push_back(2); });
  sim.Schedule(kHour, [&] { fired.push_back(1); });
  sim.Schedule(10, [&] { fired.push_back(0); });
  sim.RunUntil(kMinute);  // forces the first staging threshold past the near events
  EXPECT_TRUE(sim.Cancel(doomed));
  EXPECT_FALSE(sim.Cancel(doomed));
  sim.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Reference engine mirroring the pre-arena implementation: a (time, seq) ordered map.
// The arena engine's two-tier queue, slot recycling and packed entries must be
// invisible next to it.
class ReferenceEngine {
 public:
  uint64_t Schedule(TimeNs when, std::function<void()> fn) {
    uint64_t id = next_++;
    events_.emplace(std::make_pair(when, id), std::move(fn));
    return id;
  }
  bool Cancel(TimeNs when, uint64_t id) { return events_.erase({when, id}) > 0; }
  // Runs everything in (time, scheduling order).
  void Drain(TimeNs* now) {
    while (!events_.empty()) {
      auto it = events_.begin();
      *now = it->first.first;
      auto fn = std::move(it->second);
      events_.erase(it);
      fn();
    }
  }

 private:
  uint64_t next_ = 1;
  std::map<std::pair<TimeNs, uint64_t>, std::function<void()>> events_;
};

TEST(Simulation, RandomizedScheduleCancelMatchesReferenceEngine) {
  // Randomized cross-check of the full firing sequence: near events, far (staged)
  // events, cancels of both, and callbacks that schedule more work.
  std::mt19937_64 rng(987654321);
  for (int trial = 0; trial < 25; ++trial) {
    Simulation sim;
    ReferenceEngine ref;
    TimeNs ref_now = 0;
    std::vector<std::pair<TimeNs, int>> sim_fired;
    std::vector<std::pair<TimeNs, int>> ref_fired;

    std::uniform_int_distribution<TimeNs> delay_dist(0, 3 * kHour);
    std::uniform_int_distribution<int> fanout_dist(0, 2);
    std::vector<std::pair<EventId, std::pair<TimeNs, uint64_t>>> cancelable;

    int next_tag = 0;
    std::function<void(int, int)> spawn = [&](int tag, int depth) {
      TimeNs delay = delay_dist(rng);
      int fanout = fanout_dist(rng);
      TimeNs sim_when = sim.now() + delay;
      // The reference engine schedules relative to its own clock; the sequences agree
      // because both engines fire identically up to this point.
      EventId id = sim.Schedule(delay, [&, tag, fanout, depth] {
        sim_fired.push_back({sim.now(), tag});
        if (depth < 2) {
          for (int f = 0; f < fanout; ++f) {
            // Children deterministically derive their delays from the parent tag so
            // both engines request identical schedules without sharing the rng.
            TimeNs child_delay = (tag * 7919 + f * 104729) % (2 * kHour);
            int child_tag = tag * 10 + f + 1;
            sim.Schedule(child_delay, [&, child_tag] {
              sim_fired.push_back({sim.now(), child_tag});
            });
          }
        }
      });
      uint64_t ref_id = ref.Schedule(ref_now + delay, [&, tag, fanout, depth, sim_when] {
        ref_fired.push_back({ref_now, tag});
        if (depth < 2) {
          for (int f = 0; f < fanout; ++f) {
            TimeNs child_delay = (tag * 7919 + f * 104729) % (2 * kHour);
            int child_tag = tag * 10 + f + 1;
            ref.Schedule(ref_now + child_delay, [&, child_tag] {
              ref_fired.push_back({ref_now, child_tag});
            });
          }
        }
      });
      cancelable.push_back({id, {sim_when, ref_id}});
      (void)depth;
    };

    for (int i = 0; i < 200; ++i) {
      spawn(++next_tag, 0);
    }
    // Cancel a third of the top-level events; both engines must agree on each verdict.
    std::shuffle(cancelable.begin(), cancelable.end(), rng);
    for (size_t i = 0; i < cancelable.size() / 3; ++i) {
      bool a = sim.Cancel(cancelable[i].first);
      bool b = ref.Cancel(cancelable[i].second.first, cancelable[i].second.second);
      ASSERT_EQ(a, b);
    }

    sim.RunUntilIdle();
    ref.Drain(&ref_now);
    ASSERT_EQ(sim_fired, ref_fired) << "trial " << trial;
  }
}

TEST(Simulation, ShrunkNearWindowKeepsDenseNearScheduleOffHotHeap) {
  // ROADMAP follow-up from the arena PR: workloads that schedule dense traffic just
  // past the default 1 s near window used to pin it all on the hot heap. With an
  // injectable config, a shrunk near window parks that schedule in the staging tier.
  Simulation::Config config;
  config.near_window = 100 * kMillisecond;
  Simulation sim(config);
  EXPECT_EQ(sim.config().near_window, 100 * kMillisecond);

  // Dense burst straddling one second out: the half just inside 1 s would ride the
  // hot heap under the default window; everything is past the shrunk one.
  auto dense_schedule = [](Simulation& target, std::function<void()> fn) {
    for (int i = 0; i < 2048; ++i) {
      target.ScheduleAt(kSecond - kMillisecond + i, fn);  // just inside 1 s
      target.ScheduleAt(kSecond + kMillisecond + i, fn);  // just past 1 s
    }
  };
  int fired = 0;
  dense_schedule(sim, [&] { ++fired; });
  EXPECT_EQ(sim.heap_events(), 0u) << "dense ~1s-out schedule landed on the hot heap";
  EXPECT_EQ(sim.staged_events(), 4096u);

  // Default config (1 s near window): the half inside the window goes straight to the
  // heap; only the just-past-1s half is staged.
  Simulation default_sim;
  dense_schedule(default_sim, [] {});
  EXPECT_EQ(default_sim.heap_events(), 2048u);
  EXPECT_EQ(default_sim.staged_events(), 2048u);

  // The tiering stays invisible: everything fires, in order, exactly once.
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 4096);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, StagingConfigDoesNotChangeFiringOrder) {
  // Any staging tuning must be semantically invisible: the firing sequence is decided
  // purely by (time, scheduling order).
  std::vector<Simulation::Config> configs(3);
  configs[1].near_window = 0;
  configs[1].refill_batch = 1;
  configs[1].merge_threshold = 1;
  configs[2].near_window = 30 * kSecond;
  configs[2].refill_batch = 7;
  configs[2].merge_threshold = 4;

  std::vector<std::vector<std::pair<TimeNs, int>>> fired(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    Simulation sim(configs[c]);
    uint64_t lcg = 12345;
    for (int i = 0; i < 2000; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      TimeNs when = static_cast<TimeNs>((lcg >> 33) % (20 * kSecond));
      sim.ScheduleAt(when, [&fired, c, i, &sim] { fired[c].push_back({sim.now(), i}); });
    }
    sim.RunUntilIdle();
  }
  EXPECT_EQ(fired[0], fired[1]);
  EXPECT_EQ(fired[0], fired[2]);
}

TEST(PeriodicTask, FiresAtIntervalUntilCanceled) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10, [&] { ++ticks; });
  sim.RunUntil(55);
  EXPECT_EQ(ticks, 5);
  task.Cancel();
  sim.RunUntil(200);
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTask, CancelFromWithinCallback) {
  Simulation sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10, [&] {
    ++ticks;
    if (ticks == 3) {
      task.Cancel();
    }
  });
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTask, DestructorCancels) {
  Simulation sim;
  int ticks = 0;
  {
    PeriodicTask task(&sim, 10, [&] { ++ticks; });
    sim.RunUntil(25);
  }
  sim.RunUntil(100);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, DestructionWhileArmedReleasesPendingEvent) {
  // Destroying a task between firings must remove its armed event from the engine so the
  // callback (and any captured state) is released, not merely skipped at fire time.
  Simulation sim;
  int ticks = 0;
  auto task = std::make_unique<PeriodicTask>(&sim, 10, [&] { ++ticks; });
  sim.RunUntil(15);  // one firing at t=10; the next is armed for t=20
  ASSERT_EQ(ticks, 1);
  ASSERT_EQ(sim.pending_events(), 1u);
  task.reset();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(sim.now(), 15);  // the canceled event does not advance the clock
}

TEST(PeriodicTask, DestructionBeforeFirstFiring) {
  Simulation sim;
  int ticks = 0;
  { PeriodicTask task(&sim, 10, [&] { ++ticks; }); }
  sim.RunUntilIdle();
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace flexpipe
