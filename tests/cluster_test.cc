#include <gtest/gtest.h>

#include "src/cluster/allocator.h"
#include "src/cluster/fragmentation.h"
#include "src/cluster/network.h"
#include "src/cluster/topology.h"
#include "src/common/stats.h"

namespace flexpipe {
namespace {

TEST(Topology, EvalClusterHas82GpusAnd42Servers) {
  Cluster cluster(EvalClusterConfig());
  EXPECT_EQ(cluster.gpu_count(), 82);
  EXPECT_EQ(cluster.server_count(), 42);
  EXPECT_EQ(cluster.rack_count(), 6);
}

TEST(Topology, MeasurementClustersMatchTable1Shape) {
  Cluster c1(MeasurementClusterC1());
  EXPECT_EQ(c1.server_count(), 430);
  EXPECT_EQ(c1.gpu_count(), 468);
  Cluster c2(MeasurementClusterC2());
  EXPECT_EQ(c2.server_count(), 930);  // within 0.5% of the paper's 927
  EXPECT_EQ(c2.gpu_count(), 1175);
}

TEST(Topology, ReserveReleaseAccounting) {
  Cluster cluster(EvalClusterConfig());
  Gpu& gpu = cluster.gpu(0);
  Bytes before = gpu.free_memory();
  gpu.Reserve(GiB(10), 0.5);
  EXPECT_EQ(gpu.free_memory(), before - GiB(10));
  EXPECT_DOUBLE_EQ(gpu.reserved_sm(), 0.5);
  gpu.Release(GiB(10), 0.5);
  EXPECT_EQ(gpu.free_memory(), before);
  EXPECT_DOUBLE_EQ(gpu.sm_utilization(), 0.0);
}

TEST(Topology, BackgroundNeverEvictsReservation) {
  Cluster cluster(EvalClusterConfig());
  Gpu& gpu = cluster.gpu(0);
  gpu.Reserve(GiB(30), 0.5);
  gpu.SetBackground(GiB(100), 0.3, 2);  // asks for more than remaining
  EXPECT_LE(gpu.used_memory(), gpu.memory_capacity());
  EXPECT_EQ(gpu.reserved_memory(), GiB(30));
}

TEST(Topology, SameServerAndRackRelations) {
  Cluster cluster(EvalClusterConfig());
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    const Server& server = cluster.server(s);
    for (size_t i = 1; i < server.gpus.size(); ++i) {
      EXPECT_TRUE(cluster.SameServer(server.gpus[0], server.gpus[i]));
      EXPECT_TRUE(cluster.SameRack(server.gpus[0], server.gpus[i]));
    }
  }
}

TEST(Topology, FailureDomainsPartitionTheCluster) {
  ClusterConfig config = EvalClusterConfig();
  Cluster cluster(config);

  // Power domains tile the rack id space in order: 6 racks / 2 per domain = 3 domains,
  // and together they cover every rack exactly once.
  EXPECT_EQ(cluster.power_domain_count(), 3);
  int racks_covered = 0;
  for (PowerDomainId d = 0; d < cluster.power_domain_count(); ++d) {
    for (RackId r : cluster.PowerDomainRacks(d)) {
      EXPECT_EQ(r / config.racks_per_power_domain, d);
      ++racks_covered;
    }
  }
  EXPECT_EQ(racks_covered, cluster.rack_count());

  // Every server's cached domain ids agree with the membership lists, and thermal
  // zones never cross a rack boundary (airflow is per-rack).
  int servers_covered = 0;
  for (ThermalZoneId z = 0; z < cluster.thermal_zone_count(); ++z) {
    const std::vector<ServerId>& members = cluster.ThermalZoneServers(z);
    ASSERT_FALSE(members.empty());
    ASSERT_LE(static_cast<int>(members.size()), config.servers_per_thermal_zone);
    for (ServerId s : members) {
      EXPECT_EQ(cluster.ThermalZoneOf(s), z);
      EXPECT_EQ(cluster.RackOf(members[0]), cluster.RackOf(s));
      ++servers_covered;
    }
  }
  EXPECT_EQ(servers_covered, cluster.server_count());
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.PowerDomainOf(s),
              cluster.RackOf(s) / config.racks_per_power_domain);
  }

  // Deterministic derivation: the same config always yields the same domains.
  Cluster again(config);
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    EXPECT_EQ(cluster.PowerDomainOf(s), again.PowerDomainOf(s));
    EXPECT_EQ(cluster.ThermalZoneOf(s), again.ThermalZoneOf(s));
  }
}

TEST(Topology, DegenerateDomainShapesClampToOne) {
  ClusterConfig config = EvalClusterConfig();
  config.racks_per_power_domain = 0;   // clamped to 1: one domain per rack
  config.servers_per_thermal_zone = 0; // clamped to 1: one zone per server
  Cluster cluster(config);
  EXPECT_EQ(cluster.power_domain_count(), cluster.rack_count());
  EXPECT_EQ(cluster.thermal_zone_count(), cluster.server_count());
}

TEST(Topology, HostMemoryReservation) {
  Cluster cluster(EvalClusterConfig());
  EXPECT_TRUE(cluster.TryReserveHostMemory(0, GiB(100)));
  EXPECT_TRUE(cluster.TryReserveHostMemory(0, GiB(100)));
  EXPECT_FALSE(cluster.TryReserveHostMemory(0, GiB(100)));  // 256 GiB capacity
  cluster.ReleaseHostMemory(0, GiB(100));
  EXPECT_TRUE(cluster.TryReserveHostMemory(0, GiB(100)));
}

TEST(Fragmentation, C1StatisticsMatchTable1) {
  Cluster cluster(MeasurementClusterC1());
  FragmentationGenerator frag(&cluster, ProfileClusterC1(), 17);
  frag.ApplySnapshot();

  std::vector<double> mem;
  std::vector<double> sm;
  for (GpuId id : cluster.AllGpuIds()) {
    mem.push_back(cluster.gpu(id).memory_utilization());
    sm.push_back(cluster.gpu(id).sm_utilization());
  }
  // Table 1, cluster C1: mem mean 43.5%, P50 28.8%, P95 99.1%; SM mean 16.9%.
  EXPECT_NEAR(cluster.MeanMemoryUtilization(), 0.435, 0.08);
  EXPECT_NEAR(Percentile(mem, 50), 0.288, 0.10);
  EXPECT_GT(Percentile(mem, 95), 0.90);
  EXPECT_NEAR(cluster.MeanSmUtilization(), 0.169, 0.06);
  // ~216% subscription.
  EXPECT_NEAR(cluster.MeanSubscriptionRate(), 2.16, 0.5);
}

TEST(Fragmentation, ColocationIsRare) {
  // §3.1: co-locating 4 free GPUs on one server is a ~0.02% event; with C1's mostly
  // 1-2 GPU servers it should essentially never happen.
  Cluster cluster(MeasurementClusterC1());
  FragmentationGenerator frag(&cluster, ProfileClusterC1(), 23);
  int hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    frag.ApplySnapshot();
    if (cluster.BestColocatedGroup(GiB(34)).size() >= 4) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 0);
}

TEST(Fragmentation, ChurnChangesOnlyAFraction) {
  Cluster cluster(EvalClusterConfig());
  FragmentationGenerator frag(&cluster, ProfileClusterC1(), 31);
  frag.ApplySnapshot();
  std::vector<Bytes> before;
  for (GpuId id : cluster.AllGpuIds()) {
    before.push_back(cluster.gpu(id).background_memory());
  }
  frag.ChurnStep(0.1);
  int changed = 0;
  for (GpuId id : cluster.AllGpuIds()) {
    if (cluster.gpu(id).background_memory() != before[static_cast<size_t>(id)]) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);
  EXPECT_LT(changed, cluster.gpu_count() / 2);
}

TEST(Network, TierSelection) {
  Cluster cluster(EvalClusterConfig());
  NetworkModel net(&cluster, NetworkConfig{});
  // Find a 2-GPU server for the intra-server case.
  GpuId a = kInvalidGpu;
  GpuId b = kInvalidGpu;
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (cluster.server(s).gpus.size() >= 2) {
      a = cluster.server(s).gpus[0];
      b = cluster.server(s).gpus[1];
      break;
    }
  }
  ASSERT_NE(a, kInvalidGpu);
  EXPECT_EQ(net.TierBetween(a, a), LinkTier::kSameGpu);
  EXPECT_EQ(net.TierBetween(a, b), LinkTier::kIntraServer);
  EXPECT_GT(net.Bandwidth(LinkTier::kIntraServer), net.Bandwidth(LinkTier::kIntraRack));
  EXPECT_GT(net.Bandwidth(LinkTier::kIntraRack), net.Bandwidth(LinkTier::kInterRack));
  EXPECT_LT(net.Latency(LinkTier::kIntraServer), net.Latency(LinkTier::kInterRack));
}

TEST(Network, FlowSharingHalvesBandwidth) {
  Cluster cluster(EvalClusterConfig());
  NetworkModel net(&cluster, NetworkConfig{});
  double solo = net.EffectiveBandwidth(LinkTier::kIntraRack);
  net.AddFlow(LinkTier::kIntraRack);
  double shared = net.EffectiveBandwidth(LinkTier::kIntraRack);
  EXPECT_NEAR(shared, solo / 2.0, solo * 0.01);
  net.RemoveFlow(LinkTier::kIntraRack);
  EXPECT_DOUBLE_EQ(net.EffectiveBandwidth(LinkTier::kIntraRack), solo);
}

TEST(Network, NcclSetupDwarfsRdma) {
  Cluster cluster(EvalClusterConfig());
  NetworkModel net(&cluster, NetworkConfig{});
  EXPECT_GT(net.SetupTime(TransferProtocol::kNcclStyle),
            1000 * net.SetupTime(TransferProtocol::kRdma));
}

TEST(Allocator, AllocatesAndReleases) {
  Cluster cluster(EvalClusterConfig());
  ClusterAllocator alloc(&cluster, AllocatorConfig{}, 3);
  AllocationRequest req;
  req.gpu_count = 4;
  req.bytes_per_gpu = GiB(10);
  req.distinct_servers = true;
  AllocationResult result = alloc.Allocate(req);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.gpus.size(), 4u);
  EXPECT_GT(result.provisioning_delay, kSecond / 2);
  // Distinct servers honored.
  for (size_t i = 0; i < result.gpus.size(); ++i) {
    for (size_t j = i + 1; j < result.gpus.size(); ++j) {
      EXPECT_FALSE(cluster.SameServer(result.gpus[i], result.gpus[j]));
    }
  }
  alloc.Release(result.gpus, req.bytes_per_gpu, req.sm_per_gpu);
  for (GpuId id : result.gpus) {
    EXPECT_EQ(cluster.gpu(id).reserved_memory(), 0);
  }
}

TEST(Allocator, FailsWhenClusterSaturated) {
  Cluster cluster(EvalClusterConfig());
  for (GpuId id : cluster.AllGpuIds()) {
    cluster.gpu(id).SetBackground(GiB(39), 0.9, 3);
  }
  ClusterAllocator alloc(&cluster, AllocatorConfig{}, 3);
  AllocationRequest req;
  req.gpu_count = 1;
  req.bytes_per_gpu = GiB(10);
  AllocationResult result = alloc.Allocate(req);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(alloc.failed_requests(), 1);
}

TEST(Allocator, BestFitPacksTightest) {
  Cluster cluster(EvalClusterConfig());
  cluster.gpu(0).SetBackground(GiB(25), 0.2, 1);  // 15 free — tightest fit for 10
  ClusterAllocator alloc(&cluster, AllocatorConfig{}, 3);
  AllocationRequest req;
  req.gpu_count = 1;
  req.bytes_per_gpu = GiB(10);
  req.policy = PlacementPolicy::kBestFit;
  AllocationResult result = alloc.Allocate(req);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.gpus[0], 0);
}

}  // namespace
}  // namespace flexpipe
