#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "src/cluster/fragmentation.h"
#include "src/core/allocation.h"
#include "src/core/cv_monitor.h"
#include "src/core/granularity.h"
#include "src/core/queueing.h"
#include "src/core/scaling.h"
#include "src/model/profiler.h"
#include "src/partition/partitioner.h"
#include "src/trace/arrival.h"

namespace flexpipe {
namespace {

// ---------- CV monitor ----------

TEST(CvMonitor, TracksGammaArrivalCv) {
  for (double target : {0.5, 1.0, 4.0}) {
    CvMonitor::Config config;
    config.window_arrivals = 4096;
    CvMonitor monitor(config);
    GammaArrivals arrivals(50.0, target);
    Rng rng(3);
    TimeNs t = 0;
    for (int i = 0; i < 5000; ++i) {
      t += arrivals.NextGap(rng);
      monitor.RecordArrival(t);
    }
    EXPECT_NEAR(monitor.Cv(), target, target * 0.25) << "target " << target;
  }
}

TEST(CvMonitor, RateAndGradient) {
  CvMonitor monitor;
  // 10 req/s for 5 s, then 40 req/s for 5 s.
  TimeNs t = 0;
  for (int i = 0; i < 50; ++i) {
    t += 100 * kMillisecond;
    monitor.RecordArrival(t);
  }
  for (int i = 0; i < 200; ++i) {
    t += 25 * kMillisecond;
    monitor.RecordArrival(t);
  }
  EXPECT_NEAR(monitor.RatePerSec(t), 40.0, 5.0);
  EXPECT_GT(monitor.RateGradient(t), 0.0);  // building burst detected
}

// Naive reference for the ring-buffer monitor: the pre-ring deque implementation
// (Welford-free sliding sums + std::lower_bound window counts over all retained
// timestamps). The production monitor must match it bit-for-bit.
struct ReferenceCvMonitor {
  explicit ReferenceCvMonitor(const CvMonitor::Config& config_in)
      : config(config_in), gaps(config_in.window_arrivals) {}

  void RecordArrival(TimeNs now) {
    if (last_arrival >= 0) {
      gaps.Add(ToSeconds(now - last_arrival));
    }
    last_arrival = now;
    recent.push_back(now);
    TimeNs horizon = now - 2 * config.rate_window;
    while (!recent.empty() && recent.front() < horizon) {
      recent.pop_front();
    }
  }

  size_t CountIn(TimeNs begin, TimeNs end) const {
    auto lo = std::lower_bound(recent.begin(), recent.end(), begin);
    auto hi = std::lower_bound(recent.begin(), recent.end(), end);
    return static_cast<size_t>(hi - lo);
  }

  double RatePerSec(TimeNs now) const {
    double w = ToSeconds(config.rate_window);
    return static_cast<double>(CountIn(now - config.rate_window, now + 1)) / w;
  }

  double RateGradient(TimeNs now) const {
    double w = ToSeconds(config.rate_window);
    double newer = static_cast<double>(CountIn(now - config.rate_window, now + 1)) / w;
    double older = static_cast<double>(
                       CountIn(now - 2 * config.rate_window, now - config.rate_window)) /
                   w;
    return (newer - older) / w;
  }

  CvMonitor::Config config;
  SlidingWindowStats gaps;
  TimeNs last_arrival = -1;
  std::deque<TimeNs> recent;
};

TEST(CvMonitor, RingMatchesNaiveReferenceRandomized) {
  Rng rng(271828);
  for (int round = 0; round < 20; ++round) {
    CvMonitor::Config config;
    config.window_arrivals = static_cast<size_t>(rng.UniformInt(2, 64));
    config.rate_window = rng.UniformInt(1, 4) * kSecond;
    CvMonitor monitor(config);
    ReferenceCvMonitor reference(config);

    TimeNs t = 0;
    for (int i = 0; i < 3000; ++i) {
      // Mixed regimes: calm, bursty (many same-window arrivals), and long silences
      // that prune the whole retention window at once.
      double mean_gap_s;
      switch (rng.UniformInt(0, 3)) {
        case 0: mean_gap_s = 0.002; break;
        case 1: mean_gap_s = 0.05; break;
        case 2: mean_gap_s = 1.0; break;
        default: mean_gap_s = 12.0; break;
      }
      t += std::max<TimeNs>(1, FromSeconds(rng.ExponentialMean(mean_gap_s)));
      monitor.RecordArrival(t);
      reference.RecordArrival(t);

      if (i % 7 == 0) {
        // Query at a time at or after the arrival, like a controller tick would.
        TimeNs q = t + rng.UniformInt(0, 3) * kSecond;
        EXPECT_EQ(monitor.RatePerSec(q), reference.RatePerSec(q)) << "round " << round;
        EXPECT_EQ(monitor.RateGradient(q), reference.RateGradient(q)) << "round " << round;
        EXPECT_EQ(monitor.Cv(), reference.gaps.cv()) << "round " << round;
        EXPECT_EQ(monitor.samples(), reference.gaps.size());
        if (i % 21 == 0) {
          // Out-of-order (rewinding) query: cursors must back up correctly.
          TimeNs back = t - rng.UniformInt(0, 5) * kSecond;
          EXPECT_EQ(monitor.RatePerSec(back), reference.RatePerSec(back));
          EXPECT_EQ(monitor.RateGradient(back), reference.RateGradient(back));
        }
      }
    }
  }
}

// ---------- Eq. 1 queueing model ----------

TEST(Queueing, UnstableSystemDiverges) {
  GgsParams p;
  p.lambda = 10.0;
  p.mu = 2.0;
  p.servers = 4;  // capacity 8 < 10
  EXPECT_TRUE(std::isinf(GgsTotalLatency(p)));
}

TEST(Queueing, LatencyGrowsWithArrivalCv) {
  GgsParams p;
  p.lambda = 6.0;
  p.mu = 2.0;
  p.servers = 4;
  p.cv_service = 0.5;
  double prev = 0.0;
  for (double cv : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    p.cv_arrival = cv;
    double t = GgsTotalLatency(p);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Queueing, StageCongestionBlowsUpNearSaturation) {
  double relaxed = StageCongestionDelay({1.0, 1.0}, {2.0, 2.0});
  double tight = StageCongestionDelay({1.9, 1.9}, {2.0, 2.0});
  EXPECT_GT(tight, relaxed * 5);
  EXPECT_TRUE(std::isinf(StageCongestionDelay({2.0}, {2.0})));
}

TEST(Queueing, OptimalStagesIncreaseWithCv) {
  // Finer stages are individually faster: mu(S) grows ~linearly with S.
  auto mu_of_s = [](int s) { return 1.2 * static_cast<double>(s); };
  int coarse = OptimalStageCount(4.0, 0.5, 0.5, 1, 32, mu_of_s);
  int fine = OptimalStageCount(4.0, 6.0, 0.5, 1, 32, mu_of_s);
  EXPECT_GE(fine, coarse);  // §3.3: deeper pipelines absorb bursty load
}

// ---------- Granularity controller (Eq. 4 / Eq. 5) ----------

class GranularityTest : public ::testing::Test {
 protected:
  GranularityTest() : cluster_(EvalClusterConfig()), network_(&cluster_, NetworkConfig{}) {
    Profiler profiler(&cost_, Profiler::Config{});
    ComputationGraph graph = ComputationGraph::Build(Opt66B());
    ModelProfile profile = profiler.Profile(graph);
    Partitioner partitioner;
    ladder_ = partitioner.BuildLadder(profile);
    controller_ = std::make_unique<GranularityController>(&ladder_, &cost_, &network_,
                                                          WorkloadAssumptions{},
                                                          GranularityConfig{});
  }
  Cluster cluster_;
  NetworkModel network_;
  CostModel cost_;
  GranularityLadder ladder_;
  std::unique_ptr<GranularityController> controller_;
};

TEST_F(GranularityTest, OptionsCoverLadder) {
  EXPECT_EQ(controller_->options().size(), ladder_.granularities.size());
  for (const auto& opt : controller_->options()) {
    EXPECT_GT(opt.throughput_rps, 0.0);
    EXPECT_GT(opt.latency_s, 0.0);
    EXPECT_EQ(opt.max_batch, 32 * opt.stages);
  }
}

TEST_F(GranularityTest, FinerStagesHigherThroughputHigherLatency) {
  const auto& coarse = controller_->OptionFor(4);
  const auto& fine = controller_->OptionFor(32);
  EXPECT_GT(fine.throughput_rps, coarse.throughput_rps);
  EXPECT_GT(fine.latency_s, coarse.latency_s);
}

TEST_F(GranularityTest, SelectionIsMonotoneInCv) {
  int prev = 0;
  for (double cv : {0.3, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    int stages = controller_->SelectStageCount(cv, /*current=*/0);
    EXPECT_GE(stages, prev) << "cv " << cv;
    prev = stages;
  }
  EXPECT_GT(prev, controller_->SelectStageCount(0.3, 0));  // it actually moves
}

TEST_F(GranularityTest, HysteresisKeepsIncumbent) {
  // At a CV right between two granularities, the incumbent should win.
  int a = controller_->SelectStageCount(1.0, 0);
  int finer = ladder_.FinerThan(a);
  // Find a CV where the fresh choice flips to `finer`.
  double flip_cv = 0.0;
  for (double cv = 1.0; cv < 32.0; cv *= 1.05) {
    if (controller_->SelectStageCount(cv, 0) == finer) {
      flip_cv = cv;
      break;
    }
  }
  ASSERT_GT(flip_cv, 0.0);
  // Just below the flip, holding the incumbent must not switch.
  EXPECT_EQ(controller_->SelectStageCount(flip_cv * 0.98, a), a);
}

TEST_F(GranularityTest, InstancesScaleWithDemand) {
  int low = controller_->InstancesFor(2.0, 4);
  int high = controller_->InstancesFor(40.0, 4);
  EXPECT_GE(high, low);
  EXPECT_GE(low, 1);
}

// ---------- Eq. 11 / Eq. 12 ----------

TEST(Scaling, GranularityDecisionSigmoid) {
  ScalingConfig config;
  int calm = ScalingGranularity(0.5, 0.05, config);
  int storm = ScalingGranularity(8.0, 1.0, config);
  EXPECT_LT(calm, storm);
  EXPECT_LE(storm, config.g_max);
  EXPECT_GE(calm, 1);
  // Monotone in pressure.
  int prev = 0;
  for (double q : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    int m = ScalingGranularity(4.0, q, config);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(Scaling, SloFeasibility) {
  // 10 s deadline, 2 s init, 2 rps per stage, 4 stages -> 64 request capacity.
  EXPECT_TRUE(SloFeasible(10 * kSecond, 2 * kSecond, 2.0, 4, 32));
  // 1 s deadline with 2 s init is hopeless.
  EXPECT_FALSE(SloFeasible(1 * kSecond, 2 * kSecond, 2.0, 4, 32));
  EXPECT_TRUE(SloFeasible(1 * kSecond, 2 * kSecond, 2.0, 4, 0));
}

TEST(Scaling, SloFeasibilityBoundary) {
  // Eq. 12's backlog divisor cancels out of both sides, so feasibility is exactly
  // capacity >= required. Pin the boundary: 4 s usable * 2 rps * 4 stages = 32.
  EXPECT_TRUE(SloFeasible(6 * kSecond, 2 * kSecond, 2.0, 4, 32));   // capacity == required
  EXPECT_FALSE(SloFeasible(6 * kSecond, 2 * kSecond, 2.0, 4, 33));  // one over
  EXPECT_TRUE(SloFeasible(6 * kSecond, 2 * kSecond, 2.0, 4, 31));   // one under
  // Zero (or negative) required work is always feasible, even with no usable window.
  EXPECT_TRUE(SloFeasible(2 * kSecond, 2 * kSecond, 2.0, 4, 0));
  EXPECT_TRUE(SloFeasible(2 * kSecond, 3 * kSecond, 2.0, 4, -1));
  // Exactly zero usable time with work pending is infeasible.
  EXPECT_FALSE(SloFeasible(2 * kSecond, 2 * kSecond, 2.0, 4, 1));
}

// ---------- HRG ----------

TEST(Hrg, ContentionDecaysOverTime) {
  Cluster cluster(EvalClusterConfig());
  HierarchicalResourceGraph hrg(&cluster, HierarchicalResourceGraph::Config{});
  hrg.RecordScalingEvent(0, 0);
  hrg.RecordScalingEvent(0, 0);
  double hot = hrg.ServerContention(0, 0);
  double cooled = hrg.ServerContention(0, 60 * kSecond);
  EXPECT_GT(hot, 0.5);
  EXPECT_LT(cooled, 0.05);
  EXPECT_EQ(hrg.ServerContention(5, 0), 0.0);
}

TEST(Hrg, RackContentionSpreads) {
  Cluster cluster(EvalClusterConfig());
  HierarchicalResourceGraph hrg(&cluster, HierarchicalResourceGraph::Config{});
  ServerId s0 = 0;
  RackId rack = cluster.RackOf(s0);
  hrg.RecordScalingEvent(s0, 0);
  EXPECT_GT(hrg.RackContention(rack, 0), 0.0);
  // Another server in the same rack sees a placement penalty via the rack term.
  for (ServerId s = 1; s < cluster.server_count(); ++s) {
    if (cluster.RackOf(s) == rack) {
      EXPECT_GT(hrg.PlacementPenalty(s, 0), 0.0);
      break;
    }
  }
}

TEST(Hrg, LoadSlowdownGrowsWithStreams) {
  Cluster cluster(EvalClusterConfig());
  HierarchicalResourceGraph::Config config;
  config.server_stream_capacity = 2;
  HierarchicalResourceGraph hrg(&cluster, config);
  EXPECT_DOUBLE_EQ(hrg.LoadSlowdown(0), 1.0);
  hrg.AddLoadStream(0);
  hrg.AddLoadStream(0);
  EXPECT_GT(hrg.LoadSlowdown(0), 1.0);
  hrg.RemoveLoadStream(0);
  hrg.RemoveLoadStream(0);
  EXPECT_DOUBLE_EQ(hrg.LoadSlowdown(0), 1.0);
}

// ---------- Host cache + affinity (Eq. 13) ----------

TEST(HostCache, PutCoverageAndTouch) {
  Cluster cluster(EvalClusterConfig());
  HostParamCache cache(&cluster);
  cache.Put(0, /*model=*/1, 0, 8, GiB(30), 0);
  EXPECT_DOUBLE_EQ(cache.Coverage(0, 1, 0, 8), 1.0);
  EXPECT_DOUBLE_EQ(cache.Coverage(0, 1, 0, 16), 0.5);
  EXPECT_DOUBLE_EQ(cache.Coverage(0, 2, 0, 8), 0.0);
  EXPECT_DOUBLE_EQ(cache.Coverage(1, 1, 0, 8), 0.0);
  EXPECT_EQ(cache.LastHosted(0, 1), 0);
  cache.Touch(0, 1, 5 * kSecond);
  EXPECT_EQ(cache.LastHosted(0, 1), 5 * kSecond);
}

TEST(HostCache, LruEvictionUnderBudget) {
  Cluster cluster(EvalClusterConfig());
  // Budget = 50% of 256 GiB = 128 GiB.
  HostParamCache cache(&cluster, 0.5);
  cache.Put(0, 1, 0, 4, GiB(60), /*now=*/0);
  cache.Put(0, 1, 4, 8, GiB(60), /*now=*/kSecond);
  EXPECT_EQ(cache.UsedOn(0), GiB(120));
  // Third entry forces the oldest out.
  cache.Put(0, 1, 8, 12, GiB(60), /*now=*/2 * kSecond);
  EXPECT_LE(cache.UsedOn(0), GiB(128));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_DOUBLE_EQ(cache.Coverage(0, 1, 0, 4), 0.0);  // LRU victim
  EXPECT_DOUBLE_EQ(cache.Coverage(0, 1, 8, 12), 1.0);
}

TEST(Affinity, RecentHostScoresHigher) {
  Cluster cluster(EvalClusterConfig());
  HostParamCache cache(&cluster);
  ScalingConfig config;
  AffinityScheduler affinity(&cluster, &cache, config);
  cache.Put(0, 1, 0, 8, GiB(10), /*now=*/100 * kSecond);
  double warm = affinity.Score(0, 1, 101 * kSecond, GiB(10));
  double cold = affinity.Score(1, 1, 101 * kSecond, GiB(10));
  EXPECT_GT(warm, cold);
  // Temporal decay: much later, the edge shrinks.
  double stale = affinity.Score(0, 1, 100 * kSecond + 20 * kMinute, GiB(10));
  EXPECT_LT(stale, warm);
}

// ---------- Topology-aware placement (Eq. 6-9) ----------

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : cluster_(EvalClusterConfig()), network_(&cluster_, NetworkConfig{}) {
    Profiler profiler(&cost_, Profiler::Config{});
    ComputationGraph graph = ComputationGraph::Build(Opt66B());
    ModelProfile profile = profiler.Profile(graph);
    Partitioner partitioner;
    ladder_ = partitioner.BuildLadder(profile);
  }
  Cluster cluster_;
  NetworkModel network_;
  CostModel cost_;
  GranularityLadder ladder_;
  ModelPlacementRegistry registry_;
};

TEST_F(PlacementTest, PlacesOneGpuPerStageWithoutColocation) {
  TopologyAwarePlacer placer(&cluster_, &network_, &registry_, PlacementConfig{});
  const PipelinePlan& plan = ladder_.plan(8);
  auto gpus = placer.PlaceStages(plan, /*model=*/1, /*cv=*/1.0, nullptr, nullptr);
  ASSERT_EQ(gpus.size(), 8u);
  for (size_t i = 0; i < gpus.size(); ++i) {
    for (size_t j = i + 1; j < gpus.size(); ++j) {
      EXPECT_NE(gpus[i], gpus[j]);
    }
  }
}

TEST_F(PlacementTest, AntiColocationAcrossInstances) {
  TopologyAwarePlacer placer(&cluster_, &network_, &registry_, PlacementConfig{});
  const PipelinePlan& plan = ladder_.plan(4);
  auto first = placer.PlaceStages(plan, 1, 1.0, nullptr, nullptr);
  ASSERT_EQ(first.size(), 4u);
  for (size_t s = 0; s < first.size(); ++s) {
    cluster_.gpu(first[s]).Reserve(plan.stages[s].param_bytes, 0.6);
    registry_.Add(first[s], 1);
  }
  auto second = placer.PlaceStages(plan, 1, 1.0, nullptr, nullptr);
  ASSERT_EQ(second.size(), 4u);
  for (GpuId g : second) {
    for (GpuId f : first) {
      EXPECT_NE(g, f) << "same-model stages must not share a GPU (§6.2)";
    }
  }
}

TEST_F(PlacementTest, FailsWhenMemoryImpossible) {
  // Saturate every GPU.
  for (GpuId id : cluster_.AllGpuIds()) {
    cluster_.gpu(id).SetBackground(GiB(39.5), 0.9, 3);
  }
  TopologyAwarePlacer placer(&cluster_, &network_, &registry_, PlacementConfig{});
  auto gpus = placer.PlaceStages(ladder_.plan(4), 1, 1.0, nullptr, nullptr);
  EXPECT_TRUE(gpus.empty());
}

TEST_F(PlacementTest, HrgPenaltySteersAway) {
  TopologyAwarePlacer placer(&cluster_, &network_, &registry_, PlacementConfig{});
  const PipelinePlan& plan = ladder_.plan(4);
  auto baseline = placer.PlaceStages(plan, 1, 1.0, nullptr, nullptr);
  ASSERT_FALSE(baseline.empty());
  ServerId hot = cluster_.ServerOf(baseline[0]);
  auto penalize_hot = [&](ServerId s) { return s == hot ? 1.0 : 0.0; };
  auto steered = placer.PlaceStages(plan, 1, 1.0, penalize_hot, nullptr);
  ASSERT_FALSE(steered.empty());
  EXPECT_NE(cluster_.ServerOf(steered[0]), hot);
}

TEST(Registry, AddRemoveHosting) {
  ModelPlacementRegistry registry;
  registry.Add(3, 1);
  registry.Add(3, 2);
  EXPECT_TRUE(registry.HostsModel(3, 1));
  EXPECT_EQ(registry.ModelsOn(3), 2);
  registry.Remove(3, 1);
  EXPECT_FALSE(registry.HostsModel(3, 1));
  EXPECT_EQ(registry.ModelsOn(3), 1);
}

}  // namespace
}  // namespace flexpipe
